//===- tools/algoprofd.cpp - The algoprof profiling daemon ----------------===//
///
/// \file
/// Runs the streaming profiling-as-a-service daemon (service/Daemon.h):
///
///   algoprofd --socket PATH [options]
///     --socket PATH          Unix-domain socket to listen on (required)
///     --listen HOST:PORT     additionally listen on TCP (IPv4); requires
///                            --auth-token-file (port 0 = ephemeral,
///                            printed at startup)
///     --auth-token-file F    file whose first line is the shared token
///                            every TCP job must present (auth=...)
///     --journal PATH         write-ahead log for the durable job queue:
///                            accepted jobs survive a daemon restart and
///                            are replayed; clients resume= into their
///                            byte-identical results
///     --send-buffer-bytes N  per-session pending cap for streamed
///                            RunDelta frames (default 1 MiB)
///     --slow-client POLICY   drop-deltas (default) or disconnect: what
///                            happens when a client overflows its buffer
///     --jobs N               worker threads of the shared run pool
///                            (0 = hardware concurrency, default)
///     --max-sessions N       concurrent sessions admitted; further
///                            connections get a too-many-sessions error
///                            (0 = unlimited, default)
///     --metrics-port P       serve GET /metrics on --metrics-addr:P
///                            (0 = pick an ephemeral port and print it;
///                            omit the flag to disable the endpoint)
///     --metrics-addr A       /metrics bind address (default 127.0.0.1;
///                            non-loopback requires --auth-token-file)
///     --max-frame-bytes N    largest job payload accepted (default 1 MiB)
///     --read-timeout-ms N    job-frame receive timeout (default 5000)
///     --quota-runs N         per-session run-count cap (0 = none)
///     --quota-source-bytes N per-session source-size cap (0 = none)
///     --quota-heap-bytes N   per-run heap budget ceiling; unlimited
///                            requests are clamped down to it (0 = none)
///     --quota-deadline-ms N  per-run deadline ceiling, same rule
///     --quota-attempts N     per-run retry-execution cap (0 = none)
///     --compact-bytes N      rotate the journal once it exceeds N
///                            bytes, dropping completed records
///                            (0 = no size-triggered compaction)
///     --compact-interval N   additionally compact every N ms
///                            (0 = off)
///     --retain-bytes N       cap on retained resumable results; the
///                            oldest completed sessions are evicted
///                            first (0 = unbounded)
///     --retain-secs N        evict a session's retained results N
///                            seconds after completion (0 = never)
///     --drain-timeout-ms N   SIGTERM grace period for in-flight
///                            sessions (default 5000)
///
/// SIGTERM drains gracefully: the listeners close, in-flight sessions
/// finish and journal their results, buffered frames flush, and the
/// daemon exits 0 — within --drain-timeout-ms, after which whatever
/// is still running is cut off. SIGINT skips the grace period and
/// stops immediately. Protocol and examples: docs/service.md.
///
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace algoprof;

namespace {

/// Written by the signal handler, drained by main. A self-pipe instead
/// of a flag-poll loop: the handler's write is async-signal-safe and
/// wakes the blocked read immediately.
int ShutdownPipe[2] = {-1, -1};

void onSignal(int Signo) {
  // The byte says which signal arrived: SIGTERM drains gracefully,
  // SIGINT stops immediately. The return value is deliberately
  // unused: if the pipe is full the shutdown is already pending.
  char B = static_cast<char>(Signo);
  ssize_t W = ::write(ShutdownPipe[1], &B, 1);
  (void)W;
}

bool parseU64Arg(const char *Flag, const char *Val, uint64_t &Out) {
  if (!Val)
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Val, &End, 10);
  if (End == Val || *End != '\0' || errno == ERANGE || V < 0) {
    std::fprintf(stderr, "error: %s needs a non-negative integer, got '%s'\n",
                 Flag, Val);
    return false;
  }
  Out = static_cast<uint64_t>(V);
  return true;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--listen HOST:PORT]\n"
               "       [--auth-token-file F] [--journal PATH]\n"
               "       [--send-buffer-bytes N]\n"
               "       [--slow-client drop-deltas|disconnect]\n"
               "       [--jobs N] [--max-sessions N]\n"
               "       [--metrics-port P] [--metrics-addr A]\n"
               "       [--max-frame-bytes N]\n"
               "       [--read-timeout-ms N] [--quota-runs N]\n"
               "       [--quota-source-bytes N] [--quota-heap-bytes N]\n"
               "       [--quota-deadline-ms N] [--quota-attempts N]\n"
               "       [--compact-bytes N] [--compact-interval MS]\n"
               "       [--retain-bytes N] [--retain-secs N]\n"
               "       [--drain-timeout-ms N]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  service::DaemonOptions Opts;
  uint64_t DrainTimeoutMs = 5000;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Val = I + 1 < Argc ? Argv[I + 1] : nullptr;
    uint64_t N = 0;
    if (Arg == "--socket" && Val) {
      Opts.SocketPath = Val;
      ++I;
    } else if (Arg == "--listen" && Val) {
      Opts.ListenAddress = Val;
      ++I;
    } else if (Arg == "--auth-token-file" && Val) {
      Opts.AuthTokenFile = Val;
      ++I;
    } else if (Arg == "--journal" && Val) {
      Opts.JournalPath = Val;
      ++I;
    } else if (Arg == "--send-buffer-bytes") {
      if (!parseU64Arg("--send-buffer-bytes", Val, N))
        return 2;
      Opts.MaxSendBufferBytes = static_cast<size_t>(N);
      ++I;
    } else if (Arg == "--slow-client" && Val) {
      std::string P = Val;
      if (P == "drop-deltas") {
        Opts.SlowClient = service::SendBuffer::Policy::DropDeltas;
      } else if (P == "disconnect") {
        Opts.SlowClient = service::SendBuffer::Policy::Disconnect;
      } else {
        std::fprintf(stderr,
                     "error: --slow-client wants drop-deltas or "
                     "disconnect, got '%s'\n",
                     Val);
        return 2;
      }
      ++I;
    } else if (Arg == "--metrics-addr" && Val) {
      Opts.MetricsAddress = Val;
      ++I;
    } else if (Arg == "--jobs") {
      if (!parseU64Arg("--jobs", Val, N))
        return 2;
      Opts.Workers = static_cast<unsigned>(N);
      ++I;
    } else if (Arg == "--max-sessions") {
      if (!parseU64Arg("--max-sessions", Val, N))
        return 2;
      Opts.MaxSessions = static_cast<size_t>(N);
      ++I;
    } else if (Arg == "--metrics-port") {
      if (!parseU64Arg("--metrics-port", Val, N) || N > 65535)
        return 2;
      Opts.MetricsPort = static_cast<int>(N);
      ++I;
    } else if (Arg == "--max-frame-bytes") {
      if (!parseU64Arg("--max-frame-bytes", Val, N))
        return 2;
      Opts.MaxFrameBytes = static_cast<size_t>(N);
      ++I;
    } else if (Arg == "--read-timeout-ms") {
      if (!parseU64Arg("--read-timeout-ms", Val, N))
        return 2;
      Opts.ReadTimeoutMs = static_cast<unsigned>(N);
      ++I;
    } else if (Arg == "--quota-runs") {
      if (!parseU64Arg("--quota-runs", Val, Opts.Quota.MaxRuns))
        return 2;
      ++I;
    } else if (Arg == "--quota-source-bytes") {
      if (!parseU64Arg("--quota-source-bytes", Val,
                       Opts.Quota.MaxSourceBytes))
        return 2;
      ++I;
    } else if (Arg == "--quota-heap-bytes") {
      if (!parseU64Arg("--quota-heap-bytes", Val, Opts.Quota.MaxHeapBytes))
        return 2;
      ++I;
    } else if (Arg == "--quota-deadline-ms") {
      if (!parseU64Arg("--quota-deadline-ms", Val,
                       Opts.Quota.MaxRunDeadlineMs))
        return 2;
      ++I;
    } else if (Arg == "--quota-attempts") {
      if (!parseU64Arg("--quota-attempts", Val, Opts.Quota.MaxAttempts))
        return 2;
      ++I;
    } else if (Arg == "--compact-bytes") {
      if (!parseU64Arg("--compact-bytes", Val, Opts.CompactBytes))
        return 2;
      ++I;
    } else if (Arg == "--compact-interval") {
      if (!parseU64Arg("--compact-interval", Val, Opts.CompactIntervalMs))
        return 2;
      ++I;
    } else if (Arg == "--retain-bytes") {
      if (!parseU64Arg("--retain-bytes", Val, Opts.RetainBytes))
        return 2;
      ++I;
    } else if (Arg == "--retain-secs") {
      if (!parseU64Arg("--retain-secs", Val, Opts.RetainSecs))
        return 2;
      ++I;
    } else if (Arg == "--drain-timeout-ms") {
      if (!parseU64Arg("--drain-timeout-ms", Val, DrainTimeoutMs))
        return 2;
      ++I;
    } else {
      std::fprintf(stderr, "error: unknown or incomplete argument '%s'\n",
                   Arg.c_str());
      return usage(Argv[0]);
    }
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    return usage(Argv[0]);
  }

  if (::pipe(ShutdownPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
  // A client that disconnects mid-stream must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  service::Daemon D(Opts);
  std::string Err;
  if (!D.start(Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("algoprofd listening on %s", Opts.SocketPath.c_str());
  if (!Opts.ListenAddress.empty())
    std::printf(" (tcp on port %d)", D.listenPort());
  if (Opts.MetricsPort >= 0)
    std::printf(" (metrics on %s:%d)", Opts.MetricsAddress.c_str(),
                D.metricsPort());
  std::printf("\n");
  std::fflush(stdout);

  char B = 0;
  while (::read(ShutdownPipe[0], &B, 1) < 0 && errno == EINTR) {
  }
  if (B == SIGTERM) {
    std::printf("algoprofd draining (up to %llu ms)\n",
                static_cast<unsigned long long>(DrainTimeoutMs));
    std::fflush(stdout);
    if (D.drain(DrainTimeoutMs))
      std::printf("algoprofd drained cleanly\n");
    else
      std::printf("algoprofd drain timed out; cutting off stragglers\n");
  } else {
    std::printf("algoprofd shutting down\n");
  }
  D.stop();
  service::Daemon::Stats S = D.stats();
  std::printf("sessions: %llu accepted, %llu rejected, %llu completed; "
              "%llu bytes streamed\n",
              static_cast<unsigned long long>(S.Accepted),
              static_cast<unsigned long long>(S.Rejected),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.BytesStreamed));
  std::printf("deltas: %llu streamed, %llu dropped; %llu jobs replayed; "
              "%llu auth failures\n",
              static_cast<unsigned long long>(S.DeltasStreamed),
              static_cast<unsigned long long>(S.DeltasDropped),
              static_cast<unsigned long long>(S.JobsReplayed),
              static_cast<unsigned long long>(S.AuthFailures));
  std::printf("retention: %llu results evicted, %llu compactions, "
              "%llu health checks\n",
              static_cast<unsigned long long>(S.ResultsEvicted),
              static_cast<unsigned long long>(S.Compactions),
              static_cast<unsigned long long>(S.HealthChecks));
  return 0;
}

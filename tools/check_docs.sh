#!/usr/bin/env bash
# Documentation hygiene, run by ctest as `docs_links`:
#   1. every relative markdown link in the repo's *.md files points at a
#      file that exists (anchors and external URLs are ignored);
#   2. every file in docs/ is indexed in docs/README.md.
# Usage: check_docs.sh [repo-root]   (default: the script's parent dir)
set -u

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
cd "$ROOT" || exit 1
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# Markdown minus fenced code blocks: C++ lambdas like `[](const T &x)`
# inside ``` fences would otherwise parse as links.
strip_fences() {
  awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$1"
}

# Markdown files under version-controlled directories (skip build trees).
DOC_FILES=$(find . -name '*.md' \
  -not -path './build*' -not -path './.git/*' | sort)

for f in $DOC_FILES; do
  dir=$(dirname "$f")
  # Inline links: [text](target). One per line via grep -o; strip to the
  # target; drop external schemes, mailto, and pure in-page anchors.
  strip_fences "$f" | grep -o '\[[^]]*\]([^)]*)' 2>/dev/null |
  sed 's/.*](\([^)]*\))/\1/' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${target%%#*}                 # drop an anchor suffix
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      fail "$f: broken relative link -> $target"
    fi
  done
done

# The index must mention every doc beside it.
INDEX=docs/README.md
if [ ! -f "$INDEX" ]; then
  fail "missing $INDEX"
else
  for doc in docs/*.md; do
    base=$(basename "$doc")
    [ "$base" = "README.md" ] && continue
    grep -q "($base)" "$INDEX" \
      || fail "$INDEX: does not index docs/$base"
  done
fi

# `while` after a pipe runs in a subshell, so recount broken links here.
BROKEN=0
for f in $DOC_FILES; do
  dir=$(dirname "$f")
  links=$(strip_fences "$f" | grep -o '\[[^]]*\]([^)]*)' 2>/dev/null |
    sed 's/.*](\([^)]*\))/\1/')
  for target in $links; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "FAIL: $f: broken relative link -> $target" >&2
      BROKEN=$((BROKEN + 1))
    fi
  done
done

TOTAL=$((FAILURES + BROKEN))
if [ "$TOTAL" -gt 0 ]; then
  echo "$TOTAL documentation problem(s)" >&2
  exit 1
fi
echo "all documentation links ok"
exit 0

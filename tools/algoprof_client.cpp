//===- tools/algoprof_client.cpp - Typed algoprofd client CLI -------------===//
///
/// \file
/// Submits one profiling job to a running algoprofd and streams the
/// reply (service/Client.h):
///
///   algoprof_client --connect unix:PATH | tcp:HOST:PORT [options]
///     --connect EP           unix:/path/to.sock (default transport) or
///                            tcp:host:port (needs the daemon's token)
///     --auth-token-file F    token file for TCP endpoints
///     --corpus NAME          run a built-in corpus program, or
///     --file PROG.mj         submit inline MiniJ source, or
///     --resume ID            re-stream a journaled session's results
///     --from-delta K         resume cursor: skip the first K deltas
///                            the client already saw (with --resume)
///     --entry Cls.Method     entry point (default Main.main)
///     --seeds a,b,c          one run per seed (wins over --runs)
///     --runs N               unseeded run count (default 1)
///     --input a,b,c          input channel for unseeded runs
///     --policy P             fail | skip | retry
///     --retries N            retries per run under retry policy
///                            (run-level, inside the daemon's VM —
///                            distinct from --connect-retries)
///     --connect-retries N    transport retries: reconnect with
///                            backoff and auto-resume at the delta
///                            cursor after a dropped connection
///                            (default 0)
///     --timeout-ms N         per-operation socket deadline; a
///                            stalled daemon becomes a transport
///                            fault instead of a hang (default none)
///     --max-heap-bytes N     per-run heap budget
///     --deadline-ms N        per-run deadline
///     --inject SPEC          session-scoped fault plan
///     --proto 1|2            wire version (default 2: tree/fit deltas)
///     --out FILE             write the profile JSON here (default stdout)
///     --quiet                suppress per-run delta lines on stderr
///
/// Exit status: 0 on a completed profile, 1 on rejection or transport
/// failure, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace algoprof;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --connect unix:PATH|tcp:HOST:PORT\n"
      "       (--corpus NAME | --file PROG.mj | --resume ID)\n"
      "       [--from-delta K] [--auth-token-file F]\n"
      "       [--entry Cls.Method]\n"
      "       [--seeds a,b,c] [--runs N] [--input a,b,c]\n"
      "       [--policy fail|skip|retry] [--retries N]\n"
      "       [--connect-retries N] [--timeout-ms N]\n"
      "       [--max-heap-bytes N] [--deadline-ms N] [--inject SPEC]\n"
      "       [--proto 1|2] [--out FILE] [--quiet]\n",
      Argv0);
  return 2;
}

bool parseU64Arg(const char *Flag, const char *Val, uint64_t &Out) {
  if (!Val)
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Val, &End, 10);
  if (End == Val || *End != '\0' || errno == ERANGE || V < 0) {
    std::fprintf(stderr,
                 "error: %s needs a non-negative integer, got '%s'\n",
                 Flag, Val ? Val : "");
    return false;
  }
  Out = static_cast<uint64_t>(V);
  return true;
}

bool parseIntListArg(const char *Flag, const char *Val,
                     std::vector<int64_t> &Out) {
  if (!Val)
    return false;
  Out.clear();
  std::string S = Val;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    std::string Item = S.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(Item.c_str(), &End, 10);
    if (Item.empty() || End == Item.c_str() || *End != '\0' ||
        errno == ERANGE) {
      std::fprintf(stderr, "error: %s has an invalid entry '%s'\n", Flag,
                   Item.c_str());
      return false;
    }
    Out.push_back(V);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

std::string firstLineTrimmed(const std::string &Data) {
  size_t Nl = Data.find('\n');
  std::string T = Nl == std::string::npos ? Data : Data.substr(0, Nl);
  while (!T.empty() &&
         (T.back() == '\r' || T.back() == ' ' || T.back() == '\t'))
    T.pop_back();
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Connect, TokenFile, SourceFile, EntrySpec, OutPath;
  service::JobSpec Job;
  service::RetryPolicy Retry;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Val = I + 1 < Argc ? Argv[I + 1] : nullptr;
    uint64_t N = 0;
    if (Arg == "--connect" && Val) {
      Connect = Val;
      ++I;
    } else if (Arg == "--auth-token-file" && Val) {
      TokenFile = Val;
      ++I;
    } else if (Arg == "--corpus" && Val) {
      Job.Corpus = Val;
      ++I;
    } else if (Arg == "--file" && Val) {
      SourceFile = Val;
      ++I;
    } else if (Arg == "--resume") {
      if (!parseU64Arg("--resume", Val, Job.Resume) || Job.Resume == 0) {
        std::fprintf(stderr, "error: --resume needs a session id\n");
        return 2;
      }
      ++I;
    } else if (Arg == "--from-delta") {
      if (!parseU64Arg("--from-delta", Val, Job.FromDelta))
        return 2;
      ++I;
    } else if (Arg == "--connect-retries") {
      if (!parseU64Arg("--connect-retries", Val, N))
        return 2;
      Retry.ConnectRetries = static_cast<unsigned>(N);
      ++I;
    } else if (Arg == "--timeout-ms") {
      if (!parseU64Arg("--timeout-ms", Val, Retry.TimeoutMs))
        return 2;
      ++I;
    } else if (Arg == "--entry" && Val) {
      EntrySpec = Val;
      ++I;
    } else if (Arg == "--seeds") {
      if (!parseIntListArg("--seeds", Val, Job.Seeds))
        return 2;
      ++I;
    } else if (Arg == "--runs") {
      if (!parseU64Arg("--runs", Val, N) || N < 1) {
        std::fprintf(stderr, "error: --runs needs a positive integer\n");
        return 2;
      }
      Job.Runs = static_cast<int>(N);
      ++I;
    } else if (Arg == "--input") {
      if (!parseIntListArg("--input", Val, Job.Input))
        return 2;
      ++I;
    } else if (Arg == "--policy" && Val) {
      if (!resilience::parseFailurePolicy(Val, Job.Policy)) {
        std::fprintf(stderr, "error: unknown policy '%s'\n", Val);
        return 2;
      }
      ++I;
    } else if (Arg == "--retries") {
      if (!parseU64Arg("--retries", Val, N))
        return 2;
      Job.MaxAttempts = static_cast<int>(N) + 1;
      ++I;
    } else if (Arg == "--max-heap-bytes") {
      if (!parseU64Arg("--max-heap-bytes", Val, Job.MaxHeapBytes))
        return 2;
      ++I;
    } else if (Arg == "--deadline-ms") {
      if (!parseU64Arg("--deadline-ms", Val, Job.RunDeadlineMs))
        return 2;
      ++I;
    } else if (Arg == "--inject" && Val) {
      Job.InjectSpec = Val;
      ++I;
    } else if (Arg == "--proto") {
      if (!parseU64Arg("--proto", Val, N) || (N != 1 && N != 2)) {
        std::fprintf(stderr, "error: --proto wants 1 or 2\n");
        return 2;
      }
      Job.Protocol = static_cast<int>(N);
      ++I;
    } else if (Arg == "--out" && Val) {
      OutPath = Val;
      ++I;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown or incomplete argument '%s'\n",
                   Arg.c_str());
      return usage(Argv[0]);
    }
  }

  if (Connect.empty()) {
    std::fprintf(stderr, "error: --connect is required\n");
    return usage(Argv[0]);
  }
  int Goals = (!Job.Corpus.empty() ? 1 : 0) + (!SourceFile.empty() ? 1 : 0) +
              (Job.Resume != 0 ? 1 : 0);
  if (Goals != 1) {
    std::fprintf(stderr,
                 "error: exactly one of --corpus, --file, --resume\n");
    return usage(Argv[0]);
  }
  if (!SourceFile.empty() && !readFile(SourceFile, Job.Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", SourceFile.c_str());
    return 1;
  }
  if (!EntrySpec.empty()) {
    size_t Dot = EntrySpec.find('.');
    if (Dot == std::string::npos || Dot == 0 ||
        Dot + 1 == EntrySpec.size()) {
      std::fprintf(stderr, "error: --entry wants Cls.Method\n");
      return 2;
    }
    Job.EntryClass = EntrySpec.substr(0, Dot);
    Job.EntryMethod = EntrySpec.substr(Dot + 1);
  }
  if (Job.Resume != 0 && Job.Protocol < 2) {
    std::fprintf(stderr, "error: --resume requires --proto 2\n");
    return 2;
  }
  if (Job.FromDelta != 0 && Job.Resume == 0) {
    std::fprintf(stderr, "error: --from-delta requires --resume\n");
    return 2;
  }

  std::string Token;
  if (!TokenFile.empty()) {
    std::string Data;
    if (!readFile(TokenFile, Data)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", TokenFile.c_str());
      return 1;
    }
    Token = firstLineTrimmed(Data);
  }

  service::Client C = [&]() -> service::Client {
    if (Connect.rfind("unix:", 0) == 0)
      return service::Client::unixSocket(Connect.substr(5));
    if (Connect.rfind("tcp:", 0) == 0) {
      std::string HostPort = Connect.substr(4);
      size_t Colon = HostPort.rfind(':');
      uint16_t Port = 0;
      if (Colon != std::string::npos) {
        long V = std::strtol(HostPort.c_str() + Colon + 1, nullptr, 10);
        if (V > 0 && V <= 65535)
          Port = static_cast<uint16_t>(V);
      }
      return service::Client::tcp(HostPort.substr(0, Colon), Port, Token);
    }
    return service::Client::unixSocket(Connect); // Bare path: unix.
  }();

  std::function<void(const service::RunDeltaMsg &)> OnDelta;
  if (!Quiet)
    OnDelta = [](const service::RunDeltaMsg &D) {
      std::fprintf(stderr, "run %lld %s%s merged=%lld",
                   static_cast<long long>(D.Run), D.Status.c_str(),
                   D.Quarantined ? " (quarantined)" : "",
                   static_cast<long long>(D.MergedRuns));
      if (D.V2) {
        std::fprintf(stderr, " repetitions=%lld(+%lld)",
                     static_cast<long long>(D.TreeRepetitions),
                     static_cast<long long>(D.NewRepetitions));
        for (const service::FitEstimate &F : D.Fits)
          std::fprintf(stderr, " [%s ~ %s]", F.Label.c_str(),
                       F.Formula.c_str());
      }
      std::fprintf(stderr, "\n");
    };
  service::TypedResult R = C.run(Job, Retry, OnDelta);
  if (!Quiet && R.TransportRetries > 0)
    std::fprintf(stderr, "reconnected %u time%s to finish the stream\n",
                 R.TransportRetries, R.TransportRetries == 1 ? "" : "s");

  if (!R.Ok) {
    if (R.Error.any())
      std::fprintf(stderr, "error: %s%s: %s\n",
                   R.Error.Transport ? "transport: " : "",
                   R.Error.Code.c_str(), R.Error.Message.c_str());
    else
      std::fprintf(stderr, "error: incomplete stream\n");
    return 1;
  }

  if (!Quiet)
    std::fprintf(stderr,
                 "session %llu%s: %llu runs, %llu merged, %llu degraded\n",
                 static_cast<unsigned long long>(R.Acceptance.Session),
                 R.Acceptance.Resumed ? " (resumed)" : "",
                 static_cast<unsigned long long>(R.Summary.Runs),
                 static_cast<unsigned long long>(R.Summary.MergedRuns),
                 static_cast<unsigned long long>(R.Summary.DegradedRuns));

  if (OutPath.empty()) {
    std::fwrite(R.ProfileJson.data(), 1, R.ProfileJson.size(), stdout);
  } else {
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out || !(Out << R.ProfileJson) || (Out.flush(), !Out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
      return 1;
    }
  }
  return 0;
}

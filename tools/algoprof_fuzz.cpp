//===- tools/algoprof_fuzz.cpp - Differential fuzz driver -----------------===//
///
/// \file
/// Deterministic differential fuzzing of the whole pipeline:
/// ProgramGen → frontend → Sema → Compiler → Verifier → VM →
/// AlgoProfiler, with three oracles per case:
///
///   1. No crash / UB: every case — generated, garbled, or mutated —
///      ends in a diagnostic, a VM trap, fuel exhaustion, or clean
///      completion. Aborts and sanitizer reports fail the batch (run
///      under -DALGOPROF_ASAN_UBSAN=ON; see docs/fuzzing.md).
///   2. Verifier soundness: a module the verifier accepts executes
///      without internal assertion failures.
///   3. Serial-vs-parallel differential: ProfileSession and SweepEngine
///      produce byte-identical profiles on every generated program
///      (extending `ctest -L parallel` beyond the hand-written corpus).
///
///   algoprof_fuzz [--seed S] [--count N] [--mutants K] [--runs R]
///                 [--garble PCT] [--fuel F] [--threads T]
///                 [--dump I] [--case I] [--corpus DIR] [-v]
///
/// Every case derives from (seed, index) alone: reproduce case 4711 of
/// the default batch with `algoprof_fuzz --case 4711`, and print its
/// program with `algoprof_fuzz --dump 4711`.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"
#include "bytecode/Verifier.h"
#include "core/Session.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "parallel/SweepEngine.h"
#include "report/TreePrinter.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace algoprof;
using namespace algoprof::fuzz;
using namespace algoprof::prof;

namespace {

struct FuzzOptions {
  uint64_t Seed = 0xa190f17;
  uint64_t Count = 1000;
  int Mutants = 2;
  int Runs = 2;
  int GarblePercent = 10;
  uint64_t Fuel = 200'000;
  int MaxFrames = 256;
  int64_t MaxArrayLength = 1 << 16;
  int64_t DumpCase = -1;
  int64_t OnlyCase = -1;
  std::string CorpusDir;
  bool Verbose = false;
};

struct Stats {
  uint64_t Cases = 0;
  uint64_t Garbled = 0;
  uint64_t FrontendRejected = 0;
  uint64_t Compiled = 0;
  uint64_t RunsOk = 0;
  uint64_t RunsTrapped = 0;
  uint64_t RunsFuel = 0;
  uint64_t RunsBudget = 0;
  uint64_t FaultRounds = 0;
  uint64_t MutantsTried = 0;
  uint64_t MutantsRejected = 0;
  uint64_t MutantsExecuted = 0;
  uint64_t Failures = 0;
};

void usageAndExit(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed S] [--count N] [--mutants K] [--runs R]\n"
      "          [--garble PCT] [--fuel F] [--threads T] [--dump I]\n"
      "          [--case I] [--corpus DIR] [-v]\n",
      Argv0);
  std::exit(2);
}

bool parseU64(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 0);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

bool parseI64(const char *S, int64_t &Out) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S, &End, 0);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

FuzzOptions parseArgs(int Argc, char **Argv) {
  FuzzOptions O;
  auto Need = [&](int &I) -> const char * {
    if (I + 1 >= Argc)
      usageAndExit(Argv[0]);
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t U;
    int64_t S;
    if (Arg == "--seed" && parseU64(Need(I), U))
      O.Seed = U;
    else if (Arg == "--count" && parseU64(Need(I), U))
      O.Count = U;
    else if (Arg == "--mutants" && parseU64(Need(I), U))
      O.Mutants = static_cast<int>(U);
    else if (Arg == "--runs" && parseU64(Need(I), U) && U >= 1)
      O.Runs = static_cast<int>(U);
    else if (Arg == "--garble" && parseU64(Need(I), U) && U <= 100)
      O.GarblePercent = static_cast<int>(U);
    else if (Arg == "--fuel" && parseU64(Need(I), U) && U >= 1)
      O.Fuel = U;
    else if (Arg == "--dump" && parseI64(Need(I), S))
      O.DumpCase = S;
    else if (Arg == "--case" && parseI64(Need(I), S))
      O.OnlyCase = S;
    else if (Arg == "--corpus")
      O.CorpusDir = Need(I);
    else if (Arg == "-v")
      O.Verbose = true;
    else
      usageAndExit(Argv[0]);
  }
  return O;
}

vm::RunOptions runOptions(const FuzzOptions &O) {
  vm::RunOptions R;
  R.Fuel = O.Fuel;
  R.MaxFrames = O.MaxFrames;
  R.MaxArrayLength = O.MaxArrayLength;
  return R;
}

void countRun(const vm::RunResult &R, Stats &St) {
  switch (R.Status) {
  case vm::RunStatus::Ok:
    ++St.RunsOk;
    break;
  case vm::RunStatus::Trapped:
    ++St.RunsTrapped;
    break;
  case vm::RunStatus::FuelExhausted:
    ++St.RunsFuel;
    break;
  case vm::RunStatus::BudgetExceeded:
    ++St.RunsBudget;
    break;
  }
}

/// Session options for one case, drawn deterministically from the case
/// rng. AllElements equivalence and sampling are excluded: their
/// serial/parallel deltas are documented behavior, not bugs (see
/// docs/parallel_sweeps.md "Caveats").
SessionOptions sessionOptionsFor(Rng &R, const FuzzOptions &O) {
  SessionOptions SO;
  SO.Run = runOptions(O);
  switch (R.below(3)) {
  case 0:
    SO.Profile.Equivalence = EquivalenceStrategy::SomeElements;
    break;
  case 1:
    SO.Profile.Equivalence = EquivalenceStrategy::SameArray;
    break;
  default:
    SO.Profile.Equivalence = EquivalenceStrategy::SameType;
    break;
  }
  SO.Profile.Snapshots =
      R.chance(50) ? SnapshotMode::Eager : SnapshotMode::Tracked;
  SO.AllMethodsPlan = R.chance(25);
  // Budget dimension: an occasional heap-byte budget (1 KiB .. 512 KiB
  // of modelled bytes). Both engines get the same budget, so budget
  // traps must be part of the byte-identical differential too.
  if (R.chance(15))
    SO.Run.MaxHeapBytes = 1ULL << (10 + R.below(10));
  return SO;
}

GroupingStrategy groupingFor(Rng &R) {
  switch (R.below(3)) {
  case 0:
    return GroupingStrategy::CommonInput;
  case 1:
    return GroupingStrategy::SameMethod;
  default:
    return GroupingStrategy::CommonInputPlusDataflow;
  }
}

/// The run-independent half of an engine's observable state (tree,
/// inputs, profiles) — what degraded-sweep comparisons use, where the
/// two sides executed different run counts by design.
std::string renderProfileState(const RepetitionTree &Tree,
                               const InputTable &Inputs,
                               const std::vector<AlgorithmProfile> &Profiles) {
  std::ostringstream OS;
  OS << "repetitions=" << Tree.numRepetitions() << " strategy="
     << equivalenceStrategyName(Inputs.strategy()) << " inputs=";
  for (int32_t Id : Inputs.liveInputs())
    OS << Id << ",";
  OS << "\n";
  OS << report::renderAnnotatedTree(Tree, Profiles);
  return OS.str();
}

/// One engine's observable state, rendered for byte comparison.
std::string renderState(const std::vector<vm::RunResult> &Runs,
                        const RepetitionTree &Tree,
                        const InputTable &Inputs,
                        const std::vector<AlgorithmProfile> &Profiles) {
  std::ostringstream OS;
  for (size_t I = 0; I < Runs.size(); ++I)
    OS << "run " << I << ": " << vm::runStatusName(Runs[I].Status)
       << " instr=" << Runs[I].InstrCount << " msg='"
       << Runs[I].TrapMessage << "'\n";
  OS << renderProfileState(Tree, Inputs, Profiles);
  return OS.str();
}

void reportFailure(Stats &St, uint64_t CaseIdx, uint64_t CaseSeed,
                   const std::string &What, const std::string &Detail,
                   const std::string &Source) {
  ++St.Failures;
  std::fprintf(stderr,
               "FAIL case %llu (seed 0x%llx): %s\n%s\n"
               "--- program ---\n%s\n---------------\n",
               static_cast<unsigned long long>(CaseIdx),
               static_cast<unsigned long long>(CaseSeed), What.c_str(),
               Detail.c_str(), Source.c_str());
}

/// Oracles 1+3 over one compiled program; shared by generated cases
/// and corpus replay.
void checkCompiledProgram(const CompiledProgram &CP,
                          const std::string &Source, uint64_t CaseIdx,
                          uint64_t CaseSeed, Rng &R,
                          const FuzzOptions &O, Stats &St) {
  SessionOptions SO = sessionOptionsFor(R, O);
  GroupingStrategy Grouping = groupingFor(R);

  // The input channel every run sees (identical across runs and
  // engines, like `algoprof --input --runs --jobs`).
  std::vector<int64_t> Input;
  uint64_t NumInputs = R.below(6);
  for (uint64_t I = 0; I < NumInputs; ++I)
    Input.push_back(R.chance(80) ? R.range(-20, 20) : R.anyInt());
  int Threads = R.range(2, 4);
  // The run plan rides in the options, so the serial session and the
  // sweep engine consume the exact same SessionOptions value.
  SO.Runs = O.Runs;
  SO.Input = Input;
  SO.Jobs = Threads;

  std::string OptsDesc =
      std::string("equivalence=") +
      equivalenceStrategyName(SO.Profile.Equivalence) +
      " snapshots=" + snapshotModeName(SO.Profile.Snapshots) +
      " allmethods=" + (SO.AllMethodsPlan ? "1" : "0") +
      " grouping=" + std::to_string(static_cast<int>(Grouping)) +
      " input=";
  for (int64_t V : Input)
    OptsDesc += std::to_string(V) + ",";

  // Serial: the accumulating session.
  ProfileSession Serial(CP, SO);
  std::vector<vm::RunResult> SerialRuns;
  for (int Run = 0; Run < O.Runs; ++Run) {
    vm::IoChannels Io;
    Io.Input = Input;
    SerialRuns.push_back(Serial.run("Main", "main", Io));
    countRun(SerialRuns.back(), St);
  }
  std::string SerialState =
      renderState(SerialRuns, Serial.tree(), Serial.inputs(),
                  Serial.buildProfiles(Grouping));

  // Parallel: the sharded sweep over the same runs, configured by the
  // identical SessionOptions (run plan included).
  parallel::SweepEngine Engine(CP, SO);
  parallel::SweepResult SR = Engine.sweep("Main", "main");
  std::string ParallelState =
      renderState(SR.Runs, Engine.tree(), Engine.inputs(),
                  Engine.buildProfiles(Grouping));

  if (SerialState != ParallelState)
    reportFailure(St, CaseIdx, CaseSeed,
                  "serial/parallel profile mismatch (threads=" +
                      std::to_string(Threads) + ", " + OptsDesc + ")",
                  "--- serial ---\n" + SerialState +
                      "--- parallel ---\n" + ParallelState,
                  Source);

  // Dispatch dimension: the serial session above ran on the default
  // tier (Auto dispatch, superinstructions and inline caches on). A
  // session pinned to the reference switch loop with every fast path
  // off must produce the byte-identical state — the fused/IC paths
  // must preserve the listener ABI on arbitrary generated programs.
  {
    SessionOptions RefSO = SO;
    RefSO.Run.Dispatch = vm::DispatchMode::Switch;
    RefSO.Run.Superinstructions = false;
    RefSO.Run.InlineCaches = false;
    ProfileSession Ref(CP, RefSO);
    std::vector<vm::RunResult> RefRuns;
    for (int Run = 0; Run < O.Runs; ++Run) {
      vm::IoChannels Io;
      Io.Input = Input;
      RefRuns.push_back(Ref.run("Main", "main", Io));
    }
    std::string RefState = renderState(RefRuns, Ref.tree(), Ref.inputs(),
                                       Ref.buildProfiles(Grouping));
    if (RefState != SerialState)
      reportFailure(St, CaseIdx, CaseSeed,
                    "dispatch-tier profile mismatch (" + OptsDesc + ")",
                    "--- default tier ---\n" + SerialState +
                        "--- switch/unfused ---\n" + RefState,
                    Source);
  }

  // Fault-plan dimension: arm one run-scoped fault under a quarantining
  // policy. Oracle: the degraded sweep reaches a defined outcome (never
  // a crash) and its merged profile byte-matches a serial session over
  // exactly the surviving runs.
  if (R.chance(35)) {
    ++St.FaultRounds;
    SessionOptions FS = SO;
    FS.Policy = R.chance(50) ? resilience::FailurePolicy::Skip
                             : resilience::FailurePolicy::Retry;
    FS.MaxAttempts = 2;
    resilience::Fault F;
    F.Site = R.chance(50) ? resilience::FaultSite::HeapOom
                          : resilience::FaultSite::RunStart;
    F.Run = static_cast<int64_t>(R.below(static_cast<uint64_t>(O.Runs)));
    F.Once = R.chance(30); // Transient faults let Retry recover.
    FS.Faults.Faults.push_back(F);

    parallel::SweepEngine Faulty(CP, FS);
    parallel::SweepResult FR = Faulty.sweep("Main", "main");
    for (const vm::RunResult &Run : FR.Runs)
      countRun(Run, St);
    std::vector<char> Quarantined(static_cast<size_t>(O.Runs), 0);
    for (const resilience::FailureInfo &FI : FR.Failures)
      if (FI.Quarantined)
        Quarantined[static_cast<size_t>(FI.Run)] = 1;

    ProfileSession Survivors(CP, SO);
    for (int Run = 0; Run < O.Runs; ++Run) {
      if (Quarantined[static_cast<size_t>(Run)])
        continue;
      vm::IoChannels Io;
      Io.Input = Input;
      (void)Survivors.run("Main", "main", Io);
    }
    std::string FaultyState = renderProfileState(
        Faulty.tree(), Faulty.inputs(), Faulty.buildProfiles(Grouping));
    std::string SurvivorState =
        renderProfileState(Survivors.tree(), Survivors.inputs(),
                           Survivors.buildProfiles(Grouping));
    if (FaultyState != SurvivorState)
      reportFailure(St, CaseIdx, CaseSeed,
                    "degraded sweep / survivor-serial mismatch (fault=" +
                        FS.Faults.str() + " policy=" +
                        resilience::failurePolicyName(FS.Policy) + ", " +
                        OptsDesc + ")",
                    "--- degraded sweep ---\n" + FaultyState +
                        "--- survivors serial ---\n" + SurvivorState,
                    Source);
  }
}

/// Oracle 2: mutate the module; the verifier rejects, or the mutant
/// executes to a defined outcome.
void checkMutants(const CompiledProgram &CP, const std::string &Source,
                  uint64_t CaseIdx, uint64_t CaseSeed,
                  const FuzzOptions &O, Stats &St) {
  for (int K = 0; K < O.Mutants; ++K) {
    ++St.MutantsTried;
    Rng MR(deriveSeed(CaseSeed ^ 0x6d757461ULL, static_cast<uint64_t>(K)));
    bc::Module Mut =
        mutateModule(*CP.Mod, MR, 1 + static_cast<int>(MR.below(4)));
    if (!bc::verifyModule(Mut).empty()) {
      ++St.MutantsRejected;
      continue;
    }
    ++St.MutantsExecuted;
    // The disassembler must render any verified module.
    (void)bc::disassemble(Mut);
    int32_t Entry = Mut.findMethodId("Main", "main");
    if (Entry < 0)
      continue;
    const bc::MethodInfo &M = Mut.Methods[static_cast<size_t>(Entry)];
    if (!M.IsStatic || M.NumArgs != 0)
      continue;
    vm::PreparedProgram Prep = vm::PreparedProgram::prepare(Mut);
    vm::Interpreter Interp(Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(Mut);
    vm::IoChannels Io;
    Io.Input = {1, 2, 3};
    vm::RunResult R = Interp.run(Entry, nullptr, Plan, Io, runOptions(O));
    countRun(R, St);
    // Dispatch differential over mutants too: verified mutants may
    // contain hand-rolled fused opcodes (the mutator emits them), so
    // this is the one place arbitrary fused instructions — not just
    // fuser-selected clusters — run on both loops.
    vm::RunOptions RefRO = runOptions(O);
    RefRO.Dispatch = vm::DispatchMode::Switch;
    RefRO.Superinstructions = false;
    RefRO.InlineCaches = false;
    vm::Interpreter RefInterp(Prep);
    vm::IoChannels RefIo;
    RefIo.Input = {1, 2, 3};
    vm::RunResult RefR = RefInterp.run(Entry, nullptr, Plan, RefIo, RefRO);
    if (RefR.Status != R.Status || RefR.InstrCount != R.InstrCount ||
        RefR.TrapMessage != R.TrapMessage || RefIo.Output != Io.Output)
      reportFailure(St, CaseIdx, CaseSeed,
                    "mutant dispatch-tier mismatch",
                    "default: " + std::string(vm::runStatusName(R.Status)) +
                        " instr=" + std::to_string(R.InstrCount) + " msg='" +
                        R.TrapMessage + "'\nswitch:  " +
                        vm::runStatusName(RefR.Status) +
                        " instr=" + std::to_string(RefR.InstrCount) +
                        " msg='" + RefR.TrapMessage + "'\n" +
                        bc::disassemble(Mut),
                    Source);
  }
}

void runCase(uint64_t CaseIdx, const FuzzOptions &O, Stats &St) {
  ++St.Cases;
  uint64_t CaseSeed = deriveSeed(O.Seed, CaseIdx);
  Rng R(CaseSeed);
  std::string Source = generateProgram(R);
  bool Garbled = static_cast<int>(R.below(100)) < O.GarblePercent;
  if (Garbled) {
    ++St.Garbled;
    Source = garbleSource(Source, R);
  }
  if (O.Verbose)
    std::fprintf(stderr, "case %llu seed 0x%llx%s\n",
                 static_cast<unsigned long long>(CaseIdx),
                 static_cast<unsigned long long>(CaseSeed),
                 Garbled ? " (garbled)" : "");

  DiagnosticEngine Diags;
  std::unique_ptr<CompiledProgram> CP = compileMiniJ(Source, Diags);
  if (!CP) {
    ++St.FrontendRejected;
    // The compiler must never emit unverifiable bytecode; that
    // diagnostic is an internal error, not a user-input rejection.
    if (Diags.str().find("internal:") != std::string::npos)
      reportFailure(St, CaseIdx, CaseSeed,
                    "compiler emitted unverifiable bytecode", Diags.str(),
                    Source);
    else if (!Garbled)
      reportFailure(St, CaseIdx, CaseSeed,
                    "generated program rejected by frontend", Diags.str(),
                    Source);
    return;
  }
  ++St.Compiled;
  if (CP->entryMethod("Main", "main") < 0) {
    if (!Garbled)
      reportFailure(St, CaseIdx, CaseSeed, "missing Main.main", "",
                    Source);
    return;
  }
  checkCompiledProgram(*CP, Source, CaseIdx, CaseSeed, R, O, St);
  checkMutants(*CP, Source, CaseIdx, CaseSeed, O, St);
}

int runCorpus(const FuzzOptions &O, Stats &St) {
  namespace fs = std::filesystem;
  std::vector<fs::path> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E :
       fs::directory_iterator(O.CorpusDir, Ec))
    if (E.path().extension() == ".mj")
      Files.push_back(E.path());
  if (Ec) {
    std::fprintf(stderr, "error: cannot read corpus dir '%s'\n",
                 O.CorpusDir.c_str());
    return 2;
  }
  std::sort(Files.begin(), Files.end());
  for (size_t I = 0; I < Files.size(); ++I) {
    ++St.Cases;
    std::ifstream In(Files[I]);
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string Source = SS.str();
    if (O.Verbose)
      std::fprintf(stderr, "corpus %s\n", Files[I].c_str());

    DiagnosticEngine Diags;
    std::unique_ptr<CompiledProgram> CP = compileMiniJ(Source, Diags);
    if (!CP) {
      ++St.FrontendRejected;
      if (Diags.str().find("internal:") != std::string::npos)
        reportFailure(St, I, 0, "compiler emitted unverifiable bytecode",
                      Diags.str(), Files[I].string());
      continue;
    }
    ++St.Compiled;
    if (CP->entryMethod("Main", "main") < 0)
      continue;
    Rng R(deriveSeed(O.Seed, 0xc0ULL + I));
    checkCompiledProgram(*CP, Files[I].string(), I, 0, R, O, St);
    checkMutants(*CP, Files[I].string(), I, deriveSeed(O.Seed, I), O, St);
  }
  return 0;
}

int runFuzz(int Argc, char **Argv) {
  FuzzOptions O = parseArgs(Argc, Argv);
  Stats St;

  if (O.DumpCase >= 0) {
    Rng R(deriveSeed(O.Seed, static_cast<uint64_t>(O.DumpCase)));
    std::string Source = generateProgram(R);
    if (static_cast<int>(R.below(100)) < O.GarblePercent)
      Source = garbleSource(Source, R);
    std::printf("%s", Source.c_str());
    return 0;
  }

  if (!O.CorpusDir.empty()) {
    int Rc = runCorpus(O, St);
    if (Rc)
      return Rc;
  } else if (O.OnlyCase >= 0) {
    FuzzOptions Single = O;
    Single.Verbose = true;
    runCase(static_cast<uint64_t>(O.OnlyCase), Single, St);
  } else {
    for (uint64_t I = 0; I < O.Count; ++I)
      runCase(I, O, St);
  }

  std::printf(
      "fuzz: %llu cases (%llu garbled): %llu compiled, %llu rejected; "
      "runs ok=%llu trap=%llu fuel=%llu budget=%llu; fault rounds=%llu; "
      "mutants %llu (rejected=%llu executed=%llu); %llu failure(s)\n",
      static_cast<unsigned long long>(St.Cases),
      static_cast<unsigned long long>(St.Garbled),
      static_cast<unsigned long long>(St.Compiled),
      static_cast<unsigned long long>(St.FrontendRejected),
      static_cast<unsigned long long>(St.RunsOk),
      static_cast<unsigned long long>(St.RunsTrapped),
      static_cast<unsigned long long>(St.RunsFuel),
      static_cast<unsigned long long>(St.RunsBudget),
      static_cast<unsigned long long>(St.FaultRounds),
      static_cast<unsigned long long>(St.MutantsTried),
      static_cast<unsigned long long>(St.MutantsRejected),
      static_cast<unsigned long long>(St.MutantsExecuted),
      static_cast<unsigned long long>(St.Failures));
  return St.Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Exception boundary: a fuzz batch must end in a report, not
  // std::terminate — an escaped exception would read as a harness
  // crash instead of a pipeline bug.
  try {
    return runFuzz(Argc, Argv);
  } catch (const std::bad_alloc &) {
    std::fprintf(stderr, "error: out of memory\n");
    return 1;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: unhandled exception: %s\n", E.what());
    return 1;
  }
}

#!/usr/bin/env bash
# Build and run the `parallel` test label under ThreadSanitizer.
#
# This is the load-bearing form of the ALGOPROF_TSAN option: the ctest
# test `tsan_parallel` (registered in tests/CMakeLists.txt for
# non-sanitizer builds) invokes this script, which configures a child
# build inside the current binary dir with -DALGOPROF_TSAN=ON, builds
# the parallel and service test binaries plus the real daemon/client,
# and runs exactly the thread-heavy labels — the work-stealing pool,
# the streaming shard merges, the 100+ perturbed-schedule property
# tests, and the daemon's concurrent streamed sessions including the
# TCP+auth transport, slow-client backpressure, and the journal
# replay/resume paths (ServiceTest.cpp) and the kill -9 restart cycle
# (service_restart) — with the race detector armed.
#
# Usage: run_tsan_tests.sh <source-dir> <binary-dir> [jobs]
set -euo pipefail

SRC=${1:?usage: run_tsan_tests.sh <source-dir> <binary-dir> [jobs]}
BIN=${2:?usage: run_tsan_tests.sh <source-dir> <binary-dir> [jobs]}
JOBS=${3:-$(nproc)}
TSAN_DIR="$BIN/tsan"

# Some kernels/containers cannot execute TSan binaries at all (address
# space layout restrictions). Probe first and skip visibly (ctest
# SKIP_RETURN_CODE 77) instead of failing the suite on an environment
# limitation.
PROBE_DIR=$(mktemp -d)
trap 'rm -rf "$PROBE_DIR"' EXIT
printf 'int main() { return 0; }\n' > "$PROBE_DIR/probe.cpp"
if ! c++ -fsanitize=thread "$PROBE_DIR/probe.cpp" -o "$PROBE_DIR/probe" \
     2>/dev/null || ! "$PROBE_DIR/probe" >/dev/null 2>&1; then
  echo "SKIP: ThreadSanitizer is unavailable in this environment" >&2
  exit 77
fi

cmake -S "$SRC" -B "$TSAN_DIR" -DALGOPROF_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$TSAN_DIR" \
      --target algoprof_parallel_tests algoprof_service_tests \
               algoprofd algoprof_client -j "$JOBS"
cd "$TSAN_DIR"
# `parallel` plus `service`: the daemon multiplexes concurrent sessions
# onto one shared pool and streams from whichever thread advances the
# merge — exactly the cross-thread traffic TSan exists to check. The
# service label also covers TCP auth, backpressure policies, and
# journal replay, plus the restart cycle through the real binaries.
exec ctest -L 'parallel|service' --output-on-failure -j "$JOBS"

#!/usr/bin/env bash
# Build and run the `service` test label under ASan + UBSan.
#
# The ctest test `asan_service` (registered in tests/CMakeLists.txt for
# non-sanitizer builds) invokes this script, which configures a child
# build inside the current binary dir with -DALGOPROF_ASAN_UBSAN=ON,
# builds the service test binary plus the real daemon/client, and runs
# exactly the service label — the chaos fault schedules, journal
# fuzzing (bit flips, oversized length fields), retained-result
# eviction, graceful drain, and the SIGKILL restart + compaction
# cycles through the real binaries — with the memory checkers armed.
# The journal loader's bounds checks and the daemon's buffer handling
# under partial frames are exactly where ASan/UBSan earn their keep.
#
# Usage: run_asan_service_tests.sh <source-dir> <binary-dir> [jobs]
set -euo pipefail

SRC=${1:?usage: run_asan_service_tests.sh <source-dir> <binary-dir> [jobs]}
BIN=${2:?usage: run_asan_service_tests.sh <source-dir> <binary-dir> [jobs]}
JOBS=${3:-$(nproc)}
ASAN_DIR="$BIN/asan"

# Some kernels/containers cannot execute sanitizer binaries (address
# space layout restrictions). Probe first and skip visibly (ctest
# SKIP_RETURN_CODE 77) instead of failing the suite on an environment
# limitation.
PROBE_DIR=$(mktemp -d)
trap 'rm -rf "$PROBE_DIR"' EXIT
printf 'int main() { return 0; }\n' > "$PROBE_DIR/probe.cpp"
if ! c++ -fsanitize=address,undefined "$PROBE_DIR/probe.cpp" \
     -o "$PROBE_DIR/probe" 2>/dev/null || \
   ! "$PROBE_DIR/probe" >/dev/null 2>&1; then
  echo "SKIP: ASan/UBSan is unavailable in this environment" >&2
  exit 77
fi

cmake -S "$SRC" -B "$ASAN_DIR" -DALGOPROF_ASAN_UBSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$ASAN_DIR" \
      --target algoprof_service_tests algoprofd algoprof_client -j "$JOBS"
cd "$ASAN_DIR"
exec ctest -L service --output-on-failure -j "$JOBS"

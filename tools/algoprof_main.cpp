//===- tools/algoprof_main.cpp - The algoprof command-line tool -----------===//
///
/// \file
/// Profiles a MiniJ source file and prints its algorithmic profile:
///
///   algoprof program.mj [options]
///     --entry Class.method       entry point (default: Main.main)
///     --grouping MODE            common-input | same-method | dataflow
///     --equivalence CRIT         some | all | same-array | same-type
///     --snapshots MODE           eager | tracked
///     --sample N                 invocation-sampling threshold (0 = off)
///     --runs N                   run the entry N times (default 1)
///     --jobs J                   shard the runs over J worker threads
///                                (0 = hardware concurrency; output is
///                                identical for every J)
///     --input v1,v2,...          values for the external input channel
///     --cct                      also print the traditional CCT profile
///     --dot FILE                 write the repetition tree as Graphviz
///     --csv FILE                 write all interesting series as CSV
///
//===----------------------------------------------------------------------===//

#include "cct/CctProfiler.h"
#include "core/Session.h"
#include "parallel/SweepEngine.h"
#include "report/CsvWriter.h"
#include "report/DotExporter.h"
#include "report/TreePrinter.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

struct CliOptions {
  std::string File;
  std::string EntryClass = "Main";
  std::string EntryMethod = "main";
  GroupingStrategy Grouping = GroupingStrategy::CommonInput;
  SessionOptions Session;
  int Runs = 1;
  int Jobs = 1;
  std::vector<int64_t> Input;
  bool WithCct = false;
  std::string DotFile;
  std::string CsvFile;
};

void usageAndExit(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.mj> [--entry Class.method] "
               "[--grouping common-input|same-method|dataflow] "
               "[--equivalence some|all|same-array|same-type] "
               "[--snapshots eager|tracked] [--sample N] [--runs N] "
               "[--jobs J] [--input v1,v2,...] [--cct] [--dot FILE] "
               "[--csv FILE]\n",
               Argv0);
  std::exit(2);
}

/// Strictly parses a decimal integer: the whole string must be
/// consumed and the value must fit in int64_t. atoi/atoll would accept
/// "12abc" (as 12), turn garbage into 0, and silently saturate on
/// overflow — all of which used to make flags like `--runs` profile
/// something other than what was asked.
bool parseInt64(const char *S, int64_t &Out) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S, &End, 10);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

/// Strict bounded int for count-like flags.
bool parseIntIn(const char *S, int64_t Min, int64_t Max, int64_t &Out) {
  return parseInt64(S, Out) && Out >= Min && Out <= Max;
}

bool argError(const char *Flag, const char *V, const char *Expected) {
  std::fprintf(stderr, "error: invalid value '%s' for %s (expected %s)\n",
               V ? V : "<missing>", Flag, Expected);
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  auto Need = [&](int &I) -> const char * {
    if (I + 1 >= Argc)
      return nullptr;
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--entry") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      size_t Dot = S.find('.');
      if (Dot == std::string::npos)
        return false;
      Opts.EntryClass = S.substr(0, Dot);
      Opts.EntryMethod = S.substr(Dot + 1);
    } else if (Arg == "--grouping") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      if (S == "common-input")
        Opts.Grouping = GroupingStrategy::CommonInput;
      else if (S == "same-method")
        Opts.Grouping = GroupingStrategy::SameMethod;
      else if (S == "dataflow")
        Opts.Grouping = GroupingStrategy::CommonInputPlusDataflow;
      else
        return false;
    } else if (Arg == "--equivalence") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      if (S == "some")
        Opts.Session.Profile.Equivalence =
            EquivalenceStrategy::SomeElements;
      else if (S == "all")
        Opts.Session.Profile.Equivalence =
            EquivalenceStrategy::AllElements;
      else if (S == "same-array")
        Opts.Session.Profile.Equivalence = EquivalenceStrategy::SameArray;
      else if (S == "same-type")
        Opts.Session.Profile.Equivalence = EquivalenceStrategy::SameType;
      else
        return false;
    } else if (Arg == "--snapshots") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      if (S == "eager")
        Opts.Session.Profile.Snapshots = SnapshotMode::Eager;
      else if (S == "tracked")
        Opts.Session.Profile.Snapshots = SnapshotMode::Tracked;
      else
        return false;
    } else if (Arg == "--sample") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, std::numeric_limits<int64_t>::max(), N))
        return argError("--sample", V, "an integer >= 0");
      Opts.Session.Profile.SampleThreshold = N;
    } else if (Arg == "--runs") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 1, 1'000'000'000, N))
        return argError("--runs", V, "an integer >= 1");
      Opts.Runs = static_cast<int>(N);
    } else if (Arg == "--jobs") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, 1'000'000, N))
        return argError("--jobs", V,
                        "an integer >= 0 (0 = hardware concurrency)");
      Opts.Jobs = static_cast<int>(N);
    } else if (Arg == "--input") {
      const char *V = Need(I);
      if (!V)
        return argError("--input", V, "a comma-separated int list");
      // Split on commas and parse each field strictly: a stray
      // character, an empty field, or an out-of-range value used to be
      // silently truncated into the list.
      std::string S = V;
      size_t Pos = 0;
      while (!S.empty() && Pos <= S.size()) {
        size_t Comma = S.find(',', Pos);
        std::string Field = S.substr(
            Pos, Comma == std::string::npos ? std::string::npos
                                            : Comma - Pos);
        int64_t N;
        if (!parseInt64(Field.c_str(), N))
          return argError("--input", V,
                          "a comma-separated list of 64-bit integers");
        Opts.Input.push_back(N);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else if (Arg == "--cct") {
      Opts.WithCct = true;
    } else if (Arg == "--dot") {
      const char *V = Need(I);
      if (!V)
        return false;
      Opts.DotFile = V;
    } else if (Arg == "--csv") {
      const char *V = Need(I);
      if (!V)
        return false;
      Opts.CsvFile = V;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  return !Opts.File.empty();
}

std::string readFileOrDie(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::string Content;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  return Content;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    usageAndExit(Argv[0]);

  DiagnosticEngine Diags;
  auto CP = compileMiniJ(readFileOrDie(Opts.File), Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (CP->entryMethod(Opts.EntryClass, Opts.EntryMethod) < 0) {
    std::fprintf(stderr,
                 "error: no static no-arg method %s.%s in '%s'\n",
                 Opts.EntryClass.c_str(), Opts.EntryMethod.c_str(),
                 Opts.File.c_str());
    return 1;
  }

  // --jobs 1 keeps the classic serial accumulating session; any other
  // value shards the runs over the sweep engine. Output is identical
  // either way (that equivalence is what tests/ParallelSweepTest.cpp
  // locks down).
  std::unique_ptr<ProfileSession> Serial;
  std::unique_ptr<parallel::SweepEngine> Engine;
  const RepetitionTree *Tree = nullptr;
  const InputTable *Inputs = nullptr;
  std::vector<AlgorithmProfile> Profiles;
  uint64_t Instructions = 0;

  if (Opts.Jobs == 1) {
    Serial = std::make_unique<ProfileSession>(*CP, Opts.Session);
    for (int Run = 0; Run < Opts.Runs; ++Run) {
      vm::IoChannels Io;
      Io.Input = Opts.Input;
      vm::RunResult R =
          Serial->run(Opts.EntryClass, Opts.EntryMethod, Io);
      Instructions += R.InstrCount;
      if (!R.ok()) {
        std::fprintf(stderr, "run %d failed: %s\n", Run + 1,
                     R.TrapMessage.c_str());
        return 1;
      }
    }
    Tree = &Serial->tree();
    Inputs = &Serial->inputs();
    Profiles = Serial->buildProfiles(Opts.Grouping);
  } else {
    Engine = std::make_unique<parallel::SweepEngine>(*CP, Opts.Session);
    std::vector<vm::IoChannels> RunInputs(
        static_cast<size_t>(Opts.Runs));
    for (vm::IoChannels &Io : RunInputs)
      Io.Input = Opts.Input;
    parallel::SweepResult SR = Engine->sweepWithInputs(
        Opts.EntryClass, Opts.EntryMethod, Opts.Jobs, RunInputs);
    for (size_t Run = 0; Run < SR.Runs.size(); ++Run) {
      Instructions += SR.Runs[Run].InstrCount;
      if (!SR.Runs[Run].ok()) {
        std::fprintf(stderr, "run %zu failed: %s\n", Run + 1,
                     SR.Runs[Run].TrapMessage.c_str());
        return 1;
      }
    }
    Tree = &Engine->tree();
    Inputs = &Engine->inputs();
    Profiles = Engine->buildProfiles(Opts.Grouping);
  }

  std::printf("%d run(s), %llu bytecode instructions, %d repetitions, "
              "%d input(s), %lld structure snapshots\n\n",
              Opts.Runs, static_cast<unsigned long long>(Instructions),
              Tree->numRepetitions(),
              static_cast<int>(Inputs->liveInputs().size()),
              static_cast<long long>(Inputs->snapshotsTaken()));

  std::printf("%s",
              report::renderAnnotatedTree(*Tree, Profiles).c_str());

  if (Opts.WithCct) {
    // A second, CCT-profiled execution over the same program.
    cct::CctProfiler Profiler(*CP->Mod);
    vm::Interpreter Interp(CP->Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
    for (int Run = 0; Run < Opts.Runs; ++Run) {
      vm::IoChannels Io;
      Io.Input = Opts.Input;
      Interp.run(CP->entryMethod(Opts.EntryClass, Opts.EntryMethod),
                 &Profiler, Plan, Io);
    }
    std::printf("\nTraditional CCT profile:\n%s",
                report::renderCct(Profiler).c_str());
  }

  // Report-writer failures must surface as a failing exit code: a
  // sweep script that asks for --dot/--csv and gets exit 0 with no
  // file would silently drop its results.
  bool WriteFailed = false;
  if (!Opts.DotFile.empty()) {
    if (report::writeFile(Opts.DotFile,
                          report::repetitionTreeToDot(*Tree,
                                                      Profiles))) {
      std::printf("\nwrote %s\n", Opts.DotFile.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.DotFile.c_str());
      WriteFailed = true;
    }
  }

  if (!Opts.CsvFile.empty()) {
    std::vector<std::pair<std::string, std::vector<SeriesPoint>>> All;
    for (const AlgorithmProfile &AP : Profiles)
      for (const AlgorithmProfile::InputSeries &Ser : AP.Series)
        if (Ser.Interesting)
          All.emplace_back("algo" + std::to_string(AP.Algo.Id) + ":" +
                               Ser.Kind,
                           Ser.Series);
    if (report::writeFile(Opts.CsvFile, report::seriesToCsv(All))) {
      std::printf("wrote %s\n", Opts.CsvFile.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.CsvFile.c_str());
      WriteFailed = true;
    }
  }
  return WriteFailed ? 1 : 0;
}

//===- tools/algoprof_main.cpp - The algoprof command-line tool -----------===//
///
/// \file
/// Profiles a MiniJ source file and prints its algorithmic profile:
///
///   algoprof program.mj [options]
///     --entry Class.method       entry point (default: Main.main)
///     --grouping MODE            common-input | same-method | dataflow
///     --equivalence CRIT         some | all | same-array | same-type
///     --snapshots MODE           eager | tracked
///     --sample N                 invocation-sampling threshold (0 = off)
///     --runs N                   run the entry N times (default 1)
///     --jobs J                   shard the runs over J worker threads
///                                (0 = hardware concurrency; output is
///                                identical for every J)
///     --input v1,v2,...          values for the external input channel
///     --seeds v1,v2,...          one run per seed, each run's input
///                                channel pre-loaded with just its seed
///                                (overrides --runs/--input)
///     --policy P                 per-run failure policy: fail | skip |
///                                retry (default fail; see
///                                docs/resilience.md)
///     --retries N                extra attempts per failed run under
///                                --policy retry (default 2)
///     --max-heap-bytes N         per-run heap-byte budget (0 = off);
///                                overruns end the run with a
///                                deterministic budget trap, not OOM
///     --deadline-ms N            per-run wall-clock deadline (0 = off)
///     --inject SPEC              arm deterministic faults, e.g.
///                                heap-oom@run3,io-write-fail@metrics
///                                (env: ALGOPROF_INJECT)
///     --dispatch TIER            VM execution tier: auto (default) |
///                                switch | threaded | threaded+fused |
///                                threaded+fused+ic. All tiers produce
///                                identical profiles; the explicit ones
///                                exist for benchmarking and
///                                differential testing
///                                (docs/interpreter.md)
///     --corpus WHAT              batch-profile a whole corpus instead
///                                of one file: 'builtin' (every built-in
///                                example/Table-1 program) or a
///                                directory of .mj files (sorted by
///                                name). Each program runs the full
///                                --seeds grid (default 4,8,...,24 when
///                                no --seeds/--runs given) on one shared
///                                work-stealing pool sized by --jobs,
///                                compiling each distinct source once.
///                                Policies/budgets/--inject apply per
///                                program (run indices restart at 0).
///                                Mutually exclusive with a file
///                                argument, --format/--out, and --cct.
///     --cct                      also print the traditional CCT profile
///     --format F                 render a report: table | tree | csv |
///                                dot | json (repeatable; each job goes
///                                to the next --out, or stdout)
///     --out FILE                 write the preceding --format job to
///                                FILE instead of stdout
///     --trace FILE               write a Chrome trace-event JSON of
///                                the profiler's own phase spans
///                                (open in ui.perfetto.dev)
///     --metrics FILE             write a Prometheus-style snapshot of
///                                the profiler's own counters/timers
///
/// The pre-registry `--dot FILE` / `--csv FILE` aliases are gone; they
/// are rejected with a pointer to the equivalent --format/--out pair.
///
//===----------------------------------------------------------------------===//

#include "cct/CctProfiler.h"
#include "core/Session.h"
#include "parallel/CorpusRunner.h"
#include "programs/Programs.h"
#include "obs/MetricsExport.h"
#include "obs/Obs.h"
#include "obs/TraceExport.h"
#include "report/CsvWriter.h"
#include "report/Reporter.h"
#include "report/TreePrinter.h"
#include "resilience/Resilience.h"

#include <exception>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

/// One requested report: a format name plus an output path (empty =
/// stdout).
struct RenderJob {
  std::string Format;
  std::string Out;
};

struct CliOptions {
  std::string File;
  std::string Corpus; ///< --corpus value: "builtin" or a directory.
  std::string EntryClass = "Main";
  std::string EntryMethod = "main";
  GroupingStrategy Grouping = GroupingStrategy::CommonInput;
  SessionOptions Session;
  bool WithCct = false;
  bool InjectGiven = false; ///< --inject on the command line (overrides
                            ///< the ALGOPROF_INJECT environment spec).
  std::vector<RenderJob> Jobs;
  std::string TraceFile;
  std::string MetricsFile;
};

void usageAndExit(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.mj> | --corpus builtin|DIR "
               "[--entry Class.method] "
               "[--grouping common-input|same-method|dataflow] "
               "[--equivalence some|all|same-array|same-type] "
               "[--snapshots eager|tracked] [--sample N] [--runs N] "
               "[--jobs J] [--input v1,v2,...] [--seeds v1,v2,...] "
               "[--policy fail|skip|retry] [--retries N] "
               "[--max-heap-bytes N] [--deadline-ms N] [--inject SPEC] "
               "[--dispatch auto|switch|threaded|threaded+fused|"
               "threaded+fused+ic] "
               "[--cct] "
               "[--format table|tree|csv|dot|json] [--out FILE] "
               "[--trace FILE] [--metrics FILE]\n",
               Argv0);
  std::exit(2);
}

/// Strictly parses a decimal integer: the whole string must be
/// consumed and the value must fit in int64_t. atoi/atoll would accept
/// "12abc" (as 12), turn garbage into 0, and silently saturate on
/// overflow — all of which used to make flags like `--runs` profile
/// something other than what was asked.
bool parseInt64(const char *S, int64_t &Out) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S, &End, 10);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

/// Strict bounded int for count-like flags.
bool parseIntIn(const char *S, int64_t Min, int64_t Max, int64_t &Out) {
  return parseInt64(S, Out) && Out >= Min && Out <= Max;
}

/// Splits a comma-separated list of strictly parsed 64-bit integers. A
/// stray character, an empty field, or an out-of-range value fails the
/// whole list (it used to be silently truncated).
bool parseIntList(const char *S, std::vector<int64_t> &Out) {
  if (!S)
    return false;
  std::string Str = S;
  size_t Pos = 0;
  while (!Str.empty() && Pos <= Str.size()) {
    size_t Comma = Str.find(',', Pos);
    std::string Field = Str.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    int64_t N;
    if (!parseInt64(Field.c_str(), N))
      return false;
    Out.push_back(N);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

bool argError(const char *Flag, const char *V, const char *Expected) {
  std::fprintf(stderr, "error: invalid value '%s' for %s (expected %s)\n",
               V ? V : "<missing>", Flag, Expected);
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  auto Need = [&](int &I) -> const char * {
    if (I + 1 >= Argc)
      return nullptr;
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--entry") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      size_t Dot = S.find('.');
      if (Dot == std::string::npos)
        return false;
      Opts.EntryClass = S.substr(0, Dot);
      Opts.EntryMethod = S.substr(Dot + 1);
    } else if (Arg == "--grouping") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      if (S == "common-input")
        Opts.Grouping = GroupingStrategy::CommonInput;
      else if (S == "same-method")
        Opts.Grouping = GroupingStrategy::SameMethod;
      else if (S == "dataflow")
        Opts.Grouping = GroupingStrategy::CommonInputPlusDataflow;
      else
        return false;
    } else if (Arg == "--equivalence") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      if (S == "some")
        Opts.Session.Profile.Equivalence =
            EquivalenceStrategy::SomeElements;
      else if (S == "all")
        Opts.Session.Profile.Equivalence =
            EquivalenceStrategy::AllElements;
      else if (S == "same-array")
        Opts.Session.Profile.Equivalence = EquivalenceStrategy::SameArray;
      else if (S == "same-type")
        Opts.Session.Profile.Equivalence = EquivalenceStrategy::SameType;
      else
        return false;
    } else if (Arg == "--snapshots") {
      const char *V = Need(I);
      if (!V)
        return false;
      std::string S = V;
      if (S == "eager")
        Opts.Session.Profile.Snapshots = SnapshotMode::Eager;
      else if (S == "tracked")
        Opts.Session.Profile.Snapshots = SnapshotMode::Tracked;
      else
        return false;
    } else if (Arg == "--sample") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, std::numeric_limits<int64_t>::max(), N))
        return argError("--sample", V, "an integer >= 0");
      Opts.Session.Profile.SampleThreshold = N;
    } else if (Arg == "--runs") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 1, 1'000'000'000, N))
        return argError("--runs", V, "an integer >= 1");
      Opts.Session.Runs = static_cast<int>(N);
    } else if (Arg == "--jobs") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, 1'000'000, N))
        return argError("--jobs", V,
                        "an integer >= 0 (0 = hardware concurrency)");
      Opts.Session.Jobs = static_cast<int>(N);
    } else if (Arg == "--input") {
      const char *V = Need(I);
      if (!V || !parseIntList(V, Opts.Session.Input))
        return argError("--input", V,
                        "a comma-separated list of 64-bit integers");
    } else if (Arg == "--seeds") {
      const char *V = Need(I);
      if (!V || !parseIntList(V, Opts.Session.Seeds))
        return argError("--seeds", V,
                        "a comma-separated list of 64-bit integers");
    } else if (Arg == "--policy") {
      const char *V = Need(I);
      if (!V || !resilience::parseFailurePolicy(V, Opts.Session.Policy))
        return argError("--policy", V, "fail|skip|retry");
    } else if (Arg == "--retries") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, 1000, N))
        return argError("--retries", V, "an integer in [0, 1000]");
      Opts.Session.MaxAttempts = static_cast<int>(N) + 1;
    } else if (Arg == "--max-heap-bytes") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, std::numeric_limits<int64_t>::max(), N))
        return argError("--max-heap-bytes", V, "an integer >= 0 (0 = off)");
      Opts.Session.Run.MaxHeapBytes = static_cast<uint64_t>(N);
    } else if (Arg == "--deadline-ms") {
      const char *V = Need(I);
      int64_t N;
      if (!V || !parseIntIn(V, 0, std::numeric_limits<int64_t>::max(), N))
        return argError("--deadline-ms", V, "an integer >= 0 (0 = off)");
      Opts.Session.Run.RunDeadlineMs = static_cast<uint64_t>(N);
    } else if (Arg == "--inject") {
      const char *V = Need(I);
      std::string Err;
      if (!V || !resilience::FaultPlan::parse(V, Opts.Session.Faults, Err))
        return argError("--inject", V,
                        Err.empty() ? "a fault spec like heap-oom@run3"
                                    : Err.c_str());
      Opts.InjectGiven = true;
    } else if (Arg == "--dispatch") {
      const char *V = Need(I);
      std::string S = V ? V : "";
      // Each value is one rung of the ablation ladder (see
      // docs/interpreter.md): auto picks the fastest compiled-in loop
      // with every fast path on; the explicit values pin a tier.
      if (S == "auto") {
        Opts.Session.Run.Dispatch = vm::DispatchMode::Auto;
        Opts.Session.Run.Superinstructions = true;
        Opts.Session.Run.InlineCaches = true;
      } else if (S == "switch") {
        Opts.Session.Run.Dispatch = vm::DispatchMode::Switch;
        Opts.Session.Run.Superinstructions = false;
        Opts.Session.Run.InlineCaches = false;
      } else if (S == "threaded") {
        Opts.Session.Run.Dispatch = vm::DispatchMode::Threaded;
        Opts.Session.Run.Superinstructions = false;
        Opts.Session.Run.InlineCaches = false;
      } else if (S == "threaded+fused") {
        Opts.Session.Run.Dispatch = vm::DispatchMode::Threaded;
        Opts.Session.Run.Superinstructions = true;
        Opts.Session.Run.InlineCaches = false;
      } else if (S == "threaded+fused+ic") {
        Opts.Session.Run.Dispatch = vm::DispatchMode::Threaded;
        Opts.Session.Run.Superinstructions = true;
        Opts.Session.Run.InlineCaches = true;
      } else {
        return argError("--dispatch", V,
                        "auto|switch|threaded|threaded+fused|"
                        "threaded+fused+ic");
      }
    } else if (Arg == "--corpus") {
      const char *V = Need(I);
      if (!V || !*V)
        return argError("--corpus", V,
                        "'builtin' or a directory of .mj files");
      Opts.Corpus = V;
    } else if (Arg == "--cct") {
      Opts.WithCct = true;
    } else if (Arg == "--format") {
      const char *V = Need(I);
      if (!V || !report::Registry::builtin().find(V)) {
        std::string Names;
        for (const std::string &N : report::Registry::builtin().names())
          Names += (Names.empty() ? "" : "|") + N;
        return argError("--format", V, Names.c_str());
      }
      Opts.Jobs.push_back({V, ""});
    } else if (Arg == "--out") {
      const char *V = Need(I);
      if (!V)
        return argError("--out", V, "a file path");
      if (Opts.Jobs.empty() || !Opts.Jobs.back().Out.empty()) {
        std::fprintf(stderr,
                     "error: --out must follow a --format job\n");
        return false;
      }
      Opts.Jobs.back().Out = V;
    } else if (Arg == "--trace") {
      const char *V = Need(I);
      if (!V)
        return argError("--trace", V, "a file path");
      Opts.TraceFile = V;
    } else if (Arg == "--metrics") {
      const char *V = Need(I);
      if (!V)
        return argError("--metrics", V, "a file path");
      Opts.MetricsFile = V;
    } else if (Arg == "--dot" || Arg == "--csv") {
      // Removed aliases (deprecated since the report-registry rewrite);
      // name the exact replacement instead of a generic usage dump.
      std::fprintf(stderr,
                   "error: %s was removed; use --format %s --out FILE "
                   "(it writes the identical bytes)\n",
                   Arg.c_str(), Arg.c_str() + 2);
      return false;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  if (!Opts.Corpus.empty()) {
    // Corpus batches produce one summary over many programs; the
    // single-file report/CCT machinery does not compose with that.
    if (!Opts.File.empty()) {
      std::fprintf(stderr,
                   "error: --corpus and a file argument are mutually "
                   "exclusive\n");
      return false;
    }
    if (!Opts.Jobs.empty() || Opts.WithCct) {
      std::fprintf(stderr,
                   "error: --corpus does not support --format/--out/"
                   "--cct\n");
      return false;
    }
    return true;
  }
  return !Opts.File.empty();
}

std::string readFileOrDie(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::string Content;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  return Content;
}

/// Resolves the --corpus value into named program sources: the built-in
/// corpus, or every .mj file of a directory in name order. Returns
/// false (with an invalid-value diagnostic) when the value names
/// neither.
bool collectCorpus(const std::string &Spec,
                   std::vector<parallel::CorpusEntry> &Entries) {
  if (Spec == "builtin") {
    for (const programs::CorpusProgram &P : programs::corpusPrograms())
      Entries.push_back({P.Name, P.Source});
    return true;
  }
  namespace fs = std::filesystem;
  std::error_code Ec;
  std::vector<fs::path> Files;
  for (fs::directory_iterator It(Spec, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    if (It->is_regular_file(Ec) && It->path().extension() == ".mj")
      Files.push_back(It->path());
  }
  std::sort(Files.begin(), Files.end());
  if (Ec || Files.empty()) {
    argError("--corpus", Spec.c_str(),
             "'builtin' or a directory containing .mj files");
    return false;
  }
  for (const fs::path &P : Files)
    Entries.push_back({P.filename().string(), readFileOrDie(P.string())});
  return true;
}

/// The --corpus driving mode: every program × the seed grid as one job
/// graph on a shared work-stealing pool. The stdout summary is fully
/// deterministic — program order is corpus input order and no timing
/// or schedule-dependent value is printed — so `--jobs 1` and
/// `--jobs N` outputs are byte-identical (cli_test.sh asserts this).
int runCorpus(CliOptions &Opts) {
  std::vector<parallel::CorpusEntry> Entries;
  if (!collectCorpus(Opts.Corpus, Entries))
    return 2;

  // Default run plan: a seed grid, so seeded programs get a real
  // input-size sweep out of the box. Explicit --seeds/--runs win.
  if (Opts.Session.Seeds.empty() && Opts.Session.Runs == 1)
    Opts.Session.Seeds = {4, 8, 12, 16, 20, 24};
  size_t RunsPerProgram = Opts.Session.Seeds.empty()
                              ? static_cast<size_t>(Opts.Session.Runs)
                              : Opts.Session.Seeds.size();

  parallel::CorpusRunner Runner(Opts.Session);
  parallel::CorpusResult Result =
      Runner.run(Entries, Opts.EntryClass, Opts.EntryMethod);

  std::printf("corpus: %d program(s) x %d run(s), %llu compile(s), "
              "%llu cache hit(s)\n\n",
              static_cast<int>(Entries.size()),
              static_cast<int>(RunsPerProgram),
              static_cast<unsigned long long>(Result.Cache.Compiles),
              static_cast<unsigned long long>(Result.Cache.Hits));

  size_t NameWidth = 7; // "program"
  for (const parallel::CorpusProgramResult &R : Result.Programs)
    NameWidth = std::max(NameWidth, R.Name.size());
  std::printf("%-*s  %5s  %6s  %11s  %6s  %10s  status\n",
              static_cast<int>(NameWidth), "program", "runs", "merged",
              "quarantined", "failed", "algorithms");

  bool AnyBad = false;
  for (const parallel::CorpusProgramResult &R : Result.Programs) {
    if (!R.Error.empty()) {
      AnyBad = true;
      std::printf("%-*s  %5s  %6s  %11s  %6s  %10s  compile error\n",
                  static_cast<int>(NameWidth), R.Name.c_str(), "-", "-",
                  "-", "-", "-");
      std::fprintf(stderr, "error: %s failed to compile:\n%s",
                   R.Name.c_str(), R.Error.c_str());
      continue;
    }
    size_t Quarantined = 0, Unquarantined = 0;
    for (const resilience::FailureInfo &FI : R.Sweep.Failures) {
      (FI.Quarantined ? Quarantined : Unquarantined) += 1;
      std::string Budget =
          FI.Budget.empty() ? "" : " (budget " + FI.Budget + ")";
      std::fprintf(stderr, "%s: %s run %lld %s after %d attempt(s)%s: %s\n",
                   FI.Quarantined ? "warning" : "error", R.Name.c_str(),
                   static_cast<long long>(FI.Run),
                   FI.Quarantined ? "quarantined" : "failed", FI.Attempts,
                   Budget.c_str(), FI.Message.c_str());
    }
    size_t NumAlgos = R.Engine->buildProfiles(Opts.Grouping).size();
    const char *Status = "ok";
    if (!R.Sweep.usable()) {
      Status = "failed";
      AnyBad = true;
    } else if (!R.Sweep.Failures.empty()) {
      Status = "degraded";
    }
    std::printf("%-*s  %5d  %6lld  %11d  %6d  %10d  %s\n",
                static_cast<int>(NameWidth), R.Name.c_str(),
                static_cast<int>(R.Sweep.Runs.size()),
                static_cast<long long>(R.Sweep.MergedRuns),
                static_cast<int>(Quarantined),
                static_cast<int>(Unquarantined),
                static_cast<int>(NumAlgos), Status);
  }

  bool WriteFailed = false;
  if (!Opts.TraceFile.empty()) {
    if (Opts.Session.Faults.firesIoWrite("trace") ||
        !report::writeFile(Opts.TraceFile,
                           obs::chromeTraceJson(obs::snapshot()))) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.TraceFile.c_str());
      WriteFailed = true;
    }
  }
  if (!Opts.MetricsFile.empty()) {
    if (Opts.Session.Faults.firesIoWrite("metrics") ||
        !report::writeFile(Opts.MetricsFile,
                           obs::prometheusText(obs::snapshot()))) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.MetricsFile.c_str());
      WriteFailed = true;
    }
  }
  return (AnyBad || WriteFailed) ? 1 : 0;
}

int runTool(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    usageAndExit(Argv[0]);

  // Fault injection: the CLI flag wins; otherwise the ALGOPROF_INJECT
  // environment spec arms the same plan (how ctest drives injection
  // through shell cases without touching each command line).
  if (!Opts.InjectGiven) {
    if (const char *Env = std::getenv("ALGOPROF_INJECT")) {
      std::string Err;
      if (!resilience::FaultPlan::parse(Env, Opts.Session.Faults, Err)) {
        std::fprintf(stderr, "error: invalid ALGOPROF_INJECT: %s\n",
                     Err.c_str());
        return 2;
      }
    }
  }
  // All faults — run-scoped and io-scoped — now travel inside
  // SessionOptions::Faults; the write sites below consult the session's
  // own plan, so nothing is armed process-globally.

  // Span recording must be live before compilation so the frontend
  // phases land in the trace.
  if (!Opts.TraceFile.empty()) {
#if ALGOPROF_OBS_ENABLED
    obs::enableTracing(true);
#else
    std::fprintf(stderr,
                 "warning: this binary was built with ALGOPROF_OBS=OFF; "
                 "--trace will contain no events\n");
#endif
  }
#if !ALGOPROF_OBS_ENABLED
  if (!Opts.MetricsFile.empty())
    std::fprintf(stderr,
                 "warning: this binary was built with ALGOPROF_OBS=OFF; "
                 "--metrics will contain only zeros\n");
#endif

  if (!Opts.Corpus.empty())
    return runCorpus(Opts);

  DiagnosticEngine Diags;
  auto CP = compileMiniJ(readFileOrDie(Opts.File), Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (CP->entryMethod(Opts.EntryClass, Opts.EntryMethod) < 0) {
    std::fprintf(stderr,
                 "error: no static no-arg method %s.%s in '%s'\n",
                 Opts.EntryClass.c_str(), Opts.EntryMethod.c_str(),
                 Opts.File.c_str());
    return 1;
  }

  // ProfileDriver is the one-true-path over serial and sharded
  // profiling; --jobs 1 keeps the classic accumulating session, any
  // other value shards the runs over the sweep engine. Output is
  // identical either way (tests/ParallelSweepTest.cpp locks that down).
  ProfileDriver Driver(*CP, Opts.Session);
  std::vector<vm::RunResult> Results =
      Driver.runAll(Opts.EntryClass, Opts.EntryMethod);
  uint64_t Instructions = 0;
  for (const vm::RunResult &R : Results)
    Instructions += R.InstrCount;

  // Degraded-run reporting. Quarantined runs (skip/retry policies) are
  // warnings — the sweep survives them and the profile covers the
  // survivors. Any unquarantined failure is fatal, named with the run
  // index and the budget that tripped (when one did).
  for (const resilience::FailureInfo &FI : Driver.failures()) {
    std::string Budget =
        FI.Budget.empty() ? "" : " (budget " + FI.Budget + ")";
    if (FI.Quarantined)
      std::fprintf(stderr,
                   "warning: run %lld quarantined after %d attempt(s)%s: "
                   "%s\n",
                   static_cast<long long>(FI.Run), FI.Attempts,
                   Budget.c_str(), FI.Message.c_str());
    else
      std::fprintf(stderr, "error: run %lld failed%s: %s\n",
                   static_cast<long long>(FI.Run), Budget.c_str(),
                   FI.Message.c_str());
  }
  if (!Driver.usable())
    return 1;

  const RepetitionTree &Tree = Driver.tree();
  const InputTable &Inputs = Driver.inputs();
  std::vector<AlgorithmProfile> Profiles =
      Driver.buildProfiles(Opts.Grouping);

  std::printf("%d run(s), %llu bytecode instructions, %d repetitions, "
              "%d input(s), %lld structure snapshots\n\n",
              static_cast<int>(Results.size()),
              static_cast<unsigned long long>(Instructions),
              Tree.numRepetitions(),
              static_cast<int>(Inputs.liveInputs().size()),
              static_cast<long long>(Inputs.snapshotsTaken()));

  std::printf("%s", report::renderAnnotatedTree(Tree, Profiles).c_str());

  if (Opts.WithCct) {
    // A second, CCT-profiled execution over the same program.
    cct::CctProfiler Profiler(*CP->Mod);
    vm::Interpreter Interp(CP->Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
    size_t CctRuns = Opts.Session.Seeds.empty()
                         ? static_cast<size_t>(Opts.Session.Runs)
                         : Opts.Session.Seeds.size();
    for (size_t Run = 0; Run < CctRuns; ++Run) {
      vm::IoChannels Io;
      Io.Input = Opts.Session.Input;
      Interp.run(CP->entryMethod(Opts.EntryClass, Opts.EntryMethod),
                 &Profiler, Plan, Io);
    }
    std::printf("\nTraditional CCT profile:\n%s",
                report::renderCct(Profiler).c_str());
  }

  // Report-writer failures must surface as a failing exit code: a
  // sweep script that asks for an output file and gets exit 0 with no
  // file would silently drop its results. The same rule covers
  // --trace/--metrics below.
  bool WriteFailed = false;
  report::ReportInput RI{&Tree, &Inputs, &Profiles, &Driver.failures()};
  bool FirstFileJob = true;
  for (const RenderJob &Job : Opts.Jobs) {
    const report::Reporter *R = report::Registry::builtin().find(Job.Format);
    std::string Doc = R->render(RI);
    if (Job.Out.empty()) {
      std::printf("\n%s", Doc.c_str());
      continue;
    }
    // An armed io-write fault is indistinguishable from a real failed
    // write: same message, same failing exit.
    if (!Opts.Session.Faults.firesIoWrite("report") &&
        report::writeFile(Job.Out, Doc)) {
      std::printf("%swrote %s\n", FirstFileJob ? "\n" : "",
                  Job.Out.c_str());
      FirstFileJob = false;
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n", Job.Out.c_str());
      WriteFailed = true;
    }
  }

  if (!Opts.TraceFile.empty()) {
    if (Opts.Session.Faults.firesIoWrite("trace") ||
        !report::writeFile(Opts.TraceFile,
                           obs::chromeTraceJson(obs::snapshot()))) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.TraceFile.c_str());
      WriteFailed = true;
    }
  }
  if (!Opts.MetricsFile.empty()) {
    if (Opts.Session.Faults.firesIoWrite("metrics") ||
        !report::writeFile(Opts.MetricsFile,
                           obs::prometheusText(obs::snapshot()))) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.MetricsFile.c_str());
      WriteFailed = true;
    }
  }
  return WriteFailed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // The tool's exception boundary: nothing below may escape as
  // std::terminate. bad_alloc in particular used to kill the process
  // with no diagnostic when a hostile program out-allocated the host
  // (run-scoped OOM is already converted to a budget trap inside the
  // VM; this catches allocation failure in the pipeline around it).
  try {
    return runTool(Argc, Argv);
  } catch (const std::bad_alloc &) {
    std::fprintf(stderr, "error: out of memory\n");
    return 1;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: unhandled exception: %s\n", E.what());
    return 1;
  }
}

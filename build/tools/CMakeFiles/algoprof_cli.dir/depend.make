# Empty dependencies file for algoprof_cli.
# This may be replaced when dependencies are built.

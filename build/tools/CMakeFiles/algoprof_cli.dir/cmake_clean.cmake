file(REMOVE_RECURSE
  "CMakeFiles/algoprof_cli.dir/algoprof_main.cpp.o"
  "CMakeFiles/algoprof_cli.dir/algoprof_main.cpp.o.d"
  "algoprof"
  "algoprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algoprof_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

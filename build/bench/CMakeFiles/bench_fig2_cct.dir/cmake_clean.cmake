file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cct.dir/bench_fig2_cct.cpp.o"
  "CMakeFiles/bench_fig2_cct.dir/bench_fig2_cct.cpp.o.d"
  "bench_fig2_cct"
  "bench_fig2_cct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

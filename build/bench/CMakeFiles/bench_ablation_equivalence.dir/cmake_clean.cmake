file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_equivalence.dir/bench_ablation_equivalence.cpp.o"
  "CMakeFiles/bench_ablation_equivalence.dir/bench_ablation_equivalence.cpp.o.d"
  "bench_ablation_equivalence"
  "bench_ablation_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig1_insertion_sort.
# This may be replaced when dependencies are built.

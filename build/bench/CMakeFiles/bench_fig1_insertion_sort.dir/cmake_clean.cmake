file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_insertion_sort.dir/bench_fig1_insertion_sort.cpp.o"
  "CMakeFiles/bench_fig1_insertion_sort.dir/bench_fig1_insertion_sort.cpp.o.d"
  "bench_fig1_insertion_sort"
  "bench_fig1_insertion_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_insertion_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_paradigm.dir/bench_sec43_paradigm.cpp.o"
  "CMakeFiles/bench_sec43_paradigm.dir/bench_sec43_paradigm.cpp.o.d"
  "bench_sec43_paradigm"
  "bench_sec43_paradigm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_paradigm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

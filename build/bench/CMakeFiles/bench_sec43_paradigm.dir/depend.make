# Empty dependencies file for bench_sec43_paradigm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_repetition_tree.dir/bench_fig3_repetition_tree.cpp.o"
  "CMakeFiles/bench_fig3_repetition_tree.dir/bench_fig3_repetition_tree.cpp.o.d"
  "bench_fig3_repetition_tree"
  "bench_fig3_repetition_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_repetition_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

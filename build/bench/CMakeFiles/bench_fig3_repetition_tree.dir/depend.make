# Empty dependencies file for bench_fig3_repetition_tree.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig4_arraylist_tree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_related_goldsmith.dir/bench_related_goldsmith.cpp.o"
  "CMakeFiles/bench_related_goldsmith.dir/bench_related_goldsmith.cpp.o.d"
  "bench_related_goldsmith"
  "bench_related_goldsmith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_goldsmith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_related_goldsmith.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for algoprof_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AlgoProfilerTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/AlgoProfilerTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/AlgoProfilerTest.cpp.o.d"
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/BlockCountTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/BlockCountTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/BlockCountTest.cpp.o.d"
  "/root/repo/tests/BytecodeLevelTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/BytecodeLevelTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/BytecodeLevelTest.cpp.o.d"
  "/root/repo/tests/CallGraphTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/CallGraphTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/CallGraphTest.cpp.o.d"
  "/root/repo/tests/CctTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/CctTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/CctTest.cpp.o.d"
  "/root/repo/tests/ClassificationTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/ClassificationTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/ClassificationTest.cpp.o.d"
  "/root/repo/tests/CompilerTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/CompilerTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/CompilerTest.cpp.o.d"
  "/root/repo/tests/ComplexityZooTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/ComplexityZooTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/ComplexityZooTest.cpp.o.d"
  "/root/repo/tests/ConformanceTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/ConformanceTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/ConformanceTest.cpp.o.d"
  "/root/repo/tests/CostMapTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/CostMapTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/CostMapTest.cpp.o.d"
  "/root/repo/tests/CurveFitTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/CurveFitTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/CurveFitTest.cpp.o.d"
  "/root/repo/tests/DotExporterTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/DotExporterTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/DotExporterTest.cpp.o.d"
  "/root/repo/tests/EndToEndTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/EndToEndTest.cpp.o.d"
  "/root/repo/tests/GroupingTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/GroupingTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/GroupingTest.cpp.o.d"
  "/root/repo/tests/HeapTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/HeapTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/HeapTest.cpp.o.d"
  "/root/repo/tests/IndexDataflowTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/IndexDataflowTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/IndexDataflowTest.cpp.o.d"
  "/root/repo/tests/InputTableTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/InputTableTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/InputTableTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/LoopEventMapTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/LoopEventMapTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/LoopEventMapTest.cpp.o.d"
  "/root/repo/tests/LoopEventsTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/LoopEventsTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/LoopEventsTest.cpp.o.d"
  "/root/repo/tests/ModuleTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/ModuleTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/ModuleTest.cpp.o.d"
  "/root/repo/tests/MultiMeasureTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/MultiMeasureTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/MultiMeasureTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RecursiveTypesTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/RecursiveTypesTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/RecursiveTypesTest.cpp.o.d"
  "/root/repo/tests/ReportTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/ReportTest.cpp.o.d"
  "/root/repo/tests/RobustnessTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/RobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/RobustnessTest.cpp.o.d"
  "/root/repo/tests/SamplingTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/SamplingTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/SamplingTest.cpp.o.d"
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/SessionTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/SessionTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/SessionTest.cpp.o.d"
  "/root/repo/tests/SmokeTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/SmokeTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/SmokeTest.cpp.o.d"
  "/root/repo/tests/SnapshotModeTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/SnapshotModeTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/SnapshotModeTest.cpp.o.d"
  "/root/repo/tests/StreamInputTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/StreamInputTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/StreamInputTest.cpp.o.d"
  "/root/repo/tests/Table1Test.cpp" "tests/CMakeFiles/algoprof_tests.dir/Table1Test.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/Table1Test.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/VmTest.cpp" "tests/CMakeFiles/algoprof_tests.dir/VmTest.cpp.o" "gcc" "tests/CMakeFiles/algoprof_tests.dir/VmTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/algoprof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/io_profile.dir/io_profile.cpp.o"
  "CMakeFiles/io_profile.dir/io_profile.cpp.o.d"
  "io_profile"
  "io_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

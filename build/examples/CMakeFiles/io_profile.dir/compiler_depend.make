# Empty compiler generated dependencies file for io_profile.
# This may be replaced when dependencies are built.

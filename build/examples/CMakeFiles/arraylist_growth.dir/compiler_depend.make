# Empty compiler generated dependencies file for arraylist_growth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/arraylist_growth.dir/arraylist_growth.cpp.o"
  "CMakeFiles/arraylist_growth.dir/arraylist_growth.cpp.o.d"
  "arraylist_growth"
  "arraylist_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arraylist_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

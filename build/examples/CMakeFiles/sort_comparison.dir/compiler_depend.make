# Empty compiler generated dependencies file for sort_comparison.
# This may be replaced when dependencies are built.

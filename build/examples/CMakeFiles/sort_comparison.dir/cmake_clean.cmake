file(REMOVE_RECURSE
  "CMakeFiles/sort_comparison.dir/sort_comparison.cpp.o"
  "CMakeFiles/sort_comparison.dir/sort_comparison.cpp.o.d"
  "sort_comparison"
  "sort_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for paradigm_agnostic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/paradigm_agnostic.dir/paradigm_agnostic.cpp.o"
  "CMakeFiles/paradigm_agnostic.dir/paradigm_agnostic.cpp.o.d"
  "paradigm_agnostic"
  "paradigm_agnostic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradigm_agnostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libalgoprof.a"
)

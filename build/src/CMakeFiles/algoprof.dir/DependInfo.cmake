
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CallGraph.cpp" "src/CMakeFiles/algoprof.dir/analysis/CallGraph.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Cfg.cpp" "src/CMakeFiles/algoprof.dir/analysis/Cfg.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/Cfg.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/algoprof.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/IndexDataflow.cpp" "src/CMakeFiles/algoprof.dir/analysis/IndexDataflow.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/IndexDataflow.cpp.o.d"
  "/root/repo/src/analysis/Loops.cpp" "src/CMakeFiles/algoprof.dir/analysis/Loops.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/Loops.cpp.o.d"
  "/root/repo/src/analysis/RecursiveTypes.cpp" "src/CMakeFiles/algoprof.dir/analysis/RecursiveTypes.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/RecursiveTypes.cpp.o.d"
  "/root/repo/src/analysis/Scc.cpp" "src/CMakeFiles/algoprof.dir/analysis/Scc.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/analysis/Scc.cpp.o.d"
  "/root/repo/src/bytecode/Bytecode.cpp" "src/CMakeFiles/algoprof.dir/bytecode/Bytecode.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/bytecode/Bytecode.cpp.o.d"
  "/root/repo/src/bytecode/Compiler.cpp" "src/CMakeFiles/algoprof.dir/bytecode/Compiler.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/bytecode/Compiler.cpp.o.d"
  "/root/repo/src/bytecode/Disassembler.cpp" "src/CMakeFiles/algoprof.dir/bytecode/Disassembler.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/bytecode/Disassembler.cpp.o.d"
  "/root/repo/src/bytecode/Module.cpp" "src/CMakeFiles/algoprof.dir/bytecode/Module.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/bytecode/Module.cpp.o.d"
  "/root/repo/src/bytecode/Verifier.cpp" "src/CMakeFiles/algoprof.dir/bytecode/Verifier.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/bytecode/Verifier.cpp.o.d"
  "/root/repo/src/cct/BlockCountProfiler.cpp" "src/CMakeFiles/algoprof.dir/cct/BlockCountProfiler.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/cct/BlockCountProfiler.cpp.o.d"
  "/root/repo/src/cct/CctProfiler.cpp" "src/CMakeFiles/algoprof.dir/cct/CctProfiler.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/cct/CctProfiler.cpp.o.d"
  "/root/repo/src/core/AlgoProfiler.cpp" "src/CMakeFiles/algoprof.dir/core/AlgoProfiler.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/AlgoProfiler.cpp.o.d"
  "/root/repo/src/core/AlgorithmSummary.cpp" "src/CMakeFiles/algoprof.dir/core/AlgorithmSummary.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/AlgorithmSummary.cpp.o.d"
  "/root/repo/src/core/Classification.cpp" "src/CMakeFiles/algoprof.dir/core/Classification.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/Classification.cpp.o.d"
  "/root/repo/src/core/CostMap.cpp" "src/CMakeFiles/algoprof.dir/core/CostMap.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/CostMap.cpp.o.d"
  "/root/repo/src/core/Grouping.cpp" "src/CMakeFiles/algoprof.dir/core/Grouping.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/Grouping.cpp.o.d"
  "/root/repo/src/core/InputTable.cpp" "src/CMakeFiles/algoprof.dir/core/InputTable.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/InputTable.cpp.o.d"
  "/root/repo/src/core/RepetitionTree.cpp" "src/CMakeFiles/algoprof.dir/core/RepetitionTree.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/RepetitionTree.cpp.o.d"
  "/root/repo/src/core/Session.cpp" "src/CMakeFiles/algoprof.dir/core/Session.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/core/Session.cpp.o.d"
  "/root/repo/src/fitting/CurveFit.cpp" "src/CMakeFiles/algoprof.dir/fitting/CurveFit.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/fitting/CurveFit.cpp.o.d"
  "/root/repo/src/frontend/Ast.cpp" "src/CMakeFiles/algoprof.dir/frontend/Ast.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/frontend/Ast.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/algoprof.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/algoprof.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/frontend/Sema.cpp" "src/CMakeFiles/algoprof.dir/frontend/Sema.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/frontend/Sema.cpp.o.d"
  "/root/repo/src/frontend/Types.cpp" "src/CMakeFiles/algoprof.dir/frontend/Types.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/frontend/Types.cpp.o.d"
  "/root/repo/src/programs/Programs.cpp" "src/CMakeFiles/algoprof.dir/programs/Programs.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/programs/Programs.cpp.o.d"
  "/root/repo/src/programs/Table1.cpp" "src/CMakeFiles/algoprof.dir/programs/Table1.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/programs/Table1.cpp.o.d"
  "/root/repo/src/programs/Table1Check.cpp" "src/CMakeFiles/algoprof.dir/programs/Table1Check.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/programs/Table1Check.cpp.o.d"
  "/root/repo/src/report/AsciiPlot.cpp" "src/CMakeFiles/algoprof.dir/report/AsciiPlot.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/report/AsciiPlot.cpp.o.d"
  "/root/repo/src/report/CsvWriter.cpp" "src/CMakeFiles/algoprof.dir/report/CsvWriter.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/report/CsvWriter.cpp.o.d"
  "/root/repo/src/report/DotExporter.cpp" "src/CMakeFiles/algoprof.dir/report/DotExporter.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/report/DotExporter.cpp.o.d"
  "/root/repo/src/report/TablePrinter.cpp" "src/CMakeFiles/algoprof.dir/report/TablePrinter.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/report/TablePrinter.cpp.o.d"
  "/root/repo/src/report/TreePrinter.cpp" "src/CMakeFiles/algoprof.dir/report/TreePrinter.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/report/TreePrinter.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/algoprof.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/vm/Heap.cpp" "src/CMakeFiles/algoprof.dir/vm/Heap.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/vm/Heap.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/CMakeFiles/algoprof.dir/vm/Interpreter.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/vm/Interpreter.cpp.o.d"
  "/root/repo/src/vm/LoopEventMap.cpp" "src/CMakeFiles/algoprof.dir/vm/LoopEventMap.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/vm/LoopEventMap.cpp.o.d"
  "/root/repo/src/vm/Value.cpp" "src/CMakeFiles/algoprof.dir/vm/Value.cpp.o" "gcc" "src/CMakeFiles/algoprof.dir/vm/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

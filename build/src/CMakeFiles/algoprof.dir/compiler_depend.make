# Empty compiler generated dependencies file for algoprof.
# This may be replaced when dependencies are built.

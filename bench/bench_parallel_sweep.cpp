//===- bench/bench_parallel_sweep.cpp - Sharded sweep speedup -------------===//
///
/// \file
/// Measures the wall-clock speedup of parallel::SweepEngine over a
/// serial ProfileSession on the Figure 1 workload (insertion-sort runs
/// of growing list sizes, one profiled run per seed), verifies that
/// every thread count produces byte-identical profiles, and writes a
/// machine-readable report to bench_parallel_sweep.json.
///
/// The speedup column is a *measurement*, not an assertion: on a
/// single-core machine every configuration legitimately reports ~1x
/// (the engine's value there is determinism testing, not throughput),
/// so the binary never fails because the hardware is small — only if
/// the profiles diverge.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "obs/Obs.h"
#include "parallel/SweepEngine.h"
#include "programs/Programs.h"
#include "report/CsvWriter.h"
#include "report/TablePrinter.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Everything observable about a sweep's outcome, as one string.
std::string profilesFingerprint(const std::vector<AlgorithmProfile> &Profiles) {
  std::string Sig;
  for (const AlgorithmProfile &AP : Profiles) {
    Sig += AP.Label + "\n";
    for (const AlgorithmProfile::InputSeries &S : AP.Series) {
      Sig += "  " + S.Kind + " n=" + std::to_string(S.Series.size());
      if (S.Fit.Valid)
        Sig += " " + S.Fit.formula();
      Sig += "\n";
    }
  }
  return Sig;
}

struct Config {
  int Jobs;
  double Ms = 0;
  bool Match = true;
  obs::Snapshot Phases; ///< Obs delta attributed to this configuration.
};

double phaseMs(const obs::Snapshot &S, obs::Phase P) {
  return static_cast<double>(S.PhaseNs[static_cast<size_t>(P)]) / 1e6;
}

bool anyPhaseData(const obs::Snapshot &S) {
  for (size_t I = 0; I < obs::NumPhases; ++I)
    if (S.PhaseCalls[I])
      return true;
  return false;
}

} // namespace

int main() {
  // One profiled run per seed; each run sorts one list of length <seed>.
  std::vector<int64_t> Seeds;
  for (int64_t N = 20; N <= 260; N += 20)
    Seeds.push_back(N);

  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::seededInsertionSortProgram(programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  SessionOptions Opts;
  Opts.Profile.Snapshots = SnapshotMode::Tracked;

  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Parallel sweep speedup: %zu insertion-sort runs "
              "(list sizes %lld..%lld), hardware threads: %u\n\n",
              Seeds.size(), static_cast<long long>(Seeds.front()),
              static_cast<long long>(Seeds.back()), Hw);

  // Serial baseline: the classic accumulating session.
  obs::Snapshot ObsMark = obs::snapshot();
  auto SerialStart = std::chrono::steady_clock::now();
  ProfileSession Serial(*CP, Opts);
  for (int64_t Seed : Seeds) {
    vm::IoChannels Io;
    Io.Input = {Seed};
    vm::RunResult R = Serial.run("Main", "main", Io);
    if (!R.ok()) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   R.TrapMessage.c_str());
      return 1;
    }
  }
  std::string Baseline = profilesFingerprint(Serial.buildProfiles());
  double SerialMs = msSince(SerialStart);
  obs::Snapshot SerialPhases = obs::snapshot().deltaFrom(ObsMark);

  std::vector<Config> Configs = {{1}, {2}, {4}, {8}};
  bool AllMatch = true;
  for (Config &C : Configs) {
    ObsMark = obs::snapshot();
    auto Start = std::chrono::steady_clock::now();
    SessionOptions SweepOpts = Opts;
    SweepOpts.Jobs = C.Jobs;
    SweepOpts.Seeds = Seeds;
    parallel::SweepEngine Engine(*CP, SweepOpts);
    parallel::SweepResult SR = Engine.sweep("Main", "main");
    if (!SR.allOk()) {
      std::fprintf(stderr, "sweep at %d jobs failed\n", C.Jobs);
      return 1;
    }
    C.Match = profilesFingerprint(Engine.buildProfiles()) == Baseline;
    C.Ms = msSince(Start);
    C.Phases = obs::snapshot().deltaFrom(ObsMark);
    AllMatch = AllMatch && C.Match;
  }

  report::Table T({"configuration", "wall ms", "speedup", "profiles"});
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f", SerialMs);
  T.addRow({"serial session", Buf, "1.00x", "baseline"});
  for (const Config &C : Configs) {
    std::string Row = "sweep --jobs " + std::to_string(C.Jobs);
    std::snprintf(Buf, sizeof(Buf), "%.1f", C.Ms);
    std::string Ms = Buf;
    std::snprintf(Buf, sizeof(Buf), "%.2fx", SerialMs / C.Ms);
    T.addRow({Row, Ms, Buf, C.Match ? "identical" : "DIVERGED"});
  }
  std::printf("%s\n", T.str().c_str());

  // Per-phase breakdown (obs registry deltas): attributes each
  // configuration's time to pipeline phases, so a BENCH json regression
  // points at a phase instead of a wall-clock blob. CPU-time note: the
  // phase sums add *across worker threads*, so a sweep's vm_run total
  // can legitimately exceed its wall clock.
  if (anyPhaseData(SerialPhases)) {
    report::Table P({"phase", "serial ms", "jobs 1", "jobs 2", "jobs 4",
                     "jobs 8"});
    for (size_t I = 0; I < obs::NumPhases; ++I) {
      obs::Phase Ph = static_cast<obs::Phase>(I);
      uint64_t Calls = SerialPhases.PhaseCalls[I];
      for (const Config &C : Configs)
        Calls += C.Phases.PhaseCalls[I];
      if (!Calls)
        continue;
      std::vector<std::string> Row = {obs::phaseName(Ph)};
      std::snprintf(Buf, sizeof(Buf), "%.1f", phaseMs(SerialPhases, Ph));
      Row.push_back(Buf);
      for (const Config &C : Configs) {
        std::snprintf(Buf, sizeof(Buf), "%.1f", phaseMs(C.Phases, Ph));
        Row.push_back(Buf);
      }
      P.addRow(std::move(Row));
    }
    std::printf("Per-phase breakdown (thread-summed CPU ms):\n%s\n",
                P.str().c_str());
  } else {
    std::printf("(observability disabled at build time — per-phase "
                "breakdown unavailable; build with -DALGOPROF_OBS=ON)\n\n");
  }

  if (Hw < 2)
    std::printf("note: single hardware thread — speedups near 1.00x are "
                "expected here;\nthe table still verifies that every "
                "thread count reproduces the serial profiles.\n");

  std::string Json = "{\n";
  Json += "  \"runs\": " + std::to_string(Seeds.size()) + ",\n";
  Json += "  \"hardware_concurrency\": " + std::to_string(Hw) + ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", SerialMs);
  Json += "  \"serial_ms\": " + std::string(Buf) + ",\n";
  Json += "  \"sweeps\": [\n";
  auto phasesJson = [&](const obs::Snapshot &S) {
    std::string Out = "{";
    bool First = true;
    for (size_t I = 0; I < obs::NumPhases; ++I) {
      if (!S.PhaseCalls[I])
        continue;
      char B[96];
      std::snprintf(B, sizeof(B), "%s\"%s_ms\": %.3f",
                    First ? "" : ", ",
                    obs::phaseName(static_cast<obs::Phase>(I)),
                    phaseMs(S, static_cast<obs::Phase>(I)));
      Out += B;
      First = false;
    }
    return Out + "}";
  };
  for (size_t I = 0; I < Configs.size(); ++I) {
    const Config &C = Configs[I];
    std::snprintf(Buf, sizeof(Buf), "%.3f", C.Ms);
    Json += "    {\"jobs\": " + std::to_string(C.Jobs) +
            ", \"ms\": " + Buf;
    std::snprintf(Buf, sizeof(Buf), "%.3f", SerialMs / C.Ms);
    Json += std::string(", \"speedup\": ") + Buf +
            ", \"profiles_match\": " + (C.Match ? "true" : "false") +
            ", \"phases\": " + phasesJson(C.Phases) + "}" +
            (I + 1 < Configs.size() ? "," : "") + "\n";
  }
  Json += "  ],\n";
  Json += "  \"serial_phases\": " + phasesJson(SerialPhases) + "\n}\n";
  if (report::writeFile("bench_parallel_sweep.json", Json))
    std::printf("wrote bench_parallel_sweep.json\n");

  return AllMatch ? 0 : 1;
}

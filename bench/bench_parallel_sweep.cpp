//===- bench/bench_parallel_sweep.cpp - Work-stealing sweep speedup -------===//
///
/// \file
/// Measures the wall-clock speedup of parallel::SweepEngine (the
/// work-stealing pool, docs/parallel_sweeps.md) over a serial
/// ProfileSession on a deliberately *unequal-cost* workload: a few
/// expensive insertion-sort runs interleaved with many cheap ones, the
/// shape where static sharding loses (one shard drags the barrier) and
/// dynamic stealing wins. Verifies that every job count produces
/// byte-identical profiles and writes a machine-readable v2 report
/// (schema "bench_parallel_sweep/2", docs/benchmarks.md) with the
/// hardware context and per-worker execute/steal/queue-depth counts.
///
/// The speedup column is a *measurement*, not an assertion — but it is
/// only a meaningful one on multi-core hardware. On a single-core box
/// the bench prints a warning and stamps `"speedup": null` instead of
/// recording a misleading ~1x (or worse) figure; `profiles_match` is
/// the only failure condition either way.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "obs/Obs.h"
#include "parallel/SweepEngine.h"
#include "programs/Programs.h"
#include "report/CsvWriter.h"
#include "report/TablePrinter.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Everything observable about a sweep's outcome, as one string.
std::string profilesFingerprint(const std::vector<AlgorithmProfile> &Profiles) {
  std::string Sig;
  for (const AlgorithmProfile &AP : Profiles) {
    Sig += AP.Label + "\n";
    for (const AlgorithmProfile::InputSeries &S : AP.Series) {
      Sig += "  " + S.Kind + " n=" + std::to_string(S.Series.size());
      if (S.Fit.Valid)
        Sig += " " + S.Fit.formula();
      Sig += "\n";
    }
  }
  return Sig;
}

struct Config {
  int Jobs;
  double Ms = 0;
  bool Match = true;
  parallel::PoolStats Pool;
  obs::Snapshot Phases; ///< Obs delta attributed to this configuration.
};

double phaseMs(const obs::Snapshot &S, obs::Phase P) {
  return static_cast<double>(S.PhaseNs[static_cast<size_t>(P)]) / 1e6;
}

bool anyPhaseData(const obs::Snapshot &S) {
  for (size_t I = 0; I < obs::NumPhases; ++I)
    if (S.PhaseCalls[I])
      return true;
  return false;
}

} // namespace

int main() {
  // One profiled run per seed; each run sorts one list of length <seed>.
  // The mix is intentionally skewed: every fourth run is heavy (O(n^2)
  // on a large list), the rest are cheap — under static sharding the
  // worker that drew the heavies serializes the sweep, under stealing
  // the cheap runs migrate to idle workers.
  std::vector<int64_t> Seeds;
  for (int64_t Heavy = 320; Heavy >= 200; Heavy -= 40) {
    Seeds.push_back(Heavy);
    Seeds.push_back(40);
    Seeds.push_back(40);
    Seeds.push_back(40);
  }

  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::seededInsertionSortProgram(programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  SessionOptions Opts;
  Opts.Profile.Snapshots = SnapshotMode::Tracked;

  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Work-stealing sweep speedup: %zu insertion-sort runs "
              "(unequal-cost mix, list sizes 40..320), hardware "
              "threads: %u\n\n",
              Seeds.size(), Hw);
  bool SpeedupMeaningful = Hw >= 2;
  if (!SpeedupMeaningful)
    std::printf("WARNING: single hardware thread — wall-clock speedup is "
                "not measurable here\nand will be recorded as null; this "
                "run only verifies determinism and records\nscheduler "
                "counters.\n\n");

  // Serial baseline: the classic accumulating session.
  obs::Snapshot ObsMark = obs::snapshot();
  auto SerialStart = std::chrono::steady_clock::now();
  ProfileSession Serial(*CP, Opts);
  for (int64_t Seed : Seeds) {
    vm::IoChannels Io;
    Io.Input = {Seed};
    vm::RunResult R = Serial.run("Main", "main", Io);
    if (!R.ok()) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   R.TrapMessage.c_str());
      return 1;
    }
  }
  std::string Baseline = profilesFingerprint(Serial.buildProfiles());
  double SerialMs = msSince(SerialStart);
  obs::Snapshot SerialPhases = obs::snapshot().deltaFrom(ObsMark);

  std::vector<Config> Configs = {{1}, {2}, {4}, {8}};
  bool AllMatch = true;
  for (Config &C : Configs) {
    ObsMark = obs::snapshot();
    auto Start = std::chrono::steady_clock::now();
    SessionOptions SweepOpts = Opts;
    SweepOpts.Jobs = C.Jobs;
    SweepOpts.Seeds = Seeds;
    parallel::SweepEngine Engine(*CP, SweepOpts);
    parallel::SweepResult SR = Engine.sweep("Main", "main");
    if (!SR.allOk()) {
      std::fprintf(stderr, "sweep at %d jobs failed\n", C.Jobs);
      return 1;
    }
    C.Match = profilesFingerprint(Engine.buildProfiles()) == Baseline;
    C.Ms = msSince(Start);
    C.Pool = SR.Pool;
    C.Phases = obs::snapshot().deltaFrom(ObsMark);
    AllMatch = AllMatch && C.Match;
  }

  report::Table T({"configuration", "wall ms", "speedup", "steals",
                   "profiles"});
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f", SerialMs);
  T.addRow({"serial session", Buf, SpeedupMeaningful ? "1.00x" : "n/a",
            "-", "baseline"});
  for (const Config &C : Configs) {
    std::string Row = "sweep --jobs " + std::to_string(C.Jobs);
    std::snprintf(Buf, sizeof(Buf), "%.1f", C.Ms);
    std::string Ms = Buf;
    std::string Speedup = "n/a";
    if (SpeedupMeaningful) {
      std::snprintf(Buf, sizeof(Buf), "%.2fx", SerialMs / C.Ms);
      Speedup = Buf;
    }
    T.addRow({Row, Ms, Speedup, std::to_string(C.Pool.totalStolen()),
              C.Match ? "identical" : "DIVERGED"});
  }
  std::printf("%s\n", T.str().c_str());

  // Per-phase breakdown (obs registry deltas): attributes each
  // configuration's time to pipeline phases, so a BENCH json regression
  // points at a phase instead of a wall-clock blob. CPU-time note: the
  // phase sums add *across worker threads*, so a sweep's vm_run total
  // can legitimately exceed its wall clock.
  if (anyPhaseData(SerialPhases)) {
    report::Table P({"phase", "serial ms", "jobs 1", "jobs 2", "jobs 4",
                     "jobs 8"});
    for (size_t I = 0; I < obs::NumPhases; ++I) {
      obs::Phase Ph = static_cast<obs::Phase>(I);
      uint64_t Calls = SerialPhases.PhaseCalls[I];
      for (const Config &C : Configs)
        Calls += C.Phases.PhaseCalls[I];
      if (!Calls)
        continue;
      std::vector<std::string> Row = {obs::phaseName(Ph)};
      std::snprintf(Buf, sizeof(Buf), "%.1f", phaseMs(SerialPhases, Ph));
      Row.push_back(Buf);
      for (const Config &C : Configs) {
        std::snprintf(Buf, sizeof(Buf), "%.1f", phaseMs(C.Phases, Ph));
        Row.push_back(Buf);
      }
      P.addRow(std::move(Row));
    }
    std::printf("Per-phase breakdown (thread-summed CPU ms):\n%s\n",
                P.str().c_str());
  } else {
    std::printf("(observability disabled at build time — per-phase "
                "breakdown unavailable; build with -DALGOPROF_OBS=ON)\n\n");
  }

  // v2 JSON schema (docs/benchmarks.md): hardware context stamped at
  // the top, per-configuration scheduler counters per worker, and an
  // explicit null speedup when the box cannot measure one.
  std::string Json = "{\n";
  Json += "  \"schema\": \"bench_parallel_sweep/2\",\n";
  Json += "  \"workload\": \"seeded insertion sort, unequal-cost mix\",\n";
  Json += "  \"runs\": " + std::to_string(Seeds.size()) + ",\n";
  Json += "  \"hardware_concurrency\": " + std::to_string(Hw) + ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", SerialMs);
  Json += "  \"serial_ms\": " + std::string(Buf) + ",\n";
  Json += "  \"sweeps\": [\n";
  auto phasesJson = [&](const obs::Snapshot &S) {
    std::string Out = "{";
    bool First = true;
    for (size_t I = 0; I < obs::NumPhases; ++I) {
      if (!S.PhaseCalls[I])
        continue;
      char B[96];
      std::snprintf(B, sizeof(B), "%s\"%s_ms\": %.3f",
                    First ? "" : ", ",
                    obs::phaseName(static_cast<obs::Phase>(I)),
                    phaseMs(S, static_cast<obs::Phase>(I)));
      Out += B;
      First = false;
    }
    return Out + "}";
  };
  auto workersJson = [](const parallel::PoolStats &PS) {
    std::string Out = "[";
    for (size_t W = 0; W < PS.Executed.size(); ++W) {
      if (W)
        Out += ", ";
      Out += "{\"executed\": " + std::to_string(PS.Executed[W]) +
             ", \"stolen\": " + std::to_string(PS.Stolen[W]) +
             ", \"peak_queue_depth\": " +
             std::to_string(W < PS.PeakQueueDepth.size()
                                ? PS.PeakQueueDepth[W]
                                : 0) +
             "}";
    }
    return Out + "]";
  };
  for (size_t I = 0; I < Configs.size(); ++I) {
    const Config &C = Configs[I];
    std::snprintf(Buf, sizeof(Buf), "%.3f", C.Ms);
    Json += "    {\"jobs\": " + std::to_string(C.Jobs) +
            ", \"ms\": " + Buf;
    if (SpeedupMeaningful) {
      std::snprintf(Buf, sizeof(Buf), "%.3f", SerialMs / C.Ms);
      Json += std::string(", \"speedup\": ") + Buf;
    } else {
      Json += ", \"speedup\": null";
    }
    Json += std::string(", \"profiles_match\": ") +
            (C.Match ? "true" : "false") +
            ", \"steals_total\": " + std::to_string(C.Pool.totalStolen()) +
            ",\n     \"workers\": " + workersJson(C.Pool) +
            ",\n     \"phases\": " + phasesJson(C.Phases) + "}" +
            (I + 1 < Configs.size() ? "," : "") + "\n";
  }
  Json += "  ],\n";
  Json += "  \"serial_phases\": " + phasesJson(SerialPhases) + "\n}\n";
  if (report::writeFile("bench_parallel_sweep.json", Json))
    std::printf("wrote bench_parallel_sweep.json\n");

  return AllMatch ? 0 : 1;
}

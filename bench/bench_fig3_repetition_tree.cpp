//===- bench/bench_fig3_repetition_tree.cpp - Paper Figure 3 --------------===//
///
/// \file
/// Regenerates Figure 3: the algorithmic profile of the running example.
/// The paper's figure shows five loops in a repetition tree, grouped
/// into four algorithms:
///   - the two Main.measure loops: data-structure-less,
///   - the constructRandom loop: Construction of a Node-based recursive
///     structure,
///   - the sort loop nest (grouped): Modification of a Node-based
///     recursive structure with steps = 0.25*size^2.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

int main() {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(/*MaxSize=*/200, /*Step=*/10,
                                     /*Reps=*/5,
                                     programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    return 1;
  }

  std::vector<AlgorithmProfile> Profiles = S.buildProfiles();
  std::printf("Figure 3: algorithmic profile (repetition tree)\n\n");
  std::printf("%s\n",
              report::renderAnnotatedTree(S.tree(), Profiles).c_str());
  std::printf("paper's annotations: 5 loops; measure loops "
              "data-structure-less; constructRandom = Construction; "
              "sort nest = Modification with steps = 0.25*size^2.\n");
  return 0;
}

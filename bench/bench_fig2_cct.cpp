//===- bench/bench_fig2_cct.cpp - Paper Figure 2 --------------------------===//
///
/// \file
/// Regenerates Figure 2: the *traditional* calling-context-tree profile
/// of the running example (Listings 1+2). The paper's CCT shows that
/// List.append and the Node constructor are the most frequently called
/// methods and that List.sort is the hottest by exclusive cost — and,
/// crucially, that none of this explains *why* or predicts scaling
/// (the algorithmic profile of Figure 3 does).
///
//===----------------------------------------------------------------------===//

#include "cct/CctProfiler.h"
#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TablePrinter.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

int main() {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(/*MaxSize=*/200, /*Step=*/10,
                                     /*Reps=*/5,
                                     programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  cct::CctProfiler Profiler(*CP->Mod);
  vm::Interpreter Interp(CP->Prep);
  vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
  vm::IoChannels Io;
  vm::RunResult R =
      Interp.run(CP->entryMethod("Main", "main"), &Profiler, Plan, Io);
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    return 1;
  }

  std::printf("Figure 2: traditional profile (calling context tree)\n");
  std::printf("cost unit: executed bytecode instructions "
              "(deterministic stand-in for the paper's wall-clock "
              "hotness)\n\n");
  std::printf("%s\n", report::renderCct(Profiler).c_str());

  std::printf("Flat profile (by exclusive cost):\n");
  report::Table T({"method", "calls", "exclusive", "inclusive"});
  for (const auto &Row : Profiler.flatProfile()) {
    const bc::MethodInfo &M =
        CP->Mod->Methods[static_cast<size_t>(Row.MethodId)];
    T.addRow({M.QualifiedName, std::to_string(Row.Calls),
              std::to_string(Row.Exclusive),
              std::to_string(Row.Inclusive)});
  }
  std::printf("%s\n", T.str().c_str());

  std::printf("paper's reading: List.append / Node.<init> most called; "
              "List.sort hottest exclusive.\n");
  return 0;
}

//===- bench/bench_related_goldsmith.cpp - Related-work contrast ----------===//
///
/// \file
/// Reproduces the paper's Related Work contrast with Goldsmith, Aiken &
/// Wilkerson's "Measuring empirical computational complexity" (the
/// paper's [4]): their system measures cost as *basic-block execution
/// counts* and fits curves, but "the other aspects (e.g., algorithm
/// identification and input size determination) had to be performed
/// manually."
///
/// This bench plays both roles. For the running example it fits a cost
/// function from basic-block counts using *manually supplied* input
/// sizes (we, the humans, know the harness sweeps sizes 0..N — exactly
/// the manual step Goldsmith's users perform), then lets AlgoProf do
/// the same fully automatically. Both find the quadratic; only one of
/// them was told what the input was.
///
//===----------------------------------------------------------------------===//

#include "cct/BlockCountProfiler.h"
#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

int main() {
  std::printf("Related work [4] (Goldsmith et al., FSE'07): block-count "
              "cost + manual input sizes vs AlgoProf\n\n");

  // --- Goldsmith-style: one program run per size (the human wrote this
  // harness and tells the fitter the size of each run).
  std::vector<SeriesPoint> BlockSeries;
  for (int Size = 20; Size <= 200; Size += 20) {
    DiagnosticEngine Diags;
    // A single-size run: the sweep harness degenerates to one point.
    auto CP = compileMiniJ(
        programs::insertionSortProgram(Size + 1, std::max(Size, 1), 1,
                                       programs::InputOrder::Random),
        Diags);
    if (!CP) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    cct::BlockCountProfiler Profiler(CP->Prep);
    vm::Interpreter Interp(CP->Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
    vm::IoChannels Io;
    vm::RunResult R = Interp.run(CP->entryMethod("Main", "main"),
                                 &Profiler, Plan, Io);
    if (!R.ok()) {
      std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
      return 1;
    }
    // MANUAL steps a Goldsmith user performs: we (humans) assert the
    // input size is `Size` and the relevant cost is the block count of
    // the sort method we located by reading the code.
    int32_t SortId = CP->Mod->findMethodId("List", "sort");
    BlockSeries.push_back(
        {static_cast<double>(Size),
         static_cast<double>(Profiler.blockCount(SortId))});
  }
  fit::FitResult BlockFit = fit::fitBest(BlockSeries);

  // --- AlgoProf: one sweep run, everything automatic.
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(201, 20, 1,
                                     programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  ProfileSession S(*CP);
  if (!S.run("Main", "main").ok())
    return 1;
  fit::FitResult AlgoFit;
  std::string AlgoLabel;
  for (const AlgorithmProfile &AP : S.buildProfiles())
    if (AP.Algo.Root->Name == "List.sort loop#0") {
      AlgoLabel = AP.Label;
      if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries())
        AlgoFit = Ser->Fit;
    }

  report::Table T({"system", "cost metric", "input size source",
                   "algorithm located by", "fitted cost", "R^2"});
  char R2a[16], R2b[16];
  std::snprintf(R2a, sizeof(R2a), "%.4f", BlockFit.R2);
  std::snprintf(R2b, sizeof(R2b), "%.4f", AlgoFit.R2);
  T.addRow({"Goldsmith-style [4]", "basic-block counts",
            "MANUAL (human-declared)", "MANUAL (human read the code)",
            BlockFit.formula(), R2a});
  T.addRow({"AlgoProf (this repo)", "algorithmic steps",
            "automatic (structure traversal)",
            "automatic (repetition-tree grouping)", AlgoFit.formula(),
            R2b});
  std::printf("%s\n", T.str().c_str());
  std::printf("AlgoProf's automatic verdict: %s\n", AlgoLabel.c_str());
  std::printf("\nboth fits agree on the quadratic shape; the difference "
              "the paper stresses is *who* performed steps 1-4 "
              "(locate, choose ops, choose input, size it).\n");
  return 0;
}

//===- bench/bench_ablation_dataflow.cpp - Index-dataflow ablation --------===//
///
/// \file
/// Ablation B: the Section 5 "future work" index-dataflow analysis. The
/// paper reports that common-input grouping fails for array loop nests
/// whose outer loops perform no array access (the '-' and fragile '*'
/// rows of Table 1). This bench reruns every Table 1 row under plain
/// CommonInput grouping and under CommonInput+IndexDataflow, showing
/// the extension turning the '-' rows into 'x'.
///
//===----------------------------------------------------------------------===//

#include "programs/Table1Check.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::programs;
using namespace algoprof::prof;

int main() {
  std::printf("Ablation B: grouping with vs without the index-dataflow "
              "extension\n\n");

  report::Table T({"program", "paper G", "CommonInput",
                   "+IndexDataflow", "SameMethod"});
  int Repaired = 0;
  for (const Table1Program &P : table1Programs()) {
    Table1Outcome Plain =
        evaluateTable1Program(P, GroupingStrategy::CommonInput);
    Table1Outcome Df = evaluateTable1Program(
        P, GroupingStrategy::CommonInputPlusDataflow);
    // The paper's "one could envision other strategies" remark: group
    // loops of the same method lexically. Works for same-method nests,
    // cannot cross method boundaries (the array-list append+grow pair).
    Table1Outcome Sm =
        evaluateTable1Program(P, GroupingStrategy::SameMethod);
    if (!Plain.CompiledAndRan || !Df.CompiledAndRan ||
        !Sm.CompiledAndRan) {
      std::fprintf(stderr, "%s failed: %s%s%s\n", P.Name.c_str(),
                   Plain.Detail.c_str(), Df.Detail.c_str(),
                   Sm.Detail.c_str());
      return 1;
    }
    if (Plain.GColumn == '-' && Df.GColumn == 'x')
      ++Repaired;
    T.addRow({P.Name, std::string(1, P.PaperG),
              std::string(1, Plain.GColumn),
              std::string(1, Df.GColumn), std::string(1, Sm.GColumn)});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("the extension repaired %d loop nest(s) that plain "
              "common-input grouping leaves split (the paper's 2-d "
              "array rows).\n",
              Repaired);
  return 0;
}

//===- bench/bench_overhead.cpp - Profiling overhead (Sec. 5) -------------===//
///
/// \file
/// Quantifies the paper's Section 5 observation that algorithmic
/// profiling is orders of magnitude slower than plain execution, and
/// that snapshot strategy dominates the cost. Google-benchmark binary
/// comparing identical executions of the running example under:
///   - no listener (plain VM),
///   - the traditional CCT profiler (per-instruction costing),
///   - AlgoProf with Tracked sizing (incremental membership counts),
///   - AlgoProf with Eager sizing (paper-faithful two snapshots per
///     repetition invocation),
///   - AlgoProf with the AllElements criterion (a snapshot per access —
///     the unoptimized strawman the paper's remeasure trick avoids).
///
//===----------------------------------------------------------------------===//

#include "cct/CctProfiler.h"
#include "core/Session.h"
#include "programs/Programs.h"

#include <benchmark/benchmark.h>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

std::unique_ptr<CompiledProgram> &compiled() {
  static std::unique_ptr<CompiledProgram> CP = [] {
    DiagnosticEngine Diags;
    auto P = compileMiniJ(
        programs::insertionSortProgram(/*MaxSize=*/81, /*Step=*/20,
                                       /*Reps=*/2,
                                       programs::InputOrder::Random),
        Diags);
    if (!P) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      std::exit(1);
    }
    return P;
  }();
  return CP;
}

void BM_PlainVm(benchmark::State &State) {
  auto &CP = compiled();
  for (auto _ : State) {
    vm::IoChannels Io;
    vm::RunResult R = runPlain(*CP, "Main", "main", &Io);
    if (!R.ok())
      State.SkipWithError(R.TrapMessage.c_str());
    benchmark::DoNotOptimize(R.InstrCount);
  }
}
BENCHMARK(BM_PlainVm);

void BM_CctProfiler(benchmark::State &State) {
  auto &CP = compiled();
  for (auto _ : State) {
    cct::CctProfiler Profiler(*CP->Mod);
    vm::Interpreter Interp(CP->Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
    vm::IoChannels Io;
    vm::RunResult R = Interp.run(CP->entryMethod("Main", "main"),
                                 &Profiler, Plan, Io);
    if (!R.ok())
      State.SkipWithError(R.TrapMessage.c_str());
    benchmark::DoNotOptimize(Profiler.root().inclusiveCost());
  }
}
BENCHMARK(BM_CctProfiler);

void runAlgoProf(benchmark::State &State, SessionOptions Opts) {
  auto &CP = compiled();
  for (auto _ : State) {
    ProfileSession S(*CP, Opts);
    vm::RunResult R = S.run("Main", "main");
    if (!R.ok())
      State.SkipWithError(R.TrapMessage.c_str());
    benchmark::DoNotOptimize(S.tree().numRepetitions());
  }
}

void BM_AlgoProfTracked(benchmark::State &State) {
  SessionOptions Opts;
  Opts.Profile.Snapshots = SnapshotMode::Tracked;
  runAlgoProf(State, Opts);
}
BENCHMARK(BM_AlgoProfTracked);

void BM_AlgoProfEager(benchmark::State &State) {
  SessionOptions Opts;
  Opts.Profile.Snapshots = SnapshotMode::Eager;
  runAlgoProf(State, Opts);
}
BENCHMARK(BM_AlgoProfEager);

void BM_AlgoProfSnapshotEveryAccess(benchmark::State &State) {
  SessionOptions Opts;
  Opts.Profile.Equivalence = EquivalenceStrategy::AllElements;
  runAlgoProf(State, Opts);
}
BENCHMARK(BM_AlgoProfSnapshotEveryAccess);

} // namespace

BENCHMARK_MAIN();

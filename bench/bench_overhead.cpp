//===- bench/bench_overhead.cpp - Profiling overhead (Sec. 5) -------------===//
///
/// \file
/// Quantifies two cost stories on the same running example:
///
/// 1. The paper's Section 5 observation that algorithmic profiling is
///    orders of magnitude slower than plain execution, and that the
///    snapshot strategy dominates that cost: plain VM vs the
///    traditional CCT profiler vs AlgoProf under Tracked / Eager /
///    AllElements sizing.
/// 2. The VM's raw-speed ablation ladder (docs/interpreter.md): the
///    portable switch loop vs direct-threaded dispatch vs
///    superinstruction fusion vs inline caches, measured both on the
///    plain VM (where raw dispatch dominates) and under AlgoProf
///    Tracked profiling (where listener work dilutes it).
///
/// Every configuration's instruction count and (for profiled runs) the
/// profile fingerprint must match the reference tier — a divergence
/// fails the benchmark, so the numbers can never come from a VM that
/// computed something different. Results go to stdout as tables and to
/// bench_overhead.json with a provenance header (compiler, dispatch
/// availability, obs build flag, fusion statistics) so committed
/// numbers are interpretable later; docs/benchmarks.md explains how to
/// read them.
///
//===----------------------------------------------------------------------===//

#include "cct/CctProfiler.h"
#include "core/Session.h"
#include "programs/Programs.h"
#include "report/CsvWriter.h"
#include "report/TablePrinter.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

/// Best-of-Reps wall time of Iters back-to-back runs, reported as
/// per-run milliseconds. Min (not mean) is the standard noise filter
/// for a single-threaded CPU-bound loop on a shared machine.
template <typename Fn> double bestMsPerRun(int Reps, int Iters, Fn Body) {
  double Best = 0;
  for (int R = 0; R < Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    for (int I = 0; I < Iters; ++I)
      Body();
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count() /
                Iters;
    if (R == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

struct Row {
  std::string Group; ///< "listener" or "dispatch-plain" or "dispatch-prof".
  std::string Name;
  double Ms = 0;
  uint64_t Instr = 0;   ///< Per-run executed instructions (constituent).
  double Baseline = 0;  ///< The row this group normalizes against.
};

std::string fmt(double V, const char *Spec = "%.3f") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

/// Cheap structural fingerprint of a profile set: labels, class names,
/// and point counts. Enough to catch any tier-dependent divergence.
std::string fingerprint(const std::vector<AlgorithmProfile> &Profiles) {
  std::string F;
  for (const AlgorithmProfile &AP : Profiles) {
    F += AP.Label + ";";
    for (const auto &S : AP.Series) {
      F += S.Kind + "=" + std::to_string(S.Series.size());
      if (S.Fit.Valid)
        F += "[" + S.Fit.formula() + "]";
      F += ";";
    }
  }
  return F;
}

struct Tier {
  const char *Name;
  vm::DispatchMode Dispatch;
  bool Fused;
  bool Ic;
};

const Tier Tiers[] = {
    {"switch", vm::DispatchMode::Switch, false, false},
    {"threaded", vm::DispatchMode::Threaded, false, false},
    {"threaded+fused", vm::DispatchMode::Threaded, true, false},
    {"threaded+fused+ic", vm::DispatchMode::Threaded, true, true},
};

vm::RunOptions tierRun(const Tier &T) {
  vm::RunOptions RO;
  RO.Dispatch = T.Dispatch;
  RO.Superinstructions = T.Fused;
  RO.InlineCaches = T.Ic;
  return RO;
}

} // namespace

int main() {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(/*MaxSize=*/81, /*Step=*/20,
                                     /*Reps=*/2,
                                     programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("Profiling overhead and dispatch ablation "
              "(insertion sort, sizes to 81)\n"
              "threaded dispatch compiled: %s; fused clusters: %d; "
              "inline-cache sites: %d\n\n",
              vm::threadedDispatchCompiled() ? "yes" : "no",
              CP->Prep.FusedClusters, CP->Prep.NumIcSlots);

  std::vector<Row> Rows;

  // --- Part 1: dispatch ablation, plain VM (no listener). ------------
  uint64_t RefInstr = 0;
  for (const Tier &T : Tiers) {
    vm::RunOptions RO = tierRun(T);
    uint64_t Instr = 0;
    double Ms = bestMsPerRun(5, 40, [&] {
      vm::IoChannels Io;
      vm::RunResult R = runPlain(*CP, "Main", "main", &Io, RO);
      if (!R.ok()) {
        std::fprintf(stderr, "%s: %s\n", T.Name, R.TrapMessage.c_str());
        std::exit(1);
      }
      Instr = R.InstrCount;
    });
    if (&T == &Tiers[0])
      RefInstr = Instr;
    else if (Instr != RefInstr) {
      std::fprintf(stderr, "%s: instruction count diverged\n", T.Name);
      return 1;
    }
    Rows.push_back({"dispatch-plain", T.Name, Ms, Instr, 0});
  }
  double PlainSwitchMs = Rows[0].Ms;
  double PlainFastestMs = Rows.back().Ms;

  // --- Part 2: dispatch ablation under AlgoProf Tracked profiling. ---
  std::string RefFp;
  for (const Tier &T : Tiers) {
    SessionOptions SO;
    SO.Profile.Snapshots = SnapshotMode::Tracked;
    SO.Run = tierRun(T);
    uint64_t Instr = 0;
    std::string Fp;
    double Ms = bestMsPerRun(3, 6, [&] {
      ProfileSession S(*CP, SO);
      vm::RunResult R = S.run("Main", "main");
      if (!R.ok()) {
        std::fprintf(stderr, "%s: %s\n", T.Name, R.TrapMessage.c_str());
        std::exit(1);
      }
      Instr = R.InstrCount;
      Fp = fingerprint(S.buildProfiles());
    });
    if (&T == &Tiers[0])
      RefFp = Fp;
    else if (Fp != RefFp) {
      std::fprintf(stderr, "%s: profile fingerprint diverged\n", T.Name);
      return 1;
    }
    if (Instr != RefInstr) {
      std::fprintf(stderr, "%s: profiled instruction count diverged\n",
                   T.Name);
      return 1;
    }
    Rows.push_back({"dispatch-prof", std::string(T.Name) + " (tracked)", Ms,
                    Instr, 0});
  }

  // --- Part 3: listener ablation on the default (fastest) tier. ------
  {
    uint64_t Instr = 0;
    double Ms = bestMsPerRun(5, 40, [&] {
      vm::IoChannels Io;
      vm::RunResult R = runPlain(*CP, "Main", "main", &Io);
      if (!R.ok())
        std::exit(1);
      Instr = R.InstrCount;
    });
    Rows.push_back({"listener", "plain vm", Ms, Instr, 0});
  }
  {
    double Ms = bestMsPerRun(3, 10, [&] {
      cct::CctProfiler Profiler(*CP->Mod);
      vm::Interpreter Interp(CP->Prep);
      vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
      vm::IoChannels Io;
      vm::RunResult R = Interp.run(CP->entryMethod("Main", "main"),
                                   &Profiler, Plan, Io);
      if (!R.ok())
        std::exit(1);
    });
    Rows.push_back({"listener", "cct profiler", Ms, RefInstr, 0});
  }
  struct ProfCfg {
    const char *Name;
    SnapshotMode Snapshots;
    EquivalenceStrategy Equivalence;
  };
  const ProfCfg ProfCfgs[] = {
      {"algoprof tracked", SnapshotMode::Tracked,
       EquivalenceStrategy::SomeElements},
      {"algoprof eager", SnapshotMode::Eager,
       EquivalenceStrategy::SomeElements},
      {"algoprof all-elements", SnapshotMode::Eager,
       EquivalenceStrategy::AllElements},
  };
  for (const ProfCfg &C : ProfCfgs) {
    SessionOptions SO;
    SO.Profile.Snapshots = C.Snapshots;
    SO.Profile.Equivalence = C.Equivalence;
    double Ms = bestMsPerRun(3, 4, [&] {
      ProfileSession S(*CP, SO);
      vm::RunResult R = S.run("Main", "main");
      if (!R.ok())
        std::exit(1);
    });
    Rows.push_back({"listener", C.Name, Ms, RefInstr, 0});
  }

  // --- Tables. -------------------------------------------------------
  report::Table D({"dispatch tier", "ms/run", "speedup vs switch",
                   "minstr/s"});
  for (const Row &R : Rows) {
    if (R.Group != "dispatch-plain")
      continue;
    D.addRow({R.Name, fmt(R.Ms), fmt(PlainSwitchMs / R.Ms, "%.2fx"),
              fmt(static_cast<double>(R.Instr) / R.Ms / 1e3, "%.1f")});
  }
  std::printf("%s\n", D.str().c_str());

  report::Table P({"profiled tier", "ms/run", "speedup vs switch"});
  double ProfSwitchMs = 0;
  for (const Row &R : Rows) {
    if (R.Group != "dispatch-prof")
      continue;
    if (!ProfSwitchMs)
      ProfSwitchMs = R.Ms;
    P.addRow({R.Name, fmt(R.Ms), fmt(ProfSwitchMs / R.Ms, "%.2fx")});
  }
  std::printf("%s\n", P.str().c_str());

  report::Table L({"configuration", "ms/run", "overhead vs plain"});
  for (const Row &R : Rows) {
    if (R.Group != "listener")
      continue;
    L.addRow({R.Name, fmt(R.Ms), fmt(R.Ms / PlainFastestMs, "%.1fx")});
  }
  std::printf("%s\n", L.str().c_str());

  // --- JSON (schema documented in docs/benchmarks.md). ---------------
  std::string Json = "{\n  \"schema\": \"bench_overhead/v2\",\n";
#if defined(__VERSION__)
  Json += "  \"compiler\": \"" + std::string(__VERSION__) + "\",\n";
#else
  Json += "  \"compiler\": \"unknown\",\n";
#endif
  Json += "  \"threaded_compiled\": ";
  Json += vm::threadedDispatchCompiled() ? "true" : "false";
  Json += ",\n  \"obs_enabled\": ";
  Json += ALGOPROF_OBS_ENABLED ? "true" : "false";
  Json += ",\n  \"fused_clusters\": " +
          std::to_string(CP->Prep.FusedClusters) +
          ",\n  \"ic_sites\": " + std::to_string(CP->Prep.NumIcSlots) +
          ",\n  \"instructions_per_run\": " + std::to_string(RefInstr) +
          ",\n  \"results\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    Json += "    {\"group\": \"" + R.Group + "\", \"name\": \"" + R.Name +
            "\", \"ms_per_run\": " + fmt(R.Ms, "%.4f") + "}";
    Json += I + 1 < Rows.size() ? ",\n" : "\n";
  }
  Json += "  ]\n}\n";
  if (report::writeFile("bench_overhead.json", Json))
    std::printf("wrote bench_overhead.json\n");
  return 0;
}

//===- bench/bench_table1_structures.cpp - Paper Table 1 ------------------===//
///
/// \file
/// Regenerates Table 1: 18 data-structure example programs evaluated on
/// three judgments — I (inputs detected), S (sizes measured correctly),
/// G (intended repetitions grouped into one algorithm: 'x' grouped,
/// '-' not grouped; the paper's '*' means grouped-but-fragile and is
/// shown in the paper column for comparison).
///
//===----------------------------------------------------------------------===//

#include "programs/Table1Check.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::programs;
using namespace algoprof::prof;

int main() {
  std::printf("Table 1: data structure examples "
              "(I = inputs detected, S = sizes correct, G = grouping)\n\n");

  report::Table T({"Struct", "Impl.", "Linkage", "T", "Rem.", "I", "S",
                   "G", "paper G", "match"});
  int Matches = 0, Rows = 0;
  for (const Table1Program &P : table1Programs()) {
    Table1Outcome Out =
        evaluateTable1Program(P, GroupingStrategy::CommonInput);
    if (!Out.CompiledAndRan) {
      std::fprintf(stderr, "%s: %s\n", P.Name.c_str(),
                   Out.Detail.c_str());
      return 1;
    }
    char ExpectedG = P.PaperG == '*' ? 'x' : P.PaperG;
    bool Match = Out.InputsDetected && Out.SizesCorrect &&
                 Out.GColumn == ExpectedG;
    Matches += Match;
    ++Rows;
    T.addRow({P.StructKind, P.Impl, P.Linkage, P.PayloadT, P.Remark,
              Out.InputsDetected ? "x" : "-",
              Out.SizesCorrect ? "x" : "-", std::string(1, Out.GColumn),
              std::string(1, P.PaperG), Match ? "yes" : "NO"});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("%d/%d rows match the paper (paper's '*' counts as "
              "grouped).\n",
              Matches, Rows);
  return Matches == Rows ? 0 : 1;
}

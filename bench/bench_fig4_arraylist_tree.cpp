//===- bench/bench_fig4_arraylist_tree.cpp - Paper Figure 4 ---------------===//
///
/// \file
/// Regenerates Figure 4: the repetition tree for the growing
/// array-backed list (Listing 6). The paper shows three repetition
/// nodes grouped into two algorithms: the harness loop on top, and
/// below it the append loop grouped with ArrayList.grow's copy loop
/// ("Appending elements and growing array when required").
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

int main() {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::arrayListProgram(/*Doubling=*/false, /*MaxSize=*/128,
                                 /*Step=*/16),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    return 1;
  }

  std::vector<AlgorithmProfile> Profiles = S.buildProfiles();
  std::printf("Figure 4: repetition tree for growing an array-backed "
              "list\n\n");
  std::printf("%s\n",
              report::renderAnnotatedTree(S.tree(), Profiles).c_str());
  std::printf("paper's annotations: harness loop = one algorithm; append "
              "loop + grow loop = one grouped algorithm on the int[] "
              "input.\n");
  return 0;
}

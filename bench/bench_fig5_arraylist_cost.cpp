//===- bench/bench_fig5_arraylist_cost.cpp - Paper Figure 5 ---------------===//
///
/// \file
/// Regenerates Figure 5: cost functions for the array-backed list grown
/// by one element (naive; quadratic) versus by doubling (ideal; linear).
/// Writes fig5.csv for external plotting.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/AsciiPlot.h"
#include "report/CsvWriter.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

struct VariantResult {
  std::string Name;
  std::vector<SeriesPoint> Series;
  fit::FitResult Fit;
};

VariantResult runVariant(bool Doubling) {
  VariantResult V;
  V.Name = Doubling ? "double size (ideal)" : "grow by 1 (naive)";
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::arrayListProgram(Doubling, /*MaxSize=*/256, /*Step=*/16),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }
  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    if (AP.Algo.Root->Name != "Main.testForSize loop#0")
      continue;
    if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries()) {
      V.Series = Ser->Series;
      V.Fit = Ser->Fit;
    }
  }
  return V;
}

} // namespace

int main() {
  std::printf("Figure 5: cost functions for growing an array-backed "
              "list\n");
  std::printf("paper: grow-by-1 quadratic, doubling linear\n\n");

  std::vector<VariantResult> Variants = {runVariant(false),
                                         runVariant(true)};

  report::Table T({"variant", "runs", "fitted cost function", "model",
                   "R^2"});
  for (const VariantResult &V : Variants) {
    char R2[16];
    std::snprintf(R2, sizeof(R2), "%.4f", V.Fit.R2);
    T.addRow({V.Name, std::to_string(V.Series.size()), V.Fit.formula(),
              fit::modelKindName(V.Fit.Kind), R2});
  }
  std::printf("%s\n", T.str().c_str());

  std::vector<report::PlotSeries> Plots = {
      {"grow by 1", '1', Variants[0].Series},
      {"doubling", '2', Variants[1].Series},
  };
  std::printf("%s\n",
              report::renderScatter(Plots, "steps vs list size").c_str());

  std::vector<std::pair<std::string, std::vector<SeriesPoint>>> Csv = {
      {"grow_by_1", Variants[0].Series},
      {"doubling", Variants[1].Series},
  };
  if (report::writeFile("fig5.csv", report::seriesToCsv(Csv)))
    std::printf("wrote fig5.csv\n");
  return 0;
}

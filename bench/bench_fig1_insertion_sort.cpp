//===- bench/bench_fig1_insertion_sort.cpp - Paper Figure 1 ---------------===//
///
/// \file
/// Regenerates Figure 1: the cost function of linked-list insertion sort
/// under three input regimes. The paper's plots show, for lists of
/// length 0..999:
///   (a) random inputs   — steps ≈ 0.25 * size^2,
///   (b) sorted inputs   — steps linear in size,
///   (c) reversed inputs — steps ≈ 0.5 * size^2.
/// This binary profiles a sweep per regime, prints the <size, steps>
/// series, the fitted cost function, and an ASCII scatter plot, and
/// writes fig1.csv next to the binary for external plotting.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/AsciiPlot.h"
#include "report/CsvWriter.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

struct RegimeResult {
  std::string Name;
  std::vector<SeriesPoint> Series;
  fit::FitResult Fit;
};

RegimeResult runRegime(programs::InputOrder Order) {
  RegimeResult R;
  R.Name = programs::inputOrderName(Order);

  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(/*MaxSize=*/401, /*Step=*/20,
                                     /*Reps=*/3, Order),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  // Tracked sizing: exact for this grow-only workload, and fast enough
  // for the full sweep (see DESIGN.md, SnapshotMode).
  SessionOptions Opts;
  Opts.Profile.Snapshots = SnapshotMode::Tracked;
  ProfileSession S(*CP, Opts);
  vm::RunResult Run = S.run("Main", "main");
  if (!Run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", Run.TrapMessage.c_str());
    std::exit(1);
  }

  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    if (AP.Algo.Root->Name != "List.sort loop#0")
      continue;
    if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries()) {
      R.Series = Ser->Series;
      R.Fit = Ser->Fit;
    }
  }
  return R;
}

} // namespace

int main() {
  std::printf("Figure 1: cost function of insertion sort "
              "(steps vs list size)\n");
  std::printf("paper: (a) random ~ 0.25*n^2   (b) sorted ~ linear   "
              "(c) reversed ~ 0.5*n^2\n\n");

  std::vector<RegimeResult> Regimes = {
      runRegime(programs::InputOrder::Random),
      runRegime(programs::InputOrder::Sorted),
      runRegime(programs::InputOrder::Reversed),
  };

  report::Table T({"regime", "runs", "fitted cost function", "model",
                   "R^2"});
  for (const RegimeResult &R : Regimes) {
    char R2[16];
    std::snprintf(R2, sizeof(R2), "%.4f", R.Fit.R2);
    T.addRow({R.Name, std::to_string(R.Series.size()), R.Fit.formula(),
              fit::modelKindName(R.Fit.Kind), R2});
  }
  std::printf("%s\n", T.str().c_str());

  std::vector<report::PlotSeries> Plots;
  const char Glyphs[] = {'r', 's', 'v'};
  for (size_t I = 0; I < Regimes.size(); ++I)
    Plots.push_back({Regimes[I].Name, Glyphs[I], Regimes[I].Series});
  std::printf("%s\n",
              report::renderScatter(Plots, "steps vs input size").c_str());

  std::vector<std::pair<std::string, std::vector<SeriesPoint>>> Csv;
  for (const RegimeResult &R : Regimes)
    Csv.emplace_back(R.Name, R.Series);
  if (report::writeFile("fig1.csv", report::seriesToCsv(Csv)))
    std::printf("wrote fig1.csv\n");
  return 0;
}

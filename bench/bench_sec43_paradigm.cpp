//===- bench/bench_sec43_paradigm.cpp - Paper Section 4.3 -----------------===//
///
/// \file
/// Regenerates the Section 4.3 claim: the imperative/iterative/mutable
/// insertion sort and the functional/recursive/immutable one produce
/// (almost) the same algorithmic profile — a linear Construction and a
/// quadratic sorting algorithm over a Node-based structure, regardless
/// of paradigm.
///
/// The honest difference (recorded in EXPERIMENTS.md): the functional
/// sort *constructs* its result structure rather than *modifying* the
/// input in place, and its work splits across two recursion nodes
/// (sort + insert); combined they carry the same quadratic cost as the
/// imperative loop nest. The paper itself reports "almost identical".
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

struct Row {
  std::string Impl;
  std::string Algorithm;
  std::string Classification;
  std::string Fit;
};

void collect(const std::string &Src, const std::string &Impl,
             std::vector<Row> &Rows, const char *SortRootA,
             const char *SortRootB) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(Src, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }

  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    const std::string &Root = AP.Algo.Root->Name;
    bool IsBuild = Root.find("construct") != std::string::npos;
    bool IsSort = Root == SortRootA || (SortRootB && Root == SortRootB);
    if (!IsBuild && !IsSort)
      continue;
    Row Out;
    Out.Impl = Impl;
    Out.Algorithm = Root;
    Out.Classification = AP.Label;
    if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries())
      Out.Fit = Ser->Fit.formula();
    else
      Out.Fit = "-";
    Rows.push_back(std::move(Out));
  }

  // For the functional variant also report the combined sort+insert
  // cost over the original list — the paper's intuitive "the sorting
  // algorithm".
  if (Impl != "functional")
    return;
  const RepetitionNode *SortN = nullptr, *InsertN = nullptr;
  S.tree().forEach([&](const RepetitionNode &N) {
    if (N.Name == "FSort.sort (recursion)")
      SortN = &N;
    if (N.Name == "FSort.insert (recursion)")
      InsertN = &N;
  });
  if (!SortN || !InsertN)
    return;
  Algorithm Whole;
  Whole.Root = SortN;
  Whole.Nodes = {SortN, InsertN};
  auto Combined = combineInvocations(Whole, S.inputs());
  std::vector<int32_t> Ids;
  for (int32_t Id : SortN->touchedInputs())
    Ids.push_back(S.inputs().canonical(Id));
  auto Series = extractPooledSeries(Combined, Ids);
  fit::FitResult F = fit::fitBest(Series);
  Rows.push_back({Impl, "FSort.sort + FSort.insert (combined)",
                  "the sorting algorithm as a whole", F.formula()});
}

} // namespace

int main() {
  std::printf("Section 4.3: paradigm agnosticism "
              "(imperative vs functional insertion sort)\n\n");

  std::vector<Row> Rows;
  collect(programs::insertionSortProgram(160, 10, 3,
                                         programs::InputOrder::Random),
          "imperative", Rows, "List.sort loop#0", nullptr);
  collect(programs::functionalSortProgram(160, 10, 3,
                                          programs::InputOrder::Random),
          "functional", Rows, "FSort.sort (recursion)",
          "FSort.insert (recursion)");

  report::Table T({"implementation", "algorithm", "classification",
                   "steps fit"});
  for (const Row &R : Rows)
    T.addRow({R.Impl, R.Algorithm, R.Classification, R.Fit});
  std::printf("%s\n", T.str().c_str());

  std::printf("claim check: both implementations show a ~1*n "
              "Construction and an ~0.25..0.5*n^2 sorting algorithm over "
              "a Node-based recursive structure.\n");
  return 0;
}

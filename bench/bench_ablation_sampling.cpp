//===- bench/bench_ablation_sampling.cpp - Invocation sampling ------------===//
///
/// \file
/// Ablation C: the paper's Sec. 3.3 memory concern. Keeping historic
/// input size and cost information for *every* invocation "can lead to
/// large memory requirements"; the paper suggests sampling a subset of
/// invocations for frequently invoked repetitions. This bench measures
/// the trade: recorded invocation count (the memory driver) and the
/// fitted cost function of the sort algorithm, across sampling
/// thresholds, on the running example.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

struct Outcome {
  int64_t RecordedInvocations = 0;
  int64_t TotalInvocations = 0;
  std::string Fit;
  double R2 = 0;
};

Outcome runWithThreshold(int64_t Threshold) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(/*MaxSize=*/200, /*Step=*/10,
                                     /*Reps=*/3,
                                     programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  SessionOptions Opts;
  Opts.Profile.SampleThreshold = Threshold;
  Opts.Profile.Snapshots = SnapshotMode::Tracked;
  ProfileSession S(*CP, Opts);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }

  Outcome Out;
  S.tree().forEach([&](const RepetitionNode &N) {
    Out.RecordedInvocations += static_cast<int64_t>(N.History.size());
    Out.TotalInvocations += N.TotalInvocations;
  });
  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    if (AP.Algo.Root->Name != "List.sort loop#0")
      continue;
    if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries()) {
      Out.Fit = Ser->Fit.formula();
      Out.R2 = Ser->Fit.R2;
    }
  }
  return Out;
}

} // namespace

int main() {
  std::printf("Ablation C: invocation sampling (paper Sec. 3.3)\n\n");
  report::Table T({"sample threshold", "recorded invocations",
                   "total invocations", "kept", "sort fit", "R^2"});
  for (int64_t Threshold : {0L, 256L, 64L, 16L}) {
    Outcome Out = runWithThreshold(Threshold);
    char Kept[16], R2[16];
    std::snprintf(Kept, sizeof(Kept), "%.0f%%",
                  100.0 * static_cast<double>(Out.RecordedInvocations) /
                      static_cast<double>(Out.TotalInvocations));
    std::snprintf(R2, sizeof(R2), "%.4f", Out.R2);
    T.addRow({Threshold == 0 ? "off (full history)"
                             : std::to_string(Threshold),
              std::to_string(Out.RecordedInvocations),
              std::to_string(Out.TotalInvocations), Kept, Out.Fit, R2});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("sampled-out invocations fold their costs into the parent "
              "activation, so the combined cost of every *recorded* "
              "invocation stays exact — only plot points thin out.\n");
  return 0;
}

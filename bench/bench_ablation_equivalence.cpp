//===- bench/bench_ablation_equivalence.cpp - Equivalence ablation --------===//
///
/// \file
/// Ablation over the paper's four snapshot-equivalence criteria
/// (Sec. 2.4): how many distinct inputs each criterion sees for
/// workloads where identity matters:
///   - the grow-by-1 array list (reallocation: SameArray fragments;
///     SomeElements keeps one input — the paper's footnote-1 argument),
///   - an in-place list construction (AllElements fragments an evolving
///     structure),
///   - two disjoint same-typed lists (SameType over-merges).
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TablePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

int liveInputs(const std::string &Src, EquivalenceStrategy Eq) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(Src, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  SessionOptions Opts;
  Opts.Profile.Equivalence = Eq;
  ProfileSession S(*CP, Opts);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }
  return static_cast<int>(S.inputs().liveInputs().size());
}

const char *TwoLists = R"(
class Node { Node next; }
class Main {
  static Node build(int n) {
    Node list = null;
    for (int i = 0; i < n; i++) {
      Node x = new Node();
      x.next = list;
      list = x;
    }
    return list;
  }
  static void main() {
    Node a = build(12);
    Node b = build(12);
    a = null;
    b = null;
  }
}
)";

const char *OneGrowingList = R"(
class Node { Node next; }
class Main {
  static void main() {
    Node list = null;
    for (int i = 0; i < 16; i++) {
      Node x = new Node();
      x.next = list;
      list = x;
    }
    list = null;
  }
}
)";

} // namespace

int main() {
  std::printf("Ablation A: snapshot-equivalence criteria "
              "(distinct inputs seen)\n\n");

  struct Workload {
    std::string Name;
    std::string Src;
    std::string Want;
  };
  std::vector<Workload> Workloads = {
      {"grow-by-1 array list (1 realloc'd backing array)",
       programs::arrayListProgram(false, 16, 16), "1"},
      {"one growing linked list", OneGrowingList, "1"},
      {"two disjoint same-typed lists", TwoLists, "2"},
  };
  std::vector<EquivalenceStrategy> Strategies = {
      EquivalenceStrategy::SomeElements, EquivalenceStrategy::AllElements,
      EquivalenceStrategy::SameArray, EquivalenceStrategy::SameType};

  report::Table T({"workload", "intended", "SomeElements", "AllElements",
                   "SameArray", "SameType"});
  for (const Workload &W : Workloads) {
    std::vector<std::string> Row = {W.Name, W.Want};
    for (EquivalenceStrategy Eq : Strategies)
      Row.push_back(std::to_string(liveInputs(W.Src, Eq)));
    T.addRow(Row);
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("paper's default is SomeElements: it alone keeps the "
              "realloc'd array and the evolving list whole without "
              "merging the disjoint lists.\n");
  return 0;
}

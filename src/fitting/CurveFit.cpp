//===- fitting/CurveFit.cpp -----------------------------------------------===//

#include "fitting/CurveFit.h"

#include "obs/Obs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace algoprof;
using namespace algoprof::fit;
using namespace algoprof::prof;

const char *algoprof::fit::modelKindName(ModelKind K) {
  switch (K) {
  case ModelKind::Constant:
    return "constant";
  case ModelKind::Logarithmic:
    return "logarithmic";
  case ModelKind::Linear:
    return "linear";
  case ModelKind::NLogN:
    return "n*log(n)";
  case ModelKind::Quadratic:
    return "quadratic";
  case ModelKind::Cubic:
    return "cubic";
  case ModelKind::PowerLaw:
    return "power-law";
  }
  return "<bad-model>";
}

double FitResult::growthExponent() const {
  switch (Kind) {
  case ModelKind::Constant:
    return 0;
  case ModelKind::Logarithmic:
    return 0.2; // Conventional placement between constant and linear.
  case ModelKind::Linear:
    return 1;
  case ModelKind::NLogN:
    return 1.15; // Conventional placement between linear and quadratic.
  case ModelKind::Quadratic:
    return 2;
  case ModelKind::Cubic:
    return 3;
  case ModelKind::PowerLaw:
    return Exponent;
  }
  return 0;
}

static std::string fmtCoeff(double A) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3g", A);
  return Buf;
}

std::string FitResult::formula() const {
  if (!Valid)
    return "<no fit>";
  switch (Kind) {
  case ModelKind::Constant:
    return fmtCoeff(Coefficient);
  case ModelKind::Logarithmic:
    return fmtCoeff(Coefficient) + "*log2(n)";
  case ModelKind::Linear:
    return fmtCoeff(Coefficient) + "*n";
  case ModelKind::NLogN:
    return fmtCoeff(Coefficient) + "*n*log2(n)";
  case ModelKind::Quadratic:
    return fmtCoeff(Coefficient) + "*n^2";
  case ModelKind::Cubic:
    return fmtCoeff(Coefficient) + "*n^3";
  case ModelKind::PowerLaw:
    return fmtCoeff(Coefficient) + "*n^" + fmtCoeff(Exponent);
  }
  return "<bad-model>";
}

namespace {

double basis(ModelKind K, double N) {
  switch (K) {
  case ModelKind::Constant:
    return 1;
  case ModelKind::Logarithmic:
    return N <= 1 ? 0 : std::log2(N);
  case ModelKind::Linear:
    return N;
  case ModelKind::NLogN:
    return N <= 1 ? 0 : N * std::log2(N);
  case ModelKind::Quadratic:
    return N * N;
  case ModelKind::Cubic:
    return N * N * N;
  case ModelKind::PowerLaw:
    return 0; // Handled separately.
  }
  return 0;
}

/// Sum of squared deviations of y around its mean.
double totalSumOfSquares(const std::vector<SeriesPoint> &Series) {
  double MeanY = 0;
  for (const SeriesPoint &Pt : Series)
    MeanY += Pt.Y;
  MeanY /= static_cast<double>(Series.size());
  double Tss = 0;
  for (const SeriesPoint &Pt : Series)
    Tss += (Pt.Y - MeanY) * (Pt.Y - MeanY);
  return Tss;
}

FitResult finishFit(const std::vector<SeriesPoint> &Series, FitResult R,
                    double Rss, int NumParams) {
  double M = static_cast<double>(Series.size());
  double Tss = totalSumOfSquares(Series);
  R.R2 = Tss > 0 ? 1.0 - Rss / Tss : (Rss <= 1e-9 ? 1.0 : 0.0);
  // Clamp the residual at a noise floor *relative to the data's scale*
  // (mean squared y): an exact fit would otherwise send the log to
  // -inf — or, worse, two exact models would rank by float noise in
  // their ~1e-30-relative residuals. Everything below accumulated
  // double rounding noise counts as the same perfect fit; ties are then
  // broken deterministically in fitAllModels.
  double MeanYY = 0;
  for (const SeriesPoint &Pt : Series)
    MeanYY += Pt.Y * Pt.Y;
  MeanYY /= M;
  double Floor = std::max(MeanYY, 1.0) * 1e-30;
  double MeanRss = std::max(Rss / M, Floor);
  R.Bic = M * std::log(MeanRss) + NumParams * std::log(M);
  R.NumParams = NumParams;
  R.Valid = true;
  return R;
}

FitResult fitPowerLaw(const std::vector<SeriesPoint> &Series) {
  FitResult R;
  R.Kind = ModelKind::PowerLaw;
  // Log-log linear regression over strictly positive points.
  double Sx = 0, Sy = 0, Sxx = 0, Sxy = 0;
  int N = 0;
  for (const SeriesPoint &Pt : Series) {
    if (Pt.X <= 0 || Pt.Y <= 0)
      continue;
    double Lx = std::log(Pt.X), Ly = std::log(Pt.Y);
    Sx += Lx;
    Sy += Ly;
    Sxx += Lx * Lx;
    Sxy += Lx * Ly;
    ++N;
  }
  if (N < 3)
    return R; // Invalid.
  double Denom = N * Sxx - Sx * Sx;
  if (std::abs(Denom) < 1e-12)
    return R;
  R.Exponent = (N * Sxy - Sx * Sy) / Denom;
  R.Coefficient = std::exp((Sy - R.Exponent * Sx) / N);

  // Residuals in the original space over the *full* series.
  double Rss = 0;
  for (const SeriesPoint &Pt : Series) {
    double Pred =
        Pt.X <= 0 ? 0 : R.Coefficient * std::pow(Pt.X, R.Exponent);
    Rss += (Pt.Y - Pred) * (Pt.Y - Pred);
  }
  return finishFit(Series, R, Rss, /*NumParams=*/2);
}

} // namespace

FitResult algoprof::fit::fitModel(const std::vector<SeriesPoint> &Series,
                                  ModelKind K) {
  obs::addCount(obs::Counter::FitEvaluations);
  FitResult R;
  R.Kind = K;
  if (Series.size() < 3)
    return R;
  if (K == ModelKind::PowerLaw)
    return fitPowerLaw(Series);

  // Closed-form least squares for y = a*f(n): a = sum(y*f) / sum(f^2).
  double Sff = 0, Syf = 0;
  for (const SeriesPoint &Pt : Series) {
    double F = basis(K, Pt.X);
    Sff += F * F;
    Syf += Pt.Y * F;
  }
  if (Sff < 1e-12) {
    // Degenerate basis (all sizes zero); only Constant can survive.
    if (K != ModelKind::Constant)
      return R;
  }
  R.Coefficient = Sff > 0 ? Syf / Sff : 0;

  double Rss = 0;
  for (const SeriesPoint &Pt : Series) {
    double Pred = R.Coefficient * basis(K, Pt.X);
    Rss += (Pt.Y - Pred) * (Pt.Y - Pred);
  }
  return finishFit(Series, R, Rss, /*NumParams=*/1);
}

std::vector<FitResult>
algoprof::fit::fitAllModels(const std::vector<SeriesPoint> &Series) {
  obs::ScopedTimer Timer(obs::Phase::Fit);
  std::vector<FitResult> Fits;
  for (ModelKind K :
       {ModelKind::Constant, ModelKind::Logarithmic, ModelKind::Linear,
        ModelKind::NLogN, ModelKind::Quadratic, ModelKind::Cubic,
        ModelKind::PowerLaw}) {
    FitResult R = fitModel(Series, K);
    if (R.Valid)
      Fits.push_back(R);
  }
  // Ascending BIC; exact ties (clamped perfect fits produce *equal*
  // BICs) prefer fewer parameters, then the simpler model family (the
  // ModelKind enum is ordered by growth).
  std::sort(Fits.begin(), Fits.end(),
            [](const FitResult &A, const FitResult &B) {
              if (A.Bic != B.Bic)
                return A.Bic < B.Bic;
              if (A.NumParams != B.NumParams)
                return A.NumParams < B.NumParams;
              return static_cast<int>(A.Kind) < static_cast<int>(B.Kind);
            });
  return Fits;
}

FitResult algoprof::fit::fitBest(const std::vector<SeriesPoint> &Series) {
  std::vector<FitResult> Fits = fitAllModels(Series);
  if (Fits.empty())
    return FitResult();
  return Fits.front();
}

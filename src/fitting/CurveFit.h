//===- fitting/CurveFit.h - Empirical cost-function fitting -----*- C++-*-===//
///
/// \file
/// Least-squares fitting of cost functions over <input size, cost>
/// series. The paper fits its cost functions by hand with a statistics
/// package (Sec. 2.7/3.5), deferring automation to empirical
/// algorithmics [8,9,14]; this module implements the standard approach
/// those works describe: a family of single-coefficient basis models
/// (a, a·n, a·n·log2 n, a·n², a·n³) with closed-form least squares, a
/// two-parameter power law a·n^b via log-log regression, and BIC model
/// selection.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FITTING_CURVEFIT_H
#define ALGOPROF_FITTING_CURVEFIT_H

#include "core/AlgorithmSummary.h"

#include <string>
#include <vector>

namespace algoprof {
namespace fit {

/// The candidate model family.
enum class ModelKind {
  Constant,    ///< y = a
  Logarithmic, ///< y = a*log2(n)
  Linear,      ///< y = a*n
  NLogN,       ///< y = a*n*log2(n)
  Quadratic,   ///< y = a*n^2
  Cubic,       ///< y = a*n^3
  PowerLaw,    ///< y = a*n^b
};

const char *modelKindName(ModelKind K);

/// One fitted model.
struct FitResult {
  ModelKind Kind = ModelKind::Constant;
  double Coefficient = 0; ///< a.
  double Exponent = 0;    ///< b (PowerLaw only).
  double R2 = 0;          ///< Coefficient of determination.
  double Bic = 0;         ///< Bayesian information criterion (lower wins).
  int NumParams = 1;      ///< Free parameters (2 for PowerLaw).
  bool Valid = false;

  /// Asymptotic growth exponent: 0 constant, ~0.2 logarithmic,
  /// 1 linear, ~1.15 n·log n, 2 quadratic, 3 cubic, b for power laws.
  /// The cross-implementation invariant tests assert on this.
  double growthExponent() const;

  /// Human-readable formula like "0.25*n^2" (paper Fig. 3 notation).
  std::string formula() const;
};

/// Fits one model of kind \p K to \p Series.
FitResult fitModel(const std::vector<prof::SeriesPoint> &Series,
                   ModelKind K);

/// Fits every model and returns them sorted by ascending BIC (best
/// first). Invalid fits (degenerate series) are omitted. Exact fits
/// share one BIC floor (the residual is clamped at a relative noise
/// epsilon, so a perfect model never reaches log(0)); exact ties break
/// deterministically toward fewer parameters, then the simpler model
/// family — never toward whatever order the sort visited them in.
std::vector<FitResult>
fitAllModels(const std::vector<prof::SeriesPoint> &Series);

/// The best model by BIC; FitResult::Valid is false for degenerate
/// series (fewer than 3 points, or no size variation).
FitResult fitBest(const std::vector<prof::SeriesPoint> &Series);

} // namespace fit
} // namespace algoprof

#endif // ALGOPROF_FITTING_CURVEFIT_H

//===- cct/BlockCountProfiler.h - Basic-block count profiler ----*- C++-*-===//
///
/// \file
/// The related-work baseline of Goldsmith, Aiken & Wilkerson (FSE'07,
/// "Measuring empirical computational complexity", the paper's [4]):
/// cost measured as *basic-block execution counts*. Their approach fits
/// cost functions too, but every other step — locating the algorithm,
/// choosing its input, measuring the input's size — is manual. This
/// profiler supplies the automatic half they had (block counts per
/// method) so the bench can contrast the two systems: identical fitted
/// shapes once a human supplies input sizes, zero input/size/grouping
/// automation.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CCT_BLOCKCOUNTPROFILER_H
#define ALGOPROF_CCT_BLOCKCOUNTPROFILER_H

#include "vm/Interpreter.h"

#include <vector>

namespace algoprof {
namespace cct {

/// Counts basic-block executions per method. Requires instruction
/// events (wantsInstructionEvents) and the prepared program's CFGs.
class BlockCountProfiler : public vm::ExecutionListener {
public:
  explicit BlockCountProfiler(const vm::PreparedProgram &P);
  ~BlockCountProfiler() override;

  /// Blocks executed in \p MethodId (all contexts).
  int64_t blockCount(int32_t MethodId) const {
    return PerMethod[static_cast<size_t>(MethodId)];
  }

  /// Total blocks executed.
  int64_t totalBlocks() const;

  /// Per-block execution counts of one method, indexed by block id.
  const std::vector<int64_t> &blockCounts(int32_t MethodId) const {
    return PerBlock[static_cast<size_t>(MethodId)];
  }

  /// Resets all counters (e.g. between runs of a sweep so each run
  /// yields one data point, mirroring Goldsmith's per-run measurement).
  void reset();

  // ExecutionListener implementation.
  void onInstruction(int32_t MethodId, int32_t Pc) override;
  void onMethodEnter(int32_t MethodId) override;
  bool wantsInstructionEvents() const override { return true; }

private:
  const vm::PreparedProgram &P;
  std::vector<int64_t> PerMethod;
  std::vector<std::vector<int64_t>> PerBlock;
};

} // namespace cct
} // namespace algoprof

#endif // ALGOPROF_CCT_BLOCKCOUNTPROFILER_H

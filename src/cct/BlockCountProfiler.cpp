//===- cct/BlockCountProfiler.cpp -----------------------------------------===//

#include "cct/BlockCountProfiler.h"

using namespace algoprof;
using namespace algoprof::cct;

BlockCountProfiler::BlockCountProfiler(const vm::PreparedProgram &P)
    : P(P) {
  PerMethod.assign(P.M->Methods.size(), 0);
  PerBlock.resize(P.M->Methods.size());
  for (size_t M = 0; M < P.Methods.size(); ++M)
    PerBlock[M].assign(
        static_cast<size_t>(P.Methods[M].Graph.numBlocks()), 0);
}

BlockCountProfiler::~BlockCountProfiler() = default;

int64_t BlockCountProfiler::totalBlocks() const {
  int64_t Sum = 0;
  for (int64_t N : PerMethod)
    Sum += N;
  return Sum;
}

void BlockCountProfiler::reset() {
  for (int64_t &N : PerMethod)
    N = 0;
  for (auto &Blocks : PerBlock)
    for (int64_t &N : Blocks)
      N = 0;
}

void BlockCountProfiler::onMethodEnter(int32_t MethodId) {
  (void)MethodId; // Block entries are recognized from pcs alone.
}

void BlockCountProfiler::onInstruction(int32_t MethodId, int32_t Pc) {
  const analysis::Cfg &G =
      P.Methods[static_cast<size_t>(MethodId)].Graph;
  int Block = G.blockAt(Pc);
  // A block executes when its leader instruction executes.
  if (G.Blocks[static_cast<size_t>(Block)].Begin != Pc)
    return;
  ++PerMethod[static_cast<size_t>(MethodId)];
  ++PerBlock[static_cast<size_t>(MethodId)][static_cast<size_t>(Block)];
}

//===- cct/CctProfiler.h - Traditional CCT hotness profiler -----*- C++-*-===//
///
/// \file
/// The baseline the paper contrasts against (Fig. 2): a calling-context
///-tree profiler attributing call counts and inclusive/exclusive cost to
/// method contexts. Cost is deterministic executed-bytecode-instruction
/// counts instead of the wall-clock time the paper's hprof profile
/// shows; the structural conclusions (most-called, hottest-exclusive)
/// are the same.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CCT_CCTPROFILER_H
#define ALGOPROF_CCT_CCTPROFILER_H

#include "vm/Interpreter.h"

#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace cct {

/// One calling context.
struct CctNode {
  int32_t MethodId = -1; ///< -1 for the synthetic root.
  CctNode *Parent = nullptr;
  std::vector<std::unique_ptr<CctNode>> Children;
  int64_t Calls = 0;
  int64_t ExclusiveCost = 0; ///< Instructions executed in this context.

  int64_t inclusiveCost() const;
  CctNode *findChild(int32_t Method);
};

/// Builds a CCT over profiled runs. Requires an all-methods
/// InstrumentationPlan (vm::InstrumentationPlan::all).
class CctProfiler : public vm::ExecutionListener {
public:
  explicit CctProfiler(const bc::Module &M);
  ~CctProfiler() override;

  const CctNode &root() const { return *Root; }
  const bc::Module &module() const { return M; }

  /// Methods sorted by descending total exclusive cost, as
  /// (methodId, calls, exclusive, inclusive) rows.
  struct FlatRow {
    int32_t MethodId;
    int64_t Calls;
    int64_t Exclusive;
    int64_t Inclusive;
  };
  std::vector<FlatRow> flatProfile() const;

  // ExecutionListener implementation.
  void onProgramStart(const vm::ExecContext &Ctx) override;
  void onMethodEnter(int32_t MethodId) override;
  void onMethodExit(int32_t MethodId) override;
  void onInstruction(int32_t MethodId, int32_t Pc) override;
  bool wantsInstructionEvents() const override { return true; }

private:
  const bc::Module &M;
  std::unique_ptr<CctNode> Root;
  CctNode *Current = nullptr;
};

} // namespace cct
} // namespace algoprof

#endif // ALGOPROF_CCT_CCTPROFILER_H

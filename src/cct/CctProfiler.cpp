//===- cct/CctProfiler.cpp ------------------------------------------------===//

#include "cct/CctProfiler.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace algoprof;
using namespace algoprof::cct;

int64_t CctNode::inclusiveCost() const {
  int64_t Sum = ExclusiveCost;
  for (const auto &C : Children)
    Sum += C->inclusiveCost();
  return Sum;
}

CctNode *CctNode::findChild(int32_t Method) {
  for (const auto &C : Children)
    if (C->MethodId == Method)
      return C.get();
  return nullptr;
}

CctProfiler::CctProfiler(const bc::Module &M)
    : M(M), Root(std::make_unique<CctNode>()) {
  Current = Root.get();
}

CctProfiler::~CctProfiler() = default;

void CctProfiler::onProgramStart(const vm::ExecContext &Ctx) {
  (void)Ctx;
  Current = Root.get();
}

void CctProfiler::onMethodEnter(int32_t MethodId) {
  CctNode *Child = Current->findChild(MethodId);
  if (!Child) {
    auto Node = std::make_unique<CctNode>();
    Node->MethodId = MethodId;
    Node->Parent = Current;
    Current->Children.push_back(std::move(Node));
    Child = Current->Children.back().get();
  }
  ++Child->Calls;
  Current = Child;
}

void CctProfiler::onMethodExit(int32_t MethodId) {
  assert(Current->MethodId == MethodId && "unbalanced CCT enter/exit");
  (void)MethodId;
  assert(Current->Parent && "exiting past the CCT root");
  Current = Current->Parent;
}

void CctProfiler::onInstruction(int32_t MethodId, int32_t Pc) {
  (void)MethodId;
  (void)Pc;
  ++Current->ExclusiveCost;
}

std::vector<CctProfiler::FlatRow> CctProfiler::flatProfile() const {
  std::map<int32_t, FlatRow> ByMethod;

  struct Walker {
    std::map<int32_t, FlatRow> &ByMethod;
    void walk(const CctNode &N) {
      if (N.MethodId >= 0) {
        FlatRow &Row = ByMethod[N.MethodId];
        Row.MethodId = N.MethodId;
        Row.Calls += N.Calls;
        Row.Exclusive += N.ExclusiveCost;
        Row.Inclusive += N.inclusiveCost();
      }
      for (const auto &C : N.Children)
        walk(*C);
    }
  } W{ByMethod};
  W.walk(*Root);

  std::vector<FlatRow> Rows;
  for (const auto &[Id, Row] : ByMethod) {
    (void)Id;
    Rows.push_back(Row);
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const FlatRow &A, const FlatRow &B) {
              if (A.Exclusive != B.Exclusive)
                return A.Exclusive > B.Exclusive;
              return A.MethodId < B.MethodId;
            });
  return Rows;
}

//===- service/Client.h - Typed algoprofd client ----------------*- C++-*-===//
///
/// \file
/// The typed client API for the profiling daemon. A Client names an
/// endpoint — Unix socket (default transport) or TCP with an auth
/// token — and submit() opens one session per job:
///
///   Client C = Client::unixSocket("/run/algoprofd.sock");
///   JobSpec Job;
///   Job.Corpus = "seeded_insertion_sort_random";
///   Job.Seeds = {4, 8, 12};
///   Session S = C.submit(Job);
///   S.onDelta([](const RunDeltaMsg &D) { /* live progress */ });
///   TypedResult R = S.wait();
///   if (R.Ok) use(R.ProfileJson);
///   else diagnose(R.Error);
///
/// wait() drives the reply stream to its end and returns structured
/// results: the acceptance, every RunDelta (v2 deltas carry tree and
/// fitted-curve estimates), the final profile JSON — byte-identical to
/// the serial CLI — and either a Done summary or a ServiceError that
/// distinguishes daemon rejections (Code = errc::*) from transport
/// failures (Transport = true). Used by tools/algoprof_client and the
/// service tests; a non-C++ client only needs service/Protocol.h.
///
/// sendRaw() remains as the single raw-bytes escape hatch so tests can
/// exercise malformed/truncated frames the typed API cannot produce.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_CLIENT_H
#define ALGOPROF_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace algoprof {
namespace service {

/// What to profile and how; the typed client's job description.
using JobSpec = JobRequest;

/// Why a session produced no profile. Exactly one of the two flavors:
/// a daemon rejection carries the wire errc::* code, a transport
/// failure (connect refused, dropped connection, malformed reply) sets
/// Transport with Code "transport".
struct ServiceError {
  std::string Code;
  std::string Message;
  bool Transport = false;

  bool any() const { return !Code.empty(); }
};

/// Everything one session produced, in arrival order.
struct TypedResult {
  /// The full happy path: accepted, profile delivered, stream closed
  /// cleanly with Done. When false, Error says why.
  bool Ok = false;
  bool Accepted = false;
  AcceptedMsg Acceptance;
  std::vector<RunDeltaMsg> Deltas;
  std::string ProfileJson;
  bool HaveProfile = false;
  DoneMsg Summary;
  ServiceError Error;
};

/// One submitted job's reply stream. Move-only; obtained from
/// Client::submit(). Call wait() exactly once to consume the stream.
class Session {
public:
  Session(Session &&O) noexcept;
  Session &operator=(Session &&O) noexcept;
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Installs a live-progress callback, invoked for every RunDelta as
  /// wait() reads it (before it is appended to TypedResult::Deltas).
  /// Returns *this for chaining; call before wait().
  Session &onDelta(std::function<void(const RunDeltaMsg &)> Cb);

  /// Drives the stream to its end and returns the structured result.
  TypedResult wait();

private:
  friend class Client;
  Session() = default;

  int Fd = -1;
  std::string SubmitError; ///< Non-empty: submit failed before I/O.
  std::function<void(const RunDeltaMsg &)> Delta;
};

/// A daemon endpoint. Cheap to copy; each submit() opens a fresh
/// connection (the protocol is one job per connection).
class Client {
public:
  /// The default transport: a Unix-domain socket, access gated by
  /// filesystem permissions (no token needed).
  static Client unixSocket(std::string Path);

  /// TCP with the daemon's shared auth token. The token is attached to
  /// every submitted job (JobSpec::Auth overrides when set).
  static Client tcp(std::string Host, uint16_t Port,
                    std::string AuthToken = std::string());

  /// Sends one Job frame and returns the session to consume its reply
  /// stream. Never throws: connect failures surface from wait().
  Session submit(const JobSpec &Spec) const;

private:
  Client() = default;

  bool Tcp = false;
  std::string PathOrHost;
  uint16_t Port = 0;
  std::string Token;
};

/// Connects to \p SocketPath and writes \p RawBytes verbatim, then
/// reads one reply frame. A test hook for protocol edge cases
/// (malformed or truncated frames) that the typed API can never
/// produce. Returns false on connect failure. When the daemon
/// answers, \p Reply holds the frame and \p GotReply is true; a silent
/// close leaves GotReply false.
bool sendRaw(const std::string &SocketPath, const std::string &RawBytes,
             Frame &Reply, bool &GotReply, std::string &Err);

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_CLIENT_H

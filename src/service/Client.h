//===- service/Client.h - Typed algoprofd client ----------------*- C++-*-===//
///
/// \file
/// The typed client API for the profiling daemon. A Client names an
/// endpoint — Unix socket (default transport) or TCP with an auth
/// token — and submit() opens one session per job:
///
///   Client C = Client::unixSocket("/run/algoprofd.sock");
///   JobSpec Job;
///   Job.Corpus = "seeded_insertion_sort_random";
///   Job.Seeds = {4, 8, 12};
///   Session S = C.submit(Job);
///   S.onDelta([](const RunDeltaMsg &D) { /* live progress */ });
///   TypedResult R = S.wait();
///   if (R.Ok) use(R.ProfileJson);
///   else diagnose(R.Error);
///
/// wait() drives the reply stream to its end and returns structured
/// results: the acceptance, every RunDelta (v2 deltas carry tree and
/// fitted-curve estimates), the final profile JSON — byte-identical to
/// the serial CLI — and either a Done summary or a ServiceError that
/// distinguishes daemon rejections (Code = errc::*) from transport
/// failures (Transport = true). Used by tools/algoprof_client and the
/// service tests; a non-C++ client only needs service/Protocol.h.
///
/// run() layers a retry driver over submit()/wait(): per-operation
/// socket deadlines, exponential backoff with seeded jitter, and
/// automatic cursor resume. Once a job is accepted, the driver knows
/// the session id and how many deltas it has observed; after a
/// transport fault it reconnects with `resume=<sid> from-delta=<k>`,
/// so the merged result holds every delta exactly once and the
/// profile stays byte-identical no matter how often the link broke.
/// Daemon rejections (including errc::ResultEvicted) are never
/// retried — only transport faults are.
///
/// sendRaw() remains as the single raw-bytes escape hatch so tests can
/// exercise malformed/truncated frames the typed API cannot produce.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_CLIENT_H
#define ALGOPROF_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace algoprof {
namespace service {

/// What to profile and how; the typed client's job description.
using JobSpec = JobRequest;

/// Why a session produced no profile. Exactly one of the two flavors:
/// a daemon rejection carries the wire errc::* code, a transport
/// failure (connect refused, dropped connection, malformed reply) sets
/// Transport with Code "transport".
struct ServiceError {
  std::string Code;
  std::string Message;
  bool Transport = false;

  bool any() const { return !Code.empty(); }
};

/// Everything one session produced, in arrival order.
struct TypedResult {
  /// The full happy path: accepted, profile delivered, stream closed
  /// cleanly with Done. When false, Error says why.
  bool Ok = false;
  bool Accepted = false;
  AcceptedMsg Acceptance;
  std::vector<RunDeltaMsg> Deltas;
  std::string ProfileJson;
  bool HaveProfile = false;
  DoneMsg Summary;
  ServiceError Error;
  /// Transport attempts beyond the first that Client::run() needed
  /// (always 0 from Session::wait() directly).
  unsigned TransportRetries = 0;
};

/// How Client::run() rides out transport faults. Retries apply to
/// transport failures only (connect refused, dropped or timed-out
/// connection); a daemon rejection is definitive and returned as-is.
struct RetryPolicy {
  /// Extra attempts after the first (0 = behave like submit/wait).
  unsigned ConnectRetries = 0;
  /// Per-operation socket deadline (SO_RCVTIMEO/SO_SNDTIMEO), so a
  /// stalled daemon surfaces as a transport fault instead of a hang.
  /// 0 = no deadline.
  uint64_t TimeoutMs = 0;
  /// Exponential backoff between attempts: initial delay, doubling,
  /// capped. Jitter (seeded, deterministic for tests) spreads
  /// reconnect storms: the actual delay is in [delay/2, delay].
  uint64_t BackoffInitialMs = 100;
  uint64_t BackoffMaxMs = 2000;
  uint64_t JitterSeed = 0x9e3779b97f4a7c15ull;
  /// Test hook: replaces the real sleep between attempts.
  std::function<void(uint64_t)> SleepMs;
};

/// One submitted job's reply stream. Move-only; obtained from
/// Client::submit(). Call wait() exactly once to consume the stream.
class Session {
public:
  Session(Session &&O) noexcept;
  Session &operator=(Session &&O) noexcept;
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Installs a live-progress callback, invoked for every RunDelta as
  /// wait() reads it (before it is appended to TypedResult::Deltas).
  /// Returns *this for chaining; call before wait().
  Session &onDelta(std::function<void(const RunDeltaMsg &)> Cb);

  /// Drives the stream to its end and returns the structured result.
  TypedResult wait();

private:
  friend class Client;
  Session() = default;

  int Fd = -1;
  std::string SubmitError; ///< Non-empty: submit failed before I/O.
  std::function<void(const RunDeltaMsg &)> Delta;
};

/// A daemon endpoint. Cheap to copy; each submit() opens a fresh
/// connection (the protocol is one job per connection).
class Client {
public:
  /// The default transport: a Unix-domain socket, access gated by
  /// filesystem permissions (no token needed).
  static Client unixSocket(std::string Path);

  /// TCP with the daemon's shared auth token. The token is attached to
  /// every submitted job (JobSpec::Auth overrides when set).
  static Client tcp(std::string Host, uint16_t Port,
                    std::string AuthToken = std::string());

  /// Sends one Job frame and returns the session to consume its reply
  /// stream. Never throws: connect failures surface from wait().
  Session submit(const JobSpec &Spec) const;

  /// Runs \p Spec to completion under \p Policy, retrying transport
  /// faults with backoff and resuming the accepted session at the
  /// delta cursor so no delta is observed twice. \p OnDelta (optional)
  /// fires once per delta across all attempts. The returned Deltas
  /// vector is the merged, duplicate-free stream; TransportRetries
  /// counts the reconnects it took.
  TypedResult run(const JobSpec &Spec, const RetryPolicy &Policy,
                  std::function<void(const RunDeltaMsg &)> OnDelta =
                      std::function<void(const RunDeltaMsg &)>()) const;

private:
  Client() = default;

  /// submit() with a per-operation socket deadline applied right after
  /// connect (0 = none), so the Job send itself is covered too.
  Session submitTimed(const JobSpec &Spec, uint64_t TimeoutMs) const;

  bool Tcp = false;
  std::string PathOrHost;
  uint16_t Port = 0;
  std::string Token;
};

/// Connects to \p SocketPath and writes \p RawBytes verbatim, then
/// reads one reply frame. A test hook for protocol edge cases
/// (malformed or truncated frames) that the typed API can never
/// produce. Returns false on connect failure. When the daemon
/// answers, \p Reply holds the frame and \p GotReply is true; a silent
/// close leaves GotReply false.
bool sendRaw(const std::string &SocketPath, const std::string &RawBytes,
             Frame &Reply, bool &GotReply, std::string &Err);

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_CLIENT_H

//===- service/Client.h - Blocking algoprofd client -------------*- C++-*-===//
///
/// \file
/// A small synchronous client for the profiling daemon: connect to the
/// Unix-domain socket, send one Job frame, consume the streamed reply
/// (Accepted, RunDelta*, Profile, Done — or Error). Used by the
/// `algoprofd` self-test mode and the service tests; a non-C++ client
/// only needs the framing in service/Protocol.h.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_CLIENT_H
#define ALGOPROF_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <functional>
#include <string>
#include <vector>

namespace algoprof {
namespace service {

/// Everything one streamed session produced, in arrival order.
struct StreamResult {
  bool Accepted = false;
  AcceptedMsg Acceptance;
  std::vector<RunDeltaMsg> Deltas;
  std::string ProfileJson;
  bool HaveProfile = false;
  DoneMsg Done;
  bool HaveDone = false;
  ErrorMsg Error; ///< Set when the daemon rejected the job.
  bool HaveError = false;

  /// The full happy path: accepted, profile delivered, stream closed
  /// cleanly with Done.
  bool ok() const { return Accepted && HaveProfile && HaveDone; }
};

/// Runs \p Job against the daemon at \p SocketPath, collecting the
/// whole stream. Returns false (with \p Err set) only on transport
/// problems — connect failure, a malformed reply, a dropped
/// connection; a daemon-side rejection is a *successful* exchange with
/// Out.HaveError set. \p OnDelta, when non-null, observes each
/// RunDelta as it arrives (before it is appended to Out.Deltas).
bool runJob(const std::string &SocketPath, const JobRequest &Job,
            StreamResult &Out, std::string &Err,
            const std::function<void(const RunDeltaMsg &)> &OnDelta =
                nullptr);

/// Connects and writes \p RawBytes verbatim, then reads one reply
/// frame. A test hook for protocol edge cases (malformed or truncated
/// frames) that runJob can never produce. Returns false on connect
/// failure. When the daemon answers, \p Reply holds the frame and
/// \p GotReply is true; a silent close leaves GotReply false.
bool sendRaw(const std::string &SocketPath, const std::string &RawBytes,
             Frame &Reply, bool &GotReply, std::string &Err);

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_CLIENT_H

//===- service/Journal.h - Durable job queue (write-ahead log) --*- C++-*-===//
///
/// \file
/// The daemon's crash-durable job queue: every accepted Job payload is
/// appended to an on-disk write-ahead log before its runs execute, and
/// marked completed after the final profile is retained. On restart
/// the daemon loads the log, re-executes every accepted-but-incomplete
/// job (jobs_replayed), and a reconnecting client `resume=<session>`s
/// to receive the byte-identical final profile — the sweep engine's
/// determinism makes replay safe to repeat any number of times.
///
/// Format (text, append-only):
///
///   algoprof-journal/1\n
///   A <session-id> <payload-bytes>\n<payload>\n     accepted
///   C <session-id>\n                                completed
///
/// The payload is the verbatim Job frame payload (its own length is
/// declared, so embedded newlines and raw source bytes are safe). Each
/// record is one write() followed by fdatasync, so a crash can only
/// lose or truncate the tail record; the loader stops at the first
/// truncated or malformed record instead of failing.
///
/// Compaction: the log grows with every accepted job, but a completed
/// A/C pair carries no information a restart needs. compact() rewrites
/// the log with only the still-pending A records (plus one C record
/// preserving the id high-water mark) — through a temp file
/// that is fdatasync'd and then rename()d over the original, so a
/// crash at any instant leaves either the old complete log or the new
/// complete log, never a torn one. The compacted file is a valid
/// algoprof-journal/1 (the loader is unchanged).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_JOURNAL_H
#define ALGOPROF_SERVICE_JOURNAL_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace algoprof {
namespace service {

class Journal {
public:
  Journal() = default;
  ~Journal() { close(); }

  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// One accepted-but-incomplete job found in the log.
  struct PendingJob {
    uint64_t Id = 0;
    std::string Payload; ///< Verbatim Job frame payload.
  };

  struct LoadResult {
    std::vector<PendingJob> Pending; ///< In acceptance order.
    uint64_t MaxId = 0;              ///< Highest session id seen.
  };

  /// Reads \p Path (a missing file is an empty, valid log). Returns
  /// false only on I/O errors or a bad header; a truncated tail is
  /// tolerated by design. Never crashes on corruption — bit flips,
  /// oversized length fields, and duplicate records salvage the valid
  /// prefix and stop.
  static bool load(const std::string &Path, LoadResult &Out,
                   std::string &Err);

  /// Opens \p Path for appending, writing the header if the file is
  /// new or empty. Thread-safe appends after this.
  bool open(const std::string &Path, std::string &Err);

  bool isOpen() const { return Fd >= 0; }

  /// An append has failed since open() (disk full, I/O error). The
  /// daemon's /readyz reports not-ready once durability is broken.
  bool failed() const { return Failed.load(); }

  /// Current on-disk size in bytes (tracked across appends and
  /// compactions; 0 when closed). The daemon's size-threshold
  /// compaction trigger reads this instead of stat()ing per append.
  uint64_t sizeBytes() const { return Size.load(); }

  /// Journals an accepted job. Durable (fdatasync) before returning.
  bool appendAccepted(uint64_t Id, const std::string &Payload);

  /// Marks a journaled job complete.
  bool appendCompleted(uint64_t Id);

  /// Rewrites the log keeping only pending (A-without-C) records, via
  /// <path>.tmp + fdatasync + rename, then reopens the append fd on
  /// the new file. Serialized against appends. Returns false (leaving
  /// the old log intact and open) on any I/O failure.
  bool compact(std::string &Err);

  void close();

private:
  bool appendRecord(const std::string &Rec);

  int Fd = -1;
  std::string Path;          ///< Set by open(); compact() needs it.
  std::atomic<uint64_t> Size{0};
  std::atomic<bool> Failed{false};
  std::mutex Mu; ///< Serializes appends (and compaction) across sessions.
};

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_JOURNAL_H

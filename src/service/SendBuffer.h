//===- service/SendBuffer.h - Bounded per-session send buffer ---*- C++-*-===//
///
/// \file
/// Backpressure for the daemon's streamed replies. RunDelta frames are
/// advisory progress: they go through sendDelta(), which never blocks
/// the calling thread (a pool worker inside the merge lock). Bytes the
/// kernel won't take immediately queue in a bounded pending buffer;
/// when a slow client fills it, the configured policy applies —
/// DropDeltas sheds the frame (deltas_dropped), Disconnect shuts the
/// socket down. Control frames (Accepted, Profile, Done, Error) go
/// through send(), which flushes the pending buffer and blocks until
/// written: the final profile never degrades, only advisory deltas do.
///
/// Not thread-safe by itself; the daemon's uses are already serialized
/// (deltas under the engine's merge lock, control frames from the
/// session thread after finishEnqueued(), which acquires that lock).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_SENDBUFFER_H
#define ALGOPROF_SERVICE_SENDBUFFER_H

#include "service/Protocol.h"

#include <cstdint>
#include <string>

namespace algoprof {
namespace service {

class SendBuffer {
public:
  enum class Policy {
    DropDeltas, ///< Shed the delta frame; the stream stays up.
    Disconnect, ///< Shut the slow client's socket down.
  };

  /// \p MaxPending bounds the bytes queued beyond what the kernel
  /// accepts (0 = a minimal 4 KiB floor).
  SendBuffer(int Fd, size_t MaxPending, Policy P);

  /// Blocking send for control frames. Flushes pending bytes first.
  /// Returns false when the peer is gone (then and ever after).
  bool send(FrameType Type, const std::string &Payload);

  /// Non-blocking bounded send for RunDelta frames. Returns false when
  /// the frame was dropped (policy, overflow) or the peer is gone.
  bool sendDelta(const std::string &Payload);

  /// Peer vanished (write error) or was disconnected by policy.
  bool gone() const { return Gone; }

  int fd() const { return Fd; }

  /// Wire bytes accepted into the stream (kernel or pending buffer).
  uint64_t bytesQueued() const { return Bytes; }

  uint64_t deltasDropped() const { return Dropped; }

  /// Peak pending-buffer occupancy; never exceeds MaxPending.
  uint64_t highWater() const { return HighWater; }

  /// The Disconnect policy fired on this session.
  bool disconnectedSlow() const { return SlowDisconnect; }

  /// Drains the dropped-delta count (returns it, resets it to zero) so
  /// the daemon can fold stats incrementally — once mid-stream, before
  /// the blocking Profile send, and once at session end — without
  /// double counting.
  uint64_t takeDroppedDeltas() {
    uint64_t D = Dropped;
    Dropped = 0;
    return D;
  }

  /// Same drain semantics for the slow-disconnect event.
  bool takeSlowDisconnect() {
    bool S = SlowDisconnect;
    SlowDisconnect = false;
    return S;
  }

private:
  void tryFlush();       ///< Drains Pending without blocking.
  bool flushBlocking();  ///< Drains Pending, blocking.
  size_t pendingSize() const { return Pending.size() - PendingOff; }

  int Fd;
  size_t MaxPending;
  Policy Pol;
  std::string Pending;
  size_t PendingOff = 0;
  bool Gone = false;
  bool SlowDisconnect = false;
  uint64_t Bytes = 0;
  uint64_t Dropped = 0;
  uint64_t HighWater = 0;
};

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_SENDBUFFER_H

//===- service/Protocol.cpp -----------------------------------------------===//

#include "service/Protocol.h"

#include "service/Io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

const char algoprof::service::ProtocolVersion[] = "algoprof-job/1";
const char algoprof::service::ProtocolVersionV2[] = "algoprof-wire/2";

const char *service::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Job:
    return "job";
  case FrameType::Accepted:
    return "accepted";
  case FrameType::RunDelta:
    return "run-delta";
  case FrameType::Profile:
    return "profile";
  case FrameType::Done:
    return "done";
  case FrameType::Error:
    return "error";
  }
  return "?";
}

namespace {

bool knownFrameType(uint8_t B) {
  switch (static_cast<FrameType>(B)) {
  case FrameType::Job:
  case FrameType::Accepted:
  case FrameType::RunDelta:
  case FrameType::Profile:
  case FrameType::Done:
  case FrameType::Error:
    return true;
  }
  return false;
}

// Exact-count reads/writes live in service/Io.h (io::readFull /
// io::writeFull): EINTR retried, short transfers never success.

void appendLine(std::string &S, const char *Key, const std::string &V) {
  S += Key;
  S += '=';
  S += V;
  S += '\n';
}

void appendLine(std::string &S, const char *Key, uint64_t V) {
  appendLine(S, Key, std::to_string(V));
}

std::string joinInts(const std::vector<int64_t> &V) {
  std::string S;
  for (int64_t X : V) {
    if (!S.empty())
      S += ',';
    S += std::to_string(X);
  }
  return S;
}

bool parseI64(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  int64_t V;
  if (!parseI64(S, V) || V < 0)
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

bool parseIntList(const std::string &S, std::vector<int64_t> &Out) {
  Out.clear();
  if (S.empty())
    return true;
  size_t Pos = 0;
  for (;;) {
    size_t Comma = S.find(',', Pos);
    std::string Item = S.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    int64_t V;
    if (!parseI64(Item, V))
      return false;
    Out.push_back(V);
    if (Comma == std::string::npos)
      return true;
    Pos = Comma + 1;
  }
}

/// Splits \p Payload into key=value lines up to (exclusive) \p End.
/// Returns false on a line without '='.
bool splitLines(const std::string &Payload, size_t Begin, size_t End,
                std::vector<std::pair<std::string, std::string>> &Out) {
  size_t Pos = Begin;
  while (Pos < End) {
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos || Nl > End)
      Nl = End;
    std::string Line = Payload.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return false;
    Out.emplace_back(Line.substr(0, Eq), Line.substr(Eq + 1));
  }
  return true;
}

} // namespace

std::string service::encodeFrame(FrameType Type, const std::string &Payload) {
  std::string Out;
  Out.reserve(5 + Payload.size());
  uint32_t N = static_cast<uint32_t>(Payload.size());
  Out.push_back(static_cast<char>((N >> 24) & 0xff));
  Out.push_back(static_cast<char>((N >> 16) & 0xff));
  Out.push_back(static_cast<char>((N >> 8) & 0xff));
  Out.push_back(static_cast<char>(N & 0xff));
  Out.push_back(static_cast<char>(Type));
  Out += Payload;
  return Out;
}

bool service::sendFrame(int Fd, FrameType Type, const std::string &Payload,
                        uint64_t *BytesOut) {
  std::string Wire = encodeFrame(Type, Payload);
  if (!io::writeFull(Fd, Wire.data(), Wire.size()))
    return false;
  if (BytesOut)
    *BytesOut += Wire.size();
  return true;
}

ReadStatus service::readFrame(int Fd, Frame &Out, size_t MaxPayload) {
  unsigned char Hdr[5];
  // The first header byte distinguishes clean EOF from truncation.
  ssize_t R = io::retryOn([&] { return ::recv(Fd, Hdr, 1, 0); });
  if (R == 0)
    return ReadStatus::Eof;
  if (R < 0)
    return ReadStatus::Truncated;
  if (!io::readFull(Fd, Hdr + 1, 4))
    return ReadStatus::Truncated;
  uint32_t N = (static_cast<uint32_t>(Hdr[0]) << 24) |
               (static_cast<uint32_t>(Hdr[1]) << 16) |
               (static_cast<uint32_t>(Hdr[2]) << 8) |
               static_cast<uint32_t>(Hdr[3]);
  if (!knownFrameType(Hdr[4]))
    return ReadStatus::BadType;
  if (N > MaxPayload)
    return ReadStatus::Oversized;
  Out.Type = static_cast<FrameType>(Hdr[4]);
  Out.Payload.resize(N);
  if (N > 0 && !io::readFull(Fd, &Out.Payload[0], N))
    return ReadStatus::Truncated;
  return ReadStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Job request codec
//===----------------------------------------------------------------------===//

std::string service::encodeJobRequest(const JobRequest &R) {
  std::string S;
  S += R.Protocol >= 2 ? ProtocolVersionV2 : ProtocolVersion;
  S += '\n';
  if (!R.Auth.empty())
    appendLine(S, "auth", R.Auth);
  if (R.Resume != 0)
    appendLine(S, "resume", R.Resume);
  if (R.FromDelta != 0)
    appendLine(S, "from-delta", R.FromDelta);
  if (!R.Corpus.empty())
    appendLine(S, "corpus", R.Corpus);
  if (R.EntryClass != "Main")
    appendLine(S, "entry-class", R.EntryClass);
  if (R.EntryMethod != "main")
    appendLine(S, "entry-method", R.EntryMethod);
  if (!R.Seeds.empty())
    appendLine(S, "seeds", joinInts(R.Seeds));
  if (R.Runs != 1)
    appendLine(S, "runs", std::to_string(R.Runs));
  if (!R.Input.empty())
    appendLine(S, "input", joinInts(R.Input));
  if (R.Policy != resilience::FailurePolicy::Fail)
    appendLine(S, "policy", resilience::failurePolicyName(R.Policy));
  if (R.MaxAttempts != 3)
    appendLine(S, "retries", std::to_string(R.MaxAttempts - 1));
  if (R.MaxHeapBytes != 0)
    appendLine(S, "max-heap-bytes", R.MaxHeapBytes);
  if (R.RunDeadlineMs != 0)
    appendLine(S, "deadline-ms", R.RunDeadlineMs);
  if (!R.InjectSpec.empty())
    appendLine(S, "inject", R.InjectSpec);
  if (!R.Source.empty()) {
    // The source trailer must come last: its byte count is declared on
    // the line, and the raw bytes follow unescaped.
    appendLine(S, "source", std::to_string(R.Source.size()));
    S += R.Source;
  }
  return S;
}

bool service::parseJobRequest(const std::string &Payload, JobRequest &Out,
                              std::string &Err) {
  Out = JobRequest();
  size_t FirstNl = Payload.find('\n');
  if (FirstNl == std::string::npos) {
    Err = std::string("expected version line '") + ProtocolVersionV2 +
          "' or '" + ProtocolVersion + "'";
    return false;
  }
  std::string Version = Payload.substr(0, FirstNl);
  if (Version == ProtocolVersionV2) {
    Out.Protocol = 2;
  } else if (Version == ProtocolVersion) {
    Out.Protocol = 1;
  } else {
    Err = "unsupported protocol '" + Version + "' (supported: " +
          ProtocolVersionV2 + ", " + ProtocolVersion + ")";
    return false;
  }
  size_t Pos = FirstNl + 1;
  while (Pos < Payload.size()) {
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos) {
      Err = "unterminated line";
      return false;
    }
    std::string Line = Payload.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos) {
      Err = "line '" + Line + "' is not key=value";
      return false;
    }
    std::string Key = Line.substr(0, Eq);
    std::string Val = Line.substr(Eq + 1);
    if (Key == "auth") {
      Out.Auth = Val;
    } else if (Key == "resume") {
      if (Out.Protocol < 2) {
        Err = std::string("resume requires ") + ProtocolVersionV2;
        return false;
      }
      if (!parseU64(Val, Out.Resume) || Out.Resume == 0) {
        Err = "invalid resume session id '" + Val + "'";
        return false;
      }
    } else if (Key == "from-delta") {
      if (Out.Protocol < 2) {
        Err = std::string("from-delta requires ") + ProtocolVersionV2;
        return false;
      }
      if (!parseU64(Val, Out.FromDelta)) {
        Err = "invalid from-delta cursor '" + Val + "'";
        return false;
      }
    } else if (Key == "corpus") {
      Out.Corpus = Val;
    } else if (Key == "entry-class") {
      Out.EntryClass = Val;
    } else if (Key == "entry-method") {
      Out.EntryMethod = Val;
    } else if (Key == "seeds") {
      if (!parseIntList(Val, Out.Seeds)) {
        Err = "invalid seeds '" + Val + "'";
        return false;
      }
    } else if (Key == "runs") {
      int64_t V;
      if (!parseI64(Val, V) || V < 1) {
        Err = "invalid runs '" + Val + "'";
        return false;
      }
      Out.Runs = static_cast<int>(V);
    } else if (Key == "input") {
      if (!parseIntList(Val, Out.Input)) {
        Err = "invalid input '" + Val + "'";
        return false;
      }
    } else if (Key == "policy") {
      if (!resilience::parseFailurePolicy(Val, Out.Policy)) {
        Err = "invalid policy '" + Val + "'";
        return false;
      }
    } else if (Key == "retries") {
      int64_t V;
      if (!parseI64(Val, V) || V < 0) {
        Err = "invalid retries '" + Val + "'";
        return false;
      }
      Out.MaxAttempts = static_cast<int>(V) + 1;
    } else if (Key == "max-heap-bytes") {
      if (!parseU64(Val, Out.MaxHeapBytes)) {
        Err = "invalid max-heap-bytes '" + Val + "'";
        return false;
      }
    } else if (Key == "deadline-ms") {
      if (!parseU64(Val, Out.RunDeadlineMs)) {
        Err = "invalid deadline-ms '" + Val + "'";
        return false;
      }
    } else if (Key == "inject") {
      Out.InjectSpec = Val;
    } else if (Key == "source") {
      uint64_t N;
      if (!parseU64(Val, N)) {
        Err = "invalid source byte count '" + Val + "'";
        return false;
      }
      if (Payload.size() - Pos != N) {
        Err = "source trailer declares " + Val + " bytes, got " +
              std::to_string(Payload.size() - Pos);
        return false;
      }
      Out.Source = Payload.substr(Pos);
      Pos = Payload.size();
    } else {
      Err = "unknown key '" + Key + "'";
      return false;
    }
  }
  int Goals = (!Out.Corpus.empty() ? 1 : 0) + (!Out.Source.empty() ? 1 : 0) +
              (Out.Resume != 0 ? 1 : 0);
  if (Goals != 1) {
    Err = Goals == 0
              ? "job needs a corpus name, inline source, or resume id"
              : "corpus, inline source, and resume are mutually exclusive";
    return false;
  }
  if (Out.FromDelta != 0 && Out.Resume == 0) {
    Err = "from-delta is only valid with resume";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Response codecs
//===----------------------------------------------------------------------===//

std::string service::encodeAccepted(const AcceptedMsg &M) {
  std::string S;
  appendLine(S, "session", M.Session);
  appendLine(S, "runs", M.Runs);
  appendLine(S, "proto", static_cast<uint64_t>(M.Proto));
  if (M.Resumed) {
    appendLine(S, "resumed", std::string("1"));
    appendLine(S, "resumed-from", M.ResumedFrom);
  }
  return S;
}

bool service::parseAccepted(const std::string &Payload, AcceptedMsg &Out) {
  Out = AcceptedMsg();
  std::vector<std::pair<std::string, std::string>> KV;
  if (!splitLines(Payload, 0, Payload.size(), KV))
    return false;
  for (const auto &P : KV) {
    if (P.first == "session") {
      if (!parseU64(P.second, Out.Session))
        return false;
    } else if (P.first == "runs") {
      if (!parseU64(P.second, Out.Runs))
        return false;
    } else if (P.first == "proto") {
      uint64_t V;
      if (!parseU64(P.second, V))
        return false;
      Out.Proto = static_cast<int>(V);
    } else if (P.first == "resumed") {
      Out.Resumed = P.second == "1";
    } else if (P.first == "resumed-from") {
      if (!parseU64(P.second, Out.ResumedFrom))
        return false;
    }
  }
  return true;
}

std::string service::encodeRunDelta(const RunDeltaMsg &M) {
  std::string S;
  appendLine(S, "run", std::to_string(M.Run));
  appendLine(S, "index", M.Index);
  appendLine(S, "total", M.Total);
  appendLine(S, "status", M.Status);
  appendLine(S, "budget", M.Budget);
  appendLine(S, "attempts", std::to_string(M.Attempts));
  appendLine(S, "quarantined", std::string(M.Quarantined ? "1" : "0"));
  appendLine(S, "merged-runs", std::to_string(M.MergedRuns));
  if (M.V2) {
    appendLine(S, "tree-repetitions", std::to_string(M.TreeRepetitions));
    appendLine(S, "new-repetitions", std::to_string(M.NewRepetitions));
    // Labels may contain any character but tab/newline; tab separates.
    for (const FitEstimate &F : M.Fits)
      appendLine(S, "fit", F.Label + '\t' + F.Formula);
  }
  return S;
}

bool service::parseRunDelta(const std::string &Payload, RunDeltaMsg &Out) {
  Out = RunDeltaMsg();
  std::vector<std::pair<std::string, std::string>> KV;
  if (!splitLines(Payload, 0, Payload.size(), KV))
    return false;
  for (const auto &P : KV) {
    int64_t V;
    if (P.first == "run") {
      if (!parseI64(P.second, Out.Run))
        return false;
    } else if (P.first == "index") {
      if (!parseU64(P.second, Out.Index))
        return false;
    } else if (P.first == "total") {
      if (!parseU64(P.second, Out.Total))
        return false;
    } else if (P.first == "status") {
      Out.Status = P.second;
    } else if (P.first == "budget") {
      Out.Budget = P.second;
    } else if (P.first == "attempts") {
      if (!parseI64(P.second, V))
        return false;
      Out.Attempts = static_cast<int>(V);
    } else if (P.first == "quarantined") {
      Out.Quarantined = P.second == "1";
    } else if (P.first == "merged-runs") {
      if (!parseI64(P.second, Out.MergedRuns))
        return false;
    } else if (P.first == "tree-repetitions") {
      if (!parseI64(P.second, Out.TreeRepetitions))
        return false;
      Out.V2 = true;
    } else if (P.first == "new-repetitions") {
      if (!parseI64(P.second, Out.NewRepetitions))
        return false;
      Out.V2 = true;
    } else if (P.first == "fit") {
      size_t Tab = P.second.find('\t');
      if (Tab == std::string::npos)
        return false;
      FitEstimate F;
      F.Label = P.second.substr(0, Tab);
      F.Formula = P.second.substr(Tab + 1);
      Out.Fits.push_back(std::move(F));
      Out.V2 = true;
    }
  }
  return true;
}

std::string service::encodeDone(const DoneMsg &M) {
  std::string S;
  appendLine(S, "runs", M.Runs);
  appendLine(S, "merged-runs", M.MergedRuns);
  appendLine(S, "degraded-runs", M.DegradedRuns);
  return S;
}

bool service::parseDone(const std::string &Payload, DoneMsg &Out) {
  Out = DoneMsg();
  std::vector<std::pair<std::string, std::string>> KV;
  if (!splitLines(Payload, 0, Payload.size(), KV))
    return false;
  for (const auto &P : KV) {
    if (P.first == "runs") {
      if (!parseU64(P.second, Out.Runs))
        return false;
    } else if (P.first == "merged-runs") {
      if (!parseU64(P.second, Out.MergedRuns))
        return false;
    } else if (P.first == "degraded-runs") {
      if (!parseU64(P.second, Out.DegradedRuns))
        return false;
    }
  }
  return true;
}

std::string service::encodeError(const std::string &Code,
                                 const std::string &Message) {
  std::string S;
  appendLine(S, "code", Code);
  // The message is the last field and may span lines (compiler
  // diagnostics do); everything after "message=" belongs to it.
  S += "message=";
  S += Message;
  S += '\n';
  return S;
}

bool service::parseError(const std::string &Payload, ErrorMsg &Out) {
  Out = ErrorMsg();
  size_t Nl = Payload.find('\n');
  if (Nl == std::string::npos || Payload.rfind("code=", 0) != 0)
    return false;
  Out.Code = Payload.substr(5, Nl - 5);
  size_t MsgPos = Nl + 1;
  if (Payload.rfind("message=", MsgPos) != MsgPos)
    return false;
  Out.Message = Payload.substr(MsgPos + 8);
  if (!Out.Message.empty() && Out.Message.back() == '\n')
    Out.Message.pop_back();
  return true;
}

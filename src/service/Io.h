//===- service/Io.h - EINTR-safe socket I/O helpers -------------*- C++-*-===//
///
/// \file
/// The one place the service layer's syscall retry discipline lives.
/// Every socket/file loop in Protocol.cpp, SendBuffer.cpp, Client.cpp,
/// Journal.cpp, and the daemon's HTTP responder goes through these
/// helpers instead of hand-rolling `while (errno == EINTR)` — so a
/// signal delivered mid-read (the daemon installs handlers for
/// SIGTERM/SIGINT) can never be mistaken for a peer failure, and a
/// short write can never be mistaken for success.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_IO_H
#define ALGOPROF_SERVICE_IO_H

#include <cerrno>
#include <cstddef>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace algoprof {
namespace service {
namespace io {

/// Runs \p Op (a syscall wrapper returning ssize_t) until it stops
/// failing with EINTR, and returns its final result. The building
/// block for every loop below; also usable directly for one-shot
/// calls such as accept().
template <typename Fn> inline ssize_t retryOn(Fn &&Op) {
  ssize_t R;
  do {
    R = Op();
  } while (R < 0 && errno == EINTR);
  return R;
}

/// Receives exactly \p N bytes into \p Buf. Returns false on EOF,
/// timeout (EAGAIN from SO_RCVTIMEO), or any non-EINTR error — a
/// partial read is never reported as success.
inline bool readFull(int Fd, void *Buf, size_t N) {
  char *P = static_cast<char *>(Buf);
  while (N > 0) {
    ssize_t R = retryOn([&] { return ::recv(Fd, P, N, 0); });
    if (R <= 0)
      return false; // 0 = peer closed; <0 = error.
    P += R;
    N -= static_cast<size_t>(R);
  }
  return true;
}

/// Sends exactly \p N bytes (MSG_NOSIGNAL plus \p ExtraFlags). Returns
/// false when the peer is gone or any non-EINTR error occurs — a short
/// write keeps looping, it is never success.
inline bool writeFull(int Fd, const char *P, size_t N, int ExtraFlags = 0) {
  while (N > 0) {
    ssize_t W =
        retryOn([&] { return ::send(Fd, P, N, MSG_NOSIGNAL | ExtraFlags); });
    if (W <= 0)
      return false;
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// write(2) analogue of writeFull for non-socket fds (the journal).
inline bool writeFullFd(int Fd, const char *P, size_t N) {
  while (N > 0) {
    ssize_t W = retryOn([&] { return ::write(Fd, P, N); });
    if (W <= 0)
      return false;
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

} // namespace io
} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_IO_H

//===- service/SendBuffer.cpp ---------------------------------------------===//

#include "service/SendBuffer.h"

#include "service/Io.h"

#include <cerrno>

#include <sys/socket.h>

using namespace algoprof;
using namespace algoprof::service;

SendBuffer::SendBuffer(int Fd, size_t MaxPending, Policy P)
    : Fd(Fd), MaxPending(MaxPending == 0 ? 4096 : MaxPending), Pol(P) {}

void SendBuffer::tryFlush() {
  while (!Gone && pendingSize() > 0) {
    ssize_t W = io::retryOn([&] {
      return ::send(Fd, Pending.data() + PendingOff, pendingSize(),
                    MSG_NOSIGNAL | MSG_DONTWAIT);
    });
    if (W > 0) {
      PendingOff += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break; // Kernel buffer full; keep the remainder pending.
    Gone = true;
  }
  if (PendingOff == Pending.size()) {
    Pending.clear();
    PendingOff = 0;
  }
}

bool SendBuffer::flushBlocking() {
  if (!Gone && pendingSize() > 0 &&
      !io::writeFull(Fd, Pending.data() + PendingOff, pendingSize()))
    Gone = true;
  Pending.clear();
  PendingOff = 0;
  return !Gone;
}

bool SendBuffer::send(FrameType Type, const std::string &Payload) {
  if (Gone)
    return false;
  if (!flushBlocking())
    return false;
  if (!sendFrame(Fd, Type, Payload, &Bytes)) {
    Gone = true;
    return false;
  }
  return true;
}

bool SendBuffer::sendDelta(const std::string &Payload) {
  if (Gone)
    return false;
  tryFlush();
  if (Gone)
    return false;
  std::string Wire = encodeFrame(FrameType::RunDelta, Payload);
  if (pendingSize() + Wire.size() > MaxPending) {
    if (Pol == Policy::Disconnect) {
      ::shutdown(Fd, SHUT_RDWR);
      Gone = true;
      SlowDisconnect = true;
    }
    ++Dropped;
    return false;
  }
  Pending += Wire;
  Bytes += Wire.size();
  if (pendingSize() > HighWater)
    HighWater = pendingSize();
  tryFlush();
  return !Gone;
}

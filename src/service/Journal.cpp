//===- service/Journal.cpp ------------------------------------------------===//

#include "service/Journal.h"

#include "service/Io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

const char JournalHeader[] = "algoprof-journal/1";

bool readWhole(const std::string &Path, std::string &Out, bool &Missing,
               std::string &Err) {
  Missing = false;
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    if (errno == ENOENT) {
      Missing = true;
      return true;
    }
    Err = "open '" + Path + "': " + std::strerror(errno);
    return false;
  }
  char Buf[65536];
  for (;;) {
    ssize_t R = io::retryOn([&] { return ::read(Fd, Buf, sizeof(Buf)); });
    if (R > 0) {
      Out.append(Buf, static_cast<size_t>(R));
      continue;
    }
    if (R < 0) {
      Err = "read '" + Path + "': " + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    break;
  }
  ::close(Fd);
  return true;
}

/// Parses "<u64><Stop>" at \p Pos, advancing past \p Stop. False on
/// anything else — including accumulation overflow, so a corrupt
/// length field can never wrap into a small bogus value.
bool parseU64At(const std::string &S, size_t &Pos, char Stop,
                uint64_t &Out) {
  size_t Start = Pos;
  uint64_t V = 0;
  while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
    uint64_t D = static_cast<uint64_t>(S[Pos] - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
    ++Pos;
  }
  if (Pos == Start || Pos >= S.size() || S[Pos] != Stop)
    return false;
  ++Pos;
  Out = V;
  return true;
}

} // namespace

bool Journal::load(const std::string &Path, LoadResult &Out,
                   std::string &Err) {
  Out = LoadResult();
  std::string Data;
  bool Missing = false;
  if (!readWhole(Path, Data, Missing, Err))
    return false;
  if (Missing || Data.empty())
    return true;
  std::string HeaderLine = std::string(JournalHeader) + '\n';
  if (Data.rfind(HeaderLine, 0) != 0) {
    Err = "'" + Path + "' is not an algoprof journal";
    return false;
  }
  // Completed ids: a job is pending iff its A record has no C record.
  std::vector<uint64_t> Completed;
  size_t Pos = HeaderLine.size();
  while (Pos < Data.size()) {
    char Kind = Data[Pos];
    size_t RecStart = Pos;
    ++Pos;
    if ((Kind != 'A' && Kind != 'C') || Pos >= Data.size() ||
        Data[Pos] != ' ')
      break; // Malformed / truncated tail: stop, keep what we have.
    ++Pos;
    uint64_t Id = 0;
    if (Kind == 'C') {
      if (!parseU64At(Data, Pos, '\n', Id)) {
        Pos = RecStart;
        break;
      }
      Completed.push_back(Id);
    } else {
      uint64_t Len = 0;
      // The length comparison must not wrap: an oversized or
      // bit-flipped length field (up to UINT64_MAX) is compared
      // against the remaining bytes, never added to Pos first.
      if (!parseU64At(Data, Pos, ' ', Id) ||
          !parseU64At(Data, Pos, '\n', Len) ||
          Len >= Data.size() - Pos || Data[Pos + Len] != '\n') {
        Pos = RecStart;
        break;
      }
      PendingJob J;
      J.Id = Id;
      J.Payload = Data.substr(Pos, Len);
      Out.Pending.push_back(std::move(J));
      Pos += Len + 1;
    }
    if (Id > Out.MaxId)
      Out.MaxId = Id;
  }
  for (uint64_t Id : Completed)
    for (auto It = Out.Pending.begin(); It != Out.Pending.end(); ++It)
      if (It->Id == Id) {
        Out.Pending.erase(It);
        break;
      }
  return true;
}

bool Journal::open(const std::string &P, std::string &Err) {
  close();
  Fd = ::open(P.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0600);
  if (Fd < 0) {
    Err = "open '" + P + "' for append: " + std::strerror(errno);
    return false;
  }
  Path = P;
  Failed.store(false);
  struct stat St {};
  Size.store(::fstat(Fd, &St) == 0 ? static_cast<uint64_t>(St.st_size) : 0);
  if (Size.load() == 0) {
    if (!appendRecord(std::string(JournalHeader) + '\n')) {
      Err = "write journal header: " + std::string(std::strerror(errno));
      close();
      return false;
    }
  }
  return true;
}

bool Journal::appendAccepted(uint64_t Id, const std::string &Payload) {
  std::string Rec = "A " + std::to_string(Id) + ' ' +
                    std::to_string(Payload.size()) + '\n' + Payload + '\n';
  return appendRecord(Rec);
}

bool Journal::appendCompleted(uint64_t Id) {
  return appendRecord("C " + std::to_string(Id) + '\n');
}

bool Journal::appendRecord(const std::string &Rec) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return false;
  if (!io::writeFullFd(Fd, Rec.data(), Rec.size())) {
    Failed.store(true);
    return false;
  }
  ::fdatasync(Fd);
  Size.fetch_add(Rec.size());
  return true;
}

bool Journal::compact(std::string &Err) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0) {
    Err = "journal is not open";
    return false;
  }
  // Re-derive pending from the on-disk bytes: everything appended so
  // far is durable (each append fdatasync'd under this same mutex), so
  // the file IS the authoritative state.
  LoadResult State;
  if (!load(Path, State, Err))
    return false;
  std::string Tmp = Path + ".tmp";
  int TmpFd = ::open(Tmp.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (TmpFd < 0) {
    Err = "open '" + Tmp + "': " + std::strerror(errno);
    return false;
  }
  std::string Out = std::string(JournalHeader) + '\n';
  for (const PendingJob &J : State.Pending)
    Out += "A " + std::to_string(J.Id) + ' ' +
           std::to_string(J.Payload.size()) + '\n' + J.Payload + '\n';
  // Dropping completed records must not regress the id high-water mark
  // (a restart seeds its session counter from MaxId; reusing a
  // completed id would let a stale resume read the wrong session). A
  // lone C record carries the mark without any replay obligation.
  uint64_t MaxPending = 0;
  for (const PendingJob &J : State.Pending)
    MaxPending = std::max(MaxPending, J.Id);
  if (State.MaxId > MaxPending)
    Out += "C " + std::to_string(State.MaxId) + '\n';
  if (!io::writeFullFd(TmpFd, Out.data(), Out.size()) ||
      ::fdatasync(TmpFd) != 0) {
    Err = "write '" + Tmp + "': " + std::strerror(errno);
    ::close(TmpFd);
    ::unlink(Tmp.c_str());
    return false;
  }
  ::close(TmpFd);
  // The atomic cutover: after rename() the path names the compacted
  // log; before it, the old one. A crash in between loses nothing.
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Err = "rename '" + Tmp + "': " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  int NewFd = ::open(Path.c_str(),
                     O_WRONLY | O_APPEND | O_CLOEXEC, 0600);
  if (NewFd < 0) {
    // The compacted file exists but cannot be appended to: durability
    // is broken, surface it.
    Err = "reopen '" + Path + "': " + std::strerror(errno);
    Failed.store(true);
    return false;
  }
  ::close(Fd);
  Fd = NewFd;
  Size.store(Out.size());
  return true;
}

void Journal::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Size.store(0);
  Path.clear();
}

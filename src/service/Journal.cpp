//===- service/Journal.cpp ------------------------------------------------===//

#include "service/Journal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

const char JournalHeader[] = "algoprof-journal/1";

bool readWhole(const std::string &Path, std::string &Out, bool &Missing,
               std::string &Err) {
  Missing = false;
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    if (errno == ENOENT) {
      Missing = true;
      return true;
    }
    Err = "open '" + Path + "': " + std::strerror(errno);
    return false;
  }
  char Buf[65536];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R > 0) {
      Out.append(Buf, static_cast<size_t>(R));
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    if (R < 0) {
      Err = "read '" + Path + "': " + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    break;
  }
  ::close(Fd);
  return true;
}

/// Parses "<u64> " at \p Pos, advancing past the trailing space (or to
/// \p Stop when \p Stop terminates the number). False on anything else.
bool parseU64At(const std::string &S, size_t &Pos, char Stop,
                uint64_t &Out) {
  size_t Start = Pos;
  uint64_t V = 0;
  while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
    V = V * 10 + static_cast<uint64_t>(S[Pos] - '0');
    ++Pos;
  }
  if (Pos == Start || Pos >= S.size() || S[Pos] != Stop)
    return false;
  ++Pos;
  Out = V;
  return true;
}

} // namespace

bool Journal::load(const std::string &Path, LoadResult &Out,
                   std::string &Err) {
  Out = LoadResult();
  std::string Data;
  bool Missing = false;
  if (!readWhole(Path, Data, Missing, Err))
    return false;
  if (Missing || Data.empty())
    return true;
  std::string HeaderLine = std::string(JournalHeader) + '\n';
  if (Data.rfind(HeaderLine, 0) != 0) {
    Err = "'" + Path + "' is not an algoprof journal";
    return false;
  }
  // Completed ids: a job is pending iff its A record has no C record.
  std::vector<uint64_t> Completed;
  size_t Pos = HeaderLine.size();
  while (Pos < Data.size()) {
    char Kind = Data[Pos];
    size_t RecStart = Pos;
    ++Pos;
    if ((Kind != 'A' && Kind != 'C') || Pos >= Data.size() ||
        Data[Pos] != ' ')
      break; // Malformed / truncated tail: stop, keep what we have.
    ++Pos;
    uint64_t Id = 0;
    if (Kind == 'C') {
      if (!parseU64At(Data, Pos, '\n', Id)) {
        Pos = RecStart;
        break;
      }
      Completed.push_back(Id);
    } else {
      uint64_t Len = 0;
      if (!parseU64At(Data, Pos, ' ', Id) ||
          !parseU64At(Data, Pos, '\n', Len) ||
          Data.size() - Pos < Len + 1 || Data[Pos + Len] != '\n') {
        Pos = RecStart;
        break;
      }
      PendingJob J;
      J.Id = Id;
      J.Payload = Data.substr(Pos, Len);
      Out.Pending.push_back(std::move(J));
      Pos += Len + 1;
    }
    if (Id > Out.MaxId)
      Out.MaxId = Id;
  }
  for (uint64_t Id : Completed)
    for (auto It = Out.Pending.begin(); It != Out.Pending.end(); ++It)
      if (It->Id == Id) {
        Out.Pending.erase(It);
        break;
      }
  return true;
}

bool Journal::open(const std::string &Path, std::string &Err) {
  close();
  Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
              0600);
  if (Fd < 0) {
    Err = "open '" + Path + "' for append: " + std::strerror(errno);
    return false;
  }
  struct stat St {};
  if (::fstat(Fd, &St) == 0 && St.st_size == 0) {
    if (!appendRecord(std::string(JournalHeader) + '\n')) {
      Err = "write journal header: " + std::string(std::strerror(errno));
      close();
      return false;
    }
  }
  return true;
}

bool Journal::appendAccepted(uint64_t Id, const std::string &Payload) {
  std::string Rec = "A " + std::to_string(Id) + ' ' +
                    std::to_string(Payload.size()) + '\n' + Payload + '\n';
  return appendRecord(Rec);
}

bool Journal::appendCompleted(uint64_t Id) {
  return appendRecord("C " + std::to_string(Id) + '\n');
}

bool Journal::appendRecord(const std::string &Rec) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return false;
  const char *P = Rec.data();
  size_t N = Rec.size();
  while (N > 0) {
    ssize_t W = ::write(Fd, P, N);
    if (W > 0) {
      P += W;
      N -= static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    return false;
  }
  ::fdatasync(Fd);
  return true;
}

void Journal::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

//===- service/Daemon.cpp -------------------------------------------------===//

#include "service/Daemon.h"

#include "core/Session.h"
#include "service/Io.h"
#include "obs/MetricsExport.h"
#include "obs/Obs.h"
#include "parallel/SweepEngine.h"
#include "programs/Programs.h"
#include "report/Reporter.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

unsigned poolWorkers(unsigned Requested) {
  return Requested == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : Requested;
}

void setRecvTimeout(int Fd, unsigned Ms) {
  struct timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

const programs::CorpusProgram *findCorpusProgram(const std::string &Name) {
  for (const programs::CorpusProgram &P : programs::corpusPrograms())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

/// Token comparison that does not leak the match prefix through
/// timing. (A length mismatch fails, as any comparison must; only the
/// content comparison needs to be constant-time.)
bool constantTimeEq(const std::string &A, const std::string &B) {
  unsigned char Diff = A.size() == B.size() ? 0 : 1;
  size_t N = B.empty() ? 0 : A.size();
  for (size_t I = 0; I < N; ++I)
    Diff |= static_cast<unsigned char>(A[I]) ^
            static_cast<unsigned char>(B[I % B.size()]);
  return Diff == 0;
}

/// First line of \p Path, trailing whitespace stripped.
bool readTokenFile(const std::string &Path, std::string &Token,
                   std::string &Err) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    Err = "auth token file '" + Path + "': " + std::strerror(errno);
    return false;
  }
  char Buf[4096];
  std::string Data;
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R > 0) {
      Data.append(Buf, static_cast<size_t>(R));
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    break;
  }
  ::close(Fd);
  size_t Nl = Data.find('\n');
  Token = Nl == std::string::npos ? Data : Data.substr(0, Nl);
  while (!Token.empty() &&
         (Token.back() == '\r' || Token.back() == ' ' ||
          Token.back() == '\t'))
    Token.pop_back();
  if (Token.empty()) {
    Err = "auth token file '" + Path + "' is empty";
    return false;
  }
  return true;
}

bool parseHostPort(const std::string &S, std::string &Host, uint16_t &Port,
                   std::string &Err) {
  size_t Colon = S.rfind(':');
  if (Colon == std::string::npos || Colon == 0) {
    Err = "listen address '" + S + "' is not host:port";
    return false;
  }
  Host = S.substr(0, Colon);
  std::string P = S.substr(Colon + 1);
  if (P.empty() || P.size() > 5 ||
      P.find_first_not_of("0123456789") != std::string::npos) {
    Err = "listen address '" + S + "' has an invalid port";
    return false;
  }
  long V = std::strtol(P.c_str(), nullptr, 10);
  if (V < 0 || V > 65535) {
    Err = "listen address '" + S + "' has an invalid port";
    return false;
  }
  Port = static_cast<uint16_t>(V);
  return true;
}

bool parseIpv4(const std::string &Host, in_addr &Out, std::string &Err) {
  if (::inet_pton(AF_INET, Host.c_str(), &Out) != 1) {
    Err = "'" + Host + "' is not an IPv4 address";
    return false;
  }
  return true;
}

bool isLoopback(const in_addr &A) {
  return (ntohl(A.s_addr) >> 24) == 127;
}

void fetchMax(std::atomic<uint64_t> &Target, uint64_t V) {
  uint64_t Cur = Target.load();
  while (V > Cur && !Target.compare_exchange_weak(Cur, V))
    ;
}

} // namespace

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)), Pool(poolWorkers(Opts.Workers)) {}

Daemon::~Daemon() { stop(); }

Daemon::Stats Daemon::stats() const {
  Stats S;
  S.Accepted = StatAccepted.load();
  S.Rejected = StatRejected.load();
  S.Completed = StatCompleted.load();
  S.BytesStreamed = StatBytes.load();
  S.DeltasStreamed = StatDeltasStreamed.load();
  S.DeltasDropped = StatDeltasDropped.load();
  S.JobsReplayed = StatJobsReplayed.load();
  S.AuthFailures = StatAuthFailures.load();
  S.SlowDisconnects = StatSlowDisconnects.load();
  S.SendBufHighWater = StatSendBufHighWater.load();
  S.ResultsEvicted = StatResultsEvicted.load();
  S.Compactions = StatCompactions.load();
  S.HealthChecks = StatHealthChecks.load();
  return S;
}

uint64_t Daemon::nowMs() const {
  if (Opts.NowMs)
    return Opts.NowMs();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Daemon::start(std::string &Err) {
  // --- Validate the transport/auth combination ----------------------
  if (!Opts.ListenAddress.empty() && Opts.AuthTokenFile.empty()) {
    Err = "--listen requires --auth-token-file: TCP clients must "
          "authenticate";
    return false;
  }
  in_addr MetricsAddr{};
  if (Opts.MetricsPort >= 0) {
    if (!parseIpv4(Opts.MetricsAddress, MetricsAddr, Err))
      return false;
    if (!isLoopback(MetricsAddr) && Opts.AuthTokenFile.empty()) {
      Err = "non-loopback /metrics bind '" + Opts.MetricsAddress +
            "' requires --auth-token-file";
      return false;
    }
  }
  if (!Opts.AuthTokenFile.empty() &&
      !readTokenFile(Opts.AuthTokenFile, AuthToken, Err))
    return false;

  // --- Durable queue: load + replay the journal ---------------------
  Journal::LoadResult Pending;
  if (!Opts.JournalPath.empty()) {
    if (!Journal::load(Opts.JournalPath, Pending, Err))
      return false;
    if (!Wal.open(Opts.JournalPath, Err))
      return false;
    uint64_t Next = Pending.MaxId + 1;
    if (Next > NextSessionId.load())
      NextSessionId.store(Next);
    // Register every pending job before anything can connect, so a
    // resume for an id the journal never saw is answerable immediately
    // while a replay still in flight blocks until its results land.
    std::lock_guard<std::mutex> Lock(RetainedMu);
    for (const Journal::PendingJob &J : Pending.Pending)
      RetainedResults.emplace(J.Id, Retained());
  }

  // --- Unix-domain listener (always on) -----------------------------
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + Opts.SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Opts.SocketPath.c_str()); // Stale socket from a dead daemon.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    Err = std::string("bind/listen '") + Opts.SocketPath +
          "': " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  auto FailStart = [&](const std::string &E) {
    Err = E;
    ::close(ListenFd);
    ListenFd = -1;
    if (TcpListenFd >= 0) {
      ::close(TcpListenFd);
      TcpListenFd = -1;
    }
    return false;
  };

  // --- Optional TCP listener ----------------------------------------
  if (!Opts.ListenAddress.empty()) {
    std::string Host, E;
    uint16_t Port = 0;
    in_addr Ip{};
    if (!parseHostPort(Opts.ListenAddress, Host, Port, E) ||
        !parseIpv4(Host, Ip, E))
      return FailStart(E);
    TcpListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (TcpListenFd < 0)
      return FailStart(std::string("tcp socket: ") + std::strerror(errno));
    int One = 1;
    ::setsockopt(TcpListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in TAddr{};
    TAddr.sin_family = AF_INET;
    TAddr.sin_addr = Ip;
    TAddr.sin_port = htons(Port);
    socklen_t TLen = sizeof(TAddr);
    if (::bind(TcpListenFd, reinterpret_cast<sockaddr *>(&TAddr), TLen) <
            0 ||
        ::listen(TcpListenFd, 64) < 0 ||
        ::getsockname(TcpListenFd, reinterpret_cast<sockaddr *>(&TAddr),
                      &TLen) < 0)
      return FailStart("tcp bind/listen '" + Opts.ListenAddress +
                       "': " + std::strerror(errno));
    BoundListenPort = ntohs(TAddr.sin_port);
  }

  // --- Optional /metrics --------------------------------------------
  if (Opts.MetricsPort >= 0) {
    MetricsFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (MetricsFd < 0)
      return FailStart(std::string("metrics socket: ") +
                       std::strerror(errno));
    int One = 1;
    ::setsockopt(MetricsFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in MAddr{};
    MAddr.sin_family = AF_INET;
    MAddr.sin_addr = MetricsAddr;
    MAddr.sin_port = htons(static_cast<uint16_t>(Opts.MetricsPort));
    socklen_t MLen = sizeof(MAddr);
    if (::bind(MetricsFd, reinterpret_cast<sockaddr *>(&MAddr), MLen) < 0 ||
        ::listen(MetricsFd, 16) < 0 ||
        ::getsockname(MetricsFd, reinterpret_cast<sockaddr *>(&MAddr),
                      &MLen) < 0) {
      std::string E = std::string("metrics bind/listen: ") +
                      std::strerror(errno);
      ::close(MetricsFd);
      MetricsFd = -1;
      return FailStart(E);
    }
    BoundMetricsPort = ntohs(MAddr.sin_port);
    MetricsThread = std::thread([this] { metricsLoop(); });
  }

  // --- Replay sessions, then accept ---------------------------------
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    for (Journal::PendingJob &J : Pending.Pending) {
      Sessions.push_back(std::make_unique<Session>());
      Session &S = *Sessions.back();
      S.ReplayId = J.Id;
      S.ReplayPayload = std::move(J.Payload);
      S.T = std::thread([this, &S] { replayJob(S); });
    }
  }
  AcceptThread = std::thread([this] { acceptOn(ListenFd, false); });
  if (TcpListenFd >= 0)
    TcpAcceptThread = std::thread([this] { acceptOn(TcpListenFd, true); });
  if (Opts.CompactIntervalMs > 0 || Opts.RetainSecs > 0)
    MaintThread = std::thread([this] { maintenanceLoop(); });
  Started = true;
  return true;
}

bool Daemon::drain(uint64_t TimeoutMs) {
  if (!Started || Stopping.load())
    return true;
  Draining.store(true);
  // Stop accepting immediately: shut the listeners down and join the
  // accept loops. Connections already admitted keep their sessions.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (TcpListenFd >= 0)
    ::shutdown(TcpListenFd, SHUT_RDWR);
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (TcpAcceptThread.joinable())
    TcpAcceptThread.join();
  // In-flight sessions finish on their own: jobs run to completion on
  // the pool, results land in the journal/result store, and the
  // blocking Profile/Done sends flush — the byte-identity contract
  // holds right through shutdown. A stalled client is bounded by its
  // read timeout; past the deadline the caller's stop() force-yanks.
  const uint64_t Deadline = nowMs() + TimeoutMs;
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(SessionsMu);
      reapLocked();
      if (Sessions.empty())
        return true;
    }
    if (nowMs() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void Daemon::stop() {
  if (!Started || Stopping.exchange(true))
    return;
  // Unblock the accept loops; accept() fails once the fd is shut down.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (TcpListenFd >= 0)
    ::shutdown(TcpListenFd, SHUT_RDWR);
  if (MetricsFd >= 0)
    ::shutdown(MetricsFd, SHUT_RDWR);
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (TcpAcceptThread.joinable())
    TcpAcceptThread.join();
  if (MetricsThread.joinable())
    MetricsThread.join();
  MaintCv.notify_all();
  if (MaintThread.joinable())
    MaintThread.join();
  // Wake resume waiters blocked on an unfinished replay.
  RetainedCv.notify_all();
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    // Yank every in-flight session's socket out from under it: blocked
    // reads/writes fail, the session thread runs to its end, joins here.
    for (std::unique_ptr<Session> &S : Sessions)
      if (S->Fd >= 0)
        ::shutdown(S->Fd, SHUT_RDWR);
    for (std::unique_ptr<Session> &S : Sessions) {
      if (S->T.joinable())
        S->T.join();
      if (S->Fd >= 0)
        ::close(S->Fd);
    }
    Sessions.clear();
  }
  ::close(ListenFd);
  ListenFd = -1;
  if (TcpListenFd >= 0) {
    ::close(TcpListenFd);
    TcpListenFd = -1;
  }
  if (MetricsFd >= 0) {
    ::close(MetricsFd);
    MetricsFd = -1;
  }
  Wal.close();
  ::unlink(Opts.SocketPath.c_str());
}

bool Daemon::reject(int Fd, const char *Code, const std::string &Message) {
  // Counted BEFORE the Error frame goes out, for the same reason
  // completions are: a client that has read the rejection must already
  // see it in stats() and on /metrics.
  StatRejected.fetch_add(1);
  obs::addCount(obs::Counter::SessionsRejected);
  obs::flushThisThread();
  sendFrame(Fd, FrameType::Error, encodeError(Code, Message));
  return false;
}

void Daemon::reapLocked() {
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    if ((*It)->Finished.load()) {
      (*It)->T.join();
      if ((*It)->Fd >= 0)
        ::close((*It)->Fd);
      It = Sessions.erase(It);
    } else {
      ++It;
    }
  }
}

void Daemon::foldSendStats(SendBuffer &Buf) {
  uint64_t Dropped = Buf.takeDroppedDeltas();
  StatDeltasDropped.fetch_add(Dropped);
  if (Dropped > 0)
    obs::addCount(obs::Counter::DeltasDropped, Dropped);
  if (Buf.takeSlowDisconnect())
    StatSlowDisconnects.fetch_add(1);
  fetchMax(StatSendBufHighWater, Buf.highWater());
}

void Daemon::evictLocked(Retained &RR) {
  RetainedBytes -= RR.Bytes;
  RR.Bytes = 0;
  RR.DeltaPayloads.clear();
  RR.DeltaPayloads.shrink_to_fit();
  RR.ProfileJson.clear();
  RR.ProfileJson.shrink_to_fit();
  RR.DonePayload.clear();
  RR.Evicted = true; // The tombstone stays: resume gets ResultEvicted.
  StatResultsEvicted.fetch_add(1);
  obs::addCount(obs::Counter::ResultsEvicted);
}

void Daemon::evictExpiredLocked(uint64_t Now) {
  if (Opts.RetainSecs == 0)
    return;
  const uint64_t TtlMs = Opts.RetainSecs * 1000;
  for (auto &KV : RetainedResults) {
    Retained &RR = KV.second;
    if (RR.Done && !RR.Evicted && Now >= RR.CompletedAtMs + TtlMs)
      evictLocked(RR);
  }
}

void Daemon::retainResult(uint64_t Id, uint64_t NumRuns,
                          std::vector<std::string> Deltas, std::string Doc,
                          std::string DonePayload) {
  uint64_t Bytes = Doc.size() + DonePayload.size();
  for (const std::string &D : Deltas)
    Bytes += D.size();
  {
    std::lock_guard<std::mutex> Lock(RetainedMu);
    Retained &RR = RetainedResults[Id];
    RR.Runs = NumRuns;
    RR.DeltaPayloads = std::move(Deltas);
    RR.ProfileJson = std::move(Doc);
    RR.DonePayload = std::move(DonePayload);
    RR.Bytes = Bytes;
    RR.Seq = ++RetainSeq;
    RR.CompletedAtMs = nowMs();
    RR.Done = true;
    RetainedBytes += Bytes;
    // Byte budget: evict oldest-completed results first (completion
    // ordinal, not the injected clock, so the order is deterministic).
    // The entry just stored is evictable too — a result bigger than
    // the whole budget is never retained, by design.
    while (Opts.RetainBytes != 0 && RetainedBytes > Opts.RetainBytes) {
      Retained *Oldest = nullptr;
      for (auto &KV : RetainedResults) {
        Retained &C = KV.second;
        if (C.Done && !C.Evicted && (!Oldest || C.Seq < Oldest->Seq))
          Oldest = &C;
      }
      if (!Oldest)
        break;
      evictLocked(*Oldest);
    }
  }
  obs::flushThisThread();
  RetainedCv.notify_all();
}

void Daemon::maybeCompact(bool Force) {
  if (!Wal.isOpen())
    return;
  if (!Force &&
      (Opts.CompactBytes == 0 || Wal.sizeBytes() <= Opts.CompactBytes))
    return;
  std::string Err;
  if (Wal.compact(Err))
    StatCompactions.fetch_add(1);
}

void Daemon::maintenanceLoop() {
  std::unique_lock<std::mutex> Lock(MaintMu);
  uint64_t LastCompact = nowMs();
  while (!Stopping.load()) {
    // A short real-time tick: TTL expiry reads the (possibly injected)
    // clock each round, so tests that advance a fake clock see the
    // eviction within one tick.
    MaintCv.wait_for(Lock, std::chrono::milliseconds(50),
                     [&] { return Stopping.load(); });
    if (Stopping.load())
      return;
    uint64_t Now = nowMs();
    if (Opts.RetainSecs > 0) {
      {
        std::lock_guard<std::mutex> RLock(RetainedMu);
        evictExpiredLocked(Now);
      }
      obs::flushThisThread();
    }
    if (Opts.CompactIntervalMs > 0 &&
        Now - LastCompact >= Opts.CompactIntervalMs) {
      LastCompact = Now;
      maybeCompact(/*Force=*/true);
    }
  }
}

void Daemon::acceptOn(int Fd, bool Tcp) {
  for (;;) {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR)
        continue;
      return; // Shut down (or the listen socket died) — either way out.
    }
    if (Stopping.load()) {
      ::close(C);
      return;
    }
    std::lock_guard<std::mutex> Lock(SessionsMu);
    reapLocked();
    if (Opts.MaxSessions != 0 && Sessions.size() >= Opts.MaxSessions) {
      // Rejected before a byte is read: admission is by connection, so
      // an overloaded daemon sheds load without parsing anything.
      reject(C, errc::TooManySessions,
             "session limit " + std::to_string(Opts.MaxSessions) +
                 " reached");
      ::close(C);
      continue;
    }
    Sessions.push_back(std::make_unique<Session>());
    Session &S = *Sessions.back();
    S.Fd = C;
    S.Tcp = Tcp;
    S.T = std::thread([this, &S] { handleSession(S); });
  }
}

std::string Daemon::applyQuotas(JobRequest &R) const {
  const SessionQuota &Q = Opts.Quota;
  uint64_t NumRuns =
      R.Seeds.empty() ? static_cast<uint64_t>(R.Runs) : R.Seeds.size();
  if (Q.MaxRuns != 0 && NumRuns > Q.MaxRuns)
    return "job wants " + std::to_string(NumRuns) + " runs, quota is " +
           std::to_string(Q.MaxRuns);
  if (Q.MaxSourceBytes != 0 && R.Source.size() > Q.MaxSourceBytes)
    return "source is " + std::to_string(R.Source.size()) +
           " bytes, quota is " + std::to_string(Q.MaxSourceBytes);
  if (Q.MaxHeapBytes != 0) {
    if (R.MaxHeapBytes > Q.MaxHeapBytes)
      return "max-heap-bytes " + std::to_string(R.MaxHeapBytes) +
             " exceeds quota " + std::to_string(Q.MaxHeapBytes);
    if (R.MaxHeapBytes == 0) // Unlimited request: clamp to the cap.
      R.MaxHeapBytes = Q.MaxHeapBytes;
  }
  if (Q.MaxRunDeadlineMs != 0) {
    if (R.RunDeadlineMs > Q.MaxRunDeadlineMs)
      return "deadline-ms " + std::to_string(R.RunDeadlineMs) +
             " exceeds quota " + std::to_string(Q.MaxRunDeadlineMs);
    if (R.RunDeadlineMs == 0)
      R.RunDeadlineMs = Q.MaxRunDeadlineMs;
  }
  if (Q.MaxAttempts != 0 &&
      static_cast<uint64_t>(R.MaxAttempts) > Q.MaxAttempts)
    return "retry attempts " + std::to_string(R.MaxAttempts) +
           " exceed quota " + std::to_string(Q.MaxAttempts);
  return std::string();
}

void Daemon::handleSession(Session &S) {
  const int Fd = S.Fd;
  setRecvTimeout(Fd, Opts.ReadTimeoutMs);
  if (Opts.SessionSendBufBytes > 0)
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SessionSendBufBytes,
                 sizeof(Opts.SessionSendBufBytes));

  // --- Read and validate the job -------------------------------------
  bool Ok = [&]() -> bool {
    Frame F;
    switch (readFrame(Fd, F, Opts.MaxFrameBytes)) {
    case ReadStatus::Ok:
      break;
    case ReadStatus::Eof:
      return false; // Connected and left; nothing to answer.
    case ReadStatus::Truncated:
      return reject(Fd, errc::MalformedFrame, "truncated frame");
    case ReadStatus::BadType:
      return reject(Fd, errc::MalformedFrame, "unknown frame type");
    case ReadStatus::Oversized:
      return reject(Fd, errc::OversizedFrame,
                    "payload exceeds " +
                        std::to_string(Opts.MaxFrameBytes) + " bytes");
    }
    if (F.Type != FrameType::Job)
      return reject(Fd, errc::MalformedFrame,
                    std::string("expected job frame, got ") +
                        frameTypeName(F.Type));

    JobRequest R;
    std::string Err;
    if (!parseJobRequest(F.Payload, R, Err))
      return reject(Fd, errc::BadRequest, Err);

    // --- Auth: TCP jobs must present the shared token ---------------
    if (S.Tcp && !constantTimeEq(R.Auth, AuthToken)) {
      StatAuthFailures.fetch_add(1);
      obs::addCount(obs::Counter::AuthFailures);
      return reject(Fd, errc::AuthFailed,
                    R.Auth.empty() ? "missing auth token"
                                   : "bad auth token");
    }

    SendBuffer Buf(Fd, Opts.MaxSendBufferBytes, Opts.SlowClient);

    // --- Resume: re-stream a journaled session ----------------------
    if (R.Resume != 0) {
      bool Served = serveResume(Buf, R.Resume, R.FromDelta);
      foldSendStats(Buf);
      return Served;
    }

    resilience::FaultPlan Faults;
    if (!resilience::FaultPlan::parse(R.InjectSpec, Faults, Err))
      return reject(Fd, errc::BadRequest, "invalid inject spec: " + Err);

    // --- Quotas: the budget machinery as admission control ----------
    std::string QErr = applyQuotas(R);
    if (!QErr.empty())
      return reject(Fd, errc::QuotaExceeded, QErr);
    uint64_t NumRuns =
        R.Seeds.empty() ? static_cast<uint64_t>(R.Runs) : R.Seeds.size();

    // --- Compile (shared, content-keyed) ----------------------------
    const std::string *Source = &R.Source;
    if (!R.Corpus.empty()) {
      const programs::CorpusProgram *P = findCorpusProgram(R.Corpus);
      if (!P)
        return reject(Fd, errc::BadRequest,
                      "unknown corpus program '" + R.Corpus + "'");
      Source = &P->Source;
    }
    prof::CompileCache::Result CR = Cache.get(*Source);
    if (!CR.ok()) {
      // Errors are answered, not hoarded: purge resolved failures so a
      // stream of broken submissions cannot pin memory forever (a
      // fixed resubmission has different content and misses anyway).
      reject(Fd, errc::CompileError, CR.Error);
      Cache.invalidateErrors();
      return false;
    }
    const prof::CompiledProgram &CP = *CR.Program;
    if (CP.entryMethod(R.EntryClass, R.EntryMethod) < 0)
      return reject(Fd, errc::BadRequest,
                    "no static no-arg method " + R.EntryClass + "." +
                        R.EntryMethod);

    // --- Accepted: journal, then build the session ------------------
    uint64_t Id = NextSessionId.fetch_add(1);
    if (Wal.isOpen()) {
      // Journaled post-quota and with the auth token stripped: replay
      // re-runs exactly what was admitted, and no secret hits disk.
      JobRequest Logged = R;
      Logged.Auth.clear();
      Wal.appendAccepted(Id, encodeJobRequest(Logged));
      std::lock_guard<std::mutex> Lock(RetainedMu);
      RetainedResults.emplace(Id, Retained());
    }
    StatAccepted.fetch_add(1);
    obs::addCount(obs::Counter::SessionsAccepted);
    obs::flushThisThread();

    AcceptedMsg A;
    A.Session = Id;
    A.Runs = NumRuns;
    A.Proto = R.Protocol;
    // A client gone mid-stream only mutes the stream: the session
    // still runs to completion on the shared pool (its work is
    // already queued; other sessions are unaffected) — and, when
    // journaled, its results are retained for a later resume.
    Buf.send(FrameType::Accepted, encodeAccepted(A));

    runCompiled(CP, R, Faults, Id, NumRuns, R.Protocol >= 2, &Buf);
    foldSendStats(Buf);
    return true;
  }();
  (void)Ok;

  // Publish this session's counters before the socket closes, so a
  // scrape racing the client's next action already sees them.
  obs::flushThisThread();
  ::shutdown(Fd, SHUT_RDWR);
  S.Finished.store(true); // reapLocked() joins and closes.
}

void Daemon::runCompiled(const prof::CompiledProgram &CP,
                         const JobRequest &R,
                         const resilience::FaultPlan &Faults, uint64_t Id,
                         uint64_t NumRuns, bool V2, SendBuffer *Buf) {
  prof::SessionOptions SO;
  SO.Seeds = R.Seeds;
  SO.Runs = R.Runs;
  SO.Input = R.Input;
  SO.Policy = R.Policy;
  SO.MaxAttempts = R.MaxAttempts;
  SO.Faults = Faults;
  SO.Run.MaxHeapBytes = R.MaxHeapBytes;
  SO.Run.RunDeadlineMs = R.RunDeadlineMs;

  std::vector<vm::IoChannels> RunInputs;
  if (R.Seeds.empty()) {
    RunInputs.resize(NumRuns);
    for (vm::IoChannels &Io : RunInputs)
      Io.Input = R.Input;
  } else {
    RunInputs.resize(R.Seeds.size());
    for (size_t I = 0; I < R.Seeds.size(); ++I)
      RunInputs[I].Input.push_back(R.Seeds[I]);
  }

  const bool Retain = Wal.isOpen();
  std::vector<std::string> RetainedDeltas;
  uint64_t Streamed = 0;

  parallel::SweepEngine Engine(CP, SO);
  int64_t LastReps = 0;
  // Deltas stream from whichever thread advances the merge — a pool
  // worker or this thread's final drain — serialized by the merge
  // lock, strictly in run-index order. Everything the lambda touches
  // is safe to read after finishEnqueued(): the merge lock orders
  // every observer call before the final drain's release. Under the
  // same lock the engine's accumulated tree/profiles are stable, which
  // is what lets v2 deltas refresh the fitted curves per merge.
  Engine.setRunObserver([&](const parallel::RunDelta &D) {
    RunDeltaMsg M;
    M.Run = D.Run;
    M.Index = D.Index;
    M.Total = D.BatchRuns;
    M.Status = vm::runStatusName(D.Status);
    M.Budget = D.Budget;
    M.Attempts = D.Attempts;
    M.Quarantined = D.Quarantined;
    M.MergedRuns = D.MergedRuns;
    if (V2 || Retain) {
      M.TreeRepetitions = D.TreeRepetitions;
      M.NewRepetitions = D.TreeRepetitions - LastReps;
      LastReps = D.TreeRepetitions;
      for (const prof::AlgorithmProfile &P : Engine.buildProfiles()) {
        const prof::AlgorithmProfile::InputSeries *PS = P.primarySeries();
        if (!PS || !PS->Fit.Valid)
          continue;
        FitEstimate FE;
        FE.Label = P.Label;
        FE.Formula = PS->Fit.formula();
        M.Fits.push_back(std::move(FE));
      }
    }
    if (Retain) {
      M.V2 = true; // Stored rich: resume is always a v2 stream.
      RetainedDeltas.push_back(encodeRunDelta(M));
    }
    if (Buf && !Buf->gone()) {
      M.V2 = V2;
      if (Buf->sendDelta(encodeRunDelta(M)))
        ++Streamed;
    }
  });

  parallel::SweepResult Sweep;
  Engine.enqueueSweep(Pool, R.EntryClass, R.EntryMethod, RunInputs, &Sweep);
  Engine.waitEnqueued();
  Engine.finishEnqueued();

  // All deltas are decided now. Publish backpressure stats BEFORE the
  // blocking Profile send: a slow client that has not read a byte can
  // observe deltas_dropped in stats() / on /metrics while the daemon
  // is still waiting to hand it the final document.
  if (Buf)
    foldSendStats(*Buf);

  // --- Final profile: the serial CLI's exact bytes ------------------
  std::vector<prof::AlgorithmProfile> Profiles = Engine.buildProfiles();
  report::ReportInput RI{&Engine.tree(), &Engine.inputs(), &Profiles,
                         &Sweep.Failures};
  std::string Doc = report::Registry::builtin().find("json")->render(RI);

  DoneMsg DM;
  DM.Runs = NumRuns;
  DM.MergedRuns = static_cast<uint64_t>(Sweep.MergedRuns);
  DM.DegradedRuns = Sweep.Failures.size();
  const std::string DonePayload = encodeDone(DM);

  if (!Buf) {
    // Journal replay: no client attached; the retained results below
    // are the whole point. Counted BEFORE those results land so a
    // resumer unblocked by the notify already observes jobs_replayed
    // in stats() and on /metrics.
    StatJobsReplayed.fetch_add(1);
    obs::addCount(obs::Counter::JobsReplayed);
    obs::flushThisThread();
  }

  if (Retain) {
    // Results land in the store and the WAL gets its completion record
    // BEFORE any client observes Done: a resume issued after reading
    // Done always finds the session, and a crash after this point
    // re-streams instead of re-running. retainResult also applies the
    // byte-budget eviction policy.
    retainResult(Id, NumRuns, std::move(RetainedDeltas), Doc, DonePayload);
    Wal.appendCompleted(Id);
    // The completion record may have pushed the WAL past its size
    // threshold; compaction drops every completed A/C pair.
    maybeCompact(/*Force=*/false);
  }

  if (!Buf)
    return;

  bool ClientGone = Buf->gone();
  if (!ClientGone)
    ClientGone = !Buf->send(FrameType::Profile, Doc);
  uint64_t Bytes = Buf->bytesQueued();
  // Completion is counted BEFORE the Done frame goes out: a client
  // that has read Done must already observe this session in stats()
  // and on /metrics (tests poll exactly that edge). The Done frame's
  // wire size is included up front for the same reason; if the send
  // then fails the overcount is 5+|payload| bytes to a peer that
  // vanished mid-stream — noise, not accounting.
  if (!ClientGone)
    Bytes += encodeFrame(FrameType::Done, DonePayload).size();
  StatCompleted.fetch_add(1);
  StatBytes.fetch_add(Bytes);
  StatDeltasStreamed.fetch_add(Streamed);
  obs::addCount(obs::Counter::SessionsCompleted);
  obs::addCount(obs::Counter::BytesStreamed, Bytes);
  if (Streamed > 0)
    obs::addCount(obs::Counter::DeltasStreamed, Streamed);
  obs::flushThisThread();
  if (!ClientGone)
    Buf->send(FrameType::Done, DonePayload);
}

void Daemon::replayJob(Session &S) {
  auto Fail = [&](const char *Code, const std::string &Msg) {
    {
      std::lock_guard<std::mutex> Lock(RetainedMu);
      Retained &RR = RetainedResults[S.ReplayId];
      RR.FailCode = Code;
      RR.FailMessage = Msg;
    }
    RetainedCv.notify_all();
    Wal.appendCompleted(S.ReplayId);
    maybeCompact(/*Force=*/false);
  };

  [&] {
    JobRequest R;
    std::string Err;
    if (!parseJobRequest(S.ReplayPayload, R, Err) || R.Resume != 0)
      return Fail(errc::BadRequest, "unreplayable journal record: " + Err);
    resilience::FaultPlan Faults;
    if (!resilience::FaultPlan::parse(R.InjectSpec, Faults, Err))
      return Fail(errc::BadRequest, "invalid inject spec: " + Err);
    std::string QErr = applyQuotas(R);
    if (!QErr.empty())
      return Fail(errc::QuotaExceeded, QErr);
    uint64_t NumRuns =
        R.Seeds.empty() ? static_cast<uint64_t>(R.Runs) : R.Seeds.size();
    const std::string *Source = &R.Source;
    if (!R.Corpus.empty()) {
      const programs::CorpusProgram *P = findCorpusProgram(R.Corpus);
      if (!P)
        return Fail(errc::BadRequest,
                    "unknown corpus program '" + R.Corpus + "'");
      Source = &P->Source;
    }
    prof::CompileCache::Result CR = Cache.get(*Source);
    if (!CR.ok()) {
      Fail(errc::CompileError, CR.Error);
      Cache.invalidateErrors();
      return;
    }
    const prof::CompiledProgram &CP = *CR.Program;
    if (CP.entryMethod(R.EntryClass, R.EntryMethod) < 0)
      return Fail(errc::BadRequest, "no static no-arg method " +
                                        R.EntryClass + "." + R.EntryMethod);
    runCompiled(CP, R, Faults, S.ReplayId, NumRuns, true, nullptr);
  }();

  obs::flushThisThread();
  S.Finished.store(true);
}

bool Daemon::serveResume(SendBuffer &Buf, uint64_t Id, uint64_t FromDelta) {
  const int Fd = Buf.fd();
  if (!Wal.isOpen())
    return reject(Fd, errc::UnknownSession,
                  "resume needs a daemon with --journal");
  Retained Copy;
  {
    std::unique_lock<std::mutex> Lock(RetainedMu);
    auto It = RetainedResults.find(Id);
    if (It == RetainedResults.end()) {
      Lock.unlock();
      return reject(Fd, errc::UnknownSession,
                    "no journaled session " + std::to_string(Id));
    }
    // The session may still be replaying (or running live): block
    // until its results land. Daemon shutdown wakes us empty-handed.
    RetainedCv.wait(Lock, [&] {
      return It->second.Done || It->second.FailCode || Stopping.load();
    });
    if (!It->second.Done && !It->second.FailCode)
      return false; // Stopping.
    if (It->second.FailCode) {
      const char *Code = It->second.FailCode;
      std::string Msg = It->second.FailMessage;
      Lock.unlock();
      return reject(Fd, Code, Msg);
    }
    // TTL checked on access too, not just by the maintenance tick: a
    // resume can never observe a result the clock says is dead.
    if (!It->second.Evicted && Opts.RetainSecs != 0 &&
        nowMs() >= It->second.CompletedAtMs + Opts.RetainSecs * 1000)
      evictLocked(It->second);
    if (It->second.Evicted) {
      Lock.unlock();
      obs::flushThisThread();
      return reject(Fd, errc::ResultEvicted,
                    "session " + std::to_string(Id) +
                        " results were evicted (retention bounds)");
    }
    Copy = It->second; // Stream outside the lock.
  }

  if (FromDelta > Copy.DeltaPayloads.size())
    return reject(Fd, errc::BadRequest,
                  "from-delta " + std::to_string(FromDelta) +
                      " exceeds the " +
                      std::to_string(Copy.DeltaPayloads.size()) +
                      " retained deltas of session " + std::to_string(Id));

  StatAccepted.fetch_add(1);
  obs::addCount(obs::Counter::SessionsAccepted);
  obs::flushThisThread();

  AcceptedMsg A;
  A.Session = Id;
  A.Runs = Copy.Runs;
  A.Proto = 2;
  A.Resumed = true;
  A.ResumedFrom = FromDelta;
  Buf.send(FrameType::Accepted, encodeAccepted(A));

  // The cursor: the client declared it already observed the first
  // FromDelta deltas, so re-stream k..n only — no delta twice.
  uint64_t Streamed = 0;
  for (size_t I = FromDelta; I < Copy.DeltaPayloads.size(); ++I) {
    if (Buf.gone())
      break;
    if (Buf.sendDelta(Copy.DeltaPayloads[I]))
      ++Streamed;
  }

  bool ClientGone = Buf.gone();
  if (!ClientGone)
    ClientGone = !Buf.send(FrameType::Profile, Copy.ProfileJson);
  uint64_t Bytes = Buf.bytesQueued();
  if (!ClientGone)
    Bytes += encodeFrame(FrameType::Done, Copy.DonePayload).size();
  StatCompleted.fetch_add(1);
  StatBytes.fetch_add(Bytes);
  StatDeltasStreamed.fetch_add(Streamed);
  obs::addCount(obs::Counter::SessionsCompleted);
  obs::addCount(obs::Counter::BytesStreamed, Bytes);
  if (Streamed > 0)
    obs::addCount(obs::Counter::DeltasStreamed, Streamed);
  obs::flushThisThread();
  if (!ClientGone)
    Buf.send(FrameType::Done, Copy.DonePayload);
  return true;
}

//===----------------------------------------------------------------------===//
// /metrics
//===----------------------------------------------------------------------===//

void Daemon::metricsLoop() {
  for (;;) {
    int C = ::accept(MetricsFd, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Stopping.load()) {
      ::close(C);
      return;
    }
    setRecvTimeout(C, 2000);
    // Enough of HTTP for a Prometheus scrape: read the request head,
    // match the request line, answer, close.
    std::string Req;
    char Buf[1024];
    while (Req.find("\r\n") == std::string::npos && Req.size() < 8192) {
      ssize_t R = io::retryOn([&] { return ::recv(C, Buf, sizeof(Buf), 0); });
      if (R <= 0)
        break;
      Req.append(Buf, static_cast<size_t>(R));
    }
    auto Matches = [&](const char *Path) {
      std::string G = std::string("GET ") + Path;
      return Req.rfind(G + " ", 0) == 0 || Req.rfind(G + "\r", 0) == 0;
    };
    std::string Status = "404 Not Found", Body = "not found\n";
    if (Matches("/metrics")) {
      Status = "200 OK";
      Body = obs::prometheusText(obs::snapshot());
    } else if (Matches("/healthz")) {
      // Liveness: the process answers, full stop.
      Status = "200 OK";
      Body = "ok\n";
      StatHealthChecks.fetch_add(1);
      obs::addCount(obs::Counter::HealthChecks);
      obs::flushThisThread();
    } else if (Matches("/readyz")) {
      // Readiness: accepting new sessions AND durability intact — a
      // draining daemon or one whose journal append failed must fall
      // out of its load balancer before clients notice.
      bool Ready = !Stopping.load() && !Draining.load() &&
                   (Opts.JournalPath.empty() ||
                    (Wal.isOpen() && !Wal.failed()));
      Status = Ready ? "200 OK" : "503 Service Unavailable";
      Body = Ready ? "ok\n" : "not ready\n";
      StatHealthChecks.fetch_add(1);
      obs::addCount(obs::Counter::HealthChecks);
      obs::flushThisThread();
    }
    std::string Resp = "HTTP/1.1 " + Status +
                       "\r\nContent-Type: text/plain; version=0.0.4"
                       "\r\nContent-Length: " +
                       std::to_string(Body.size()) +
                       "\r\nConnection: close\r\n\r\n" + Body;
    // io::writeFull retries EINTR and loops over short writes — a
    // signal mid-scrape must not truncate the response.
    io::writeFull(C, Resp.data(), Resp.size());
    ::close(C);
  }
}

//===- service/Daemon.cpp -------------------------------------------------===//

#include "service/Daemon.h"

#include "core/Session.h"
#include "obs/MetricsExport.h"
#include "obs/Obs.h"
#include "parallel/SweepEngine.h"
#include "programs/Programs.h"
#include "report/Reporter.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

unsigned poolWorkers(unsigned Requested) {
  return Requested == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : Requested;
}

void setRecvTimeout(int Fd, unsigned Ms) {
  struct timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

const programs::CorpusProgram *findCorpusProgram(const std::string &Name) {
  for (const programs::CorpusProgram &P : programs::corpusPrograms())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

} // namespace

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)), Pool(poolWorkers(Opts.Workers)) {}

Daemon::~Daemon() { stop(); }

Daemon::Stats Daemon::stats() const {
  Stats S;
  S.Accepted = StatAccepted.load();
  S.Rejected = StatRejected.load();
  S.Completed = StatCompleted.load();
  S.BytesStreamed = StatBytes.load();
  return S;
}

bool Daemon::start(std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + Opts.SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Opts.SocketPath.c_str()); // Stale socket from a dead daemon.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    Err = std::string("bind/listen '") + Opts.SocketPath +
          "': " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  if (Opts.MetricsPort >= 0) {
    MetricsFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (MetricsFd < 0) {
      Err = std::string("metrics socket: ") + std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    int One = 1;
    ::setsockopt(MetricsFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in MAddr{};
    MAddr.sin_family = AF_INET;
    MAddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    MAddr.sin_port = htons(static_cast<uint16_t>(Opts.MetricsPort));
    socklen_t MLen = sizeof(MAddr);
    if (::bind(MetricsFd, reinterpret_cast<sockaddr *>(&MAddr), MLen) < 0 ||
        ::listen(MetricsFd, 16) < 0 ||
        ::getsockname(MetricsFd, reinterpret_cast<sockaddr *>(&MAddr),
                      &MLen) < 0) {
      Err = std::string("metrics bind/listen: ") + std::strerror(errno);
      ::close(ListenFd);
      ::close(MetricsFd);
      ListenFd = MetricsFd = -1;
      return false;
    }
    BoundMetricsPort = ntohs(MAddr.sin_port);
    MetricsThread = std::thread([this] { metricsLoop(); });
  }

  AcceptThread = std::thread([this] { acceptLoop(); });
  Started = true;
  return true;
}

void Daemon::stop() {
  if (!Started || Stopping.exchange(true))
    return;
  // Unblock the accept loops; accept() fails once the fd is shut down.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (MetricsFd >= 0)
    ::shutdown(MetricsFd, SHUT_RDWR);
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (MetricsThread.joinable())
    MetricsThread.join();
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    // Yank every in-flight session's socket out from under it: blocked
    // reads/writes fail, the session thread runs to its end, joins here.
    for (std::unique_ptr<Session> &S : Sessions)
      ::shutdown(S->Fd, SHUT_RDWR);
    for (std::unique_ptr<Session> &S : Sessions) {
      if (S->T.joinable())
        S->T.join();
      ::close(S->Fd);
    }
    Sessions.clear();
  }
  ::close(ListenFd);
  ListenFd = -1;
  if (MetricsFd >= 0) {
    ::close(MetricsFd);
    MetricsFd = -1;
  }
  ::unlink(Opts.SocketPath.c_str());
}

bool Daemon::reject(int Fd, const char *Code, const std::string &Message) {
  // Counted BEFORE the Error frame goes out, for the same reason
  // completions are: a client that has read the rejection must already
  // see it in stats() and on /metrics.
  StatRejected.fetch_add(1);
  obs::addCount(obs::Counter::SessionsRejected);
  obs::flushThisThread();
  sendFrame(Fd, FrameType::Error, encodeError(Code, Message));
  return false;
}

void Daemon::reapLocked() {
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    if ((*It)->Finished.load()) {
      (*It)->T.join();
      ::close((*It)->Fd);
      It = Sessions.erase(It);
    } else {
      ++It;
    }
  }
}

void Daemon::acceptLoop() {
  for (;;) {
    int C = ::accept(ListenFd, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR)
        continue;
      return; // Shut down (or the listen socket died) — either way out.
    }
    if (Stopping.load()) {
      ::close(C);
      return;
    }
    std::lock_guard<std::mutex> Lock(SessionsMu);
    reapLocked();
    if (Opts.MaxSessions != 0 && Sessions.size() >= Opts.MaxSessions) {
      // Rejected before a byte is read: admission is by connection, so
      // an overloaded daemon sheds load without parsing anything.
      reject(C, errc::TooManySessions,
             "session limit " + std::to_string(Opts.MaxSessions) +
                 " reached");
      ::close(C);
      continue;
    }
    Sessions.push_back(std::make_unique<Session>());
    Session &S = *Sessions.back();
    S.Fd = C;
    S.T = std::thread([this, &S] { handleSession(S); });
  }
}

void Daemon::handleSession(Session &S) {
  const int Fd = S.Fd;
  setRecvTimeout(Fd, Opts.ReadTimeoutMs);

  // --- Read and validate the job -------------------------------------
  bool Ok = [&]() -> bool {
    Frame F;
    switch (readFrame(Fd, F, Opts.MaxFrameBytes)) {
    case ReadStatus::Ok:
      break;
    case ReadStatus::Eof:
      return false; // Connected and left; nothing to answer.
    case ReadStatus::Truncated:
      return reject(Fd, errc::MalformedFrame, "truncated frame");
    case ReadStatus::BadType:
      return reject(Fd, errc::MalformedFrame, "unknown frame type");
    case ReadStatus::Oversized:
      return reject(Fd, errc::OversizedFrame,
                    "payload exceeds " +
                        std::to_string(Opts.MaxFrameBytes) + " bytes");
    }
    if (F.Type != FrameType::Job)
      return reject(Fd, errc::MalformedFrame,
                    std::string("expected job frame, got ") +
                        frameTypeName(F.Type));

    JobRequest R;
    std::string Err;
    if (!parseJobRequest(F.Payload, R, Err))
      return reject(Fd, errc::BadRequest, Err);

    resilience::FaultPlan Faults;
    if (!resilience::FaultPlan::parse(R.InjectSpec, Faults, Err))
      return reject(Fd, errc::BadRequest, "invalid inject spec: " + Err);

    // --- Quotas: the budget machinery as admission control ----------
    const SessionQuota &Q = Opts.Quota;
    uint64_t NumRuns = R.Seeds.empty() ? static_cast<uint64_t>(R.Runs)
                                       : R.Seeds.size();
    if (Q.MaxRuns != 0 && NumRuns > Q.MaxRuns)
      return reject(Fd, errc::QuotaExceeded,
                    "job wants " + std::to_string(NumRuns) +
                        " runs, quota is " + std::to_string(Q.MaxRuns));
    if (Q.MaxSourceBytes != 0 && R.Source.size() > Q.MaxSourceBytes)
      return reject(Fd, errc::QuotaExceeded,
                    "source is " + std::to_string(R.Source.size()) +
                        " bytes, quota is " +
                        std::to_string(Q.MaxSourceBytes));
    if (Q.MaxHeapBytes != 0) {
      if (R.MaxHeapBytes > Q.MaxHeapBytes)
        return reject(Fd, errc::QuotaExceeded,
                      "max-heap-bytes " + std::to_string(R.MaxHeapBytes) +
                          " exceeds quota " +
                          std::to_string(Q.MaxHeapBytes));
      if (R.MaxHeapBytes == 0) // Unlimited request: clamp to the cap.
        R.MaxHeapBytes = Q.MaxHeapBytes;
    }
    if (Q.MaxRunDeadlineMs != 0) {
      if (R.RunDeadlineMs > Q.MaxRunDeadlineMs)
        return reject(Fd, errc::QuotaExceeded,
                      "deadline-ms " + std::to_string(R.RunDeadlineMs) +
                          " exceeds quota " +
                          std::to_string(Q.MaxRunDeadlineMs));
      if (R.RunDeadlineMs == 0)
        R.RunDeadlineMs = Q.MaxRunDeadlineMs;
    }
    if (Q.MaxAttempts != 0 &&
        static_cast<uint64_t>(R.MaxAttempts) > Q.MaxAttempts)
      return reject(Fd, errc::QuotaExceeded,
                    "retry attempts " + std::to_string(R.MaxAttempts) +
                        " exceed quota " + std::to_string(Q.MaxAttempts));

    // --- Compile (shared, content-keyed) ----------------------------
    const std::string *Source = &R.Source;
    if (!R.Corpus.empty()) {
      const programs::CorpusProgram *P = findCorpusProgram(R.Corpus);
      if (!P)
        return reject(Fd, errc::BadRequest,
                      "unknown corpus program '" + R.Corpus + "'");
      Source = &P->Source;
    }
    prof::CompileCache::Result CR = Cache.get(*Source);
    if (!CR.ok()) {
      // Errors are answered, not hoarded: purge resolved failures so a
      // stream of broken submissions cannot pin memory forever (a
      // fixed resubmission has different content and misses anyway).
      reject(Fd, errc::CompileError, CR.Error);
      Cache.invalidateErrors();
      return false;
    }
    const prof::CompiledProgram &CP = *CR.Program;
    if (CP.entryMethod(R.EntryClass, R.EntryMethod) < 0)
      return reject(Fd, errc::BadRequest,
                    "no static no-arg method " + R.EntryClass + "." +
                        R.EntryMethod);

    // --- Accepted: build the session --------------------------------
    StatAccepted.fetch_add(1);
    obs::addCount(obs::Counter::SessionsAccepted);
    obs::flushThisThread();

    uint64_t Bytes = 0;
    AcceptedMsg A;
    A.Session = NextSessionId.fetch_add(1);
    A.Runs = NumRuns;
    // A client gone mid-stream only mutes the stream: the session
    // still runs to completion on the shared pool (its work is
    // already queued; other sessions are unaffected).
    bool ClientGone =
        !sendFrame(Fd, FrameType::Accepted, encodeAccepted(A), &Bytes);

    prof::SessionOptions SO;
    SO.Seeds = R.Seeds;
    SO.Runs = R.Runs;
    SO.Input = R.Input;
    SO.Policy = R.Policy;
    SO.MaxAttempts = R.MaxAttempts;
    SO.Faults = Faults;
    SO.Run.MaxHeapBytes = R.MaxHeapBytes;
    SO.Run.RunDeadlineMs = R.RunDeadlineMs;

    std::vector<vm::IoChannels> RunInputs;
    if (R.Seeds.empty()) {
      RunInputs.resize(NumRuns);
      for (vm::IoChannels &Io : RunInputs)
        Io.Input = R.Input;
    } else {
      RunInputs.resize(R.Seeds.size());
      for (size_t I = 0; I < R.Seeds.size(); ++I)
        RunInputs[I].Input.push_back(R.Seeds[I]);
    }

    parallel::SweepEngine Engine(CP, SO);
    // Deltas stream from whichever thread advances the merge — a pool
    // worker or this thread's final drain — serialized by the merge
    // lock, strictly in run-index order. ClientGone/Bytes are safe to
    // read after finishEnqueued(): the merge lock orders every
    // observer call before the final drain's release.
    Engine.setRunObserver([&](const parallel::RunDelta &D) {
      if (ClientGone)
        return;
      RunDeltaMsg M;
      M.Run = D.Run;
      M.Index = D.Index;
      M.Total = D.BatchRuns;
      M.Status = vm::runStatusName(D.Status);
      M.Budget = D.Budget;
      M.Attempts = D.Attempts;
      M.Quarantined = D.Quarantined;
      M.MergedRuns = D.MergedRuns;
      if (!sendFrame(Fd, FrameType::RunDelta, encodeRunDelta(M), &Bytes))
        ClientGone = true;
    });

    parallel::SweepResult Sweep;
    Engine.enqueueSweep(Pool, R.EntryClass, R.EntryMethod, RunInputs,
                        &Sweep);
    Engine.waitEnqueued();
    Engine.finishEnqueued();

    // --- Final profile: the serial CLI's exact bytes ----------------
    std::vector<prof::AlgorithmProfile> Profiles = Engine.buildProfiles();
    report::ReportInput RI{&Engine.tree(), &Engine.inputs(), &Profiles,
                           &Sweep.Failures};
    std::string Doc = report::Registry::builtin().find("json")->render(RI);
    if (!ClientGone)
      ClientGone = !sendFrame(Fd, FrameType::Profile, Doc, &Bytes);

    DoneMsg DM;
    DM.Runs = NumRuns;
    DM.MergedRuns = static_cast<uint64_t>(Sweep.MergedRuns);
    DM.DegradedRuns = Sweep.Failures.size();
    const std::string DonePayload = encodeDone(DM);
    // Completion is counted BEFORE the Done frame goes out: a client
    // that has read Done must already observe this session in stats()
    // and on /metrics (tests poll exactly that edge). The Done frame's
    // wire size is included up front for the same reason; if the send
    // then fails the overcount is 5+|payload| bytes to a peer that
    // vanished mid-stream — noise, not accounting.
    if (!ClientGone)
      Bytes += encodeFrame(FrameType::Done, DonePayload).size();
    StatCompleted.fetch_add(1);
    StatBytes.fetch_add(Bytes);
    obs::addCount(obs::Counter::SessionsCompleted);
    obs::addCount(obs::Counter::BytesStreamed, Bytes);
    obs::flushThisThread();
    if (!ClientGone)
      sendFrame(Fd, FrameType::Done, DonePayload);
    return true;
  }();
  (void)Ok;

  // Publish this session's counters before the socket closes, so a
  // scrape racing the client's next action already sees them.
  obs::flushThisThread();
  ::shutdown(Fd, SHUT_RDWR);
  S.Finished.store(true); // reapLocked() joins and closes.
}

//===----------------------------------------------------------------------===//
// /metrics
//===----------------------------------------------------------------------===//

void Daemon::metricsLoop() {
  for (;;) {
    int C = ::accept(MetricsFd, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Stopping.load()) {
      ::close(C);
      return;
    }
    setRecvTimeout(C, 2000);
    // Enough of HTTP for a Prometheus scrape: read the request head,
    // match the request line, answer, close.
    std::string Req;
    char Buf[1024];
    while (Req.find("\r\n") == std::string::npos && Req.size() < 8192) {
      ssize_t R = ::recv(C, Buf, sizeof(Buf), 0);
      if (R <= 0)
        break;
      Req.append(Buf, static_cast<size_t>(R));
    }
    std::string Status = "404 Not Found", Body = "not found\n";
    if (Req.rfind("GET /metrics ", 0) == 0 ||
        Req.rfind("GET /metrics\r", 0) == 0) {
      Status = "200 OK";
      Body = obs::prometheusText(obs::snapshot());
    }
    std::string Resp = "HTTP/1.1 " + Status +
                       "\r\nContent-Type: text/plain; version=0.0.4"
                       "\r\nContent-Length: " +
                       std::to_string(Body.size()) +
                       "\r\nConnection: close\r\n\r\n" + Body;
    size_t Off = 0;
    while (Off < Resp.size()) {
      ssize_t W = ::send(C, Resp.data() + Off, Resp.size() - Off,
                         MSG_NOSIGNAL);
      if (W <= 0)
        break;
      Off += static_cast<size_t>(W);
    }
    ::close(C);
  }
}

//===- service/Protocol.h - algoprofd wire protocol -------------*- C++-*-===//
///
/// \file
/// The framing and message codecs shared by the profiling daemon
/// (service/Daemon.h) and its client (service/Client.h). One job per
/// connection:
///
///   client                          daemon
///   ------ Job ------------------->   admission, compile
///   <----- Accepted ---------------   (or Error and close)
///   <----- RunDelta * N -----------   one per completed run, streamed
///                                     strictly in run-index order
///   <----- Profile ----------------   final algoprof-profile/2 JSON,
///                                     byte-identical to the serial CLI
///   <----- Done -------------------   summary, connection closes
///
/// Framing: every message is a 5-byte header — payload length as a
/// 4-byte big-endian integer, then a 1-byte frame type — followed by
/// the payload. Length counts the payload only. The fixed header makes
/// truncation detectable (a reader knows exactly how many bytes are
/// owed) and oversized payloads rejectable before a byte of the body
/// is read.
///
/// Payloads are line-oriented `key=value` text (the Profile frame's
/// payload is the JSON document itself). Text keeps the protocol
/// debuggable with socat and keeps this layer free of any serializer
/// dependency; the length prefix means payload bytes are never
/// scanned for terminators, so program source embeds verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_PROTOCOL_H
#define ALGOPROF_SERVICE_PROTOCOL_H

#include "resilience/Resilience.h"

#include <cstdint>
#include <string>
#include <vector>

namespace algoprof {
namespace service {

/// Protocol identifiers; the first line of every Job payload names the
/// wire version the client speaks, and the daemon answers in kind (the
/// negotiated version is echoed in the Accepted frame's `proto=` line).
/// v1 streams status-only RunDeltas; v2 deltas additionally carry
/// incremental repetition-tree counts and refreshed fitted-curve
/// estimates, and unlock session resume (`resume=`).
extern const char ProtocolVersion[];   // "algoprof-job/1"  (legacy, v1)
extern const char ProtocolVersionV2[]; // "algoprof-wire/2"

enum class FrameType : uint8_t {
  Job = 0x01,      ///< client -> daemon: the profiling request.
  Accepted = 0x10, ///< daemon -> client: admission + compile succeeded.
  RunDelta = 0x11, ///< daemon -> client: one run completed and merged.
  Profile = 0x12,  ///< daemon -> client: final profile JSON.
  Done = 0x13,     ///< daemon -> client: session summary; stream ends.
  Error = 0x14,    ///< daemon -> client: rejection; stream ends.
};

/// Stable lowercase frame name for diagnostics.
const char *frameTypeName(FrameType T);

/// Machine-readable rejection codes carried by Error frames.
/// Kept as strings on the wire so new codes never break old clients.
namespace errc {
inline constexpr char MalformedFrame[] = "malformed-frame";
inline constexpr char OversizedFrame[] = "oversized-frame";
inline constexpr char BadRequest[] = "bad-request";
inline constexpr char CompileError[] = "compile-error";
inline constexpr char TooManySessions[] = "too-many-sessions";
inline constexpr char QuotaExceeded[] = "quota-exceeded";
inline constexpr char AuthFailed[] = "auth-failed";
inline constexpr char UnknownSession[] = "unknown-session";
/// The session existed but its retained results were evicted (byte or
/// TTL bound); a resume can never succeed again. Distinct from
/// UnknownSession so a client knows re-asking is pointless.
inline constexpr char ResultEvicted[] = "result-evicted";
} // namespace errc

struct Frame {
  FrameType Type = FrameType::Job;
  std::string Payload;
};

/// Renders the 5-byte header + payload.
std::string encodeFrame(FrameType Type, const std::string &Payload);

/// Writes one frame to \p Fd (loops over partial writes, SIGPIPE
/// suppressed). Returns false when the peer is gone. On success adds
/// the frame's full wire size to \p BytesOut when non-null.
bool sendFrame(int Fd, FrameType Type, const std::string &Payload,
               uint64_t *BytesOut = nullptr);

enum class ReadStatus {
  Ok,
  Eof,       ///< Clean close before any header byte.
  Truncated, ///< Header or payload cut short (close or read timeout).
  Oversized, ///< Declared length exceeds the caller's cap (body unread).
  BadType,   ///< Unknown frame-type byte.
};

/// Reads one frame. \p MaxPayload bounds the declared length; an
/// oversized frame's body is never read (the connection is useless
/// afterwards — close it). A read timeout on the socket surfaces as
/// Truncated.
ReadStatus readFrame(int Fd, Frame &Out, size_t MaxPayload);

//===----------------------------------------------------------------------===//
// Job request
//===----------------------------------------------------------------------===//

/// A profiling job: what to run and under which session options. The
/// payload mirrors the CLI surface (docs/service.md lists every key);
/// exactly one of Corpus / Source / Resume must be set.
struct JobRequest {
  /// Negotiated wire version: 2 emits the `algoprof-wire/2` version
  /// line (tree/fit deltas, resume); 1 the legacy `algoprof-job/1`.
  int Protocol = 2;
  /// Auth token (`auth=` line). Required on TCP transports; ignored on
  /// the Unix socket, where filesystem permissions gate access.
  std::string Auth;
  /// Non-zero: instead of running anything, re-stream session \p Resume
  /// (deltas + final profile, byte-identical) from the daemon's
  /// journal-backed result store. v2 only.
  uint64_t Resume = 0;
  /// Resume cursor (`from-delta=`): the number of deltas this client
  /// already observed. The daemon re-streams deltas k..n only, so a
  /// reconnecting client never sees a delta twice. Valid only with
  /// Resume; rejected bad-request when it exceeds the retained count.
  uint64_t FromDelta = 0;
  std::string Corpus; ///< Built-in corpus program name, or
  std::string Source; ///< MiniJ source text.
  std::string EntryClass = "Main";
  std::string EntryMethod = "main";
  std::vector<int64_t> Seeds; ///< One run per seed (wins over Runs).
  int Runs = 1;
  std::vector<int64_t> Input; ///< Input channel for unseeded runs.
  resilience::FailurePolicy Policy = resilience::FailurePolicy::Fail;
  int MaxAttempts = 3;
  uint64_t MaxHeapBytes = 0; ///< 0 = off (subject to daemon quota).
  uint64_t RunDeadlineMs = 0;
  std::string InjectSpec; ///< FaultPlan spec, session-scoped.
};

/// Renders the Job payload: version line, key=value lines, and — for
/// inline source — a `source=<bytes>` line followed by exactly that
/// many raw bytes.
std::string encodeJobRequest(const JobRequest &R);

/// Parses a Job payload. On failure returns false with a message in
/// \p Err (the daemon streams it back under errc::BadRequest).
bool parseJobRequest(const std::string &Payload, JobRequest &Out,
                     std::string &Err);

//===----------------------------------------------------------------------===//
// Streamed responses
//===----------------------------------------------------------------------===//

/// Accepted payload.
struct AcceptedMsg {
  uint64_t Session = 0; ///< Daemon-assigned session id.
  uint64_t Runs = 0;    ///< Total runs the stream will cover.
  int Proto = 1;        ///< Negotiated wire version (echo).
  bool Resumed = false; ///< Stream replays a stored session's results.
  /// Resumed streams echo the request's delta cursor (`resumed-from=`):
  /// how many deltas are being skipped because the client saw them.
  uint64_t ResumedFrom = 0;
};
std::string encodeAccepted(const AcceptedMsg &M);
bool parseAccepted(const std::string &Payload, AcceptedMsg &Out);

/// A refreshed fitted-curve estimate carried by a v2 RunDelta: the
/// fitter re-run over the profile prefix merged so far.
struct FitEstimate {
  std::string Label;   ///< Algorithm label (grouping output).
  std::string Formula; ///< Fitted cost formula, e.g. "0.25*n^2".
};

/// RunDelta payload: one completed (merged or quarantined) run. The
/// v2 fields describe the accumulated profile the moment this run
/// merged; they are advisory (a slow client may never see some deltas)
/// — the final Profile frame alone is authoritative.
struct RunDeltaMsg {
  int64_t Run = -1;
  uint64_t Index = 0;
  uint64_t Total = 0;
  std::string Status; ///< "ok" | "trap" | "fuel" | "budget".
  std::string Budget; ///< Tripped budget name, empty when none.
  int Attempts = 1;
  bool Quarantined = false;
  int64_t MergedRuns = 0;
  bool V2 = false; ///< The tree/fit fields below are present.
  int64_t TreeRepetitions = 0; ///< Accumulated tree repetitions.
  int64_t NewRepetitions = 0;  ///< Added by this run's merge.
  std::vector<FitEstimate> Fits; ///< One per algorithm with a fit.
};
std::string encodeRunDelta(const RunDeltaMsg &M);
bool parseRunDelta(const std::string &Payload, RunDeltaMsg &Out);

/// Done payload.
struct DoneMsg {
  uint64_t Runs = 0;
  uint64_t MergedRuns = 0;
  uint64_t DegradedRuns = 0;
};
std::string encodeDone(const DoneMsg &M);
bool parseDone(const std::string &Payload, DoneMsg &Out);

/// Error payload.
struct ErrorMsg {
  std::string Code; ///< One of errc::*.
  std::string Message;
};
std::string encodeError(const std::string &Code, const std::string &Message);
bool parseError(const std::string &Payload, ErrorMsg &Out);

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_PROTOCOL_H

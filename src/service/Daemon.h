//===- service/Daemon.h - Streaming profiling-as-a-service ------*- C++-*-===//
///
/// \file
/// algoprofd's engine: a persistent daemon that accepts profiling jobs
/// over a Unix-domain socket (service/Protocol.h) and multiplexes any
/// number of concurrent sessions onto ONE shared work-stealing pool.
/// Each accepted session compiles through the shared prof::CompileCache
/// (identical source across sessions compiles once), enqueues its runs
/// via parallel::SweepEngine::enqueueSweep, streams a RunDelta frame as
/// each run merges — strictly in run-index order — and finishes with
/// the complete algoprof-profile/2 JSON, byte-identical to what the
/// serial CLI prints for the same program + seeds (the sweep engine's
/// determinism guarantee, now load-bearing for a service).
///
/// Admission control reuses the budget machinery instead of inventing
/// a scheduler: a per-daemon SessionQuota caps runs per session,
/// heap-byte budgets, deadlines, and retry attempts (requests beyond a
/// cap are rejected `quota-exceeded`; unlimited requests are clamped
/// down to the cap), and MaxSessions bounds concurrency (`too-many-
/// sessions`). Faults arm per session through SessionOptions::Faults —
/// nothing is process-global, so one session's injected io failure
/// cannot leak into a neighbor's stream.
///
/// Observability: a minimal HTTP endpoint (127.0.0.1, `GET /metrics`)
/// serves obs::prometheusText of the live registry — meaningful
/// mid-flight because pool workers and session threads publish through
/// obs::flushThisThread — including the service counters
/// sessions_accepted / sessions_rejected / sessions_completed /
/// bytes_streamed. See docs/service.md.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_DAEMON_H
#define ALGOPROF_SERVICE_DAEMON_H

#include "core/CompileCache.h"
#include "parallel/JobSystem.h"
#include "service/Protocol.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace algoprof {
namespace service {

/// Per-session admission caps. Zero always means "no cap".
struct SessionQuota {
  uint64_t MaxRuns = 0;        ///< Seeds/runs per job.
  uint64_t MaxSourceBytes = 0; ///< Inline source size.
  /// Heap-byte ceiling per run. A job asking for more is rejected; a
  /// job asking for unlimited (0) is clamped down to the cap, so no
  /// admitted run can out-allocate the daemon.
  uint64_t MaxHeapBytes = 0;
  uint64_t MaxRunDeadlineMs = 0; ///< Same clamp-or-reject rule.
  uint64_t MaxAttempts = 0;      ///< Retry executions per run.
};

struct DaemonOptions {
  std::string SocketPath; ///< Unix-domain socket to listen on.
  /// Worker threads of the one shared pool (0 = hardware concurrency).
  unsigned Workers = 0;
  /// Concurrent sessions admitted; further connections are rejected
  /// with errc::TooManySessions. 0 = unlimited.
  size_t MaxSessions = 0;
  /// Largest Job frame payload accepted (errc::OversizedFrame above).
  size_t MaxFrameBytes = 1u << 20;
  /// Receive timeout while reading the Job frame: a client that
  /// connects and stalls mid-frame is dropped as truncated instead of
  /// pinning a session thread forever.
  unsigned ReadTimeoutMs = 5000;
  /// /metrics HTTP port on 127.0.0.1: -1 disables the endpoint,
  /// 0 binds an ephemeral port (read it back via metricsPort()).
  int MetricsPort = -1;
  SessionQuota Quota;
};

class Daemon {
public:
  /// Exact per-daemon service totals (the obs counters aggregate the
  /// same events process-wide; tests that run several daemons in one
  /// binary assert on these instead).
  struct Stats {
    uint64_t Accepted = 0;
    uint64_t Rejected = 0;
    uint64_t Completed = 0;
    uint64_t BytesStreamed = 0;
  };

  explicit Daemon(DaemonOptions Opts);
  ~Daemon(); ///< Calls stop().

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the sockets and spawns the accept / metrics threads.
  /// Returns false with a description in \p Err (socket path too long,
  /// bind failure, ...). Call at most once.
  bool start(std::string &Err);

  /// Stops accepting, shuts down every in-flight session's socket,
  /// joins all threads, and removes the socket file. Idempotent.
  void stop();

  /// The bound /metrics port (0 until start() with MetricsPort >= 0).
  int metricsPort() const { return BoundMetricsPort; }

  Stats stats() const;

  const DaemonOptions &options() const { return Opts; }

private:
  struct Session {
    int Fd = -1;
    std::thread T;
    std::atomic<bool> Finished{false};
  };

  void acceptLoop();
  void metricsLoop();
  void handleSession(Session &S);
  /// Sends an Error frame, counts the rejection, and returns false
  /// (so call sites read `return reject(...)`).
  bool reject(int Fd, const char *Code, const std::string &Message);
  /// Joins and erases every finished session. Caller holds SessionsMu.
  void reapLocked();

  DaemonOptions Opts;
  parallel::JobSystem Pool;
  prof::CompileCache Cache;

  int ListenFd = -1;
  int MetricsFd = -1;
  int BoundMetricsPort = 0;
  std::thread AcceptThread;
  std::thread MetricsThread;
  std::atomic<bool> Stopping{false};
  bool Started = false;

  std::mutex SessionsMu;
  std::list<std::unique_ptr<Session>> Sessions; ///< Under SessionsMu.
  std::atomic<uint64_t> NextSessionId{1};

  std::atomic<uint64_t> StatAccepted{0};
  std::atomic<uint64_t> StatRejected{0};
  std::atomic<uint64_t> StatCompleted{0};
  std::atomic<uint64_t> StatBytes{0};
};

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_DAEMON_H

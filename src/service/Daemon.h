//===- service/Daemon.h - Streaming profiling-as-a-service ------*- C++-*-===//
///
/// \file
/// algoprofd's engine: a persistent daemon that accepts profiling jobs
/// over a Unix-domain socket — and, when configured, an authenticated
/// TCP listener — and multiplexes any number of concurrent sessions
/// onto ONE shared work-stealing pool. Each accepted session compiles
/// through the shared prof::CompileCache, enqueues its runs via
/// parallel::SweepEngine::enqueueSweep, streams a RunDelta frame as
/// each run merges — strictly in run-index order; under wire v2 the
/// deltas also carry incremental repetition-tree counts and refreshed
/// fitted-curve estimates — and finishes with the complete
/// algoprof-profile/2 JSON, byte-identical to what the serial CLI
/// prints for the same program + seeds (the sweep engine's determinism
/// guarantee, now load-bearing for a service).
///
/// Hardening (stage 2):
///  - TCP transport (`DaemonOptions::ListenAddress`) gated by a shared
///    token (`AuthTokenFile`, constant-time compare; errc::AuthFailed).
///    The Unix socket stays the default and needs no token.
///  - Durable queue: with `JournalPath` set, accepted jobs hit an
///    on-disk write-ahead log before running (service/Journal.h) and
///    are replayed after a restart; results are retained in memory so
///    a reconnecting client `resume=<session>`s into the byte-identical
///    stream (determinism makes replay idempotent).
///  - Backpressure: deltas go through a bounded per-session
///    service/SendBuffer.h instead of blocking sends — a slow client
///    sheds advisory deltas (or is disconnected, per SlowClient
///    policy) and can never stall a pool worker; the final Profile and
///    Done frames always block until written, so the authoritative
///    document never degrades.
///
/// Hardening (stage 3):
///  - Delta cursor: `resume=` + `from-delta=k` re-streams only deltas
///    k..n (Accepted echoes `resumed-from=`), so a client that
///    reconnects after seeing k deltas never observes one twice.
///  - Journal compaction: the WAL is rewritten (tmp + fdatasync +
///    rename, crash-safe) keeping only pending records, on a size
///    threshold (CompactBytes) and/or a timer (CompactIntervalMs) —
///    its size stays bounded across any crash/restart loop.
///  - Retained-result eviction: the in-memory replay store is bounded
///    by bytes (RetainBytes, oldest-completed first) and TTL
///    (RetainSecs, injectable clock); an evicted session answers
///    resume with errc::ResultEvicted instead of hanging.
///  - Graceful drain: drain() stops accepting and lets in-flight
///    sessions finish and flush within a deadline (SIGTERM path of
///    algoprofd); stop() remains the forceful teardown.
///  - Liveness/readiness: GET /healthz and /readyz next to /metrics
///    (ready = accepting and the journal is writable).
///
/// Admission control reuses the budget machinery instead of inventing
/// a scheduler: a per-daemon SessionQuota caps runs per session,
/// heap-byte budgets, deadlines, and retry attempts (requests beyond a
/// cap are rejected `quota-exceeded`; unlimited requests are clamped
/// down to the cap), and MaxSessions bounds concurrency (`too-many-
/// sessions`). Faults arm per session through SessionOptions::Faults —
/// nothing is process-global, so one session's injected io failure
/// cannot leak into a neighbor's stream.
///
/// Observability: a minimal HTTP endpoint (`GET /metrics`, bind
/// address configurable; non-loopback requires the auth token file to
/// exist so an exposed daemon is never token-less) serves
/// obs::prometheusText of the live registry — meaningful mid-flight
/// because pool workers and session threads publish through
/// obs::flushThisThread — including sessions_accepted / rejected /
/// completed, bytes_streamed, deltas_streamed, deltas_dropped,
/// jobs_replayed, and auth_failures. See docs/service.md.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SERVICE_DAEMON_H
#define ALGOPROF_SERVICE_DAEMON_H

#include "core/CompileCache.h"
#include "parallel/JobSystem.h"
#include "service/Journal.h"
#include "service/Protocol.h"
#include "service/SendBuffer.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace algoprof {
namespace service {

/// Per-session admission caps. Zero always means "no cap".
struct SessionQuota {
  uint64_t MaxRuns = 0;        ///< Seeds/runs per job.
  uint64_t MaxSourceBytes = 0; ///< Inline source size.
  /// Heap-byte ceiling per run. A job asking for more is rejected; a
  /// job asking for unlimited (0) is clamped down to the cap, so no
  /// admitted run can out-allocate the daemon.
  uint64_t MaxHeapBytes = 0;
  uint64_t MaxRunDeadlineMs = 0; ///< Same clamp-or-reject rule.
  uint64_t MaxAttempts = 0;      ///< Retry executions per run.
};

struct DaemonOptions {
  std::string SocketPath; ///< Unix-domain socket to listen on.
  /// Optional TCP listener, "host:port" (IPv4; port 0 = ephemeral,
  /// read back via listenPort()). Requires AuthTokenFile — every TCP
  /// job must present the token in its `auth=` line.
  std::string ListenAddress;
  /// File whose first line is the shared auth token (compared in
  /// constant time). Required for TCP and non-loopback /metrics.
  std::string AuthTokenFile;
  /// Write-ahead journal for the durable job queue; empty disables
  /// durability (jobs die with the daemon, resume is rejected).
  std::string JournalPath;
  /// Worker threads of the one shared pool (0 = hardware concurrency).
  unsigned Workers = 0;
  /// Concurrent sessions admitted; further connections are rejected
  /// with errc::TooManySessions. 0 = unlimited.
  size_t MaxSessions = 0;
  /// Largest Job frame payload accepted (errc::OversizedFrame above).
  size_t MaxFrameBytes = 1u << 20;
  /// Receive timeout while reading the Job frame: a client that
  /// connects and stalls mid-frame is dropped as truncated instead of
  /// pinning a session thread forever.
  unsigned ReadTimeoutMs = 5000;
  /// /metrics HTTP port: -1 disables the endpoint, 0 binds an
  /// ephemeral port (read it back via metricsPort()).
  int MetricsPort = -1;
  /// /metrics bind address. Non-loopback requires AuthTokenFile.
  std::string MetricsAddress = "127.0.0.1";
  /// Per-session pending send-buffer cap for RunDelta frames (bytes
  /// beyond what the kernel accepts immediately).
  size_t MaxSendBufferBytes = 1u << 20;
  /// What to do with a client too slow to drain its delta stream.
  SendBuffer::Policy SlowClient = SendBuffer::Policy::DropDeltas;
  /// Test hook: kernel SO_SNDBUF for session sockets (0 = default).
  /// Shrinking it makes backpressure reproducible in tests.
  int SessionSendBufBytes = 0;
  /// Journal compaction size threshold: after a completion record, a
  /// WAL larger than this is rewritten keeping only pending records
  /// (0 = no size-triggered compaction).
  uint64_t CompactBytes = 0;
  /// Periodic compaction interval in milliseconds (0 = none). Either
  /// trigger keeps the WAL bounded by the pending set plus one
  /// threshold's worth of completed churn.
  uint64_t CompactIntervalMs = 0;
  /// Retained-result store byte budget: total bytes of stored delta
  /// payloads + profile documents across sessions. When a completing
  /// session pushes the store past this, the oldest-completed results
  /// are evicted (resume then answers errc::ResultEvicted). 0 = no
  /// byte bound.
  uint64_t RetainBytes = 0;
  /// Retained-result TTL in seconds (0 = no TTL): results older than
  /// this are evicted by the maintenance thread or on access.
  uint64_t RetainSecs = 0;
  /// Injectable monotonic clock in milliseconds, for deterministic
  /// TTL-eviction tests. Defaults to std::chrono::steady_clock.
  std::function<uint64_t()> NowMs;
  SessionQuota Quota;
};

class Daemon {
public:
  /// Exact per-daemon service totals (the obs counters aggregate the
  /// same events process-wide; tests that run several daemons in one
  /// binary assert on these instead).
  struct Stats {
    uint64_t Accepted = 0;
    uint64_t Rejected = 0;
    uint64_t Completed = 0;
    uint64_t BytesStreamed = 0;
    uint64_t DeltasStreamed = 0;
    uint64_t DeltasDropped = 0;
    uint64_t JobsReplayed = 0;
    uint64_t AuthFailures = 0;
    uint64_t SlowDisconnects = 0;
    uint64_t ResultsEvicted = 0; ///< Retained results dropped (bytes/TTL).
    uint64_t Compactions = 0;    ///< Journal rewrites that completed.
    uint64_t HealthChecks = 0;   ///< /healthz + /readyz probes answered.
    /// Peak pending send-buffer occupancy over all sessions so far;
    /// bounded by MaxSendBufferBytes by construction.
    uint64_t SendBufHighWater = 0;
  };

  explicit Daemon(DaemonOptions Opts);
  ~Daemon(); ///< Calls stop().

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the sockets, loads the journal and re-runs its pending
  /// jobs, and spawns the accept / metrics threads. Returns false with
  /// a description in \p Err (socket path too long, bind failure,
  /// missing token file, ...). Call at most once.
  bool start(std::string &Err);

  /// Stops accepting, shuts down every in-flight session's socket,
  /// joins all threads, and removes the socket file. Idempotent.
  void stop();

  /// Graceful drain: stops accepting new connections immediately, then
  /// waits up to \p TimeoutMs for every in-flight session to finish
  /// naturally — jobs run to completion, control frames flush, results
  /// land in the journal/result store. Returns true when the daemon
  /// drained fully within the deadline (call stop() afterwards either
  /// way; after a full drain it has nothing left to force).
  bool drain(uint64_t TimeoutMs);

  /// The bound /metrics port (0 until start() with MetricsPort >= 0).
  int metricsPort() const { return BoundMetricsPort; }

  /// The bound TCP port (0 unless ListenAddress was set).
  int listenPort() const { return BoundListenPort; }

  Stats stats() const;

  const DaemonOptions &options() const { return Opts; }

private:
  struct Session {
    int Fd = -1; ///< -1 for journal-replay sessions (no socket).
    bool Tcp = false;
    std::thread T;
    std::atomic<bool> Finished{false};
    /// Journal replay: the job to re-run, no client attached.
    uint64_t ReplayId = 0;
    std::string ReplayPayload;
  };

  /// Everything needed to re-stream a journaled session to a resuming
  /// client. Delta payloads are stored v2-encoded; the final document
  /// is the byte-exact Profile frame payload.
  struct Retained {
    bool Done = false;
    const char *FailCode = nullptr; ///< errc::* when the job cannot run.
    std::string FailMessage;
    uint64_t Runs = 0;
    std::vector<std::string> DeltaPayloads;
    std::string ProfileJson;
    std::string DonePayload;
    /// Eviction bookkeeping: payload bytes this entry holds, the
    /// completion sequence number (eviction order — deterministic even
    /// when a coarse injected clock stamps several completions with the
    /// same time), and the completion timestamp for the TTL bound.
    uint64_t Bytes = 0;
    uint64_t Seq = 0;
    uint64_t CompletedAtMs = 0;
    /// Tombstone: payloads were evicted; resume answers
    /// errc::ResultEvicted (never hangs, never says unknown-session).
    bool Evicted = false;
  };

  void acceptOn(int Fd, bool Tcp);
  void metricsLoop();
  void handleSession(Session &S);
  void replayJob(Session &S);
  /// The shared execution path for live and replayed jobs: runs \p R
  /// against \p CP on the shared pool, streaming through \p Buf (null
  /// for replay) and retaining results under \p Id when journaling.
  /// \p V2 selects rich deltas on the wire.
  void runCompiled(const prof::CompiledProgram &CP, const JobRequest &R,
                   const resilience::FaultPlan &Faults, uint64_t Id,
                   uint64_t NumRuns, bool V2, SendBuffer *Buf);
  /// Streams a retained session's results to a resuming client,
  /// skipping the first \p FromDelta delta payloads (the cursor).
  bool serveResume(SendBuffer &Buf, uint64_t Id, uint64_t FromDelta);
  /// TTL eviction + periodic compaction ticks.
  void maintenanceLoop();
  /// Monotonic milliseconds via Opts.NowMs or steady_clock.
  uint64_t nowMs() const;
  /// Tombstones one retained entry (caller holds RetainedMu).
  void evictLocked(Retained &RR);
  /// Evicts every Done entry older than the TTL (caller holds
  /// RetainedMu). \p Now is nowMs().
  void evictExpiredLocked(uint64_t Now);
  /// Stores a finished session's results under \p Id and applies the
  /// byte-budget eviction policy.
  void retainResult(uint64_t Id, uint64_t NumRuns,
                    std::vector<std::string> Deltas, std::string Doc,
                    std::string DonePayload);
  /// Compacts the journal when forced or past the size threshold.
  void maybeCompact(bool Force);
  /// Applies quotas to \p R in place (clamping unlimited requests).
  /// Returns a non-empty rejection message when a cap is exceeded.
  std::string applyQuotas(JobRequest &R) const;
  /// Sends an Error frame, counts the rejection, and returns false
  /// (so call sites read `return reject(...)`).
  bool reject(int Fd, const char *Code, const std::string &Message);
  /// Joins and erases every finished session. Caller holds SessionsMu.
  void reapLocked();
  /// Folds a session's send-buffer stats into the daemon's. Drop and
  /// disconnect counts are drained from \p Buf (take-semantics), so
  /// folding both mid-stream — making backpressure observable in
  /// stats() before the blocking Profile send — and again at session
  /// end never double-counts.
  void foldSendStats(SendBuffer &Buf);

  DaemonOptions Opts;
  parallel::JobSystem Pool;
  prof::CompileCache Cache;
  Journal Wal;
  std::string AuthToken;

  int ListenFd = -1;
  int TcpListenFd = -1;
  int MetricsFd = -1;
  int BoundMetricsPort = 0;
  int BoundListenPort = 0;
  std::thread AcceptThread;
  std::thread TcpAcceptThread;
  std::thread MetricsThread;
  std::thread MaintThread;
  std::mutex MaintMu;
  std::condition_variable MaintCv; ///< Wakes the maintenance loop early.
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Draining{false}; ///< drain(): no longer accepting.
  bool Started = false;

  std::mutex SessionsMu;
  std::list<std::unique_ptr<Session>> Sessions; ///< Under SessionsMu.
  std::atomic<uint64_t> NextSessionId{1};

  std::mutex RetainedMu;
  std::condition_variable RetainedCv; ///< Signaled when a job finishes.
  std::map<uint64_t, Retained> RetainedResults; ///< Under RetainedMu.
  uint64_t RetainedBytes = 0; ///< Store occupancy; under RetainedMu.
  uint64_t RetainSeq = 0;     ///< Completion ordinal; under RetainedMu.

  std::atomic<uint64_t> StatAccepted{0};
  std::atomic<uint64_t> StatRejected{0};
  std::atomic<uint64_t> StatCompleted{0};
  std::atomic<uint64_t> StatBytes{0};
  std::atomic<uint64_t> StatDeltasStreamed{0};
  std::atomic<uint64_t> StatDeltasDropped{0};
  std::atomic<uint64_t> StatJobsReplayed{0};
  std::atomic<uint64_t> StatAuthFailures{0};
  std::atomic<uint64_t> StatSlowDisconnects{0};
  std::atomic<uint64_t> StatSendBufHighWater{0};
  std::atomic<uint64_t> StatResultsEvicted{0};
  std::atomic<uint64_t> StatCompactions{0};
  std::atomic<uint64_t> StatHealthChecks{0};
};

} // namespace service
} // namespace algoprof

#endif // ALGOPROF_SERVICE_DAEMON_H

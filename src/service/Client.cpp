//===- service/Client.cpp -------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

/// Connects to the daemon's Unix socket; -1 with \p Err on failure.
int connectTo(const std::string &SocketPath, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + SocketPath + "'";
    return -1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = std::string("connect '") + SocketPath +
          "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// No client-side payload cap: the Profile frame is as large as the
/// profile. The daemon is trusted; a hostile peer is not this layer's
/// threat model.
constexpr size_t MaxReplyPayload = 1u << 28;

} // namespace

bool service::runJob(const std::string &SocketPath, const JobRequest &Job,
                     StreamResult &Out, std::string &Err,
                     const std::function<void(const RunDeltaMsg &)> &OnDelta) {
  Out = StreamResult();
  int Fd = connectTo(SocketPath, Err);
  if (Fd < 0)
    return false;
  if (!sendFrame(Fd, FrameType::Job, encodeJobRequest(Job))) {
    Err = "connection dropped while sending the job";
    ::close(Fd);
    return false;
  }
  bool Transport = true;
  for (;;) {
    Frame F;
    ReadStatus RS = readFrame(Fd, F, MaxReplyPayload);
    if (RS == ReadStatus::Eof) {
      // Clean close: valid after Done or Error, truncated otherwise.
      if (!Out.HaveDone && !Out.HaveError) {
        Err = "stream ended before done/error";
        Transport = false;
      }
      break;
    }
    if (RS != ReadStatus::Ok) {
      Err = "broken reply stream";
      Transport = false;
      break;
    }
    switch (F.Type) {
    case FrameType::Accepted:
      if (!parseAccepted(F.Payload, Out.Acceptance)) {
        Err = "bad accepted payload";
        Transport = false;
      }
      Out.Accepted = true;
      break;
    case FrameType::RunDelta: {
      RunDeltaMsg M;
      if (!parseRunDelta(F.Payload, M)) {
        Err = "bad run-delta payload";
        Transport = false;
        break;
      }
      if (OnDelta)
        OnDelta(M);
      Out.Deltas.push_back(std::move(M));
      break;
    }
    case FrameType::Profile:
      Out.ProfileJson = std::move(F.Payload);
      Out.HaveProfile = true;
      break;
    case FrameType::Done:
      if (!parseDone(F.Payload, Out.Done)) {
        Err = "bad done payload";
        Transport = false;
      }
      Out.HaveDone = true;
      break;
    case FrameType::Error:
      if (!parseError(F.Payload, Out.Error)) {
        Err = "bad error payload";
        Transport = false;
      }
      Out.HaveError = true;
      break;
    case FrameType::Job:
      Err = "daemon sent a job frame";
      Transport = false;
      break;
    }
    if (!Transport || Out.HaveDone || Out.HaveError)
      break;
  }
  ::close(Fd);
  return Transport;
}

bool service::sendRaw(const std::string &SocketPath,
                      const std::string &RawBytes, Frame &Reply,
                      bool &GotReply, std::string &Err) {
  GotReply = false;
  int Fd = connectTo(SocketPath, Err);
  if (Fd < 0)
    return false;
  const char *P = RawBytes.data();
  size_t N = RawBytes.size();
  while (N > 0) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      break; // Daemon may already have rejected and closed; keep going.
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  // Half-close so a daemon waiting for more bytes sees EOF now rather
  // than its read timeout — the truncated-frame tests rely on this.
  ::shutdown(Fd, SHUT_WR);
  GotReply = readFrame(Fd, Reply, MaxReplyPayload) == ReadStatus::Ok;
  ::close(Fd);
  return true;
}

//===- service/Client.cpp -------------------------------------------------===//

#include "service/Client.h"

#include "service/Io.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/time.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

/// Connects to the daemon's Unix socket; -1 with \p Err on failure.
int connectUnix(const std::string &SocketPath, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path empty or too long: '" + SocketPath + "'";
    return -1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = std::string("connect '") + SocketPath +
          "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectTcp(const std::string &Host, uint16_t Port, std::string &Err) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "'" + Host + "' is not an IPv4 address";
    return -1;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect " + Host + ":" + std::to_string(Port) + ": " +
          std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

/// No client-side payload cap: the Profile frame is as large as the
/// profile. The daemon is trusted; a hostile peer is not this layer's
/// threat model.
constexpr size_t MaxReplyPayload = 1u << 28;

void setTransportError(TypedResult &R, const std::string &Msg) {
  R.Error.Code = "transport";
  R.Error.Message = Msg;
  R.Error.Transport = true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session(Session &&O) noexcept
    : Fd(O.Fd), SubmitError(std::move(O.SubmitError)),
      Delta(std::move(O.Delta)) {
  O.Fd = -1;
}

Session &Session::operator=(Session &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = O.Fd;
    SubmitError = std::move(O.SubmitError);
    Delta = std::move(O.Delta);
    O.Fd = -1;
  }
  return *this;
}

Session::~Session() {
  if (Fd >= 0)
    ::close(Fd);
}

Session &Session::onDelta(std::function<void(const RunDeltaMsg &)> Cb) {
  Delta = std::move(Cb);
  return *this;
}

TypedResult Session::wait() {
  TypedResult R;
  if (Fd < 0) {
    setTransportError(R, SubmitError.empty() ? "session already consumed"
                                             : SubmitError);
    return R;
  }
  bool HaveDone = false, HaveError = false;
  for (;;) {
    Frame F;
    ReadStatus RS = readFrame(Fd, F, MaxReplyPayload);
    if (RS == ReadStatus::Eof) {
      // Clean close: valid after Done or Error, truncated otherwise.
      if (!HaveDone && !HaveError)
        setTransportError(R, "stream ended before done/error");
      break;
    }
    if (RS != ReadStatus::Ok) {
      setTransportError(R, "broken reply stream");
      break;
    }
    switch (F.Type) {
    case FrameType::Accepted:
      if (!parseAccepted(F.Payload, R.Acceptance)) {
        setTransportError(R, "bad accepted payload");
        break;
      }
      R.Accepted = true;
      break;
    case FrameType::RunDelta: {
      RunDeltaMsg M;
      if (!parseRunDelta(F.Payload, M)) {
        setTransportError(R, "bad run-delta payload");
        break;
      }
      if (Delta)
        Delta(M);
      R.Deltas.push_back(std::move(M));
      break;
    }
    case FrameType::Profile:
      R.ProfileJson = std::move(F.Payload);
      R.HaveProfile = true;
      break;
    case FrameType::Done:
      if (!parseDone(F.Payload, R.Summary)) {
        setTransportError(R, "bad done payload");
        break;
      }
      HaveDone = true;
      break;
    case FrameType::Error: {
      ErrorMsg E;
      if (!parseError(F.Payload, E)) {
        setTransportError(R, "bad error payload");
        break;
      }
      R.Error.Code = E.Code;
      R.Error.Message = E.Message;
      HaveError = true;
      break;
    }
    case FrameType::Job:
      setTransportError(R, "daemon sent a job frame");
      break;
    }
    if (R.Error.Transport || HaveDone || HaveError)
      break;
  }
  ::close(Fd);
  Fd = -1;
  R.Ok = R.Accepted && R.HaveProfile && HaveDone && !R.Error.any();
  return R;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

Client Client::unixSocket(std::string Path) {
  Client C;
  C.Tcp = false;
  C.PathOrHost = std::move(Path);
  return C;
}

Client Client::tcp(std::string Host, uint16_t Port, std::string AuthToken) {
  Client C;
  C.Tcp = true;
  C.PathOrHost = std::move(Host);
  C.Port = Port;
  C.Token = std::move(AuthToken);
  return C;
}

Session Client::submit(const JobSpec &Spec) const {
  return submitTimed(Spec, 0);
}

Session Client::submitTimed(const JobSpec &Spec, uint64_t TimeoutMs) const {
  Session S;
  std::string Err;
  S.Fd = Tcp ? connectTcp(PathOrHost, Port, Err)
             : connectUnix(PathOrHost, Err);
  if (S.Fd < 0) {
    S.SubmitError = Err;
    return S;
  }
  if (TimeoutMs > 0) {
    timeval Tv{};
    Tv.tv_sec = static_cast<time_t>(TimeoutMs / 1000);
    Tv.tv_usec = static_cast<suseconds_t>((TimeoutMs % 1000) * 1000);
    ::setsockopt(S.Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    ::setsockopt(S.Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  }
  JobSpec Job = Spec;
  if (Tcp && Job.Auth.empty())
    Job.Auth = Token;
  if (!sendFrame(S.Fd, FrameType::Job, encodeJobRequest(Job))) {
    ::close(S.Fd);
    S.Fd = -1;
    S.SubmitError = "connection dropped while sending the job";
  }
  return S;
}

TypedResult
Client::run(const JobSpec &Spec, const RetryPolicy &Policy,
            std::function<void(const RunDeltaMsg &)> OnDelta) const {
  std::mt19937_64 Jitter(Policy.JitterSeed);
  auto Sleep = [&](uint64_t Ms) {
    if (Ms == 0)
      return;
    if (Policy.SleepMs)
      Policy.SleepMs(Ms);
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
  };

  // The resume cursor: the session we were accepted into (or were
  // asked to resume) and how many of its deltas we have observed so
  // far, across every attempt. Deltas stream strictly in order and a
  // resume re-streams from the cursor, so counting them is exact.
  uint64_t Sid = Spec.Resume;
  uint64_t Cursor = Spec.FromDelta;
  std::vector<RunDeltaMsg> All;

  for (unsigned Attempt = 0;; ++Attempt) {
    JobSpec Job = Spec;
    if (Sid != 0) {
      Job.Resume = Sid;
      Job.FromDelta = Cursor;
      Job.Protocol = 2; // resume is a v2 feature
      Job.Corpus.clear();
      Job.Source.clear();
    }
    Session S = submitTimed(Job, Policy.TimeoutMs);
    S.onDelta([&](const RunDeltaMsg &M) {
      ++Cursor;
      if (OnDelta)
        OnDelta(M);
    });
    TypedResult R = S.wait();
    for (auto &D : R.Deltas)
      All.push_back(std::move(D));
    if (R.Accepted && Sid == 0)
      Sid = R.Acceptance.Session;
    if (R.Ok || !R.Error.Transport || Attempt >= Policy.ConnectRetries) {
      R.Deltas = std::move(All);
      R.TransportRetries = Attempt;
      return R;
    }
    uint64_t Delay = Policy.BackoffInitialMs;
    for (unsigned I = 0; I < Attempt && Delay < Policy.BackoffMaxMs; ++I)
      Delay *= 2;
    if (Delay > Policy.BackoffMaxMs)
      Delay = Policy.BackoffMaxMs;
    if (Delay > 1)
      Delay = Delay / 2 + Jitter() % (Delay - Delay / 2 + 1);
    Sleep(Delay);
  }
}

//===----------------------------------------------------------------------===//
// Raw test hook
//===----------------------------------------------------------------------===//

bool service::sendRaw(const std::string &SocketPath,
                      const std::string &RawBytes, Frame &Reply,
                      bool &GotReply, std::string &Err) {
  GotReply = false;
  int Fd = connectUnix(SocketPath, Err);
  if (Fd < 0)
    return false;
  // A short write here is fine: the daemon may already have rejected
  // and closed, and we still want to read that reply. io::writeFull
  // keeps pushing until the peer is really gone.
  io::writeFull(Fd, RawBytes.data(), RawBytes.size());
  // Half-close so a daemon waiting for more bytes sees EOF now rather
  // than its read timeout — the truncated-frame tests rely on this.
  ::shutdown(Fd, SHUT_WR);
  GotReply = readFrame(Fd, Reply, MaxReplyPayload) == ReadStatus::Ok;
  ::close(Fd);
  return true;
}

//===- frontend/Types.cpp -------------------------------------------------===//

#include "frontend/Types.h"

#include <cassert>

using namespace algoprof;

TypeFE TypeFE::elementType() const {
  assert(ArrayDims > 0 && "elementType of non-array");
  TypeFE T = *this;
  --T.ArrayDims;
  return T;
}

std::string TypeFE::str() const {
  std::string Base;
  switch (Kind) {
  case TypeKindFE::Int:
    Base = "int";
    break;
  case TypeKindFE::Boolean:
    Base = "boolean";
    break;
  case TypeKindFE::Void:
    Base = "void";
    break;
  case TypeKindFE::Null:
    Base = "null";
    break;
  case TypeKindFE::Class:
    Base = ClassName;
    break;
  case TypeKindFE::Error:
    Base = "<error>";
    break;
  }
  for (int I = 0; I < ArrayDims; ++I)
    Base += "[]";
  return Base;
}

//===- frontend/Sema.h - MiniJ semantic analysis ----------------*- C++-*-===//
///
/// \file
/// Name resolution and type checking for MiniJ. Sema annotates the AST in
/// place (resolved symbols, expression types, local slots, loop ids) and
/// injects the implicit root class Object. The bytecode compiler consumes
/// only sema-checked programs.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FRONTEND_SEMA_H
#define ALGOPROF_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"

namespace algoprof {

/// Runs semantic analysis over \p P.
///
/// \returns true when the program is well-formed. Errors are reported via
/// \p Diags; on failure the AST annotations are unspecified.
bool runSema(Program &P, DiagnosticEngine &Diags);

/// Absolute field slot of \p Field within objects of its owner class
/// hierarchy (inherited fields occupy a prefix of the layout). Valid only
/// after runSema succeeded.
int fieldLayoutSlot(const ClassDecl &Owner, const FieldDecl &Field);

/// Total number of field slots in instances of \p Class (own + inherited).
int classLayoutSize(const ClassDecl &Class);

/// True when \p Sub equals \p Super or inherits from it (transitively).
bool isSubclassOf(const ClassDecl *Sub, const ClassDecl *Super);

} // namespace algoprof

#endif // ALGOPROF_FRONTEND_SEMA_H

//===- frontend/Ast.cpp ---------------------------------------------------===//

#include "frontend/Ast.h"

using namespace algoprof;

Expr::~Expr() = default;
Stmt::~Stmt() = default;

const FieldDecl *ClassDecl::findOwnField(const std::string &FieldName) const {
  for (const auto &F : Fields)
    if (F->Name == FieldName)
      return F.get();
  return nullptr;
}

const MethodDecl *
ClassDecl::findOwnMethod(const std::string &MethodName) const {
  for (const auto &M : Methods)
    if (!M->IsCtor && M->Name == MethodName)
      return M.get();
  return nullptr;
}

const MethodDecl *ClassDecl::findCtor() const {
  for (const auto &M : Methods)
    if (M->IsCtor)
      return M.get();
  return nullptr;
}

const ClassDecl *Program::findClass(const std::string &Name) const {
  for (const auto &C : Classes)
    if (C->Name == Name)
      return C.get();
  return nullptr;
}

//===- frontend/Parser.cpp ------------------------------------------------===//

#include "frontend/Parser.h"

#include "obs/Obs.h"

#include <algorithm>
#include <cassert>

using namespace algoprof;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && "token stream must end with EOF");
}

const Token &Parser::peek(int Ahead) const {
  size_t Index = Pos + static_cast<size_t>(Ahead);
  if (Index >= Tokens.size())
    return Tokens.back();
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::synchronizeToStmtBoundary() {
  while (!check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace))
      return;
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType() const {
  return check(TokenKind::KW_Int) || check(TokenKind::KW_Boolean) ||
         check(TokenKind::KW_Void) || check(TokenKind::Identifier);
}

/// Decides whether the statement at the cursor is a variable declaration.
/// Primitive-type starts are declarations; an identifier start needs
/// lookahead to separate 'Node x;' / 'Node[] x;' / 'Node<T> x;' from
/// expressions like 'n = ...', 'a[i] = ...', or 'n < m'.
bool Parser::looksLikeVarDecl() const {
  if (check(TokenKind::KW_Int) || check(TokenKind::KW_Boolean))
    return true;
  if (!check(TokenKind::Identifier))
    return false;
  int I = 1;
  // Optional generic argument list: skip balanced angle brackets.
  if (peek(I).is(TokenKind::Less)) {
    int Depth = 0;
    for (;;) {
      const Token &T = peek(I);
      if (T.is(TokenKind::Less)) {
        ++Depth;
      } else if (T.is(TokenKind::Greater)) {
        --Depth;
        if (Depth == 0) {
          ++I;
          break;
        }
      } else if (T.is(TokenKind::Identifier) || T.is(TokenKind::Comma) ||
                 T.is(TokenKind::LBracket) || T.is(TokenKind::RBracket) ||
                 T.is(TokenKind::KW_Int) || T.is(TokenKind::KW_Boolean)) {
        // Plausible inside a type-argument list.
      } else {
        return false; // Not a generic type; must be a comparison.
      }
      ++I;
    }
  }
  // Optional array suffix: '[' must be immediately closed to be a type.
  while (peek(I).is(TokenKind::LBracket)) {
    if (!peek(I + 1).is(TokenKind::RBracket))
      return false;
    I += 2;
  }
  return peek(I).is(TokenKind::Identifier);
}

void Parser::skipTypeArgs() {
  // Caller verified current() is '<'. Consume a balanced angle group.
  int Depth = 0;
  do {
    const Token &T = current();
    if (T.is(TokenKind::Less))
      ++Depth;
    else if (T.is(TokenKind::Greater))
      --Depth;
    else if (T.is(TokenKind::EndOfFile)) {
      Diags.error(T.Loc, "unterminated type argument list");
      return;
    }
    consume();
  } while (Depth > 0);
}

TypeFE Parser::parseBaseType() {
  if (accept(TokenKind::KW_Int))
    return TypeFE::intTy();
  if (accept(TokenKind::KW_Boolean))
    return TypeFE::boolTy();
  if (accept(TokenKind::KW_Void))
    return TypeFE::voidTy();
  if (check(TokenKind::Identifier)) {
    std::string Name = consume().Text;
    if (check(TokenKind::Less))
      skipTypeArgs(); // Erasure: drop type arguments.
    // Erase type parameters of the enclosing class to Object.
    if (std::find(CurrentTypeParams.begin(), CurrentTypeParams.end(), Name) !=
        CurrentTypeParams.end())
      return TypeFE::classTy("Object");
    return TypeFE::classTy(std::move(Name));
  }
  Diags.error(current().Loc, std::string("expected a type, found ") +
                                 tokenKindName(current().Kind));
  return TypeFE::errorTy();
}

TypeFE Parser::parseType() {
  TypeFE T = parseBaseType();
  while (check(TokenKind::LBracket) && peek(1).is(TokenKind::RBracket)) {
    consume();
    consume();
    T = TypeFE::arrayOf(std::move(T));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto P = std::make_unique<Program>();
  while (!check(TokenKind::EndOfFile)) {
    if (!check(TokenKind::KW_Class)) {
      Diags.error(current().Loc, "expected 'class' at top level");
      consume();
      continue;
    }
    if (auto C = parseClassDecl())
      P->Classes.push_back(std::move(C));
  }
  return P;
}

std::unique_ptr<ClassDecl> Parser::parseClassDecl() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KW_Class, "to begin a class declaration");
  auto C = std::make_unique<ClassDecl>();
  C->Loc = Loc;
  if (check(TokenKind::Identifier))
    C->Name = consume().Text;
  else
    expect(TokenKind::Identifier, "as the class name");

  if (accept(TokenKind::Less)) {
    do {
      if (check(TokenKind::Identifier))
        C->TypeParams.push_back(consume().Text);
      else
        expect(TokenKind::Identifier, "as a type parameter");
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Greater, "after type parameters");
  }
  CurrentTypeParams = C->TypeParams;

  if (accept(TokenKind::KW_Extends)) {
    if (check(TokenKind::Identifier)) {
      C->SuperName = consume().Text;
      if (check(TokenKind::Less))
        skipTypeArgs();
    } else {
      expect(TokenKind::Identifier, "as the superclass name");
    }
  }

  expect(TokenKind::LBrace, "to begin the class body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile))
    parseMember(*C);
  expect(TokenKind::RBrace, "to end the class body");
  CurrentTypeParams.clear();
  return C;
}

void Parser::parseMember(ClassDecl &Class) {
  SourceLoc Loc = current().Loc;
  bool IsStatic = accept(TokenKind::KW_Static);

  // Constructor: 'ClassName ( ...'.
  if (!IsStatic && check(TokenKind::Identifier) &&
      current().Text == Class.Name && peek(1).is(TokenKind::LParen)) {
    auto M = std::make_unique<MethodDecl>();
    M->IsCtor = true;
    M->ReturnType = TypeFE::voidTy();
    M->Name = consume().Text;
    M->Loc = Loc;
    expect(TokenKind::LParen, "after the constructor name");
    M->Params = parseParams();
    StmtPtr Body = parseBlock();
    M->Body.reset(static_cast<BlockStmt *>(Body.release()));
    Class.Methods.push_back(std::move(M));
    return;
  }

  TypeFE Ty = parseType();
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected a member name");
    synchronizeToStmtBoundary();
    return;
  }
  std::string Name = consume().Text;

  if (check(TokenKind::LParen)) {
    auto M = std::make_unique<MethodDecl>();
    M->IsStatic = IsStatic;
    M->ReturnType = std::move(Ty);
    M->Name = std::move(Name);
    M->Loc = Loc;
    consume(); // '('
    M->Params = parseParams();
    StmtPtr Body = parseBlock();
    M->Body.reset(static_cast<BlockStmt *>(Body.release()));
    Class.Methods.push_back(std::move(M));
    return;
  }

  if (IsStatic)
    Diags.error(Loc, "static fields are not supported in MiniJ");
  auto F = std::make_unique<FieldDecl>();
  F->DeclaredType = std::move(Ty);
  F->Name = std::move(Name);
  F->Loc = Loc;
  expect(TokenKind::Semi, "after the field declaration");
  Class.Fields.push_back(std::move(F));
}

std::vector<ParamDecl> Parser::parseParams() {
  std::vector<ParamDecl> Params;
  if (accept(TokenKind::RParen))
    return Params;
  do {
    ParamDecl P;
    P.Loc = current().Loc;
    P.DeclaredType = parseType();
    if (check(TokenKind::Identifier))
      P.Name = consume().Text;
    else
      expect(TokenKind::Identifier, "as a parameter name");
    Params.push_back(std::move(P));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::RParen, "after the parameter list");
  return Params;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LBrace, "to begin a block");
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to end the block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseStmt() {
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KW_If:
    return parseIf();
  case TokenKind::KW_While:
    return parseWhile();
  case TokenKind::KW_For:
    return parseFor();
  case TokenKind::KW_Return:
    return parseReturn();
  case TokenKind::KW_Break: {
    SourceLoc Loc = consume().Loc;
    expect(TokenKind::Semi, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KW_Continue: {
    SourceLoc Loc = consume().Loc;
    expect(TokenKind::Semi, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::Semi:
    consume();
    return nullptr;
  default:
    break;
  }

  if (looksLikeVarDecl())
    return parseVarDecl();

  SourceLoc Loc = current().Loc;
  ExprPtr E = parseExpr();
  if (!E) {
    synchronizeToStmtBoundary();
    return nullptr;
  }
  expect(TokenKind::Semi, "after the expression statement");
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseVarDecl() {
  SourceLoc Loc = current().Loc;
  TypeFE Ty = parseType();
  std::string Name;
  if (check(TokenKind::Identifier))
    Name = consume().Text;
  else
    expect(TokenKind::Identifier, "as the variable name");
  ExprPtr Init;
  if (accept(TokenKind::Assign))
    Init = parseExpr();
  expect(TokenKind::Semi, "after the variable declaration");
  return std::make_unique<VarDeclStmt>(std::move(Ty), std::move(Name),
                                       std::move(Init), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after the if condition");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (accept(TokenKind::KW_Else))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after the while condition");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = consume().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");

  StmtPtr Init;
  if (!accept(TokenKind::Semi)) {
    if (looksLikeVarDecl()) {
      Init = parseVarDecl(); // Consumes the ';'.
    } else {
      SourceLoc InitLoc = current().Loc;
      ExprPtr E = parseExpr();
      if (E)
        Init = std::make_unique<ExprStmt>(std::move(E), InitLoc);
      expect(TokenKind::Semi, "after the for-loop initializer");
    }
  }

  ExprPtr Cond;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after the for-loop condition");

  ExprPtr Update;
  if (!check(TokenKind::RParen))
    Update = parseExpr();
  expect(TokenKind::RParen, "after the for-loop update");

  StmtPtr Body = parseStmt();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Update), std::move(Body), Loc);
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = consume().Loc; // 'return'
  ExprPtr Value;
  if (!check(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "after the return statement");
  return std::make_unique<ReturnStmt>(std::move(Value), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssignment(); }

static bool isLValueExpr(const Expr *E) {
  return E && (E->kind() == ExprKind::Name ||
               E->kind() == ExprKind::FieldAccess ||
               E->kind() == ExprKind::Index);
}

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseOr();
  if (!check(TokenKind::Assign))
    return Lhs;
  SourceLoc Loc = consume().Loc;
  if (!isLValueExpr(Lhs.get())) {
    Diags.error(Loc, "left-hand side of '=' is not assignable");
  }
  ExprPtr Rhs = parseAssignment();
  return std::make_unique<AssignExpr>(std::move(Lhs), std::move(Rhs), Loc);
}

ExprPtr Parser::parseOr() {
  ExprPtr E = parseAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseAnd();
    E = std::make_unique<BinaryExpr>(BinaryOp::LogicalOr, std::move(E),
                                     std::move(Rhs), Loc);
  }
  return E;
}

ExprPtr Parser::parseAnd() {
  ExprPtr E = parseEquality();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseEquality();
    E = std::make_unique<BinaryExpr>(BinaryOp::LogicalAnd, std::move(E),
                                     std::move(Rhs), Loc);
  }
  return E;
}

ExprPtr Parser::parseEquality() {
  ExprPtr E = parseRelational();
  while (check(TokenKind::EqualEqual) || check(TokenKind::BangEqual)) {
    BinaryOp Op =
        check(TokenKind::EqualEqual) ? BinaryOp::Eq : BinaryOp::Ne;
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseRelational();
    E = std::make_unique<BinaryExpr>(Op, std::move(E), std::move(Rhs), Loc);
  }
  return E;
}

ExprPtr Parser::parseRelational() {
  ExprPtr E = parseAdditive();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEqual))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEqual))
      Op = BinaryOp::Ge;
    else
      return E;
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseAdditive();
    E = std::make_unique<BinaryExpr>(Op, std::move(E), std::move(Rhs), Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr E = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinaryOp Op = check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseMultiplicative();
    E = std::make_unique<BinaryExpr>(Op, std::move(E), std::move(Rhs), Loc);
  }
  return E;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr E = parseUnary();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      Op = BinaryOp::Rem;
    else
      return E;
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseUnary();
    E = std::make_unique<BinaryExpr>(Op, std::move(E), std::move(Rhs), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr E = parseUnary();
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(E), Loc);
  }
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr E = parseUnary();
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(E), Loc);
  }
  if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
    bool IsInc = check(TokenKind::PlusPlus);
    SourceLoc Loc = consume().Loc;
    ExprPtr Target = parseUnary();
    if (!isLValueExpr(Target.get()))
      Diags.error(Loc, "operand of prefix increment/decrement is not "
                       "assignable");
    return std::make_unique<IncDecExpr>(std::move(Target), IsInc,
                                        /*IsPrefix=*/true, Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    if (check(TokenKind::Dot)) {
      SourceLoc Loc = consume().Loc;
      if (!check(TokenKind::Identifier)) {
        expect(TokenKind::Identifier, "after '.'");
        return E;
      }
      std::string Name = consume().Text;
      if (check(TokenKind::LParen)) {
        consume();
        std::vector<ExprPtr> Args = parseArgs();
        E = std::make_unique<CallExpr>(std::move(E), std::move(Name),
                                       std::move(Args), Loc);
      } else {
        E = std::make_unique<FieldAccessExpr>(std::move(E), std::move(Name),
                                              Loc);
      }
      continue;
    }
    if (check(TokenKind::LBracket)) {
      SourceLoc Loc = consume().Loc;
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after the array index");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
      bool IsInc = check(TokenKind::PlusPlus);
      SourceLoc Loc = consume().Loc;
      if (!isLValueExpr(E.get()))
        Diags.error(Loc, "operand of postfix increment/decrement is not "
                         "assignable");
      E = std::make_unique<IncDecExpr>(std::move(E), IsInc,
                                       /*IsPrefix=*/false, Loc);
      continue;
    }
    return E;
  }
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  if (accept(TokenKind::RParen))
    return Args;
  do {
    if (ExprPtr A = parseExpr())
      Args.push_back(std::move(A));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::RParen, "after the argument list");
  return Args;
}

ExprPtr Parser::parsePrimary() {
  const Token &T = current();
  switch (T.Kind) {
  case TokenKind::IntLiteral: {
    Token Lit = consume();
    return std::make_unique<IntLitExpr>(Lit.IntValue, Lit.Loc);
  }
  case TokenKind::KW_True:
    return std::make_unique<BoolLitExpr>(true, consume().Loc);
  case TokenKind::KW_False:
    return std::make_unique<BoolLitExpr>(false, consume().Loc);
  case TokenKind::KW_Null:
    return std::make_unique<NullLitExpr>(consume().Loc);
  case TokenKind::KW_This:
    return std::make_unique<ThisExpr>(consume().Loc);
  case TokenKind::KW_New:
    return parseNew();
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close the parenthesized expression");
    return E;
  }
  case TokenKind::Identifier: {
    Token Id = consume();
    if (check(TokenKind::LParen)) {
      consume();
      std::vector<ExprPtr> Args = parseArgs();
      return std::make_unique<CallExpr>(nullptr, Id.Text, std::move(Args),
                                        Id.Loc);
    }
    return std::make_unique<NameExpr>(Id.Text, Id.Loc);
  }
  default:
    break;
  }
  Diags.error(T.Loc, std::string("expected an expression, found ") +
                         tokenKindName(T.Kind));
  if (!check(TokenKind::EndOfFile) && !check(TokenKind::Semi) &&
      !check(TokenKind::RBrace))
    consume();
  return nullptr;
}

ExprPtr Parser::parseNew() {
  SourceLoc Loc = consume().Loc; // 'new'
  TypeFE Base = parseBaseType();

  // 'new C(args)': object construction.
  if (check(TokenKind::LParen)) {
    if (Base.Kind != TypeKindFE::Class) {
      Diags.error(Loc, "cannot construct a non-class type with 'new'");
      Base = TypeFE::classTy("Object");
    }
    consume();
    std::vector<ExprPtr> Args = parseArgs();
    return std::make_unique<NewObjectExpr>(Base.ClassName, std::move(Args),
                                           Loc);
  }

  // 'new T[e0][e1]..[]..': array construction.
  std::vector<ExprPtr> Dims;
  int ExtraDims = 0;
  while (check(TokenKind::LBracket)) {
    consume();
    if (check(TokenKind::RBracket)) {
      consume();
      ++ExtraDims;
      continue;
    }
    if (ExtraDims > 0) {
      Diags.error(current().Loc,
                  "sized array dimension after an unsized dimension");
    }
    Dims.push_back(parseExpr());
    expect(TokenKind::RBracket, "after the array dimension");
  }
  if (Dims.empty()) {
    Diags.error(Loc, "array creation needs at least one sized dimension");
    Dims.push_back(std::make_unique<IntLitExpr>(0, Loc));
  }
  return std::make_unique<NewArrayExpr>(std::move(Base), std::move(Dims),
                                        ExtraDims, Loc);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> algoprof::parseMiniJ(const std::string &Source,
                                              DiagnosticEngine &Diags) {
  std::vector<Token> Tokens;
  {
    obs::ScopedSpan Span(obs::Phase::Lex);
    Lexer Lex(Source, Diags);
    Tokens = Lex.lexAll();
  }
  obs::ScopedSpan Span(obs::Phase::Parse);
  Parser P(std::move(Tokens), Diags);
  return P.parseProgram();
}

//===- frontend/Ast.h - MiniJ abstract syntax tree --------------*- C++-*-===//
///
/// \file
/// AST for MiniJ. Nodes carry hand-rolled LLVM-style kind tags for
/// dispatch (no RTTI). Semantic analysis annotates nodes in place:
/// expressions get a resolved TypeFE, name/call nodes get resolved symbol
/// references, and loops get per-method loop ids that later phases
/// (bytecode loop metadata, the index-dataflow grouping analysis) share.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FRONTEND_AST_H
#define ALGOPROF_FRONTEND_AST_H

#include "frontend/Types.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace algoprof {

class ClassDecl;
class MethodDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Kind tag for Expr subclasses.
enum class ExprKind {
  IntLit,
  BoolLit,
  NullLit,
  This,
  Name,
  Binary,
  Unary,
  Assign,
  IncDec,
  FieldAccess,
  Index,
  Call,
  NewObject,
  NewArray,
};

/// Base class of all MiniJ expressions.
class Expr {
public:
  explicit Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Expr();

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Resolved type; set by Sema.
  TypeFE Ty = TypeFE::errorTy();

private:
  ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }
};

/// 'true' or 'false'.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }
};

/// 'null'.
class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLoc Loc) : Expr(ExprKind::NullLit, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::NullLit; }
};

/// 'this'.
class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLoc Loc) : Expr(ExprKind::This, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::This; }
};

/// How Sema resolved a bare identifier expression.
enum class NameResolution {
  Unresolved,
  Local,        ///< A local variable or parameter; Slot is set.
  ImplicitField,///< A field of 'this'; OwnerClass/FieldIndex are set.
  ClassRef,     ///< A class name (only legal as a static-call base).
};

/// A bare identifier: local variable, implicit-this field, or class name.
class NameExpr : public Expr {
public:
  NameExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::Name, Loc), Name(std::move(Name)) {}
  std::string Name;

  NameResolution Resolution = NameResolution::Unresolved;
  int Slot = -1;                   ///< Local slot (Local).
  const ClassDecl *OwnerClass = nullptr; ///< Declaring class (ImplicitField
                                         ///  or ClassRef).
  int FieldIndex = -1;             ///< Index in OwnerClass field layout.
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Name; }
};

/// Binary operator kinds (logical && / || lower to short-circuit control
/// flow in the compiler but are a single node here).
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LogicalAnd,
  LogicalOr,
};

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprPtr Lhs, Rhs;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }
};

/// Unary operator kinds.
enum class UnaryOp { Neg, Not };

/// A unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }
};

/// An assignment 'target = value'. Target must be a Name, FieldAccess, or
/// Index expression (checked by Sema).
class AssignExpr : public Expr {
public:
  AssignExpr(ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Expr(ExprKind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  ExprPtr Target, Value;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Assign; }
};

/// Postfix/prefix '++'/'--' on an int lvalue.
class IncDecExpr : public Expr {
public:
  IncDecExpr(ExprPtr Target, bool IsIncrement, bool IsPrefix, SourceLoc Loc)
      : Expr(ExprKind::IncDec, Loc), Target(std::move(Target)),
        IsIncrement(IsIncrement), IsPrefix(IsPrefix) {}
  ExprPtr Target;
  bool IsIncrement;
  bool IsPrefix;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IncDec; }
};

/// 'base.name' — a field read, or '.length' on an array.
class FieldAccessExpr : public Expr {
public:
  FieldAccessExpr(ExprPtr Base, std::string Name, SourceLoc Loc)
      : Expr(ExprKind::FieldAccess, Loc), Base(std::move(Base)),
        Name(std::move(Name)) {}
  ExprPtr Base;
  std::string Name;

  bool IsArrayLength = false;            ///< Set by Sema for arr.length.
  const ClassDecl *OwnerClass = nullptr; ///< Declaring class of the field.
  int FieldIndex = -1;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FieldAccess;
  }
};

/// 'base[index]'.
class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
  ExprPtr Base, Index;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Index; }
};

/// Built-in native functions (VM intrinsics).
enum class BuiltinFn { None, Print, ReadInt, HasInput };

/// How Sema resolved a call.
enum class CallResolution {
  Unresolved,
  Static,       ///< Static method; Callee set, no receiver on stack.
  Virtual,      ///< Instance method via vtable; receiver required.
  Builtin,      ///< VM intrinsic (print/readInt/hasInput).
};

/// A call: 'f(a)' (implicit this / same-class static / builtin),
/// 'expr.m(a)' (instance), or 'ClassName.m(a)' (static).
class CallExpr : public Expr {
public:
  CallExpr(ExprPtr Receiver, std::string Name, std::vector<ExprPtr> Args,
           SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Receiver(std::move(Receiver)),
        Name(std::move(Name)), Args(std::move(Args)) {}

  /// Receiver expression; null for bare calls. For static calls through a
  /// class name the receiver is a NameExpr resolved to ClassRef and is not
  /// evaluated.
  ExprPtr Receiver;
  std::string Name;
  std::vector<ExprPtr> Args;

  CallResolution Resolution = CallResolution::Unresolved;
  BuiltinFn Builtin = BuiltinFn::None;
  const MethodDecl *Callee = nullptr;
  /// True when a bare call to an instance method needs 'this' pushed.
  bool ImplicitThis = false;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }
};

/// 'new C(args)' (type arguments, if any, were erased by the parser).
class NewObjectExpr : public Expr {
public:
  NewObjectExpr(std::string ClassName, std::vector<ExprPtr> Args,
                SourceLoc Loc)
      : Expr(ExprKind::NewObject, Loc), ClassName(std::move(ClassName)),
        Args(std::move(Args)) {}
  std::string ClassName;
  std::vector<ExprPtr> Args;

  const ClassDecl *Class = nullptr;  ///< Resolved by Sema.
  const MethodDecl *Ctor = nullptr;  ///< Null when using the default ctor.
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NewObject;
  }
};

/// 'new T[e0][e1]..[]..' — ElemType is the scalar/class base type, Dims are
/// the sized dimensions, ExtraDims counts trailing unsized '[]' pairs.
class NewArrayExpr : public Expr {
public:
  NewArrayExpr(TypeFE ElemType, std::vector<ExprPtr> Dims, int ExtraDims,
               SourceLoc Loc)
      : Expr(ExprKind::NewArray, Loc), ElemType(std::move(ElemType)),
        Dims(std::move(Dims)), ExtraDims(ExtraDims) {}
  TypeFE ElemType;
  std::vector<ExprPtr> Dims;
  int ExtraDims;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NewArray;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Kind tag for Stmt subclasses.
enum class StmtKind {
  Block,
  VarDecl,
  If,
  While,
  For,
  Return,
  ExprStmt,
  Break,
  Continue,
};

/// Base class of all MiniJ statements.
class Stmt {
public:
  explicit Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Stmt();
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

private:
  StmtKind Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// '{ ... }'.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(StmtKind::Block, Loc), Stmts(std::move(Stmts)) {}
  std::vector<StmtPtr> Stmts;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }
};

/// 'T x;' or 'T x = init;'.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(TypeFE DeclaredType, std::string Name, ExprPtr Init,
              SourceLoc Loc)
      : Stmt(StmtKind::VarDecl, Loc), DeclaredType(std::move(DeclaredType)),
        Name(std::move(Name)), Init(std::move(Init)) {}
  TypeFE DeclaredType;
  std::string Name;
  ExprPtr Init; ///< May be null.

  int Slot = -1; ///< Local slot assigned by Sema.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::VarDecl; }
};

/// 'if (c) then else?'.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }
};

/// 'while (c) body'. LoopId is a dense per-method id assigned by Sema in
/// source order; the compiler and the index-dataflow analysis share it.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
  int LoopId = -1;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }
};

/// 'for (init; cond; update) body'.
class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Update, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Update(std::move(Update)), Body(std::move(Body)) {}
  StmtPtr Init;   ///< VarDecl or ExprStmt; may be null.
  ExprPtr Cond;   ///< May be null (treated as true).
  ExprPtr Update; ///< May be null.
  StmtPtr Body;
  int LoopId = -1;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }
};

/// 'return;' or 'return e;'.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
  ExprPtr Value; ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

/// An expression used as a statement (call, assignment, inc/dec).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc)
      : Stmt(StmtKind::ExprStmt, Loc), E(std::move(E)) {}
  ExprPtr E;
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ExprStmt;
  }
};

/// 'break;'.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

/// 'continue;'.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A formal parameter.
struct ParamDecl {
  TypeFE DeclaredType;
  std::string Name;
  SourceLoc Loc;
  int Slot = -1; ///< Assigned by Sema.
};

/// A field declaration. FieldIndex is the index into the class's own field
/// list; the full object layout prepends inherited fields.
class FieldDecl {
public:
  TypeFE DeclaredType;
  std::string Name;
  SourceLoc Loc;
  int FieldIndex = -1;
};

/// A method or constructor. Constructors have IsCtor set, a void return
/// type, and the class's name.
class MethodDecl {
public:
  bool IsStatic = false;
  bool IsCtor = false;
  TypeFE ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;

  const ClassDecl *Owner = nullptr; ///< Set by Sema.
  int NumLocalSlots = 0;            ///< Including 'this' for instance methods.
  int NumLoops = 0;                 ///< Loop ids assigned are [0, NumLoops).
};

/// A class declaration. Type parameters are recorded for erasure only.
class ClassDecl {
public:
  std::string Name;
  std::vector<std::string> TypeParams;
  std::string SuperName; ///< Empty means the implicit root "Object".
  std::vector<std::unique_ptr<FieldDecl>> Fields;
  std::vector<std::unique_ptr<MethodDecl>> Methods;
  SourceLoc Loc;

  const ClassDecl *Super = nullptr; ///< Resolved by Sema (null for Object).

  /// Finds a field declared in this class only; null when absent.
  const FieldDecl *findOwnField(const std::string &FieldName) const;
  /// Finds a method declared in this class only (excluding ctors).
  const MethodDecl *findOwnMethod(const std::string &MethodName) const;
  /// Finds the constructor (at most one is allowed); null when absent.
  const MethodDecl *findCtor() const;
};

/// A whole MiniJ translation unit.
class Program {
public:
  std::vector<std::unique_ptr<ClassDecl>> Classes;

  const ClassDecl *findClass(const std::string &Name) const;
};

} // namespace algoprof

#endif // ALGOPROF_FRONTEND_AST_H

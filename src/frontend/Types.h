//===- frontend/Types.h - MiniJ source-level types --------------*- C++-*-===//
///
/// \file
/// Value representation of MiniJ source types. Generics are fully erased
/// before this representation: a type parameter T and any applied type
/// arguments map to the implicit root class Object, mirroring Java's
/// erasure (the PLDI'12 Table 1 "G" programs rely only on erased storage
/// of payloads, never on parametric dispatch).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FRONTEND_TYPES_H
#define ALGOPROF_FRONTEND_TYPES_H

#include <string>

namespace algoprof {

/// Discriminates the scalar/base kind of a MiniJ type.
enum class TypeKindFE {
  Int,
  Boolean,
  Void,
  Null,  ///< The type of the 'null' literal; assignable to any reference.
  Class, ///< A (possibly erased-generic) class reference.
  Error, ///< Produced after a diagnostic; silences follow-on errors.
};

/// A MiniJ type: a base kind plus an array dimension count.
///
/// 'int[][]' is {Int, dims=2}; 'Node' is {Class "Node", dims=0}. Using a
/// dimension counter instead of a recursive node keeps types freely
/// copyable value objects.
struct TypeFE {
  TypeKindFE Kind = TypeKindFE::Error;
  std::string ClassName; ///< Set when Kind == Class.
  int ArrayDims = 0;

  static TypeFE intTy() { return {TypeKindFE::Int, "", 0}; }
  static TypeFE boolTy() { return {TypeKindFE::Boolean, "", 0}; }
  static TypeFE voidTy() { return {TypeKindFE::Void, "", 0}; }
  static TypeFE nullTy() { return {TypeKindFE::Null, "", 0}; }
  static TypeFE errorTy() { return {TypeKindFE::Error, "", 0}; }
  static TypeFE classTy(std::string Name) {
    return {TypeKindFE::Class, std::move(Name), 0};
  }
  static TypeFE arrayOf(TypeFE Elem) {
    TypeFE T = std::move(Elem);
    ++T.ArrayDims;
    return T;
  }

  bool isError() const { return Kind == TypeKindFE::Error; }
  bool isVoid() const { return Kind == TypeKindFE::Void && ArrayDims == 0; }
  bool isInt() const { return Kind == TypeKindFE::Int && ArrayDims == 0; }
  bool isBool() const {
    return Kind == TypeKindFE::Boolean && ArrayDims == 0;
  }
  bool isNull() const { return Kind == TypeKindFE::Null; }
  bool isArray() const { return ArrayDims > 0; }
  bool isClass() const { return Kind == TypeKindFE::Class && ArrayDims == 0; }
  /// True for any value that is a heap reference (class, array, or null).
  bool isReference() const {
    return isNull() || isArray() || Kind == TypeKindFE::Class;
  }

  /// Element type of an array type; asserts on non-arrays.
  TypeFE elementType() const;

  bool operator==(const TypeFE &Other) const {
    return Kind == Other.Kind && ArrayDims == Other.ArrayDims &&
           ClassName == Other.ClassName;
  }
  bool operator!=(const TypeFE &Other) const { return !(*this == Other); }

  /// Renders the type in source syntax, e.g. "Node[][]".
  std::string str() const;
};

} // namespace algoprof

#endif // ALGOPROF_FRONTEND_TYPES_H

//===- frontend/Lexer.h - MiniJ lexical analysis ----------------*- C++-*-===//
///
/// \file
/// Tokenizer for MiniJ, the Java-subset language executed by the AlgoProf
/// VM substrate. MiniJ covers exactly the constructs exercised by the
/// PLDI'12 "Algorithmic Profiling" example programs: classes with single
/// inheritance and (erased) generics, int/boolean scalars, arrays, loops,
/// recursion, and built-in integer I/O.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FRONTEND_LEXER_H
#define ALGOPROF_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace algoprof {

/// MiniJ token kinds. Keyword enumerators follow the KW_ prefix scheme.
enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,

  // Keywords.
  KW_Class,
  KW_Extends,
  KW_Static,
  KW_Int,
  KW_Boolean,
  KW_Void,
  KW_If,
  KW_Else,
  KW_While,
  KW_For,
  KW_Return,
  KW_New,
  KW_This,
  KW_Null,
  KW_True,
  KW_False,
  KW_Break,
  KW_Continue,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  PlusPlus,
  MinusMinus,
};

/// Returns a stable printable name for a token kind ("'{'", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One MiniJ token. Identifier text and literal values are stored inline.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling (empty otherwise).
  int64_t IntValue = 0; ///< Value for IntLiteral tokens.

  bool is(TokenKind K) const { return Kind == K; }
};

/// Converts a MiniJ source buffer into a token stream.
///
/// The lexer is a standalone phase: it never fails fatally, reporting
/// malformed input through the DiagnosticEngine and continuing so the
/// parser can produce further diagnostics.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Tokenizes the entire buffer. The result always ends with EndOfFile.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind);
  char peek(int Ahead = 0) const;
  char advance();
  bool match(char Expected);
  SourceLoc currentLoc() const { return {Line, Col}; }

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
  SourceLoc TokenStart;
};

} // namespace algoprof

#endif // ALGOPROF_FRONTEND_LEXER_H

//===- frontend/Parser.h - MiniJ recursive-descent parser -------*- C++-*-===//
///
/// \file
/// Recursive-descent parser producing a MiniJ AST. Generic type arguments
/// are parsed and erased on the spot (recorded only as type-parameter
/// names on class declarations so Sema can map them to Object).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FRONTEND_PARSER_H
#define ALGOPROF_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"

#include <memory>

namespace algoprof {

/// Parses a token stream into a Program.
///
/// On syntax errors the parser reports through the DiagnosticEngine,
/// attempts statement-level recovery, and still returns a (partial)
/// Program; callers must check DiagnosticEngine::hasErrors().
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  std::unique_ptr<Program> parseProgram();

private:
  // Token stream helpers.
  const Token &peek(int Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToStmtBoundary();

  // Declarations.
  std::unique_ptr<ClassDecl> parseClassDecl();
  void parseMember(ClassDecl &Class);
  std::vector<ParamDecl> parseParams();

  // Types.
  bool startsType() const;
  bool looksLikeVarDecl() const;
  TypeFE parseType();
  TypeFE parseBaseType();
  void skipTypeArgs();

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();

  // Expressions (precedence climbing via nested productions).
  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseNew();
  std::vector<ExprPtr> parseArgs();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  /// Names of the type parameters of the class being parsed; identifiers
  /// matching one of these are erased to Object when used as a type.
  std::vector<std::string> CurrentTypeParams;
};

/// Convenience: lexes and parses \p Source in one step.
std::unique_ptr<Program> parseMiniJ(const std::string &Source,
                                    DiagnosticEngine &Diags);

} // namespace algoprof

#endif // ALGOPROF_FRONTEND_PARSER_H

//===- frontend/Lexer.cpp -------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace algoprof;

const char *algoprof::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KW_Class:
    return "'class'";
  case TokenKind::KW_Extends:
    return "'extends'";
  case TokenKind::KW_Static:
    return "'static'";
  case TokenKind::KW_Int:
    return "'int'";
  case TokenKind::KW_Boolean:
    return "'boolean'";
  case TokenKind::KW_Void:
    return "'void'";
  case TokenKind::KW_If:
    return "'if'";
  case TokenKind::KW_Else:
    return "'else'";
  case TokenKind::KW_While:
    return "'while'";
  case TokenKind::KW_For:
    return "'for'";
  case TokenKind::KW_Return:
    return "'return'";
  case TokenKind::KW_New:
    return "'new'";
  case TokenKind::KW_This:
    return "'this'";
  case TokenKind::KW_Null:
    return "'null'";
  case TokenKind::KW_True:
    return "'true'";
  case TokenKind::KW_False:
    return "'false'";
  case TokenKind::KW_Break:
    return "'break'";
  case TokenKind::KW_Continue:
    return "'continue'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  }
  return "<invalid>";
}

static TokenKind keywordKind(const std::string &Text, bool &IsKeyword) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"class", TokenKind::KW_Class},     {"extends", TokenKind::KW_Extends},
      {"static", TokenKind::KW_Static},   {"int", TokenKind::KW_Int},
      {"boolean", TokenKind::KW_Boolean}, {"void", TokenKind::KW_Void},
      {"if", TokenKind::KW_If},           {"else", TokenKind::KW_Else},
      {"while", TokenKind::KW_While},     {"for", TokenKind::KW_For},
      {"return", TokenKind::KW_Return},   {"new", TokenKind::KW_New},
      {"this", TokenKind::KW_This},       {"null", TokenKind::KW_Null},
      {"true", TokenKind::KW_True},       {"false", TokenKind::KW_False},
      {"break", TokenKind::KW_Break},     {"continue", TokenKind::KW_Continue},
  };
  auto It = Keywords.find(Text);
  IsKeyword = It != Keywords.end();
  return IsKeyword ? It->second : TokenKind::Identifier;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(int Ahead) const {
  size_t Index = Pos + static_cast<size_t>(Ahead);
  return Index < Source.size() ? Source[Index] : '\0';
}

char Lexer::advance() {
  assert(Pos < Source.size() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Loc = TokenStart;
  return T;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  TokenStart = currentLoc();
  if (Pos >= Source.size())
    return makeToken(TokenKind::EndOfFile);

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text.push_back(advance());
    bool IsKeyword = false;
    TokenKind Kind = keywordKind(Text, IsKeyword);
    Token T = makeToken(Kind);
    if (!IsKeyword)
      T.Text = std::move(Text);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = C - '0';
    bool Overflow = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      if (Value > (INT64_MAX - (D - '0')) / 10)
        Overflow = true;
      else
        Value = Value * 10 + (D - '0');
    }
    if (Overflow)
      Diags.error(TokenStart, "integer literal too large");
    Token T = makeToken(TokenKind::IntLiteral);
    T.IntValue = Value;
    return T;
  }

  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case ';':
    return makeToken(TokenKind::Semi);
  case ',':
    return makeToken(TokenKind::Comma);
  case '.':
    return makeToken(TokenKind::Dot);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus);
    return makeToken(TokenKind::Plus);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus);
    return makeToken(TokenKind::Minus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '%':
    return makeToken(TokenKind::Percent);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual);
    return makeToken(TokenKind::Assign);
  case '!':
    if (match('='))
      return makeToken(TokenKind::BangEqual);
    return makeToken(TokenKind::Bang);
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual);
    return makeToken(TokenKind::Less);
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEqual);
    return makeToken(TokenKind::Greater);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp);
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe);
    break;
  default:
    break;
  }

  Diags.error(TokenStart, std::string("unexpected character '") + C + "'");
  // Resynchronize by skipping the character and lexing the next token.
  return lexToken();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = lexToken();
    bool Done = T.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}

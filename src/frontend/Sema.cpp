//===- frontend/Sema.cpp --------------------------------------------------===//

#include "frontend/Sema.h"

#include "obs/Obs.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace algoprof;

//===----------------------------------------------------------------------===//
// Layout helpers
//===----------------------------------------------------------------------===//

int algoprof::classLayoutSize(const ClassDecl &Class) {
  int N = static_cast<int>(Class.Fields.size());
  if (Class.Super)
    N += classLayoutSize(*Class.Super);
  return N;
}

int algoprof::fieldLayoutSlot(const ClassDecl &Owner, const FieldDecl &Field) {
  int Start = Owner.Super ? classLayoutSize(*Owner.Super) : 0;
  return Start + Field.FieldIndex;
}

bool algoprof::isSubclassOf(const ClassDecl *Sub, const ClassDecl *Super) {
  for (const ClassDecl *C = Sub; C; C = C->Super)
    if (C == Super)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Sema implementation
//===----------------------------------------------------------------------===//

namespace {

class Sema {
public:
  Sema(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run();

private:
  // Phase 1: declarations.
  bool declareClasses();
  bool resolveHierarchy();
  bool checkMembers();

  // Phase 2: bodies.
  void checkMethodBody(ClassDecl &Class, MethodDecl &Method);

  // Statements.
  void checkStmt(Stmt *S);
  void checkBlock(BlockStmt &B);
  void checkVarDecl(VarDeclStmt &S);

  // Expressions. Each returns the expression's type and annotates it.
  TypeFE checkExpr(Expr *E);
  TypeFE checkName(NameExpr &E);
  TypeFE checkBinary(BinaryExpr &E);
  TypeFE checkUnary(UnaryExpr &E);
  TypeFE checkAssign(AssignExpr &E);
  TypeFE checkIncDec(IncDecExpr &E);
  TypeFE checkFieldAccess(FieldAccessExpr &E);
  TypeFE checkIndex(IndexExpr &E);
  TypeFE checkCall(CallExpr &E);
  TypeFE checkNewObject(NewObjectExpr &E);
  TypeFE checkNewArray(NewArrayExpr &E);

  // Utilities.
  ClassDecl *findClass(const std::string &Name);
  bool validateType(const TypeFE &T, SourceLoc Loc);
  bool isAssignable(const TypeFE &Dst, const TypeFE &Src);
  void requireAssignable(const TypeFE &Dst, const TypeFE &Src, SourceLoc Loc,
                         const char *Context);
  const FieldDecl *lookupField(const ClassDecl *Class, const std::string &Name,
                               const ClassDecl *&Owner);
  const MethodDecl *lookupMethod(const ClassDecl *Class,
                                 const std::string &Name);
  bool stmtAlwaysReturns(const Stmt *S);
  void checkCallArgs(const MethodDecl &Callee, std::vector<ExprPtr> &Args,
                     SourceLoc Loc, const char *What);

  // Scope management.
  struct LocalVar {
    std::string Name;
    TypeFE Ty;
    int Slot;
    int ScopeDepth;
  };
  void pushScope() { ++ScopeDepth; }
  void popScope();
  int declareLocal(const std::string &Name, TypeFE Ty, SourceLoc Loc);
  const LocalVar *findLocal(const std::string &Name) const;

  Program &P;
  DiagnosticEngine &Diags;
  std::unordered_map<std::string, ClassDecl *> ClassesByName;

  // Per-method state.
  ClassDecl *CurClass = nullptr;
  MethodDecl *CurMethod = nullptr;
  std::vector<LocalVar> Locals;
  int ScopeDepth = 0;
  int NextSlot = 0;
  int NextLoopId = 0;
  int LoopNesting = 0;
};

} // namespace

bool Sema::run() {
  if (!declareClasses())
    return false;
  if (!resolveHierarchy())
    return false;
  if (!checkMembers())
    return false;
  for (auto &C : P.Classes)
    for (auto &M : C->Methods)
      if (M->Body)
        checkMethodBody(*C, *M);
  return !Diags.hasErrors();
}

bool Sema::declareClasses() {
  // Inject the implicit root class unless the program defines it.
  if (!P.findClass("Object")) {
    auto Root = std::make_unique<ClassDecl>();
    Root->Name = "Object";
    P.Classes.insert(P.Classes.begin(), std::move(Root));
  }
  for (auto &C : P.Classes) {
    if (!ClassesByName.emplace(C->Name, C.get()).second)
      Diags.error(C->Loc, "duplicate class '" + C->Name + "'");
  }
  return !Diags.hasErrors();
}

bool Sema::resolveHierarchy() {
  for (auto &C : P.Classes) {
    if (C->Name == "Object") {
      if (!C->SuperName.empty())
        Diags.error(C->Loc, "class 'Object' cannot have a superclass");
      continue;
    }
    std::string SuperName = C->SuperName.empty() ? "Object" : C->SuperName;
    ClassDecl *Super = findClass(SuperName);
    if (!Super) {
      Diags.error(C->Loc, "unknown superclass '" + SuperName + "'");
      continue;
    }
    C->Super = Super;
  }
  if (Diags.hasErrors())
    return false;

  // Detect inheritance cycles.
  for (auto &C : P.Classes) {
    const ClassDecl *Slow = C.get();
    const ClassDecl *Fast = C->Super;
    while (Fast && Fast->Super) {
      if (Slow == Fast) {
        Diags.error(C->Loc, "inheritance cycle involving class '" + C->Name +
                                "'");
        return false;
      }
      Slow = Slow->Super;
      Fast = Fast->Super->Super;
    }
  }
  return true;
}

bool Sema::checkMembers() {
  for (auto &C : P.Classes) {
    std::unordered_set<std::string> FieldNames;
    int Index = 0;
    for (auto &F : C->Fields) {
      if (!FieldNames.insert(F->Name).second)
        Diags.error(F->Loc, "duplicate field '" + F->Name + "' in class '" +
                                C->Name + "'");
      validateType(F->DeclaredType, F->Loc);
      if (F->DeclaredType.isVoid())
        Diags.error(F->Loc, "field '" + F->Name + "' cannot have type void");
      // Shadowing an inherited field would make layout slots ambiguous.
      const ClassDecl *Owner = nullptr;
      if (C->Super && lookupField(C->Super, F->Name, Owner))
        Diags.error(F->Loc, "field '" + F->Name + "' shadows an inherited "
                                                  "field");
      F->FieldIndex = Index++;
    }

    std::unordered_set<std::string> MethodNames;
    int CtorCount = 0;
    for (auto &M : C->Methods) {
      M->Owner = C.get();
      if (M->IsCtor) {
        if (++CtorCount > 1)
          Diags.error(M->Loc, "class '" + C->Name +
                                  "' has more than one constructor");
        continue;
      }
      if (!MethodNames.insert(M->Name).second)
        Diags.error(M->Loc, "duplicate method '" + M->Name + "' in class '" +
                                C->Name + "' (MiniJ has no overloading)");
      validateType(M->ReturnType, M->Loc);
      // Override compatibility: same arity, same return type, same staticness.
      if (C->Super) {
        if (const MethodDecl *Base = lookupMethod(C->Super, M->Name)) {
          if (Base->IsStatic != M->IsStatic)
            Diags.error(M->Loc, "method '" + M->Name +
                                    "' changes staticness of the inherited "
                                    "method");
          if (Base->Params.size() != M->Params.size())
            Diags.error(M->Loc, "override of '" + M->Name +
                                    "' changes the parameter count");
          if (Base->ReturnType != M->ReturnType)
            Diags.error(M->Loc, "override of '" + M->Name +
                                    "' changes the return type");
        }
      }
    }
    for (auto &M : C->Methods)
      for (ParamDecl &Param : M->Params) {
        validateType(Param.DeclaredType, Param.Loc);
        if (Param.DeclaredType.isVoid())
          Diags.error(Param.Loc, "parameter '" + Param.Name +
                                     "' cannot have type void");
      }
  }
  return !Diags.hasErrors();
}

void Sema::checkMethodBody(ClassDecl &Class, MethodDecl &Method) {
  CurClass = &Class;
  CurMethod = &Method;
  Locals.clear();
  ScopeDepth = 0;
  NextSlot = Method.IsStatic ? 0 : 1; // Slot 0 is 'this'.
  NextLoopId = 0;
  LoopNesting = 0;

  pushScope();
  for (ParamDecl &Param : Method.Params)
    Param.Slot = declareLocal(Param.Name, Param.DeclaredType, Param.Loc);
  checkBlock(*Method.Body);
  popScope();

  Method.NumLocalSlots = NextSlot;
  Method.NumLoops = NextLoopId;

  if (!Method.IsCtor && !Method.ReturnType.isVoid() &&
      !stmtAlwaysReturns(Method.Body.get()))
    Diags.error(Method.Loc, "method '" + Method.Name +
                                "' may fall off the end without returning a "
                                "value");
  CurClass = nullptr;
  CurMethod = nullptr;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::popScope() {
  while (!Locals.empty() && Locals.back().ScopeDepth == ScopeDepth)
    Locals.pop_back();
  --ScopeDepth;
}

int Sema::declareLocal(const std::string &Name, TypeFE Ty, SourceLoc Loc) {
  for (auto It = Locals.rbegin(); It != Locals.rend(); ++It) {
    if (It->ScopeDepth != ScopeDepth)
      break;
    if (It->Name == Name) {
      Diags.error(Loc, "redeclaration of '" + Name + "' in the same scope");
      return It->Slot;
    }
  }
  int Slot = NextSlot++;
  Locals.push_back({Name, std::move(Ty), Slot, ScopeDepth});
  return Slot;
}

const Sema::LocalVar *Sema::findLocal(const std::string &Name) const {
  for (auto It = Locals.rbegin(); It != Locals.rend(); ++It)
    if (It->Name == Name)
      return &*It;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

ClassDecl *Sema::findClass(const std::string &Name) {
  auto It = ClassesByName.find(Name);
  return It == ClassesByName.end() ? nullptr : It->second;
}

bool Sema::validateType(const TypeFE &T, SourceLoc Loc) {
  if (T.Kind != TypeKindFE::Class)
    return true;
  if (findClass(T.ClassName))
    return true;
  Diags.error(Loc, "unknown type '" + T.ClassName + "'");
  return false;
}

/// MiniJ assignability. Erasure makes reference checking intentionally
/// loose: Object converts implicitly to and from any class reference (the
/// Table 1 "G" programs read erased payloads without cast syntax).
bool Sema::isAssignable(const TypeFE &Dst, const TypeFE &Src) {
  if (Dst.isError() || Src.isError())
    return true;
  if (Dst == Src)
    return true;
  if (Src.isNull())
    return Dst.isReference();
  if (Dst.isClass() && Src.isClass()) {
    const ClassDecl *DstC = findClass(Dst.ClassName);
    const ClassDecl *SrcC = findClass(Src.ClassName);
    if (!DstC || !SrcC)
      return false;
    if (isSubclassOf(SrcC, DstC))
      return true;
    // Erased-generics escape hatch, both directions via Object.
    return Dst.ClassName == "Object" || Src.ClassName == "Object";
  }
  // Any reference converts to Object (e.g. storing an array payload).
  if (Dst.isClass() && Dst.ClassName == "Object" && Src.isReference())
    return true;
  if (Src.isClass() && Src.ClassName == "Object" && Dst.isReference())
    return true;
  return false;
}

void Sema::requireAssignable(const TypeFE &Dst, const TypeFE &Src,
                             SourceLoc Loc, const char *Context) {
  if (isAssignable(Dst, Src))
    return;
  Diags.error(Loc, std::string("cannot convert '") + Src.str() + "' to '" +
                       Dst.str() + "' " + Context);
}

const FieldDecl *Sema::lookupField(const ClassDecl *Class,
                                   const std::string &Name,
                                   const ClassDecl *&Owner) {
  for (const ClassDecl *C = Class; C; C = C->Super) {
    if (const FieldDecl *F = C->findOwnField(Name)) {
      Owner = C;
      return F;
    }
  }
  Owner = nullptr;
  return nullptr;
}

const MethodDecl *Sema::lookupMethod(const ClassDecl *Class,
                                     const std::string &Name) {
  for (const ClassDecl *C = Class; C; C = C->Super)
    if (const MethodDecl *M = C->findOwnMethod(Name))
      return M;
  return nullptr;
}

bool Sema::stmtAlwaysReturns(const Stmt *S) {
  if (!S)
    return false;
  switch (S->kind()) {
  case StmtKind::Return:
    return true;
  case StmtKind::Block: {
    const auto *B = static_cast<const BlockStmt *>(S);
    for (const StmtPtr &Child : B->Stmts)
      if (stmtAlwaysReturns(Child.get()))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    return I->Else && stmtAlwaysReturns(I->Then.get()) &&
           stmtAlwaysReturns(I->Else.get());
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::checkBlock(BlockStmt &B) {
  pushScope();
  for (StmtPtr &S : B.Stmts)
    checkStmt(S.get());
  popScope();
}

void Sema::checkVarDecl(VarDeclStmt &S) {
  validateType(S.DeclaredType, S.loc());
  if (S.DeclaredType.isVoid()) {
    Diags.error(S.loc(), "variable '" + S.Name + "' cannot have type void");
    S.DeclaredType = TypeFE::errorTy();
  }
  if (S.Init) {
    TypeFE InitTy = checkExpr(S.Init.get());
    requireAssignable(S.DeclaredType, InitTy, S.loc(), "in initialization");
  }
  S.Slot = declareLocal(S.Name, S.DeclaredType, S.loc());
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    checkBlock(*static_cast<BlockStmt *>(S));
    return;
  case StmtKind::VarDecl:
    checkVarDecl(*static_cast<VarDeclStmt *>(S));
    return;
  case StmtKind::If: {
    auto *I = static_cast<IfStmt *>(S);
    TypeFE CondTy = checkExpr(I->Cond.get());
    if (!CondTy.isBool() && !CondTy.isError())
      Diags.error(I->loc(), "if condition must be boolean, got '" +
                                CondTy.str() + "'");
    checkStmt(I->Then.get());
    checkStmt(I->Else.get());
    return;
  }
  case StmtKind::While: {
    auto *W = static_cast<WhileStmt *>(S);
    W->LoopId = NextLoopId++;
    TypeFE CondTy = checkExpr(W->Cond.get());
    if (!CondTy.isBool() && !CondTy.isError())
      Diags.error(W->loc(), "while condition must be boolean, got '" +
                                CondTy.str() + "'");
    ++LoopNesting;
    checkStmt(W->Body.get());
    --LoopNesting;
    return;
  }
  case StmtKind::For: {
    auto *F = static_cast<ForStmt *>(S);
    F->LoopId = NextLoopId++;
    pushScope(); // The init declaration scopes over the whole loop.
    checkStmt(F->Init.get());
    if (F->Cond) {
      TypeFE CondTy = checkExpr(F->Cond.get());
      if (!CondTy.isBool() && !CondTy.isError())
        Diags.error(F->loc(), "for condition must be boolean, got '" +
                                  CondTy.str() + "'");
    }
    if (F->Update)
      checkExpr(F->Update.get());
    ++LoopNesting;
    checkStmt(F->Body.get());
    --LoopNesting;
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *R = static_cast<ReturnStmt *>(S);
    assert(CurMethod && "return outside a method");
    TypeFE Expected =
        CurMethod->IsCtor ? TypeFE::voidTy() : CurMethod->ReturnType;
    if (R->Value) {
      TypeFE Got = checkExpr(R->Value.get());
      if (Expected.isVoid())
        Diags.error(R->loc(), "returning a value from a void method");
      else
        requireAssignable(Expected, Got, R->loc(), "in return");
    } else if (!Expected.isVoid()) {
      Diags.error(R->loc(), "non-void method must return a value");
    }
    return;
  }
  case StmtKind::ExprStmt: {
    auto *E = static_cast<ExprStmt *>(S);
    checkExpr(E->E.get());
    ExprKind K = E->E->kind();
    if (K != ExprKind::Assign && K != ExprKind::IncDec &&
        K != ExprKind::Call && K != ExprKind::NewObject)
      Diags.error(E->loc(), "expression statement has no effect");
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    if (LoopNesting == 0)
      Diags.error(S->loc(), S->kind() == StmtKind::Break
                                ? "'break' outside a loop"
                                : "'continue' outside a loop");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TypeFE Sema::checkExpr(Expr *E) {
  if (!E)
    return TypeFE::errorTy();
  TypeFE Ty = TypeFE::errorTy();
  switch (E->kind()) {
  case ExprKind::IntLit:
    Ty = TypeFE::intTy();
    break;
  case ExprKind::BoolLit:
    Ty = TypeFE::boolTy();
    break;
  case ExprKind::NullLit:
    Ty = TypeFE::nullTy();
    break;
  case ExprKind::This:
    if (!CurMethod || CurMethod->IsStatic) {
      Diags.error(E->loc(), "'this' used in a static context");
    } else {
      Ty = TypeFE::classTy(CurClass->Name);
    }
    break;
  case ExprKind::Name:
    Ty = checkName(*static_cast<NameExpr *>(E));
    break;
  case ExprKind::Binary:
    Ty = checkBinary(*static_cast<BinaryExpr *>(E));
    break;
  case ExprKind::Unary:
    Ty = checkUnary(*static_cast<UnaryExpr *>(E));
    break;
  case ExprKind::Assign:
    Ty = checkAssign(*static_cast<AssignExpr *>(E));
    break;
  case ExprKind::IncDec:
    Ty = checkIncDec(*static_cast<IncDecExpr *>(E));
    break;
  case ExprKind::FieldAccess:
    Ty = checkFieldAccess(*static_cast<FieldAccessExpr *>(E));
    break;
  case ExprKind::Index:
    Ty = checkIndex(*static_cast<IndexExpr *>(E));
    break;
  case ExprKind::Call:
    Ty = checkCall(*static_cast<CallExpr *>(E));
    break;
  case ExprKind::NewObject:
    Ty = checkNewObject(*static_cast<NewObjectExpr *>(E));
    break;
  case ExprKind::NewArray:
    Ty = checkNewArray(*static_cast<NewArrayExpr *>(E));
    break;
  }
  E->Ty = Ty;
  return Ty;
}

TypeFE Sema::checkName(NameExpr &E) {
  if (const LocalVar *L = findLocal(E.Name)) {
    E.Resolution = NameResolution::Local;
    E.Slot = L->Slot;
    return L->Ty;
  }
  const ClassDecl *Owner = nullptr;
  if (const FieldDecl *F = lookupField(CurClass, E.Name, Owner)) {
    if (CurMethod->IsStatic) {
      Diags.error(E.loc(), "instance field '" + E.Name +
                               "' used in a static method");
      return TypeFE::errorTy();
    }
    E.Resolution = NameResolution::ImplicitField;
    E.OwnerClass = Owner;
    E.FieldIndex = fieldLayoutSlot(*Owner, *F);
    return F->DeclaredType;
  }
  if (const ClassDecl *C = findClass(E.Name)) {
    E.Resolution = NameResolution::ClassRef;
    E.OwnerClass = C;
    // A class reference is not a value; only checkCall may consume it.
    return TypeFE::errorTy();
  }
  Diags.error(E.loc(), "unknown name '" + E.Name + "'");
  return TypeFE::errorTy();
}

TypeFE Sema::checkBinary(BinaryExpr &E) {
  TypeFE L = checkExpr(E.Lhs.get());
  TypeFE R = checkExpr(E.Rhs.get());
  if (L.isError() || R.isError())
    return TypeFE::errorTy();

  switch (E.Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    if (!L.isInt() || !R.isInt()) {
      Diags.error(E.loc(), "arithmetic requires int operands, got '" +
                               L.str() + "' and '" + R.str() + "'");
      return TypeFE::errorTy();
    }
    return TypeFE::intTy();
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    if (!L.isInt() || !R.isInt()) {
      Diags.error(E.loc(), "comparison requires int operands, got '" +
                               L.str() + "' and '" + R.str() + "'");
      return TypeFE::errorTy();
    }
    return TypeFE::boolTy();
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Ok = (L.isInt() && R.isInt()) || (L.isBool() && R.isBool()) ||
              (L.isReference() && R.isReference());
    if (!Ok) {
      Diags.error(E.loc(), "cannot compare '" + L.str() + "' with '" +
                               R.str() + "'");
      return TypeFE::errorTy();
    }
    return TypeFE::boolTy();
  }
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    if (!L.isBool() || !R.isBool()) {
      Diags.error(E.loc(), "logical operator requires boolean operands, "
                           "got '" +
                               L.str() + "' and '" + R.str() + "'");
      return TypeFE::errorTy();
    }
    return TypeFE::boolTy();
  }
  return TypeFE::errorTy();
}

TypeFE Sema::checkUnary(UnaryExpr &E) {
  TypeFE T = checkExpr(E.Operand.get());
  if (T.isError())
    return T;
  if (E.Op == UnaryOp::Neg) {
    if (!T.isInt()) {
      Diags.error(E.loc(), "unary '-' requires an int operand");
      return TypeFE::errorTy();
    }
    return TypeFE::intTy();
  }
  if (!T.isBool()) {
    Diags.error(E.loc(), "'!' requires a boolean operand");
    return TypeFE::errorTy();
  }
  return TypeFE::boolTy();
}

TypeFE Sema::checkAssign(AssignExpr &E) {
  TypeFE TargetTy = checkExpr(E.Target.get());
  TypeFE ValueTy = checkExpr(E.Value.get());
  requireAssignable(TargetTy, ValueTy, E.loc(), "in assignment");
  return TargetTy;
}

TypeFE Sema::checkIncDec(IncDecExpr &E) {
  TypeFE T = checkExpr(E.Target.get());
  if (!T.isInt() && !T.isError())
    Diags.error(E.loc(), "increment/decrement requires an int lvalue");
  return TypeFE::intTy();
}

TypeFE Sema::checkFieldAccess(FieldAccessExpr &E) {
  TypeFE BaseTy = checkExpr(E.Base.get());
  if (BaseTy.isError())
    return BaseTy;
  if (BaseTy.isArray() && E.Name == "length") {
    E.IsArrayLength = true;
    return TypeFE::intTy();
  }
  if (!BaseTy.isClass()) {
    Diags.error(E.loc(), "field access on non-object type '" + BaseTy.str() +
                             "'");
    return TypeFE::errorTy();
  }
  const ClassDecl *Class = findClass(BaseTy.ClassName);
  const ClassDecl *Owner = nullptr;
  const FieldDecl *F = Class ? lookupField(Class, E.Name, Owner) : nullptr;
  if (!F) {
    Diags.error(E.loc(), "class '" + BaseTy.ClassName + "' has no field '" +
                             E.Name + "'");
    return TypeFE::errorTy();
  }
  E.OwnerClass = Owner;
  E.FieldIndex = fieldLayoutSlot(*Owner, *F);
  return F->DeclaredType;
}

TypeFE Sema::checkIndex(IndexExpr &E) {
  TypeFE BaseTy = checkExpr(E.Base.get());
  TypeFE IndexTy = checkExpr(E.Index.get());
  if (!IndexTy.isInt() && !IndexTy.isError())
    Diags.error(E.loc(), "array index must be int, got '" + IndexTy.str() +
                             "'");
  if (BaseTy.isError())
    return BaseTy;
  if (!BaseTy.isArray()) {
    Diags.error(E.loc(), "indexing a non-array type '" + BaseTy.str() + "'");
    return TypeFE::errorTy();
  }
  return BaseTy.elementType();
}

void Sema::checkCallArgs(const MethodDecl &Callee, std::vector<ExprPtr> &Args,
                         SourceLoc Loc, const char *What) {
  if (Args.size() != Callee.Params.size()) {
    Diags.error(Loc, std::string(What) + " '" + Callee.Name + "' expects " +
                         std::to_string(Callee.Params.size()) +
                         " argument(s), got " + std::to_string(Args.size()));
    // Still type check the arguments we have.
    for (ExprPtr &A : Args)
      checkExpr(A.get());
    return;
  }
  for (size_t I = 0; I < Args.size(); ++I) {
    TypeFE ArgTy = checkExpr(Args[I].get());
    requireAssignable(Callee.Params[I].DeclaredType, ArgTy,
                      Args[I]->loc(), "in argument");
  }
}

TypeFE Sema::checkCall(CallExpr &E) {
  // Built-ins and bare calls.
  if (!E.Receiver) {
    if (E.Name == "print" || E.Name == "readInt" || E.Name == "hasInput") {
      // Built-ins can be shadowed by a method of the current class.
      if (!lookupMethod(CurClass, E.Name)) {
        E.Resolution = CallResolution::Builtin;
        if (E.Name == "print") {
          E.Builtin = BuiltinFn::Print;
          if (E.Args.size() != 1)
            Diags.error(E.loc(), "'print' expects exactly one argument");
          for (ExprPtr &A : E.Args) {
            TypeFE T = checkExpr(A.get());
            if (!T.isInt() && !T.isBool() && !T.isError())
              Diags.error(A->loc(), "'print' expects an int or boolean");
          }
          return TypeFE::voidTy();
        }
        if (E.Args.size() != 0)
          Diags.error(E.loc(), "'" + E.Name + "' expects no arguments");
        E.Builtin =
            E.Name == "readInt" ? BuiltinFn::ReadInt : BuiltinFn::HasInput;
        return E.Name == "readInt" ? TypeFE::intTy() : TypeFE::boolTy();
      }
    }
    const MethodDecl *M = lookupMethod(CurClass, E.Name);
    if (!M) {
      Diags.error(E.loc(), "unknown method '" + E.Name + "'");
      for (ExprPtr &A : E.Args)
        checkExpr(A.get());
      return TypeFE::errorTy();
    }
    if (!M->IsStatic && CurMethod->IsStatic) {
      Diags.error(E.loc(), "instance method '" + E.Name +
                               "' called from a static method");
    }
    E.Callee = M;
    E.Resolution =
        M->IsStatic ? CallResolution::Static : CallResolution::Virtual;
    E.ImplicitThis = !M->IsStatic;
    checkCallArgs(*M, E.Args, E.loc(), "method");
    return M->ReturnType;
  }

  // Receiver present: 'ClassName.m(...)' or 'expr.m(...)'.
  if (E.Receiver->kind() == ExprKind::Name) {
    auto *N = static_cast<NameExpr *>(E.Receiver.get());
    // A name that is not a local/field but is a class resolves statically.
    if (!findLocal(N->Name)) {
      const ClassDecl *OwnerTmp = nullptr;
      bool IsField = lookupField(CurClass, N->Name, OwnerTmp) != nullptr;
      if (!IsField) {
        if (const ClassDecl *C = findClass(N->Name)) {
          N->Resolution = NameResolution::ClassRef;
          N->OwnerClass = C;
          const MethodDecl *M = lookupMethod(C, E.Name);
          if (!M) {
            Diags.error(E.loc(), "class '" + C->Name + "' has no method '" +
                                     E.Name + "'");
            for (ExprPtr &A : E.Args)
              checkExpr(A.get());
            return TypeFE::errorTy();
          }
          if (!M->IsStatic)
            Diags.error(E.loc(), "instance method '" + E.Name +
                                     "' called through a class name");
          E.Callee = M;
          E.Resolution = CallResolution::Static;
          checkCallArgs(*M, E.Args, E.loc(), "method");
          return M->ReturnType;
        }
      }
    }
  }

  TypeFE RecvTy = checkExpr(E.Receiver.get());
  if (RecvTy.isError())
    return RecvTy;
  if (!RecvTy.isClass()) {
    Diags.error(E.loc(), "method call on non-object type '" + RecvTy.str() +
                             "'");
    for (ExprPtr &A : E.Args)
      checkExpr(A.get());
    return TypeFE::errorTy();
  }
  const ClassDecl *Class = findClass(RecvTy.ClassName);
  const MethodDecl *M = Class ? lookupMethod(Class, E.Name) : nullptr;
  if (!M) {
    Diags.error(E.loc(), "class '" + RecvTy.ClassName + "' has no method '" +
                             E.Name + "'");
    for (ExprPtr &A : E.Args)
      checkExpr(A.get());
    return TypeFE::errorTy();
  }
  if (M->IsStatic)
    Diags.error(E.loc(), "static method '" + E.Name +
                             "' called through an instance");
  E.Callee = M;
  E.Resolution = CallResolution::Virtual;
  checkCallArgs(*M, E.Args, E.loc(), "method");
  return M->ReturnType;
}

TypeFE Sema::checkNewObject(NewObjectExpr &E) {
  const ClassDecl *C = findClass(E.ClassName);
  if (!C) {
    Diags.error(E.loc(), "unknown class '" + E.ClassName + "'");
    for (ExprPtr &A : E.Args)
      checkExpr(A.get());
    return TypeFE::errorTy();
  }
  E.Class = C;
  const MethodDecl *Ctor = C->findCtor();
  E.Ctor = Ctor;
  if (Ctor) {
    checkCallArgs(*Ctor, E.Args, E.loc(), "constructor of");
  } else if (!E.Args.empty()) {
    Diags.error(E.loc(), "class '" + E.ClassName +
                             "' has no constructor taking arguments");
    for (ExprPtr &A : E.Args)
      checkExpr(A.get());
  }
  return TypeFE::classTy(E.ClassName);
}

TypeFE Sema::checkNewArray(NewArrayExpr &E) {
  validateType(E.ElemType, E.loc());
  if (E.ElemType.isVoid())
    Diags.error(E.loc(), "cannot create an array of void");
  for (ExprPtr &D : E.Dims) {
    TypeFE T = checkExpr(D.get());
    if (!T.isInt() && !T.isError())
      Diags.error(D->loc(), "array dimension must be int");
  }
  TypeFE T = E.ElemType;
  T.ArrayDims += static_cast<int>(E.Dims.size()) + E.ExtraDims;
  return T;
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

bool algoprof::runSema(Program &P, DiagnosticEngine &Diags) {
  obs::ScopedSpan Span(obs::Phase::Sema);
  Sema S(P, Diags);
  return S.run();
}

//===- report/Reporter.cpp ------------------------------------------------===//

#include "report/Reporter.h"

#include "obs/Obs.h"
#include "report/CsvWriter.h"
#include "report/DotExporter.h"
#include "report/TablePrinter.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::report;

Reporter::~Reporter() = default;

std::string Reporter::render(const ReportInput &In) const {
  obs::ScopedSpan Span(obs::Phase::Report);
  return renderDocument(In);
}

//===----------------------------------------------------------------------===//
// Built-in reporters
//===----------------------------------------------------------------------===//

namespace {

/// %.17g: shortest round-trippable double, stable across runs.
std::string fmtDouble(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

class TreeReporter : public Reporter {
  std::string name() const override { return "tree"; }
  std::string renderDocument(const ReportInput &In) const override {
    return renderAnnotatedTree(*In.Tree, *In.Profiles);
  }
};

class TableReporter : public Reporter {
  std::string name() const override { return "table"; }
  std::string renderDocument(const ReportInput &In) const override {
    Table T({"algorithm", "classification", "input", "fit", "r2"});
    for (const AlgorithmProfile &AP : *In.Profiles) {
      bool AnyRow = false;
      for (const AlgorithmProfile::InputSeries &Ser : AP.Series) {
        if (!Ser.Interesting)
          continue;
        AnyRow = true;
        char R2[32];
        std::snprintf(R2, sizeof(R2), "%.3f", Ser.Fit.R2);
        T.addRow({"algo" + std::to_string(AP.Algo.Id), AP.Label, Ser.Kind,
                  Ser.Fit.Valid ? Ser.Fit.formula() : "-",
                  Ser.Fit.Valid ? R2 : "-"});
      }
      if (!AnyRow)
        T.addRow({"algo" + std::to_string(AP.Algo.Id), AP.Label, "-", "-",
                  "-"});
    }
    return T.str();
  }
};

class CsvReporter : public Reporter {
  std::string name() const override { return "csv"; }
  std::string renderDocument(const ReportInput &In) const override {
    // The exact assembly the legacy --csv flag performed; cli_test.sh
    // locks --format=csv to it byte for byte.
    std::vector<std::pair<std::string, std::vector<SeriesPoint>>> All;
    for (const AlgorithmProfile &AP : *In.Profiles)
      for (const AlgorithmProfile::InputSeries &Ser : AP.Series)
        if (Ser.Interesting)
          All.emplace_back("algo" + std::to_string(AP.Algo.Id) + ":" +
                               Ser.Kind,
                           Ser.Series);
    return seriesToCsv(All);
  }
};

class DotReporter : public Reporter {
  std::string name() const override { return "dot"; }
  std::string renderDocument(const ReportInput &In) const override {
    return repetitionTreeToDot(*In.Tree, *In.Profiles);
  }
};

/// The stable machine-readable schema. Versioned ("algoprof-profile/2");
/// any field removal or meaning change bumps the version. /2 added the
/// always-present "degraded_runs" array (one entry per run whose final
/// attempt failed; see docs/resilience.md).
class JsonReporter : public Reporter {
  std::string name() const override { return "json"; }

  static void appendEscaped(std::string &Out, const std::string &S) {
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
  }

  static void appendFit(std::string &Out, const fit::FitResult &F,
                        const char *Indent) {
    Out += "{\n";
    Out += Indent;
    Out += "  \"model\": \"";
    Out += fit::modelKindName(F.Kind);
    Out += "\",\n";
    Out += Indent;
    Out += "  \"formula\": \"";
    appendEscaped(Out, F.formula());
    Out += "\",\n";
    Out += Indent;
    Out += "  \"r2\": " + fmtDouble(F.R2) + "\n";
    Out += Indent;
    Out += "}";
  }

  std::string renderDocument(const ReportInput &In) const override {
    std::string Out;
    Out += "{\n  \"schema\": \"algoprof-profile/2\",\n";
    Out += "  \"algorithms\": [";
    bool FirstAlgo = true;
    for (const AlgorithmProfile &AP : *In.Profiles) {
      Out += FirstAlgo ? "\n" : ",\n";
      FirstAlgo = false;
      Out += "    {\n";
      Out += "      \"id\": " + std::to_string(AP.Algo.Id) + ",\n";
      Out += "      \"label\": \"";
      appendEscaped(Out, AP.Label);
      Out += "\",\n";
      Out += "      \"classification\": {\n";
      Out += std::string("        \"data_structureless\": ") +
             (AP.Class.dataStructureless() ? "true" : "false") + ",\n";
      Out += std::string("        \"does_input\": ") +
             (AP.Class.DoesInput ? "true" : "false") + ",\n";
      Out += std::string("        \"does_output\": ") +
             (AP.Class.DoesOutput ? "true" : "false") + ",\n";
      Out += "        \"inputs\": [";
      bool FirstCls = true;
      for (const Classification::PerInput &PI : AP.Class.Inputs) {
        Out += FirstCls ? "\n" : ",\n";
        FirstCls = false;
        Out += "          {\"input_id\": " + std::to_string(PI.InputId) +
               ", \"class\": \"" + algorithmClassName(PI.Class) + "\"}";
      }
      Out += FirstCls ? "]\n" : "\n        ]\n";
      Out += "      },\n";
      Out += "      \"series\": [";
      bool FirstSer = true;
      for (const AlgorithmProfile::InputSeries &Ser : AP.Series) {
        Out += FirstSer ? "\n" : ",\n";
        FirstSer = false;
        Out += "        {\n";
        Out += "          \"input_kind\": \"";
        appendEscaped(Out, Ser.Kind);
        Out += "\",\n";
        Out += std::string("          \"interesting\": ") +
               (Ser.Interesting ? "true" : "false") + ",\n";
        Out += "          \"points\": [";
        bool FirstPt = true;
        for (const SeriesPoint &Pt : Ser.Series) {
          Out += FirstPt ? "" : ", ";
          FirstPt = false;
          Out += "{\"size\": " + fmtDouble(Pt.X) +
                 ", \"cost\": " + fmtDouble(Pt.Y) + "}";
        }
        Out += "]";
        if (Ser.Interesting && Ser.Fit.Valid) {
          Out += ",\n          \"fit\": ";
          appendFit(Out, Ser.Fit, "          ");
        }
        if (!Ser.MeasureFits.empty()) {
          Out += ",\n          \"measure_fits\": [";
          bool FirstMf = true;
          for (const auto &[Measure, F] : Ser.MeasureFits) {
            Out += FirstMf ? "\n" : ",\n";
            FirstMf = false;
            Out += "            {\"measure\": \"";
            Out += costKindLabel(Measure);
            Out += "\", \"fit\": ";
            appendFit(Out, F, "            ");
            Out += "}";
          }
          Out += "\n          ]";
        }
        Out += "\n        }";
      }
      Out += FirstSer ? "]\n" : "\n      ]\n";
      Out += "    }";
    }
    Out += FirstAlgo ? "]," : "\n  ],";
    Out += "\n  \"degraded_runs\": [";
    bool FirstDeg = true;
    if (In.Degraded)
      for (const resilience::FailureInfo &FI : *In.Degraded) {
        Out += FirstDeg ? "\n" : ",\n";
        FirstDeg = false;
        Out += "    {\"run\": " + std::to_string(FI.Run) +
               ", \"status\": \"" + vm::runStatusName(FI.Status) +
               "\", \"attempts\": " + std::to_string(FI.Attempts) +
               ", \"budget\": \"";
        appendEscaped(Out, FI.Budget);
        Out += std::string("\", \"quarantined\": ") +
               (FI.Quarantined ? "true" : "false") + ", \"injected\": " +
               (FI.Injected ? "true" : "false") + ", \"message\": \"";
        appendEscaped(Out, FI.Message);
        Out += "\"}";
      }
    Out += FirstDeg ? "]\n" : "\n  ]\n";
    Out += "}\n";
    return Out;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Registry::Registry() = default;
Registry::~Registry() = default;

void Registry::add(std::unique_ptr<Reporter> R) {
  for (std::unique_ptr<Reporter> &Existing : Reporters)
    if (Existing->name() == R->name()) {
      Existing = std::move(R);
      return;
    }
  Reporters.push_back(std::move(R));
}

const Reporter *Registry::find(const std::string &Name) const {
  for (const std::unique_ptr<Reporter> &R : Reporters)
    if (R->name() == Name)
      return R.get();
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> Names;
  Names.reserve(Reporters.size());
  for (const std::unique_ptr<Reporter> &R : Reporters)
    Names.push_back(R->name());
  return Names;
}

const Registry &Registry::builtin() {
  static Registry *B = [] {
    auto *R = new Registry();
    R->add(std::make_unique<TableReporter>());
    R->add(std::make_unique<TreeReporter>());
    R->add(std::make_unique<CsvReporter>());
    R->add(std::make_unique<DotReporter>());
    R->add(std::make_unique<JsonReporter>());
    return R;
  }();
  return *B;
}

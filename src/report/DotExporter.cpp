//===- report/DotExporter.cpp ---------------------------------------------===//

#include "report/DotExporter.h"

#include <map>
#include <unordered_map>

using namespace algoprof;
using namespace algoprof::report;
using namespace algoprof::prof;

namespace {

/// Escapes a string for a DOT double-quoted label.
std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

std::string report::repetitionTreeToDot(
    const RepetitionTree &Tree,
    const std::vector<AlgorithmProfile> &Profiles) {
  // Stable node ids in pre-order.
  std::unordered_map<const RepetitionNode *, int> Ids;
  int Next = 0;
  Tree.forEach([&](const RepetitionNode &N) { Ids[&N] = Next++; });

  auto AlgorithmOf = [&](const RepetitionNode *N) -> int32_t {
    for (const AlgorithmProfile &AP : Profiles)
      if (AP.Algo.contains(N))
        return AP.Algo.Id;
    return -1;
  };

  std::string Out = "digraph repetition_tree {\n"
                    "  rankdir=TB;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";

  // One cluster per algorithm (the paper's gray boxes).
  std::map<int32_t, std::vector<const RepetitionNode *>> ByAlgo;
  Tree.forEach([&](const RepetitionNode &N) {
    ByAlgo[AlgorithmOf(&N)].push_back(&N);
  });
  auto ProfileOfAlgo = [&](int32_t Id) -> const AlgorithmProfile * {
    for (const AlgorithmProfile &AP : Profiles)
      if (AP.Algo.Id == Id)
        return &AP;
    return nullptr;
  };
  for (const auto &[Algo, Nodes] : ByAlgo) {
    const AlgorithmProfile *AP = Algo >= 0 ? ProfileOfAlgo(Algo) : nullptr;
    if (AP) {
      Out += "  subgraph cluster_" + std::to_string(Algo) + " {\n";
      std::string Label = AP->Label;
      if (const AlgorithmProfile::InputSeries *S = AP->primarySeries())
        Label += "\\nsteps = " + S->Fit.formula();
      Out += "    label=\"" + escape(Label) + "\";\n";
      Out += "    style=filled; color=lightgrey;\n";
    }
    for (const RepetitionNode *N : Nodes) {
      Out += (AP ? "    n" : "  n") + std::to_string(Ids[N]) +
             " [label=\"" + escape(N->Name) + "\\ninv=" +
             std::to_string(N->TotalInvocations) + " steps=" +
             std::to_string(N->totalSteps()) + "\"];\n";
    }
    if (AP)
      Out += "  }\n";
  }

  // Tree edges.
  Tree.forEach([&](const RepetitionNode &N) {
    for (const auto &C : N.Children)
      Out += "  n" + std::to_string(Ids[&N]) + " -> n" +
             std::to_string(Ids[C.get()]) + ";\n";
  });
  Out += "}\n";
  return Out;
}

std::string report::cctToDot(const cct::CctProfiler &Profiler) {
  std::string Out = "digraph cct {\n"
                    "  rankdir=TB;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  int Next = 0;

  struct Walker {
    const bc::Module &M;
    std::string &Out;
    int &Next;
    int visit(const cct::CctNode &N) {
      int Id = Next++;
      std::string Label =
          N.MethodId >= 0
              ? M.Methods[static_cast<size_t>(N.MethodId)].QualifiedName
              : std::string("<root>");
      Out += "  n" + std::to_string(Id) + " [label=\"" + escape(Label) +
             "\\ncalls=" + std::to_string(N.Calls) +
             " excl=" + std::to_string(N.ExclusiveCost) + "\"];\n";
      for (const auto &C : N.Children) {
        int ChildId = visit(*C);
        Out += "  n" + std::to_string(Id) + " -> n" +
               std::to_string(ChildId) + ";\n";
      }
      return Id;
    }
  } W{Profiler.module(), Out, Next};
  W.visit(Profiler.root());
  Out += "}\n";
  return Out;
}

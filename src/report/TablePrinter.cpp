//===- report/TablePrinter.cpp --------------------------------------------===//

#include "report/TablePrinter.h"

using namespace algoprof;
using namespace algoprof::report;

std::string Table::str() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  auto Render = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : "";
      Cell.resize(Widths[I], ' ');
      Line += Cell;
      if (I + 1 < Widths.size())
        Line += "  ";
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = Render(Header);
  std::string Rule;
  for (size_t I = 0; I < Widths.size(); ++I) {
    Rule += std::string(Widths[I], '-');
    if (I + 1 < Widths.size())
      Rule += "  ";
  }
  Out += Rule + "\n";
  for (const auto &Row : Rows)
    Out += Render(Row);
  return Out;
}

//===- report/DotExporter.h - Graphviz export -------------------*- C++-*-===//
///
/// \file
/// Graphviz (DOT) exporters for the repetition tree and the CCT. The
/// paper envisions "an interactive visualization tool for the
/// repetition tree" through which developers could regroup algorithms
/// by intuition (Sec. 2.5); DOT output is the offline stand-in: one
/// cluster per algorithm, nodes annotated with invocation counts,
/// steps, and the algorithm's classification and fitted cost function.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_REPORT_DOTEXPORTER_H
#define ALGOPROF_REPORT_DOTEXPORTER_H

#include "cct/CctProfiler.h"
#include "core/Session.h"

#include <string>

namespace algoprof {
namespace report {

/// Renders the repetition tree as a DOT digraph; nodes belonging to the
/// same algorithm share a filled cluster, whose label carries the
/// classification and the fitted cost function (the paper's gray
/// boxes).
std::string
repetitionTreeToDot(const prof::RepetitionTree &Tree,
                    const std::vector<prof::AlgorithmProfile> &Profiles);

/// Renders a CCT as a DOT digraph with call counts and exclusive costs.
std::string cctToDot(const cct::CctProfiler &Profiler);

} // namespace report
} // namespace algoprof

#endif // ALGOPROF_REPORT_DOTEXPORTER_H

//===- report/CsvWriter.h - CSV series export -------------------*- C++-*-===//
///
/// \file
/// CSV export of <size, cost> series so external plotting tools can
/// regenerate the figures from benchmark output files.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_REPORT_CSVWRITER_H
#define ALGOPROF_REPORT_CSVWRITER_H

#include "core/AlgorithmSummary.h"

#include <string>
#include <vector>

namespace algoprof {
namespace report {

/// Renders labeled series as "label,x,y" CSV lines with a header.
std::string seriesToCsv(
    const std::vector<std::pair<std::string,
                                std::vector<prof::SeriesPoint>>> &Series);

/// Writes \p Content to \p Path; returns false on I/O failure.
bool writeFile(const std::string &Path, const std::string &Content);

} // namespace report
} // namespace algoprof

#endif // ALGOPROF_REPORT_CSVWRITER_H

//===- report/AsciiPlot.h - Terminal scatter plots --------------*- C++-*-===//
///
/// \file
/// ASCII scatter plots of <input size, cost> series, so the benchmark
/// binaries can regenerate the paper's figures directly in a terminal.
/// Multiple series overlay with distinct glyphs.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_REPORT_ASCIIPLOT_H
#define ALGOPROF_REPORT_ASCIIPLOT_H

#include "core/AlgorithmSummary.h"

#include <string>
#include <vector>

namespace algoprof {
namespace report {

/// One plotted series.
struct PlotSeries {
  std::string Name;
  char Glyph = '*';
  std::vector<prof::SeriesPoint> Points;
};

/// Renders a WidthxHeight character scatter plot with axis labels.
std::string renderScatter(const std::vector<PlotSeries> &Series,
                          const std::string &Title, int Width = 72,
                          int Height = 20);

} // namespace report
} // namespace algoprof

#endif // ALGOPROF_REPORT_ASCIIPLOT_H

//===- report/AsciiPlot.cpp -----------------------------------------------===//

#include "report/AsciiPlot.h"

#include <algorithm>
#include <cstdio>

using namespace algoprof;
using namespace algoprof::report;
using namespace algoprof::prof;

std::string report::renderScatter(const std::vector<PlotSeries> &Series,
                                  const std::string &Title, int Width,
                                  int Height) {
  double MinX = 0, MaxX = 1, MinY = 0, MaxY = 1;
  bool Any = false;
  for (const PlotSeries &S : Series)
    for (const SeriesPoint &Pt : S.Points) {
      if (!Any) {
        MinX = MaxX = Pt.X;
        MinY = MaxY = Pt.Y;
        Any = true;
      } else {
        MinX = std::min(MinX, Pt.X);
        MaxX = std::max(MaxX, Pt.X);
        MinY = std::min(MinY, Pt.Y);
        MaxY = std::max(MaxY, Pt.Y);
      }
    }
  if (MaxX <= MinX)
    MaxX = MinX + 1;
  if (MaxY <= MinY)
    MaxY = MinY + 1;

  std::vector<std::string> Grid(static_cast<size_t>(Height),
                                std::string(static_cast<size_t>(Width),
                                            ' '));
  for (const PlotSeries &S : Series)
    for (const SeriesPoint &Pt : S.Points) {
      int Col = static_cast<int>((Pt.X - MinX) / (MaxX - MinX) *
                                 (Width - 1));
      int Row = static_cast<int>((Pt.Y - MinY) / (MaxY - MinY) *
                                 (Height - 1));
      Row = Height - 1 - Row; // Y grows upward.
      Grid[static_cast<size_t>(Row)][static_cast<size_t>(Col)] = S.Glyph;
    }

  char Buf[64];
  std::string Out = Title + "\n";
  std::snprintf(Buf, sizeof(Buf), "%.0f", MaxY);
  std::string TopLabel = Buf;
  std::snprintf(Buf, sizeof(Buf), "%.0f", MinY);
  std::string BottomLabel = Buf;
  size_t LabelWidth = std::max(TopLabel.size(), BottomLabel.size());

  for (int Row = 0; Row < Height; ++Row) {
    std::string Label;
    if (Row == 0)
      Label = TopLabel;
    else if (Row == Height - 1)
      Label = BottomLabel;
    Label.insert(Label.begin(), LabelWidth - Label.size(), ' ');
    Out += Label + " |" + Grid[static_cast<size_t>(Row)] + "\n";
  }
  Out += std::string(LabelWidth + 1, ' ') + '+' +
         std::string(static_cast<size_t>(Width), '-') + "\n";
  std::snprintf(Buf, sizeof(Buf), "%.0f", MinX);
  std::string XLine = std::string(LabelWidth + 2, ' ') + Buf;
  std::snprintf(Buf, sizeof(Buf), "%.0f", MaxX);
  std::string MaxXLabel = Buf;
  size_t Pad = LabelWidth + 2 + static_cast<size_t>(Width);
  if (XLine.size() + MaxXLabel.size() < Pad)
    XLine += std::string(Pad - XLine.size() - MaxXLabel.size(), ' ');
  XLine += MaxXLabel;
  Out += XLine + "\n";
  for (const PlotSeries &S : Series)
    Out += std::string(LabelWidth + 2, ' ') + S.Glyph + " = " + S.Name +
           "\n";
  return Out;
}

//===- report/Reporter.h - Unified report rendering -------------*- C++-*-===//
///
/// \file
/// One interface over every profile renderer. The report module grew
/// five unrelated entry points (TreePrinter, TablePrinter, CsvWriter,
/// DotExporter, AsciiPlot); Reporter puts a single `render(state) ->
/// document` contract in front of them, and Registry maps the CLI's
/// `--format` names to implementations:
///
///   table  column-aligned algorithm summary (TablePrinter)
///   tree   annotated repetition tree, the default stdout view
///   csv    interesting <size, cost> series (byte-identical to the
///          legacy --csv flag; locked by tests/cli_test.sh)
///   dot    Graphviz repetition tree (byte-identical to legacy --dot)
///   json   the stable machine-readable profile schema
///          "algoprof-profile/2" (see docs/observability.md; /2 added
///          the degraded_runs array — docs/resilience.md)
///
/// The low-level renderers remain available for callers that want a
/// specific document (the bench binaries use them directly); the CLI
/// and anything driven by a format *name* goes through the Registry.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_REPORT_REPORTER_H
#define ALGOPROF_REPORT_REPORTER_H

#include "core/Session.h"

#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace report {

/// The profile state a reporter renders: the merged repetition tree,
/// input table, and built profiles of one session. All pointers are
/// non-owning and must outlive the render call.
struct ReportInput {
  const prof::RepetitionTree *Tree = nullptr;
  const prof::InputTable *Inputs = nullptr;
  const std::vector<prof::AlgorithmProfile> *Profiles = nullptr;
  /// Degraded-run records of the session (ProfileDriver::failures()),
  /// or null when the caller has none. Rendered by the json format as
  /// the schema /2 "degraded_runs" array (empty when null or empty).
  const std::vector<resilience::FailureInfo> *Degraded = nullptr;
};

/// A named profile renderer. Implementations are stateless and
/// reusable across sessions.
class Reporter {
public:
  virtual ~Reporter();

  /// The format name ("csv"), as accepted by --format.
  virtual std::string name() const = 0;

  /// Renders \p In into one complete document. Wraps the virtual
  /// renderer in the obs Report phase span.
  std::string render(const ReportInput &In) const;

private:
  virtual std::string renderDocument(const ReportInput &In) const = 0;
};

/// Name -> Reporter map.
class Registry {
public:
  /// An empty registry. Most callers want builtin().
  Registry();
  ~Registry();

  /// Registers \p R, replacing any reporter with the same name.
  void add(std::unique_ptr<Reporter> R);

  /// Looks up a format name; null when unknown.
  const Reporter *find(const std::string &Name) const;

  /// Registered names, in registration order ("table|tree|csv|...").
  std::vector<std::string> names() const;

  /// The registry with the five built-in formats.
  static const Registry &builtin();

private:
  std::vector<std::unique_ptr<Reporter>> Reporters;
};

} // namespace report
} // namespace algoprof

#endif // ALGOPROF_REPORT_REPORTER_H

//===- report/CsvWriter.cpp -----------------------------------------------===//

#include "report/CsvWriter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::report;

std::string report::seriesToCsv(
    const std::vector<std::pair<std::string,
                                std::vector<prof::SeriesPoint>>> &Series) {
  std::string Out = "series,size,cost\n";
  char Buf[96];
  for (const auto &[Name, Points] : Series)
    for (const prof::SeriesPoint &Pt : Points) {
      std::snprintf(Buf, sizeof(Buf), "%s,%.0f,%.0f\n", Name.c_str(), Pt.X,
                    Pt.Y);
      Out += Buf;
    }
  return Out;
}

bool report::writeFile(const std::string &Path,
                       const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  std::fclose(F);
  return Written == Content.size();
}

//===- report/TablePrinter.h - Aligned text tables --------------*- C++-*-===//
///
/// \file
/// Minimal column-aligned table rendering for the benchmark binaries
/// (Table 1, the figure data tables, EXPERIMENTS.md blocks).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_REPORT_TABLEPRINTER_H
#define ALGOPROF_REPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace algoprof {
namespace report {

/// A text table with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) {
    Rows.push_back(std::move(Row));
  }

  /// Renders with columns padded to their widest cell.
  std::string str() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace report
} // namespace algoprof

#endif // ALGOPROF_REPORT_TABLEPRINTER_H

//===- report/TreePrinter.cpp ---------------------------------------------===//

#include "report/TreePrinter.h"

using namespace algoprof;
using namespace algoprof::report;
using namespace algoprof::prof;

static void renderNode(const RepetitionNode &N, const std::string &Indent,
                       std::string &Out) {
  Out += Indent + N.Name + "  [invocations=" +
         std::to_string(N.History.size()) +
         ", steps=" + std::to_string(N.totalSteps()) + "]\n";
  for (const auto &C : N.Children)
    renderNode(*C, Indent + "  ", Out);
}

std::string report::renderRepetitionTree(const RepetitionTree &Tree) {
  std::string Out;
  renderNode(Tree.root(), "", Out);
  return Out;
}

static int32_t algorithmOf(const RepetitionNode *N,
                           const std::vector<AlgorithmProfile> &Profiles) {
  for (const AlgorithmProfile &AP : Profiles)
    if (AP.Algo.contains(N))
      return AP.Algo.Id;
  return -1;
}

static void renderAnnotatedNode(
    const RepetitionNode &N, const std::string &Indent,
    const std::vector<AlgorithmProfile> &Profiles, std::string &Out) {
  int32_t Algo = algorithmOf(&N, Profiles);
  Out += Indent + N.Name;
  if (Algo >= 0)
    Out += "  <algorithm#" + std::to_string(Algo) + ">";
  Out += "  [invocations=" + std::to_string(N.History.size()) +
         ", steps=" + std::to_string(N.totalSteps()) + "]\n";
  for (const auto &C : N.Children)
    renderAnnotatedNode(*C, Indent + "  ", Profiles, Out);
}

std::string
report::renderAnnotatedTree(const RepetitionTree &Tree,
                            const std::vector<AlgorithmProfile> &Profiles) {
  std::string Out;
  renderAnnotatedNode(Tree.root(), "", Profiles, Out);
  Out += "\nAlgorithms:\n";
  for (const AlgorithmProfile &AP : Profiles) {
    Out += "  algorithm#" + std::to_string(AP.Algo.Id) + " (root: " +
           AP.Algo.Root->Name + ", nodes: " +
           std::to_string(AP.Algo.Nodes.size()) + ")\n";
    Out += "    " + AP.Label + "\n";
    if (const AlgorithmProfile::InputSeries *S = AP.primarySeries()) {
      Out += "    steps = " + S->Fit.formula() + "  (R^2 = " +
             std::to_string(S->Fit.R2).substr(0, 5) + ", " +
             std::to_string(S->Series.size()) + " runs)\n";
      for (const auto &[Measure, Fit] : S->MeasureFits)
        Out += std::string("    ") + costKindLabel(Measure) + "s = " +
               Fit.formula() + "\n";
    }
  }
  return Out;
}

static void renderCctNode(const cct::CctNode &N, const bc::Module &M,
                          const std::string &Indent, std::string &Out) {
  if (N.MethodId >= 0) {
    Out += Indent +
           M.Methods[static_cast<size_t>(N.MethodId)].QualifiedName +
           "  [calls=" + std::to_string(N.Calls) +
           ", incl=" + std::to_string(N.inclusiveCost()) +
           ", excl=" + std::to_string(N.ExclusiveCost) + "]\n";
  } else {
    Out += Indent + "<root>\n";
  }
  for (const auto &C : N.Children)
    renderCctNode(*C, M, Indent + "  ", Out);
}

std::string report::renderCct(const cct::CctProfiler &Profiler) {
  std::string Out;
  renderCctNode(Profiler.root(), Profiler.module(), "", Out);
  return Out;
}

//===- report/TreePrinter.h - Render repetition trees and CCTs --*- C++-*-===//
///
/// \file
/// Text renderers for the two profile structures the paper contrasts:
/// the repetition tree with algorithm annotations (Fig. 3/4) and the
/// traditional calling-context tree (Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_REPORT_TREEPRINTER_H
#define ALGOPROF_REPORT_TREEPRINTER_H

#include "cct/CctProfiler.h"
#include "core/Session.h"

#include <string>

namespace algoprof {
namespace report {

/// Renders the repetition tree: one line per repetition with invocation
/// counts and total steps.
std::string renderRepetitionTree(const prof::RepetitionTree &Tree);

/// Renders the repetition tree annotated with the algorithm grouping:
/// every node line carries its algorithm id; each algorithm is then
/// summarized with its classification label and fitted cost function
/// (the Fig. 3 gray boxes).
std::string
renderAnnotatedTree(const prof::RepetitionTree &Tree,
                    const std::vector<prof::AlgorithmProfile> &Profiles);

/// Renders a calling-context tree with call counts and inclusive /
/// exclusive instruction costs (Fig. 2).
std::string renderCct(const cct::CctProfiler &Profiler);

} // namespace report
} // namespace algoprof

#endif // ALGOPROF_REPORT_TREEPRINTER_H

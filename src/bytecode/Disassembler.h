//===- bytecode/Disassembler.h - Bytecode text dump -------------*- C++-*-===//
///
/// \file
/// Renders compiled methods as text for tests and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_DISASSEMBLER_H
#define ALGOPROF_BYTECODE_DISASSEMBLER_H

#include "bytecode/Module.h"

#include <string>

namespace algoprof {
namespace bc {

/// Disassembles one method, one "pc: mnemonic operands" line per
/// instruction, with symbolic names for fields, classes, and methods.
std::string disassemble(const Module &M, const MethodInfo &Method);

/// Disassembles every method in the module.
std::string disassemble(const Module &M);

} // namespace bc
} // namespace algoprof

#endif // ALGOPROF_BYTECODE_DISASSEMBLER_H

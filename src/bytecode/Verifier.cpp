//===- bytecode/Verifier.cpp ----------------------------------------------===//

#include "bytecode/Verifier.h"

#include "obs/Obs.h"

#include <deque>

using namespace algoprof;
using namespace algoprof::bc;

namespace {

/// Stack effect of one instruction: pops then pushes. Returns false for
/// instructions whose operands are invalid (reported separately).
struct Effect {
  int Pops = 0;
  int Pushes = 0;
};

class MethodVerifier {
public:
  MethodVerifier(const Module &M, const MethodInfo &Method)
      : M(M), Method(Method) {}

  std::vector<std::string> run();

private:
  void error(size_t Pc, const std::string &Message) {
    Problems.push_back(Method.QualifiedName + " @" + std::to_string(Pc) +
                       ": " + Message);
  }

  bool validClass(int32_t Id) const {
    return Id >= 0 && Id < static_cast<int32_t>(M.Classes.size());
  }
  bool validField(int32_t Id) const {
    return Id >= 0 && Id < static_cast<int32_t>(M.Fields.size());
  }
  bool validMethod(int32_t Id) const {
    return Id >= 0 && Id < static_cast<int32_t>(M.Methods.size());
  }
  bool validArrayType(TypeId Id) const {
    return Id >= 0 && Id < static_cast<TypeId>(M.Types.size()) &&
           M.Types[static_cast<size_t>(Id)].Kind == RtTypeKind::Array;
  }

  /// Checks operands of the instruction at \p Pc and computes its stack
  /// effect; records problems for invalid operands.
  Effect effectAt(size_t Pc);

  const Module &M;
  const MethodInfo &Method;
  std::vector<std::string> Problems;
};

Effect MethodVerifier::effectAt(size_t Pc) {
  const Instr &I = Method.Code[Pc];
  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::Trap:
    return {0, 0};
  case Opcode::IConst:
  case Opcode::NullConst:
    return {0, 1};
  case Opcode::Load:
    if (I.A < 0 || I.A >= Method.NumLocals)
      error(Pc, "load from local slot " + std::to_string(I.A) +
                    " out of range (locals=" +
                    std::to_string(Method.NumLocals) + ")");
    return {0, 1};
  case Opcode::Store:
    if (I.A < 0 || I.A >= Method.NumLocals)
      error(Pc, "store to local slot " + std::to_string(I.A) +
                    " out of range (locals=" +
                    std::to_string(Method.NumLocals) + ")");
    return {1, 0};
  case Opcode::Dup:
    return {1, 2};
  case Opcode::Pop:
    return {1, 0};
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::RefEq:
  case Opcode::RefNe:
    return {2, 1};
  case Opcode::Neg:
  case Opcode::Not:
    return {1, 1};
  case Opcode::Goto:
    return {0, 0};
  case Opcode::IfTrue:
  case Opcode::IfFalse:
    return {1, 0};
  case Opcode::GetField:
    if (!validField(I.A))
      error(Pc, "getfield with invalid field id " + std::to_string(I.A));
    return {1, 1};
  case Opcode::PutField:
    if (!validField(I.A))
      error(Pc, "putfield with invalid field id " + std::to_string(I.A));
    return {2, 0};
  case Opcode::ALoad:
    return {2, 1};
  case Opcode::AStore:
    return {3, 0};
  case Opcode::ArrayLen:
    return {1, 1};
  case Opcode::NewObject:
    if (!validClass(I.A))
      error(Pc, "newobject with invalid class id " + std::to_string(I.A));
    return {0, 1};
  case Opcode::NewArray:
    if (!validArrayType(I.A))
      error(Pc, "newarray with invalid array type " + std::to_string(I.A));
    return {1, 1};
  case Opcode::NewMulti: {
    if (!validArrayType(I.A)) {
      error(Pc, "newmulti with invalid array type " + std::to_string(I.A));
    } else {
      TypeId Elem = M.Types[static_cast<size_t>(I.A)].Elem;
      if (!validArrayType(Elem))
        error(Pc, "newmulti element type is not an array");
    }
    return {2, 1};
  }
  case Opcode::InvokeStatic:
  case Opcode::InvokeCtor: {
    if (!validMethod(I.A)) {
      error(Pc, "invoke with invalid method id " + std::to_string(I.A));
      return {0, 0};
    }
    const MethodInfo &Callee = M.Methods[static_cast<size_t>(I.A)];
    if (I.Op == Opcode::InvokeStatic && !Callee.IsStatic)
      error(Pc, "invokestatic targets instance method " +
                    Callee.QualifiedName);
    if (I.Op == Opcode::InvokeCtor && !Callee.IsCtor)
      error(Pc, "invokector targets non-constructor " +
                    Callee.QualifiedName);
    return {Callee.NumArgs, Callee.ReturnsValue ? 1 : 0};
  }
  case Opcode::InvokeVirtual: {
    if (!validMethod(I.B)) {
      error(Pc, "invokevirtual with invalid declared method id " +
                    std::to_string(I.B));
      return {0, 0};
    }
    const MethodInfo &Callee = M.Methods[static_cast<size_t>(I.B)];
    if (Callee.VtableSlot != I.A)
      error(Pc, "invokevirtual slot " + std::to_string(I.A) +
                    " does not match " + Callee.QualifiedName);
    if (Callee.IsStatic || Callee.IsCtor)
      error(Pc, "invokevirtual targets non-virtual " +
                    Callee.QualifiedName);
    return {Callee.NumArgs, Callee.ReturnsValue ? 1 : 0};
  }
  case Opcode::Ret:
    // A bare Ret in a value-returning method would leave the caller's
    // stack one short of what its verification assumed — the caller
    // pushes only when the callee actually executed RetVal.
    if (Method.ReturnsValue)
      error(Pc, "ret in value-returning method");
    return {0, 0};
  case Opcode::RetVal:
    if (!Method.ReturnsValue)
      error(Pc, "retval in void method");
    return {1, 0};
  case Opcode::Print:
    return {1, 0};
  case Opcode::ReadInt:
  case Opcode::HasInput:
    return {0, 1};

  // Superinstructions: the stack effect is the net effect of the
  // constituent cluster; operands are validated like the constituents'
  // would be (slot ranges, comparison encoding, arithmetic op).
  case Opcode::FusedCmpBr:
    if (!isValidFusedCmp(I.B))
      error(Pc, "fused.cmpbr with invalid comparison encoding " +
                    std::to_string(I.B));
    return {2, 0};
  case Opcode::FusedLoadLoadCmpBr:
    if (!isValidFusedCmp(I.B))
      error(Pc, "fused.llcmpbr with invalid comparison encoding " +
                    std::to_string(I.B));
    if (packedSlotA(I.Imm) < 0 || packedSlotA(I.Imm) >= Method.NumLocals ||
        packedSlotB(I.Imm) < 0 || packedSlotB(I.Imm) >= Method.NumLocals)
      error(Pc, "fused.llcmpbr local slot out of range (locals=" +
                    std::to_string(Method.NumLocals) + ")");
    return {0, 0};
  case Opcode::FusedLoadConstArith: {
    if (I.A < 0 || I.A >= Method.NumLocals)
      error(Pc, "fused.ldcarith local slot " + std::to_string(I.A) +
                    " out of range (locals=" +
                    std::to_string(Method.NumLocals) + ")");
    Opcode Arith = static_cast<Opcode>(static_cast<uint8_t>(I.B));
    if (I.B < 0 || I.B > 0xff ||
        (Arith != Opcode::Add && Arith != Opcode::Sub && Arith != Opcode::Mul))
      error(Pc, "fused.ldcarith with invalid arithmetic op " +
                    std::to_string(I.B));
    return {0, 1};
  }
  case Opcode::FusedIncLocal:
    if (I.A < 0 || I.A >= Method.NumLocals)
      error(Pc, "fused.inclocal local slot " + std::to_string(I.A) +
                    " out of range (locals=" +
                    std::to_string(Method.NumLocals) + ")");
    return {0, 0};
  }
  error(Pc, "unknown opcode");
  return {0, 0};
}

std::vector<std::string> MethodVerifier::run() {
  size_t N = Method.Code.size();
  if (N == 0) {
    error(0, "empty method body");
    return Problems;
  }
  if (!isTerminator(Method.Code[N - 1].Op))
    error(N - 1, "method does not end in a terminator");
  if (Method.NumArgs > Method.NumLocals)
    error(0, "fewer local slots than arguments");

  // Branch-target validity first; the dataflow assumes targets resolve.
  for (size_t Pc = 0; Pc < N; ++Pc) {
    const Instr &I = Method.Code[Pc];
    if (isBranch(I.Op) &&
        (I.A < 0 || I.A >= static_cast<int32_t>(N)))
      error(Pc, "branch target " + std::to_string(I.A) + " out of range");
  }
  if (!Problems.empty())
    return Problems;

  // Stack-depth dataflow: depth at entry of every reachable pc must be
  // unique; no pop may underflow.
  std::vector<int> DepthAt(N, -1);
  std::deque<size_t> Work;
  DepthAt[0] = 0;
  Work.push_back(0);
  while (!Work.empty()) {
    size_t Pc = Work.front();
    Work.pop_front();
    int Depth = DepthAt[Pc];
    Effect E = effectAt(Pc);
    if (Depth < E.Pops) {
      error(Pc, "operand stack underflow (depth " +
                    std::to_string(Depth) + ", pops " +
                    std::to_string(E.Pops) + ")");
      continue;
    }
    int After = Depth - E.Pops + E.Pushes;

    auto Flow = [&](size_t Succ) {
      if (Succ >= N) {
        // Unreachable for width-1 code (the terminator check already
        // returned), but a fused cluster near the end can fall through
        // past the method — the VM would read out of bounds.
        error(Pc, "falls through past end of method");
        return;
      }
      if (DepthAt[Succ] < 0) {
        DepthAt[Succ] = After;
        Work.push_back(Succ);
      } else if (DepthAt[Succ] != After) {
        error(Succ, "inconsistent stack depth at join (" +
                        std::to_string(DepthAt[Succ]) + " vs " +
                        std::to_string(After) + ")");
      }
    };

    // Fall-through successors step by instrWidth: a fused cluster's
    // shadow pcs are not successors of the head (they stay reachable
    // only as explicit branch targets).
    const Instr &I = Method.Code[Pc];
    if (I.Op == Opcode::Goto) {
      Flow(static_cast<size_t>(I.A));
    } else if (I.Op == Opcode::IfTrue || I.Op == Opcode::IfFalse ||
               I.Op == Opcode::FusedCmpBr ||
               I.Op == Opcode::FusedLoadLoadCmpBr) {
      Flow(static_cast<size_t>(I.A));
      Flow(Pc + static_cast<size_t>(instrWidth(I.Op)));
    } else if (!isTerminator(I.Op)) {
      Flow(Pc + static_cast<size_t>(instrWidth(I.Op)));
    }
    // Ret/RetVal/Trap end the path.
  }
  return Problems;
}

} // namespace

std::vector<std::string> bc::verifyMethod(const Module &M,
                                          const MethodInfo &Method) {
  MethodVerifier V(M, Method);
  return V.run();
}

std::vector<std::string> bc::verifyModule(const Module &M) {
  obs::ScopedSpan Span(obs::Phase::Verify);
  std::vector<std::string> Problems;
  for (const MethodInfo &Method : M.Methods) {
    std::vector<std::string> P = verifyMethod(M, Method);
    Problems.insert(Problems.end(), P.begin(), P.end());
  }
  return Problems;
}

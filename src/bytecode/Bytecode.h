//===- bytecode/Bytecode.h - Stack bytecode ISA -----------------*- C++-*-===//
///
/// \file
/// The JVM-like stack bytecode executed by the AlgoProf VM. The ISA keeps
/// exactly the event-relevant instruction classes of the paper's
/// instrumentation: GetField/PutField, ALoad/AStore, NewObject, calls,
/// and plain branches from which natural loops are recovered.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_BYTECODE_H
#define ALGOPROF_BYTECODE_BYTECODE_H

#include <cstdint>
#include <string>

namespace algoprof {
namespace bc {

/// Bytecode operation codes.
enum class Opcode : uint8_t {
  Nop,

  // Constants and locals.
  IConst,    ///< push Imm
  NullConst, ///< push null reference
  Load,      ///< push locals[A]
  Store,     ///< locals[A] = pop
  Dup,       ///< duplicate top of stack
  Pop,       ///< discard top of stack

  // Integer arithmetic (booleans are 0/1 ints). Add/Sub/Mul/Neg wrap
  // around on overflow (Java two's-complement semantics).
  Add,
  Sub,
  Mul,
  Div, ///< traps on division by zero; INT64_MIN / -1 == INT64_MIN
  Rem, ///< traps on division by zero; INT64_MIN % -1 == 0
  Neg,
  Not, ///< logical not on a 0/1 int

  // Comparisons; push 0/1.
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  CmpEq,
  CmpNe,
  RefEq,
  RefNe,

  // Control flow; A is the target pc.
  Goto,
  IfTrue,  ///< branch when pop != 0
  IfFalse, ///< branch when pop == 0

  // Object and array access.
  GetField, ///< A = field id; [obj] -> [value]; traps on null
  PutField, ///< A = field id; [obj, value] -> []; traps on null
  ALoad,    ///< [arr, idx] -> [value]; traps on null / out of bounds
  AStore,   ///< [arr, idx, value] -> []; traps on null / out of bounds
  ArrayLen, ///< [arr] -> [len]; traps on null

  // Allocation.
  NewObject, ///< A = class id; -> [ref]; fields default-initialized
  NewArray,  ///< A = array type id; [len] -> [ref]
  NewMulti,  ///< A = outer array type id; [d0, d1] -> [ref]; allocates rows

  // Calls. Arguments are pushed left-to-right, receiver (if any) first.
  InvokeStatic,  ///< A = method id
  InvokeVirtual, ///< A = vtable slot; receiver selects the implementation
  InvokeCtor,    ///< A = method id; [obj, args...] -> []

  Ret,    ///< return void
  RetVal, ///< return pop

  // VM intrinsics (external input/output in the paper's cost model).
  Print,    ///< [value] -> []; appends to the output channel
  ReadInt,  ///< -> [value]; consumes from the input channel; traps if empty
  HasInput, ///< -> [0/1]

  Trap, ///< unconditional runtime error (unreachable-code guard)

  // Superinstructions. The fuser (Fuser.h) rewrites eligible clusters
  // of the plain opcodes above into these at prepare time; the rewrite
  // is pc-preserving (interior pcs keep their original instructions as
  // unreachable shadows) so branch targets, loop analyses, and the
  // profiler's per-pc event vocabulary are unchanged. Each fused form
  // executes exactly the constituent semantics, which is possible
  // because every constituent is trap-free and listener-silent.

  /// [cmp; iftrue/iffalse] — A = target pc, B = fused-cmp encoding
  /// (encodeFusedCmp). Width 2.
  FusedCmpBr,
  /// [load s1; load s2; cmp; iftrue/iffalse] — A = target pc, B =
  /// fused-cmp encoding, Imm = packSlots(s1, s2). Width 4.
  FusedLoadLoadCmpBr,
  /// [load s; iconst c; add/sub/mul] — A = s, B = arithmetic opcode,
  /// Imm = c. Width 3.
  FusedLoadConstArith,
  /// [load s; iconst c; add/sub; store s] — A = s, Imm = signed delta
  /// (sub is normalized to an add of the wrapped negation). Width 4.
  FusedIncLocal,
};

/// Number of opcodes, including superinstructions (jump tables, fuzz).
constexpr int NumOpcodes = static_cast<int>(Opcode::FusedIncLocal) + 1;

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Number of original instructions a fused opcode stands for; 1 for
/// every plain opcode. The instructions at pcs [pc+1, pc+width) are the
/// cluster's shadows: still present, only reachable as branch targets.
inline int instrWidth(Opcode Op) {
  switch (Op) {
  case Opcode::FusedCmpBr:
    return 2;
  case Opcode::FusedLoadConstArith:
    return 3;
  case Opcode::FusedLoadLoadCmpBr:
  case Opcode::FusedIncLocal:
    return 4;
  default:
    return 1;
  }
}

/// Widest fused cluster; the VM's fuel accounting demotes to unfused
/// code this many instructions before exhaustion so fuel cuts land on
/// the same instruction in every dispatch tier.
constexpr int MaxFusedWidth = 4;

/// True for the six integer comparisons (not the reference ones, which
/// the fuser never touches).
inline bool isCmpOpcode(Opcode Op) {
  return Op == Opcode::CmpLt || Op == Opcode::CmpLe || Op == Opcode::CmpGt ||
         Op == Opcode::CmpGe || Op == Opcode::CmpEq || Op == Opcode::CmpNe;
}

/// Fused compare+branch B operand: comparison opcode in the high bits,
/// branch sense (1 = iftrue) in bit 0.
inline int32_t encodeFusedCmp(Opcode Cmp, bool BranchIfTrue) {
  return (static_cast<int32_t>(Cmp) << 1) | (BranchIfTrue ? 1 : 0);
}
inline Opcode fusedCmpOp(int32_t B) {
  return static_cast<Opcode>((B >> 1) & 0xff);
}
inline bool fusedBranchIfTrue(int32_t B) { return (B & 1) != 0; }
/// Operand validity for the verifier and disassembler (mutated modules
/// carry arbitrary operands).
inline bool isValidFusedCmp(int32_t B) {
  return B >= 0 && (B >> 1) <= 0xff && isCmpOpcode(fusedCmpOp(B));
}

/// FusedLoadLoadCmpBr packs both local slots into Imm.
inline int64_t packSlots(int32_t SlotA, int32_t SlotB) {
  return (static_cast<int64_t>(SlotA) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(SlotB));
}
inline int32_t packedSlotA(int64_t Imm) {
  return static_cast<int32_t>(Imm >> 32);
}
inline int32_t packedSlotB(int64_t Imm) {
  return static_cast<int32_t>(static_cast<uint64_t>(Imm) & 0xffffffffu);
}

/// One bytecode instruction. A/B are operand indices (field/method/class
/// ids, branch targets, local slots); Imm carries integer constants.
struct Instr {
  Opcode Op = Opcode::Nop;
  int32_t A = 0;
  int32_t B = 0;
  int64_t Imm = 0;
};

/// True when \p Op can transfer control to Instr::A.
inline bool isBranch(Opcode Op) {
  return Op == Opcode::Goto || Op == Opcode::IfTrue || Op == Opcode::IfFalse ||
         Op == Opcode::FusedCmpBr || Op == Opcode::FusedLoadLoadCmpBr;
}

/// True when \p Op never falls through to pc+1.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Goto || Op == Opcode::Ret || Op == Opcode::RetVal ||
         Op == Opcode::Trap;
}

} // namespace bc
} // namespace algoprof

#endif // ALGOPROF_BYTECODE_BYTECODE_H

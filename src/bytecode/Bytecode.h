//===- bytecode/Bytecode.h - Stack bytecode ISA -----------------*- C++-*-===//
///
/// \file
/// The JVM-like stack bytecode executed by the AlgoProf VM. The ISA keeps
/// exactly the event-relevant instruction classes of the paper's
/// instrumentation: GetField/PutField, ALoad/AStore, NewObject, calls,
/// and plain branches from which natural loops are recovered.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_BYTECODE_H
#define ALGOPROF_BYTECODE_BYTECODE_H

#include <cstdint>
#include <string>

namespace algoprof {
namespace bc {

/// Bytecode operation codes.
enum class Opcode : uint8_t {
  Nop,

  // Constants and locals.
  IConst,    ///< push Imm
  NullConst, ///< push null reference
  Load,      ///< push locals[A]
  Store,     ///< locals[A] = pop
  Dup,       ///< duplicate top of stack
  Pop,       ///< discard top of stack

  // Integer arithmetic (booleans are 0/1 ints). Add/Sub/Mul/Neg wrap
  // around on overflow (Java two's-complement semantics).
  Add,
  Sub,
  Mul,
  Div, ///< traps on division by zero; INT64_MIN / -1 == INT64_MIN
  Rem, ///< traps on division by zero; INT64_MIN % -1 == 0
  Neg,
  Not, ///< logical not on a 0/1 int

  // Comparisons; push 0/1.
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  CmpEq,
  CmpNe,
  RefEq,
  RefNe,

  // Control flow; A is the target pc.
  Goto,
  IfTrue,  ///< branch when pop != 0
  IfFalse, ///< branch when pop == 0

  // Object and array access.
  GetField, ///< A = field id; [obj] -> [value]; traps on null
  PutField, ///< A = field id; [obj, value] -> []; traps on null
  ALoad,    ///< [arr, idx] -> [value]; traps on null / out of bounds
  AStore,   ///< [arr, idx, value] -> []; traps on null / out of bounds
  ArrayLen, ///< [arr] -> [len]; traps on null

  // Allocation.
  NewObject, ///< A = class id; -> [ref]; fields default-initialized
  NewArray,  ///< A = array type id; [len] -> [ref]
  NewMulti,  ///< A = outer array type id; [d0, d1] -> [ref]; allocates rows

  // Calls. Arguments are pushed left-to-right, receiver (if any) first.
  InvokeStatic,  ///< A = method id
  InvokeVirtual, ///< A = vtable slot; receiver selects the implementation
  InvokeCtor,    ///< A = method id; [obj, args...] -> []

  Ret,    ///< return void
  RetVal, ///< return pop

  // VM intrinsics (external input/output in the paper's cost model).
  Print,    ///< [value] -> []; appends to the output channel
  ReadInt,  ///< -> [value]; consumes from the input channel; traps if empty
  HasInput, ///< -> [0/1]

  Trap, ///< unconditional runtime error (unreachable-code guard)
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// One bytecode instruction. A/B are operand indices (field/method/class
/// ids, branch targets, local slots); Imm carries integer constants.
struct Instr {
  Opcode Op = Opcode::Nop;
  int32_t A = 0;
  int32_t B = 0;
  int64_t Imm = 0;
};

/// True when \p Op can transfer control to Instr::A.
inline bool isBranch(Opcode Op) {
  return Op == Opcode::Goto || Op == Opcode::IfTrue || Op == Opcode::IfFalse;
}

/// True when \p Op never falls through to pc+1.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Goto || Op == Opcode::Ret || Op == Opcode::RetVal ||
         Op == Opcode::Trap;
}

} // namespace bc
} // namespace algoprof

#endif // ALGOPROF_BYTECODE_BYTECODE_H

//===- bytecode/Compiler.cpp ----------------------------------------------===//

#include "bytecode/Compiler.h"

#include "frontend/Sema.h"
#include "obs/Obs.h"

#include <cassert>
#include <unordered_map>

using namespace algoprof;
using namespace algoprof::bc;

namespace {

class Compiler {
public:
  Compiler(const Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  std::unique_ptr<Module> compile();

private:
  // Declaration phase.
  void declareTypes();
  void declareClass(const ClassDecl &C);
  TypeId typeIdFor(const TypeFE &T);

  // Body compilation.
  void compileMethodBody(const MethodDecl &M);

  // Emission helpers.
  int emit(Opcode Op, int32_t A = 0, int32_t B = 0, int64_t Imm = 0);
  int emitBranch(Opcode Op);
  void patch(int BranchPc, int Target);
  int here() const { return static_cast<int>(Code->size()); }
  int allocTemp();

  // Statements.
  void compileStmt(const Stmt *S);
  void compileBlock(const BlockStmt &B);

  // Expressions.
  void compileExpr(const Expr *E, bool NeedValue = true);
  void compileName(const NameExpr &E);
  void compileBinary(const BinaryExpr &E);
  void compileAssign(const AssignExpr &E, bool NeedValue);
  void compileIncDec(const IncDecExpr &E, bool NeedValue);
  void compileCall(const CallExpr &E, bool NeedValue);
  void compileNewObject(const NewObjectExpr &E, bool NeedValue);
  void compileNewArray(const NewArrayExpr &E);
  void compileDefaultValue(const TypeFE &T);

  int32_t fieldIdFor(const ClassDecl *Owner, int LayoutSlot,
                     const std::string &Name);
  int32_t classIdFor(const ClassDecl *C) const;
  int32_t methodIdFor(const MethodDecl *M) const;

  const Program &P;
  DiagnosticEngine &Diags;
  std::unique_ptr<Module> Mod;

  std::unordered_map<const ClassDecl *, int32_t> ClassIds;
  std::unordered_map<const MethodDecl *, int32_t> MethodIds;
  /// (class id, layout slot) -> global field id.
  std::unordered_map<int64_t, int32_t> FieldIdBySlot;

  // Per-method state.
  MethodInfo *CurInfo = nullptr;
  const MethodDecl *CurDecl = nullptr;
  std::vector<Instr> *Code = nullptr;
  int NextTemp = 0;

  struct LoopCtx {
    std::vector<int> BreakFixups;
    std::vector<int> ContinueFixups;
  };
  std::vector<LoopCtx> LoopStack;
};

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TypeId Compiler::typeIdFor(const TypeFE &T) {
  TypeId Base = -1;
  switch (T.Kind) {
  case TypeKindFE::Int:
    Base = Mod->IntTypeId;
    break;
  case TypeKindFE::Boolean:
    Base = Mod->BoolTypeId;
    break;
  case TypeKindFE::Class: {
    const ClassDecl *C = P.findClass(T.ClassName);
    assert(C && "sema admitted an unknown class");
    Base = Mod->Classes[classIdFor(C)].Type;
    break;
  }
  case TypeKindFE::Void:
    return -1;
  case TypeKindFE::Null:
  case TypeKindFE::Error:
    assert(false && "no runtime type for null/error");
    return -1;
  }
  for (int I = 0; I < T.ArrayDims; ++I)
    Base = Mod->internArrayType(Base);
  return Base;
}

int32_t Compiler::classIdFor(const ClassDecl *C) const {
  auto It = ClassIds.find(C);
  assert(It != ClassIds.end() && "class was not declared");
  return It->second;
}

int32_t Compiler::methodIdFor(const MethodDecl *M) const {
  auto It = MethodIds.find(M);
  assert(It != MethodIds.end() && "method was not declared");
  return It->second;
}

int32_t Compiler::fieldIdFor(const ClassDecl *Owner, int LayoutSlot,
                             const std::string &Name) {
  (void)Name;
  int64_t Key = (static_cast<int64_t>(classIdFor(Owner)) << 32) | LayoutSlot;
  auto It = FieldIdBySlot.find(Key);
  assert(It != FieldIdBySlot.end() && "field was not declared");
  return It->second;
}

void Compiler::declareTypes() {
  Mod->IntTypeId = 0;
  Mod->Types.push_back({RtTypeKind::Int, -1, -1});
  Mod->BoolTypeId = 1;
  Mod->Types.push_back({RtTypeKind::Bool, -1, -1});

  // Assign class ids in superclass-first order.
  std::vector<const ClassDecl *> Order;
  std::unordered_map<const ClassDecl *, bool> Visited;
  // Recursive lambda via explicit stack-free helper.
  struct Visitor {
    std::vector<const ClassDecl *> &Order;
    std::unordered_map<const ClassDecl *, bool> &Visited;
    void visit(const ClassDecl *C) {
      if (!C || Visited[C])
        return;
      Visited[C] = true;
      visit(C->Super);
      Order.push_back(C);
    }
  } V{Order, Visited};
  for (const auto &C : P.Classes)
    V.visit(C.get());

  for (const ClassDecl *C : Order) {
    int32_t Id = static_cast<int32_t>(Mod->Classes.size());
    ClassIds[C] = Id;
    ClassInfo Info;
    Info.Id = Id;
    Info.Name = C->Name;
    Info.SuperId = C->Super ? classIdFor(C->Super) : -1;
    Info.Type = static_cast<TypeId>(Mod->Types.size());
    Mod->Types.push_back({RtTypeKind::Class, Id, -1});
    Mod->Classes.push_back(std::move(Info));
  }

  // Fields and methods (types of members may reference any class, so this
  // runs after all class ids exist).
  for (const ClassDecl *C : Order)
    declareClass(*C);
}

void Compiler::declareClass(const ClassDecl &C) {
  int32_t Id = classIdFor(&C);
  ClassInfo &Info = Mod->Classes[Id];

  // Layout: inherited field ids first, then own fields.
  if (C.Super)
    Info.FieldIds = Mod->Classes[classIdFor(C.Super)].FieldIds;
  for (const auto &F : C.Fields) {
    FieldInfo FI;
    FI.Id = static_cast<int32_t>(Mod->Fields.size());
    FI.ClassId = Id;
    FI.Name = F->Name;
    FI.Type = typeIdFor(F->DeclaredType);
    FI.Slot = fieldLayoutSlot(C, *F);
    assert(FI.Slot == static_cast<int>(Info.FieldIds.size()) &&
           "layout slots must be dense");
    FieldIdBySlot[(static_cast<int64_t>(Id) << 32) | FI.Slot] = FI.Id;
    Info.FieldIds.push_back(FI.Id);
    Mod->Fields.push_back(std::move(FI));
  }
  // Inherited fields resolve through the declaring class's id.
  if (C.Super) {
    int SuperCount = classLayoutSize(*C.Super);
    for (int Slot = 0; Slot < SuperCount; ++Slot) {
      int32_t FieldId = Info.FieldIds[Slot];
      FieldIdBySlot[(static_cast<int64_t>(Id) << 32) | Slot] = FieldId;
    }
  }

  // Vtable: copy the superclass's, then override/append own methods.
  if (C.Super)
    Info.Vtable = Mod->Classes[classIdFor(C.Super)].Vtable;
  for (const auto &M : C.Methods) {
    MethodInfo MI;
    MI.Id = static_cast<int32_t>(Mod->Methods.size());
    MethodIds[M.get()] = MI.Id;
    MI.ClassId = Id;
    MI.Name = M->Name;
    MI.IsStatic = M->IsStatic;
    MI.IsCtor = M->IsCtor;
    MI.NumArgs = static_cast<int32_t>(M->Params.size()) +
                 (M->IsStatic ? 0 : 1);
    MI.NumLocals = M->NumLocalSlots;
    MI.ReturnType = typeIdFor(M->ReturnType);
    MI.ReturnsValue = !M->ReturnType.isVoid() && !M->IsCtor;
    MI.QualifiedName = C.Name + "." + (M->IsCtor ? "<init>" : M->Name);

    if (M->IsCtor) {
      Info.CtorMethodId = MI.Id;
    } else if (!M->IsStatic) {
      int32_t Slot = -1;
      for (size_t I = 0; I < Info.Vtable.size(); ++I)
        if (Mod->Methods[Info.Vtable[I]].Name == M->Name) {
          Slot = static_cast<int32_t>(I);
          break;
        }
      if (Slot < 0) {
        Slot = static_cast<int32_t>(Info.Vtable.size());
        Info.Vtable.push_back(MI.Id);
      } else {
        Info.Vtable[Slot] = MI.Id;
      }
      MI.VtableSlot = Slot;
    }
    Mod->Methods.push_back(std::move(MI));
  }
}

//===----------------------------------------------------------------------===//
// Emission helpers
//===----------------------------------------------------------------------===//

int Compiler::emit(Opcode Op, int32_t A, int32_t B, int64_t Imm) {
  Code->push_back({Op, A, B, Imm});
  return static_cast<int>(Code->size()) - 1;
}

int Compiler::emitBranch(Opcode Op) {
  assert(isBranch(Op) && "emitBranch needs a branch opcode");
  return emit(Op, /*A=*/-1);
}

void Compiler::patch(int BranchPc, int Target) {
  assert(isBranch((*Code)[BranchPc].Op) && "patching a non-branch");
  (*Code)[BranchPc].A = Target;
}

int Compiler::allocTemp() { return NextTemp++; }

//===----------------------------------------------------------------------===//
// Method bodies
//===----------------------------------------------------------------------===//

void Compiler::compileMethodBody(const MethodDecl &M) {
  MethodInfo &Info = Mod->Methods[methodIdFor(&M)];
  CurInfo = &Info;
  CurDecl = &M;
  Code = &Info.Code;
  NextTemp = M.NumLocalSlots;
  LoopStack.clear();

  compileBlock(*M.Body);

  if (Info.ReturnsValue)
    emit(Opcode::Trap); // Sema proved all paths return.
  else
    emit(Opcode::Ret);

  Info.NumLocals = NextTemp;
  CurInfo = nullptr;
  CurDecl = nullptr;
  Code = nullptr;
}

void Compiler::compileBlock(const BlockStmt &B) {
  for (const StmtPtr &S : B.Stmts)
    compileStmt(S.get());
}

void Compiler::compileDefaultValue(const TypeFE &T) {
  if (T.isReference())
    emit(Opcode::NullConst);
  else
    emit(Opcode::IConst, 0, 0, 0);
}

void Compiler::compileStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    compileBlock(*static_cast<const BlockStmt *>(S));
    return;
  case StmtKind::VarDecl: {
    const auto *D = static_cast<const VarDeclStmt *>(S);
    if (D->Init)
      compileExpr(D->Init.get());
    else
      compileDefaultValue(D->DeclaredType);
    emit(Opcode::Store, D->Slot);
    return;
  }
  case StmtKind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    compileExpr(I->Cond.get());
    int ToElse = emitBranch(Opcode::IfFalse);
    compileStmt(I->Then.get());
    if (I->Else) {
      int ToEnd = emitBranch(Opcode::Goto);
      patch(ToElse, here());
      compileStmt(I->Else.get());
      patch(ToEnd, here());
    } else {
      patch(ToElse, here());
    }
    return;
  }
  case StmtKind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    int Header = here();
    CurInfo->Loops.push_back({W->LoopId, Header});
    compileExpr(W->Cond.get());
    int ToExit = emitBranch(Opcode::IfFalse);
    LoopStack.emplace_back();
    compileStmt(W->Body.get());
    int BackEdge = emitBranch(Opcode::Goto);
    patch(BackEdge, Header);
    int Exit = here();
    patch(ToExit, Exit);
    for (int Fix : LoopStack.back().BreakFixups)
      patch(Fix, Exit);
    for (int Fix : LoopStack.back().ContinueFixups)
      patch(Fix, Header);
    LoopStack.pop_back();
    return;
  }
  case StmtKind::For: {
    const auto *F = static_cast<const ForStmt *>(S);
    compileStmt(F->Init.get());
    int Header = here();
    CurInfo->Loops.push_back({F->LoopId, Header});
    int ToExit = -1;
    if (F->Cond) {
      compileExpr(F->Cond.get());
      ToExit = emitBranch(Opcode::IfFalse);
    }
    LoopStack.emplace_back();
    compileStmt(F->Body.get());
    int ContinuePc = here();
    if (F->Update)
      compileExpr(F->Update.get(), /*NeedValue=*/false);
    int BackEdge = emitBranch(Opcode::Goto);
    patch(BackEdge, Header);
    int Exit = here();
    if (ToExit >= 0)
      patch(ToExit, Exit);
    for (int Fix : LoopStack.back().BreakFixups)
      patch(Fix, Exit);
    for (int Fix : LoopStack.back().ContinueFixups)
      patch(Fix, ContinuePc);
    LoopStack.pop_back();
    return;
  }
  case StmtKind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    if (R->Value && !CurDecl->IsCtor) {
      compileExpr(R->Value.get());
      emit(Opcode::RetVal);
    } else {
      emit(Opcode::Ret);
    }
    return;
  }
  case StmtKind::ExprStmt:
    compileExpr(static_cast<const ExprStmt *>(S)->E.get(),
                /*NeedValue=*/false);
    return;
  case StmtKind::Break: {
    assert(!LoopStack.empty() && "sema admitted a stray break");
    int Fix = emitBranch(Opcode::Goto);
    LoopStack.back().BreakFixups.push_back(Fix);
    return;
  }
  case StmtKind::Continue: {
    assert(!LoopStack.empty() && "sema admitted a stray continue");
    int Fix = emitBranch(Opcode::Goto);
    LoopStack.back().ContinueFixups.push_back(Fix);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Compiler::compileExpr(const Expr *E, bool NeedValue) {
  assert(E && "null expression reached the compiler");
  switch (E->kind()) {
  case ExprKind::IntLit:
    emit(Opcode::IConst, 0, 0, static_cast<const IntLitExpr *>(E)->Value);
    break;
  case ExprKind::BoolLit:
    emit(Opcode::IConst, 0, 0,
         static_cast<const BoolLitExpr *>(E)->Value ? 1 : 0);
    break;
  case ExprKind::NullLit:
    emit(Opcode::NullConst);
    break;
  case ExprKind::This:
    emit(Opcode::Load, 0);
    break;
  case ExprKind::Name:
    compileName(*static_cast<const NameExpr *>(E));
    break;
  case ExprKind::Binary:
    compileBinary(*static_cast<const BinaryExpr *>(E));
    break;
  case ExprKind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    compileExpr(U->Operand.get());
    emit(U->Op == UnaryOp::Neg ? Opcode::Neg : Opcode::Not);
    break;
  }
  case ExprKind::Assign:
    compileAssign(*static_cast<const AssignExpr *>(E), NeedValue);
    return; // Handles NeedValue itself.
  case ExprKind::IncDec:
    compileIncDec(*static_cast<const IncDecExpr *>(E), NeedValue);
    return; // Handles NeedValue itself.
  case ExprKind::FieldAccess: {
    const auto *F = static_cast<const FieldAccessExpr *>(E);
    compileExpr(F->Base.get());
    if (F->IsArrayLength)
      emit(Opcode::ArrayLen);
    else
      emit(Opcode::GetField,
           fieldIdFor(F->OwnerClass, F->FieldIndex, F->Name));
    break;
  }
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    compileExpr(I->Base.get());
    compileExpr(I->Index.get());
    emit(Opcode::ALoad);
    break;
  }
  case ExprKind::Call:
    compileCall(*static_cast<const CallExpr *>(E), NeedValue);
    return; // Handles NeedValue itself.
  case ExprKind::NewObject:
    compileNewObject(*static_cast<const NewObjectExpr *>(E), NeedValue);
    return; // Handles NeedValue itself.
  case ExprKind::NewArray:
    compileNewArray(*static_cast<const NewArrayExpr *>(E));
    break;
  }
  if (!NeedValue)
    emit(Opcode::Pop);
}

void Compiler::compileName(const NameExpr &E) {
  switch (E.Resolution) {
  case NameResolution::Local:
    emit(Opcode::Load, E.Slot);
    return;
  case NameResolution::ImplicitField:
    emit(Opcode::Load, 0);
    emit(Opcode::GetField, fieldIdFor(E.OwnerClass, E.FieldIndex, E.Name));
    return;
  case NameResolution::ClassRef:
  case NameResolution::Unresolved:
    assert(false && "sema admitted an unresolved name as a value");
    emit(Opcode::Trap);
    return;
  }
}

void Compiler::compileBinary(const BinaryExpr &E) {
  if (E.Op == BinaryOp::LogicalAnd || E.Op == BinaryOp::LogicalOr) {
    // Short-circuit: [l] dup; branch-out; pop; [r].
    compileExpr(E.Lhs.get());
    emit(Opcode::Dup);
    int Out = emitBranch(E.Op == BinaryOp::LogicalAnd ? Opcode::IfFalse
                                                      : Opcode::IfTrue);
    emit(Opcode::Pop);
    compileExpr(E.Rhs.get());
    patch(Out, here());
    return;
  }

  compileExpr(E.Lhs.get());
  compileExpr(E.Rhs.get());
  bool RefCmp = E.Lhs->Ty.isReference() || E.Rhs->Ty.isReference();
  switch (E.Op) {
  case BinaryOp::Add:
    emit(Opcode::Add);
    return;
  case BinaryOp::Sub:
    emit(Opcode::Sub);
    return;
  case BinaryOp::Mul:
    emit(Opcode::Mul);
    return;
  case BinaryOp::Div:
    emit(Opcode::Div);
    return;
  case BinaryOp::Rem:
    emit(Opcode::Rem);
    return;
  case BinaryOp::Lt:
    emit(Opcode::CmpLt);
    return;
  case BinaryOp::Le:
    emit(Opcode::CmpLe);
    return;
  case BinaryOp::Gt:
    emit(Opcode::CmpGt);
    return;
  case BinaryOp::Ge:
    emit(Opcode::CmpGe);
    return;
  case BinaryOp::Eq:
    emit(RefCmp ? Opcode::RefEq : Opcode::CmpEq);
    return;
  case BinaryOp::Ne:
    emit(RefCmp ? Opcode::RefNe : Opcode::CmpNe);
    return;
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    break; // Handled above.
  }
}

void Compiler::compileAssign(const AssignExpr &E, bool NeedValue) {
  const Expr *Target = E.Target.get();
  switch (Target->kind()) {
  case ExprKind::Name: {
    const auto *N = static_cast<const NameExpr *>(Target);
    if (N->Resolution == NameResolution::Local) {
      compileExpr(E.Value.get());
      if (NeedValue)
        emit(Opcode::Dup);
      emit(Opcode::Store, N->Slot);
      return;
    }
    assert(N->Resolution == NameResolution::ImplicitField &&
           "assignment to a non-lvalue name");
    emit(Opcode::Load, 0);
    compileExpr(E.Value.get());
    if (NeedValue) {
      int Tmp = allocTemp();
      emit(Opcode::Store, Tmp);
      emit(Opcode::Load, Tmp);
      emit(Opcode::PutField, fieldIdFor(N->OwnerClass, N->FieldIndex,
                                        N->Name));
      emit(Opcode::Load, Tmp);
    } else {
      emit(Opcode::PutField, fieldIdFor(N->OwnerClass, N->FieldIndex,
                                        N->Name));
    }
    return;
  }
  case ExprKind::FieldAccess: {
    const auto *F = static_cast<const FieldAccessExpr *>(Target);
    assert(!F->IsArrayLength && "cannot assign to array length");
    compileExpr(F->Base.get());
    compileExpr(E.Value.get());
    int32_t FieldId = fieldIdFor(F->OwnerClass, F->FieldIndex, F->Name);
    if (NeedValue) {
      int Tmp = allocTemp();
      emit(Opcode::Store, Tmp);
      emit(Opcode::Load, Tmp);
      emit(Opcode::PutField, FieldId);
      emit(Opcode::Load, Tmp);
    } else {
      emit(Opcode::PutField, FieldId);
    }
    return;
  }
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(Target);
    compileExpr(I->Base.get());
    compileExpr(I->Index.get());
    compileExpr(E.Value.get());
    if (NeedValue) {
      int Tmp = allocTemp();
      emit(Opcode::Store, Tmp);
      emit(Opcode::Load, Tmp);
      emit(Opcode::AStore);
      emit(Opcode::Load, Tmp);
    } else {
      emit(Opcode::AStore);
    }
    return;
  }
  default:
    assert(false && "sema admitted a non-lvalue assignment target");
    emit(Opcode::Trap);
    return;
  }
}

void Compiler::compileIncDec(const IncDecExpr &E, bool NeedValue) {
  Opcode Delta = E.IsIncrement ? Opcode::Add : Opcode::Sub;
  const Expr *Target = E.Target.get();

  if (Target->kind() == ExprKind::Name) {
    const auto *N = static_cast<const NameExpr *>(Target);
    if (N->Resolution == NameResolution::Local) {
      if (NeedValue && !E.IsPrefix)
        emit(Opcode::Load, N->Slot); // Old value as the result.
      emit(Opcode::Load, N->Slot);
      emit(Opcode::IConst, 0, 0, 1);
      emit(Delta);
      if (NeedValue && E.IsPrefix)
        emit(Opcode::Dup);
      emit(Opcode::Store, N->Slot);
      return;
    }
    assert(N->Resolution == NameResolution::ImplicitField);
    // Rewrite as this.f inc/dec via temps.
    int TmpOld = allocTemp();
    int32_t FieldId = fieldIdFor(N->OwnerClass, N->FieldIndex, N->Name);
    emit(Opcode::Load, 0);
    emit(Opcode::GetField, FieldId);
    emit(Opcode::Store, TmpOld);
    emit(Opcode::Load, 0);
    emit(Opcode::Load, TmpOld);
    emit(Opcode::IConst, 0, 0, 1);
    emit(Delta);
    emit(Opcode::PutField, FieldId);
    if (NeedValue) {
      emit(Opcode::Load, TmpOld);
      if (E.IsPrefix) {
        emit(Opcode::IConst, 0, 0, 1);
        emit(Delta);
      }
    }
    return;
  }

  if (Target->kind() == ExprKind::FieldAccess) {
    const auto *F = static_cast<const FieldAccessExpr *>(Target);
    int TmpBase = allocTemp();
    int TmpOld = allocTemp();
    int32_t FieldId = fieldIdFor(F->OwnerClass, F->FieldIndex, F->Name);
    compileExpr(F->Base.get());
    emit(Opcode::Store, TmpBase);
    emit(Opcode::Load, TmpBase);
    emit(Opcode::GetField, FieldId);
    emit(Opcode::Store, TmpOld);
    emit(Opcode::Load, TmpBase);
    emit(Opcode::Load, TmpOld);
    emit(Opcode::IConst, 0, 0, 1);
    emit(Delta);
    emit(Opcode::PutField, FieldId);
    if (NeedValue) {
      emit(Opcode::Load, TmpOld);
      if (E.IsPrefix) {
        emit(Opcode::IConst, 0, 0, 1);
        emit(Delta);
      }
    }
    return;
  }

  assert(Target->kind() == ExprKind::Index && "bad inc/dec target");
  const auto *I = static_cast<const IndexExpr *>(Target);
  int TmpBase = allocTemp();
  int TmpIdx = allocTemp();
  int TmpOld = allocTemp();
  compileExpr(I->Base.get());
  emit(Opcode::Store, TmpBase);
  compileExpr(I->Index.get());
  emit(Opcode::Store, TmpIdx);
  emit(Opcode::Load, TmpBase);
  emit(Opcode::Load, TmpIdx);
  emit(Opcode::ALoad);
  emit(Opcode::Store, TmpOld);
  emit(Opcode::Load, TmpBase);
  emit(Opcode::Load, TmpIdx);
  emit(Opcode::Load, TmpOld);
  emit(Opcode::IConst, 0, 0, 1);
  emit(Delta);
  emit(Opcode::AStore);
  if (NeedValue) {
    emit(Opcode::Load, TmpOld);
    if (E.IsPrefix) {
      emit(Opcode::IConst, 0, 0, 1);
      emit(Delta);
    }
  }
}

void Compiler::compileCall(const CallExpr &E, bool NeedValue) {
  switch (E.Resolution) {
  case CallResolution::Builtin:
    switch (E.Builtin) {
    case BuiltinFn::Print:
      compileExpr(E.Args[0].get());
      emit(Opcode::Print);
      return;
    case BuiltinFn::ReadInt:
      emit(Opcode::ReadInt);
      if (!NeedValue)
        emit(Opcode::Pop);
      return;
    case BuiltinFn::HasInput:
      emit(Opcode::HasInput);
      if (!NeedValue)
        emit(Opcode::Pop);
      return;
    case BuiltinFn::None:
      break;
    }
    assert(false && "builtin call without a builtin kind");
    return;
  case CallResolution::Static: {
    for (const ExprPtr &A : E.Args)
      compileExpr(A.get());
    emit(Opcode::InvokeStatic, methodIdFor(E.Callee));
    if (Mod->Methods[methodIdFor(E.Callee)].ReturnsValue && !NeedValue)
      emit(Opcode::Pop);
    return;
  }
  case CallResolution::Virtual: {
    if (E.ImplicitThis)
      emit(Opcode::Load, 0);
    else
      compileExpr(E.Receiver.get());
    for (const ExprPtr &A : E.Args)
      compileExpr(A.get());
    const MethodInfo &Callee = Mod->Methods[methodIdFor(E.Callee)];
    assert(Callee.VtableSlot >= 0 && "virtual call to a slotless method");
    // A = vtable slot for dispatch, B = statically resolved method id
    // (arity and diagnostics).
    emit(Opcode::InvokeVirtual, Callee.VtableSlot, Callee.Id);
    if (Callee.ReturnsValue && !NeedValue)
      emit(Opcode::Pop);
    return;
  }
  case CallResolution::Unresolved:
    assert(false && "sema admitted an unresolved call");
    emit(Opcode::Trap);
    return;
  }
}

void Compiler::compileNewObject(const NewObjectExpr &E, bool NeedValue) {
  int32_t ClassId = classIdFor(E.Class);
  emit(Opcode::NewObject, ClassId);
  if (E.Ctor) {
    emit(Opcode::Dup);
    for (const ExprPtr &A : E.Args)
      compileExpr(A.get());
    emit(Opcode::InvokeCtor, methodIdFor(E.Ctor));
  }
  if (!NeedValue)
    emit(Opcode::Pop);
}

void Compiler::compileNewArray(const NewArrayExpr &E) {
  // Element type including the trailing unsized dimensions.
  TypeFE ElemWithExtras = E.ElemType;
  ElemWithExtras.ArrayDims += E.ExtraDims;

  if (E.Dims.size() == 1) {
    compileExpr(E.Dims[0].get());
    TypeId ArrTy = Mod->internArrayType(typeIdFor(ElemWithExtras));
    emit(Opcode::NewArray, ArrTy);
    return;
  }
  if (E.Dims.size() == 2) {
    compileExpr(E.Dims[0].get());
    compileExpr(E.Dims[1].get());
    TypeId Inner = Mod->internArrayType(typeIdFor(ElemWithExtras));
    TypeId Outer = Mod->internArrayType(Inner);
    emit(Opcode::NewMulti, Outer);
    return;
  }
  Diags.error(E.loc(), "arrays with more than two sized dimensions are not "
                       "supported; allocate the inner arrays in a loop");
  emit(Opcode::Trap);
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> Compiler::compile() {
  Mod = std::make_unique<Module>();
  declareTypes();
  for (const auto &C : P.Classes)
    for (const auto &M : C->Methods)
      if (M->Body)
        compileMethodBody(*M);
  if (Diags.hasErrors())
    return nullptr;
  return std::move(Mod);
}

std::unique_ptr<Module> algoprof::compileProgram(const Program &P,
                                                 DiagnosticEngine &Diags) {
  obs::ScopedSpan Span(obs::Phase::Compile);
  Compiler C(P, Diags);
  return C.compile();
}

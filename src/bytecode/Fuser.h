//===- bytecode/Fuser.h - Superinstruction selection ------------*- C++-*-===//
///
/// \file
/// Prepare-time superinstruction fusion. The fuser rewrites eligible
/// clusters of plain opcodes into the Fused* forms of Bytecode.h while
/// keeping the code array pc-for-pc aligned with the original: the
/// cluster head becomes the fused instruction and the interior pcs keep
/// their original instructions as unreachable shadows. That alignment
/// is what makes fusion invisible to everything above the VM — branch
/// targets, CFG/loop recovery, the per-pc loop-event map, and the
/// disassembly all read the same pcs.
///
/// Eligibility is purely local: a cluster fuses only when none of its
/// interior pcs can be entered sideways, i.e. no branch targets them
/// and the caller has not marked them as barriers (the VM passes the
/// loop-event map's interesting targets so every pc that fires an
/// ExecutionListener transition stays a real instruction boundary).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_FUSER_H
#define ALGOPROF_BYTECODE_FUSER_H

#include "bytecode/Module.h"

#include <vector>

namespace algoprof {
namespace bc {

/// Counters from one fuseMethod run (surfaced by bench_overhead and the
/// prepared-program stats).
struct FusionStats {
  int Clusters = 0;    ///< clusters rewritten
  int FusedInstrs = 0; ///< original instructions covered by clusters
};

/// Returns a fused copy of \p Method.Code, same length as the input.
/// \p Barrier, when non-empty, must be Code.size() long; a true entry
/// marks a pc that must not become a cluster interior (cluster heads
/// may be barriers — entering at the head is the normal path).
std::vector<Instr> fuseMethod(const MethodInfo &Method,
                              const std::vector<char> &Barrier,
                              FusionStats *Stats = nullptr);

} // namespace bc
} // namespace algoprof

#endif // ALGOPROF_BYTECODE_FUSER_H

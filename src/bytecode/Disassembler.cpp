//===- bytecode/Disassembler.cpp ------------------------------------------===//

#include "bytecode/Disassembler.h"

using namespace algoprof;
using namespace algoprof::bc;

namespace {

/// True when \p Id indexes into a table of \p Size entries. The
/// disassembler renders arbitrary modules — including corrupted ones the
/// fuzzer's mutator produces — so every operand-derived index is checked
/// and malformed operands print as "<invalid ...>" instead of faulting.
bool inBounds(int32_t Id, size_t Size) {
  return Id >= 0 && static_cast<size_t>(Id) < Size;
}

std::string invalid(const char *What, int32_t Id) {
  return std::string("<invalid ") + What + " " + std::to_string(Id) + ">";
}

} // namespace

std::string bc::disassemble(const Module &M, const MethodInfo &Method) {
  std::string Out;
  Out += Method.QualifiedName + " (args=" + std::to_string(Method.NumArgs) +
         ", locals=" + std::to_string(Method.NumLocals) + ")\n";
  for (size_t Pc = 0; Pc < Method.Code.size(); ++Pc) {
    const Instr &I = Method.Code[Pc];
    Out += "  " + std::to_string(Pc) + ": " + opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::IConst:
      Out += " " + std::to_string(I.Imm);
      break;
    case Opcode::Load:
    case Opcode::Store:
      Out += " $" + std::to_string(I.A);
      break;
    case Opcode::Goto:
    case Opcode::IfTrue:
    case Opcode::IfFalse:
      Out += " @" + std::to_string(I.A);
      break;
    case Opcode::GetField:
    case Opcode::PutField:
      if (inBounds(I.A, M.Fields.size()) &&
          inBounds(M.Fields[I.A].ClassId, M.Classes.size()))
        Out += " " + M.Classes[M.Fields[I.A].ClassId].Name + "." +
               M.Fields[I.A].Name;
      else
        Out += " " + invalid("field", I.A);
      break;
    case Opcode::NewObject:
      if (inBounds(I.A, M.Classes.size()))
        Out += " " + M.Classes[I.A].Name;
      else
        Out += " " + invalid("class", I.A);
      break;
    case Opcode::NewArray:
    case Opcode::NewMulti:
      if (inBounds(I.A, M.Types.size()))
        Out += " " + M.typeName(I.A);
      else
        Out += " " + invalid("type", I.A);
      break;
    case Opcode::InvokeStatic:
    case Opcode::InvokeCtor:
      if (inBounds(I.A, M.Methods.size()))
        Out += " " + M.Methods[I.A].QualifiedName;
      else
        Out += " " + invalid("method", I.A);
      break;
    case Opcode::InvokeVirtual:
      Out += " slot " + std::to_string(I.A);
      break;
    case Opcode::FusedCmpBr:
    case Opcode::FusedLoadLoadCmpBr:
      if (I.Op == Opcode::FusedLoadLoadCmpBr)
        Out += " $" + std::to_string(packedSlotA(I.Imm)) + " $" +
               std::to_string(packedSlotB(I.Imm));
      if (isValidFusedCmp(I.B))
        Out += std::string(" ") + opcodeName(fusedCmpOp(I.B)) +
               (fusedBranchIfTrue(I.B) ? " iftrue" : " iffalse");
      else
        Out += " " + invalid("fused-cmp", I.B);
      Out += " @" + std::to_string(I.A);
      break;
    case Opcode::FusedLoadConstArith:
      Out += " $" + std::to_string(I.A);
      if (I.B >= 0 && I.B <= 0xff)
        Out += std::string(" ") +
               opcodeName(static_cast<Opcode>(static_cast<uint8_t>(I.B)));
      else
        Out += " " + invalid("arith-op", I.B);
      Out += " " + std::to_string(I.Imm);
      break;
    case Opcode::FusedIncLocal:
      Out += " $" + std::to_string(I.A) + " " + std::to_string(I.Imm);
      break;
    default:
      break;
    }
    Out += '\n';
  }
  return Out;
}

std::string bc::disassemble(const Module &M) {
  std::string Out;
  for (const MethodInfo &Method : M.Methods) {
    Out += disassemble(M, Method);
    Out += '\n';
  }
  return Out;
}

//===- bytecode/Disassembler.cpp ------------------------------------------===//

#include "bytecode/Disassembler.h"

using namespace algoprof;
using namespace algoprof::bc;

std::string bc::disassemble(const Module &M, const MethodInfo &Method) {
  std::string Out;
  Out += Method.QualifiedName + " (args=" + std::to_string(Method.NumArgs) +
         ", locals=" + std::to_string(Method.NumLocals) + ")\n";
  for (size_t Pc = 0; Pc < Method.Code.size(); ++Pc) {
    const Instr &I = Method.Code[Pc];
    Out += "  " + std::to_string(Pc) + ": " + opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::IConst:
      Out += " " + std::to_string(I.Imm);
      break;
    case Opcode::Load:
    case Opcode::Store:
      Out += " $" + std::to_string(I.A);
      break;
    case Opcode::Goto:
    case Opcode::IfTrue:
    case Opcode::IfFalse:
      Out += " @" + std::to_string(I.A);
      break;
    case Opcode::GetField:
    case Opcode::PutField:
      Out += " " + M.Classes[M.Fields[I.A].ClassId].Name + "." +
             M.Fields[I.A].Name;
      break;
    case Opcode::NewObject:
      Out += " " + M.Classes[I.A].Name;
      break;
    case Opcode::NewArray:
    case Opcode::NewMulti:
      Out += " " + M.typeName(I.A);
      break;
    case Opcode::InvokeStatic:
    case Opcode::InvokeCtor:
      Out += " " + M.Methods[I.A].QualifiedName;
      break;
    case Opcode::InvokeVirtual:
      Out += " slot " + std::to_string(I.A);
      break;
    default:
      break;
    }
    Out += '\n';
  }
  return Out;
}

std::string bc::disassemble(const Module &M) {
  std::string Out;
  for (const MethodInfo &Method : M.Methods) {
    Out += disassemble(M, Method);
    Out += '\n';
  }
  return Out;
}

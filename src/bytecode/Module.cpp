//===- bytecode/Module.cpp ------------------------------------------------===//

#include "bytecode/Module.h"

#include <cassert>

using namespace algoprof;
using namespace algoprof::bc;

int32_t Module::findClassId(const std::string &Name) const {
  for (const ClassInfo &C : Classes)
    if (C.Name == Name)
      return C.Id;
  return -1;
}

int32_t Module::findMethodId(const std::string &ClassName,
                             const std::string &MethodName) const {
  int32_t ClassId = findClassId(ClassName);
  while (ClassId >= 0) {
    for (const MethodInfo &M : Methods)
      if (M.ClassId == ClassId && M.Name == MethodName && !M.IsCtor)
        return M.Id;
    ClassId = Classes[ClassId].SuperId;
  }
  return -1;
}

TypeId Module::internArrayType(TypeId Elem) {
  auto It = ArrayTypeCache.find(Elem);
  if (It != ArrayTypeCache.end())
    return It->second;
  RuntimeType T;
  T.Kind = RtTypeKind::Array;
  T.Elem = Elem;
  TypeId Id = static_cast<TypeId>(Types.size());
  Types.push_back(T);
  ArrayTypeCache.emplace(Elem, Id);
  return Id;
}

bool Module::isSubclass(int32_t Sub, int32_t Super) const {
  for (int32_t C = Sub; C >= 0; C = Classes[C].SuperId)
    if (C == Super)
      return true;
  return false;
}

std::string Module::typeName(TypeId T) const {
  assert(T >= 0 && T < static_cast<TypeId>(Types.size()) && "bad type id");
  const RuntimeType &RT = Types[T];
  switch (RT.Kind) {
  case RtTypeKind::Int:
    return "int";
  case RtTypeKind::Bool:
    return "boolean";
  case RtTypeKind::Class:
    return Classes[RT.ClassId].Name;
  case RtTypeKind::Array:
    return typeName(RT.Elem) + "[]";
  }
  return "<bad-type>";
}

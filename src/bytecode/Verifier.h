//===- bytecode/Verifier.h - Bytecode well-formedness checks ----*- C++-*-===//
///
/// \file
/// Structural verification of compiled modules, in the spirit of the
/// JVM verifier: branch targets in range, operand ids valid, terminator
/// discipline, and a dataflow check that the operand-stack depth is
/// consistent along all paths and never underflows. The compiler's
/// output is verified in tests; hand-assembled modules (tools, tests)
/// should be verified before execution since the interpreter assumes
/// well-formed code.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_VERIFIER_H
#define ALGOPROF_BYTECODE_VERIFIER_H

#include "bytecode/Module.h"

#include <string>
#include <vector>

namespace algoprof {
namespace bc {

/// Verifies one method; returns human-readable problems (empty = ok).
std::vector<std::string> verifyMethod(const Module &M,
                                      const MethodInfo &Method);

/// Verifies every method of \p M.
std::vector<std::string> verifyModule(const Module &M);

} // namespace bc
} // namespace algoprof

#endif // ALGOPROF_BYTECODE_VERIFIER_H

//===- bytecode/Bytecode.cpp ----------------------------------------------===//

#include "bytecode/Bytecode.h"

using namespace algoprof;
using namespace algoprof::bc;

const char *bc::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::IConst:
    return "iconst";
  case Opcode::NullConst:
    return "nullconst";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Dup:
    return "dup";
  case Opcode::Pop:
    return "pop";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::RefEq:
    return "refeq";
  case Opcode::RefNe:
    return "refne";
  case Opcode::Goto:
    return "goto";
  case Opcode::IfTrue:
    return "iftrue";
  case Opcode::IfFalse:
    return "iffalse";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::ArrayLen:
    return "arraylen";
  case Opcode::NewObject:
    return "newobject";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::NewMulti:
    return "newmulti";
  case Opcode::InvokeStatic:
    return "invokestatic";
  case Opcode::InvokeVirtual:
    return "invokevirtual";
  case Opcode::InvokeCtor:
    return "invokector";
  case Opcode::Ret:
    return "ret";
  case Opcode::RetVal:
    return "retval";
  case Opcode::Print:
    return "print";
  case Opcode::ReadInt:
    return "readint";
  case Opcode::HasInput:
    return "hasinput";
  case Opcode::Trap:
    return "trap";
  case Opcode::FusedCmpBr:
    return "fused.cmpbr";
  case Opcode::FusedLoadLoadCmpBr:
    return "fused.llcmpbr";
  case Opcode::FusedLoadConstArith:
    return "fused.ldcarith";
  case Opcode::FusedIncLocal:
    return "fused.inclocal";
  }
  return "<bad-op>";
}

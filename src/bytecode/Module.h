//===- bytecode/Module.h - Compiled program representation ------*- C++-*-===//
///
/// \file
/// The compiled form of a MiniJ program: runtime types, class layouts and
/// vtables, a global field table, and per-method bytecode with loop
/// source metadata. A Module is immutable after compilation; analyses and
/// the VM share one instance by const reference.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_MODULE_H
#define ALGOPROF_BYTECODE_MODULE_H

#include "bytecode/Bytecode.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace algoprof {
namespace bc {

/// Index into Module::Types.
using TypeId = int32_t;

/// Kind of a runtime type.
enum class RtTypeKind { Int, Bool, Class, Array };

/// A runtime type descriptor.
struct RuntimeType {
  RtTypeKind Kind = RtTypeKind::Int;
  int32_t ClassId = -1; ///< For Class types.
  TypeId Elem = -1;     ///< For Array types.
};

/// A field in the global field table. Inherited fields keep the id of
/// their declaring class, so the field id is stable across subclasses.
struct FieldInfo {
  int32_t Id = -1;
  int32_t ClassId = -1; ///< Declaring class.
  std::string Name;
  TypeId Type = -1;
  int32_t Slot = -1; ///< Index into the object's field storage.
};

/// Source metadata for one loop of a method: ties the AST loop id used by
/// the index-dataflow analysis to the bytecode header pc used by the
/// natural-loop analysis.
struct LoopMeta {
  int32_t AstLoopId = -1;
  int32_t HeaderPc = -1;
};

/// A compiled method.
struct MethodInfo {
  int32_t Id = -1;
  int32_t ClassId = -1;
  std::string Name;
  bool IsStatic = false;
  bool IsCtor = false;
  int32_t NumArgs = 0;   ///< Including the receiver for instance methods.
  int32_t NumLocals = 0; ///< Total local slots (args are a prefix).
  TypeId ReturnType = -1;
  bool ReturnsValue = false;
  int32_t VtableSlot = -1; ///< -1 for statics and ctors.
  std::vector<Instr> Code;
  std::vector<LoopMeta> Loops;

  /// "Class.name" for messages and reports.
  std::string QualifiedName;
};

/// A compiled class.
struct ClassInfo {
  int32_t Id = -1;
  std::string Name;
  int32_t SuperId = -1;
  TypeId Type = -1;
  /// Field ids in layout order; inherited fields form the prefix.
  std::vector<int32_t> FieldIds;
  /// Method ids by vtable slot.
  std::vector<int32_t> Vtable;
  int32_t CtorMethodId = -1;
};

/// A compiled MiniJ program.
class Module {
public:
  std::vector<RuntimeType> Types;
  std::vector<ClassInfo> Classes;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;

  TypeId IntTypeId = -1;
  TypeId BoolTypeId = -1;

  /// Returns the class id for \p Name, or -1.
  int32_t findClassId(const std::string &Name) const;

  /// Returns the method id of "ClassName.MethodName", or -1. Searches
  /// superclasses like a virtual lookup (statics included).
  int32_t findMethodId(const std::string &ClassName,
                       const std::string &MethodName) const;

  /// Interns (or finds) the array type with element type \p Elem. Used by
  /// the compiler only; the Module is immutable afterwards.
  TypeId internArrayType(TypeId Elem);

  /// True when \p Sub is \p Super or inherits from it.
  bool isSubclass(int32_t Sub, int32_t Super) const;

  /// Human-readable name of a type ("int[]", "Node").
  std::string typeName(TypeId T) const;

private:
  std::unordered_map<TypeId, TypeId> ArrayTypeCache;
};

} // namespace bc
} // namespace algoprof

#endif // ALGOPROF_BYTECODE_MODULE_H

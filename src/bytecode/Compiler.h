//===- bytecode/Compiler.h - AST to bytecode compiler -----------*- C++-*-===//
///
/// \file
/// Compiles a sema-checked MiniJ Program into a bc::Module. Loops lower
/// to plain branches; the compiler records only (ast-loop-id, header-pc)
/// pairs so later analyses can cross-reference recovered natural loops
/// with source loops.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_BYTECODE_COMPILER_H
#define ALGOPROF_BYTECODE_COMPILER_H

#include "bytecode/Module.h"
#include "frontend/Ast.h"
#include "support/Diagnostics.h"

#include <memory>

namespace algoprof {

/// Compiles \p P (which must have passed runSema) into a Module.
/// \returns null and reports diagnostics when an unsupported construct is
/// encountered (e.g. arrays with three or more sized 'new' dimensions).
std::unique_ptr<bc::Module> compileProgram(const Program &P,
                                           DiagnosticEngine &Diags);

} // namespace algoprof

#endif // ALGOPROF_BYTECODE_COMPILER_H

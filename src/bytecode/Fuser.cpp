//===- bytecode/Fuser.cpp -------------------------------------------------===//

#include "bytecode/Fuser.h"

using namespace algoprof;
using namespace algoprof::bc;

namespace {

/// Two's-complement negation without signed-overflow UB (wrapNeg of
/// INT64_MIN is INT64_MIN, matching the VM's Neg).
int64_t wrapNeg(int64_t V) {
  return static_cast<int64_t>(0u - static_cast<uint64_t>(V));
}

bool isCondBranch(Opcode Op) {
  return Op == Opcode::IfTrue || Op == Opcode::IfFalse;
}

bool isFusableArith(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul;
}

} // namespace

std::vector<Instr> bc::fuseMethod(const MethodInfo &Method,
                                  const std::vector<char> &Barrier,
                                  FusionStats *Stats) {
  const std::vector<Instr> &Code = Method.Code;
  const size_t N = Code.size();
  std::vector<Instr> Out = Code;

  // A pc is ineligible as a cluster interior when control can enter the
  // cluster there: branch targets, plus any caller-supplied barrier
  // (loop-event targets). Defensive on operands — the fuzz mutator
  // feeds arbitrary modules through prepare.
  std::vector<char> NoInterior(N, 0);
  if (!Barrier.empty() && Barrier.size() == N)
    for (size_t Pc = 0; Pc < N; ++Pc)
      NoInterior[Pc] = Barrier[Pc];
  for (size_t Pc = 0; Pc < N; ++Pc) {
    const Instr &I = Code[Pc];
    if (isBranch(I.Op) && I.A >= 0 && static_cast<size_t>(I.A) < N)
      NoInterior[static_cast<size_t>(I.A)] = 1;
  }

  auto interiorFree = [&](size_t Pc, int Width) {
    if (Pc + static_cast<size_t>(Width) > N)
      return false;
    for (size_t Q = Pc + 1; Q < Pc + static_cast<size_t>(Width); ++Q)
      if (NoInterior[Q])
        return false;
    return true;
  };
  auto validSlot = [&](int32_t Slot) {
    return Slot >= 0 && Slot < Method.NumLocals;
  };

  // Greedy longest-match-first at each pc; on a match, scanning resumes
  // after the cluster so clusters never overlap.
  size_t Pc = 0;
  while (Pc < N) {
    const Instr &I0 = Code[Pc];
    int Width = 0;

    // load s; iconst c; add/sub; store s  ->  fused.inclocal
    if (Width == 0 && I0.Op == Opcode::Load && interiorFree(Pc, 4) &&
        Code[Pc + 1].Op == Opcode::IConst &&
        (Code[Pc + 2].Op == Opcode::Add || Code[Pc + 2].Op == Opcode::Sub) &&
        Code[Pc + 3].Op == Opcode::Store && Code[Pc + 3].A == I0.A &&
        validSlot(I0.A)) {
      int64_t C = Code[Pc + 1].Imm;
      int64_t Delta = Code[Pc + 2].Op == Opcode::Sub ? wrapNeg(C) : C;
      Out[Pc] = Instr{Opcode::FusedIncLocal, I0.A, 0, Delta};
      Width = 4;
    }

    // load s1; load s2; cmp; iftrue/iffalse t  ->  fused.llcmpbr
    if (Width == 0 && I0.Op == Opcode::Load && interiorFree(Pc, 4) &&
        Code[Pc + 1].Op == Opcode::Load && isCmpOpcode(Code[Pc + 2].Op) &&
        isCondBranch(Code[Pc + 3].Op) && validSlot(I0.A) &&
        validSlot(Code[Pc + 1].A) && Code[Pc + 3].A >= 0 &&
        static_cast<size_t>(Code[Pc + 3].A) < N) {
      Out[Pc] = Instr{Opcode::FusedLoadLoadCmpBr, Code[Pc + 3].A,
                      encodeFusedCmp(Code[Pc + 2].Op,
                                     Code[Pc + 3].Op == Opcode::IfTrue),
                      packSlots(I0.A, Code[Pc + 1].A)};
      Width = 4;
    }

    // load s; iconst c; add/sub/mul  ->  fused.ldcarith
    if (Width == 0 && I0.Op == Opcode::Load && interiorFree(Pc, 3) &&
        Code[Pc + 1].Op == Opcode::IConst && isFusableArith(Code[Pc + 2].Op) &&
        validSlot(I0.A)) {
      Out[Pc] = Instr{Opcode::FusedLoadConstArith, I0.A,
                      static_cast<int32_t>(Code[Pc + 2].Op),
                      Code[Pc + 1].Imm};
      Width = 3;
    }

    // cmp; iftrue/iffalse t  ->  fused.cmpbr
    if (Width == 0 && isCmpOpcode(I0.Op) && interiorFree(Pc, 2) &&
        isCondBranch(Code[Pc + 1].Op) && Code[Pc + 1].A >= 0 &&
        static_cast<size_t>(Code[Pc + 1].A) < N) {
      Out[Pc] = Instr{Opcode::FusedCmpBr, Code[Pc + 1].A,
                      encodeFusedCmp(I0.Op, Code[Pc + 1].Op == Opcode::IfTrue),
                      0};
      Width = 2;
    }

    if (Width > 0) {
      if (Stats) {
        ++Stats->Clusters;
        Stats->FusedInstrs += Width;
      }
      Pc += static_cast<size_t>(Width);
    } else {
      // Pre-fused input (mutants can contain fused opcodes): skip the
      // whole cluster so we never fuse into its shadow region.
      Pc += static_cast<size_t>(instrWidth(I0.Op));
    }
  }
  return Out;
}

//===- obs/MetricsExport.cpp ----------------------------------------------===//

#include "obs/MetricsExport.h"

#include <cinttypes>
#include <cstdio>

using namespace algoprof;
using namespace algoprof::obs;

std::string obs::prometheusText(const Snapshot &S) {
  std::string Out;
  char Buf[160];

  Out += "# HELP algoprof_counter_total Work-volume counters of the "
         "profiling pipeline.\n";
  Out += "# TYPE algoprof_counter_total counter\n";
  for (size_t I = 0; I < NumCounters; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "algoprof_counter_total{counter=\"%s\"} %" PRIu64 "\n",
                  counterName(static_cast<Counter>(I)), S.Counters[I]);
    Out += Buf;
  }

  Out += "# HELP algoprof_gauge Point-in-time levels sampled at "
         "snapshot.\n";
  Out += "# TYPE algoprof_gauge gauge\n";
  for (size_t I = 0; I < NumGauges; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "algoprof_gauge{gauge=\"%s\"} %" PRIu64 "\n",
                  gaugeName(static_cast<Gauge>(I)), S.Gauges[I]);
    Out += Buf;
  }

  Out += "# HELP algoprof_phase_seconds_total Wall time accumulated per "
         "pipeline phase.\n";
  Out += "# TYPE algoprof_phase_seconds_total counter\n";
  for (size_t I = 0; I < NumPhases; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "algoprof_phase_seconds_total{phase=\"%s\"} %.9f\n",
                  phaseName(static_cast<Phase>(I)),
                  static_cast<double>(S.PhaseNs[I]) / 1e9);
    Out += Buf;
  }

  Out += "# HELP algoprof_phase_calls_total Scope entries per pipeline "
         "phase.\n";
  Out += "# TYPE algoprof_phase_calls_total counter\n";
  for (size_t I = 0; I < NumPhases; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "algoprof_phase_calls_total{phase=\"%s\"} %" PRIu64 "\n",
                  phaseName(static_cast<Phase>(I)), S.PhaseCalls[I]);
    Out += Buf;
  }

  return Out;
}

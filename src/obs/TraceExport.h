//===- obs/TraceExport.h - Chrome trace-event JSON export -------*- C++-*-===//
///
/// \file
/// Serializes an obs::Snapshot's span events into the Chrome
/// trace-event JSON format, loadable in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. Each obs track becomes one named thread lane, so
/// a sharded sweep renders as one track per shard.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_OBS_TRACEEXPORT_H
#define ALGOPROF_OBS_TRACEEXPORT_H

#include "obs/Obs.h"

#include <string>

namespace algoprof {
namespace obs {

/// Renders \p S as a Chrome trace-event JSON document. Deterministic:
/// events come out in the Snapshot's (Track, StartNs, DurNs, P) order,
/// track-name metadata first. Timestamps are microseconds with
/// sub-microsecond fractions preserved.
std::string chromeTraceJson(const Snapshot &S);

} // namespace obs
} // namespace algoprof

#endif // ALGOPROF_OBS_TRACEEXPORT_H

//===- obs/Obs.cpp --------------------------------------------------------===//

#include "obs/Obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

using namespace algoprof;
using namespace algoprof::obs;

//===----------------------------------------------------------------------===//
// Names and snapshot arithmetic (built in both ON and OFF modes, so the
// exporters and their tests always link)
//===----------------------------------------------------------------------===//

const char *obs::phaseName(Phase P) {
  switch (P) {
  case Phase::Lex:
    return "lex";
  case Phase::Parse:
    return "parse";
  case Phase::Sema:
    return "sema";
  case Phase::Compile:
    return "compile";
  case Phase::Verify:
    return "verify";
  case Phase::Prepare:
    return "prepare";
  case Phase::Dataflow:
    return "dataflow";
  case Phase::VmRun:
    return "vm_run";
  case Phase::Snapshot:
    return "snapshot";
  case Phase::Grouping:
    return "grouping";
  case Phase::Classify:
    return "classify";
  case Phase::Fit:
    return "fit";
  case Phase::BuildProfiles:
    return "build_profiles";
  case Phase::ShardRun:
    return "shard_run";
  case Phase::ShardMerge:
    return "shard_merge";
  case Phase::Report:
    return "report";
  }
  return "?";
}

const char *obs::counterName(Counter C) {
  switch (C) {
  case Counter::BytecodesExecuted:
    return "bytecodes_executed";
  case Counter::RunsCompleted:
    return "runs_completed";
  case Counter::HeapObjects:
    return "heap_objects";
  case Counter::TreeNodes:
    return "tree_nodes";
  case Counter::TraversalSteps:
    return "traversal_steps";
  case Counter::ListenerEvents:
    return "listener_events";
  case Counter::FitEvaluations:
    return "fit_evaluations";
  case Counter::ShardsMerged:
    return "shards_merged";
  case Counter::TraceEventsDropped:
    return "trace_events_dropped";
  case Counter::FaultsInjected:
    return "faults_injected";
  case Counter::RunsRetried:
    return "runs_retried";
  case Counter::RunsQuarantined:
    return "runs_quarantined";
  case Counter::RunsBudgetExceeded:
    return "runs_budget_exceeded";
  case Counter::JobsExecuted:
    return "jobs_executed";
  case Counter::JobsStolen:
    return "jobs_stolen";
  case Counter::CorpusCompiles:
    return "corpus_compiles";
  case Counter::CorpusCompileHits:
    return "corpus_compile_hits";
  case Counter::SessionsAccepted:
    return "sessions_accepted";
  case Counter::SessionsRejected:
    return "sessions_rejected";
  case Counter::SessionsCompleted:
    return "sessions_completed";
  case Counter::BytesStreamed:
    return "bytes_streamed";
  case Counter::DeltasStreamed:
    return "deltas_streamed";
  case Counter::DeltasDropped:
    return "deltas_dropped";
  case Counter::JobsReplayed:
    return "jobs_replayed";
  case Counter::AuthFailures:
    return "auth_failures";
  case Counter::HealthChecks:
    return "health_checks";
  case Counter::ResultsEvicted:
    return "results_evicted";
  }
  return "?";
}

const char *obs::gaugeName(Gauge G) {
  switch (G) {
  case Gauge::RetiredThreads:
    return "retired_threads";
  case Gauge::TraceEventsBuffered:
    return "trace_events_buffered";
  }
  return "?";
}

Snapshot Snapshot::deltaFrom(const Snapshot &Earlier) const {
  Snapshot D;
  D.Gauges = Gauges;
  for (size_t I = 0; I < NumCounters; ++I)
    D.Counters[I] = Counters[I] - Earlier.Counters[I];
  for (size_t I = 0; I < NumPhases; ++I) {
    D.PhaseNs[I] = PhaseNs[I] - Earlier.PhaseNs[I];
    D.PhaseCalls[I] = PhaseCalls[I] - Earlier.PhaseCalls[I];
  }
  return D;
}

#if ALGOPROF_OBS_ENABLED

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// Spans kept per thread before the export cap kicks in. Traces are a
/// debugging artifact, not a production log; the cap bounds memory on
/// pathological span volume and is surfaced via TraceEventsDropped.
constexpr size_t MaxEventsPerThread = 1 << 18;

/// All mutable per-thread state. Plain integers: only the owning thread
/// writes, and only the owning thread (snapshot of self) or the
/// retirement path (after the thread is gone) reads.
struct ThreadState {
  std::array<uint64_t, NumCounters> Counters{};
  std::array<uint64_t, NumPhases> PhaseNs{};
  std::array<uint64_t, NumPhases> PhaseCalls{};
  std::vector<TraceEvent> Events;
  int32_t Track = 0;         ///< Registration ordinal (default lane).
  int32_t TrackOverride = 0; ///< Non-zero inside a ScopedTrack.
};

struct Global {
  std::mutex M;
  ThreadState Retired; ///< Sum of all exited threads (under M).
  uint64_t RetiredThreads = 0; ///< How many have folded in (under M).
  std::map<int32_t, std::string> TrackNames; ///< Under M.
  std::atomic<int32_t> NextTrack{1};
  std::atomic<bool> Tracing{false};
  std::atomic<ClockFn> Clock{nullptr};
};

Global &global() {
  static Global G;
  return G;
}

void foldInto(ThreadState &Dst, const ThreadState &Src) {
  for (size_t I = 0; I < NumCounters; ++I)
    Dst.Counters[I] += Src.Counters[I];
  for (size_t I = 0; I < NumPhases; ++I) {
    Dst.PhaseNs[I] += Src.PhaseNs[I];
    Dst.PhaseCalls[I] += Src.PhaseCalls[I];
  }
  size_t Room = MaxEventsPerThread > Dst.Events.size()
                    ? MaxEventsPerThread - Dst.Events.size()
                    : 0;
  size_t Take = std::min(Room, Src.Events.size());
  Dst.Events.insert(Dst.Events.end(), Src.Events.begin(),
                    Src.Events.begin() + static_cast<ptrdiff_t>(Take));
  Dst.Counters[static_cast<size_t>(Counter::TraceEventsDropped)] +=
      Src.Events.size() - Take;
}

/// The calling thread's state; folds itself into the retired pool on
/// thread exit (always before std::thread::join returns, which is what
/// makes the sweep engine's shard stats visible after the join).
struct TlsHolder {
  ThreadState S;
  TlsHolder() {
    S.Track = global().NextTrack.fetch_add(1, std::memory_order_relaxed);
  }
  ~TlsHolder() {
    Global &G = global();
    std::lock_guard<std::mutex> Lock(G.M);
    foldInto(G.Retired, S);
    G.RetiredThreads += 1;
  }
};

ThreadState &tls() {
  thread_local TlsHolder T;
  return T.S;
}

} // namespace

uint64_t detail::nowNs() {
  if (ClockFn Fn = global().Clock.load(std::memory_order_relaxed))
    return Fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void detail::recordPhase(Phase P, uint64_t StartNs, uint64_t EndNs,
                         bool Traced) {
  ThreadState &S = tls();
  size_t I = static_cast<size_t>(P);
  S.PhaseNs[I] += EndNs - StartNs;
  S.PhaseCalls[I] += 1;
  if (!Traced || !global().Tracing.load(std::memory_order_relaxed))
    return;
  if (S.Events.size() >= MaxEventsPerThread) {
    S.Counters[static_cast<size_t>(Counter::TraceEventsDropped)] += 1;
    return;
  }
  TraceEvent E;
  E.P = P;
  E.Track = S.TrackOverride ? S.TrackOverride : S.Track;
  E.StartNs = StartNs;
  E.DurNs = EndNs - StartNs;
  S.Events.push_back(E);
}

int32_t detail::exchangeTrackOverride(int32_t Track) {
  ThreadState &S = tls();
  int32_t Prev = S.TrackOverride;
  S.TrackOverride = Track;
  return Prev;
}

void obs::setClockForTest(ClockFn Fn) {
  global().Clock.store(Fn, std::memory_order_relaxed);
}

void obs::enableTracing(bool On) {
  global().Tracing.store(On, std::memory_order_relaxed);
}

bool obs::tracingEnabled() {
  return global().Tracing.load(std::memory_order_relaxed);
}

void obs::setTrackName(int32_t Track, std::string Name) {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.M);
  G.TrackNames[Track] = std::move(Name);
}

void obs::addCount(Counter C, uint64_t N) {
  tls().Counters[static_cast<size_t>(C)] += N;
}

Snapshot obs::snapshot() {
  Global &G = global();
  ThreadState Sum;
  uint64_t RetiredThreads;
  {
    std::lock_guard<std::mutex> Lock(G.M);
    Sum = G.Retired;
    foldInto(Sum, tls());
    RetiredThreads = G.RetiredThreads;
  }
  Snapshot S;
  S.Gauges[static_cast<size_t>(Gauge::RetiredThreads)] = RetiredThreads;
  S.Gauges[static_cast<size_t>(Gauge::TraceEventsBuffered)] =
      Sum.Events.size();
  S.Counters = Sum.Counters;
  S.PhaseNs = Sum.PhaseNs;
  S.PhaseCalls = Sum.PhaseCalls;
  S.Events = std::move(Sum.Events);
  std::sort(S.Events.begin(), S.Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.Track != B.Track)
                return A.Track < B.Track;
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.DurNs != B.DurNs)
                return A.DurNs > B.DurNs; // Enclosing span first.
              return static_cast<int>(A.P) < static_cast<int>(B.P);
            });
  {
    std::lock_guard<std::mutex> Lock(G.M);
    S.TrackNames = G.TrackNames;
  }
  return S;
}

void obs::flushThisThread() {
  Global &G = global();
  ThreadState &S = tls();
  std::lock_guard<std::mutex> Lock(G.M);
  foldInto(G.Retired, S);
  // Keep the lane assignments: the thread is still alive and its next
  // span must land on the same trace track. RetiredThreads is *not*
  // bumped — that gauge counts actual thread exits.
  int32_t Track = S.Track;
  int32_t Override = S.TrackOverride;
  S = ThreadState();
  S.Track = Track;
  S.TrackOverride = Override;
}

void obs::resetForTest() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.M);
  int32_t Track = tls().Track; // Keep the thread's lane id.
  G.Retired = ThreadState();
  G.RetiredThreads = 0;
  G.TrackNames.clear();
  tls() = ThreadState();
  tls().Track = Track;
}

#endif // ALGOPROF_OBS_ENABLED

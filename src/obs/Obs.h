//===- obs/Obs.h - Self-observability registry ------------------*- C++-*-===//
///
/// \file
/// AlgoProf's own measurement substrate: a low-overhead registry of
/// counters and phase timers that instruments the profiler itself —
/// frontend, VM, listener, input sizing, sweep shards, curve fitting —
/// so perf work on the pipeline can attribute time to a phase instead
/// of a wall-clock blob (docs/observability.md).
///
/// Design constraints, in order:
///  1. Compile-time no-op. Built with `-DALGOPROF_OBS=OFF` every call
///     below is an empty inline function; the instrumentation sites
///     stay in the source and the optimizer deletes them.
///  2. Thread-safe without hot-path synchronization. All increments go
///     to plain (non-atomic) thread-local state. A thread's state is
///     folded into a mutex-guarded shared pool when the thread exits —
///     or whenever the thread calls flushThisThread(), which is how
///     long-lived pool workers publish completed work without retiring
///     (parallel::JobSystem flushes after every job, so a live
///     `/metrics` scrape from the daemon sees worker counters mid-pool-
///     lifetime). snapshot() reads the shared pool plus the *calling
///     thread's* own state; only another thread's *in-flight* work is
///     invisible, which is what keeps the registry TSan-clean.
///  3. Deterministic tests. The clock is injectable (setClockForTest),
///     so trace/metrics golden files are byte-stable.
///
/// Two instrumentation primitives:
///  - ScopedTimer: accumulates elapsed time into a phase (aggregate
///    only). Use in per-invocation hot spots.
///  - ScopedSpan: like ScopedTimer, and additionally records a trace
///    event (when tracing is enabled) for the Chrome trace-event
///    export (obs/TraceExport.h). Use for coarse pipeline phases.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_OBS_OBS_H
#define ALGOPROF_OBS_OBS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace algoprof {
namespace obs {

/// The instrumented pipeline phases. One span track per phase name in
/// the Chrome trace export; one labeled series per phase in the
/// Prometheus snapshot.
enum class Phase : uint8_t {
  Lex,           ///< frontend: token stream production.
  Parse,         ///< frontend: AST construction.
  Sema,          ///< frontend: semantic analysis.
  Compile,       ///< bytecode: AST -> module.
  Verify,        ///< bytecode: module verification.
  Prepare,       ///< vm: CFG/loops/call-graph/recursive-type analyses.
  Dataflow,      ///< analysis: index dataflow (grouping extension).
  VmRun,         ///< vm: one interpreter run (profiled or plain).
  Snapshot,      ///< core: InputTable full snapshot traversals.
  Grouping,      ///< core: repetition tree -> algorithms.
  Classify,      ///< core: per-algorithm classification.
  Fit,           ///< fitting: model family evaluation + selection.
  BuildProfiles, ///< core: the whole profile pipeline back half.
  ShardRun,      ///< parallel: one sweep shard's profiled run.
  ShardMerge,    ///< parallel: run-order reduction of shards.
  Report,        ///< report: rendering/export of any reporter.
};
constexpr size_t NumPhases = static_cast<size_t>(Phase::Report) + 1;

/// Stable snake_case name ("vm_run"), used by both exporters.
const char *phaseName(Phase P);

/// Volume counters: how much work the pipeline did, independent of the
/// clock.
enum class Counter : uint8_t {
  BytecodesExecuted, ///< VM instructions retired.
  RunsCompleted,     ///< Interpreter runs finished (any status).
  HeapObjects,       ///< Objects + arrays allocated.
  TreeNodes,         ///< Repetition tree nodes created (merges included).
  TraversalSteps,    ///< Objects/slots visited by input-size snapshots.
  ListenerEvents,    ///< Hot profiler callbacks delivered.
  FitEvaluations,    ///< Candidate models evaluated by the fitter.
  ShardsMerged,      ///< Sweep shards folded into an accumulator.
  TraceEventsDropped, ///< Spans discarded by the per-thread event cap.
  FaultsInjected,     ///< Armed fault-plan sites that fired.
  RunsRetried,        ///< Failed runs re-executed under the retry policy.
  RunsQuarantined,    ///< Runs excluded from a degraded merge.
  RunsBudgetExceeded, ///< Runs ended by a heap-byte/deadline budget.
  JobsExecuted,       ///< Jobs run by the work-stealing pool's workers.
  JobsStolen,         ///< Jobs a worker took from another worker's deque.
  CorpusCompiles,     ///< Programs compiled by the corpus compile cache.
  CorpusCompileHits,  ///< Compile-cache requests served without compiling.
  SessionsAccepted,   ///< Daemon job requests admitted past the quotas.
  SessionsRejected,   ///< Daemon job requests refused (protocol error,
                      ///< quota, or the concurrent-session cap).
  SessionsCompleted,  ///< Daemon sessions that streamed a final profile.
  BytesStreamed,      ///< Frame payload bytes the daemon wrote to clients.
  DeltasStreamed,     ///< RunDelta frames handed to client send buffers.
  DeltasDropped,      ///< RunDelta frames shed by slow-client backpressure.
  JobsReplayed,       ///< Journaled jobs re-executed after a daemon restart.
  AuthFailures,       ///< TCP jobs refused for a bad or missing auth token.
  HealthChecks,       ///< GET /healthz and /readyz probes answered.
  ResultsEvicted,     ///< Retained session results dropped by byte/TTL bounds.
};
constexpr size_t NumCounters =
    static_cast<size_t>(Counter::ResultsEvicted) + 1;

/// Stable snake_case name ("bytecodes_executed").
const char *counterName(Counter C);

/// Gauges: point-in-time levels, sampled when a snapshot is taken
/// (never written on hot paths).
enum class Gauge : uint8_t {
  RetiredThreads,      ///< Threads folded into the retired pool so far.
  TraceEventsBuffered, ///< Span events held for the next trace export.
};
constexpr size_t NumGauges =
    static_cast<size_t>(Gauge::TraceEventsBuffered) + 1;

/// Stable snake_case name ("retired_threads").
const char *gaugeName(Gauge G);

/// One completed span, for the Chrome trace export. Track is a trace
/// lane: by default the recording thread's registration ordinal; sweep
/// shards override it so every shard gets its own named track
/// regardless of which worker thread ran it.
struct TraceEvent {
  Phase P = Phase::Lex;
  int32_t Track = 0;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
};

/// A consistent copy of the registry: retired threads plus the calling
/// thread. Live *other* threads are excluded by design (see the
/// thread-safety note in the file comment).
struct Snapshot {
  std::array<uint64_t, NumCounters> Counters{};
  std::array<uint64_t, NumPhases> PhaseNs{};
  std::array<uint64_t, NumPhases> PhaseCalls{};
  std::array<uint64_t, NumGauges> Gauges{};
  /// Sorted by (Track, StartNs, DurNs, P) for deterministic export.
  std::vector<TraceEvent> Events;
  std::map<int32_t, std::string> TrackNames;

  /// Counter/timer difference vs an earlier snapshot (events and track
  /// names are not carried over, and gauges — levels, not flows — keep
  /// this snapshot's values); how benchmarks attribute one
  /// configuration's work.
  Snapshot deltaFrom(const Snapshot &Earlier) const;
};

} // namespace obs
} // namespace algoprof

#if !defined(ALGOPROF_OBS_ENABLED)
#define ALGOPROF_OBS_ENABLED 1
#endif

#if ALGOPROF_OBS_ENABLED

namespace algoprof {
namespace obs {

/// Nanosecond monotonic clock source. Null restores steady_clock.
using ClockFn = uint64_t (*)();
void setClockForTest(ClockFn Fn);

/// Span recording is off by default (counters/timers are always on);
/// the CLI's --trace enables it before any work runs.
void enableTracing(bool On);
bool tracingEnabled();

/// Names a trace track ("shard 3"); exported as Chrome thread_name
/// metadata.
void setTrackName(int32_t Track, std::string Name);

/// Adds \p N to counter \p C (calling thread's state; wait-free).
void addCount(Counter C, uint64_t N = 1);

/// Merges retired threads + the calling thread into one view.
Snapshot snapshot();

/// Folds the calling thread's state into the registry's shared pool and
/// clears the thread-local view (the trace lane assignment survives).
/// Long-lived threads that never retire — pool workers, daemon service
/// threads — call this at work-item boundaries so a snapshot taken from
/// *another* thread (a live `/metrics` scrape) sees their completed
/// work instead of undercounting until thread exit. parallel::JobSystem
/// workers flush after every job.
void flushThisThread();

/// Clears everything, including the calling thread's state. Test-only:
/// callers must guarantee no other instrumented thread is running.
void resetForTest();

namespace detail {
uint64_t nowNs();
void recordPhase(Phase P, uint64_t StartNs, uint64_t EndNs, bool Traced);
int32_t exchangeTrackOverride(int32_t Track);
} // namespace detail

/// Accumulates elapsed wall time into \p P. Aggregate only — never
/// emits a trace event, so it is safe in per-invocation hot spots.
class ScopedTimer {
public:
  explicit ScopedTimer(Phase P) : P(P), Start(detail::nowNs()) {}
  ~ScopedTimer() { detail::recordPhase(P, Start, detail::nowNs(), false); }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Phase P;
  uint64_t Start;
};

/// ScopedTimer plus a trace event when tracing is enabled. Use for
/// coarse phases (compile stages, runs, shards, report rendering).
class ScopedSpan {
public:
  explicit ScopedSpan(Phase P) : P(P), Start(detail::nowNs()) {}
  ~ScopedSpan() { detail::recordPhase(P, Start, detail::nowNs(), true); }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  Phase P;
  uint64_t Start;
};

/// Redirects the calling thread's trace events to \p Track for the
/// scope's lifetime (sweep shards: one track per run index).
class ScopedTrack {
public:
  explicit ScopedTrack(int32_t Track)
      : Prev(detail::exchangeTrackOverride(Track)) {}
  ~ScopedTrack() { detail::exchangeTrackOverride(Prev); }
  ScopedTrack(const ScopedTrack &) = delete;
  ScopedTrack &operator=(const ScopedTrack &) = delete;

private:
  int32_t Prev;
};

} // namespace obs
} // namespace algoprof

#else // !ALGOPROF_OBS_ENABLED

// The no-op surface: identical signatures, empty bodies, zero state.
// Instrumentation sites compile to nothing.
namespace algoprof {
namespace obs {

using ClockFn = uint64_t (*)();
inline void setClockForTest(ClockFn) {}
inline void enableTracing(bool) {}
inline bool tracingEnabled() { return false; }
inline void setTrackName(int32_t, std::string) {}
inline void addCount(Counter, uint64_t = 1) {}
inline Snapshot snapshot() { return Snapshot(); }
inline void flushThisThread() {}
inline void resetForTest() {}

class ScopedTimer {
public:
  explicit ScopedTimer(Phase) {}
};
class ScopedSpan {
public:
  explicit ScopedSpan(Phase) {}
};
class ScopedTrack {
public:
  explicit ScopedTrack(int32_t) {}
};

} // namespace obs
} // namespace algoprof

#endif // ALGOPROF_OBS_ENABLED

#endif // ALGOPROF_OBS_OBS_H

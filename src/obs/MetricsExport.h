//===- obs/MetricsExport.h - Prometheus-style text snapshot -----*- C++-*-===//
///
/// \file
/// Serializes an obs::Snapshot's counters and phase timers into the
/// Prometheus text exposition format (one scrape's worth; AlgoProf is
/// a batch tool, so this is a final snapshot, not an endpoint).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_OBS_METRICSEXPORT_H
#define ALGOPROF_OBS_METRICSEXPORT_H

#include "obs/Obs.h"

#include <string>

namespace algoprof {
namespace obs {

/// Renders \p S as Prometheus text format. Every counter and phase is
/// printed, zeros included, so the layout is byte-stable across runs
/// that exercise different pipeline subsets.
std::string prometheusText(const Snapshot &S);

} // namespace obs
} // namespace algoprof

#endif // ALGOPROF_OBS_METRICSEXPORT_H

//===- obs/TraceExport.cpp ------------------------------------------------===//

#include "obs/TraceExport.h"

#include <cinttypes>
#include <cstdio>

using namespace algoprof;
using namespace algoprof::obs;

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Nanoseconds as a microsecond decimal ("1234.567"), the unit the
/// trace-event format expects for ts/dur.
void appendMicros(std::string &Out, uint64_t Ns) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Ns / 1000);
  Out += Buf;
  uint64_t Frac = Ns % 1000;
  if (Frac) {
    std::snprintf(Buf, sizeof(Buf), ".%03" PRIu64, Frac);
    Out += Buf;
  }
}

} // namespace

std::string obs::chromeTraceJson(const Snapshot &S) {
  std::string Out;
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto comma = [&] {
    if (!First)
      Out += ",";
    First = false;
  };

  // Track-name metadata first, so viewers label lanes before any event
  // references them.
  for (const auto &KV : S.TrackNames) {
    comma();
    char Buf[96]; // The literal part alone is 66 chars — don't truncate.
    std::snprintf(Buf, sizeof(Buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  KV.first);
    Out += Buf;
    appendEscaped(Out, KV.second);
    Out += "\"}}";
  }

  for (const TraceEvent &E : S.Events) {
    comma();
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
                  "\"cat\":\"algoprof\",\"ts\":",
                  E.Track, phaseName(E.P));
    Out += Buf;
    appendMicros(Out, E.StartNs);
    Out += ",\"dur\":";
    appendMicros(Out, E.DurNs);
    Out += "}";
  }

  Out += "]}\n";
  return Out;
}

//===- vm/Hooks.h - Instrumentation hook interface --------------*- C++-*-===//
///
/// \file
/// The VM-side instrumentation surface. The events mirror exactly what
/// the paper's AlgoProf instruments in Java bytecode (Sec. 3.1): loop
/// entry/exit/back edge, method entry/exit, reference field accesses,
/// array accesses, allocations of recursive types, and external I/O. The
/// InstrumentationPlan plays the role of the paper's static analyses
/// that *limit* instrumentation to recursion headers / recursive links.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_VM_HOOKS_H
#define ALGOPROF_VM_HOOKS_H

#include "analysis/CallGraph.h"
#include "analysis/RecursiveTypes.h"
#include "bytecode/Module.h"
#include "vm/Value.h"

#include <string>
#include <vector>

namespace algoprof {
namespace vm {

class Heap;
struct IoChannels;

/// What the VM passes to listeners at program start.
struct ExecContext {
  const bc::Module *Module = nullptr;
  Heap *TheHeap = nullptr;
  /// The run's external channels; lets profilers measure stream sizes
  /// (the paper's "measure the size of the external file", Sec. 2.4).
  const IoChannels *Io = nullptr;
};

/// Receiver of instrumentation events. All callbacks default to no-ops so
/// listeners override only what they need. Event order contracts:
///  - loop exits fire innermost-first; loop entries outermost-first;
///  - a method's loop exits fire before its onMethodExit, including when
///    unwinding after a trap (the paper's exceptional control flow rule);
///  - onPutField/onArrayStore fire *after* the store took effect, so the
///    listener observes the post-state when it traverses the heap.
class ExecutionListener {
public:
  virtual ~ExecutionListener();

  virtual void onProgramStart(const ExecContext &Ctx) { (void)Ctx; }
  virtual void onProgramEnd() {}

  virtual void onMethodEnter(int32_t MethodId) { (void)MethodId; }
  virtual void onMethodExit(int32_t MethodId) { (void)MethodId; }

  virtual void onLoopEnter(int32_t MethodId, int32_t LoopId) {
    (void)MethodId;
    (void)LoopId;
  }
  virtual void onLoopBackEdge(int32_t MethodId, int32_t LoopId) {
    (void)MethodId;
    (void)LoopId;
  }
  virtual void onLoopExit(int32_t MethodId, int32_t LoopId) {
    (void)MethodId;
    (void)LoopId;
  }

  virtual void onGetField(ObjId Obj, int32_t FieldId, Value V) {
    (void)Obj;
    (void)FieldId;
    (void)V;
  }
  virtual void onPutField(ObjId Obj, int32_t FieldId, Value New) {
    (void)Obj;
    (void)FieldId;
    (void)New;
  }
  virtual void onArrayLoad(ObjId Arr, int64_t Index, Value V) {
    (void)Arr;
    (void)Index;
    (void)V;
  }
  virtual void onArrayStore(ObjId Arr, int64_t Index, Value New) {
    (void)Arr;
    (void)Index;
    (void)New;
  }

  virtual void onNewObject(ObjId Obj, int32_t ClassId) {
    (void)Obj;
    (void)ClassId;
  }
  virtual void onNewArray(ObjId Arr, bc::TypeId ArrayType, int64_t Len) {
    (void)Arr;
    (void)ArrayType;
    (void)Len;
  }

  virtual void onInputRead() {}
  virtual void onOutputWrite() {}

  /// Per-instruction callback with the executing pc; only delivered
  /// when wantsInstructionEvents() returns true (CCT hotness costing,
  /// basic-block counting).
  virtual void onInstruction(int32_t MethodId, int32_t Pc) {
    (void)MethodId;
    (void)Pc;
  }
  virtual bool wantsInstructionEvents() const { return false; }
};

/// Which events the VM delivers. Mirrors the paper's use of static
/// analysis to restrict instrumentation (Sec. 3.1).
struct InstrumentationPlan {
  std::vector<char> FieldHook;  ///< Per field id.
  std::vector<char> MethodHook; ///< Per method id.
  std::vector<char> AllocHook;  ///< Per class id (NewObject).
  bool ArrayHooks = true;       ///< Array load/store/alloc events.
  bool IoHooks = true;

  bool fieldHook(int32_t FieldId) const {
    return FieldHook[static_cast<size_t>(FieldId)] != 0;
  }
  bool methodHook(int32_t MethodId) const {
    return MethodHook[static_cast<size_t>(MethodId)] != 0;
  }
  bool allocHook(int32_t ClassId) const {
    return AllocHook[static_cast<size_t>(ClassId)] != 0;
  }

  /// Everything on: all methods, all reference fields, all allocations.
  /// Used by the CCT profiler and by the overhead ablation.
  static InstrumentationPlan all(const bc::Module &M);

  /// The paper's default: method events only for recursion headers, field
  /// events only for recursive links, allocation events only for classes
  /// that are part of a recursive type.
  static InstrumentationPlan
  forAlgoProf(const bc::Module &M, const analysis::RecursiveTypes &RT,
              const analysis::CallGraph &CG);

  /// Like forAlgoProf but with method events for *all* methods — the
  /// fully-dynamic fallback when no static recursion analysis is
  /// available (the profiler then folds recursions itself).
  static InstrumentationPlan
  forAlgoProfAllMethods(const bc::Module &M,
                        const analysis::RecursiveTypes &RT);
};

} // namespace vm
} // namespace algoprof

#endif // ALGOPROF_VM_HOOKS_H

//===- vm/LoopEventMap.cpp ------------------------------------------------===//

#include "vm/LoopEventMap.h"

#include <algorithm>

using namespace algoprof;
using namespace algoprof::vm;
using namespace algoprof::analysis;

LoopEventMap algoprof::vm::buildLoopEventMap(const bc::MethodInfo &Method,
                                             const Cfg &G,
                                             const LoopInfo &LI) {
  LoopEventMap LEM;
  size_t CodeLen = Method.Code.size();
  LEM.InterestingTarget.assign(CodeLen, 0);
  LEM.LoopChainAtPc.resize(CodeLen);

  for (size_t Pc = 0; Pc < CodeLen; ++Pc)
    LEM.LoopChainAtPc[Pc] = LI.loopChainAt(G.blockAt(static_cast<int>(Pc)));

  for (const BasicBlock &From : G.Blocks) {
    int FromPc = From.End - 1;
    for (int ToBlock : From.Succs) {
      int ToPc = G.Blocks[static_cast<size_t>(ToBlock)].Begin;
      LoopTransition T;

      // Exits: loops containing the source but not the target,
      // innermost-first (the chain is already innermost-first).
      for (int32_t L : LI.loopChainAt(From.Id))
        if (!LI.Loops[static_cast<size_t>(L)].contains(ToBlock))
          T.Exits.push_back(L);

      // Back edge: the target is the header of a loop containing the
      // source.
      for (const Loop &L : LI.Loops)
        if (L.HeaderBlock == ToBlock && L.contains(From.Id)) {
          T.BackEdge = L.Id;
          break;
        }

      // Entries: loops containing the target but not the source,
      // outermost-first.
      std::vector<int32_t> Entries;
      for (int32_t L : LI.loopChainAt(ToBlock))
        if (!LI.Loops[static_cast<size_t>(L)].contains(From.Id))
          Entries.push_back(L);
      std::reverse(Entries.begin(), Entries.end());
      T.Entries = std::move(Entries);

      if (T.Exits.empty() && T.BackEdge < 0 && T.Entries.empty())
        continue;
      LEM.InterestingTarget[static_cast<size_t>(ToPc)] = 1;
      LEM.Transitions[(static_cast<int64_t>(FromPc) << 32) | ToPc] =
          std::move(T);
    }
  }
  return LEM;
}

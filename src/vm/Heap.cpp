//===- vm/Heap.cpp --------------------------------------------------------===//

#include "vm/Heap.h"

#include "obs/Obs.h"

#include <cassert>

using namespace algoprof;
using namespace algoprof::vm;
using namespace algoprof::bc;

Value Heap::defaultValueFor(TypeId T) const {
  const RuntimeType &RT = M.Types[static_cast<size_t>(T)];
  if (RT.Kind == RtTypeKind::Class || RT.Kind == RtTypeKind::Array)
    return Value::makeNull();
  return Value::makeInt(0);
}

ObjId Heap::allocObject(int32_t ClassId) {
  const ClassInfo &C = M.Classes[static_cast<size_t>(ClassId)];
  HeapObject Obj;
  Obj.Type = C.Type;
  Obj.ClassId = ClassId;
  Obj.IsArray = false;
  Obj.Slots.reserve(C.FieldIds.size());
  for (int32_t FieldId : C.FieldIds)
    Obj.Slots.push_back(
        defaultValueFor(M.Fields[static_cast<size_t>(FieldId)].Type));
  LiveBytes += bytesFor(Obj.Slots.size());
  Objects.push_back(std::move(Obj));
  obs::addCount(obs::Counter::HeapObjects);
  return Base + static_cast<ObjId>(Objects.size()) - 1;
}

ObjId Heap::allocArray(TypeId ArrayType, int64_t Len) {
  assert(Len >= 0 && "negative array length must trap before allocation");
  const RuntimeType &RT = M.Types[static_cast<size_t>(ArrayType)];
  assert(RT.Kind == RtTypeKind::Array && "allocArray needs an array type");
  HeapObject Obj;
  Obj.Type = ArrayType;
  Obj.IsArray = true;
  Obj.Slots.assign(static_cast<size_t>(Len), defaultValueFor(RT.Elem));
  LiveBytes += bytesFor(static_cast<uint64_t>(Len));
  Objects.push_back(std::move(Obj));
  obs::addCount(obs::Counter::HeapObjects);
  return Base + static_cast<ObjId>(Objects.size()) - 1;
}

//===- vm/Interpreter.cpp -------------------------------------------------===//

#include "vm/Interpreter.h"

#include "analysis/Dominators.h"
#include "obs/Obs.h"

#include <cassert>
#include <chrono>
#include <limits>
#include <new>

using namespace algoprof;
using namespace algoprof::vm;
using namespace algoprof::bc;

ExecutionListener::~ExecutionListener() = default;

const char *vm::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Ok:
    return "ok";
  case RunStatus::Trapped:
    return "trap";
  case RunStatus::FuelExhausted:
    return "fuel";
  case RunStatus::BudgetExceeded:
    return "budget";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// InstrumentationPlan factories
//===----------------------------------------------------------------------===//

InstrumentationPlan InstrumentationPlan::all(const Module &M) {
  InstrumentationPlan Plan;
  Plan.FieldHook.assign(M.Fields.size(), 1);
  Plan.MethodHook.assign(M.Methods.size(), 1);
  Plan.AllocHook.assign(M.Classes.size(), 1);
  return Plan;
}

InstrumentationPlan
InstrumentationPlan::forAlgoProf(const Module &M,
                                 const analysis::RecursiveTypes &RT,
                                 const analysis::CallGraph &CG) {
  InstrumentationPlan Plan;
  Plan.FieldHook.assign(M.Fields.size(), 0);
  for (size_t F = 0; F < M.Fields.size(); ++F)
    Plan.FieldHook[F] = RT.FieldIsLink[F];
  Plan.MethodHook.assign(M.Methods.size(), 0);
  for (size_t Mi = 0; Mi < M.Methods.size(); ++Mi)
    Plan.MethodHook[Mi] = CG.IsRecursionHeader[Mi];
  Plan.AllocHook.assign(M.Classes.size(), 0);
  for (size_t C = 0; C < M.Classes.size(); ++C)
    Plan.AllocHook[C] = RT.ClassIsRecursive[C];
  return Plan;
}

InstrumentationPlan InstrumentationPlan::forAlgoProfAllMethods(
    const Module &M, const analysis::RecursiveTypes &RT) {
  InstrumentationPlan Plan;
  Plan.FieldHook.assign(M.Fields.size(), 0);
  for (size_t F = 0; F < M.Fields.size(); ++F)
    Plan.FieldHook[F] = RT.FieldIsLink[F];
  Plan.MethodHook.assign(M.Methods.size(), 1);
  Plan.AllocHook.assign(M.Classes.size(), 0);
  for (size_t C = 0; C < M.Classes.size(); ++C)
    Plan.AllocHook[C] = RT.ClassIsRecursive[C];
  return Plan;
}

//===----------------------------------------------------------------------===//
// PreparedProgram
//===----------------------------------------------------------------------===//

PreparedProgram PreparedProgram::prepare(const Module &M) {
  PreparedProgram P;
  P.M = &M;
  P.Methods.resize(M.Methods.size());
  for (size_t I = 0; I < M.Methods.size(); ++I) {
    PreparedMethod &PM = P.Methods[I];
    PM.Graph = analysis::buildCfg(M.Methods[I]);
    analysis::DominatorTree DT = analysis::computeDominators(PM.Graph);
    PM.Loops = analysis::computeLoops(M.Methods[I], PM.Graph, DT);
    PM.Events = buildLoopEventMap(M.Methods[I], PM.Graph, PM.Loops);
  }
  P.Calls = analysis::buildCallGraph(M);
  P.RecTypes = analysis::computeRecursiveTypes(M);
  return P;
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {

/// Two's-complement wraparound arithmetic (Java semantics). Signed
/// overflow is undefined behavior on int64_t, so every operation routes
/// through uint64_t, where wraparound is defined.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

struct Frame {
  const MethodInfo *Method = nullptr;
  const PreparedMethod *Prepared = nullptr;
  int Pc = 0;
  std::vector<Value> Locals;
  std::vector<Value> Stack;

  Value pop() {
    assert(!Stack.empty() && "operand stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  }
  void push(Value V) { Stack.push_back(V); }
};

/// The whole interpreter state for one run, so helpers share it without
/// long parameter lists.
class Machine {
public:
  Machine(const PreparedProgram &P, Heap &H, ExecutionListener *L,
          const InstrumentationPlan &Plan, IoChannels &Io,
          const RunOptions &Opts)
      : P(P), M(*P.M), H(H), L(L), Plan(Plan), Io(Io), Opts(Opts) {}

  RunResult run(int32_t EntryMethodId);

private:
  void enterMethod(int32_t MethodId, std::vector<Value> Args);
  /// Fires loop exits at the current pc and the method-exit event of the
  /// top frame, then pops it.
  void leaveTopFrame();
  void fireTransition(const Frame &F, int FromPc, int ToPc);

  bool trap(const std::string &Message) {
    TrapMessage = Message;
    Trapped = true;
    return false;
  }

  /// Records a budget trap (BudgetExceeded, never a plain Trapped).
  bool trapBudget(const char *Budget, const std::string &Message,
                  bool Injected = false) {
    TrapMessage = Message;
    Trapped = true;
    BudgetTripped = true;
    BudgetName = Budget;
    InjectedFault = Injected;
    return false;
  }

  /// Accounts for one upcoming allocation of \p Bytes model bytes.
  /// Returns false (after recording a BudgetExceeded trap) when the
  /// heap-byte budget would overflow or an injected heap-oom fault is
  /// due at this allocation ordinal. Checked *before* the allocation so
  /// the heap never holds the object that broke the budget.
  bool chargeAlloc(uint64_t Bytes, const Frame &F) {
    ++AllocCount;
    if (Opts.InjectHeapOomAtAlloc && AllocCount >= Opts.InjectHeapOomAtAlloc) {
      obs::addCount(obs::Counter::FaultsInjected);
      return trapBudget("heap_bytes",
                        "injected heap-oom at allocation " +
                            std::to_string(AllocCount) + " in " +
                            F.Method->QualifiedName,
                        /*Injected=*/true);
    }
    if (Opts.MaxHeapBytes && H.liveBytes() + Bytes > Opts.MaxHeapBytes)
      return trapBudget("heap_bytes",
                        "heap budget exceeded: " +
                            std::to_string(H.liveBytes()) + " live + " +
                            std::to_string(Bytes) + " requested > " +
                            std::to_string(Opts.MaxHeapBytes) + " in " +
                            F.Method->QualifiedName);
    return true;
  }

  uint64_t nowMs() const {
    if (Opts.ClockNowMs)
      return Opts.ClockNowMs();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Returns the heap object behind \p V, or null after recording a
  /// trap. The verifier checks operand-stack depth, not types, so a
  /// verified module may still feed integers (or stale ids) to
  /// reference operands; those must end in a trap, never in an
  /// out-of-range heap access.
  HeapObject *deref(const Value &V, const Frame &F) {
    if (!V.IsRef || !H.isValid(V.ref())) {
      trap("invalid object reference in " + F.Method->QualifiedName);
      return nullptr;
    }
    return &H.get(V.ref());
  }

  /// Executes one instruction; returns false on trap or normal program
  /// completion (Frames empty).
  bool step();

  const PreparedProgram &P;
  const Module &M;
  Heap &H;
  ExecutionListener *L;
  const InstrumentationPlan &Plan;
  IoChannels &Io;
  RunOptions Opts;

  std::vector<Frame> Frames;
  uint64_t Executed = 0;
  uint64_t AllocCount = 0; ///< Allocations attempted (1-based ordinal).
  bool Trapped = false;
  bool BudgetTripped = false;
  bool InjectedFault = false;
  std::string BudgetName;
  std::string TrapMessage;
  Value ReturnValue;
  bool HaveReturnValue = false;
  bool WantsInstr = false;
};

} // namespace

void Machine::enterMethod(int32_t MethodId, std::vector<Value> Args) {
  const MethodInfo &Callee = M.Methods[static_cast<size_t>(MethodId)];
  Frame F;
  F.Method = &Callee;
  F.Prepared = &P.Methods[static_cast<size_t>(MethodId)];
  F.Pc = 0;
  F.Locals.assign(static_cast<size_t>(Callee.NumLocals), Value::makeInt(0));
  assert(static_cast<int32_t>(Args.size()) == Callee.NumArgs &&
         "argument count mismatch");
  for (size_t I = 0; I < Args.size(); ++I)
    F.Locals[I] = Args[I];
  Frames.push_back(std::move(F));

  if (L && Plan.methodHook(MethodId))
    L->onMethodEnter(MethodId);
  // A method whose entry pc sits inside a loop (e.g. a body that starts
  // with 'while') logically enters those loops now.
  if (L && !Callee.Code.empty()) {
    const auto &Chain = Frames.back().Prepared->Events.LoopChainAtPc[0];
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      L->onLoopEnter(MethodId, *It);
  }
}

void Machine::leaveTopFrame() {
  Frame &F = Frames.back();
  int32_t MethodId = F.Method->Id;
  if (L) {
    const auto &Chain =
        F.Prepared->Events.LoopChainAtPc[static_cast<size_t>(F.Pc)];
    for (int32_t Loop : Chain)
      L->onLoopExit(MethodId, Loop);
    if (Plan.methodHook(MethodId))
      L->onMethodExit(MethodId);
  }
  Frames.pop_back();
}

void Machine::fireTransition(const Frame &F, int FromPc, int ToPc) {
  const LoopTransition *T = F.Prepared->Events.lookup(FromPc, ToPc);
  if (!T)
    return;
  int32_t MethodId = F.Method->Id;
  for (int32_t Loop : T->Exits)
    L->onLoopExit(MethodId, Loop);
  if (T->BackEdge >= 0)
    L->onLoopBackEdge(MethodId, T->BackEdge);
  for (int32_t Loop : T->Entries)
    L->onLoopEnter(MethodId, Loop);
}

bool Machine::step() {
  Frame &F = Frames.back();
  const Instr &I = F.Method->Code[static_cast<size_t>(F.Pc)];
  ++Executed;
  if (WantsInstr)
    L->onInstruction(F.Method->Id, F.Pc);

  int NextPc = F.Pc + 1;

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::IConst:
    F.push(Value::makeInt(I.Imm));
    break;
  case Opcode::NullConst:
    F.push(Value::makeNull());
    break;
  case Opcode::Load:
    F.push(F.Locals[static_cast<size_t>(I.A)]);
    break;
  case Opcode::Store:
    F.Locals[static_cast<size_t>(I.A)] = F.pop();
    break;
  case Opcode::Dup:
    F.push(F.Stack.back());
    break;
  case Opcode::Pop:
    F.pop();
    break;

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem: {
    int64_t B = F.pop().Bits;
    int64_t A = F.pop().Bits;
    int64_t R = 0;
    if (I.Op == Opcode::Add)
      R = wrapAdd(A, B);
    else if (I.Op == Opcode::Sub)
      R = wrapSub(A, B);
    else if (I.Op == Opcode::Mul)
      R = wrapMul(A, B);
    else {
      if (B == 0)
        return trap("division by zero in " + F.Method->QualifiedName);
      // INT64_MIN / -1 overflows (and SIGFPEs on x86); Java defines the
      // quotient as INT64_MIN and the remainder as 0.
      if (A == std::numeric_limits<int64_t>::min() && B == -1)
        R = I.Op == Opcode::Div ? A : 0;
      else
        R = I.Op == Opcode::Div ? A / B : A % B;
    }
    F.push(Value::makeInt(R));
    break;
  }
  case Opcode::Neg:
    F.push(Value::makeInt(wrapNeg(F.pop().Bits)));
    break;
  case Opcode::Not:
    F.push(Value::makeBool(F.pop().Bits == 0));
    break;

  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::CmpEq:
  case Opcode::CmpNe: {
    int64_t B = F.pop().Bits;
    int64_t A = F.pop().Bits;
    bool R = false;
    switch (I.Op) {
    case Opcode::CmpLt:
      R = A < B;
      break;
    case Opcode::CmpLe:
      R = A <= B;
      break;
    case Opcode::CmpGt:
      R = A > B;
      break;
    case Opcode::CmpGe:
      R = A >= B;
      break;
    case Opcode::CmpEq:
      R = A == B;
      break;
    default:
      R = A != B;
      break;
    }
    F.push(Value::makeBool(R));
    break;
  }
  case Opcode::RefEq:
  case Opcode::RefNe: {
    Value B = F.pop();
    Value A = F.pop();
    bool Eq = A.Bits == B.Bits && A.IsRef == B.IsRef;
    F.push(Value::makeBool(I.Op == Opcode::RefEq ? Eq : !Eq));
    break;
  }

  case Opcode::Goto:
    NextPc = I.A;
    break;
  case Opcode::IfTrue:
    if (F.pop().Bits != 0)
      NextPc = I.A;
    break;
  case Opcode::IfFalse:
    if (F.pop().Bits == 0)
      NextPc = I.A;
    break;

  case Opcode::GetField: {
    Value Obj = F.pop();
    if (Obj.isNullRef())
      return trap("null dereference reading field " +
                  M.Fields[static_cast<size_t>(I.A)].Name + " in " +
                  F.Method->QualifiedName);
    HeapObject *O = deref(Obj, F);
    if (!O)
      return false;
    const FieldInfo &Field = M.Fields[static_cast<size_t>(I.A)];
    if (Field.Slot < 0 ||
        Field.Slot >= static_cast<int32_t>(O->Slots.size()))
      return trap("field " + Field.Name + " not present on receiver in " +
                  F.Method->QualifiedName);
    Value V = O->Slots[static_cast<size_t>(Field.Slot)];
    F.push(V);
    if (L && Plan.fieldHook(I.A))
      L->onGetField(Obj.ref(), I.A, V);
    break;
  }
  case Opcode::PutField: {
    Value V = F.pop();
    Value Obj = F.pop();
    if (Obj.isNullRef())
      return trap("null dereference writing field " +
                  M.Fields[static_cast<size_t>(I.A)].Name + " in " +
                  F.Method->QualifiedName);
    HeapObject *O = deref(Obj, F);
    if (!O)
      return false;
    const FieldInfo &Field = M.Fields[static_cast<size_t>(I.A)];
    if (Field.Slot < 0 ||
        Field.Slot >= static_cast<int32_t>(O->Slots.size()))
      return trap("field " + Field.Name + " not present on receiver in " +
                  F.Method->QualifiedName);
    O->Slots[static_cast<size_t>(Field.Slot)] = V;
    if (L && Plan.fieldHook(I.A))
      L->onPutField(Obj.ref(), I.A, V);
    break;
  }
  case Opcode::ALoad: {
    Value Idx = F.pop();
    Value Arr = F.pop();
    if (Arr.isNullRef())
      return trap("null array load in " + F.Method->QualifiedName);
    HeapObject *A = deref(Arr, F);
    if (!A)
      return false;
    if (Idx.Bits < 0 || Idx.Bits >= static_cast<int64_t>(A->Slots.size()))
      return trap("array index " + std::to_string(Idx.Bits) +
                  " out of bounds (length " +
                  std::to_string(A->Slots.size()) + ") in " +
                  F.Method->QualifiedName);
    Value V = A->Slots[static_cast<size_t>(Idx.Bits)];
    F.push(V);
    if (L && Plan.ArrayHooks)
      L->onArrayLoad(Arr.ref(), Idx.Bits, V);
    break;
  }
  case Opcode::AStore: {
    Value V = F.pop();
    Value Idx = F.pop();
    Value Arr = F.pop();
    if (Arr.isNullRef())
      return trap("null array store in " + F.Method->QualifiedName);
    HeapObject *A = deref(Arr, F);
    if (!A)
      return false;
    if (Idx.Bits < 0 || Idx.Bits >= static_cast<int64_t>(A->Slots.size()))
      return trap("array index " + std::to_string(Idx.Bits) +
                  " out of bounds (length " +
                  std::to_string(A->Slots.size()) + ") in " +
                  F.Method->QualifiedName);
    A->Slots[static_cast<size_t>(Idx.Bits)] = V;
    if (L && Plan.ArrayHooks)
      L->onArrayStore(Arr.ref(), Idx.Bits, V);
    break;
  }
  case Opcode::ArrayLen: {
    Value Arr = F.pop();
    if (Arr.isNullRef())
      return trap("null array length in " + F.Method->QualifiedName);
    HeapObject *A = deref(Arr, F);
    if (!A)
      return false;
    F.push(Value::makeInt(static_cast<int64_t>(A->Slots.size())));
    break;
  }

  case Opcode::NewObject: {
    const ClassInfo &C = M.Classes[static_cast<size_t>(I.A)];
    if (!chargeAlloc(Heap::bytesFor(C.FieldIds.size()), F))
      return false;
    ObjId Obj = H.allocObject(I.A);
    F.push(Value::makeRef(Obj));
    if (L && Plan.allocHook(I.A))
      L->onNewObject(Obj, I.A);
    break;
  }
  case Opcode::NewArray: {
    Value Len = F.pop();
    if (Len.Bits < 0)
      return trap("negative array length " + std::to_string(Len.Bits) +
                  " in " + F.Method->QualifiedName);
    if (Len.Bits > Opts.MaxArrayLength)
      return trap("array length " + std::to_string(Len.Bits) +
                  " exceeds limit " + std::to_string(Opts.MaxArrayLength) +
                  " in " + F.Method->QualifiedName);
    if (!chargeAlloc(Heap::bytesFor(static_cast<uint64_t>(Len.Bits)), F))
      return false;
    ObjId Arr = H.allocArray(I.A, Len.Bits);
    F.push(Value::makeRef(Arr));
    if (L && Plan.ArrayHooks)
      L->onNewArray(Arr, I.A, Len.Bits);
    break;
  }
  case Opcode::NewMulti: {
    Value Inner = F.pop();
    Value Outer = F.pop();
    if (Outer.Bits < 0 || Inner.Bits < 0)
      return trap("negative array length in " + F.Method->QualifiedName);
    if (Outer.Bits > Opts.MaxArrayLength ||
        Inner.Bits > Opts.MaxArrayLength ||
        (Inner.Bits > 0 && Outer.Bits > Opts.MaxArrayLength / Inner.Bits))
      return trap("multi-array dimensions " + std::to_string(Outer.Bits) +
                  "x" + std::to_string(Inner.Bits) + " exceed limit " +
                  std::to_string(Opts.MaxArrayLength) + " in " +
                  F.Method->QualifiedName);
    TypeId OuterTy = I.A;
    TypeId InnerTy = M.Types[static_cast<size_t>(OuterTy)].Elem;
    if (!chargeAlloc(Heap::bytesFor(static_cast<uint64_t>(Outer.Bits)), F))
      return false;
    ObjId Arr = H.allocArray(OuterTy, Outer.Bits);
    if (L && Plan.ArrayHooks)
      L->onNewArray(Arr, OuterTy, Outer.Bits);
    for (int64_t Row = 0; Row < Outer.Bits; ++Row) {
      if (!chargeAlloc(Heap::bytesFor(static_cast<uint64_t>(Inner.Bits)), F))
        return false;
      ObjId RowArr = H.allocArray(InnerTy, Inner.Bits);
      H.get(Arr).Slots[static_cast<size_t>(Row)] = Value::makeRef(RowArr);
      if (L && Plan.ArrayHooks)
        L->onNewArray(RowArr, InnerTy, Inner.Bits);
    }
    F.push(Value::makeRef(Arr));
    break;
  }

  case Opcode::InvokeStatic:
  case Opcode::InvokeCtor:
  case Opcode::InvokeVirtual: {
    int32_t MethodId = I.A;
    if (I.Op == Opcode::InvokeVirtual) {
      // Resolve through the receiver's vtable. The receiver sits below
      // the arguments; the statically resolved target (operand B) gives
      // the arity, and overrides share it (checked by sema).
      int32_t Slot = I.A;
      int32_t Arity =
          M.Methods[static_cast<size_t>(I.B)].NumArgs;
      assert(Arity > 0 && "virtual call without a receiver slot");
      Value Recv = F.Stack[F.Stack.size() - static_cast<size_t>(Arity)];
      if (Recv.isNullRef())
        return trap("null receiver in call from " +
                    F.Method->QualifiedName);
      HeapObject *O = deref(Recv, F);
      if (!O)
        return false;
      int32_t RecvClass = O->ClassId;
      if (RecvClass < 0 ||
          RecvClass >= static_cast<int32_t>(M.Classes.size()))
        return trap("virtual call on non-object receiver in " +
                    F.Method->QualifiedName);
      const ClassInfo &C = M.Classes[static_cast<size_t>(RecvClass)];
      if (Slot < 0 || Slot >= static_cast<int32_t>(C.Vtable.size()))
        return trap("receiver class " + C.Name +
                    " lacks virtual slot " + std::to_string(Slot) +
                    " in " + F.Method->QualifiedName);
      MethodId = C.Vtable[static_cast<size_t>(Slot)];
      if (MethodId < 0 ||
          MethodId >= static_cast<int32_t>(M.Methods.size()))
        return trap("corrupt vtable entry in class " + C.Name);
      // The verifier models the call's stack effect from the declared
      // target (operand B); a type-confused receiver may dispatch to a
      // method of different shape, which must trap rather than
      // over/under-pop the verified operand stack.
      const MethodInfo &Target =
          M.Methods[static_cast<size_t>(MethodId)];
      const MethodInfo &Declared =
          M.Methods[static_cast<size_t>(I.B)];
      if (Target.NumArgs != Declared.NumArgs ||
          Target.ReturnsValue != Declared.ReturnsValue)
        return trap("virtual dispatch signature mismatch calling " +
                    Target.QualifiedName + " in " +
                    F.Method->QualifiedName);
    }
    const MethodInfo &Callee = M.Methods[static_cast<size_t>(MethodId)];
    if (static_cast<int>(Frames.size()) >= Opts.MaxFrames)
      return trap("call stack overflow calling " + Callee.QualifiedName);
    std::vector<Value> Args(static_cast<size_t>(Callee.NumArgs));
    for (int32_t A = Callee.NumArgs - 1; A >= 0; --A)
      Args[static_cast<size_t>(A)] = F.pop();
    // Record where to resume; enterMethod may reallocate Frames.
    F.Pc = NextPc - 1; // Resume handling happens on return.
    enterMethod(MethodId, std::move(Args));
    return true;
  }

  case Opcode::Ret:
  case Opcode::RetVal: {
    HaveReturnValue = I.Op == Opcode::RetVal;
    if (HaveReturnValue)
      ReturnValue = F.pop();
    leaveTopFrame();
    if (Frames.empty())
      return false; // Normal program completion.
    Frame &Caller = Frames.back();
    int CallPc = Caller.Pc;
    if (HaveReturnValue)
      Caller.push(ReturnValue);
    Caller.Pc = CallPc + 1;
    if (L)
      fireTransition(Caller, CallPc, Caller.Pc);
    return true;
  }

  case Opcode::Print: {
    Value V = F.pop();
    Io.Output.push_back(V.Bits);
    if (L && Plan.IoHooks)
      L->onOutputWrite();
    break;
  }
  case Opcode::ReadInt: {
    if (!Io.hasInput())
      return trap("input exhausted in " + F.Method->QualifiedName);
    F.push(Value::makeInt(Io.Input[Io.InputPos++]));
    if (L && Plan.IoHooks)
      L->onInputRead();
    break;
  }
  case Opcode::HasInput:
    F.push(Value::makeBool(Io.hasInput()));
    break;

  case Opcode::Trap:
    return trap("explicit trap in " + F.Method->QualifiedName);
  }

  // Ordinary pc advance (branches included): fire loop events and move.
  if (L)
    fireTransition(F, F.Pc, NextPc);
  F.Pc = NextPc;
  return true;
}

RunResult Machine::run(int32_t EntryMethodId) {
  const MethodInfo &Entry = M.Methods[static_cast<size_t>(EntryMethodId)];
  assert(Entry.IsStatic && Entry.NumArgs == 0 &&
         "entry must be a static no-arg method");
  (void)Entry;

  WantsInstr = L && L->wantsInstructionEvents();
  if (L) {
    ExecContext Ctx;
    Ctx.Module = &M;
    Ctx.TheHeap = &H;
    Ctx.Io = &Io;
    L->onProgramStart(Ctx);
  }
  enterMethod(EntryMethodId, {});

  // The watchdog shares the fuel-tick path: both are checked at the top
  // of the loop, the deadline only every DeadlineStride instructions to
  // keep clock reads off the hot path.
  constexpr uint64_t DeadlineStride = 8192;
  const uint64_t StartMs = Opts.RunDeadlineMs ? nowMs() : 0;

  RunResult R;
  try {
    while (!Frames.empty()) {
      if (Executed >= Opts.Fuel) {
        R.Status = RunStatus::FuelExhausted;
        R.Budget = "fuel";
        R.TrapMessage = "fuel exhausted after " + std::to_string(Executed) +
                        " instructions";
        break;
      }
      if (Opts.RunDeadlineMs && (Executed % DeadlineStride) == 0 &&
          nowMs() - StartMs >= Opts.RunDeadlineMs) {
        R.Status = RunStatus::BudgetExceeded;
        R.Budget = "deadline";
        R.TrapMessage = "run deadline of " +
                        std::to_string(Opts.RunDeadlineMs) +
                        " ms exceeded after " + std::to_string(Executed) +
                        " instructions";
        break;
      }
      if (!step()) {
        if (Trapped) {
          R.Status =
              BudgetTripped ? RunStatus::BudgetExceeded : RunStatus::Trapped;
          R.Budget = BudgetName;
          R.Injected = InjectedFault;
          R.TrapMessage = TrapMessage;
        }
        break;
      }
    }
  } catch (const std::bad_alloc &) {
    // Safety net for hosts that run without MaxHeapBytes (or for
    // allocator failure below the modelled budget): degrade to the same
    // deterministic status instead of letting bad_alloc unwind through
    // profiler listeners.
    R.Status = RunStatus::BudgetExceeded;
    R.Budget = "heap_bytes";
    R.TrapMessage = "allocation failed (std::bad_alloc) after " +
                    std::to_string(Executed) + " instructions";
  }

  // Unwind remaining frames (trap / fuel), firing exit events so profiler
  // shadow stacks stay balanced — the paper's exceptional-exit handling.
  while (!Frames.empty())
    leaveTopFrame();

  if (L)
    L->onProgramEnd();
  R.InstrCount = Executed;
  return R;
}

RunResult Interpreter::run(int32_t EntryMethodId, ExecutionListener *Listener,
                           const InstrumentationPlan &Plan, IoChannels &Io,
                           const RunOptions &Opts) {
  assert(!InRun && "Interpreter::run is not reentrant; use one "
                   "Interpreter per concurrent run");
  InRun = true;
  RunResult R;
  {
    obs::ScopedSpan Span(obs::Phase::VmRun);
    Machine Mach(P, TheHeap, Listener, Plan, Io, Opts);
    R = Mach.run(EntryMethodId);
  }
  obs::addCount(obs::Counter::BytecodesExecuted, R.InstrCount);
  obs::addCount(obs::Counter::RunsCompleted);
  if (R.Status == RunStatus::BudgetExceeded)
    obs::addCount(obs::Counter::RunsBudgetExceeded);
  InRun = false;
  return R;
}

//===- vm/Interpreter.cpp -------------------------------------------------===//

#include "vm/Interpreter.h"

#include "analysis/Dominators.h"
#include "bytecode/Fuser.h"
#include "obs/Obs.h"

#include <cassert>
#include <chrono>
#include <limits>
#include <new>

using namespace algoprof;
using namespace algoprof::vm;
using namespace algoprof::bc;

// Direct-threaded dispatch needs the GNU computed-goto extension; the
// CMake option only opts the build in, the compiler check keeps the
// portable switch loop on everything else.
#if defined(ALGOPROF_THREADED_DISPATCH_ENABLED) && \
    ALGOPROF_THREADED_DISPATCH_ENABLED && \
    (defined(__GNUC__) || defined(__clang__))
#define ALGOPROF_HAS_COMPUTED_GOTO 1
#else
#define ALGOPROF_HAS_COMPUTED_GOTO 0
#endif

ExecutionListener::~ExecutionListener() = default;

const char *vm::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Ok:
    return "ok";
  case RunStatus::Trapped:
    return "trap";
  case RunStatus::FuelExhausted:
    return "fuel";
  case RunStatus::BudgetExceeded:
    return "budget";
  }
  return "?";
}

const char *vm::dispatchModeName(DispatchMode M) {
  switch (M) {
  case DispatchMode::Auto:
    return "auto";
  case DispatchMode::Switch:
    return "switch";
  case DispatchMode::Threaded:
    return "threaded";
  }
  return "?";
}

bool vm::threadedDispatchCompiled() { return ALGOPROF_HAS_COMPUTED_GOTO; }

//===----------------------------------------------------------------------===//
// InstrumentationPlan factories
//===----------------------------------------------------------------------===//

InstrumentationPlan InstrumentationPlan::all(const Module &M) {
  InstrumentationPlan Plan;
  Plan.FieldHook.assign(M.Fields.size(), 1);
  Plan.MethodHook.assign(M.Methods.size(), 1);
  Plan.AllocHook.assign(M.Classes.size(), 1);
  return Plan;
}

InstrumentationPlan
InstrumentationPlan::forAlgoProf(const Module &M,
                                 const analysis::RecursiveTypes &RT,
                                 const analysis::CallGraph &CG) {
  InstrumentationPlan Plan;
  Plan.FieldHook.assign(M.Fields.size(), 0);
  for (size_t F = 0; F < M.Fields.size(); ++F)
    Plan.FieldHook[F] = RT.FieldIsLink[F];
  Plan.MethodHook.assign(M.Methods.size(), 0);
  for (size_t Mi = 0; Mi < M.Methods.size(); ++Mi)
    Plan.MethodHook[Mi] = CG.IsRecursionHeader[Mi];
  Plan.AllocHook.assign(M.Classes.size(), 0);
  for (size_t C = 0; C < M.Classes.size(); ++C)
    Plan.AllocHook[C] = RT.ClassIsRecursive[C];
  return Plan;
}

InstrumentationPlan InstrumentationPlan::forAlgoProfAllMethods(
    const Module &M, const analysis::RecursiveTypes &RT) {
  InstrumentationPlan Plan;
  Plan.FieldHook.assign(M.Fields.size(), 0);
  for (size_t F = 0; F < M.Fields.size(); ++F)
    Plan.FieldHook[F] = RT.FieldIsLink[F];
  Plan.MethodHook.assign(M.Methods.size(), 1);
  Plan.AllocHook.assign(M.Classes.size(), 0);
  for (size_t C = 0; C < M.Classes.size(); ++C)
    Plan.AllocHook[C] = RT.ClassIsRecursive[C];
  return Plan;
}

//===----------------------------------------------------------------------===//
// PreparedProgram
//===----------------------------------------------------------------------===//

PreparedProgram PreparedProgram::prepare(const Module &M) {
  PreparedProgram P;
  P.M = &M;
  P.Methods.resize(M.Methods.size());
  for (size_t I = 0; I < M.Methods.size(); ++I) {
    PreparedMethod &PM = P.Methods[I];
    PM.Graph = analysis::buildCfg(M.Methods[I]);
    analysis::DominatorTree DT = analysis::computeDominators(PM.Graph);
    PM.Loops = analysis::computeLoops(M.Methods[I], PM.Graph, DT);
    PM.Events = buildLoopEventMap(M.Methods[I], PM.Graph, PM.Loops);
    // Superinstruction selection runs after loop recovery so every
    // loop-event target stays a real instruction boundary: a pc that
    // can fire a transition must never be swallowed into a cluster
    // interior, or the fused run would skip its events.
    bc::FusionStats FS;
    PM.FusedCode = bc::fuseMethod(M.Methods[I], PM.Events.InterestingTarget,
                                  &FS);
    P.FusedClusters += FS.Clusters;
    // One inline-cache slot per InvokeVirtual site, numbered globally;
    // the storage itself lives in each Interpreter.
    PM.IcSlot.assign(M.Methods[I].Code.size(), -1);
    for (size_t Pc = 0; Pc < M.Methods[I].Code.size(); ++Pc)
      if (M.Methods[I].Code[Pc].Op == Opcode::InvokeVirtual)
        PM.IcSlot[Pc] = P.NumIcSlots++;
  }
  P.Calls = analysis::buildCallGraph(M);
  P.RecTypes = analysis::computeRecursiveTypes(M);
  return P;
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {

/// Two's-complement wraparound arithmetic (Java semantics). Signed
/// overflow is undefined behavior on int64_t, so every operation routes
/// through uint64_t, where wraparound is defined.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Shared by the plain comparison handlers and the fused
/// compare-and-branch forms so both compute bit-identical results.
bool evalCmp(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::CmpLt:
    return A < B;
  case Opcode::CmpLe:
    return A <= B;
  case Opcode::CmpGt:
    return A > B;
  case Opcode::CmpGe:
    return A >= B;
  case Opcode::CmpEq:
    return A == B;
  default:
    return A != B;
  }
}

/// Wrapping arithmetic for FusedLoadConstArith (only Add/Sub/Mul are
/// fusable; Div/Rem can trap and stay unfused).
int64_t evalArith(Opcode Op, int64_t A, int64_t B) {
  if (Op == Opcode::Add)
    return wrapAdd(A, B);
  if (Op == Opcode::Sub)
    return wrapSub(A, B);
  return wrapMul(A, B);
}

struct Frame {
  const MethodInfo *Method = nullptr;
  const PreparedMethod *Prepared = nullptr;
  /// The code array this frame executes: Method->Code, or the
  /// pc-aligned Prepared->FusedCode when superinstructions are on.
  /// Demotion (see Machine::onStop) swaps it mid-run without touching
  /// the pc — the arrays index identically.
  const bc::Instr *Code = nullptr;
  int Pc = 0;
  std::vector<Value> Locals;
  std::vector<Value> Stack;

  Value pop() {
    assert(!Stack.empty() && "operand stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  }
  void push(Value V) { Stack.push_back(V); }
};

/// The whole interpreter state for one run, so helpers share it without
/// long parameter lists.
class Machine {
public:
  Machine(const PreparedProgram &P, Heap &H, ExecutionListener *L,
          const InstrumentationPlan &Plan, IoChannels &Io,
          const RunOptions &Opts, IcEntry *IcData)
      : P(P), M(*P.M), H(H), L(L), Plan(Plan), Io(Io), Opts(Opts),
        IcData(IcData) {}

  RunResult run(int32_t EntryMethodId);

private:
  void enterMethod(int32_t MethodId, std::vector<Value> Args);
  /// Fires loop exits at the current pc and the method-exit event of the
  /// top frame, then pops it.
  void leaveTopFrame();
  void fireTransition(const Frame &F, int FromPc, int ToPc);

  bool trap(const std::string &Message) {
    TrapMessage = Message;
    Trapped = true;
    return false;
  }

  /// Records a budget trap (BudgetExceeded, never a plain Trapped).
  bool trapBudget(const char *Budget, const std::string &Message,
                  bool Injected = false) {
    TrapMessage = Message;
    Trapped = true;
    BudgetTripped = true;
    BudgetName = Budget;
    InjectedFault = Injected;
    return false;
  }

  /// Accounts for one upcoming allocation of \p Bytes model bytes.
  /// Returns false (after recording a BudgetExceeded trap) when the
  /// heap-byte budget would overflow or an injected heap-oom fault is
  /// due at this allocation ordinal. Checked *before* the allocation so
  /// the heap never holds the object that broke the budget.
  bool chargeAlloc(uint64_t Bytes, const Frame &F) {
    ++AllocCount;
    if (Opts.InjectHeapOomAtAlloc && AllocCount >= Opts.InjectHeapOomAtAlloc) {
      obs::addCount(obs::Counter::FaultsInjected);
      return trapBudget("heap_bytes",
                        "injected heap-oom at allocation " +
                            std::to_string(AllocCount) + " in " +
                            F.Method->QualifiedName,
                        /*Injected=*/true);
    }
    if (Opts.MaxHeapBytes && H.liveBytes() + Bytes > Opts.MaxHeapBytes)
      return trapBudget("heap_bytes",
                        "heap budget exceeded: " +
                            std::to_string(H.liveBytes()) + " live + " +
                            std::to_string(Bytes) + " requested > " +
                            std::to_string(Opts.MaxHeapBytes) + " in " +
                            F.Method->QualifiedName);
    return true;
  }

  uint64_t nowMs() const {
    if (Opts.ClockNowMs)
      return Opts.ClockNowMs();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Returns the heap object behind \p V, or null after recording a
  /// trap. The verifier checks operand-stack depth, not types, so a
  /// verified module may still feed integers (or stale ids) to
  /// reference operands; those must end in a trap, never in an
  /// out-of-range heap access.
  HeapObject *deref(const Value &V, const Frame &F) {
    if (!V.IsRef || !H.isValid(V.ref())) {
      trap("invalid object reference in " + F.Method->QualifiedName);
      return nullptr;
    }
    return &H.get(V.ref());
  }

  /// Cold path behind the loop's single `Executed >= NextStop` compare:
  /// ends the run on fuel exhaustion or a missed deadline, demotes
  /// fused execution just before the fuel limit (so a multi-width
  /// cluster can never straddle it — the cut lands on the same
  /// instruction as in an unfused run), and schedules the next stop.
  /// Returns false when the run must end.
  bool onStop() {
    for (;;) {
      if (Executed >= Opts.Fuel) {
        FuelOut = true;
        return false;
      }
      if (UseFused && Executed >= DemoteAt) {
        UseFused = false;
        for (Frame &F : Frames)
          F.Code = F.Method->Code.data();
      }
      if (Executed >= DeadlineCheckAt) {
        if (nowMs() - StartMs >= Opts.RunDeadlineMs) {
          DeadlineOut = true;
          return false;
        }
        DeadlineCheckAt += DeadlineStride;
      }
      uint64_t FuelStop = UseFused ? DemoteAt : Opts.Fuel;
      NextStop = FuelStop < DeadlineCheckAt ? FuelStop : DeadlineCheckAt;
      if (Executed < NextStop)
        return true;
    }
  }

  /// The decode loops, expanded from InterpreterLoop.inc. Each executes
  /// until the run ends (trap, completion, or onStop saying stop).
  void execSwitch();
#if ALGOPROF_HAS_COMPUTED_GOTO
  void execThreaded();
#endif

  const PreparedProgram &P;
  const Module &M;
  Heap &H;
  ExecutionListener *L;
  const InstrumentationPlan &Plan;
  IoChannels &Io;
  RunOptions Opts;
  IcEntry *IcData; ///< Interpreter-owned cache array (may be null).

  std::vector<Frame> Frames;
  uint64_t Executed = 0;
  uint64_t AllocCount = 0; ///< Allocations attempted (1-based ordinal).

  // Dispatch/guard state for the decode loops.
  static constexpr uint64_t DeadlineStride = 8192;
  uint64_t NextStop = 0;        ///< Next Executed value that needs onStop.
  uint64_t DemoteAt = 0;        ///< Fuel threshold for fused demotion.
  uint64_t DeadlineCheckAt = 0; ///< Next Executed value to read the clock.
  uint64_t StartMs = 0;
  bool UseFused = false;
  IcEntry *Ic = nullptr; ///< IcData when inline caches are enabled.

  bool Trapped = false;
  bool BudgetTripped = false;
  bool InjectedFault = false;
  bool FuelOut = false;
  bool DeadlineOut = false;
  std::string BudgetName;
  std::string TrapMessage;
  bool WantsInstr = false;
};

} // namespace

void Machine::enterMethod(int32_t MethodId, std::vector<Value> Args) {
  const MethodInfo &Callee = M.Methods[static_cast<size_t>(MethodId)];
  Frame F;
  F.Method = &Callee;
  F.Prepared = &P.Methods[static_cast<size_t>(MethodId)];
  F.Code = UseFused && F.Prepared->FusedCode.size() == Callee.Code.size()
               ? F.Prepared->FusedCode.data()
               : Callee.Code.data();
  F.Pc = 0;
  F.Locals.assign(static_cast<size_t>(Callee.NumLocals), Value::makeInt(0));
  assert(static_cast<int32_t>(Args.size()) == Callee.NumArgs &&
         "argument count mismatch");
  for (size_t I = 0; I < Args.size(); ++I)
    F.Locals[I] = Args[I];
  Frames.push_back(std::move(F));

  if (L && Plan.methodHook(MethodId))
    L->onMethodEnter(MethodId);
  // A method whose entry pc sits inside a loop (e.g. a body that starts
  // with 'while') logically enters those loops now.
  if (L && !Callee.Code.empty()) {
    const auto &Chain = Frames.back().Prepared->Events.LoopChainAtPc[0];
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      L->onLoopEnter(MethodId, *It);
  }
}

void Machine::leaveTopFrame() {
  Frame &F = Frames.back();
  int32_t MethodId = F.Method->Id;
  if (L) {
    const auto &Chain =
        F.Prepared->Events.LoopChainAtPc[static_cast<size_t>(F.Pc)];
    for (int32_t Loop : Chain)
      L->onLoopExit(MethodId, Loop);
    if (Plan.methodHook(MethodId))
      L->onMethodExit(MethodId);
  }
  Frames.pop_back();
}

void Machine::fireTransition(const Frame &F, int FromPc, int ToPc) {
  const LoopTransition *T = F.Prepared->Events.lookup(FromPc, ToPc);
  if (!T)
    return;
  int32_t MethodId = F.Method->Id;
  for (int32_t Loop : T->Exits)
    L->onLoopExit(MethodId, Loop);
  if (T->BackEdge >= 0)
    L->onLoopBackEdge(MethodId, T->BackEdge);
  for (int32_t Loop : T->Entries)
    L->onLoopEnter(MethodId, Loop);
}

// Expand the decode loop twice: the portable switch loop always, the
// direct-threaded loop only when the build carries computed goto. The
// handler bodies live once, in InterpreterLoop.inc.
#define VM_TRAP(Msg)                                                          \
  do {                                                                        \
    trap(Msg);                                                                \
    return;                                                                   \
  } while (0)

#define VM_LOOP_THREADED 0
#include "vm/InterpreterLoop.inc"
#undef VM_LOOP_THREADED

#if ALGOPROF_HAS_COMPUTED_GOTO
#define VM_LOOP_THREADED 1
#include "vm/InterpreterLoop.inc"
#undef VM_LOOP_THREADED
#endif

#undef VM_TRAP

RunResult Machine::run(int32_t EntryMethodId) {
  const MethodInfo &Entry = M.Methods[static_cast<size_t>(EntryMethodId)];
  assert(Entry.IsStatic && Entry.NumArgs == 0 &&
         "entry must be a static no-arg method");
  (void)Entry;

  WantsInstr = L && L->wantsInstructionEvents();
  if (L) {
    ExecContext Ctx;
    Ctx.Module = &M;
    Ctx.TheHeap = &H;
    Ctx.Io = &Io;
    L->onProgramStart(Ctx);
  }

  // Execution-tier selection. UseFused must be settled before the first
  // enterMethod so every frame picks its code array consistently.
  UseFused = Opts.Superinstructions;
  Ic = (Opts.InlineCaches && P.NumIcSlots > 0) ? IcData : nullptr;
  enterMethod(EntryMethodId, {});

  // Guard thresholds (all in units of Executed). DemoteAt keeps a fused
  // cluster from straddling the fuel limit: within MaxFusedWidth-1
  // instructions of exhaustion the run falls back to unfused code, so
  // the fuel cut lands on the identical instruction in every tier.
  constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();
  DemoteAt = !UseFused ? Never
             : Opts.Fuel >= static_cast<uint64_t>(MaxFusedWidth)
                 ? Opts.Fuel - (static_cast<uint64_t>(MaxFusedWidth) - 1)
                 : 0;
  DeadlineCheckAt = Opts.RunDeadlineMs ? 0 : Never;
  StartMs = Opts.RunDeadlineMs ? nowMs() : 0;
  NextStop = 0; // Force the first iteration through onStop.

  RunResult R;
  bool BadAlloc = false;
  try {
#if ALGOPROF_HAS_COMPUTED_GOTO
    if (Opts.Dispatch == DispatchMode::Switch)
      execSwitch();
    else
      execThreaded();
#else
    execSwitch();
#endif
  } catch (const std::bad_alloc &) {
    // Safety net for hosts that run without MaxHeapBytes (or for
    // allocator failure below the modelled budget): degrade to the same
    // deterministic status instead of letting bad_alloc unwind through
    // profiler listeners.
    BadAlloc = true;
  }

  if (BadAlloc) {
    R.Status = RunStatus::BudgetExceeded;
    R.Budget = "heap_bytes";
    R.TrapMessage = "allocation failed (std::bad_alloc) after " +
                    std::to_string(Executed) + " instructions";
  } else if (FuelOut) {
    R.Status = RunStatus::FuelExhausted;
    R.Budget = "fuel";
    R.TrapMessage =
        "fuel exhausted after " + std::to_string(Executed) + " instructions";
  } else if (DeadlineOut) {
    R.Status = RunStatus::BudgetExceeded;
    R.Budget = "deadline";
    R.TrapMessage = "run deadline of " + std::to_string(Opts.RunDeadlineMs) +
                    " ms exceeded after " + std::to_string(Executed) +
                    " instructions";
  } else if (Trapped) {
    R.Status = BudgetTripped ? RunStatus::BudgetExceeded : RunStatus::Trapped;
    R.Budget = BudgetName;
    R.Injected = InjectedFault;
    R.TrapMessage = TrapMessage;
  }

  // Unwind remaining frames (trap / fuel), firing exit events so profiler
  // shadow stacks stay balanced — the paper's exceptional-exit handling.
  while (!Frames.empty())
    leaveTopFrame();

  if (L)
    L->onProgramEnd();
  R.InstrCount = Executed;
  return R;
}

RunResult Interpreter::run(int32_t EntryMethodId, ExecutionListener *Listener,
                           const InstrumentationPlan &Plan, IoChannels &Io,
                           const RunOptions &Opts) {
  assert(!InRun && "Interpreter::run is not reentrant; use one "
                   "Interpreter per concurrent run");
  InRun = true;
  RunResult R;
  {
    obs::ScopedSpan Span(obs::Phase::VmRun);
    Machine Mach(P, TheHeap, Listener, Plan, Io, Opts,
                 IcSlots.empty() ? nullptr : IcSlots.data());
    R = Mach.run(EntryMethodId);
  }
  obs::addCount(obs::Counter::BytecodesExecuted, R.InstrCount);
  obs::addCount(obs::Counter::RunsCompleted);
  if (R.Status == RunStatus::BudgetExceeded)
    obs::addCount(obs::Counter::RunsBudgetExceeded);
  InRun = false;
  return R;
}

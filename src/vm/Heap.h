//===- vm/Heap.h - Object heap ----------------------------------*- C++-*-===//
///
/// \file
/// A non-moving, non-collected heap. Objects live for the duration of a
/// program run, so allocation ids double as stable identities for the
/// profiler's structure snapshots (the paper's id(object)). Profilers
/// traverse the heap through this interface when measuring input sizes.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_VM_HEAP_H
#define ALGOPROF_VM_HEAP_H

#include "bytecode/Module.h"
#include "vm/Value.h"

#include <vector>

namespace algoprof {
namespace vm {

/// One heap cell: a class instance or an array.
struct HeapObject {
  bc::TypeId Type = -1;   ///< Class type or array type.
  int32_t ClassId = -1;   ///< Valid for class instances.
  bool IsArray = false;
  std::vector<Value> Slots; ///< Field values or array elements.
};

/// The VM heap.
class Heap {
public:
  explicit Heap(const bc::Module &M) : M(M) {}

  /// Allocates an instance of \p ClassId with default-initialized fields.
  ObjId allocObject(int32_t ClassId);

  /// Allocates an array of \p ArrayType with \p Len default elements.
  ObjId allocArray(bc::TypeId ArrayType, int64_t Len);

  HeapObject &get(ObjId Id) { return Objects[static_cast<size_t>(Id - Base)]; }
  const HeapObject &get(ObjId Id) const {
    return Objects[static_cast<size_t>(Id - Base)];
  }

  bool isValid(ObjId Id) const {
    return Id >= Base && Id < Base + static_cast<ObjId>(Objects.size());
  }

  /// Total objects ever allocated; equals the next ObjId to be handed
  /// out. Ids recycled away (see recycle()) still count.
  int64_t numObjects() const {
    return Base + static_cast<int64_t>(Objects.size());
  }

  /// Objects currently held in memory (excludes recycled ids).
  int64_t numLiveObjects() const {
    return static_cast<int64_t>(Objects.size());
  }

  /// Deterministic accounting cost of one object with \p Slots slots:
  /// a fixed header charge plus the slot payload. The figure is a model
  /// (stable across platforms and allocators), not malloc truth — what
  /// matters is that the same program charges the same bytes on every
  /// machine, so a heap-byte budget trips at the same allocation
  /// everywhere.
  static uint64_t bytesFor(uint64_t Slots) {
    return ObjectHeaderBytes + Slots * sizeof(Value);
  }
  static constexpr uint64_t ObjectHeaderBytes = 64;

  /// Accounted bytes of all live objects (recycled/reset memory is
  /// uncharged). The interpreter checks this against
  /// RunOptions::MaxHeapBytes *before* allocating, which is what turns
  /// an allocation blow-up into a deterministic BudgetExceeded trap
  /// instead of std::bad_alloc.
  uint64_t liveBytes() const { return LiveBytes; }

  const bc::Module &module() const { return M; }

  /// Releases all objects and restarts the id space from zero (between
  /// fully independent runs; stale ids silently alias new objects, so
  /// callers that keep id-keyed maps across runs must use recycle()).
  void reset() {
    Objects.clear();
    Base = 0;
    LiveBytes = 0;
  }

  /// Releases all objects but *retains the id space*: future allocations
  /// continue from the next unused id. This is what a profiled session
  /// wants between runs of one sweep — run-scoped memory is reclaimed
  /// while id-keyed profiler state (input membership maps) from earlier
  /// runs can never alias a new object.
  void recycle() {
    Base += static_cast<ObjId>(Objects.size());
    Objects.clear();
    LiveBytes = 0;
  }

private:
  Value defaultValueFor(bc::TypeId T) const;

  const bc::Module &M;
  std::vector<HeapObject> Objects;
  ObjId Base = 0;
  uint64_t LiveBytes = 0;
};

} // namespace vm
} // namespace algoprof

#endif // ALGOPROF_VM_HEAP_H

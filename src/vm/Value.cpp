//===- vm/Value.cpp -------------------------------------------------------===//

#include "vm/Value.h"

using namespace algoprof;
using namespace algoprof::vm;

std::string Value::str() const {
  if (!IsRef)
    return std::to_string(Bits);
  if (isNullRef())
    return "null";
  return "@" + std::to_string(Bits);
}

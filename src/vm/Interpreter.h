//===- vm/Interpreter.h - Bytecode interpreter ------------------*- C++-*-===//
///
/// \file
/// The AlgoProf VM: a stack-machine interpreter over bc::Module with an
/// instrumentation-event surface (vm/Hooks.h). PreparedProgram bundles
/// the per-method static artifacts (CFG, natural loops, loop-event maps)
/// and the module-level analyses the profilers need.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_VM_INTERPRETER_H
#define ALGOPROF_VM_INTERPRETER_H

#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"
#include "analysis/Loops.h"
#include "analysis/RecursiveTypes.h"
#include "bytecode/Module.h"
#include "vm/Heap.h"
#include "vm/Hooks.h"
#include "vm/LoopEventMap.h"

#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace vm {

/// External input/output channels (the paper's Input Reads / Output
/// Writes cost sources).
struct IoChannels {
  std::vector<int64_t> Input;
  size_t InputPos = 0;
  std::vector<int64_t> Output;

  bool hasInput() const { return InputPos < Input.size(); }
};

/// Per-method static artifacts used at run time.
struct PreparedMethod {
  analysis::Cfg Graph;
  analysis::LoopInfo Loops;
  LoopEventMap Events;
};

/// A module plus everything the VM and profilers need to run it.
struct PreparedProgram {
  const bc::Module *M = nullptr;
  std::vector<PreparedMethod> Methods;
  analysis::CallGraph Calls;
  analysis::RecursiveTypes RecTypes;

  /// Runs all static analyses over \p M. The module must outlive the
  /// result.
  static PreparedProgram prepare(const bc::Module &M);
};

/// How a run ended.
enum class RunStatus {
  Ok,
  Trapped,
  FuelExhausted,
  /// A resource budget from RunOptions tripped (MaxHeapBytes or
  /// RunDeadlineMs). Deterministic: the same program under the same
  /// budget traps at the same point on every machine — never
  /// std::bad_alloc, never a wall-clock-dependent heap state.
  BudgetExceeded,
};

/// Stable lowercase status name ("ok" | "trap" | "fuel" | "budget").
const char *runStatusName(RunStatus S);

/// Result of one program run.
struct RunResult {
  RunStatus Status = RunStatus::Ok;
  std::string TrapMessage;
  uint64_t InstrCount = 0;
  /// Which budget tripped: "heap_bytes" | "deadline" for
  /// BudgetExceeded, "fuel" for FuelExhausted, empty otherwise.
  std::string Budget;
  /// True when the failure was injected by an armed fault plan rather
  /// than hit organically.
  bool Injected = false;

  bool ok() const { return Status == RunStatus::Ok; }
};

/// Interpreter options.
struct RunOptions {
  uint64_t Fuel = 500'000'000; ///< Max executed instructions.
  int MaxFrames = 4096;        ///< Call-depth limit.
  /// Largest single allocation in slots; NewArray/NewMulti trap above
  /// it (a Value slot is 16 bytes, so the default caps one array at
  /// 1 GiB). Fuzzing uses much smaller caps to bound memory.
  int64_t MaxArrayLength = 1LL << 26;
  /// Heap-byte budget over Heap's deterministic accounting (0 = off).
  /// Checked *before* each allocation; a would-be overflow ends the run
  /// with RunStatus::BudgetExceeded instead of std::bad_alloc.
  uint64_t MaxHeapBytes = 0;
  /// Cooperative wall-clock deadline in milliseconds (0 = off), checked
  /// periodically on the fuel-tick path so a hostile run cannot hang a
  /// sweep worker. The trap point is time-dependent; the status and
  /// budget name are not.
  uint64_t RunDeadlineMs = 0;
  /// Fault injection: when nonzero, the Nth allocation (1-based) of the
  /// run reports BudgetExceeded as if MaxHeapBytes had tripped, with
  /// RunResult::Injected set. Armed by resilience::FaultPlan.
  uint64_t InjectHeapOomAtAlloc = 0;
  /// Test seam for the deadline: returns "now" in milliseconds. Null
  /// selects std::chrono::steady_clock. Injectable clocks make deadline
  /// tests fully deterministic.
  uint64_t (*ClockNowMs)() = nullptr;
};

/// Executes prepared programs. One Interpreter owns one heap; distinct
/// runs in one Interpreter share the heap id space (reset() clears it,
/// Heap::recycle() reclaims memory while keeping ids fresh).
///
/// Thread-safety / re-entrancy: an Interpreter holds no state besides a
/// reference to the immutable PreparedProgram and its private heap — all
/// per-run machinery (frames, operand stacks, pc) lives on run()'s
/// stack. A single Interpreter must not run twice concurrently (one
/// heap), but any number of Interpreter instances may run in parallel
/// over one shared PreparedProgram, each with its own IoChannels and
/// listener. This is what parallel::SweepEngine relies on.
class Interpreter {
public:
  explicit Interpreter(const PreparedProgram &P)
      : P(P), TheHeap(*P.M) {}

  /// Runs static method \p EntryMethodId (which must take no arguments).
  /// \p Listener may be null. \p Plan selects which events fire.
  /// Non-reentrant per instance (asserted in debug builds).
  RunResult run(int32_t EntryMethodId, ExecutionListener *Listener,
                const InstrumentationPlan &Plan, IoChannels &Io,
                const RunOptions &Opts = RunOptions());

  Heap &heap() { return TheHeap; }
  const PreparedProgram &program() const { return P; }

  /// Clears the heap between independent runs.
  void reset() { TheHeap.reset(); }

private:
  const PreparedProgram &P;
  Heap TheHeap;
  bool InRun = false; ///< Debug re-entrancy guard.
};

} // namespace vm
} // namespace algoprof

#endif // ALGOPROF_VM_INTERPRETER_H

//===- vm/Interpreter.h - Bytecode interpreter ------------------*- C++-*-===//
///
/// \file
/// The AlgoProf VM: a stack-machine interpreter over bc::Module with an
/// instrumentation-event surface (vm/Hooks.h). PreparedProgram bundles
/// the per-method static artifacts (CFG, natural loops, loop-event maps)
/// and the module-level analyses the profilers need.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_VM_INTERPRETER_H
#define ALGOPROF_VM_INTERPRETER_H

#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"
#include "analysis/Loops.h"
#include "analysis/RecursiveTypes.h"
#include "bytecode/Module.h"
#include "vm/Heap.h"
#include "vm/Hooks.h"
#include "vm/LoopEventMap.h"

#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace vm {

/// External input/output channels (the paper's Input Reads / Output
/// Writes cost sources).
struct IoChannels {
  std::vector<int64_t> Input;
  size_t InputPos = 0;
  std::vector<int64_t> Output;

  bool hasInput() const { return InputPos < Input.size(); }
};

/// Per-method static artifacts used at run time.
struct PreparedMethod {
  analysis::Cfg Graph;
  analysis::LoopInfo Loops;
  LoopEventMap Events;
  /// Superinstruction-fused copy of the method body, pc-aligned with
  /// MethodInfo::Code (cluster interiors keep their original
  /// instructions as shadows). Selected by RunOptions::Superinstructions.
  std::vector<bc::Instr> FusedCode;
  /// Per pc: global inline-cache slot for an InvokeVirtual site, -1 for
  /// every other instruction. Slots index Interpreter-owned storage so
  /// sweep workers sharing one PreparedProgram never share cache state.
  std::vector<int32_t> IcSlot;
};

/// A module plus everything the VM and profilers need to run it.
struct PreparedProgram {
  const bc::Module *M = nullptr;
  std::vector<PreparedMethod> Methods;
  analysis::CallGraph Calls;
  analysis::RecursiveTypes RecTypes;
  int32_t NumIcSlots = 0; ///< InvokeVirtual sites across all methods.
  int FusedClusters = 0;  ///< Superinstruction clusters across all methods.

  /// Runs all static analyses over \p M. The module must outlive the
  /// result.
  static PreparedProgram prepare(const bc::Module &M);
};

/// How a run ended.
enum class RunStatus {
  Ok,
  Trapped,
  FuelExhausted,
  /// A resource budget from RunOptions tripped (MaxHeapBytes or
  /// RunDeadlineMs). Deterministic: the same program under the same
  /// budget traps at the same point on every machine — never
  /// std::bad_alloc, never a wall-clock-dependent heap state.
  BudgetExceeded,
};

/// Stable lowercase status name ("ok" | "trap" | "fuel" | "budget").
const char *runStatusName(RunStatus S);

/// Result of one program run.
struct RunResult {
  RunStatus Status = RunStatus::Ok;
  std::string TrapMessage;
  uint64_t InstrCount = 0;
  /// Which budget tripped: "heap_bytes" | "deadline" for
  /// BudgetExceeded, "fuel" for FuelExhausted, empty otherwise.
  std::string Budget;
  /// True when the failure was injected by an armed fault plan rather
  /// than hit organically.
  bool Injected = false;

  bool ok() const { return Status == RunStatus::Ok; }
};

/// How the VM decodes and dispatches bytecode. Every tier executes the
/// same semantics and fires byte-identical ExecutionListener event
/// streams (locked by the dispatch differential tests); the tiers only
/// trade portability for raw speed.
enum class DispatchMode : uint8_t {
  /// Best available: the direct-threaded loop when it was compiled in,
  /// otherwise the portable switch loop.
  Auto,
  /// The portable switch decode loop.
  Switch,
  /// GNU computed-goto direct threading; silently falls back to Switch
  /// when the build lacks it (see threadedDispatchCompiled()).
  Threaded,
};

/// Stable lowercase mode name ("auto" | "switch" | "threaded").
const char *dispatchModeName(DispatchMode M);

/// True when this build carries the computed-goto loop
/// (-DALGOPROF_THREADED_DISPATCH=ON and a GNU-compatible compiler).
bool threadedDispatchCompiled();

/// One monomorphic inline-cache entry for an InvokeVirtual site: the
/// receiver class seen last time and the method it resolved to. MiniJ
/// vtables are immutable after compilation, so entries never need
/// invalidation; a cache miss simply re-resolves and overwrites.
struct IcEntry {
  /// IcEmptyClassId marks a never-filled entry. The sentinel must not
  /// collide with any real receiver: array receivers carry class id -1
  /// and object class ids are non-negative.
  int32_t ClassId;
  int32_t MethodId;
};
constexpr int32_t IcEmptyClassId = std::numeric_limits<int32_t>::min();

/// Interpreter options.
struct RunOptions {
  uint64_t Fuel = 500'000'000; ///< Max executed instructions.
  int MaxFrames = 4096;        ///< Call-depth limit.
  /// Largest single allocation in slots; NewArray/NewMulti trap above
  /// it (a Value slot is 16 bytes, so the default caps one array at
  /// 1 GiB). Fuzzing uses much smaller caps to bound memory.
  int64_t MaxArrayLength = 1LL << 26;
  /// Heap-byte budget over Heap's deterministic accounting (0 = off).
  /// Checked *before* each allocation; a would-be overflow ends the run
  /// with RunStatus::BudgetExceeded instead of std::bad_alloc.
  uint64_t MaxHeapBytes = 0;
  /// Cooperative wall-clock deadline in milliseconds (0 = off), checked
  /// periodically on the fuel-tick path so a hostile run cannot hang a
  /// sweep worker. The trap point is time-dependent; the status and
  /// budget name are not.
  uint64_t RunDeadlineMs = 0;
  /// Fault injection: when nonzero, the Nth allocation (1-based) of the
  /// run reports BudgetExceeded as if MaxHeapBytes had tripped, with
  /// RunResult::Injected set. Armed by resilience::FaultPlan.
  uint64_t InjectHeapOomAtAlloc = 0;
  /// Test seam for the deadline: returns "now" in milliseconds. Null
  /// selects std::chrono::steady_clock. Injectable clocks make deadline
  /// tests fully deterministic.
  uint64_t (*ClockNowMs)() = nullptr;
  /// Decode-loop selection. All tiers are observationally identical;
  /// the differential tests pin specific modes, everything else keeps
  /// Auto and gets the fastest loop the build provides.
  DispatchMode Dispatch = DispatchMode::Auto;
  /// Execute the prepare-time superinstructions (PreparedMethod::
  /// FusedCode). Off = single-step the original code array.
  bool Superinstructions = true;
  /// Monomorphic inline caches for InvokeVirtual, keyed on receiver
  /// class id (single inheritance makes one id check sufficient).
  bool InlineCaches = true;
};

/// Executes prepared programs. One Interpreter owns one heap; distinct
/// runs in one Interpreter share the heap id space (reset() clears it,
/// Heap::recycle() reclaims memory while keeping ids fresh).
///
/// Thread-safety / re-entrancy: an Interpreter holds no state besides a
/// reference to the immutable PreparedProgram and its private heap — all
/// per-run machinery (frames, operand stacks, pc) lives on run()'s
/// stack. A single Interpreter must not run twice concurrently (one
/// heap), but any number of Interpreter instances may run in parallel
/// over one shared PreparedProgram, each with its own IoChannels and
/// listener. This is what parallel::SweepEngine relies on.
class Interpreter {
public:
  explicit Interpreter(const PreparedProgram &P)
      : P(P), TheHeap(*P.M),
        IcSlots(static_cast<size_t>(P.NumIcSlots),
                IcEntry{IcEmptyClassId, -1}) {}

  /// Runs static method \p EntryMethodId (which must take no arguments).
  /// \p Listener may be null. \p Plan selects which events fire.
  /// Non-reentrant per instance (asserted in debug builds).
  RunResult run(int32_t EntryMethodId, ExecutionListener *Listener,
                const InstrumentationPlan &Plan, IoChannels &Io,
                const RunOptions &Opts = RunOptions());

  Heap &heap() { return TheHeap; }
  const PreparedProgram &program() const { return P; }

  /// Clears the heap between independent runs.
  void reset() { TheHeap.reset(); }

private:
  const PreparedProgram &P;
  Heap TheHeap;
  /// Inline-cache storage, one entry per InvokeVirtual site (indexed by
  /// PreparedMethod::IcSlot). Owned per Interpreter — like the heap —
  /// so concurrent sweep workers never share mutable state. Entries
  /// stay warm across runs; the module is immutable, so a filled entry
  /// can never go stale.
  std::vector<IcEntry> IcSlots;
  bool InRun = false; ///< Debug re-entrancy guard.
};

} // namespace vm
} // namespace algoprof

#endif // ALGOPROF_VM_INTERPRETER_H

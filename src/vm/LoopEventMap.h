//===- vm/LoopEventMap.h - Control-transfer loop events ---------*- C++-*-===//
///
/// \file
/// Precomputed loop events per control transfer. The interpreter fires
/// loop enter / back edge / exit callbacks by consulting this map on
/// every pc advance whose target is marked interesting — the dynamic
/// equivalent of the paper's loop-entry/exit/back-edge bytecode
/// instrumentation, derived from the recovered natural loops rather than
/// from front-end structure.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_VM_LOOPEVENTMAP_H
#define ALGOPROF_VM_LOOPEVENTMAP_H

#include "analysis/Cfg.h"
#include "analysis/Loops.h"

#include <unordered_map>
#include <vector>

namespace algoprof {
namespace vm {

/// Events attached to one (from-pc, to-pc) control transfer. Loop ids are
/// indices into the method's analysis::LoopInfo.
struct LoopTransition {
  std::vector<int32_t> Exits;   ///< Innermost-first.
  int32_t BackEdge = -1;        ///< Loop whose back edge this is, or -1.
  std::vector<int32_t> Entries; ///< Outermost-first.
};

/// Loop-event tables for one method.
class LoopEventMap {
public:
  /// Per pc: some transfer *into* this pc carries events.
  std::vector<char> InterestingTarget;

  /// Keyed by (FromPc << 32) | ToPc.
  std::unordered_map<int64_t, LoopTransition> Transitions;

  /// Per pc: loops containing the pc, innermost first. Used on method
  /// entry (pc 0), on returns, and when unwinding a trap.
  std::vector<std::vector<int32_t>> LoopChainAtPc;

  /// Returns the transition for from->to, or null when it has no events.
  const LoopTransition *lookup(int FromPc, int ToPc) const {
    if (!InterestingTarget[static_cast<size_t>(ToPc)])
      return nullptr;
    auto It = Transitions.find((static_cast<int64_t>(FromPc) << 32) | ToPc);
    return It == Transitions.end() ? nullptr : &It->second;
  }
};

/// Builds the loop-event tables of one method.
LoopEventMap buildLoopEventMap(const bc::MethodInfo &Method,
                               const analysis::Cfg &G,
                               const analysis::LoopInfo &LI);

} // namespace vm
} // namespace algoprof

#endif // ALGOPROF_VM_LOOPEVENTMAP_H

//===- vm/Value.h - Runtime values ------------------------------*- C++-*-===//
///
/// \file
/// Tagged runtime values: 64-bit integers (booleans are 0/1) and heap
/// references. References carry the object's allocation id, which is the
/// stable identity that structure snapshots key on.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_VM_VALUE_H
#define ALGOPROF_VM_VALUE_H

#include <cstdint>
#include <string>

namespace algoprof {
namespace vm {

/// Heap object identity: the allocation index. Stable for the lifetime of
/// a program run (the VM never compacts).
using ObjId = int64_t;

/// The null reference.
constexpr ObjId NullObj = -1;

/// One runtime value.
struct Value {
  bool IsRef = false;
  int64_t Bits = 0; ///< Integer payload, or ObjId for references.

  static Value makeInt(int64_t V) { return {false, V}; }
  static Value makeBool(bool B) { return {false, B ? 1 : 0}; }
  static Value makeNull() { return {true, NullObj}; }
  static Value makeRef(ObjId Id) { return {true, Id}; }

  bool isNullRef() const { return IsRef && Bits == NullObj; }
  ObjId ref() const { return Bits; }

  std::string str() const;
};

} // namespace vm
} // namespace algoprof

#endif // ALGOPROF_VM_VALUE_H

//===- fuzz/ProgramGen.cpp ------------------------------------------------===//

#include "fuzz/ProgramGen.h"

#include <cassert>
#include <limits>
#include <vector>

using namespace algoprof;
using namespace algoprof::fuzz;

int64_t Rng::anyInt() {
  switch (below(16)) {
  case 0:
    return 0;
  case 1:
    return -1;
  case 2:
    return std::numeric_limits<int64_t>::max();
  case 3:
    return std::numeric_limits<int64_t>::min();
  case 4:
    return std::numeric_limits<int64_t>::min() + 1;
  case 5:
    return static_cast<int64_t>(below(1ULL << 40));
  case 6:
    return -static_cast<int64_t>(below(1ULL << 40));
  default:
    return range(-100, 100);
  }
}

uint64_t fuzz::deriveSeed(uint64_t BaseSeed, uint64_t CaseIndex) {
  Rng Mix(BaseSeed ^ (CaseIndex * 0x9e3779b97f4a7c15ULL) ^
          0xa1907f5u);
  (void)Mix.next();
  return Mix.next();
}

//===----------------------------------------------------------------------===//
// Program model
//===----------------------------------------------------------------------===//

namespace {

enum class Ty { Int, Bool, IntArray, Ref };

struct TypeG {
  Ty K = Ty::Int;
  int Cls = -1; ///< For Ref.

  bool operator==(const TypeG &O) const { return K == O.K && Cls == O.Cls; }
};

struct FieldG {
  std::string Name;
  TypeG T;
};

struct ClassG {
  std::string Name;
  int Super = -1;
  std::vector<FieldG> Fields; ///< Own fields; inherited come via Super.
  int CtorArity = 0;          ///< 0 (implicit) or 1 (int argument).
};

struct VarG {
  std::string Name;
  TypeG T;
  /// For IntArray vars: a statically known lower bound on the length
  /// (literal `new int[K]`), so safe-mode stores can index in bounds.
  /// 0 when unknown.
  int MinLen = 0;
};

class Gen {
public:
  Gen(Rng &R, const GenOptions &O) : R(R), O(O) {}

  std::string run();

private:
  Rng &R;
  const GenOptions &O;

  std::vector<ClassG> Classes;
  int NumHelpers = 0;
  int FieldCounter = 0;

  std::string Out;
  int Indent = 0;

  // Per-method state.
  std::vector<VarG> Vars;
  std::vector<size_t> ScopeMarks;
  int NextVar = 0;
  int LoopDepth = 0;
  int CurHelper = -1; ///< Helper index being generated, for self-calls.

  bool hostile() { return R.chance(O.HostilePercent); }

  // Emission helpers.
  void line(const std::string &S) {
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += S;
    Out += '\n';
  }
  void open(const std::string &S) {
    line(S + " {");
    ++Indent;
  }
  void close() {
    --Indent;
    line("}");
  }

  std::string freshVar() { return "v" + std::to_string(NextVar++); }
  void pushScope() { ScopeMarks.push_back(Vars.size()); }
  void popScope() {
    Vars.resize(ScopeMarks.back());
    ScopeMarks.pop_back();
  }

  // Model construction.
  void buildClasses();
  bool classHasIntField(int C) const;
  /// All fields of \p C including inherited ones.
  std::vector<FieldG> allFields(int C) const;
  /// Classes equal to or derived from \p C.
  std::vector<int> subclassesOf(int C) const;
  /// A field of \p C (incl. inherited) whose type is Ref — the link
  /// fields recursive-structure programs hang their lists on.
  const FieldG *linkField(int C) const;
  std::string typeName(const TypeG &T) const;

  // Variable lookup.
  const VarG *pickVar(const TypeG &T);
  const VarG *pickVarKind(Ty K);

  // Expressions.
  std::string intLit();
  std::string intExpr(int D);
  std::string boolExpr(int D);
  std::string arrExpr(int D, int &MinLenOut);
  std::string refExpr(int C, int D);
  std::string newExpr(int C);

  // Statements.
  void stmt(int D);
  void block(int D);
  void emitBoundedLoop(int D);
  void emitBuilderTraversal(int D);
  void emitClass(int C);
  void emitHelper(int H);
  void emitMain();
};

//===----------------------------------------------------------------------===//
// Model construction
//===----------------------------------------------------------------------===//

void Gen::buildClasses() {
  int N = R.range(1, O.MaxClasses);
  Classes.resize(static_cast<size_t>(N));
  for (int C = 0; C < N; ++C) {
    ClassG &Cls = Classes[static_cast<size_t>(C)];
    Cls.Name = "C" + std::to_string(C);
    if (C > 0 && R.chance(30))
      Cls.Super = static_cast<int>(R.below(static_cast<uint64_t>(C)));
    // Class 0 always carries a self link so the linked-structure
    // patterns (the paper's bread and butter) are always available.
    if (C == 0)
      Cls.Fields.push_back(
          {"f" + std::to_string(FieldCounter++), {Ty::Ref, 0}});
    int NumFields = R.range(1, O.MaxFieldsPerClass);
    for (int F = 0; F < NumFields; ++F) {
      TypeG T;
      switch (R.below(5)) {
      case 0:
        T = {Ty::Bool, -1};
        break;
      case 1:
        T = {Ty::IntArray, -1};
        break;
      case 2:
        T = {Ty::Ref, static_cast<int>(R.below(static_cast<uint64_t>(N)))};
        break;
      default:
        T = {Ty::Int, -1};
        break;
      }
      Cls.Fields.push_back({"f" + std::to_string(FieldCounter++), T});
    }
    if (R.chance(40) && classHasIntField(C))
      Cls.CtorArity = 1;
  }
}

bool Gen::classHasIntField(int C) const {
  for (const FieldG &F : Classes[static_cast<size_t>(C)].Fields)
    if (F.T.K == Ty::Int)
      return true;
  return false;
}

std::vector<FieldG> Gen::allFields(int C) const {
  std::vector<FieldG> All;
  for (int Cur = C; Cur >= 0; Cur = Classes[static_cast<size_t>(Cur)].Super)
    All.insert(All.end(), Classes[static_cast<size_t>(Cur)].Fields.begin(),
               Classes[static_cast<size_t>(Cur)].Fields.end());
  return All;
}

std::vector<int> Gen::subclassesOf(int C) const {
  std::vector<int> Subs;
  for (int D = 0; D < static_cast<int>(Classes.size()); ++D) {
    for (int Cur = D; Cur >= 0;
         Cur = Classes[static_cast<size_t>(Cur)].Super)
      if (Cur == C) {
        Subs.push_back(D);
        break;
      }
  }
  return Subs;
}

const FieldG *Gen::linkField(int C) const {
  // Stored per call to keep the model simple; programs are tiny.
  static thread_local std::vector<FieldG> Scratch;
  Scratch = allFields(C);
  for (const FieldG &F : Scratch)
    if (F.T.K == Ty::Ref && F.T.Cls == C)
      return &F;
  return nullptr;
}

std::string Gen::typeName(const TypeG &T) const {
  switch (T.K) {
  case Ty::Int:
    return "int";
  case Ty::Bool:
    return "boolean";
  case Ty::IntArray:
    return "int[]";
  case Ty::Ref:
    return Classes[static_cast<size_t>(T.Cls)].Name;
  }
  return "int";
}

const VarG *Gen::pickVar(const TypeG &T) {
  std::vector<const VarG *> Matches;
  for (const VarG &V : Vars)
    if (V.T == T)
      Matches.push_back(&V);
  if (Matches.empty())
    return nullptr;
  return Matches[R.below(Matches.size())];
}

const VarG *Gen::pickVarKind(Ty K) {
  std::vector<const VarG *> Matches;
  for (const VarG &V : Vars)
    if (V.T.K == K)
      Matches.push_back(&V);
  if (Matches.empty())
    return nullptr;
  return Matches[R.below(Matches.size())];
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::string Gen::intLit() {
  if (R.chance(5)) {
    int64_t V = R.anyInt();
    // MiniJ has no INT64_MIN literal (the lexer sees the magnitude
    // first); spell it as arithmetic.
    if (V == std::numeric_limits<int64_t>::min())
      return "(-9223372036854775807 - 1)";
    if (V < 0)
      return "(-" + std::to_string(-V) + ")";
    return std::to_string(V);
  }
  int V = R.range(-9, 9);
  return V < 0 ? "(" + std::to_string(V) + ")" : std::to_string(V);
}

std::string Gen::intExpr(int D) {
  if (D <= 0 || R.chance(30)) {
    // Atoms.
    switch (R.below(4)) {
    case 0: {
      if (const VarG *V = pickVarKind(Ty::Int))
        return V->Name;
      return intLit();
    }
    case 1: {
      if (const VarG *V = pickVarKind(Ty::IntArray))
        return V->Name + ".length";
      return intLit();
    }
    default:
      return intLit();
    }
  }
  switch (R.below(10)) {
  case 0:
  case 1: {
    const char *Ops[] = {"+", "-", "*"};
    return "(" + intExpr(D - 1) + " " + Ops[R.below(3)] + " " +
           intExpr(D - 1) + ")";
  }
  case 2: {
    const char *Op = R.chance(50) ? "/" : "%";
    std::string Denom = hostile()
                            ? intExpr(D - 1)
                            : std::to_string(R.range(1, 9));
    return "(" + intExpr(D - 1) + " " + Op + " " + Denom + ")";
  }
  case 3:
    return "(-" + intExpr(D - 1) + ")";
  case 4: {
    // Static helper call; helpers may call themselves (guarded) and
    // earlier helpers only, so call graphs stay terminating-by-fuel.
    int Limit = CurHelper >= 0 ? CurHelper : NumHelpers;
    if (Limit > 0) {
      int H = static_cast<int>(R.below(static_cast<uint64_t>(Limit)));
      return "h" + std::to_string(H) + "(" + intExpr(D - 1) + ")";
    }
    return intExpr(D - 1);
  }
  case 5: {
    // Virtual dispatch.
    if (const VarG *V = pickVarKind(Ty::Ref))
      return V->Name + ".val()";
    return intExpr(D - 1);
  }
  case 6: {
    // Array load.
    if (const VarG *V = pickVarKind(Ty::IntArray)) {
      std::string Idx =
          (!hostile() && V->MinLen > 0)
              ? std::to_string(R.below(static_cast<uint64_t>(V->MinLen)))
              : intExpr(D - 1);
      return V->Name + "[" + Idx + "]";
    }
    return intExpr(D - 1);
  }
  case 7: {
    // Int field read through a reference.
    if (const VarG *V = pickVarKind(Ty::Ref)) {
      for (const FieldG &F : allFields(V->T.Cls))
        if (F.T.K == Ty::Int)
          return V->Name + "." + F.Name;
    }
    return intExpr(D - 1);
  }
  case 8:
    if (hostile())
      return "readInt()";
    return intExpr(D - 1);
  default:
    return intExpr(D - 1);
  }
}

std::string Gen::boolExpr(int D) {
  if (D <= 0 || R.chance(30)) {
    if (R.chance(40)) {
      if (const VarG *V = pickVarKind(Ty::Bool))
        return V->Name;
    }
    return R.chance(50) ? "true" : "false";
  }
  switch (R.below(7)) {
  case 0: {
    const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    return "(" + intExpr(D - 1) + " " + Ops[R.below(6)] + " " +
           intExpr(D - 1) + ")";
  }
  case 1:
    return "(!" + boolExpr(D - 1) + ")";
  case 2:
    return "(" + boolExpr(D - 1) + " && " + boolExpr(D - 1) + ")";
  case 3:
    return "(" + boolExpr(D - 1) + " || " + boolExpr(D - 1) + ")";
  case 4:
    return "hasInput()";
  case 5: {
    if (const VarG *V = pickVarKind(Ty::Ref))
      return "(" + V->Name + (R.chance(50) ? " == " : " != ") + "null)";
    return boolExpr(D - 1);
  }
  default:
    return boolExpr(D - 1);
  }
}

std::string Gen::arrExpr(int D, int &MinLenOut) {
  MinLenOut = 0;
  if (R.chance(40)) {
    if (const VarG *V = pickVarKind(Ty::IntArray)) {
      MinLenOut = V->MinLen;
      return V->Name;
    }
  }
  if (hostile())
    return "new int[" + intExpr(D - 1) + "]";
  int Len = R.range(2, 8);
  MinLenOut = Len;
  return "new int[" + std::to_string(Len) + "]";
}

std::string Gen::newExpr(int C) {
  const ClassG &Cls = Classes[static_cast<size_t>(C)];
  if (Cls.CtorArity == 1)
    return "new " + Cls.Name + "(" + intExpr(1) + ")";
  return "new " + Cls.Name + "()";
}

std::string Gen::refExpr(int C, int D) {
  if (R.chance(40)) {
    // An existing variable of this class or a subclass.
    std::vector<const VarG *> Matches;
    for (const VarG &V : Vars)
      if (V.T.K == Ty::Ref)
        for (int Sub : subclassesOf(C))
          if (V.T.Cls == Sub) {
            Matches.push_back(&V);
            break;
          }
    if (!Matches.empty())
      return Matches[R.below(Matches.size())]->Name;
  }
  if (R.chance(10))
    return "null";
  if (D > 0 && R.chance(20)) {
    // A Ref-typed field read of matching class.
    if (const VarG *V = pickVarKind(Ty::Ref)) {
      for (const FieldG &F : allFields(V->T.Cls))
        if (F.T.K == Ty::Ref && F.T.Cls == C)
          return V->Name + "." + F.Name;
    }
  }
  // A fresh allocation of C or a subclass (exercises dispatch).
  std::vector<int> Subs = subclassesOf(C);
  return newExpr(Subs[R.below(Subs.size())]);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Gen::block(int D) {
  pushScope();
  int N = R.range(1, O.MaxStmtsPerBlock);
  for (int I = 0; I < N; ++I)
    stmt(D);
  popScope();
}

void Gen::emitBoundedLoop(int D) {
  std::string I = freshVar();
  int Bound = R.range(2, 7);
  if (R.chance(50)) {
    open("for (int " + I + " = 0; " + I + " < " + std::to_string(Bound) +
         "; " + I + "++)");
    pushScope();
    Vars.push_back({I, {Ty::Int, -1}, 0});
    ++LoopDepth;
    block(D - 1);
    --LoopDepth;
    popScope();
    close();
  } else {
    line("int " + I + " = 0;");
    Vars.push_back({I, {Ty::Int, -1}, 0});
    open("while (" + I + " < " + std::to_string(Bound) + ")");
    ++LoopDepth;
    block(D - 1);
    line(I + " = " + I + " + 1;");
    --LoopDepth;
    close();
  }
}

/// The canonical algorithmic-profiling shape: build a linked list in a
/// loop, then traverse it — gives the profiler a recursive structure,
/// loop repetitions over it, and a nontrivial input series.
void Gen::emitBuilderTraversal(int D) {
  const FieldG *Link = linkField(0);
  assert(Link && "class 0 always has a self link");
  const ClassG &Cls = Classes[0];
  std::string Head = freshVar();
  std::string I = freshVar();
  int Bound = R.range(3, 9);
  line(Cls.Name + " " + Head + " = null;");
  Vars.push_back({Head, {Ty::Ref, 0}, 0});
  open("for (int " + I + " = 0; " + I + " < " + std::to_string(Bound) +
       "; " + I + "++)");
  {
    std::string Node = freshVar();
    line(Cls.Name + " " + Node + " = " + newExpr(0) + ";");
    line(Node + "." + Link->Name + " = " + Head + ";");
    line(Head + " = " + Node + ";");
  }
  close();
  std::string Cur = freshVar();
  std::string Acc = freshVar();
  line("int " + Acc + " = 0;");
  Vars.push_back({Acc, {Ty::Int, -1}, 0});
  line(Cls.Name + " " + Cur + " = " + Head + ";");
  open("while (" + Cur + " != null)");
  ++LoopDepth;
  line(Acc + " = " + Acc + " + " + Cur + ".val();");
  if (D > 1 && R.chance(40)) {
    // Scope any declaration the extra statement makes to the loop body.
    pushScope();
    stmt(D - 1);
    popScope();
  }
  line(Cur + " = " + Cur + "." + Link->Name + ";");
  --LoopDepth;
  close();
  line("print(" + Acc + ");");
}

void Gen::stmt(int D) {
  switch (R.below(14)) {
  case 0: {
    // Variable declaration.
    TypeG T;
    switch (R.below(6)) {
    case 0:
      T = {Ty::Bool, -1};
      break;
    case 1:
      T = {Ty::IntArray, -1};
      break;
    case 2:
      T = {Ty::Ref,
           static_cast<int>(R.below(Classes.size()))};
      break;
    default:
      T = {Ty::Int, -1};
      break;
    }
    std::string Name = freshVar();
    VarG V{Name, T, 0};
    std::string Init;
    switch (T.K) {
    case Ty::Int:
      Init = intExpr(O.MaxExprDepth);
      break;
    case Ty::Bool:
      Init = boolExpr(O.MaxExprDepth);
      break;
    case Ty::IntArray:
      Init = arrExpr(O.MaxExprDepth, V.MinLen);
      break;
    case Ty::Ref:
      Init = refExpr(T.Cls, O.MaxExprDepth);
      break;
    }
    line(typeName(T) + " " + Name + " = " + Init + ";");
    Vars.push_back(V);
    break;
  }
  case 1: {
    // Assignment to an existing variable.
    if (Vars.empty())
      return stmt(D);
    VarG &V = Vars[R.below(Vars.size())];
    std::string Rhs;
    switch (V.T.K) {
    case Ty::Int:
      Rhs = intExpr(O.MaxExprDepth);
      break;
    case Ty::Bool:
      Rhs = boolExpr(O.MaxExprDepth);
      break;
    case Ty::IntArray:
      Rhs = arrExpr(O.MaxExprDepth, V.MinLen);
      break;
    case Ty::Ref:
      Rhs = refExpr(V.T.Cls, O.MaxExprDepth);
      break;
    }
    line(V.Name + " = " + Rhs + ";");
    break;
  }
  case 2: {
    if (const VarG *V = pickVarKind(Ty::Int)) {
      line(V->Name + (R.chance(50) ? "++;" : "--;"));
      return;
    }
    return stmt(D);
  }
  case 3: {
    // Array store.
    if (const VarG *V = pickVarKind(Ty::IntArray)) {
      std::string Idx;
      if (!hostile() && V->MinLen > 0)
        Idx = std::to_string(R.below(static_cast<uint64_t>(V->MinLen)));
      else
        Idx = intExpr(2);
      line(V->Name + "[" + Idx + "] = " + intExpr(2) + ";");
      return;
    }
    return stmt(D);
  }
  case 4: {
    // Field store through a reference.
    if (const VarG *V = pickVarKind(Ty::Ref)) {
      std::vector<FieldG> Fields = allFields(V->T.Cls);
      const FieldG &F = Fields[R.below(Fields.size())];
      std::string Rhs;
      switch (F.T.K) {
      case Ty::Int:
        Rhs = intExpr(2);
        break;
      case Ty::Bool:
        Rhs = boolExpr(2);
        break;
      case Ty::IntArray: {
        int Unused;
        Rhs = arrExpr(2, Unused);
        break;
      }
      case Ty::Ref:
        Rhs = refExpr(F.T.Cls, 2);
        break;
      }
      line(V->Name + "." + F.Name + " = " + Rhs + ";");
      return;
    }
    return stmt(D);
  }
  case 5:
    line("print(" + (R.chance(70) ? intExpr(2) : boolExpr(2)) + ");");
    break;
  case 6: {
    if (D <= 0)
      return stmt(0 /* will pick a flat statement eventually */);
    open("if (" + boolExpr(O.MaxExprDepth) + ")");
    block(D - 1);
    close();
    if (R.chance(40)) {
      open("else");
      block(D - 1);
      close();
    }
    break;
  }
  case 7:
    if (D <= 0)
      return stmt(0);
    emitBoundedLoop(D);
    break;
  case 8: {
    // Hostile unbounded loop — terminates only by trap or fuel.
    if (D <= 0 || !hostile())
      return stmt(D);
    open("while (" + boolExpr(2) + ")");
    ++LoopDepth;
    block(D - 1);
    --LoopDepth;
    close();
    break;
  }
  case 9: {
    // Call statement.
    if (NumHelpers > 0 && CurHelper != 0) {
      int Limit = CurHelper > 0 ? CurHelper : NumHelpers;
      line("h" + std::to_string(R.below(static_cast<uint64_t>(Limit))) +
           "(" + intExpr(2) + ");");
      return;
    }
    return stmt(D);
  }
  case 10: {
    if (LoopDepth > 0 && R.chance(40)) {
      line(R.chance(50) ? "break;" : "continue;");
      return;
    }
    return stmt(D);
  }
  case 11: {
    // Guarded input read.
    if (const VarG *V = pickVarKind(Ty::Int)) {
      if (hostile()) {
        line(V->Name + " = readInt();");
      } else {
        open("if (hasInput())");
        line(V->Name + " = readInt();");
        close();
      }
      return;
    }
    return stmt(D);
  }
  default:
    // Weight the common case: declarations and prints keep the
    // program observable.
    if (R.chance(50))
      line("print(" + intExpr(2) + ");");
    else
      return stmt(D > 0 ? D - 1 : 0);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Top-level emission
//===----------------------------------------------------------------------===//

void Gen::emitClass(int C) {
  const ClassG &Cls = Classes[static_cast<size_t>(C)];
  std::string Header = "class " + Cls.Name;
  if (Cls.Super >= 0)
    Header += " extends " + Classes[static_cast<size_t>(Cls.Super)].Name;
  open(Header);
  for (const FieldG &F : Cls.Fields)
    line(typeName(F.T) + " " + F.Name + ";");
  if (Cls.CtorArity == 1) {
    open(Cls.Name + "(int a)");
    for (const FieldG &F : Cls.Fields)
      if (F.T.K == Ty::Int) {
        line(F.Name + " = a;");
        break;
      }
    close();
  }
  // Every class answers val(); subclasses override it, so x.val()
  // through a superclass variable exercises the vtable.
  open("int val()");
  std::vector<FieldG> Fields = allFields(C);
  std::string E = intLit();
  for (const FieldG &F : Fields) {
    if (F.T.K == Ty::Int && R.chance(60))
      E = "(" + E + " + " + F.Name + ")";
    else if (F.T.K == Ty::Bool && R.chance(20))
      E = "(" + E + " + 0)"; // Keep it int-typed; booleans don't add.
  }
  line("return " + E + ";");
  close();
  close();
}

void Gen::emitHelper(int H) {
  CurHelper = H;
  Vars.clear();
  ScopeMarks.clear();
  LoopDepth = 0;
  open("static int h" + std::to_string(H) + "(int a)");
  pushScope();
  Vars.push_back({"a", {Ty::Int, -1}, 0});
  int N = R.range(0, 2);
  for (int I = 0; I < N; ++I)
    stmt(R.range(0, 1));
  if (R.chance(50)) {
    // Guarded self-recursion with a strictly decreasing argument:
    // terminates for small a, hits the frame limit for huge a — both
    // deterministic outcomes.
    int Step = R.range(1, 3);
    open("if (a > 1)");
    line("return (h" + std::to_string(H) + "(a - " +
         std::to_string(Step) + ") + " + intLit() + ");");
    close();
  }
  line("return " + intExpr(2) + ";");
  popScope();
  close();
  CurHelper = -1;
}

void Gen::emitMain() {
  CurHelper = -1;
  Vars.clear();
  ScopeMarks.clear();
  LoopDepth = 0;
  open("static void main()");
  pushScope();
  int N = R.range(2, O.MaxStmtsPerBlock + 2);
  bool DidPattern = false;
  for (int I = 0; I < N; ++I) {
    if (!DidPattern && R.chance(35)) {
      emitBuilderTraversal(O.MaxStmtDepth);
      DidPattern = true;
    } else {
      stmt(O.MaxStmtDepth);
    }
  }
  // End observably: print the live int variables so value bugs change
  // the output channel, not just the profile.
  for (const VarG &V : Vars)
    if (V.T.K == Ty::Int && R.chance(60))
      line("print(" + V.Name + ");");
  popScope();
  close();
}

std::string Gen::run() {
  buildClasses();
  NumHelpers = R.range(0, O.MaxHelpers);
  for (int C = 0; C < static_cast<int>(Classes.size()); ++C)
    emitClass(C);
  open("class Main");
  for (int H = 0; H < NumHelpers; ++H)
    emitHelper(H);
  emitMain();
  close();
  return Out;
}

} // namespace

std::string fuzz::generateProgram(Rng &R, const GenOptions &Opts) {
  Gen G(R, Opts);
  return G.run();
}

std::string fuzz::garbleSource(const std::string &Source, Rng &R) {
  std::string S = Source;
  static const char Alphabet[] =
      "{}();=+-*/%<>!&|[],.0123456789abzclassintwhile \n\"@#$^~?:";
  int Ops = R.range(1, 4);
  for (int I = 0; I < Ops && !S.empty(); ++I) {
    size_t Pos = R.below(S.size());
    switch (R.below(5)) {
    case 0: // Replace one character.
      S[Pos] = Alphabet[R.below(sizeof(Alphabet) - 1)];
      break;
    case 1: { // Delete a span.
      size_t Len = 1 + R.below(16);
      S.erase(Pos, Len);
      break;
    }
    case 2: { // Insert random characters.
      std::string Ins;
      size_t Len = 1 + R.below(8);
      for (size_t J = 0; J < Len; ++J)
        Ins += Alphabet[R.below(sizeof(Alphabet) - 1)];
      S.insert(Pos, Ins);
      break;
    }
    case 3: { // Duplicate a chunk elsewhere.
      size_t Len = 1 + R.below(24);
      std::string Chunk = S.substr(Pos, Len);
      S.insert(R.below(S.size()), Chunk);
      break;
    }
    case 4: // Truncate the tail.
      S.resize(Pos);
      break;
    }
  }
  return S;
}

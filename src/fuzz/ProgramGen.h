//===- fuzz/ProgramGen.h - Seeded random MiniJ program generator -*- C++-*-===//
///
/// \file
/// Deterministic random-program generation for the differential fuzzing
/// harness (tools/algoprof_fuzz). Every artifact derives from a 64-bit
/// seed through the local Rng only — no global state, no libFuzzer — so
/// any failing case reproduces from its seed alone, on any machine.
///
/// generateProgram emits type-correct MiniJ by construction (classes
/// with link fields, virtual dispatch, static helpers, loops, arrays,
/// I/O), so the interesting rejection paths are exercised separately:
/// garbleSource corrupts source text for frontend robustness, and
/// fuzz::mutateModule (Mutator.h) corrupts compiled bytecode for
/// verifier/VM robustness.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FUZZ_PROGRAMGEN_H
#define ALGOPROF_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace algoprof {
namespace fuzz {

/// Deterministic 64-bit generator (splitmix64). Cheap to seed, good
/// enough statistically, and — unlike std::mt19937 distributions —
/// identical on every platform, which the fixed-seed CI batch relies
/// on.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); 0 when N == 0.
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

  /// Uniform in [Lo, Hi] (inclusive).
  int range(int Lo, int Hi) {
    return Lo + static_cast<int>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability Percent/100.
  bool chance(int Percent) {
    return static_cast<int>(below(100)) < Percent;
  }

  /// An int64 biased toward small values but including the overflow
  /// boundaries (INT64_MIN/MAX, -1, 0) that arithmetic bugs live at.
  int64_t anyInt();

private:
  uint64_t State;
};

/// Stable per-case seed: mixes the batch seed with the case index so
/// case K of batch S is the same program forever.
uint64_t deriveSeed(uint64_t BaseSeed, uint64_t CaseIndex);

/// Generator knobs. Defaults produce small programs (a few classes,
/// a few helpers, bounded loops) that execute in well under 100k
/// instructions — sized for a ~10k-case CI batch.
struct GenOptions {
  int MaxClasses = 3;        ///< Data classes besides Main.
  int MaxFieldsPerClass = 3; ///< Extra fields beyond the link field.
  int MaxHelpers = 3;        ///< Static helper methods on Main.
  int MaxStmtsPerBlock = 5;
  int MaxStmtDepth = 3;
  int MaxExprDepth = 3;
  /// Percent of sites that use unguarded "hostile" forms: raw
  /// divisors, unchecked reads, wild indices, unbounded loops or
  /// recursion. Hostile programs exercise every trap path; the run
  /// outcome (trap / fuel exhaustion) must still be deterministic.
  int HostilePercent = 20;
};

/// Generates one self-contained MiniJ program with entry Main.main.
std::string generateProgram(Rng &R, const GenOptions &Opts = GenOptions());

/// Randomly corrupts source text (character flips, insertions,
/// deletions, chunk duplication, truncation) for frontend robustness
/// fuzzing: the result must compile or produce diagnostics — never
/// crash the frontend.
std::string garbleSource(const std::string &Source, Rng &R);

} // namespace fuzz
} // namespace algoprof

#endif // ALGOPROF_FUZZ_PROGRAMGEN_H

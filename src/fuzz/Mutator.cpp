//===- fuzz/Mutator.cpp ---------------------------------------------------===//

#include "fuzz/Mutator.h"

#include <cstddef>
#include <limits>

using namespace algoprof;
using namespace algoprof::fuzz;
using namespace algoprof::bc;

namespace {

/// Every opcode, for uniform random replacement.
const Opcode AllOpcodes[] = {
    Opcode::Nop,       Opcode::IConst,       Opcode::NullConst,
    Opcode::Load,      Opcode::Store,        Opcode::Dup,
    Opcode::Pop,       Opcode::Add,          Opcode::Sub,
    Opcode::Mul,       Opcode::Div,          Opcode::Rem,
    Opcode::Neg,       Opcode::Not,          Opcode::CmpLt,
    Opcode::CmpLe,     Opcode::CmpGt,        Opcode::CmpGe,
    Opcode::CmpEq,     Opcode::CmpNe,        Opcode::RefEq,
    Opcode::RefNe,     Opcode::Goto,         Opcode::IfTrue,
    Opcode::IfFalse,   Opcode::GetField,     Opcode::PutField,
    Opcode::ALoad,     Opcode::AStore,       Opcode::ArrayLen,
    Opcode::NewObject, Opcode::NewArray,     Opcode::NewMulti,
    Opcode::InvokeStatic, Opcode::InvokeVirtual, Opcode::InvokeCtor,
    Opcode::Ret,       Opcode::RetVal,       Opcode::Print,
    Opcode::ReadInt,   Opcode::HasInput,     Opcode::Trap,
    Opcode::FusedCmpBr, Opcode::FusedLoadLoadCmpBr,
    Opcode::FusedLoadConstArith, Opcode::FusedIncLocal,
};
constexpr size_t NumMutationOpcodes = sizeof(AllOpcodes) / sizeof(AllOpcodes[0]);
static_assert(NumMutationOpcodes == static_cast<size_t>(bc::NumOpcodes),
              "mutator opcode table out of sync with the ISA");

/// An "interesting" int32 for operand slots: valid-looking small ids,
/// off-by-one boundaries, and wildly invalid values.
int32_t interestingOperand(Rng &R, int32_t Hint) {
  switch (R.below(8)) {
  case 0:
    return 0;
  case 1:
    return -1;
  case 2: // Wraparound: Hint may already be INT32_MAX from a prior mutation.
    return static_cast<int32_t>(static_cast<uint32_t>(Hint) + 1u);
  case 3:
    return Hint > 0 ? Hint - 1 : 1;
  case 4:
    return std::numeric_limits<int32_t>::max();
  case 5:
    return std::numeric_limits<int32_t>::min();
  case 6:
    return static_cast<int32_t>(R.below(64));
  default:
    return Hint;
  }
}

int64_t interestingImm(Rng &R) {
  switch (R.below(6)) {
  case 0:
    return 0;
  case 1:
    return -1;
  case 2:
    return std::numeric_limits<int64_t>::max();
  case 3:
    return std::numeric_limits<int64_t>::min();
  case 4:
    return static_cast<int64_t>(R.below(1ULL << 48));
  default:
    return R.range(-64, 64);
  }
}

void mutateMethod(MethodInfo &Method, Rng &R) {
  std::vector<Instr> &Code = Method.Code;
  if (Code.empty())
    return;
  size_t Pc = R.below(Code.size());
  Instr &I = Code[Pc];
  switch (R.below(8)) {
  case 0: // Replace the opcode, keep the operands.
    I.Op = AllOpcodes[R.below(NumMutationOpcodes)];
    break;
  case 1: // Tweak operand A.
    I.A = interestingOperand(R, I.A);
    break;
  case 2: // Tweak operand B.
    I.B = interestingOperand(R, I.B);
    break;
  case 3: // Tweak the immediate.
    I.Imm = interestingImm(R);
    break;
  case 4: { // Swap two instructions.
    size_t Other = R.below(Code.size());
    std::swap(Code[Pc], Code[Other]);
    break;
  }
  case 5: // Delete (shifts pcs; branch targets go stale).
    Code.erase(Code.begin() + static_cast<std::ptrdiff_t>(Pc));
    break;
  case 6: { // Duplicate in place.
    Instr Copy = Code[Pc];
    Code.insert(Code.begin() + static_cast<std::ptrdiff_t>(Pc), Copy);
    break;
  }
  case 7: { // Insert a fresh random instruction.
    Instr Fresh;
    Fresh.Op = AllOpcodes[R.below(NumMutationOpcodes)];
    Fresh.A = interestingOperand(R, static_cast<int32_t>(Code.size()));
    Fresh.B = interestingOperand(R, 0);
    Fresh.Imm = interestingImm(R);
    Code.insert(Code.begin() + static_cast<std::ptrdiff_t>(Pc), Fresh);
    break;
  }
  }
}

} // namespace

Module fuzz::mutateModule(const Module &M, Rng &R, int NumMutations) {
  Module Out = M;
  if (Out.Methods.empty())
    return Out;
  for (int I = 0; I < NumMutations; ++I) {
    MethodInfo &Method = Out.Methods[R.below(Out.Methods.size())];
    mutateMethod(Method, R);
  }
  return Out;
}

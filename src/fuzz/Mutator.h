//===- fuzz/Mutator.h - Seeded bytecode mutation ----------------*- C++-*-===//
///
/// \file
/// Structural mutation of compiled modules for verifier/VM robustness
/// fuzzing. A mutant lands in one of two buckets, and both are oracle
/// checks for the fuzz driver:
///
///   - the verifier rejects it: fine — malformed code must die with a
///     diagnostic, never reach the interpreter;
///   - the verifier accepts it: the module must then *execute* to a
///     defined outcome (completion, trap, or fuel exhaustion) with no
///     assertion failure, sanitizer report, or crash, even though the
///     depth-only verifier admits type-confused code.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_FUZZ_MUTATOR_H
#define ALGOPROF_FUZZ_MUTATOR_H

#include "bytecode/Module.h"
#include "fuzz/ProgramGen.h"

namespace algoprof {
namespace fuzz {

/// Returns a copy of \p M with \p NumMutations random code mutations
/// applied (opcode swaps, operand/immediate tweaks, instruction
/// insertion/deletion/duplication/reorder, branch retargeting).
/// Only method code streams are mutated; class layouts, vtables, and
/// method headers stay intact, mirroring a corrupted-but-structurally-
/// plausible module.
bc::Module mutateModule(const bc::Module &M, Rng &R, int NumMutations);

} // namespace fuzz
} // namespace algoprof

#endif // ALGOPROF_FUZZ_MUTATOR_H

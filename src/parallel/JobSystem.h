//===- parallel/JobSystem.h - Work-stealing thread pool ---------*- C++-*-===//
///
/// \file
/// The sweep layer's execution substrate: a work-stealing job pool in
/// the per-worker-deque style. Submitted jobs are distributed round-
/// robin over the workers' private deques; a worker drains its own
/// deque front-to-back and, when empty, steals the oldest pending job
/// from another worker. Stealing is what makes sweeps over runs of
/// unequal cost scale: a worker stuck on one expensive run sheds its
/// queued work to idle peers instead of serializing it behind the
/// barrier the old static-shard engine had.
///
/// Design choices, deliberate:
///  - FIFO everywhere (owner pops the front, thieves steal the front).
///    Classic owner-LIFO ordering pays off for recursive fork-join
///    graphs; ours are flat run lists whose consumers (the sweep
///    engine's in-order streaming merge, SweepEngine.h) want runs
///    roughly in run-index order so the merge cursor advances early
///    and shard memory is released early.
///  - A mutex per deque, not a lock-free deque. Jobs here are whole
///    profiled VM runs (micro- to milliseconds), so queue operations
///    are nowhere near the contention regime that justifies Chase-Lev;
///    a mutex keeps the pool trivially ThreadSanitizer-clean, which
///    the `tsan_parallel` ctest configuration enforces.
///  - Jobs may submit further jobs (the corpus runner's compile jobs
///    enqueue their program's run jobs); wait() covers transitively
///    submitted work.
///
/// Determinism: with one worker, jobs execute exactly in submission
/// order. With many workers the *execution* schedule is nondeterministic
/// by design — the sweep engine's merge discipline, not the pool, is
/// what keeps profiling output byte-identical (and the seeded
/// SchedulePerturbation below exists so tests can randomize the
/// schedule on purpose and assert exactly that).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_PARALLEL_JOBSYSTEM_H
#define ALGOPROF_PARALLEL_JOBSYSTEM_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace algoprof {
namespace parallel {

/// Test-only schedule randomization: a seeded source of per-job start
/// delays and shuffled steal-victim orders. Seed 0 disables it. The
/// perturbed pool still executes every job exactly once; only *when*
/// and *on which worker* changes — which is precisely the axis the
/// schedule-perturbation property tests exercise.
struct SchedulePerturbation {
  uint64_t Seed = 0;         ///< 0 = no perturbation.
  uint32_t MaxDelayMicros = 0; ///< Uniform per-job start delay in [0, Max].
  bool enabled() const { return Seed != 0; }
};

/// What the pool did, per worker: jobs executed, jobs stolen from
/// another worker's deque, and the deepest the worker's own deque got.
/// Stable after wait(); the sweep bench records these per configuration
/// (bench_parallel_sweep/2 JSON) and the obs registry aggregates the
/// totals (jobs_executed / jobs_stolen).
struct PoolStats {
  std::vector<uint64_t> Executed;
  std::vector<uint64_t> Stolen;
  std::vector<uint64_t> PeakQueueDepth;
  uint64_t Submitted = 0;

  uint64_t totalExecuted() const {
    uint64_t N = 0;
    for (uint64_t E : Executed)
      N += E;
    return N;
  }
  uint64_t totalStolen() const {
    uint64_t N = 0;
    for (uint64_t S : Stolen)
      N += S;
    return N;
  }
};

class JobSystem {
public:
  using Job = std::function<void()>;

  /// Spawns \p Workers worker threads (clamped to >= 1). When tracing
  /// is enabled each worker gets its own named trace track ("worker N"),
  /// so pool activity that is not attributed to a specific sweep run
  /// (e.g. merge drains) shows up per worker in the Chrome trace.
  explicit JobSystem(unsigned Workers,
                     SchedulePerturbation Perturb = SchedulePerturbation());

  /// Waits for all submitted jobs, then stops and joins the workers.
  /// Workers flush their thread-local obs state after every job
  /// (obs::flushThisThread), so a snapshot taken any time after a job
  /// completes — including from another thread while the pool is still
  /// alive — sees that job's counters.
  ~JobSystem();

  JobSystem(const JobSystem &) = delete;
  JobSystem &operator=(const JobSystem &) = delete;

  unsigned workers() const { return static_cast<unsigned>(Deques.size()); }

  /// Enqueues \p J on the next deque (round-robin). Thread-safe;
  /// callable from inside jobs.
  void submit(Job J);

  /// Blocks until every submitted job — including jobs submitted by
  /// jobs — has finished executing. Reentrant-safe from the owning
  /// thread only (workers must not call wait()).
  void wait();

  /// Per-worker counters; meaningful once wait() returned.
  PoolStats stats() const;

private:
  struct WorkerDeque {
    std::mutex M;
    std::deque<Job> Q;
    uint64_t Peak = 0; ///< Under M.
  };

  void workerMain(unsigned Me);
  bool takeOwn(unsigned Me, Job &Out);
  bool steal(unsigned Me, Job &Out, uint64_t &Rng);

  std::vector<std::unique_ptr<WorkerDeque>> Deques;
  std::vector<std::thread> Threads;
  SchedulePerturbation Perturb;

  // Submission cursor, outstanding-job count, and lifecycle flags share
  // one mutex with two condition variables: WorkCv wakes idle workers,
  // IdleCv wakes wait().
  std::mutex M;
  std::condition_variable WorkCv;
  std::condition_variable IdleCv;
  uint64_t NextDeque = 0;
  uint64_t Outstanding = 0;
  uint64_t Submitted = 0;
  bool Stop = false;

  // Per-worker stats, written only by the owning worker while it runs,
  // read by stats() after wait() (synchronized by the Outstanding==0
  // handshake on M).
  std::vector<uint64_t> Executed;
  std::vector<uint64_t> Stolen;
};

} // namespace parallel
} // namespace algoprof

#endif // ALGOPROF_PARALLEL_JOBSYSTEM_H

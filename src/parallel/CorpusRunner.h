//===- parallel/CorpusRunner.h - Corpus-scale batch profiling ---*- C++-*-===//
///
/// \file
/// Profiles a whole corpus of MiniJ programs × one seed grid as a
/// single job graph on one work-stealing pool. Each program is one
/// compile job (resolved through the shared prof::CompileCache, so
/// duplicate sources compile once); a compile job that succeeds
/// enqueues that program's run jobs — one per seed — onto the same
/// pool via SweepEngine::enqueueSweep. The pool makes no distinction:
/// an idle worker steals a run of program A while another worker is
/// still compiling program Z, which is what keeps corpus batches busy
/// across programs of wildly unequal cost.
///
/// Determinism: each program gets its own SweepEngine (its own
/// accumulator and streaming in-order merge), so every program's
/// merged profile is byte-identical to a serial session over the same
/// seeds — per program, independent of the corpus schedule. Results
/// come back in corpus input order.
///
/// Resilience: the SessionOptions' failure policy, budgets, and fault
/// plan apply to every program. Run-scoped faults address *per-program*
/// global run indices (each engine numbers its runs from 0), so
/// "heap-oom@run3" fires on run 3 of every corpus program.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_PARALLEL_CORPUSRUNNER_H
#define ALGOPROF_PARALLEL_CORPUSRUNNER_H

#include "core/CompileCache.h"
#include "parallel/SweepEngine.h"

#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace parallel {

/// One named program in a corpus batch.
struct CorpusEntry {
  std::string Name;   ///< Display name ("insertion_sort", "dir/foo.mj").
  std::string Source; ///< MiniJ source text.
};

/// Everything one corpus program produced.
struct CorpusProgramResult {
  std::string Name;
  /// Rendered compile diagnostics; empty when compilation succeeded.
  std::string Error;
  /// Shared compiled form. Declared before Engine so the engine (which
  /// points into the program) is destroyed first.
  std::shared_ptr<const prof::CompiledProgram> Program;
  /// The program's private engine: merged tree/inputs/profiles live
  /// here (Engine->buildProfiles()).
  std::unique_ptr<SweepEngine> Engine;
  SweepResult Sweep;

  /// Compiled and produced a usable (possibly degraded) profile.
  bool ok() const { return Error.empty() && Sweep.usable(); }
};

struct CorpusResult {
  std::vector<CorpusProgramResult> Programs; ///< In corpus input order.
  PoolStats Pool;                            ///< The shared pool's counters.
  prof::CompileCache::Stats Cache;
};

/// Drives corpus batches. One instance holds one compile cache, so
/// successive run() calls share compilations.
class CorpusRunner {
public:
  explicit CorpusRunner(prof::SessionOptions Opts) : Opts(std::move(Opts)) {}

  /// Profiles every entry's static no-arg "Cls.Method" over the
  /// options' run plan (one run per SessionOptions::Seeds entry, or
  /// Runs × Input when Seeds is empty). SessionOptions::Jobs sizes the
  /// shared pool (0 = hardware concurrency).
  CorpusResult run(const std::vector<CorpusEntry> &Entries,
                   const std::string &Cls, const std::string &Method);

  /// Arms a seeded schedule perturbation for subsequent run() calls
  /// (test hook, same contract as SweepEngine::setPerturbationForTest).
  void setPerturbationForTest(SchedulePerturbation P) { Perturb = P; }

  const prof::SessionOptions &options() const { return Opts; }

private:
  prof::SessionOptions Opts;
  prof::CompileCache Cache;
  SchedulePerturbation Perturb;
};

} // namespace parallel
} // namespace algoprof

#endif // ALGOPROF_PARALLEL_CORPUSRUNNER_H

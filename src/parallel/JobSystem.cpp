//===- parallel/JobSystem.cpp ---------------------------------------------===//

#include "parallel/JobSystem.h"

#include "obs/Obs.h"

#include <chrono>
#include <string>

using namespace algoprof;
using namespace algoprof::parallel;

namespace {

/// Trace lane for worker W. Below the sweep engine's shard lanes (1000+)
/// and above per-thread registration ordinals, so the three families
/// never collide in an exported trace.
constexpr int32_t WorkerTrackBase = 500;

/// splitmix64: the perturbation RNG. Small, seedable, and stateless
/// across workers — worker W's stream depends only on (Seed, W), so a
/// perturbed schedule is reproducible from its seed.
uint64_t nextRand(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

} // namespace

JobSystem::JobSystem(unsigned Workers, SchedulePerturbation Perturb)
    : Perturb(Perturb) {
  if (Workers < 1)
    Workers = 1;
  Deques.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Deques.push_back(std::make_unique<WorkerDeque>());
  Executed.assign(Workers, 0);
  Stolen.assign(Workers, 0);
  if (obs::tracingEnabled())
    for (unsigned W = 0; W < Workers; ++W)
      obs::setTrackName(WorkerTrackBase + static_cast<int32_t>(W),
                        "worker " + std::to_string(W));
  Threads.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([this, W] { workerMain(W); });
}

JobSystem::~JobSystem() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void JobSystem::submit(Job J) {
  size_t Idx;
  {
    std::lock_guard<std::mutex> Lock(M);
    Submitted += 1;
    Outstanding += 1;
    Idx = static_cast<size_t>(NextDeque++ % Deques.size());
  }
  {
    WorkerDeque &D = *Deques[Idx];
    std::lock_guard<std::mutex> Lock(D.M);
    D.Q.push_back(std::move(J));
    if (D.Q.size() > D.Peak)
      D.Peak = D.Q.size();
  }
  WorkCv.notify_one();
}

bool JobSystem::takeOwn(unsigned Me, Job &Out) {
  WorkerDeque &D = *Deques[Me];
  std::lock_guard<std::mutex> Lock(D.M);
  if (D.Q.empty())
    return false;
  Out = std::move(D.Q.front());
  D.Q.pop_front();
  return true;
}

bool JobSystem::steal(unsigned Me, Job &Out, uint64_t &Rng) {
  unsigned N = workers();
  if (N <= 1)
    return false;
  // Victim order: round-robin from the right neighbor, or — when a
  // perturbation is armed — a random rotation so tests can force every
  // steal topology.
  unsigned Start = Perturb.enabled()
                       ? static_cast<unsigned>(nextRand(Rng) % N)
                       : (Me + 1) % N;
  for (unsigned K = 0; K < N; ++K) {
    unsigned V = (Start + K) % N;
    if (V == Me)
      continue;
    WorkerDeque &D = *Deques[V];
    std::lock_guard<std::mutex> Lock(D.M);
    if (D.Q.empty())
      continue;
    // The front is the oldest pending job — the one the sweep engine's
    // in-order merge cursor is most likely waiting on.
    Out = std::move(D.Q.front());
    D.Q.pop_front();
    Stolen[Me] += 1;
    obs::addCount(obs::Counter::JobsStolen);
    return true;
  }
  return false;
}

void JobSystem::workerMain(unsigned Me) {
  // All spans this worker records outside a sweep run's ScopedTrack
  // land on its own "worker N" lane.
  obs::ScopedTrack Lane(WorkerTrackBase + static_cast<int32_t>(Me));
  uint64_t Rng = Perturb.Seed ^ (0xd1b54a32d192ed03ull * (Me + 1));
  for (;;) {
    Job J;
    if (takeOwn(Me, J) || steal(Me, J, Rng)) {
      if (Perturb.enabled() && Perturb.MaxDelayMicros > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(
            nextRand(Rng) % (uint64_t(Perturb.MaxDelayMicros) + 1)));
      J();
      J = nullptr; // Release captures before signaling completion.
      Executed[Me] += 1;
      obs::addCount(obs::Counter::JobsExecuted);
      // Publish this job's obs state before the completion handshake:
      // workers never retire while the pool lives, so without the flush
      // a snapshot taken from outside (a daemon /metrics scrape, or a
      // caller after wait()) would miss everything the workers did.
      obs::flushThisThread();
      std::lock_guard<std::mutex> Lock(M);
      Outstanding -= 1;
      if (Outstanding == 0)
        IdleCv.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(M);
    if (Stop)
      return;
    // Sleep until either shutdown or any submission since we started
    // scanning. Outstanding also counts jobs currently *executing* on
    // other workers, which may submit follow-up jobs — so wake on a
    // timeout too rather than risking a missed rescan; the timeout is
    // coarse because submit()'s notify is the common wake path.
    WorkCv.wait_for(Lock, std::chrono::milliseconds(50));
  }
}

void JobSystem::wait() {
  std::unique_lock<std::mutex> Lock(M);
  IdleCv.wait(Lock, [this] { return Outstanding == 0; });
}

PoolStats JobSystem::stats() const {
  PoolStats S;
  S.Executed = Executed;
  S.Stolen = Stolen;
  S.PeakQueueDepth.reserve(Deques.size());
  for (const std::unique_ptr<WorkerDeque> &D : Deques) {
    std::lock_guard<std::mutex> Lock(D->M);
    S.PeakQueueDepth.push_back(D->Peak);
  }
  {
    std::lock_guard<std::mutex> Lock(
        const_cast<std::mutex &>(M));
    S.Submitted = Submitted;
  }
  return S;
}

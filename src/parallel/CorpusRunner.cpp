//===- parallel/CorpusRunner.cpp ------------------------------------------===//

#include "parallel/CorpusRunner.h"

#include <algorithm>
#include <thread>

using namespace algoprof;
using namespace algoprof::parallel;
using namespace algoprof::prof;

CorpusResult CorpusRunner::run(const std::vector<CorpusEntry> &Entries,
                               const std::string &Cls,
                               const std::string &Method) {
  CorpusResult Out;
  Out.Programs.resize(Entries.size());
  if (Entries.empty()) {
    Out.Cache = Cache.stats();
    return Out;
  }

  // The shared per-run input plan, identical for every program (the
  // corpus axis is programs × this seed grid).
  std::vector<vm::IoChannels> RunInputs;
  if (Opts.Seeds.empty()) {
    RunInputs.resize(static_cast<size_t>(std::max(1, Opts.Runs)));
    for (vm::IoChannels &Io : RunInputs)
      Io.Input = Opts.Input;
  } else {
    RunInputs.resize(Opts.Seeds.size());
    for (size_t I = 0; I < Opts.Seeds.size(); ++I)
      RunInputs[I].Input.push_back(Opts.Seeds[I]);
  }

  unsigned Workers =
      Opts.Jobs == 0 ? std::max(1u, std::thread::hardware_concurrency())
                     : static_cast<unsigned>(std::max(1, Opts.Jobs));

  {
    JobSystem Pool(Workers, Perturb);
    // One compile job per program. Each slot of Out.Programs is written
    // by exactly one job (the vector is pre-sized, so no reallocation
    // races), and successful compiles enqueue their run jobs onto the
    // same pool; Pool.wait() covers those transitively.
    for (size_t I = 0; I < Entries.size(); ++I) {
      CorpusProgramResult &R = Out.Programs[I];
      R.Name = Entries[I].Name;
      const std::string &Source = Entries[I].Source;
      Pool.submit([this, &Pool, &R, &Source, &RunInputs, &Cls, &Method] {
        CompileCache::Result CR = Cache.get(Source);
        if (!CR.ok()) {
          R.Error = CR.Error;
          return;
        }
        R.Program = CR.Program;
        R.Engine = std::make_unique<SweepEngine>(*R.Program, Opts);
        R.Engine->enqueueSweep(Pool, Cls, Method, RunInputs, &R.Sweep);
      });
    }
    Pool.wait();
    for (CorpusProgramResult &R : Out.Programs)
      if (R.Engine)
        R.Engine->finishEnqueued();
    Out.Pool = Pool.stats();
    // Pool destruction folds worker thread-local obs state into the
    // retired pool before the caller snapshots.
  }
  Out.Cache = Cache.stats();
  return Out;
}

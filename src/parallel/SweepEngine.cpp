//===- parallel/SweepEngine.cpp -------------------------------------------===//

#include "parallel/SweepEngine.h"

#include "obs/Obs.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace algoprof;
using namespace algoprof::parallel;
using namespace algoprof::prof;

SweepEngine::SweepEngine(const CompiledProgram &CP, SessionOptions Opts)
    : CP(CP), Opts(Opts),
      Plan(makeInstrumentationPlan(CP, Opts.AllMethodsPlan)),
      Acc(std::make_unique<AlgoProfiler>(CP.Prep, Opts.Profile)) {}

SweepEngine::~SweepEngine() = default;

const RepetitionTree &SweepEngine::tree() const { return Acc->tree(); }
const InputTable &SweepEngine::inputs() const { return Acc->inputs(); }

std::vector<AlgorithmProfile>
SweepEngine::buildProfiles(GroupingStrategy Strategy) const {
  return buildProfilesFrom(Acc->tree(), Acc->inputs(), CP, Strategy);
}

namespace {
/// Everything one run leaves behind for the reducer.
struct Shard {
  std::unique_ptr<AlgoProfiler> Prof; ///< Null when startup was aborted.
  vm::RunResult Result;
  int64_t NumObjects = 0;
  int Attempts = 1;
};
} // namespace

SweepResult SweepEngine::sweep(const std::string &Cls,
                               const std::string &Method) {
  std::vector<vm::IoChannels> RunInputs;
  if (Opts.Seeds.empty()) {
    RunInputs.resize(static_cast<size_t>(std::max(1, Opts.Runs)));
    for (vm::IoChannels &Io : RunInputs)
      Io.Input = Opts.Input;
  } else {
    RunInputs.resize(Opts.Seeds.size());
    for (size_t I = 0; I < Opts.Seeds.size(); ++I)
      RunInputs[I].Input.push_back(Opts.Seeds[I]);
  }
  return sweepWithInputs(Cls, Method, RunInputs);
}

SweepResult
SweepEngine::sweepWithInputs(const std::string &Cls,
                             const std::string &Method,
                             const std::vector<vm::IoChannels> &RunInputs) {
  int Threads = Opts.Jobs;
  size_t NumRuns = RunInputs.size();
  SweepResult Out;
  Out.Policy = Opts.Policy;
  if (NumRuns == 0)
    return Out;
  Out.Runs.resize(NumRuns);

  int32_t Entry = CP.entryMethod(Cls, Method);
  if (Entry < 0) {
    for (vm::RunResult &R : Out.Runs) {
      R.Status = vm::RunStatus::Trapped;
      R.TrapMessage = "no static no-arg method " + Cls + "." + Method;
    }
    return Out;
  }

  unsigned Workers =
      Threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                   : static_cast<unsigned>(std::max(1, Threads));
  Workers = std::min<unsigned>(Workers, static_cast<unsigned>(NumRuns));

  // Obs: every run gets its own trace track, numbered by cumulative
  // run index so repeated sweeps extend the same lanes. ShardTrackBase
  // keeps shard lanes clear of per-thread registration ordinals.
  constexpr int32_t ShardTrackBase = 1000;
  if (obs::tracingEnabled())
    for (size_t I = 0; I < NumRuns; ++I) {
      int64_t RunIndex = TotalRuns + static_cast<int64_t>(I);
      obs::setTrackName(ShardTrackBase + static_cast<int32_t>(RunIndex),
                        "shard " + std::to_string(RunIndex));
    }

  // Map phase: workers claim run indices from a shared counter. Every
  // run is fully private — interpreter, heap, profiler, I/O channels —
  // so scheduling cannot influence any shard's contents.
  std::vector<Shard> Shards(NumRuns);
  std::atomic<size_t> Next{0};
  int64_t FirstRunIndex = TotalRuns;
  auto Worker = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumRuns)
        break;
      int64_t GlobalRun = FirstRunIndex + static_cast<int64_t>(I);
      obs::ScopedTrack Track(ShardTrackBase + static_cast<int32_t>(GlobalRun));
      obs::ScopedSpan Span(obs::Phase::ShardRun);
      Shard &S = Shards[I];
      // Retry policy: bounded re-execution on a fresh interpreter with
      // the same inputs. Any other policy takes exactly one attempt.
      const int MaxAttempts =
          Opts.Policy == resilience::FailurePolicy::Retry
              ? std::max(1, Opts.MaxAttempts)
              : 1;
      for (int Attempt = 0;; ++Attempt) {
        S.Attempts = Attempt + 1;
        if (Opts.Faults.fires(resilience::FaultSite::RunStart, GlobalRun,
                              Attempt)) {
          // Startup abort: the run dies before the interpreter touches
          // anything; no profiler state exists to merge.
          obs::addCount(obs::Counter::FaultsInjected);
          S.Prof.reset();
          S.Result = vm::RunResult();
          S.Result.Status = vm::RunStatus::Trapped;
          S.Result.Injected = true;
          S.Result.TrapMessage = "injected run-start failure for run " +
                                 std::to_string(GlobalRun);
          S.NumObjects = 0;
        } else {
          vm::RunOptions RO = Opts.Run;
          if (Opts.Faults.fires(resilience::FaultSite::HeapOom, GlobalRun,
                                Attempt))
            RO.InjectHeapOomAtAlloc = 1;
          vm::Interpreter Interp(CP.Prep);
          S.Prof = std::make_unique<AlgoProfiler>(CP.Prep, Opts.Profile);
          vm::IoChannels Io = RunInputs[I];
          S.Result = Interp.run(Entry, S.Prof.get(), Plan, Io, RO);
          S.NumObjects = Interp.heap().numObjects();
          // The interpreter (and its heap) dies here; the profiler's
          // id-keyed state stays valid because nothing dereferences
          // heap objects after a run ends.
        }
        if (S.Result.ok() || Attempt + 1 >= MaxAttempts)
          break;
        obs::addCount(obs::Counter::RunsRetried);
      }
    }
  };
  if (Workers <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned T = 0; T < Workers; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  // Reduce phase: strictly in run-index order. Input ids remap through
  // the serial-replay merge, heap ids shift by the object count of all
  // previously merged runs — exactly the ids a serial session's shared
  // heap would have handed out.
  // Quarantine decisions also happen here, not in workers: a
  // quarantined run is excluded from the merge *and* from the heap-id
  // offset, so the accumulated profile is exactly what a serial session
  // over the surviving runs would build. Under the Fail policy nothing
  // is quarantined (legacy behavior: failed runs' partial state still
  // merges and the caller decides).
  obs::ScopedSpan MergeSpan(obs::Phase::ShardMerge);
  for (size_t I = 0; I < NumRuns; ++I) {
    Shard &S = Shards[I];
    Out.Runs[I] = S.Result;
    int64_t GlobalRun = FirstRunIndex + static_cast<int64_t>(I);
    bool Failed = !S.Result.ok();
    bool Quarantine =
        Failed && Opts.Policy != resilience::FailurePolicy::Fail;
    if (Failed) {
      resilience::FailureInfo FI;
      FI.Run = GlobalRun;
      FI.Status = S.Result.Status;
      FI.Attempts = S.Attempts;
      FI.Budget = S.Result.Budget;
      FI.Message = S.Result.TrapMessage;
      FI.Quarantined = Quarantine;
      FI.Injected = S.Result.Injected;
      Out.Failures.push_back(std::move(FI));
    }
    if (Quarantine) {
      obs::addCount(obs::Counter::RunsQuarantined);
    } else if (S.Prof) {
      std::vector<int32_t> Remap =
          Acc->inputs().merge(S.Prof->inputs(), ObjIdOffset);
      Acc->tree().merge(S.Prof->tree(), Remap);
      ObjIdOffset += S.NumObjects;
      ++Out.MergedRuns;
      obs::addCount(obs::Counter::ShardsMerged);
    }
    S.Prof.reset();
  }
  TotalRuns += static_cast<int64_t>(NumRuns);
  return Out;
}

//===- parallel/SweepEngine.cpp -------------------------------------------===//

#include "parallel/SweepEngine.h"

#include "obs/Obs.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace algoprof;
using namespace algoprof::parallel;
using namespace algoprof::prof;

namespace {
/// Obs: every run gets its own trace track, numbered by cumulative run
/// index so repeated sweeps extend the same lanes. ShardTrackBase keeps
/// shard lanes clear of per-thread ordinals and worker lanes.
constexpr int32_t ShardTrackBase = 1000;
} // namespace

/// One in-flight enqueueSweep batch: the per-run shards, the streaming
/// merge cursor, and the synchronization that lets *any* worker advance
/// the merge as soon as the next run in index order is done.
struct SweepEngine::Batch {
  /// Everything one run leaves behind for the reducer.
  struct Shard {
    std::unique_ptr<AlgoProfiler> Prof; ///< Null when startup was aborted.
    vm::RunResult Result;
    int64_t NumObjects = 0;
    int Attempts = 1;
  };

  std::vector<Shard> Shards;
  std::vector<vm::IoChannels> Inputs;
  SweepResult *Out = nullptr;
  int64_t FirstRunIndex = 0;
  int32_t Entry = -1;

  /// Guards Ready, NextMerge, and DoneRuns — the "which shards are
  /// done / how far has the merge advanced" bookkeeping. Held only for
  /// flag flips.
  std::mutex ReadyMu;
  std::vector<char> Ready;
  size_t NextMerge = 0;
  /// Runs fully executed (all attempts). DoneCv fires when the count
  /// reaches the batch size — what waitEnqueued() sleeps on.
  size_t DoneRuns = 0;
  std::condition_variable DoneCv;

  /// Serializes the merge itself (the engine's Acc / ObjIdOffset / Out
  /// writes). Workers try_lock it: whoever wins drains the ready
  /// prefix; losers just return — their shard will be picked up by the
  /// winner or by the final blocking drain in finishEnqueued().
  std::mutex DrainMu;
};

SweepEngine::SweepEngine(const CompiledProgram &CP, SessionOptions Opts)
    : CP(CP), Opts(Opts),
      Plan(makeInstrumentationPlan(CP, Opts.AllMethodsPlan)),
      Acc(std::make_unique<AlgoProfiler>(CP.Prep, Opts.Profile)) {}

SweepEngine::~SweepEngine() = default;

const RepetitionTree &SweepEngine::tree() const { return Acc->tree(); }
const InputTable &SweepEngine::inputs() const { return Acc->inputs(); }

std::vector<AlgorithmProfile>
SweepEngine::buildProfiles(GroupingStrategy Strategy) const {
  return buildProfilesFrom(Acc->tree(), Acc->inputs(), CP, Strategy);
}

SweepResult SweepEngine::sweep(const std::string &Cls,
                               const std::string &Method) {
  std::vector<vm::IoChannels> RunInputs;
  if (Opts.Seeds.empty()) {
    RunInputs.resize(static_cast<size_t>(std::max(1, Opts.Runs)));
    for (vm::IoChannels &Io : RunInputs)
      Io.Input = Opts.Input;
  } else {
    RunInputs.resize(Opts.Seeds.size());
    for (size_t I = 0; I < Opts.Seeds.size(); ++I)
      RunInputs[I].Input.push_back(Opts.Seeds[I]);
  }
  return sweepWithInputs(Cls, Method, RunInputs);
}

SweepResult
SweepEngine::sweepWithInputs(const std::string &Cls,
                             const std::string &Method,
                             const std::vector<vm::IoChannels> &RunInputs) {
  SweepResult Out;
  Out.Policy = Opts.Policy;
  if (RunInputs.empty())
    return Out;

  int Threads = Opts.Jobs;
  unsigned Workers =
      Threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                   : static_cast<unsigned>(std::max(1, Threads));
  Workers =
      std::min<unsigned>(Workers, static_cast<unsigned>(RunInputs.size()));

  {
    JobSystem Pool(Workers, Perturb);
    enqueueSweep(Pool, Cls, Method, RunInputs, &Out);
    Pool.wait();
    finishEnqueued();
    Out.Pool = Pool.stats();
    // Workers flushed their obs state after each job, so callers may
    // snapshot as soon as this returns.
  }
  return Out;
}

void SweepEngine::enqueueSweep(JobSystem &Pool, const std::string &Cls,
                               const std::string &Method,
                               const std::vector<vm::IoChannels> &RunInputs,
                               SweepResult *Out) {
  assert(!Active && "one enqueueSweep batch in flight per engine");
  Out->Policy = Opts.Policy;
  if (RunInputs.empty())
    return;
  Out->Runs.resize(RunInputs.size());

  int32_t Entry = CP.entryMethod(Cls, Method);
  if (Entry < 0) {
    for (vm::RunResult &R : Out->Runs) {
      R.Status = vm::RunStatus::Trapped;
      R.TrapMessage = "no static no-arg method " + Cls + "." + Method;
    }
    return;
  }
  startBatch(Pool, Entry, RunInputs, Out);
}

void SweepEngine::startBatch(JobSystem &Pool, int32_t Entry,
                             const std::vector<vm::IoChannels> &RunInputs,
                             SweepResult *Out) {
  size_t NumRuns = RunInputs.size();
  auto B = std::make_shared<Batch>();
  B->Shards.resize(NumRuns);
  B->Inputs = RunInputs;
  B->Out = Out;
  B->FirstRunIndex = TotalRuns;
  B->Entry = Entry;
  B->Ready.assign(NumRuns, 0);
  TotalRuns += static_cast<int64_t>(NumRuns);

  if (obs::tracingEnabled())
    for (size_t I = 0; I < NumRuns; ++I) {
      int64_t RunIndex = B->FirstRunIndex + static_cast<int64_t>(I);
      obs::setTrackName(ShardTrackBase + static_cast<int32_t>(RunIndex),
                        "shard " + std::to_string(RunIndex));
    }

  Active = B;
  for (size_t I = 0; I < NumRuns; ++I)
    Pool.submit([this, B, I] {
      runOne(*B, I);
      // Whoever finishes a run tries to advance the merge. try_lock
      // only: a worker never stalls behind another's merge — at worst
      // the shard waits for the next finisher or the final drain.
      drainReady(*B, /*Blocking=*/false);
    });
}

/// Executes run \p I on the calling worker: a fresh interpreter and
/// profiler per attempt, fault injection and the bounded retry policy
/// exactly as the serial session applies them. Fully private — no
/// engine state is touched, so scheduling cannot influence any shard's
/// contents.
void SweepEngine::runOne(Batch &B, size_t I) {
  int64_t GlobalRun = B.FirstRunIndex + static_cast<int64_t>(I);
  obs::ScopedTrack Track(ShardTrackBase + static_cast<int32_t>(GlobalRun));
  obs::ScopedSpan Span(obs::Phase::ShardRun);
  Batch::Shard &S = B.Shards[I];
  // Retry policy: bounded re-execution on a fresh interpreter with
  // the same inputs. Any other policy takes exactly one attempt.
  const int MaxAttempts = Opts.Policy == resilience::FailurePolicy::Retry
                              ? std::max(1, Opts.MaxAttempts)
                              : 1;
  for (int Attempt = 0;; ++Attempt) {
    S.Attempts = Attempt + 1;
    if (Opts.Faults.fires(resilience::FaultSite::RunStart, GlobalRun,
                          Attempt)) {
      // Startup abort: the run dies before the interpreter touches
      // anything; no profiler state exists to merge.
      obs::addCount(obs::Counter::FaultsInjected);
      S.Prof.reset();
      S.Result = vm::RunResult();
      S.Result.Status = vm::RunStatus::Trapped;
      S.Result.Injected = true;
      S.Result.TrapMessage =
          "injected run-start failure for run " + std::to_string(GlobalRun);
      S.NumObjects = 0;
    } else {
      vm::RunOptions RO = Opts.Run;
      if (Opts.Faults.fires(resilience::FaultSite::HeapOom, GlobalRun,
                            Attempt))
        RO.InjectHeapOomAtAlloc = 1;
      vm::Interpreter Interp(CP.Prep);
      S.Prof = std::make_unique<AlgoProfiler>(CP.Prep, Opts.Profile);
      vm::IoChannels Io = B.Inputs[I];
      S.Result = Interp.run(B.Entry, S.Prof.get(), Plan, Io, RO);
      S.NumObjects = Interp.heap().numObjects();
      // The interpreter (and its heap) dies here; the profiler's
      // id-keyed state stays valid because nothing dereferences
      // heap objects after a run ends.
    }
    if (S.Result.ok() || Attempt + 1 >= MaxAttempts)
      break;
    obs::addCount(obs::Counter::RunsRetried);
  }
  bool BatchDone;
  {
    std::lock_guard<std::mutex> Lock(B.ReadyMu);
    B.Ready[I] = 1;
    B.DoneRuns += 1;
    BatchDone = B.DoneRuns == B.Shards.size();
  }
  if (BatchDone)
    B.DoneCv.notify_all();
}

/// Folds shard \p I into the accumulator. Caller holds DrainMu; the
/// shard itself is safely published by the ReadyMu handshake in
/// runOne/drainReady.
///
/// Strictly in run-index order: input ids remap through the
/// serial-replay merge, heap ids shift by the object count of all
/// previously merged runs — exactly the ids a serial session's shared
/// heap would have handed out. Quarantine decisions also happen here,
/// not in workers: a quarantined run is excluded from the merge *and*
/// from the heap-id offset, so the accumulated profile is exactly what
/// a serial session over the surviving runs would build. Under the
/// Fail policy nothing is quarantined (legacy behavior: failed runs'
/// partial state still merges and the caller decides).
void SweepEngine::mergeShard(Batch &B, size_t I) {
  obs::ScopedSpan MergeSpan(obs::Phase::ShardMerge);
  Batch::Shard &S = B.Shards[I];
  B.Out->Runs[I] = S.Result;
  int64_t GlobalRun = B.FirstRunIndex + static_cast<int64_t>(I);
  bool Failed = !S.Result.ok();
  bool Quarantine = Failed && Opts.Policy != resilience::FailurePolicy::Fail;
  if (Failed) {
    resilience::FailureInfo FI;
    FI.Run = GlobalRun;
    FI.Status = S.Result.Status;
    FI.Attempts = S.Attempts;
    FI.Budget = S.Result.Budget;
    FI.Message = S.Result.TrapMessage;
    FI.Quarantined = Quarantine;
    FI.Injected = S.Result.Injected;
    B.Out->Failures.push_back(std::move(FI));
  }
  if (Quarantine) {
    obs::addCount(obs::Counter::RunsQuarantined);
  } else if (S.Prof) {
    std::vector<int32_t> Remap =
        Acc->inputs().merge(S.Prof->inputs(), ObjIdOffset);
    Acc->tree().merge(S.Prof->tree(), Remap);
    ObjIdOffset += S.NumObjects;
    ++B.Out->MergedRuns;
    obs::addCount(obs::Counter::ShardsMerged);
  }
  if (Observer) {
    // Streamed under DrainMu, so deltas leave in run-index order —
    // exactly the order the serial replay merges in.
    RunDelta D;
    D.Run = GlobalRun;
    D.Index = I;
    D.BatchRuns = B.Shards.size();
    D.Status = S.Result.Status;
    D.Budget = S.Result.Budget;
    D.Attempts = S.Attempts;
    D.Quarantined = Quarantine;
    D.MergedRuns = B.Out->MergedRuns;
    D.TreeRepetitions = Acc->tree().numRepetitions();
    Observer(D);
  }
  S.Prof.reset();
  B.Inputs[I] = vm::IoChannels(); // Release the run's input early too.
}

void SweepEngine::drainReady(Batch &B, bool Blocking) {
  std::unique_lock<std::mutex> Drain(B.DrainMu, std::defer_lock);
  if (Blocking)
    Drain.lock();
  else if (!Drain.try_lock())
    return;
  for (;;) {
    size_t I;
    {
      std::lock_guard<std::mutex> Lock(B.ReadyMu);
      if (B.NextMerge >= B.Shards.size() || !B.Ready[B.NextMerge])
        return;
      I = B.NextMerge++;
    }
    mergeShard(B, I);
  }
}

void SweepEngine::waitEnqueued() {
  if (!Active)
    return;
  Batch &B = *Active;
  std::unique_lock<std::mutex> Lock(B.ReadyMu);
  B.DoneCv.wait(Lock, [&] { return B.DoneRuns == B.Shards.size(); });
  // The last worker may still be inside its opportunistic drain; that
  // is fine — finishEnqueued's blocking drain serializes behind it.
}

void SweepEngine::finishEnqueued() {
  if (!Active)
    return;
  // All jobs are done (the caller waited on the pool); one blocking
  // drain picks up whatever the opportunistic try_lock drains missed.
  drainReady(*Active, /*Blocking=*/true);
  assert(Active->NextMerge == Active->Shards.size() &&
         "all shards merged after the final drain");
  Active.reset();
}

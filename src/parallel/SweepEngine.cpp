//===- parallel/SweepEngine.cpp -------------------------------------------===//

#include "parallel/SweepEngine.h"

#include "obs/Obs.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace algoprof;
using namespace algoprof::parallel;
using namespace algoprof::prof;

SweepEngine::SweepEngine(const CompiledProgram &CP, SessionOptions Opts)
    : CP(CP), Opts(Opts),
      Plan(makeInstrumentationPlan(CP, Opts.AllMethodsPlan)),
      Acc(std::make_unique<AlgoProfiler>(CP.Prep, Opts.Profile)) {}

SweepEngine::~SweepEngine() = default;

const RepetitionTree &SweepEngine::tree() const { return Acc->tree(); }
const InputTable &SweepEngine::inputs() const { return Acc->inputs(); }

std::vector<AlgorithmProfile>
SweepEngine::buildProfiles(GroupingStrategy Strategy) const {
  return buildProfilesFrom(Acc->tree(), Acc->inputs(), CP, Strategy);
}

namespace {
/// Everything one run leaves behind for the reducer.
struct Shard {
  std::unique_ptr<AlgoProfiler> Prof;
  vm::RunResult Result;
  int64_t NumObjects = 0;
};
} // namespace

SweepResult SweepEngine::sweep(const std::string &Cls,
                               const std::string &Method) {
  std::vector<vm::IoChannels> RunInputs;
  if (Opts.Seeds.empty()) {
    RunInputs.resize(static_cast<size_t>(std::max(1, Opts.Runs)));
    for (vm::IoChannels &Io : RunInputs)
      Io.Input = Opts.Input;
  } else {
    RunInputs.resize(Opts.Seeds.size());
    for (size_t I = 0; I < Opts.Seeds.size(); ++I)
      RunInputs[I].Input.push_back(Opts.Seeds[I]);
  }
  return sweepWithInputs(Cls, Method, RunInputs);
}

SweepResult
SweepEngine::sweepWithInputs(const std::string &Cls,
                             const std::string &Method,
                             const std::vector<vm::IoChannels> &RunInputs) {
  int Threads = Opts.Jobs;
  size_t NumRuns = RunInputs.size();
  SweepResult Out;
  if (NumRuns == 0)
    return Out;
  Out.Runs.resize(NumRuns);

  int32_t Entry = CP.entryMethod(Cls, Method);
  if (Entry < 0) {
    for (vm::RunResult &R : Out.Runs) {
      R.Status = vm::RunStatus::Trapped;
      R.TrapMessage = "no static no-arg method " + Cls + "." + Method;
    }
    return Out;
  }

  unsigned Workers =
      Threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                   : static_cast<unsigned>(std::max(1, Threads));
  Workers = std::min<unsigned>(Workers, static_cast<unsigned>(NumRuns));

  // Obs: every run gets its own trace track, numbered by cumulative
  // run index so repeated sweeps extend the same lanes. ShardTrackBase
  // keeps shard lanes clear of per-thread registration ordinals.
  constexpr int32_t ShardTrackBase = 1000;
  if (obs::tracingEnabled())
    for (size_t I = 0; I < NumRuns; ++I) {
      int64_t RunIndex = TotalRuns + static_cast<int64_t>(I);
      obs::setTrackName(ShardTrackBase + static_cast<int32_t>(RunIndex),
                        "shard " + std::to_string(RunIndex));
    }

  // Map phase: workers claim run indices from a shared counter. Every
  // run is fully private — interpreter, heap, profiler, I/O channels —
  // so scheduling cannot influence any shard's contents.
  std::vector<Shard> Shards(NumRuns);
  std::atomic<size_t> Next{0};
  int64_t FirstRunIndex = TotalRuns;
  auto Worker = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumRuns)
        break;
      obs::ScopedTrack Track(
          ShardTrackBase +
          static_cast<int32_t>(FirstRunIndex + static_cast<int64_t>(I)));
      obs::ScopedSpan Span(obs::Phase::ShardRun);
      Shard &S = Shards[I];
      vm::Interpreter Interp(CP.Prep);
      S.Prof = std::make_unique<AlgoProfiler>(CP.Prep, Opts.Profile);
      vm::IoChannels Io = RunInputs[I];
      S.Result = Interp.run(Entry, S.Prof.get(), Plan, Io, Opts.Run);
      S.NumObjects = Interp.heap().numObjects();
      // The interpreter (and its heap) dies here; the profiler's
      // id-keyed state stays valid because nothing dereferences heap
      // objects after a run ends.
    }
  };
  if (Workers <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned T = 0; T < Workers; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  // Reduce phase: strictly in run-index order. Input ids remap through
  // the serial-replay merge, heap ids shift by the object count of all
  // previously merged runs — exactly the ids a serial session's shared
  // heap would have handed out.
  obs::ScopedSpan MergeSpan(obs::Phase::ShardMerge);
  for (size_t I = 0; I < NumRuns; ++I) {
    Out.Runs[I] = Shards[I].Result;
    std::vector<int32_t> Remap =
        Acc->inputs().merge(Shards[I].Prof->inputs(), ObjIdOffset);
    Acc->tree().merge(Shards[I].Prof->tree(), Remap);
    ObjIdOffset += Shards[I].NumObjects;
    Shards[I].Prof.reset();
    obs::addCount(obs::Counter::ShardsMerged);
  }
  TotalRuns += static_cast<int64_t>(NumRuns);
  return Out;
}

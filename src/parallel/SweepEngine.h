//===- parallel/SweepEngine.h - Work-stealing profiling sweeps --*- C++-*-===//
///
/// \file
/// Runs the paper's "set of program runs" (Sec. 3.5) as a dynamically
/// scheduled sweep: each run is one job on a work-stealing pool
/// (parallel/JobSystem.h), executing on a worker thread with a private
/// vm::Interpreter + AlgoProfiler over the shared immutable
/// CompiledProgram. A streaming reducer folds the per-run shards —
/// RepetitionTrees, CostMaps, InputTables — strictly in run-index
/// order, never in completion order: finished shards are marked ready,
/// and whichever worker finishes a run tries to advance the merge
/// cursor over the longest prefix of consecutive ready shards. Tree
/// nodes align by static RepKey (method/loop ids), input ids remap
/// through InputTable::merge's replay of the serial identification
/// decisions, and heap-object ids translate by cumulative per-run
/// object counts. The observable result — buildProfilesFrom output:
/// labels, classifications, series points, fitted formulas — is
/// identical to a serial ProfileSession over the same seed order,
/// regardless of worker count, stealing, or any schedule perturbation.
/// See docs/parallel_sweeps.md for the determinism argument and the
/// AllElements/sampling caveats.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_PARALLEL_SWEEPENGINE_H
#define ALGOPROF_PARALLEL_SWEEPENGINE_H

#include "core/Session.h"
#include "parallel/JobSystem.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace parallel {

/// What the streaming merge just folded in: one completed run, reported
/// the moment its shard merged (or was quarantined). Deltas arrive
/// strictly in run-index order — the same order the final profile's
/// serial replay uses — which is what lets a daemon stream per-run
/// progress to a client while guaranteeing the finished profile is
/// byte-identical to the serial session's.
struct RunDelta {
  int64_t Run = -1;      ///< Global run index (across sweep() calls).
  size_t Index = 0;      ///< Run's index within its batch.
  size_t BatchRuns = 0;  ///< Total runs in the batch.
  vm::RunStatus Status = vm::RunStatus::Ok;
  std::string Budget;    ///< Tripped budget, empty for clean runs.
  int Attempts = 1;      ///< Executions, retries included.
  bool Quarantined = false;
  int64_t MergedRuns = 0; ///< Batch runs merged so far, this one included.
  /// Total repetitions recorded in the accumulated tree after this
  /// merge (unchanged for quarantined runs). The incremental view a
  /// streaming consumer needs: this delta's contribution is the
  /// difference from the previous RunDelta's value.
  int64_t TreeRepetitions = 0;
};

/// Per-run results of one sweep, in seed (run-index) order, plus the
/// degraded-run bookkeeping added by the resilience layer.
struct SweepResult {
  std::vector<vm::RunResult> Runs;
  /// One record per run whose *final* attempt failed, in run-index
  /// order (a run that failed and then succeeded on retry does not
  /// appear; obs runs_retried counts it). FailureInfo::Run is the
  /// global run index across successive sweep() calls.
  std::vector<resilience::FailureInfo> Failures;
  /// The policy the sweep ran under (copied from SessionOptions).
  resilience::FailurePolicy Policy = resilience::FailurePolicy::Fail;
  /// Runs merged into the accumulated profile by this sweep.
  int64_t MergedRuns = 0;
  /// Work-stealing pool counters for this sweep. Populated only when
  /// the engine owned the pool (sweep / sweepWithInputs); empty when
  /// the runs were enqueued on an external pool (the corpus runner
  /// reports its shared pool's stats instead).
  PoolStats Pool;

  /// Every run succeeded (final attempts): the sweep is not degraded.
  bool allOk() const {
    for (const vm::RunResult &R : Runs)
      if (!R.ok())
        return false;
    return !Runs.empty();
  }

  /// The merged profile is well-defined, possibly degraded: at least
  /// one run merged and every failed run was quarantined out (so the
  /// profile equals a serial session over the survivors). Under the
  /// Fail policy nothing is quarantined, so usable() == allOk().
  bool usable() const {
    if (Runs.empty() || MergedRuns == 0)
      return false;
    for (const resilience::FailureInfo &F : Failures)
      if (!F.Quarantined)
        return false;
    return true;
  }
};

/// A dynamically scheduled, deterministic multi-run profiling engine.
/// It is configured entirely by the same prof::SessionOptions a serial
/// session takes — Jobs picks the worker count, Seeds/Runs/Input the
/// run plan. Every run gets a fresh interpreter, profiler, and private
/// IoChannels (no I/O state is shared between threads). Successive
/// sweep() calls keep accumulating into the same merged tree/inputs,
/// mirroring repeated ProfileSession::run calls.
///
/// Two driving modes:
///  - sweep()/sweepWithInputs(): the engine spins up its own pool,
///    runs the plan, and returns the finished result.
///  - enqueueSweep()/finishEnqueued(): the caller owns a shared pool
///    (corpus batches: many engines, one pool) and the engine only
///    contributes jobs. Call finishEnqueued() after the pool's wait()
///    to drain the merge cursor; results are undefined before that.
class SweepEngine {
public:
  explicit SweepEngine(const prof::CompiledProgram &CP,
                       prof::SessionOptions Opts = prof::SessionOptions());
  ~SweepEngine();

  /// Runs static no-arg "Cls.Method" per the options' run plan: once
  /// per SessionOptions::Seeds entry (input channel pre-loaded with the
  /// seed), or SessionOptions::Runs times with SessionOptions::Input
  /// when Seeds is empty. Workers execute runs in arbitrary order; the
  /// reduction happens incrementally, in run-index order.
  SweepResult sweep(const std::string &Cls, const std::string &Method);

  /// Generalized sweep: one run per \p RunInputs entry, each run handed
  /// a private copy of its channels (arbitrary multi-value inputs, where
  /// seeds are single-value). Worker count still comes from
  /// SessionOptions::Jobs.
  SweepResult sweepWithInputs(const std::string &Cls,
                              const std::string &Method,
                              const std::vector<vm::IoChannels> &RunInputs);

  /// Submits this engine's run jobs onto \p Pool without blocking.
  /// \p Out must outlive finishEnqueued() and is filled incrementally;
  /// read it only after finishEnqueued() returns. One batch may be in
  /// flight per engine at a time.
  void enqueueSweep(JobSystem &Pool, const std::string &Cls,
                    const std::string &Method,
                    const std::vector<vm::IoChannels> &RunInputs,
                    SweepResult *Out);

  /// Blocks until every run of the in-flight enqueueSweep batch has
  /// executed (not necessarily merged — finishEnqueued does that).
  /// Unlike JobSystem::wait() this waits for *this engine's* jobs only,
  /// which is what lets many sessions share one pool: each session
  /// waits for its own batch while the pool keeps executing everyone
  /// else's. No-op when no batch is in flight.
  void waitEnqueued();

  /// Completes an enqueueSweep batch: merges any shards the workers
  /// left behind (strictly in run-index order) and releases the batch.
  /// Call only after the pool's wait() — or this engine's
  /// waitEnqueued() — returned.
  void finishEnqueued();

  /// Observes every merged (or quarantined) run. Invoked from inside
  /// the merge — on whichever worker advanced the cursor, or on the
  /// finishEnqueued() caller — serialized by the merge lock and
  /// strictly in run-index order. Because the merge lock is held, the
  /// observer may READ the accumulated state — tree() / inputs() /
  /// buildProfiles() — and sees exactly the prefix merged so far (the
  /// daemon's v2 deltas refresh fitted curves this way). It must not
  /// re-enter mutating engine calls. It may block briefly (the daemon's
  /// per-session send buffer), which only delays this engine's merge,
  /// not run execution.
  using RunObserver = std::function<void(const RunDelta &)>;

  /// Installs \p Obs for subsequent sweeps (null to clear). Set before
  /// enqueueSweep; not thread-safe against an in-flight batch.
  void setRunObserver(RunObserver Obs) { Observer = std::move(Obs); }

  /// Arms a seeded schedule perturbation for subsequent own-pool
  /// sweeps (test hook; not part of SessionOptions, so option-parity
  /// with the serial session is unaffected). For external pools, pass
  /// the perturbation to the pool's constructor instead.
  void setPerturbationForTest(SchedulePerturbation P) { Perturb = P; }

  /// The options this engine was built from (serial-vs-sweep parity is
  /// asserted against ProfileSession::options() in ParallelSweepTest).
  const prof::SessionOptions &options() const { return Opts; }

  /// The merged repetition tree / input table accumulated so far.
  const prof::RepetitionTree &tree() const;
  const prof::InputTable &inputs() const;

  /// Full profile pipeline over the merged state (same code path as
  /// ProfileSession::buildProfiles).
  std::vector<prof::AlgorithmProfile>
  buildProfiles(prof::GroupingStrategy Strategy =
                    prof::GroupingStrategy::CommonInput) const;

private:
  struct Batch;

  void startBatch(JobSystem &Pool, int32_t Entry,
                  const std::vector<vm::IoChannels> &RunInputs,
                  SweepResult *Out);
  void runOne(Batch &B, size_t I);
  void mergeShard(Batch &B, size_t I);
  void drainReady(Batch &B, bool Blocking);

  const prof::CompiledProgram &CP;
  prof::SessionOptions Opts;
  vm::InstrumentationPlan Plan;
  /// The merge target. Never attached to an interpreter: its tree and
  /// inputs are populated exclusively by the reducer.
  std::unique_ptr<prof::AlgoProfiler> Acc;
  /// Heap-id translation base: total objects allocated by all runs
  /// merged so far (what a serial session's ever-growing heap would
  /// report as numObjects()).
  int64_t ObjIdOffset = 0;
  /// Runs enqueued so far; numbers the obs trace track of each shard so
  /// successive sweeps keep extending the same per-shard lanes.
  int64_t TotalRuns = 0;
  /// Test-only schedule randomization for own-pool sweeps.
  SchedulePerturbation Perturb;
  /// Streaming per-run callback; see setRunObserver.
  RunObserver Observer;
  /// The in-flight enqueueSweep batch, if any.
  std::shared_ptr<Batch> Active;
};

} // namespace parallel
} // namespace algoprof

#endif // ALGOPROF_PARALLEL_SWEEPENGINE_H

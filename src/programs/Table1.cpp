//===- programs/Table1.cpp - The paper's 18 data-structure programs -------===//
///
/// \file
/// MiniJ sources for every row of Table 1. Each program builds a
/// structure of n elements for n in a small sweep and traverses it
/// (iteratively and/or recursively), mirroring the paper's description:
/// "Each example focuses on one kind of data structure but implements
/// several algorithms (building, traversing iteratively, traversing
/// recursively)". Element values/payloads are distinct per structure so
/// the SomeElements identity criterion behaves as in the paper.
///
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

using namespace algoprof;
using namespace algoprof::programs;

namespace {

std::string num(int64_t V) { return std::to_string(V); }

/// Wraps a runOnce body + helpers into the standard sweep harness.
std::string harness(const std::string &Helpers, int MaxN, int StepN) {
  return R"MJ(
class Main {
  static void main() {
    for (int n = )MJ" +
         num(StepN) + R"MJ(; n <= )MJ" + num(MaxN) +
         R"MJ(; n = n + )MJ" + num(StepN) + R"MJ() {
      runOnce(n);
    }
  }
)MJ" + Helpers +
         "}\n";
}

int64_t sizeN(int64_t N) { return N; }
int64_t sizeTwoD(int64_t N) { return N + N * N; }
int64_t sizeDoubling(int64_t N) {
  int64_t Cap = 1;
  while (Cap < N)
    Cap *= 2;
  return N + (Cap > N ? 1 : 0); // Unused slots contribute one 0 value.
}

Table1Program make(std::string Name, std::string StructKind,
                   std::string Impl, std::string Linkage,
                   std::string PayloadT, std::string Remark,
                   std::string Source,
                   std::vector<std::pair<std::string, std::string>> Group,
                   char PaperG, bool ArrayInput,
                   int64_t (*ExpectedSize)(int64_t)) {
  Table1Program P;
  P.Name = std::move(Name);
  P.StructKind = std::move(StructKind);
  P.Impl = std::move(Impl);
  P.Linkage = std::move(Linkage);
  P.PayloadT = std::move(PayloadT);
  P.Remark = std::move(Remark);
  P.Source = std::move(Source);
  P.GroupMethods = std::move(Group);
  P.PaperG = PaperG;
  P.ArrayInput = ArrayInput;
  P.ExpectedSize = ExpectedSize;
  return P;
}

/// Array-backed list shared skeleton; Grow is the realloc size
/// expression, Elem the element type, MakeElem the appended value.
std::string arrayListSource(const std::string &Prelude,
                            const std::string &Elem,
                            const std::string &Grow,
                            const std::string &MakeElem, int MaxN,
                            int StepN) {
  std::string Src = Prelude + R"MJ(
class AList {
  )MJ" + Elem + R"MJ([] array;
  int size;
  AList() {
    array = new )MJ" +
                    Elem + R"MJ([1];
    size = 0;
  }
  void append()MJ" + Elem +
                    R"MJ( value) {
    growIfFull();
    array[size++] = value;
  }
  void growIfFull() {
    if (size == array.length) {
      )MJ" + Elem +
                    R"MJ([] newArray = new )MJ" + Elem + R"MJ([)MJ" + Grow +
                    R"MJ(];
      for (int i = 0; i < array.length; i++) {
        newArray[i] = array[i];
      }
      array = newArray;
    }
  }
}
)MJ";
  Src += harness(R"MJ(
  static void runOnce(int n) {
    AList list = new AList();
    fill(list, n);
  }
  static void fill(AList list, int n) {
    for (int i = 0; i < n; i++) {
      list.append()MJ" + MakeElem +
                     R"MJ();
    }
  }
)MJ",
                 MaxN, StepN);
  return Src;
}

} // namespace

const std::vector<Table1Program> &algoprof::programs::table1Programs() {
  static const std::vector<Table1Program> Programs = [] {
    std::vector<Table1Program> Ps;
    const int MaxN = 20, StepN = 4;

    // Row 1: array / array / NA / B / 1d — '*'.
    Ps.push_back(make(
        "array-1d", "array", "array", "NA", "B", "1d",
        harness(R"MJ(
  static void runOnce(int n) {
    int[] a = build(n);
    int s = sumIter(a);
    s = s + sumRec(a, 0);
  }
  static int[] build(int n) {
    int[] a = new int[n];
    for (int i = 0; i < n; i++) {
      a[i] = i + 1;
    }
    return a;
  }
  static int sumIter(int[] a) {
    int s = 0;
    for (int i = 0; i < a.length; i++) {
      s = s + a[i];
    }
    return s;
  }
  static int sumRec(int[] a, int i) {
    if (i >= a.length) {
      return 0;
    }
    return a[i] + sumRec(a, i + 1);
  }
)MJ",
                MaxN, StepN),
        {{"Main", "sumIter"}}, '*', true, sizeN));

    // Row 2: array / array / NA / B / 2d — '-'.
    Ps.push_back(make(
        "array-2d", "array", "array", "NA", "B", "2d",
        harness(R"MJ(
  static void runOnce(int n) {
    int[][] m = build2(n);
    int s = sumNest(m);
  }
  static int[][] build2(int n) {
    int[][] m = new int[n][n];
    for (int i = 0; i < m.length; i++) {
      for (int j = 0; j < m[i].length; j++) {
        m[i][j] = i * n + j + 1;
      }
    }
    return m;
  }
  static int sumNest(int[][] m) {
    int s = 0;
    for (int i = 0; i < m.length; i++) {
      for (int j = 0; j < m[i].length; j++) {
        s = s + m[i][j];
      }
    }
    return s;
  }
)MJ",
                MaxN, StepN),
        {{"Main", "sumNest"}}, '-', true, sizeTwoD));

    // Row 3: list / array / NA / B / double — '*'.
    Ps.push_back(make("list-array-double", "list", "array", "NA", "B",
                      "double",
                      arrayListSource("", "int", "array.length * 2",
                                      "i + 1", MaxN, StepN),
                      {{"Main", "fill"}, {"AList", "growIfFull"}}, '*',
                      true, sizeDoubling));

    // Row 4: list / array / NA / B / grow by 1 — '*'.
    Ps.push_back(make("list-array-grow1", "list", "array", "NA", "B",
                      "grow by 1",
                      arrayListSource("", "int", "array.length + 1",
                                      "i + 1", MaxN, StepN),
                      {{"Main", "fill"}, {"AList", "growIfFull"}}, '*',
                      true, sizeN));

    // Row 5: list / array / NA / G / grow by 1 — '*'.
    // Erased generics: the backing T[] is an Object[].
    {
      std::string Prelude = R"MJ(
class Box {
  int v;
  Box(int v) {
    this.v = v;
  }
}
)MJ";
      std::string Src = Prelude + R"MJ(
class AList<T> {
  T[] array;
  int size;
  AList() {
    array = new T[1];
    size = 0;
  }
  void append(T value) {
    growIfFull();
    array[size++] = value;
  }
  void growIfFull() {
    if (size == array.length) {
      T[] newArray = new T[array.length + 1];
      for (int i = 0; i < array.length; i++) {
        newArray[i] = array[i];
      }
      array = newArray;
    }
  }
}
)MJ" + harness(R"MJ(
  static void runOnce(int n) {
    AList<Box> list = new AList<Box>();
    fill(list, n);
  }
  static void fill(AList<Box> list, int n) {
    for (int i = 0; i < n; i++) {
      list.append(new Box(i + 1));
    }
  }
)MJ",
                     MaxN, StepN);
      Ps.push_back(make("list-array-grow1-generic", "list", "array", "NA",
                        "G", "grow by 1", Src,
                        {{"Main", "fill"}, {"AList", "growIfFull"}}, '*',
                        true, sizeN));
    }

    // Row 6: list / array / NA / I / grow by 1 — '*'.
    {
      std::string Prelude = R"MJ(
class Item {
  int tag;
}
class IntItem extends Item {
  int v;
  IntItem(int v) {
    this.v = v;
  }
}
)MJ";
      Ps.push_back(make(
          "list-array-grow1-inherit", "list", "array", "NA", "I",
          "grow by 1",
          arrayListSource(Prelude, "Item", "array.length + 1",
                          "new IntItem(i + 1)", MaxN, StepN),
          {{"Main", "fill"}, {"AList", "growIfFull"}}, '*', true, sizeN));
    }

    // Row 7: list / linked / directed / B — 'x'.
    Ps.push_back(make(
        "list-linked", "list", "linked", "directed", "B", "",
        harness(R"MJ(
  static void runOnce(int n) {
    LNode list = build(n);
    int s = sumPairs(list);
    s = s + countRec(list);
  }
  static LNode build(int n) {
    LNode list = null;
    for (int i = 0; i < n; i++) {
      LNode node = new LNode(i + 1);
      node.next = list;
      list = node;
    }
    return list;
  }
  static int sumPairs(LNode list) {
    int s = 0;
    LNode a = list;
    while (a != null) {
      LNode b = a.next;
      while (b != null) {
        s = s + b.value;
        b = b.next;
      }
      a = a.next;
    }
    return s;
  }
  static int countRec(LNode node) {
    if (node == null) {
      return 0;
    }
    return 1 + countRec(node.next);
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class LNode {
  int value;
  LNode next;
  LNode(int value) {
    this.value = value;
  }
}
)MJ",
        {{"Main", "sumPairs"}}, 'x', false, sizeN));

    // Row 8: list / linked / directed / G — 'x'.
    Ps.push_back(make(
        "list-linked-generic", "list", "linked", "directed", "G", "",
        harness(R"MJ(
  static void runOnce(int n) {
    GNode<Box> list = build(n);
    int c = countIter(list);
    c = c + countRec(list);
  }
  static GNode<Box> build(int n) {
    GNode<Box> list = null;
    for (int i = 0; i < n; i++) {
      list = new GNode<Box>(new Box(i + 1), list);
    }
    return list;
  }
  static int countIter(GNode<Box> list) {
    int c = 0;
    GNode<Box> cur = list;
    while (cur != null) {
      c++;
      cur = cur.next;
    }
    return c;
  }
  static int countRec(GNode<Box> node) {
    if (node == null) {
      return 0;
    }
    return 1 + countRec(node.next);
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class Box {
  int v;
  Box(int v) {
    this.v = v;
  }
}
class GNode<T> {
  T value;
  GNode<T> next;
  GNode(T value, GNode<T> next) {
    this.value = value;
    this.next = next;
  }
}
)MJ",
        {{"Main", "countIter"}}, 'x', false, sizeN));

    // Row 9: list / linked / directed / I — 'x'.
    Ps.push_back(make(
        "list-linked-inherit", "list", "linked", "directed", "I", "",
        harness(R"MJ(
  static void runOnce(int n) {
    PNode list = build(n);
    int c = countIter(list);
    c = c + countRec(list);
  }
  static PNode build(int n) {
    PNode list = null;
    for (int i = 0; i < n; i++) {
      IntPNode node = new IntPNode(i + 1);
      node.next = list;
      list = node;
    }
    return list;
  }
  static int countIter(PNode list) {
    int c = 0;
    PNode cur = list;
    while (cur != null) {
      c++;
      cur = cur.next;
    }
    return c;
  }
  static int countRec(PNode node) {
    if (node == null) {
      return 0;
    }
    return 1 + countRec(node.next);
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class PNode {
  PNode next;
}
class IntPNode extends PNode {
  int value;
  IntPNode(int value) {
    this.value = value;
  }
}
)MJ",
        {{"Main", "countIter"}}, 'x', false, sizeN));

    // Row 10: tree / array / NA / B / binary — '*'.
    Ps.push_back(make(
        "tree-array-binary", "tree", "array", "NA", "B", "binary",
        harness(R"MJ(
  static void runOnce(int n) {
    int[] heap = build(n);
    int s = sumHeap(heap, 0);
  }
  static int[] build(int n) {
    int[] a = new int[n];
    for (int i = 0; i < n; i++) {
      a[i] = i + 1;
    }
    return a;
  }
  static int sumHeap(int[] a, int idx) {
    if (idx >= a.length) {
      return 0;
    }
    return a[idx] + sumHeap(a, 2 * idx + 1) + sumHeap(a, 2 * idx + 2);
  }
)MJ",
                MaxN, StepN),
        {{"Main", "sumHeap"}}, '*', true, sizeN));

    // Row 11: tree / linked / directed / B / binary — 'x'.
    Ps.push_back(make(
        "tree-linked-binary", "tree", "linked", "directed", "B", "binary",
        harness(R"MJ(
  static void runOnce(int n) {
    TNode root = build(1, n);
    int s = sum(root);
  }
  static TNode build(int lo, int hi) {
    if (lo > hi) {
      return null;
    }
    int mid = (lo + hi) / 2;
    TNode node = new TNode(mid);
    node.left = build(lo, mid - 1);
    node.right = build(mid + 1, hi);
    return node;
  }
  static int sum(TNode node) {
    if (node == null) {
      return 0;
    }
    return node.value + sum(node.left) + sum(node.right);
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class TNode {
  TNode left;
  TNode right;
  int value;
  TNode(int value) {
    this.value = value;
  }
}
)MJ",
        {{"Main", "sum"}}, 'x', false, sizeN));

    // Row 12: tree / linked / bidi / B / binary — 'x'.
    Ps.push_back(make(
        "tree-linked-bidi-binary", "tree", "linked", "bidi", "B",
        "binary",
        harness(R"MJ(
  static void runOnce(int n) {
    TPNode root = build(1, n, null);
    int s = sumIter(root);
    s = s + sumRec(root);
  }
  static TPNode build(int lo, int hi, TPNode parent) {
    if (lo > hi) {
      return null;
    }
    int mid = (lo + hi) / 2;
    TPNode node = new TPNode(mid);
    node.parent = parent;
    node.left = build(lo, mid - 1, node);
    node.right = build(mid + 1, hi, node);
    return node;
  }
  static int sumIter(TPNode root) {
    int s = 0;
    TPNode cur = root;
    TPNode from = null;
    while (cur != null) {
      TPNode next;
      if (from == cur.parent) {
        s = s + cur.value;
        if (cur.left != null) {
          next = cur.left;
        } else {
          if (cur.right != null) {
            next = cur.right;
          } else {
            next = cur.parent;
          }
        }
      } else {
        if (from == cur.left && cur.right != null) {
          next = cur.right;
        } else {
          next = cur.parent;
        }
      }
      from = cur;
      cur = next;
    }
    return s;
  }
  static int sumRec(TPNode node) {
    if (node == null) {
      return 0;
    }
    return node.value + sumRec(node.left) + sumRec(node.right);
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class TPNode {
  TPNode left;
  TPNode right;
  TPNode parent;
  int value;
  TPNode(int value) {
    this.value = value;
  }
}
)MJ",
        {{"Main", "sumIter"}}, 'x', false, sizeN));

    // Row 13: tree / linked / directed / B / n-ary — 'x'.
    Ps.push_back(make(
        "tree-linked-nary", "tree", "linked", "directed", "B", "n-ary",
        harness(R"MJ(
  static void runOnce(int n) {
    KNode root = build(n);
    int s = sum(root);
  }
  static KNode build(int count) {
    if (count <= 0) {
      return null;
    }
    KNode node = new KNode(count);
    node.kids = new KNode[3];
    int remaining = count - 1;
    for (int i = 0; i < 3; i++) {
      int share = remaining / (3 - i);
      node.kids[i] = build(share);
      remaining = remaining - share;
    }
    return node;
  }
  static int sum(KNode node) {
    if (node == null) {
      return 0;
    }
    int s = node.value;
    KNode[] ks = node.kids;
    for (int i = 0; i < ks.length; i++) {
      s = s + sum(ks[i]);
    }
    return s;
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class KNode {
  int value;
  KNode[] kids;
  KNode(int value) {
    this.value = value;
  }
}
)MJ",
        {{"Main", "sum"}}, 'x', false, sizeN));

    // Row 14: tree / linked / bidi / B / n-ary — 'x'.
    Ps.push_back(make(
        "tree-linked-bidi-nary", "tree", "linked", "bidi", "B", "n-ary",
        harness(R"MJ(
  static void runOnce(int n) {
    KPNode root = buildP(n, null);
    int s = sum(root);
  }
  static KPNode buildP(int count, KPNode parent) {
    if (count <= 0) {
      return null;
    }
    KPNode node = new KPNode(count);
    node.parent = parent;
    node.kids = new KPNode[3];
    int remaining = count - 1;
    for (int i = 0; i < 3; i++) {
      int share = remaining / (3 - i);
      node.kids[i] = buildP(share, node);
      remaining = remaining - share;
    }
    return node;
  }
  static int sum(KPNode node) {
    if (node == null) {
      return 0;
    }
    int s = node.value;
    KPNode[] ks = node.kids;
    for (int i = 0; i < ks.length; i++) {
      s = s + sum(ks[i]);
    }
    return s;
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class KPNode {
  int value;
  KPNode[] kids;
  KPNode parent;
  KPNode(int value) {
    this.value = value;
  }
}
)MJ",
        {{"Main", "sum"}}, 'x', false, sizeN));

    // Row 15: graph / array / directed / B / 2d — '-'.
    Ps.push_back(make(
        "graph-array-2d", "graph", "array", "directed", "B", "2d",
        harness(R"MJ(
  static void runOnce(int n) {
    int[][] adj = build(n);
    int s = sumEdges(adj);
  }
  static int[][] build(int n) {
    int[][] m = new int[n][n];
    for (int i = 0; i < m.length; i++) {
      for (int j = 0; j < m[i].length; j++) {
        m[i][j] = i * n + j + 1;
      }
    }
    return m;
  }
  static int sumEdges(int[][] m) {
    int s = 0;
    for (int i = 0; i < m.length; i++) {
      for (int j = 0; j < m[i].length; j++) {
        s = s + m[i][j];
      }
    }
    return s;
  }
)MJ",
                MaxN, StepN),
        {{"Main", "sumEdges"}}, '-', true, sizeTwoD));

    // Row 16: graph / linked / directed / B — 'x'.
    Ps.push_back(make(
        "graph-linked", "graph", "linked", "directed", "B", "",
        harness(R"MJ(
  static void runOnce(int n) {
    Vertex[] vs = build(n);
    int s = dfs(vs[0]);
  }
  static Vertex[] build(int n) {
    Vertex[] vs = new Vertex[n];
    for (int i = 0; i < n; i++) {
      vs[i] = new Vertex(i + 1);
    }
    for (int i = 0; i < n; i++) {
      Vertex v = vs[i];
      v.out = new Vertex[3];
      v.out[0] = vs[(i + 1) % n];
      v.out[1] = vs[(i + 2) % n];
      v.out[2] = vs[(i + n / 2) % n];
    }
    return vs;
  }
  static int dfs(Vertex v) {
    if (v.visited) {
      return 0;
    }
    v.visited = true;
    int s = v.id;
    Vertex[] edges = v.out;
    for (int i = 0; i < edges.length; i++) {
      s = s + dfs(edges[i]);
    }
    return s;
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class Vertex {
  int id;
  boolean visited;
  Vertex[] out;
  Vertex(int id) {
    this.id = id;
  }
}
)MJ",
        {{"Main", "dfs"}}, 'x', false, sizeN));

    // Row 17: graph / linked / bidi / B — 'x'.
    Ps.push_back(make(
        "graph-linked-bidi", "graph", "linked", "bidi", "B", "",
        harness(R"MJ(
  static void runOnce(int n) {
    BVertex[] vs = build(n);
    int s = dfs(vs[0]);
  }
  static BVertex[] build(int n) {
    BVertex[] vs = new BVertex[n];
    for (int i = 0; i < n; i++) {
      vs[i] = new BVertex(i + 1);
    }
    for (int i = 0; i < n; i++) {
      vs[i].out = new BVertex[3];
      vs[i].in = new BVertex[3];
    }
    for (int i = 0; i < n; i++) {
      BVertex v = vs[i];
      BVertex ring = vs[(i + 1) % n];
      BVertex hop = vs[(i + 2) % n];
      BVertex skip = vs[(i + n / 2) % n];
      v.out[0] = ring;
      ring.in[0] = v;
      v.out[1] = hop;
      hop.in[1] = v;
      v.out[2] = skip;
      skip.in[2] = v;
    }
    return vs;
  }
  static int dfs(BVertex v) {
    if (v.visited) {
      return 0;
    }
    v.visited = true;
    int s = v.id;
    BVertex[] edges = v.out;
    for (int i = 0; i < edges.length; i++) {
      s = s + dfs(edges[i]);
    }
    return s;
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class BVertex {
  int id;
  boolean visited;
  BVertex[] out;
  BVertex[] in;
  BVertex(int id) {
    this.id = id;
  }
}
)MJ",
        {{"Main", "dfs"}}, 'x', false, sizeN));

    // Row 18: graph / linked / undirected / B — 'x'.
    Ps.push_back(make(
        "graph-linked-undirected", "graph", "linked", "unidirected", "B",
        "",
        harness(R"MJ(
  static void runOnce(int n) {
    UVertex[] vs = build(n);
    int s = dfs(vs[0]);
  }
  static UVertex[] build(int n) {
    UVertex[] vs = new UVertex[n];
    for (int i = 0; i < n; i++) {
      vs[i] = new UVertex(i + 1);
    }
    for (int i = 0; i < n; i++) {
      vs[i].adj = new UVertex[3];
    }
    for (int i = 0; i < n; i++) {
      UVertex v = vs[i];
      UVertex next = vs[(i + 1) % n];
      UVertex chord = vs[(i + n / 2) % n];
      v.adj[0] = next;
      next.adj[1] = v;
      v.adj[2] = chord;
    }
    return vs;
  }
  static int dfs(UVertex v) {
    if (v.visited) {
      return 0;
    }
    v.visited = true;
    int s = v.id;
    UVertex[] edges = v.adj;
    for (int i = 0; i < edges.length; i++) {
      s = s + dfs(edges[i]);
    }
    return s;
  }
)MJ",
                MaxN, StepN) +
            R"MJ(
class UVertex {
  int id;
  boolean visited;
  UVertex[] adj;
  UVertex(int id) {
    this.id = id;
  }
}
)MJ",
        {{"Main", "dfs"}}, 'x', false, sizeN));

    return Ps;
  }();
  return Programs;
}

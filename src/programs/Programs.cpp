//===- programs/Programs.cpp ----------------------------------------------===//

#include "programs/Programs.h"

using namespace algoprof;
using namespace algoprof::programs;

const char *algoprof::programs::inputOrderName(InputOrder Order) {
  switch (Order) {
  case InputOrder::Random:
    return "random";
  case InputOrder::Sorted:
    return "sorted";
  case InputOrder::Reversed:
    return "reversed";
  }
  return "<bad-order>";
}

static std::string num(int64_t V) { return std::to_string(V); }

/// The value appended at position i for a given input regime.
static std::string valueExpr(InputOrder Order) {
  switch (Order) {
  case InputOrder::Random:
    return "r.next(size + 1)";
  case InputOrder::Sorted:
    return "i";
  case InputOrder::Reversed:
    return "size - i";
  }
  return "0";
}

/// Deterministic in-language LCG shared by the sort programs.
static const char *const RandClass = R"MJ(
class Rand {
  int seed;
  Rand(int seed) {
    this.seed = seed * 2 + 1;
  }
  int next(int bound) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) {
      seed = -seed;
    }
    if (bound <= 0) {
      return 0;
    }
    return seed % bound;
  }
}
)MJ";

//===----------------------------------------------------------------------===//
// Listings 1 + 2: imperative insertion sort on a doubly linked list
//===----------------------------------------------------------------------===//

/// The Listings 1+2 doubly-linked list, shared by the in-program sweep
/// and the seeded one-run-per-size variant.
static const char *const InsertionSortClasses = R"MJ(
class Node {
  Node prev;
  Node next;
  int value;
  Node(int value) {
    this.value = value;
  }
}
class List {
  Node head;
  Node tail;
  void sort() {
    if (head == null || head.next == null) {
      return;
    }
    Node firstUnsorted = head.next;
    while (firstUnsorted != null) {
      Node target = firstUnsorted;
      Node nextUnsorted = firstUnsorted.next;
      while (target.prev != null && target.prev.value > target.value) {
        Node candidate = target.prev;
        Node pred = candidate.prev;
        Node succ = target.next;
        if (pred != null) {
          pred.next = target;
        } else {
          head = target;
        }
        target.prev = pred;
        if (succ != null) {
          succ.prev = candidate;
        } else {
          tail = candidate;
        }
        candidate.next = succ;
        target.next = candidate;
        candidate.prev = target;
      }
      firstUnsorted = nextUnsorted;
    }
  }
  void append(int value) {
    Node node = new Node(value);
    if (tail == null) {
      tail = node;
      head = tail;
    } else {
      tail.next = node;
      node.prev = tail;
      tail = tail.next;
    }
  }
}
)MJ";

std::string algoprof::programs::insertionSortProgram(int MaxSize, int Step,
                                                     int Reps,
                                                     InputOrder Order) {
  std::string Src = InsertionSortClasses;
  Src += RandClass;
  Src += R"MJ(
class Main {
  static void main() {
    measure();
  }
  static void measure() {
    for (int size = 0; size < )MJ" +
         num(MaxSize) + R"MJ(; size = size + )MJ" + num(Step) + R"MJ() {
      for (int i = 0; i < )MJ" +
         num(Reps) + R"MJ(; i++) {
        List list = new List();
        constructRandom(list, size, i);
        sort(list);
      }
    }
  }
  static void constructRandom(List list, int size, int rep) {
    Rand r = new Rand(size * 31 + rep);
    for (int i = 0; i < size; i++) {
      list.append()MJ" +
         valueExpr(Order) + R"MJ();
    }
  }
  static void sort(List list) {
    list.sort();
  }
}
)MJ";
  return Src;
}

std::string
algoprof::programs::seededInsertionSortProgram(InputOrder Order) {
  std::string Src = InsertionSortClasses;
  Src += RandClass;
  Src += R"MJ(
class Main {
  static void main() {
    int size = 0;
    if (hasInput()) {
      size = readInt();
    }
    List list = new List();
    constructRandom(list, size);
    sort(list);
  }
  static void constructRandom(List list, int size) {
    Rand r = new Rand(size * 31);
    for (int i = 0; i < size; i++) {
      list.append()MJ" +
         valueExpr(Order) + R"MJ();
    }
  }
  static void sort(List list) {
    list.sort();
  }
}
)MJ";
  return Src;
}

//===----------------------------------------------------------------------===//
// Sec. 4.3: purely functional recursive insertion sort
//===----------------------------------------------------------------------===//

std::string algoprof::programs::functionalSortProgram(int MaxSize, int Step,
                                                      int Reps,
                                                      InputOrder Order) {
  std::string Src = R"MJ(
class FNode {
  int value;
  FNode next;
  FNode(int value, FNode next) {
    this.value = value;
    this.next = next;
  }
}
class FSort {
  static FNode sort(FNode list) {
    if (list == null) {
      return null;
    }
    return insert(list.value, FSort.sort(list.next));
  }
  static FNode insert(int value, FNode sorted) {
    if (sorted == null || sorted.value >= value) {
      return new FNode(value, sorted);
    }
    return new FNode(sorted.value, FSort.insert(value, sorted.next));
  }
}
)MJ";
  Src += RandClass;
  Src += R"MJ(
class Main {
  static void main() {
    for (int size = 0; size < )MJ" +
         num(MaxSize) + R"MJ(; size = size + )MJ" + num(Step) + R"MJ() {
      for (int i = 0; i < )MJ" +
         num(Reps) + R"MJ(; i++) {
        FNode list = construct(size, i);
        FNode sorted = FSort.sort(list);
        sorted = null;
      }
    }
  }
  static FNode construct(int size, int rep) {
    Rand r = new Rand(size * 31 + rep);
    FNode list = null;
    for (int i = 0; i < size; i++) {
      list = new FNode()MJ" +
         valueExpr(Order) + R"MJ(, list);
    }
    return list;
  }
}
)MJ";
  return Src;
}

//===----------------------------------------------------------------------===//
// Listing 6 / Fig. 4+5: growing array-backed list
//===----------------------------------------------------------------------===//

std::string algoprof::programs::arrayListProgram(bool Doubling, int MaxSize,
                                                 int Step) {
  std::string GrowExpr =
      Doubling ? "array.length * 2" : "array.length + 1";
  return R"MJ(
class ArrayList {
  int[] array;
  int size;
  ArrayList() {
    array = new int[1];
    size = 0;
  }
  void append(int value) {
    growIfFull();
    array[size++] = value;
  }
  void growIfFull() {
    if (size == array.length) {
      int[] newArray = new int[)MJ" +
         GrowExpr + R"MJ(];
      for (int i = 0; i < array.length; i++) {
        newArray[i] = array[i];
      }
      array = newArray;
    }
  }
}
class Main {
  static void main() {
    for (int size = )MJ" +
         num(Step) + R"MJ(; size <= )MJ" + num(MaxSize) +
         R"MJ(; size = size + )MJ" + num(Step) + R"MJ() {
      testForSize(size);
    }
  }
  static void testForSize(int size) {
    ArrayList list = new ArrayList();
    for (int i = 0; i < size; i++) {
      list.append(i + 1);
    }
  }
}
)MJ";
}

//===----------------------------------------------------------------------===//
// Listing 4: constructions whose first access sees a partial structure
//===----------------------------------------------------------------------===//

std::string algoprof::programs::listing4Program(int Size) {
  return R"MJ(
class Node4 {
  Node4 next;
}
class Main {
  static void main() {
    Node4 a = constructListWithLoop()MJ" +
         num(Size) + R"MJ();
    Node4 b = constructListWithRecursion()MJ" +
         num(Size) + R"MJ();
    constructPartiallyUsedArray();
    touch(a);
    touch(b);
  }
  static Node4 constructListWithLoop(int size) {
    Node4 list = null;
    for (int i = 0; i < size; i++) {
      Node4 head = new Node4();
      head.next = list;
      list = head;
    }
    return list;
  }
  static Node4 constructListWithRecursion(int size) {
    if (size == 0) {
      return null;
    }
    Node4 list = constructListWithRecursion(size - 1);
    Node4 head = new Node4();
    head.next = list;
    return head;
  }
  static void constructPartiallyUsedArray() {
    int[] values = new int[1000];
    for (int i = 0; i < 10; i++) {
      values[i] = i * 2;
    }
  }
  static void touch(Node4 n) {
    if (n != null) {
      touch(n.next);
    }
  }
}
)MJ";
}

//===----------------------------------------------------------------------===//
// Listing 5: 2-d loop nest whose outer loop has no array access
//===----------------------------------------------------------------------===//

std::string algoprof::programs::listing5Program(int Rows, int Cols) {
  return R"MJ(
class Main {
  static void main() {
    fill()MJ" +
         num(Rows) + ", " + num(Cols) + R"MJ();
  }
  static void fill(int rows, int cols) {
    int[][] array = new int[rows][cols];
    for (int i = 0; i < array.length; i++) {
      for (int j = 0; j < array[i].length; j++) {
        array[i][j] = i * 1000 + j + 1;
      }
    }
  }
}
)MJ";
}

//===----------------------------------------------------------------------===//
// Merge sort (linked list, top-down): the n*log n contrast
//===----------------------------------------------------------------------===//

std::string algoprof::programs::mergeSortProgram(int MaxSize, int Step,
                                                 int Reps,
                                                 InputOrder Order) {
  std::string Src = R"MJ(
class MNode {
  int value;
  MNode next;
  MNode(int value) {
    this.value = value;
  }
}
class MergeSort {
  static MNode sortList(MNode list) {
    if (list == null || list.next == null) {
      return list;
    }
    MNode slow = list;
    MNode fast = list.next;
    while (fast != null && fast.next != null) {
      slow = slow.next;
      fast = fast.next.next;
    }
    MNode second = slow.next;
    slow.next = null;
    return merge(MergeSort.sortList(list), MergeSort.sortList(second));
  }
  static MNode merge(MNode a, MNode b) {
    MNode head = null;
    MNode tail = null;
    while (a != null || b != null) {
      MNode take;
      if (b == null) {
        take = a;
        a = a.next;
      } else {
        if (a == null) {
          take = b;
          b = b.next;
        } else {
          if (a.value <= b.value) {
            take = a;
            a = a.next;
          } else {
            take = b;
            b = b.next;
          }
        }
      }
      take.next = null;
      if (tail == null) {
        head = take;
        tail = take;
      } else {
        tail.next = take;
        tail = take;
      }
    }
    return head;
  }
}
)MJ";
  Src += RandClass;
  Src += R"MJ(
class Main {
  static void main() {
    for (int size = 0; size < )MJ" +
         num(MaxSize) + R"MJ(; size = size + )MJ" + num(Step) + R"MJ() {
      for (int i = 0; i < )MJ" +
         num(Reps) + R"MJ(; i++) {
        MNode list = construct(size, i);
        MNode sorted = MergeSort.sortList(list);
        sorted = null;
      }
    }
  }
  static MNode construct(int size, int rep) {
    Rand r = new Rand(size * 17 + rep);
    MNode list = null;
    for (int i = 0; i < size; i++) {
      MNode node = new MNode()MJ" +
         valueExpr(Order) + R"MJ();
      node.next = list;
      list = node;
    }
    return list;
  }
}
)MJ";
  return Src;
}

//===----------------------------------------------------------------------===//
// External input/output
//===----------------------------------------------------------------------===//

std::string algoprof::programs::ioSumProgram() {
  return R"MJ(
class Main {
  static void main() {
    int sum = 0;
    while (hasInput()) {
      int v = readInt();
      print(v);
      sum = sum + v;
    }
    print(sum);
  }
}
)MJ";
}

//===----------------------------------------------------------------------===//
// Binary search: a logarithmic cost function
//===----------------------------------------------------------------------===//

std::string algoprof::programs::binarySearchProgram(int MaxN, int StepN) {
  return R"MJ(
class Main {
  static void main() {
    for (int n = )MJ" +
         num(StepN) + R"MJ(; n <= )MJ" + num(MaxN) +
         R"MJ(; n = n + )MJ" + num(StepN) + R"MJ() {
      runOnce(n);
    }
  }
  static void runOnce(int n) {
    int[] a = build(n);
    int hits = 0;
    // A fixed number of queries per size keeps the series comparable:
    // every search-loop invocation contributes one <n, ~log2 n> point.
    for (int q = 0; q < 8; q++) {
      int key = (q * n) / 8 + 1;
      if (search(a, key) >= 0) {
        hits++;
      }
    }
    print(hits);
  }
  static int[] build(int n) {
    int[] a = new int[n];
    for (int i = 0; i < n; i++) {
      a[i] = i + 1;
    }
    return a;
  }
  static int search(int[] a, int key) {
    int lo = 0;
    int hi = a.length - 1;
    while (lo <= hi) {
      int mid = (lo + hi) / 2;
      if (a[mid] == key) {
        return mid;
      }
      if (a[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    return -1;
  }
}
)MJ";
}

//===----------------------------------------------------------------------===//
// Binary search tree: n*log n construction
//===----------------------------------------------------------------------===//

std::string algoprof::programs::bstProgram(int MaxN, int StepN) {
  std::string Src = R"MJ(
class BstNode {
  int key;
  BstNode left;
  BstNode right;
  BstNode(int key) {
    this.key = key;
  }
}
class Bst {
  BstNode root;
  void insert(int key) {
    BstNode node = new BstNode(key);
    if (root == null) {
      root = node;
      return;
    }
    BstNode cur = root;
    while (true) {
      if (key < cur.key) {
        if (cur.left == null) {
          cur.left = node;
          return;
        }
        cur = cur.left;
      } else {
        if (cur.right == null) {
          cur.right = node;
          return;
        }
        cur = cur.right;
      }
    }
  }
  int sum(BstNode node) {
    if (node == null) {
      return 0;
    }
    return node.key + sum(node.left) + sum(node.right);
  }
}
)MJ";
  Src += RandClass;
  Src += R"MJ(
class Main {
  static void main() {
    for (int n = )MJ" +
         num(StepN) + R"MJ(; n <= )MJ" + num(MaxN) +
         R"MJ(; n = n + )MJ" + num(StepN) + R"MJ() {
      runOnce(n);
    }
  }
  static void runOnce(int n) {
    Bst tree = new Bst();
    fill(tree, n);
    print(tree.sum(tree.root));
  }
  static void fill(Bst tree, int n) {
    Rand r = new Rand(n * 13 + 7);
    for (int i = 0; i < n; i++) {
      tree.insert(r.next(1000000));
    }
  }
}
)MJ";
  return Src;
}

//===- programs/Table1Check.cpp -------------------------------------------===//

#include "programs/Table1Check.h"

#include <set>

using namespace algoprof;
using namespace algoprof::programs;
using namespace algoprof::prof;

Table1Outcome
algoprof::programs::evaluateTable1Program(const Table1Program &P,
                                          GroupingStrategy Strategy) {
  Table1Outcome Out;

  DiagnosticEngine Diags;
  auto CP = compileMiniJ(P.Source, Diags);
  if (!CP) {
    Out.Detail = "compile error: " + Diags.str();
    return Out;
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    Out.Detail = "run failed: " + R.TrapMessage;
    return Out;
  }
  Out.CompiledAndRan = true;

  // Collect the repetition nodes of the designated methods.
  std::set<int32_t> WantedMethods;
  for (const auto &[Cls, Method] : P.GroupMethods) {
    int32_t Id = CP->Mod->findMethodId(Cls, Method);
    if (Id >= 0)
      WantedMethods.insert(Id);
  }
  std::vector<const RepetitionNode *> Designated;
  S.tree().forEach([&](const RepetitionNode &N) {
    if (N.Key.Kind == RepKind::Root)
      return;
    if (WantedMethods.count(N.Key.MethodId))
      Designated.push_back(&N);
  });
  if (Designated.empty()) {
    Out.Detail = "no repetition nodes found for the designated methods";
    return Out;
  }

  // I column: the designated algorithm touched at least one input.
  std::set<int32_t> TouchedInputs;
  for (const RepetitionNode *N : Designated)
    for (int32_t Id : N->touchedInputs())
      TouchedInputs.insert(S.inputs().canonical(Id));
  Out.InputsDetected = !TouchedInputs.empty();
  if (!Out.InputsDetected)
    Out.Detail += "designated repetitions touched no inputs; ";

  // S column: every sweep point's expected size was observed on some
  // designated-node invocation.
  std::set<int64_t> ObservedSizes;
  for (const RepetitionNode *N : Designated)
    for (const InvocationRecord &Rec : N->History)
      for (const auto &[Id, Use] : Rec.Inputs) {
        (void)Id;
        ObservedSizes.insert(Use.MaxSize);
      }
  Out.SizesCorrect = true;
  for (int N = P.StepN; N <= P.MaxN; N += P.StepN) {
    int64_t Expected = P.ExpectedSize(N);
    if (!ObservedSizes.count(Expected)) {
      Out.SizesCorrect = false;
      Out.Detail += "missing size " + std::to_string(Expected) +
                    " for n=" + std::to_string(N) + "; ";
    }
  }

  // G column: all designated nodes in one algorithm.
  std::vector<Algorithm> Algos = S.algorithms(Strategy);
  std::set<int32_t> Groups;
  for (const RepetitionNode *N : Designated)
    for (const Algorithm &A : Algos)
      if (A.contains(N))
        Groups.insert(A.Id);
  Out.GColumn = Groups.size() == 1 ? 'x' : '-';
  return Out;
}

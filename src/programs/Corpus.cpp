//===- programs/Corpus.cpp - The built-in profiling corpus ----------------===//

#include "programs/Programs.h"

using namespace algoprof;
using namespace algoprof::programs;

const std::vector<CorpusProgram> &algoprof::programs::corpusPrograms() {
  static const std::vector<CorpusProgram> Corpus = [] {
    std::vector<CorpusProgram> C;
    // Seeded programs first: one run profiles one instance whose size
    // comes off the input channel, so the corpus seed grid is the
    // input-size sweep (the shape the paper's Figure 1 plots).
    C.push_back({"seeded_insertion_sort_random",
                 seededInsertionSortProgram(InputOrder::Random)});
    C.push_back({"seeded_insertion_sort_sorted",
                 seededInsertionSortProgram(InputOrder::Sorted)});
    C.push_back({"seeded_insertion_sort_reversed",
                 seededInsertionSortProgram(InputOrder::Reversed)});
    // Internal-sweep programs: each run replays the whole (small)
    // sweep; corpus seeds only multiply the runs. ioSum actually
    // consumes its seed as external input.
    C.push_back({"insertion_sort",
                 insertionSortProgram(24, 8, 1, InputOrder::Random)});
    C.push_back({"functional_sort",
                 functionalSortProgram(18, 6, 1, InputOrder::Random)});
    C.push_back({"merge_sort",
                 mergeSortProgram(24, 8, 1, InputOrder::Random)});
    C.push_back({"array_list_grow_by_one", arrayListProgram(false, 24, 8)});
    C.push_back({"array_list_doubling", arrayListProgram(true, 24, 8)});
    C.push_back({"listing4", listing4Program(12)});
    C.push_back({"listing5", listing5Program(6, 5)});
    C.push_back({"binary_search", binarySearchProgram(24, 8)});
    C.push_back({"bst", bstProgram(16, 8)});
    C.push_back({"io_sum", ioSumProgram()});
    for (const Table1Program &P : table1Programs())
      C.push_back({"table1_" + P.Name, P.Source});
    return C;
  }();
  return Corpus;
}

//===- programs/Programs.h - The paper's example programs -------*- C++-*-===//
///
/// \file
/// MiniJ translations of every program the paper evaluates: the running
/// example (Listings 1+2, Fig. 1/2/3), the functional/recursive
/// insertion sort (Sec. 4.3), the growing array-backed list (Listing 6,
/// Fig. 4/5), the Listing 4 construction patterns, the Listing 5 array
/// loop nest, the 18 Table 1 data-structure programs, and auxiliary
/// programs (merge sort, external I/O) used by examples and tests.
///
/// Programs are source generators parameterized by sweep sizes so tests
/// can run small and benches can run the full figures. All randomness is
/// a deterministic in-language LCG.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_PROGRAMS_PROGRAMS_H
#define ALGOPROF_PROGRAMS_PROGRAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace algoprof {
namespace programs {

/// Input regimes of Figure 1.
enum class InputOrder { Random, Sorted, Reversed };

const char *inputOrderName(InputOrder Order);

/// Listings 1+2: linked-list insertion sort under a sweep harness.
/// Sorts lists of length 0, Step, 2*Step, ... (< MaxSize), Reps runs
/// each. Entry: Main.main.
std::string insertionSortProgram(int MaxSize, int Step, int Reps,
                                 InputOrder Order);

/// Listings 1+2 insertion sort where one run sorts ONE list whose
/// length is read from the external input channel (readInt()): the
/// sweep over sizes moves out of the program and into the harness, one
/// profiled run per seed — the shape parallel::SweepEngine shards.
/// Entry: Main.main.
std::string seededInsertionSortProgram(InputOrder Order);

/// Sec. 4.3: the purely functional, recursive insertion sort over an
/// immutable list, same harness shape. Entry: Main.main.
std::string functionalSortProgram(int MaxSize, int Step, int Reps,
                                  InputOrder Order);

/// Listing 6 / Fig. 4+5: array-backed list growing by one (naive) or by
/// doubling (ideal). Appends 1..n for n = Step, 2*Step, ... <= MaxSize.
/// Entry: Main.main.
std::string arrayListProgram(bool Doubling, int MaxSize, int Step);

/// Listing 4: the three construction patterns whose first access cannot
/// see the whole structure (loop-built list, recursion-built list,
/// partially used array). Entry: Main.main.
std::string listing4Program(int Size);

/// Listing 5: the 2-d array loop nest whose outer loop performs no
/// array access. Entry: Main.main.
std::string listing5Program(int Rows, int Cols);

/// Linked-list bottom-up merge sort under the same sweep harness
/// (used by the sort-comparison example; expected n*log n).
std::string mergeSortProgram(int MaxSize, int Step, int Reps,
                             InputOrder Order);

/// Reads all external input, echoes each value, prints the sum.
/// Classifies as an Input+Output algorithm. Entry: Main.main.
std::string ioSumProgram();

/// Binary search over a sorted array: per-query cost ~ log2(n). Each
/// runOnce builds a sorted int[n] and performs a fixed number of
/// searches, so the search loop's series is logarithmic in the array
/// size. Entry: Main.main.
std::string binarySearchProgram(int MaxN, int StepN);

/// Binary search tree built by repeated insertion of LCG-shuffled keys,
/// then recursively summed. The build algorithm (insert-descent loop
/// grouped under the fill loop) costs ~ n*log n total. Entry:
/// Main.main.
std::string bstProgram(int MaxN, int StepN);

/// One of the paper's Table 1 data-structure programs.
struct Table1Program {
  std::string Name;
  // The paper's descriptive columns.
  std::string StructKind; ///< array / list / tree / graph.
  std::string Impl;       ///< array / linked.
  std::string Linkage;    ///< NA / directed / bidi / undirected.
  std::string PayloadT;   ///< B / I / G.
  std::string Remark;     ///< 1d / 2d / double / grow by 1 / binary / ...

  std::string Source;

  /// The (class, method) pairs whose loops and recursions together make
  /// up "the algorithm" of this program; the G column is 'x' when all of
  /// their repetition nodes land in one algorithm group.
  std::vector<std::pair<std::string, std::string>> GroupMethods;

  char PaperG = 'x';      ///< Paper's G column: 'x', '*', or '-'.
  bool ArrayInput = false;///< Primary input is an array (vs structure).

  int MaxN = 20;
  int StepN = 4;

  /// Expected primary-input size when built with parameter n.
  int64_t (*ExpectedSize)(int64_t N) = nullptr;
};

/// The 18 programs of Table 1, in the paper's row order.
const std::vector<Table1Program> &table1Programs();

/// One named program of the built-in profiling corpus.
struct CorpusProgram {
  std::string Name;
  std::string Source;
};

/// The built-in corpus: every program family above at test-scale sizes
/// — the seeded sorts (which size their run from the input channel, so
/// a corpus seed grid sweeps them), the internal-sweep programs, and
/// all 18 Table 1 structures. Deterministic order and content; every
/// entry's entry point is static no-arg Main.main. This is what the
/// CLI's `--corpus builtin` and the service soak tests batch-profile.
const std::vector<CorpusProgram> &corpusPrograms();

} // namespace programs
} // namespace algoprof

#endif // ALGOPROF_PROGRAMS_PROGRAMS_H

//===- programs/Table1Check.h - Evaluate a Table 1 program ------*- C++-*-===//
///
/// \file
/// Runs one Table 1 program under the algorithmic profiler and evaluates
/// the paper's three judgment columns:
///   I — were the expected inputs detected,
///   S — were their sizes measured correctly (against the program's
///       ExpectedSize formula over the sweep),
///   G — did the program's designated loop nest/recursion group into one
///       algorithm ('x') or not ('-').
/// Shared by the Table 1 unit tests, the bench_table1_structures binary,
/// and the grouping-ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_PROGRAMS_TABLE1CHECK_H
#define ALGOPROF_PROGRAMS_TABLE1CHECK_H

#include "core/Session.h"
#include "programs/Programs.h"

#include <string>

namespace algoprof {
namespace programs {

/// Outcome of evaluating one Table 1 program.
struct Table1Outcome {
  bool CompiledAndRan = false;
  bool InputsDetected = false; ///< Paper column I.
  bool SizesCorrect = false;   ///< Paper column S.
  char GColumn = '?';          ///< Measured grouping: 'x' or '-'.
  std::string Detail;          ///< Failure diagnostics.
};

/// Compiles, runs, profiles and judges \p P under \p Strategy.
Table1Outcome evaluateTable1Program(const Table1Program &P,
                                    prof::GroupingStrategy Strategy);

} // namespace programs
} // namespace algoprof

#endif // ALGOPROF_PROGRAMS_TABLE1CHECK_H

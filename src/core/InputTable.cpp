//===- core/InputTable.cpp ------------------------------------------------===//

#include "core/InputTable.h"

#include "obs/Obs.h"

#include <cassert>
#include <deque>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::bc;
using namespace algoprof::vm;

const char *algoprof::prof::equivalenceStrategyName(EquivalenceStrategy S) {
  switch (S) {
  case EquivalenceStrategy::SomeElements:
    return "SomeElements";
  case EquivalenceStrategy::AllElements:
    return "AllElements";
  case EquivalenceStrategy::SameArray:
    return "SameArray";
  case EquivalenceStrategy::SameType:
    return "SameType";
  }
  return "<bad-strategy>";
}

//===----------------------------------------------------------------------===//
// Bookkeeping primitives
//===----------------------------------------------------------------------===//

int32_t InputTable::canonical(int32_t Id) const {
  assert(Id >= 0 && Id < static_cast<int32_t>(Parent.size()));
  while (Parent[static_cast<size_t>(Id)] != Id)
    Id = Parent[static_cast<size_t>(Id)];
  return Id;
}

int32_t InputTable::inputOf(ObjId Obj) const {
  auto It = ObjToInput.find(Obj);
  return It == ObjToInput.end() ? -1 : canonical(It->second);
}

int32_t InputTable::newInput(bool IsArray, int32_t TypeKey,
                             std::string Label) {
  InputInfo Info;
  Info.Id = static_cast<int32_t>(Inputs.size());
  Info.IsArray = IsArray;
  Info.TypeKey = TypeKey;
  Info.Label = std::move(Label);
  Inputs.push_back(std::move(Info));
  Parent.push_back(Inputs.back().Id);
  return Inputs.back().Id;
}

int32_t InputTable::merge(int32_t A, int32_t B) {
  A = canonical(A);
  B = canonical(B);
  if (A == B)
    return A;
  // Keep the older id as the survivor: series and reports stay stable.
  if (B < A)
    std::swap(A, B);
  InputInfo &Winner = Inputs[static_cast<size_t>(A)];
  InputInfo &Loser = Inputs[static_cast<size_t>(B)];
  for (int64_t Obj : Loser.Members)
    Winner.Members.insert(Obj);
  for (int64_t V : Loser.ValueSet)
    Winner.ValueSet.insert(V);
  for (int64_t V : Loser.SeedValues)
    Winner.SeedValues.insert(V);
  for (const auto &[ClassId, N] : Loser.MemberClassCounts)
    Winner.MemberClassCounts[ClassId] += N;
  Winner.MaxCapacitySeen =
      std::max(Winner.MaxCapacitySeen, Loser.MaxCapacitySeen);
  Winner.RunMemberCount += Loser.RunMemberCount;
  for (int64_t V : Loser.RunValueSet)
    Winner.RunValueSet.insert(V);
  for (const auto &[ClassId, N] : Loser.RunMemberClassCounts)
    Winner.RunMemberClassCounts[ClassId] += N;
  Winner.RunMaxCapacitySeen =
      std::max(Winner.RunMaxCapacitySeen, Loser.RunMaxCapacitySeen);
  Loser.Alive = false;
  Loser.Members.clear();
  Loser.ValueSet.clear();
  Loser.SeedValues.clear();
  Loser.RunValueSet.clear();
  Loser.RunMemberClassCounts.clear();
  Parent[static_cast<size_t>(B)] = A;
  return A;
}

void InputTable::assign(ObjId Obj, int32_t Input, int32_t ClassId) {
  Input = canonical(Input);
  auto It = ObjToInput.find(Obj);
  if (It != ObjToInput.end()) {
    int32_t Cur = canonical(It->second);
    if (Cur == Input)
      return;
    // Under overlap-style identity, conflicting attribution means the
    // structures are the same input. Under AllElements/SameType the
    // membership map is only a cache: re-point it without merging.
    if (Strategy == EquivalenceStrategy::SomeElements ||
        Strategy == EquivalenceStrategy::SameArray)
      merge(Cur, Input);
    else
      It->second = Input;
    return;
  }
  ObjToInput.emplace(Obj, Input);
  InputInfo &Info = Inputs[static_cast<size_t>(canonical(Input))];
  Info.Members.insert(Obj);
  ++Info.RunMemberCount;
  if (ClassId >= 0) {
    ++Info.MemberClassCounts[ClassId];
    ++Info.RunMemberClassCounts[ClassId];
  }
}

std::vector<int32_t> InputTable::liveInputs() const {
  std::vector<int32_t> Ids;
  for (const InputInfo &Info : Inputs)
    if (Info.Alive)
      Ids.push_back(Info.Id);
  return Ids;
}

std::vector<int32_t> InputTable::liveHeapInputs() const {
  std::vector<int32_t> Ids;
  for (const InputInfo &Info : Inputs)
    if (Info.Alive && !Info.IsStream)
      Ids.push_back(Info.Id);
  return Ids;
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

SizeMeasures InputTable::traverseStructure(
    ObjId Start, std::vector<std::pair<ObjId, int32_t>> &Visited) const {
  assert(H && "heap not attached");
  ++Snapshots;
  SizeMeasures Sizes;
  std::unordered_set<int64_t> Seen;
  std::deque<ObjId> Work;
  Work.push_back(Start);
  Seen.insert(Start);

  uint64_t Steps = 0;
  while (!Work.empty()) {
    ++Steps;
    ObjId Cur = Work.front();
    Work.pop_front();
    const HeapObject &Obj = H->get(Cur);

    if (Obj.IsArray) {
      Visited.emplace_back(Cur, -1);
      for (const Value &Elem : Obj.Slots) {
        if (!Elem.IsRef || Elem.isNullRef())
          continue;
        ++Sizes.RefCount;
        if (Seen.insert(Elem.ref()).second)
          Work.push_back(Elem.ref());
      }
      continue;
    }

    ++Sizes.ObjectCount;
    ++Sizes.PerClass[Obj.ClassId];
    Visited.emplace_back(Cur, Obj.ClassId);

    const ClassInfo &C = M.Classes[static_cast<size_t>(Obj.ClassId)];
    for (size_t Slot = 0; Slot < C.FieldIds.size(); ++Slot) {
      int32_t FieldId = C.FieldIds[Slot];
      if (!RT.isLinkField(FieldId))
        continue;
      const Value &V = Obj.Slots[Slot];
      if (!V.IsRef || V.isNullRef())
        continue;
      if (Seen.insert(V.ref()).second)
        Work.push_back(V.ref());
    }
  }
  obs::addCount(obs::Counter::TraversalSteps, Steps);
  return Sizes;
}

SizeMeasures InputTable::measureArrayObject(ObjId Arr) const {
  assert(H && "heap not attached");
  ++Snapshots;
  SizeMeasures Sizes;
  // Multi-dimensional arrays count all levels (paper Sec. 3.4: the
  // triangular int[][] example has size 3 + (0+1+2)). Sub-arrays are
  // visited once; a visited set guards against reference cycles.
  std::unordered_set<int64_t> VisitedArrays;
  std::deque<ObjId> Work;
  Work.push_back(Arr);
  VisitedArrays.insert(Arr);
  while (!Work.empty()) {
    ObjId Cur = Work.front();
    Work.pop_front();
    const HeapObject &Obj = H->get(Cur);
    Sizes.Capacity += static_cast<int64_t>(Obj.Slots.size());
    std::unordered_set<int64_t> Unique;
    for (const Value &V : Obj.Slots) {
      if (V.IsRef) {
        if (V.isNullRef())
          continue;
        if (H->get(V.ref()).IsArray) {
          if (VisitedArrays.insert(V.ref()).second)
            Work.push_back(V.ref());
          Unique.insert(V.Bits);
        } else {
          Unique.insert(V.Bits);
        }
      } else {
        Unique.insert(V.Bits);
      }
    }
    Sizes.UniqueElems += static_cast<int64_t>(Unique.size());
  }
  return Sizes;
}

//===----------------------------------------------------------------------===//
// Identification
//===----------------------------------------------------------------------===//

static std::string structureLabel(const Module &M, int32_t ClassId) {
  return M.Classes[static_cast<size_t>(ClassId)].Name +
         "-based recursive structure";
}

static std::string arrayLabel(const Module &M, TypeId ElemType) {
  return M.typeName(ElemType) + "[] array";
}

int32_t InputTable::identifyStructureSnapshot(ObjId Start) {
  std::vector<std::pair<ObjId, int32_t>> Visited;
  SizeMeasures Sizes = traverseStructure(Start, Visited);
  int32_t StartClass = H->get(Start).ClassId;
  int32_t TypeKey = RT.ClassScc[static_cast<size_t>(StartClass)];

  int32_t Target = -1;
  switch (Strategy) {
  case EquivalenceStrategy::SomeElements:
  case EquivalenceStrategy::SameArray: { // SameArray degrades to overlap
    // Any previously attributed member decides the input.
    for (const auto &[Obj, ClassId] : Visited) {
      (void)ClassId;
      auto It = ObjToInput.find(Obj);
      if (It == ObjToInput.end())
        continue;
      int32_t Found = canonical(It->second);
      Target = Target < 0 ? Found : merge(Target, Found);
    }
    break;
  }
  case EquivalenceStrategy::AllElements: {
    // Exact set equality against each live structure input.
    for (const InputInfo &Info : Inputs) {
      if (!Info.Alive || Info.IsArray)
        continue;
      if (Info.Members.size() != Visited.size())
        continue;
      bool Equal = true;
      for (const auto &[Obj, ClassId] : Visited) {
        (void)ClassId;
        if (!Info.Members.count(Obj)) {
          Equal = false;
          break;
        }
      }
      if (Equal) {
        Target = Info.Id;
        break;
      }
    }
    break;
  }
  case EquivalenceStrategy::SameType: {
    for (const InputInfo &Info : Inputs)
      if (Info.Alive && !Info.IsArray && Info.TypeKey == TypeKey) {
        Target = Info.Id;
        break;
      }
    break;
  }
  }

  if (Target < 0)
    Target = newInput(/*IsArray=*/false, TypeKey,
                      structureLabel(M, StartClass));
  for (const auto &[Obj, ClassId] : Visited)
    assign(Obj, Target, ClassId);
  (void)Sizes;
  return canonical(Target);
}

int32_t InputTable::identifyArraySnapshot(ObjId Arr) {
  const HeapObject &Obj = H->get(Arr);
  TypeId ElemType = M.Types[static_cast<size_t>(Obj.Type)].Elem;
  bool RefElems =
      M.Types[static_cast<size_t>(ElemType)].Kind == RtTypeKind::Class ||
      M.Types[static_cast<size_t>(ElemType)].Kind == RtTypeKind::Array;

  int32_t Target = -1;
  switch (Strategy) {
  case EquivalenceStrategy::SameArray:
    // Identity of the array object itself; reallocation breaks it (the
    // paper's argument for SomeElements).
    break;
  case EquivalenceStrategy::SomeElements: {
    if (RefElems) {
      for (const Value &V : Obj.Slots) {
        if (!V.IsRef || V.isNullRef())
          continue;
        auto It = ObjToInput.find(V.Bits);
        if (It == ObjToInput.end())
          continue;
        int32_t Found = canonical(It->second);
        Target = Target < 0 ? Found : merge(Target, Found);
      }
    } else {
      // Overlap on non-default element values.
      for (const InputInfo &Info : Inputs) {
        if (!Info.Alive || !Info.IsArray || Info.TypeKey != ElemType)
          continue;
        for (const Value &V : Obj.Slots) {
          if (V.Bits != 0 && Info.ValueSet.count(V.Bits)) {
            Target = Target < 0 ? Info.Id : merge(Target, Info.Id);
            break;
          }
        }
      }
    }
    break;
  }
  case EquivalenceStrategy::AllElements: {
    SizeMeasures Mine = measureArrayObject(Arr);
    for (const InputInfo &Info : Inputs) {
      if (!Info.Alive || !Info.IsArray || Info.TypeKey != ElemType)
        continue;
      if (RefElems) {
        // Member set equality (elements only; the array object itself is
        // also a member, so compare via contained elements).
        bool Equal = true;
        int64_t NonNull = 0;
        for (const Value &V : Obj.Slots) {
          if (!V.IsRef || V.isNullRef())
            continue;
          ++NonNull;
          if (!Info.Members.count(V.Bits)) {
            Equal = false;
            break;
          }
        }
        // Members also contains backing array ids; require the element
        // count to match the non-array member count.
        if (Equal &&
            NonNull == static_cast<int64_t>(Info.Members.size()) -
                           countArrayMembers(Info))
          Target = Info.Id;
      } else {
        std::unordered_set<int64_t> Mine2;
        for (const Value &V : Obj.Slots)
          if (V.Bits != 0)
            Mine2.insert(V.Bits);
        if (Mine2 == Info.ValueSet)
          Target = Info.Id;
      }
      if (Target >= 0)
        break;
    }
    (void)Mine;
    break;
  }
  case EquivalenceStrategy::SameType: {
    for (const InputInfo &Info : Inputs)
      if (Info.Alive && Info.IsArray && Info.TypeKey == ElemType) {
        Target = Info.Id;
        break;
      }
    break;
  }
  }

  if (Target < 0)
    Target = newInput(/*IsArray=*/true, ElemType, arrayLabel(M, ElemType));

  InputInfo &Info = infoMut(Target);
  Info.MaxCapacitySeen =
      std::max(Info.MaxCapacitySeen, static_cast<int64_t>(Obj.Slots.size()));
  Info.RunMaxCapacitySeen = std::max(Info.RunMaxCapacitySeen,
                                     static_cast<int64_t>(Obj.Slots.size()));
  assign(Arr, Target, /*ClassId=*/-1);
  // Register current contents for identity tracking. Values present at
  // this identification also feed SeedValues: they are exactly what the
  // overlap test above compared against other inputs, which a sweep
  // merge must replay against earlier runs (see InputTable::merge).
  for (const Value &V : Obj.Slots) {
    if (V.IsRef) {
      if (!V.isNullRef())
        assign(V.Bits, Target, H->get(V.Bits).IsArray
                                   ? -1
                                   : H->get(V.Bits).ClassId);
    } else if (V.Bits != 0) {
      InputInfo &Reg = infoMut(Target);
      Reg.ValueSet.insert(V.Bits);
      Reg.SeedValues.insert(V.Bits);
      Reg.RunValueSet.insert(V.Bits);
    }
  }
  return canonical(Target);
}

int32_t InputTable::onStructureAccess(ObjId Obj, Value Other) {
  bool OtherValid = Other.IsRef && !Other.isNullRef();
  if (Strategy == EquivalenceStrategy::SomeElements ||
      Strategy == EquivalenceStrategy::SameArray) {
    int32_t I1 = inputOf(Obj);
    int32_t I2 = OtherValid ? inputOf(Other.ref()) : -1;
    int32_t Result = -1;
    if (I1 >= 0 && I2 >= 0) {
      Result = I1 == I2 ? I1 : merge(I1, I2);
    } else if (I1 >= 0) {
      if (OtherValid)
        assign(Other.ref(), I1, H->get(Other.ref()).IsArray
                                    ? -1
                                    : H->get(Other.ref()).ClassId);
      Result = I1;
    } else if (I2 >= 0) {
      assign(Obj, I2, H->get(Obj).ClassId);
      Result = I2;
    } else {
      Result = identifyStructureSnapshot(Obj);
    }
    // An input first discovered as an array (e.g. the Vertex[] registry
    // of a linked graph) upgrades to structure semantics once its
    // members are accessed through recursive links.
    InputInfo &Info = infoMut(Result);
    if (Info.IsArray) {
      int32_t StartClass = H->get(Obj).ClassId;
      Info.IsArray = false;
      Info.TypeKey = RT.ClassScc[static_cast<size_t>(StartClass)];
      Info.Label = structureLabel(M, StartClass);
    }
    return Result;
  }
  if (Strategy == EquivalenceStrategy::SameType) {
    int32_t StartClass = H->get(Obj).ClassId;
    int32_t TypeKey = RT.ClassScc[static_cast<size_t>(StartClass)];
    for (const InputInfo &Info : Inputs)
      if (Info.Alive && !Info.IsArray && Info.TypeKey == TypeKey)
        return Info.Id;
    return newInput(/*IsArray=*/false, TypeKey,
                    structureLabel(M, StartClass));
  }
  // AllElements: a fresh snapshot on every access.
  return identifyStructureSnapshot(Obj);
}

int32_t InputTable::externalStreamInput(bool IsInputStream) {
  int32_t &Cache = IsInputStream ? InputStreamId : OutputStreamId;
  if (Cache >= 0)
    return canonical(Cache);
  Cache = newInput(/*IsArray=*/false, /*TypeKey=*/-1,
                   IsInputStream ? "external input stream"
                                 : "external output stream");
  infoMut(Cache).IsStream = true;
  return Cache;
}

int32_t InputTable::onArrayAccess(ObjId Arr) {
  // Fast path: the array already belongs to an input (its own id is a
  // member — covers both naked arrays and arrays inside structures).
  if (Strategy != EquivalenceStrategy::AllElements) {
    int32_t Known = inputOf(Arr);
    if (Known >= 0)
      return Known;
  }
  return identifyArraySnapshot(Arr);
}

void InputTable::onArrayStoreValue(int32_t Input, ObjId Arr, Value V) {
  (void)Arr;
  Input = canonical(Input);
  if (V.IsRef) {
    if (!V.isNullRef())
      assign(V.ref(), Input,
             H->get(V.ref()).IsArray ? -1 : H->get(V.ref()).ClassId);
    return;
  }
  if (V.Bits != 0) {
    InputInfo &Info = infoMut(Input);
    Info.ValueSet.insert(V.Bits);
    Info.RunValueSet.insert(V.Bits);
  }
}

//===----------------------------------------------------------------------===//
// Sweep merge
//===----------------------------------------------------------------------===//

std::vector<int32_t> InputTable::merge(const InputTable &Other,
                                       int64_t ObjIdOffset) {
  // Freeze the value sets that existed before this merge. A serial
  // session identifying Other's arrays would have compared against
  // exactly these: earlier runs are complete by the time a later run
  // identifies, so their value sets no longer change, and comparisons
  // against same-run inputs already happened inside the shard itself.
  struct FrozenArray {
    int32_t Id;
    int32_t TypeKey;
    std::unordered_set<int64_t> Values;
  };
  std::vector<FrozenArray> Frozen;
  if (Strategy == EquivalenceStrategy::SomeElements)
    for (const InputInfo &Info : Inputs)
      if (Info.Alive && Info.IsArray && !Info.IsStream)
        Frozen.push_back({Info.Id, Info.TypeKey, Info.ValueSet});

  // The shard ran *after* every run already merged here; a serial
  // session would have reset the run-scoped measurement counters at
  // that run's start, so the merged table carries the shard's.
  beginRun();

  std::vector<int32_t> Remap(Other.Inputs.size(), -1);
  for (size_t I = 0; I < Other.Inputs.size(); ++I) {
    int32_t SrcId = static_cast<int32_t>(I);
    int32_t SrcCanon = Other.canonical(SrcId);
    if (SrcCanon != SrcId) {
      // Merged-away ids resolve through their survivor, which is always
      // the older id and therefore already remapped.
      assert(SrcCanon < SrcId && "survivor must be the older id");
      Remap[I] = Remap[static_cast<size_t>(SrcCanon)];
      continue;
    }
    const InputInfo &Src = Other.Inputs[I];
    int32_t Target = -1;
    if (Src.IsStream) {
      // Stream pseudo-inputs unify by role, as in a serial session.
      bool IsIn = Other.InputStreamId >= 0 &&
                  Other.canonical(Other.InputStreamId) == SrcId;
      Target = externalStreamInput(IsIn);
    } else if (Strategy == EquivalenceStrategy::SameType) {
      for (const InputInfo &Info : Inputs)
        if (Info.Alive && !Info.IsStream && Info.IsArray == Src.IsArray &&
            Info.TypeKey == Src.TypeKey) {
          Target = Info.Id;
          break;
        }
    } else if (Strategy == EquivalenceStrategy::SomeElements &&
               Src.IsArray && !Src.SeedValues.empty()) {
      // Replay the overlap tests the shard's identifications would have
      // run against the pre-merge inputs: SeedValues holds the exact
      // element values each identification snapshot saw. Candidates are
      // scanned in id order and chained through merge(), mirroring the
      // serial identification loop.
      for (const FrozenArray &Cand : Frozen) {
        if (Cand.TypeKey != Src.TypeKey)
          continue;
        bool Overlaps = false;
        for (int64_t V : Src.SeedValues)
          if (Cand.Values.count(V)) {
            Overlaps = true;
            break;
          }
        if (Overlaps) {
          int32_t CandId = canonical(Cand.Id);
          Target = Target < 0 ? CandId : merge(Target, CandId);
        }
      }
    }
    // SameArray and AllElements never unify across runs: heap object ids
    // are disjoint between runs. (AllElements additionally re-identifies
    // on every access, which a post-hoc merge cannot replay; see
    // docs/parallel_sweeps.md.)
    if (Target < 0)
      Target = newInput(Src.IsArray, Src.TypeKey, Src.Label);
    Target = canonical(Target);
    InputInfo &Dst = infoMut(Target);
    Dst.IsStream |= Src.IsStream;
    for (int64_t Obj : Src.Members) {
      int64_t NewObj = Obj + ObjIdOffset;
      Dst.Members.insert(NewObj);
      ObjToInput.emplace(NewObj, Target);
    }
    for (int64_t V : Src.ValueSet)
      Dst.ValueSet.insert(V);
    for (int64_t V : Src.SeedValues)
      Dst.SeedValues.insert(V);
    for (const auto &[ClassId, N] : Src.MemberClassCounts)
      Dst.MemberClassCounts[ClassId] += N;
    Dst.MaxCapacitySeen = std::max(Dst.MaxCapacitySeen, Src.MaxCapacitySeen);
    Dst.RunMemberCount += Src.RunMemberCount;
    for (int64_t V : Src.RunValueSet)
      Dst.RunValueSet.insert(V);
    for (const auto &[ClassId, N] : Src.RunMemberClassCounts)
      Dst.RunMemberClassCounts[ClassId] += N;
    Dst.RunMaxCapacitySeen =
        std::max(Dst.RunMaxCapacitySeen, Src.RunMaxCapacitySeen);
    Remap[I] = Target;
  }
  Snapshots += Other.Snapshots;
  return Remap;
}

//===----------------------------------------------------------------------===//
// Measurement
//===----------------------------------------------------------------------===//

SizeMeasures InputTable::measureFrom(ObjId Ref, int32_t Input) {
  obs::ScopedTimer Timer(obs::Phase::Snapshot);
  Input = canonical(Input);
  const InputInfo &Info = Inputs[static_cast<size_t>(Input)];
  if (Info.IsArray && H->get(Ref).IsArray) {
    SizeMeasures Sizes = measureArrayObject(Ref);
    InputInfo &Mut = infoMut(Input);
    Mut.MaxCapacitySeen = std::max(Mut.MaxCapacitySeen, Sizes.Capacity);
    Mut.RunMaxCapacitySeen =
        std::max(Mut.RunMaxCapacitySeen, Sizes.Capacity);
    return Sizes;
  }
  // Structure snapshot; refresh membership under overlap-style
  // strategies so later accesses take the fast path.
  std::vector<std::pair<ObjId, int32_t>> Visited;
  SizeMeasures Sizes = traverseStructure(Ref, Visited);
  if (Strategy == EquivalenceStrategy::SomeElements ||
      Strategy == EquivalenceStrategy::SameArray)
    for (const auto &[Obj, ClassId] : Visited)
      assign(Obj, Input, ClassId);
  return Sizes;
}

SizeMeasures InputTable::trackedMeasures(int32_t Input) const {
  // Run-scoped counters only: an input that persists across runs (e.g.
  // SameType unification) must still be sized from the current run's
  // heap, exactly as a fresh single-run profiler would size it.
  const InputInfo &Info = Inputs[static_cast<size_t>(canonical(Input))];
  SizeMeasures Sizes;
  if (Info.IsArray) {
    Sizes.Capacity = Info.RunMaxCapacitySeen;
    Sizes.UniqueElems = static_cast<int64_t>(
        Info.RunValueSet.empty()
            ? Info.RunMemberCount > 1 ? Info.RunMemberCount - 1 : 0
            : Info.RunValueSet.size());
    return Sizes;
  }
  for (const auto &[ClassId, N] : Info.RunMemberClassCounts) {
    (void)ClassId;
    Sizes.ObjectCount += N;
  }
  Sizes.PerClass = Info.RunMemberClassCounts;
  return Sizes;
}

void InputTable::beginRun() {
  for (InputInfo &Info : Inputs) {
    Info.RunMemberCount = 0;
    Info.RunValueSet.clear();
    Info.RunMemberClassCounts.clear();
    Info.RunMaxCapacitySeen = 0;
  }
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

int64_t InputTable::countArrayMembers(const InputInfo &Info) const {
  // Every class-instance member increments MemberClassCounts at assign
  // time and arrays never do, so the array count falls out of the
  // membership bookkeeping. Deliberately heap-free: members from
  // earlier runs of a sweep may already be recycled (vm::Heap::recycle).
  int64_t Classes = 0;
  for (const auto &[ClassId, N] : Info.MemberClassCounts) {
    (void)ClassId;
    Classes += N;
  }
  return static_cast<int64_t>(Info.Members.size()) - Classes;
}

//===- core/RepetitionTree.h - Dynamic loop/recursion nesting ---*- C++-*-===//
///
/// \file
/// The paper's central data structure (Sec. 2.1 / Fig. 3): a tree of
/// repetition nodes — loops and (folded) recursions — that records, for
/// every invocation of every repetition, its cost map and the inputs it
/// touched together with their measured sizes.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_REPETITIONTREE_H
#define ALGOPROF_CORE_REPETITIONTREE_H

#include "core/CostMap.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace prof {

/// What a repetition node represents.
enum class RepKind : uint8_t {
  Root,      ///< The synthetic per-program root ("Program").
  Loop,      ///< A natural loop (MethodId + loop index).
  Recursion, ///< A folded recursion headed by MethodId.
};

/// Identity of a repetition node among its siblings.
struct RepKey {
  RepKind Kind = RepKind::Root;
  int32_t MethodId = -1;
  int32_t LoopId = -1; ///< Index into the method's analysis::LoopInfo.

  bool operator<(const RepKey &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (MethodId != O.MethodId)
      return MethodId < O.MethodId;
    return LoopId < O.LoopId;
  }
  bool operator==(const RepKey &O) const {
    return Kind == O.Kind && MethodId == O.MethodId && LoopId == O.LoopId;
  }
};

/// Per-invocation, per-input size observations. Sizes use the input's
/// primary measure (object count for structures, unique element count
/// for arrays); the side measures keep the alternatives (paper Sec. 3.4).
struct InputUse {
  int64_t FirstSize = -1; ///< Size at the first access in the invocation.
  int64_t LastSize = -1;  ///< Size at the invocation's exit remeasure.
  int64_t MaxSize = 0;    ///< Paper rule: the size of an evolving input.
  int64_t MaxCapacity = 0;    ///< Arrays: capacity measure.
  int64_t MaxUniqueElems = 0; ///< Arrays: unique-element measure.
  int64_t MaxRefCount = 0;    ///< Structures: traversed array references.

  void observe(int64_t Size, int64_t Capacity, int64_t Unique,
               int64_t Refs) {
    if (FirstSize < 0)
      FirstSize = Size;
    LastSize = Size;
    if (Size > MaxSize)
      MaxSize = Size;
    if (Capacity > MaxCapacity)
      MaxCapacity = Capacity;
    if (Unique > MaxUniqueElems)
      MaxUniqueElems = Unique;
    if (Refs > MaxRefCount)
      MaxRefCount = Refs;
  }

  void mergeMax(const InputUse &O) {
    if (FirstSize < 0)
      FirstSize = O.FirstSize;
    LastSize = O.LastSize >= 0 ? O.LastSize : LastSize;
    MaxSize = std::max(MaxSize, O.MaxSize);
    MaxCapacity = std::max(MaxCapacity, O.MaxCapacity);
    MaxUniqueElems = std::max(MaxUniqueElems, O.MaxUniqueElems);
    MaxRefCount = std::max(MaxRefCount, O.MaxRefCount);
  }
};

class RepetitionNode;

/// The history entry of one finished invocation of a repetition
/// (paper Sec. 3.3, finalizeRepetition).
struct InvocationRecord {
  CostMap Costs;
  /// Costs folded up from *sampled-out* child invocations (paper
  /// Sec. 3.3 sampling): they belong to this invocation's combined cost
  /// but are not this repetition's own operations, so grouping ignores
  /// them while series extraction includes them.
  CostMap FoldedCosts;
  std::map<int32_t, InputUse> Inputs; ///< Canonical input id -> sizes.
  RepetitionNode *ParentNode = nullptr;
  int32_t ParentInvocation = -1;
  bool Finalized = false;
};

/// One repetition (loop or recursion) in the tree.
class RepetitionNode {
public:
  RepKey Key;
  std::string Name; ///< "List.sort loop#0", "Fib.fib (recursion)", ...
  RepetitionNode *Parent = nullptr;
  std::vector<std::unique_ptr<RepetitionNode>> Children;

  /// Every *recorded* invocation, in finalize order. With invocation
  /// sampling (ProfileOptions::SampleThreshold) this is a subset of all
  /// invocations; TotalInvocations counts them all.
  std::vector<InvocationRecord> History;

  /// Total activations of this repetition, recorded or not.
  int64_t TotalInvocations = 0;

  int depth() const {
    int D = 0;
    for (const RepetitionNode *N = Parent; N; N = N->Parent)
      ++D;
    return D;
  }

  RepetitionNode *findChild(const RepKey &K);

  /// Total algorithmic steps over all finalized invocations.
  int64_t totalSteps() const;

  /// Canonical input ids touched by any invocation of this node.
  std::vector<int32_t> touchedInputs() const;
};

/// The repetition tree of a profiled execution (or a set of executions:
/// repeated runs accumulate into the same tree).
class RepetitionTree {
public:
  RepetitionTree();

  RepetitionNode &root() { return *Root; }
  const RepetitionNode &root() const { return *Root; }

  /// Finds or creates the child of \p Parent with key \p K; \p Name is
  /// used only on creation.
  RepetitionNode &getOrCreateChild(RepetitionNode &Parent, const RepKey &K,
                                   const std::string &Name);

  /// Folds the completed shard tree \p Other into this one. Nodes align
  /// by RepKey (static method/loop ids); \p Other's invocation records
  /// are appended after this tree's, with cost-map and input-use ids
  /// rewritten through \p InputRemap (from InputTable::merge) and
  /// ParentInvocation indices shifted by the destination parent's
  /// pre-merge history length. Merging shards in run-index order
  /// reproduces a serial accumulating session's tree exactly, byte for
  /// byte, independent of which threads executed which runs.
  void merge(const RepetitionTree &Other,
             const std::vector<int32_t> &InputRemap);

  /// Pre-order traversal.
  template <typename Fn> void forEach(Fn F) const {
    forEachImpl(*Root, F);
  }

  /// Number of nodes excluding the root.
  int numRepetitions() const;

private:
  void mergeSubtree(RepetitionNode &Dst, const RepetitionNode &Src,
                    size_t ParentOffset,
                    const std::vector<int32_t> &Remap);

  template <typename Fn>
  static void forEachImpl(const RepetitionNode &N, Fn &F) {
    F(N);
    for (const auto &C : N.Children)
      forEachImpl(*C, F);
  }

  std::unique_ptr<RepetitionNode> Root;
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_REPETITIONTREE_H

//===- core/CostMap.h - Algorithmic cost accounting -------------*- C++-*-===//
///
/// \file
/// The paper's cost model (Sec. 2.2 / 3.3): a map from primitive
/// operations — algorithmic steps, structure reads/writes (per input and
/// per input+type), element creations (per type), input reads, output
/// writes — to execution counts.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_COSTMAP_H
#define ALGOPROF_CORE_COSTMAP_H

#include <cstdint>
#include <map>
#include <string>

namespace algoprof {
namespace prof {

/// Primitive operation kinds of the cost model.
enum class CostKind : uint8_t {
  Step,        ///< One loop iteration or recursive call.
  StructGet,   ///< Read of a recursive link field.
  StructPut,   ///< Write of a recursive link field.
  ArrayLoad,   ///< Array element read.
  ArrayStore,  ///< Array element write.
  New,         ///< Allocation of a recursive-type instance.
  ArrayNew,    ///< Allocation of an array.
  InputRead,   ///< External input consumed.
  OutputWrite, ///< External output produced.
};

/// Returns a short label for \p K ("STEP", "GET", ...), matching the
/// paper's notation.
const char *costKindLabel(CostKind K);

/// One cost-map key: a primitive operation, optionally specialized to an
/// input id (structure accesses) and/or a type id (per-element-type
/// counts and allocations). -1 means "not specialized".
struct CostKey {
  CostKind Kind = CostKind::Step;
  int32_t InputId = -1;
  int32_t TypeId = -1;

  bool operator<(const CostKey &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (InputId != O.InputId)
      return InputId < O.InputId;
    return TypeId < O.TypeId;
  }
  bool operator==(const CostKey &O) const {
    return Kind == O.Kind && InputId == O.InputId && TypeId == O.TypeId;
  }
};

/// Counts of primitive operations. Deliberately an ordered map: reports
/// iterate it deterministically.
class CostMap {
public:
  void add(CostKey Key, int64_t N = 1) { Counts[Key] += N; }

  int64_t get(CostKey Key) const {
    auto It = Counts.find(Key);
    return It == Counts.end() ? 0 : It->second;
  }

  /// Sum over all keys with kind \p K and (when \p InputId >= 0) that
  /// input, counting only the input-level entries (TypeId == -1) so the
  /// per-type refinements are not double counted.
  int64_t total(CostKind K, int32_t InputId = -1) const;

  /// Algorithmic steps.
  int64_t steps() const { return get({CostKind::Step, -1, -1}); }

  /// Adds every count of \p Other into this map (cost combination,
  /// paper Sec. 2.6).
  void merge(const CostMap &Other);

  /// Rewrites input ids through \p Canonical (union-find collapse after
  /// inputs were merged).
  template <typename Fn> void canonicalizeInputs(Fn Canonical) {
    std::map<CostKey, int64_t> NewCounts;
    for (const auto &[Key, N] : Counts) {
      CostKey K = Key;
      if (K.InputId >= 0)
        K.InputId = Canonical(K.InputId);
      NewCounts[K] += N;
    }
    Counts = std::move(NewCounts);
  }

  bool empty() const { return Counts.empty(); }
  const std::map<CostKey, int64_t> &entries() const { return Counts; }

  std::string str() const;

private:
  std::map<CostKey, int64_t> Counts;
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_COSTMAP_H

//===- core/Grouping.h - Grouping repetitions into algorithms ---*- C++-*-===//
///
/// \file
/// Partitions the repetition tree into *algorithms* (paper Sec. 2.5):
/// connected subtrees whose nodes access at least one common input.
/// Alternative strategies: SameMethod (the paper's "one could envision"
/// remark) and CommonInput+IndexDataflow (the Sec. 5 extension that
/// repairs array loop nests, see analysis/IndexDataflow.h).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_GROUPING_H
#define ALGOPROF_CORE_GROUPING_H

#include "analysis/IndexDataflow.h"
#include "core/InputTable.h"
#include "core/RepetitionTree.h"
#include "vm/Interpreter.h"

#include <vector>

namespace algoprof {
namespace prof {

/// Strategy for deciding whether a child repetition belongs to its
/// parent's algorithm.
enum class GroupingStrategy {
  CommonInput,              ///< Paper default: share >= 1 input.
  SameMethod,               ///< Both are loops of the same method.
  CommonInputPlusDataflow,  ///< CommonInput, plus index-dataflow links.
};

const char *groupingStrategyName(GroupingStrategy S);

/// One algorithm: a connected subgraph of the repetition tree.
struct Algorithm {
  int32_t Id = -1;
  const RepetitionNode *Root = nullptr;
  std::vector<const RepetitionNode *> Nodes; ///< Pre-order, Root first.
  std::vector<int32_t> InputIds;             ///< Canonical, ascending.

  bool contains(const RepetitionNode *N) const {
    for (const RepetitionNode *Member : Nodes)
      if (Member == N)
        return true;
    return false;
  }
};

/// Groups the repetition tree into algorithms. \p Dataflow is consulted
/// only for CommonInputPlusDataflow and may be null otherwise. The tree
/// root is excluded; every top-level repetition starts a group.
std::vector<Algorithm>
groupAlgorithms(const RepetitionTree &Tree, const InputTable &Inputs,
                const vm::PreparedProgram &P, GroupingStrategy Strategy,
                const analysis::IndexDataflow *Dataflow = nullptr);

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_GROUPING_H

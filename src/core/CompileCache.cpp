//===- core/CompileCache.cpp ----------------------------------------------===//

#include "core/CompileCache.h"

#include "obs/Obs.h"
#include "support/Diagnostics.h"

#include <algorithm>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

/// FNV-1a 64: tiny, dependency-free, and good enough — collisions only
/// cost a chain walk plus one string compare, never a wrong answer.
uint64_t fnv1a64(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

CompileCache::Result CompileCache::get(const std::string &Source) {
  const uint64_t Key = fnv1a64(Source);
  std::shared_ptr<Entry> E;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<std::shared_ptr<Entry>> &Chain = Entries[Key];
    for (const std::shared_ptr<Entry> &C : Chain)
      if (C->Source == Source) {
        E = C;
        break;
      }
    if (!E) {
      E = std::make_shared<Entry>();
      E->Source = Source;
      Chain.push_back(E);
      Owner = true;
      S.Compiles += 1;
    } else {
      S.Hits += 1;
    }
  }
  if (Owner) {
    obs::addCount(obs::Counter::CorpusCompiles);
    // Compile outside every cache lock: other sources compile
    // concurrently, and same-source requests block on this entry only.
    Result R;
    DiagnosticEngine Diags;
    std::unique_ptr<CompiledProgram> CP = compileMiniJ(Source, Diags);
    if (CP)
      R.Program = std::shared_ptr<const CompiledProgram>(std::move(CP));
    else
      R.Error = Diags.hasErrors() ? Diags.str() : "compilation failed";
    {
      std::lock_guard<std::mutex> Lock(E->M);
      E->R = std::move(R);
      E->Done = true;
    }
    E->Cv.notify_all();
    std::lock_guard<std::mutex> Lock(E->M);
    return E->R;
  }
  obs::addCount(obs::Counter::CorpusCompileHits);
  std::unique_lock<std::mutex> Lock(E->M);
  E->Cv.wait(Lock, [&] { return E->Done; });
  return E->R;
}

size_t CompileCache::invalidateErrors() {
  std::lock_guard<std::mutex> Lock(M);
  size_t Purged = 0;
  for (auto It = Entries.begin(); It != Entries.end();) {
    std::vector<std::shared_ptr<Entry>> &Chain = It->second;
    Chain.erase(std::remove_if(Chain.begin(), Chain.end(),
                               [&](const std::shared_ptr<Entry> &E) {
                                 // Lock order M -> E->M is safe: the
                                 // compile path never acquires M while
                                 // holding an entry lock.
                                 std::lock_guard<std::mutex> EL(E->M);
                                 if (!E->Done || E->R.ok())
                                   return false;
                                 Purged += 1;
                                 return true;
                               }),
                Chain.end());
    if (Chain.empty())
      It = Entries.erase(It);
    else
      ++It;
  }
  S.ErrorsInvalidated += Purged;
  return Purged;
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

//===- core/CompileCache.cpp ----------------------------------------------===//

#include "core/CompileCache.h"

#include "obs/Obs.h"
#include "support/Diagnostics.h"

using namespace algoprof;
using namespace algoprof::prof;

CompileCache::Result CompileCache::get(const std::string &Source) {
  std::shared_ptr<Entry> E;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    std::shared_ptr<Entry> &Slot = Entries[Source];
    if (!Slot) {
      Slot = std::make_shared<Entry>();
      Owner = true;
      S.Compiles += 1;
    } else {
      S.Hits += 1;
    }
    E = Slot;
  }
  if (Owner) {
    obs::addCount(obs::Counter::CorpusCompiles);
    // Compile outside every cache lock: other sources compile
    // concurrently, and same-source requests block on this entry only.
    Result R;
    DiagnosticEngine Diags;
    std::unique_ptr<CompiledProgram> CP = compileMiniJ(Source, Diags);
    if (CP)
      R.Program = std::shared_ptr<const CompiledProgram>(std::move(CP));
    else
      R.Error = Diags.hasErrors() ? Diags.str() : "compilation failed";
    {
      std::lock_guard<std::mutex> Lock(E->M);
      E->R = std::move(R);
      E->Done = true;
    }
    E->Cv.notify_all();
    std::lock_guard<std::mutex> Lock(E->M);
    return E->R;
  }
  obs::addCount(obs::Counter::CorpusCompileHits);
  std::unique_lock<std::mutex> Lock(E->M);
  E->Cv.wait(Lock, [&] { return E->Done; });
  return E->R;
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

//===- core/InputTable.h - Input identification and sizing ------*- C++-*-===//
///
/// \file
/// Implements the paper's input machinery (Sec. 2.3–2.4, 3.4): discovery
/// of the recursive structures and arrays an algorithm accesses, snapshot
/// traversal, the four snapshot-equivalence criteria, and the size
/// measures (object count per type, traversed array references, array
/// capacity, unique element count).
///
/// Identity of evolving structures is kept with a union-find over input
/// ids plus an object->input membership map. Under the default
/// SomeElements criterion the membership map allows an O(1) fast path on
/// most accesses: a full snapshot traversal is only needed when an access
/// touches objects not yet attributed to any input — exactly the paper's
/// first-access / exit-remeasure optimization.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_INPUTTABLE_H
#define ALGOPROF_CORE_INPUTTABLE_H

#include "analysis/RecursiveTypes.h"
#include "bytecode/Module.h"
#include "vm/Heap.h"
#include "vm/Value.h"

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace algoprof {
namespace prof {

/// The paper's snapshot-equivalence criteria (Sec. 2.4).
enum class EquivalenceStrategy {
  SomeElements, ///< S1 ∩ S2 ≠ ∅ (AlgoProf's default).
  AllElements,  ///< S1 ≡ S2.
  SameArray,    ///< Identical array object (arrays only).
  SameType,     ///< Same structure/element type.
};

const char *equivalenceStrategyName(EquivalenceStrategy S);

/// Which array size measure is the primary one (Sec. 3.4).
enum class ArraySizeMeasure { UniqueElements, Capacity };

/// All size measures taken by one snapshot.
struct SizeMeasures {
  int64_t ObjectCount = 0; ///< Structure objects reached.
  int64_t RefCount = 0;    ///< Non-null refs traversed through arrays.
  int64_t Capacity = 0;    ///< Array capacity.
  int64_t UniqueElems = 0; ///< Array unique-element count.
  std::map<int32_t, int64_t> PerClass; ///< Objects per class id.

  /// The input's headline size. Structure snapshots report their object
  /// count; array snapshots the configured array measure. Inputs that
  /// merged arrays with the structures they hold (e.g. a Vertex[]
  /// registry of a linked graph) may be measured from either side — the
  /// object count wins whenever objects were reached.
  int64_t primary(bool IsArray, ArraySizeMeasure M) const {
    (void)IsArray;
    if (ObjectCount > 0)
      return ObjectCount;
    return M == ArraySizeMeasure::Capacity ? Capacity : UniqueElems;
  }
};

/// One identified input (a recursive structure, an array, or an
/// external stream).
struct InputInfo {
  int32_t Id = -1;
  bool IsArray = false;
  /// An external input/output stream (paper Sec. 2.3 "Program
  /// Inputs/Outputs"); sized by the profiler from the I/O channels, not
  /// by heap traversal.
  bool IsStream = false;
  /// Structures: the type-graph SCC of the structure's classes.
  /// Arrays: the element TypeId.
  int32_t TypeKey = -1;
  std::string Label;
  bool Alive = true; ///< False once merged into another input.

  /// Object ids attributed to this input (structures and ref arrays).
  std::unordered_set<int64_t> Members;
  /// Distinct non-default element values (primitive arrays; identity).
  std::unordered_set<int64_t> ValueSet;
  /// Non-default values observed at *identification time* — the array
  /// contents the SomeElements overlap test actually saw when an
  /// unattributed array was snapshotted. A later sweep merge replays
  /// exactly those comparisons against earlier runs' final value sets,
  /// which is what a serial multi-run session would have compared
  /// against (earlier runs are complete when a later run identifies).
  std::unordered_set<int64_t> SeedValues;
  /// Member objects per class id (classification + tracked sizing).
  std::map<int32_t, int64_t> MemberClassCounts;
  /// Largest capacity seen across the input's backing arrays.
  int64_t MaxCapacitySeen = 0;

  /// Per-run measurement state (SnapshotMode::Tracked). Identification
  /// state above is cumulative across a session's runs — later runs
  /// must compare against everything earlier runs saw — but sizing is
  /// not: every run processes its own heap, so tracked sizes read these
  /// run-scoped counters, which InputTable::beginRun resets. Without
  /// the split, an input unified across runs (e.g. under SameType)
  /// would report earlier runs' sizes for later runs' repetitions.
  int64_t RunMemberCount = 0;
  std::unordered_set<int64_t> RunValueSet;
  std::map<int32_t, int64_t> RunMemberClassCounts;
  int64_t RunMaxCapacitySeen = 0;
};

/// Registry of all inputs discovered during profiled execution.
class InputTable {
public:
  InputTable(const bc::Module &M, const analysis::RecursiveTypes &RT,
             EquivalenceStrategy Strategy)
      : M(M), RT(RT), Strategy(Strategy) {}

  void setHeap(vm::Heap *Heap) { H = Heap; }
  vm::Heap *heap() const { return H; }
  EquivalenceStrategy strategy() const { return Strategy; }

  /// Canonical id after merges.
  int32_t canonical(int32_t Id) const;

  /// Canonical input of \p Obj, or -1 when unattributed.
  int32_t inputOf(vm::ObjId Obj) const;

  /// Identification at a recursive-link field access on \p Obj whose
  /// other end (read or written value) is \p Other. Returns the canonical
  /// input id. May traverse (first access of an unknown structure).
  int32_t onStructureAccess(vm::ObjId Obj, vm::Value Other);

  /// Identification at an array access.
  int32_t onArrayAccess(vm::ObjId Arr);

  /// The lazily created pseudo-input for the external input or output
  /// stream (paper Sec. 2.3: streams and file handles are inputs too).
  int32_t externalStreamInput(bool IsInputStream);

  /// Records the stored value for array-identity tracking and membership
  /// (ref elements join the array's input).
  void onArrayStoreValue(int32_t Input, vm::ObjId Arr, vm::Value V);

  /// Full snapshot from \p Ref attributed to input \p Input; refreshes
  /// membership (SomeElements) and returns the measures. \p Ref may be
  /// any object previously attributed to the input.
  SizeMeasures measureFrom(vm::ObjId Ref, int32_t Input);

  /// O(1) approximate size from tracked membership (no traversal); used
  /// by SnapshotMode::Tracked. Reads the run-scoped counters, so sizes
  /// describe the current run's heap even when the input is shared
  /// across runs.
  SizeMeasures trackedMeasures(int32_t Input) const;

  /// Marks a run boundary: resets every input's run-scoped measurement
  /// counters (InputInfo::Run*). Identification state is untouched.
  /// Called by the profiler at program start.
  void beginRun();

  /// Folds a completed shard table \p Other into this one, replaying the
  /// identification decisions a serial multi-run session would have made
  /// when \p Other's run executed after everything already merged here:
  ///  - stream pseudo-inputs unify with this table's stream inputs;
  ///  - under SameType, inputs unify with the first live input of the
  ///    same kind and type key;
  ///  - under SomeElements, primitive arrays unify with pre-existing
  ///    inputs whose (frozen) value sets overlap the shard input's
  ///    identification-time values (InputInfo::SeedValues);
  ///  - everything else stays a distinct input, preserving the shard's
  ///    creation order, so input ids match the serial session's.
  /// \p ObjIdOffset translates the shard's heap ids into this table's id
  /// space (pass the total object count of all previously merged runs).
  /// Returns the remap from every \p Other input id (dead ones included)
  /// to its canonical id in this table. Exactness caveat: AllElements
  /// cross-run equivalence is not replayed (see docs/parallel_sweeps.md).
  std::vector<int32_t> merge(const InputTable &Other, int64_t ObjIdOffset);

  const InputInfo &info(int32_t Id) const {
    return Inputs[static_cast<size_t>(canonical(Id))];
  }

  /// Ids of all live (unmerged) inputs, ascending.
  std::vector<int32_t> liveInputs() const;

  /// Like liveInputs, but only heap inputs (structures and arrays),
  /// excluding the external-stream pseudo-inputs.
  std::vector<int32_t> liveHeapInputs() const;

  int numInputsEverCreated() const {
    return static_cast<int>(Inputs.size());
  }

  /// Number of traversal snapshots taken (overhead accounting).
  int64_t snapshotsTaken() const { return Snapshots; }

private:
  int32_t newInput(bool IsArray, int32_t TypeKey, std::string Label);
  int32_t merge(int32_t A, int32_t B);
  void assign(vm::ObjId Obj, int32_t Input, int32_t ClassId);
  InputInfo &infoMut(int32_t Id) {
    return Inputs[static_cast<size_t>(canonical(Id))];
  }

  /// BFS over recursive links and arrays from \p Start (a class
  /// instance); fills \p Visited with (objId, classId-or-minus-1 for
  /// arrays).
  SizeMeasures traverseStructure(
      vm::ObjId Start,
      std::vector<std::pair<vm::ObjId, int32_t>> &Visited) const;

  SizeMeasures measureArrayObject(vm::ObjId Arr) const;

  /// How many of an input's members are arrays (backing storage rather
  /// than structure elements).
  int64_t countArrayMembers(const InputInfo &Info) const;

  int32_t identifyStructureSnapshot(vm::ObjId Start);
  int32_t identifyArraySnapshot(vm::ObjId Arr);

  const bc::Module &M;
  const analysis::RecursiveTypes &RT;
  EquivalenceStrategy Strategy;
  vm::Heap *H = nullptr;

  std::vector<InputInfo> Inputs;
  std::vector<int32_t> Parent; ///< Union-find over input ids.
  int32_t InputStreamId = -1;
  int32_t OutputStreamId = -1;
  std::unordered_map<int64_t, int32_t> ObjToInput;
  mutable int64_t Snapshots = 0;
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_INPUTTABLE_H

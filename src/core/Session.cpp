//===- core/Session.cpp ---------------------------------------------------===//

#include "core/Session.h"

#include "bytecode/Compiler.h"
#include "bytecode/Verifier.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "obs/Obs.h"
#include "parallel/SweepEngine.h"

#include <algorithm>

using namespace algoprof;
using namespace algoprof::prof;

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

int32_t CompiledProgram::entryMethod(const std::string &Cls,
                                     const std::string &Method) const {
  int32_t Id = Mod->findMethodId(Cls, Method);
  if (Id < 0)
    return -1;
  const bc::MethodInfo &M = Mod->Methods[static_cast<size_t>(Id)];
  if (!M.IsStatic || M.NumArgs != 0)
    return -1;
  return Id;
}

std::unique_ptr<CompiledProgram>
algoprof::prof::compileMiniJ(const std::string &Source,
                             DiagnosticEngine &Diags) {
  auto CP = std::make_unique<CompiledProgram>();
  CP->Ast = parseMiniJ(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  if (!runSema(*CP->Ast, Diags))
    return nullptr;
  CP->Mod = compileProgram(*CP->Ast, Diags);
  if (!CP->Mod)
    return nullptr;
  // Defense in depth: the interpreter assumes well-formed code; a
  // verifier failure here is a compiler bug, reported as a diagnostic
  // rather than as undefined behavior at run time.
  std::vector<std::string> Problems = bc::verifyModule(*CP->Mod);
  if (!Problems.empty()) {
    for (const std::string &P : Problems)
      Diags.error({}, "internal: bytecode verification failed: " + P);
    return nullptr;
  }
  {
    obs::ScopedSpan Span(obs::Phase::Prepare);
    CP->Prep = vm::PreparedProgram::prepare(*CP->Mod);
  }
  {
    obs::ScopedSpan Span(obs::Phase::Dataflow);
    CP->Dataflow = analysis::computeIndexDataflow(*CP->Ast);
  }
  return CP;
}

vm::RunResult algoprof::prof::runPlain(const CompiledProgram &CP,
                                       const std::string &Cls,
                                       const std::string &Method,
                                       vm::IoChannels *Io,
                                       const vm::RunOptions &Opts) {
  int32_t Entry = CP.entryMethod(Cls, Method);
  if (Entry < 0) {
    vm::RunResult R;
    R.Status = vm::RunStatus::Trapped;
    R.TrapMessage = "no static no-arg method " + Cls + "." + Method;
    return R;
  }
  vm::Interpreter Interp(CP.Prep);
  vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP.Mod);
  vm::IoChannels LocalIo;
  return Interp.run(Entry, /*Listener=*/nullptr, Plan, Io ? *Io : LocalIo,
                    Opts);
}

//===----------------------------------------------------------------------===//
// ProfileSession
//===----------------------------------------------------------------------===//

vm::InstrumentationPlan
algoprof::prof::makeInstrumentationPlan(const CompiledProgram &CP,
                                        bool AllMethods) {
  if (AllMethods)
    return vm::InstrumentationPlan::forAlgoProfAllMethods(
        *CP.Mod, CP.Prep.RecTypes);
  return vm::InstrumentationPlan::forAlgoProf(*CP.Mod, CP.Prep.RecTypes,
                                              CP.Prep.Calls);
}

ProfileSession::ProfileSession(const CompiledProgram &CP,
                               SessionOptions Opts)
    : CP(CP), Opts(Opts),
      Plan(makeInstrumentationPlan(CP, Opts.AllMethodsPlan)),
      Interp(CP.Prep), Prof(CP.Prep, Opts.Profile) {}

vm::RunResult ProfileSession::run(const std::string &Cls,
                                  const std::string &Method) {
  vm::IoChannels Io;
  return run(Cls, Method, Io);
}

vm::RunResult ProfileSession::run(const std::string &Cls,
                                  const std::string &Method,
                                  vm::IoChannels &Io) {
  int32_t Entry = CP.entryMethod(Cls, Method);
  if (Entry < 0) {
    vm::RunResult R;
    R.Status = vm::RunStatus::Trapped;
    R.TrapMessage = "no static no-arg method " + Cls + "." + Method;
    return R;
  }
  vm::RunResult R = Interp.run(Entry, &Prof, Plan, Io, Opts.Run);
  // Reclaim run-scoped heap memory. recycle() keeps the id space
  // advancing, so ids recorded by this run's profiling stay unique
  // forever — a reset() here would alias the next run's objects into
  // the profiler's input membership maps.
  Interp.heap().recycle();
  return R;
}

std::vector<Algorithm>
ProfileSession::algorithms(GroupingStrategy Strategy) const {
  return groupAlgorithms(Prof.tree(), Prof.inputs(), CP.Prep, Strategy,
                         &CP.Dataflow);
}

const AlgorithmProfile::InputSeries *
AlgorithmProfile::primarySeries() const {
  for (const InputSeries &S : Series)
    if (S.Interesting)
      return &S;
  return nullptr;
}

std::vector<AlgorithmProfile>
ProfileSession::buildProfiles(GroupingStrategy Strategy) const {
  return buildProfilesFrom(Prof.tree(), Prof.inputs(), CP, Strategy);
}

std::vector<AlgorithmProfile>
algoprof::prof::buildProfilesFrom(const RepetitionTree &Tree,
                                  const InputTable &Inputs,
                                  const CompiledProgram &CP,
                                  GroupingStrategy Strategy) {
  obs::ScopedSpan Span(obs::Phase::BuildProfiles);
  std::vector<Algorithm> Algos;
  {
    obs::ScopedTimer Timer(obs::Phase::Grouping);
    Algos = groupAlgorithms(Tree, Inputs, CP.Prep, Strategy, &CP.Dataflow);
  }
  std::vector<AlgorithmProfile> Profiles;
  for (Algorithm &A : Algos) {
    AlgorithmProfile AP;
    AP.Algo = std::move(A);
    AP.Invocations = combineInvocations(AP.Algo, Inputs);
    {
      obs::ScopedTimer Timer(obs::Phase::Classify);
      AP.Class = classifyAlgorithm(AP.Algo, AP.Invocations, Inputs,
                                   *CP.Mod);
    }
    AP.Label = AP.Class.label(Inputs);
    // Pool the algorithm's inputs by kind and extract one series per
    // kind across all root invocations.
    std::map<std::string, std::vector<int32_t>> Kinds;
    for (int32_t InputId : AP.Algo.InputIds)
      Kinds[Inputs.info(InputId).Label].push_back(InputId);
    for (auto &[Kind, Ids] : Kinds) {
      AlgorithmProfile::InputSeries S;
      S.Kind = Kind;
      S.InputIds = Ids;
      S.Series = extractPooledSeries(AP.Invocations, Ids, CostKind::Step);
      S.Interesting = isInterestingSeries(S.Series);
      if (S.Interesting)
        S.Fit = fit::fitBest(S.Series);
      // Per-measure plots (paper Sec. 3.5); constant or absent measures
      // are excluded by the isInterestingSeries heuristic.
      for (CostKind Measure :
           {CostKind::StructGet, CostKind::StructPut, CostKind::ArrayLoad,
            CostKind::ArrayStore}) {
        auto MeasureSeries =
            extractPooledSeries(AP.Invocations, Ids, Measure);
        if (!isInterestingSeries(MeasureSeries))
          continue;
        fit::FitResult F = fit::fitBest(MeasureSeries);
        if (F.Valid)
          S.MeasureFits.emplace(Measure, F);
      }
      AP.Series.push_back(std::move(S));
    }
    Profiles.push_back(std::move(AP));
  }
  return Profiles;
}

//===----------------------------------------------------------------------===//
// ProfileDriver
//===----------------------------------------------------------------------===//

ProfileDriver::ProfileDriver(const CompiledProgram &CP, SessionOptions Opts)
    : Opts(Opts) {
  // A serial accumulating session cannot un-merge a failed run, so any
  // configuration that may quarantine (non-Fail policy, or run-scoped
  // faults armed) routes through the sweep engine even at Jobs == 1 — a
  // one-worker sweep is byte-identical to the serial session
  // (ParallelSweepTest locks this), so the output is unchanged.
  bool NeedsEngine = Opts.Jobs != 1 ||
                     Opts.Policy != resilience::FailurePolicy::Fail ||
                     Opts.Faults.hasRunFaults();
  if (NeedsEngine)
    Engine = std::make_unique<parallel::SweepEngine>(CP, Opts);
  else
    Serial = std::make_unique<ProfileSession>(CP, Opts);
}

ProfileDriver::~ProfileDriver() = default;

std::vector<vm::RunResult> ProfileDriver::runAll(const std::string &Cls,
                                                 const std::string &Method) {
  if (Engine) {
    parallel::SweepResult SR = Engine->sweep(Cls, Method);
    for (resilience::FailureInfo &FI : SR.Failures)
      Failures.push_back(std::move(FI));
    MergedAny = MergedAny || SR.MergedRuns > 0;
    return std::move(SR.Runs);
  }
  // Serial path: same run plan, executed in place on the accumulating
  // session.
  std::vector<vm::RunResult> Results;
  size_t NumRuns = Opts.Seeds.empty()
                       ? static_cast<size_t>(std::max(1, Opts.Runs))
                       : Opts.Seeds.size();
  Results.reserve(NumRuns);
  for (size_t I = 0; I < NumRuns; ++I) {
    vm::IoChannels Io;
    if (!Opts.Seeds.empty())
      Io.Input.push_back(Opts.Seeds[I]);
    else
      Io.Input = Opts.Input;
    vm::RunResult R = Serial->run(Cls, Method, Io);
    if (!R.ok()) {
      resilience::FailureInfo FI;
      FI.Run = static_cast<int64_t>(I);
      FI.Status = R.Status;
      FI.Budget = R.Budget;
      FI.Message = R.TrapMessage;
      FI.Injected = R.Injected;
      Failures.push_back(std::move(FI));
    }
    MergedAny = true;
    Results.push_back(std::move(R));
  }
  return Results;
}

bool ProfileDriver::usable() const {
  if (!MergedAny)
    return false;
  for (const resilience::FailureInfo &F : Failures)
    if (!F.Quarantined)
      return false;
  return true;
}

const RepetitionTree &ProfileDriver::tree() const {
  return Engine ? Engine->tree() : Serial->tree();
}

const InputTable &ProfileDriver::inputs() const {
  return Engine ? Engine->inputs() : Serial->inputs();
}

std::vector<AlgorithmProfile>
ProfileDriver::buildProfiles(GroupingStrategy Strategy) const {
  return Engine ? Engine->buildProfiles(Strategy)
                : Serial->buildProfiles(Strategy);
}

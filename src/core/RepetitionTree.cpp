//===- core/RepetitionTree.cpp --------------------------------------------===//

#include "core/RepetitionTree.h"

#include "obs/Obs.h"

#include <cassert>
#include <set>

using namespace algoprof;
using namespace algoprof::prof;

RepetitionNode *RepetitionNode::findChild(const RepKey &K) {
  for (const auto &C : Children)
    if (C->Key == K)
      return C.get();
  return nullptr;
}

int64_t RepetitionNode::totalSteps() const {
  int64_t Sum = 0;
  for (const InvocationRecord &R : History)
    if (R.Finalized)
      Sum += R.Costs.steps();
  return Sum;
}

std::vector<int32_t> RepetitionNode::touchedInputs() const {
  std::set<int32_t> Ids;
  for (const InvocationRecord &R : History)
    for (const auto &[Id, Use] : R.Inputs)
      Ids.insert(Id);
  return {Ids.begin(), Ids.end()};
}

RepetitionTree::RepetitionTree() : Root(std::make_unique<RepetitionNode>()) {
  Root->Key = RepKey{RepKind::Root, -1, -1};
  Root->Name = "Program";
}

RepetitionNode &RepetitionTree::getOrCreateChild(RepetitionNode &Parent,
                                                 const RepKey &K,
                                                 const std::string &Name) {
  if (RepetitionNode *Existing = Parent.findChild(K))
    return *Existing;
  auto Node = std::make_unique<RepetitionNode>();
  Node->Key = K;
  Node->Name = Name;
  Node->Parent = &Parent;
  Parent.Children.push_back(std::move(Node));
  obs::addCount(obs::Counter::TreeNodes);
  return *Parent.Children.back();
}

void RepetitionTree::mergeSubtree(RepetitionNode &Dst,
                                  const RepetitionNode &Src,
                                  size_t ParentOffset,
                                  const std::vector<int32_t> &Remap) {
  auto RemapId = [&Remap](int32_t Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Remap.size() &&
           "input id missing from remap");
    return Remap[static_cast<size_t>(Id)];
  };
  size_t MyOffset = Dst.History.size();
  Dst.TotalInvocations += Src.TotalInvocations;
  Dst.History.reserve(MyOffset + Src.History.size());
  for (const InvocationRecord &R : Src.History) {
    InvocationRecord N;
    N.Costs = R.Costs;
    N.Costs.canonicalizeInputs(RemapId);
    N.FoldedCosts = R.FoldedCosts;
    N.FoldedCosts.canonicalizeInputs(RemapId);
    for (const auto &[Id, Use] : R.Inputs) {
      auto [It, Inserted] = N.Inputs.emplace(RemapId(Id), Use);
      if (!Inserted)
        It->second.mergeMax(Use);
    }
    N.ParentNode = Dst.Parent;
    N.ParentInvocation =
        R.ParentInvocation >= 0
            ? R.ParentInvocation + static_cast<int32_t>(ParentOffset)
            : -1;
    N.Finalized = R.Finalized;
    Dst.History.push_back(std::move(N));
  }
  for (const auto &C : Src.Children)
    mergeSubtree(getOrCreateChild(Dst, C->Key, C->Name), *C, MyOffset,
                 Remap);
}

void RepetitionTree::merge(const RepetitionTree &Other,
                           const std::vector<int32_t> &InputRemap) {
  mergeSubtree(*Root, Other.root(), /*ParentOffset=*/0, InputRemap);
}

int RepetitionTree::numRepetitions() const {
  int N = -1; // Exclude the root.
  forEach([&N](const RepetitionNode &) { ++N; });
  return N;
}

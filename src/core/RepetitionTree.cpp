//===- core/RepetitionTree.cpp --------------------------------------------===//

#include "core/RepetitionTree.h"

#include <set>

using namespace algoprof;
using namespace algoprof::prof;

RepetitionNode *RepetitionNode::findChild(const RepKey &K) {
  for (const auto &C : Children)
    if (C->Key == K)
      return C.get();
  return nullptr;
}

int64_t RepetitionNode::totalSteps() const {
  int64_t Sum = 0;
  for (const InvocationRecord &R : History)
    if (R.Finalized)
      Sum += R.Costs.steps();
  return Sum;
}

std::vector<int32_t> RepetitionNode::touchedInputs() const {
  std::set<int32_t> Ids;
  for (const InvocationRecord &R : History)
    for (const auto &[Id, Use] : R.Inputs)
      Ids.insert(Id);
  return {Ids.begin(), Ids.end()};
}

RepetitionTree::RepetitionTree() : Root(std::make_unique<RepetitionNode>()) {
  Root->Key = RepKey{RepKind::Root, -1, -1};
  Root->Name = "Program";
}

RepetitionNode &RepetitionTree::getOrCreateChild(RepetitionNode &Parent,
                                                 const RepKey &K,
                                                 const std::string &Name) {
  if (RepetitionNode *Existing = Parent.findChild(K))
    return *Existing;
  auto Node = std::make_unique<RepetitionNode>();
  Node->Key = K;
  Node->Name = Name;
  Node->Parent = &Parent;
  Parent.Children.push_back(std::move(Node));
  return *Parent.Children.back();
}

int RepetitionTree::numRepetitions() const {
  int N = -1; // Exclude the root.
  forEach([&N](const RepetitionNode &) { ++N; });
  return N;
}

//===- core/CostMap.cpp ---------------------------------------------------===//

#include "core/CostMap.h"

using namespace algoprof;
using namespace algoprof::prof;

const char *algoprof::prof::costKindLabel(CostKind K) {
  switch (K) {
  case CostKind::Step:
    return "STEP";
  case CostKind::StructGet:
    return "GET";
  case CostKind::StructPut:
    return "PUT";
  case CostKind::ArrayLoad:
    return "LOAD";
  case CostKind::ArrayStore:
    return "STORE";
  case CostKind::New:
    return "NEW";
  case CostKind::ArrayNew:
    return "NEWARRAY";
  case CostKind::InputRead:
    return "READ";
  case CostKind::OutputWrite:
    return "WRITE";
  }
  return "<bad-kind>";
}

int64_t CostMap::total(CostKind K, int32_t InputId) const {
  int64_t Sum = 0;
  for (const auto &[Key, N] : Counts) {
    if (Key.Kind != K || Key.TypeId != -1)
      continue;
    if (InputId >= 0 && Key.InputId != InputId)
      continue;
    Sum += N;
  }
  return Sum;
}

void CostMap::merge(const CostMap &Other) {
  for (const auto &[Key, N] : Other.Counts)
    Counts[Key] += N;
}

std::string CostMap::str() const {
  std::string Out;
  for (const auto &[Key, N] : Counts) {
    if (!Out.empty())
      Out += ", ";
    Out += "cost{";
    bool First = true;
    if (Key.InputId >= 0) {
      Out += "input#" + std::to_string(Key.InputId);
      First = false;
    }
    if (Key.TypeId >= 0) {
      if (!First)
        Out += ", ";
      Out += "type#" + std::to_string(Key.TypeId);
      First = false;
    }
    if (!First)
      Out += ", ";
    Out += costKindLabel(Key.Kind);
    Out += "} -> " + std::to_string(N);
  }
  return Out;
}

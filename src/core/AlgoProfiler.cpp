//===- core/AlgoProfiler.cpp ----------------------------------------------===//

#include "core/AlgoProfiler.h"

#include "obs/Obs.h"

#include <algorithm>
#include <cassert>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::vm;

const char *algoprof::prof::snapshotModeName(SnapshotMode Mode) {
  return Mode == SnapshotMode::Eager ? "Eager" : "Tracked";
}

AlgoProfiler::AlgoProfiler(const PreparedProgram &P, ProfileOptions Opts)
    : P(P), Opts(Opts), Inputs(*P.M, P.RecTypes, Opts.Equivalence) {}

AlgoProfiler::~AlgoProfiler() = default;

//===----------------------------------------------------------------------===//
// Activation management
//===----------------------------------------------------------------------===//

AlgoProfiler::Activation &AlgoProfiler::top() {
  assert(!Stack.empty() && "no active repetition (program not started?)");
  return *Stack.back().A;
}

AlgoProfiler::Activation &
AlgoProfiler::pushOwnedActivation(RepetitionNode &Node) {
  auto A = std::make_unique<Activation>();
  A->Node = &Node;

  // Invocation sampling (paper Sec. 3.3): past the dense prefix, the
  // recording stride doubles for every further SampleThreshold records.
  // The program root is never sampled out: it anchors the fold-up chain.
  int64_t Total = Node.TotalInvocations++;
  bool Record = true;
  if (Opts.SampleThreshold > 0 && Node.Key.Kind != RepKind::Root) {
    int64_t Recorded = static_cast<int64_t>(Node.History.size());
    if (Recorded >= Opts.SampleThreshold) {
      int64_t Shift =
          std::min<int64_t>(62, Recorded / Opts.SampleThreshold);
      int64_t Stride = static_cast<int64_t>(1) << Shift;
      Record = Total % Stride == 0;
    }
  }

  if (Record) {
    // Pre-assign the history slot; nested same-node activations finalize
    // in LIFO order, so the slot must be reserved at start.
    A->InvocationIndex = static_cast<int32_t>(Node.History.size());
    Node.History.emplace_back();
    if (!Stack.empty()) {
      Activation &Parent = top();
      InvocationRecord &R =
          Node.History[static_cast<size_t>(A->InvocationIndex)];
      R.ParentNode = Parent.Node;
      R.ParentInvocation = Parent.InvocationIndex;
    }
  } else {
    A->InvocationIndex = -1;
  }
  Activation &Ref = *A;
  OwnerPool.push_back(std::move(A));
  Stack.push_back({&Ref, /*Owner=*/true});
  return Ref;
}

void AlgoProfiler::finalizeTop() {
  assert(!Stack.empty() && Stack.back().Owner &&
         "finalize requires the owning stack entry on top");
  Activation &A = *Stack.back().A;
  if (A.InvocationIndex < 0) {
    // Sampled-out invocation: fold its costs (own + inherited) and its
    // input observations into the parent activation so combined costs
    // of recorded ancestors stay exact; only the per-invocation data
    // point is lost.
    assert(Stack.size() >= 2 && "sampled activation without a parent");
    Activation &Parent = *Stack[Stack.size() - 2].A;
    Parent.FoldedCosts.merge(A.Costs);
    Parent.FoldedCosts.merge(A.FoldedCosts);
    for (auto &[Input, Live] : A.Inputs) {
      auto It = Parent.Inputs.find(Input);
      if (It == Parent.Inputs.end()) {
        LiveUse Folded;
        Folded.LastRef = vm::NullObj; // Remeasure via tracked counts.
        Folded.Use = Live.Use;
        Parent.Inputs.emplace(Input, std::move(Folded));
      } else {
        It->second.Use.mergeMax(Live.Use);
      }
    }
    Stack.pop_back();
    assert(!OwnerPool.empty() && OwnerPool.back().get() == &A &&
           "owner pool out of sync with the shadow stack");
    OwnerPool.pop_back();
    return;
  }
  InvocationRecord &R =
      A.Node->History[static_cast<size_t>(A.InvocationIndex)];

  // remeasureInputs (paper Sec. 3.4): second snapshot from the last
  // accessed reference of every touched input. Stream pseudo-inputs are
  // sized at each read/write, not by traversal.
  for (auto &[Input, Live] : A.Inputs) {
    if (Inputs.info(Input).IsStream)
      continue;
    SizeMeasures Sizes = measureInput(Input, Live.LastRef);
    Live.Use.observe(Sizes.primary(Inputs.info(Input).IsArray,
                                   Opts.ArrayMeasure),
                     Sizes.Capacity, Sizes.UniqueElems, Sizes.RefCount);
  }

  // Collapse inputs that were merged during the invocation.
  R.Costs = std::move(A.Costs);
  R.Costs.canonicalizeInputs(
      [this](int32_t Id) { return Inputs.canonical(Id); });
  R.FoldedCosts = std::move(A.FoldedCosts);
  R.FoldedCosts.canonicalizeInputs(
      [this](int32_t Id) { return Inputs.canonical(Id); });
  for (auto &[Input, Live] : A.Inputs) {
    int32_t Canon = Inputs.canonical(Input);
    auto It = R.Inputs.find(Canon);
    if (It == R.Inputs.end())
      R.Inputs.emplace(Canon, Live.Use);
    else
      It->second.mergeMax(Live.Use);
  }
  R.Finalized = true;

  Stack.pop_back();
  assert(!OwnerPool.empty() && OwnerPool.back().get() == &A &&
         "owner pool out of sync with the shadow stack");
  OwnerPool.pop_back();
}

//===----------------------------------------------------------------------===//
// Input measuring
//===----------------------------------------------------------------------===//

SizeMeasures AlgoProfiler::measureInput(int32_t Input, ObjId Ref) {
  if (Opts.Snapshots == SnapshotMode::Tracked || Ref == NullObj)
    return Inputs.trackedMeasures(Input);
  return Inputs.measureFrom(Ref, Input);
}

void AlgoProfiler::touchInput(Activation &A, int32_t Input, ObjId Ref) {
  auto It = A.Inputs.find(Input);
  if (It == A.Inputs.end()) {
    // First access of this input in this invocation: first snapshot.
    LiveUse Live;
    Live.LastRef = Ref;
    SizeMeasures Sizes = measureInput(Input, Ref);
    Live.Use.observe(Sizes.primary(Inputs.info(Input).IsArray,
                                   Opts.ArrayMeasure),
                     Sizes.Capacity, Sizes.UniqueElems, Sizes.RefCount);
    A.Inputs.emplace(Input, std::move(Live));
    return;
  }
  It->second.LastRef = Ref;
}

//===----------------------------------------------------------------------===//
// Program lifecycle
//===----------------------------------------------------------------------===//

void AlgoProfiler::onProgramStart(const ExecContext &Ctx) {
  Inputs.setHeap(Ctx.TheHeap);
  Io = Ctx.Io;
  // Each run sizes its own heap: tracked measurement counters reset
  // here, while identification state keeps accumulating across runs.
  Inputs.beginRun();
  pushOwnedActivation(Tree.root());
}

void AlgoProfiler::onProgramEnd() {
  assert(Stack.size() == 1 && "unbalanced repetition events");
  finalizeTop();
}

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

std::string AlgoProfiler::loopName(int32_t MethodId, int32_t LoopId) const {
  const bc::MethodInfo &M = P.M->Methods[static_cast<size_t>(MethodId)];
  return M.QualifiedName + " loop#" + std::to_string(LoopId);
}

void AlgoProfiler::onLoopEnter(int32_t MethodId, int32_t LoopId) {
  RepKey Key{RepKind::Loop, MethodId, LoopId};
  RepetitionNode &Node =
      Tree.getOrCreateChild(*top().Node, Key, loopName(MethodId, LoopId));
  pushOwnedActivation(Node);
}

void AlgoProfiler::onLoopBackEdge(int32_t MethodId, int32_t LoopId) {
  obs::addCount(obs::Counter::ListenerEvents);
  Activation &A = top();
  assert((A.Node->Key ==
          RepKey{RepKind::Loop, MethodId, LoopId}) &&
         "back edge fired while another repetition is on top");
  (void)MethodId;
  (void)LoopId;
  A.Costs.add({CostKind::Step, -1, -1});
}

void AlgoProfiler::onLoopExit(int32_t MethodId, int32_t LoopId) {
  assert((top().Node->Key == RepKey{RepKind::Loop, MethodId, LoopId}) &&
         "loop exit fired while another repetition is on top");
  (void)MethodId;
  (void)LoopId;
  finalizeTop();
}

//===----------------------------------------------------------------------===//
// Recursions
//===----------------------------------------------------------------------===//

void AlgoProfiler::onMethodEnter(int32_t MethodId) {
  obs::addCount(obs::Counter::ListenerEvents);
  // findOnPathToRoot: fold a re-entry of an active recursion onto its
  // existing node (paper Sec. 3.2, Method entry).
  RepetitionNode *Found = nullptr;
  for (RepetitionNode *N = top().Node; N && N->Key.Kind != RepKind::Root;
       N = N->Parent) {
    if (N->Key.Kind == RepKind::Recursion && N->Key.MethodId == MethodId) {
      Found = N;
      break;
    }
  }
  if (Found) {
    // Locate the live activation of the folded node (nearest below top).
    Activation *A = nullptr;
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It)
      if (It->A->Node == Found) {
        A = It->A;
        break;
      }
    assert(A && "folded node has no live activation");
    A->Costs.add({CostKind::Step, -1, -1});
    ++A->RecursionDepth;
    Stack.push_back({A, /*Owner=*/false});
    return;
  }

  RepKey Key{RepKind::Recursion, MethodId, -1};
  const bc::MethodInfo &M = P.M->Methods[static_cast<size_t>(MethodId)];
  RepetitionNode &Node = Tree.getOrCreateChild(
      *top().Node, Key, M.QualifiedName + " (recursion)");
  Activation &A = pushOwnedActivation(Node);
  A.RecursionDepth = 1;
}

void AlgoProfiler::onMethodExit(int32_t MethodId) {
  assert(!Stack.empty() && "method exit without entry");
  StackEntry Entry = Stack.back();
  assert(Entry.A->Node->Key.Kind == RepKind::Recursion &&
         Entry.A->Node->Key.MethodId == MethodId &&
         "method exit fired while another repetition is on top");
  (void)MethodId;
  --Entry.A->RecursionDepth;
  if (Entry.Owner) {
    assert(Entry.A->RecursionDepth == 0 &&
           "owner entry popped before folded re-entries");
    finalizeTop();
    return;
  }
  Stack.pop_back();
}

//===----------------------------------------------------------------------===//
// Structure, array, allocation, and I/O events
//===----------------------------------------------------------------------===//

void AlgoProfiler::recordStructureAccess(ObjId Obj, Value Other,
                                         CostKind Kind) {
  int32_t Input = Inputs.onStructureAccess(Obj, Other);
  Activation &A = top();
  A.Costs.add({Kind, Input, -1});
  // Per-element-type refinement (paper: cost{input, type, GET/PUT}).
  A.Costs.add({Kind, Input, Inputs.heap()->get(Obj).ClassId});
  touchInput(A, Input, Obj);
}

void AlgoProfiler::onGetField(ObjId Obj, int32_t FieldId, Value V) {
  obs::addCount(obs::Counter::ListenerEvents);
  (void)FieldId;
  recordStructureAccess(Obj, V, CostKind::StructGet);
}

void AlgoProfiler::onPutField(ObjId Obj, int32_t FieldId, Value New) {
  obs::addCount(obs::Counter::ListenerEvents);
  (void)FieldId;
  recordStructureAccess(Obj, New, CostKind::StructPut);
}

void AlgoProfiler::recordArrayAccess(ObjId Arr, CostKind Kind,
                                     Value Elem) {
  int32_t Input = Inputs.onArrayAccess(Arr);
  Inputs.onArrayStoreValue(Input, Arr, Elem);
  Activation &A = top();
  A.Costs.add({Kind, Input, -1});
  touchInput(A, Input, Arr);
}

void AlgoProfiler::onArrayLoad(ObjId Arr, int64_t Index, Value V) {
  obs::addCount(obs::Counter::ListenerEvents);
  (void)Index;
  recordArrayAccess(Arr, CostKind::ArrayLoad, V);
}

void AlgoProfiler::onArrayStore(ObjId Arr, int64_t Index, Value New) {
  obs::addCount(obs::Counter::ListenerEvents);
  (void)Index;
  recordArrayAccess(Arr, CostKind::ArrayStore, New);
}

void AlgoProfiler::onNewObject(ObjId Obj, int32_t ClassId) {
  (void)Obj;
  top().Costs.add({CostKind::New, -1, ClassId});
}

void AlgoProfiler::onNewArray(ObjId Arr, bc::TypeId ArrayType, int64_t Len) {
  (void)Arr;
  (void)Len;
  top().Costs.add({CostKind::ArrayNew, -1, ArrayType});
}

void AlgoProfiler::touchStream(Activation &A, int32_t Input,
                               int64_t Size) {
  LiveUse &Live = A.Inputs[Input];
  Live.LastRef = vm::NullObj;
  Live.Use.observe(Size, /*Capacity=*/0, /*Unique=*/0, /*Refs=*/0);
}

void AlgoProfiler::onInputRead() {
  Activation &A = top();
  // The external stream is an input too (paper Sec. 2.3); the cost is
  // keyed by it, like structure accesses, and its size is the total
  // data available on the channel ("the size of the file").
  int32_t Stream = Inputs.externalStreamInput(/*IsInputStream=*/true);
  A.Costs.add({CostKind::InputRead, Stream, -1});
  touchStream(A, Stream,
              Io ? static_cast<int64_t>(Io->Input.size()) : 0);
}

void AlgoProfiler::onOutputWrite() {
  Activation &A = top();
  int32_t Stream = Inputs.externalStreamInput(/*IsInputStream=*/false);
  A.Costs.add({CostKind::OutputWrite, Stream, -1});
  // The output's size is what has been produced so far; the max rule
  // turns this into the run's final output size.
  touchStream(A, Stream,
              Io ? static_cast<int64_t>(Io->Output.size()) : 0);
}

//===- core/AlgorithmSummary.cpp ------------------------------------------===//

#include "core/AlgorithmSummary.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace algoprof;
using namespace algoprof::prof;

std::vector<CombinedInvocation>
algoprof::prof::combineInvocations(const Algorithm &A, const InputTable &T) {
  // Working copy of every member node's records, canonicalized.
  std::unordered_map<const RepetitionNode *, std::vector<CombinedInvocation>>
      Acc;
  for (const RepetitionNode *N : A.Nodes) {
    std::vector<CombinedInvocation> &Rows = Acc[N];
    Rows.resize(N->History.size());
    for (size_t I = 0; I < N->History.size(); ++I) {
      const InvocationRecord &R = N->History[I];
      Rows[I].Finalized = R.Finalized;
      Rows[I].Costs = R.Costs;
      // Costs folded up from sampled-out children belong to the
      // combined invocation cost.
      Rows[I].Costs.merge(R.FoldedCosts);
      Rows[I].Costs.canonicalizeInputs(
          [&T](int32_t Id) { return T.canonical(Id); });
      for (const auto &[Id, Use] : R.Inputs) {
        int32_t Canon = T.canonical(Id);
        auto It = Rows[I].Inputs.find(Canon);
        if (It == Rows[I].Inputs.end())
          Rows[I].Inputs.emplace(Canon, Use);
        else
          It->second.mergeMax(Use);
      }
    }
  }

  // Deepest-first: fold each record into its parent's record when the
  // parent node belongs to the same algorithm.
  std::vector<const RepetitionNode *> Order = A.Nodes;
  std::sort(Order.begin(), Order.end(),
            [](const RepetitionNode *X, const RepetitionNode *Y) {
              return X->depth() > Y->depth();
            });
  for (const RepetitionNode *N : Order) {
    if (N == A.Root)
      continue;
    std::vector<CombinedInvocation> &Rows = Acc[N];
    for (size_t I = 0; I < N->History.size(); ++I) {
      const InvocationRecord &R = N->History[I];
      if (!R.Finalized || !R.ParentNode || !A.contains(R.ParentNode))
        continue;
      // Sampled-out parent invocation: the child record has nowhere to
      // fold into (paper Sec. 3.3 sampling trades completeness for
      // memory).
      if (R.ParentInvocation < 0)
        continue;
      auto ParentIt = Acc.find(R.ParentNode);
      if (ParentIt == Acc.end())
        continue;
      assert(R.ParentInvocation >= 0 &&
             R.ParentInvocation <
                 static_cast<int32_t>(ParentIt->second.size()) &&
             "parent invocation index out of range");
      CombinedInvocation &Parent =
          ParentIt->second[static_cast<size_t>(R.ParentInvocation)];
      CombinedInvocation &Child = Rows[I];
      Parent.Costs.merge(Child.Costs);
      for (const auto &[Id, Use] : Child.Inputs) {
        auto It = Parent.Inputs.find(Id);
        if (It == Parent.Inputs.end())
          Parent.Inputs.emplace(Id, Use);
        else
          It->second.mergeMax(Use);
      }
    }
  }

  std::vector<CombinedInvocation> Result;
  for (CombinedInvocation &Row : Acc[A.Root])
    if (Row.Finalized)
      Result.push_back(std::move(Row));
  return Result;
}

std::vector<SeriesPoint>
algoprof::prof::extractSeries(
    const std::vector<CombinedInvocation> &Invocations, int32_t InputId,
    CostKind K) {
  std::vector<SeriesPoint> Series;
  for (const CombinedInvocation &Inv : Invocations) {
    auto It = Inv.Inputs.find(InputId);
    if (It == Inv.Inputs.end())
      continue;
    SeriesPoint Pt;
    Pt.X = static_cast<double>(It->second.MaxSize);
    Pt.Y = static_cast<double>(K == CostKind::Step
                                   ? Inv.Costs.steps()
                                   : Inv.Costs.total(K, InputId));
    Series.push_back(Pt);
  }
  return Series;
}

std::vector<SeriesPoint> algoprof::prof::extractPooledSeries(
    const std::vector<CombinedInvocation> &Invocations,
    const std::vector<int32_t> &InputIds, CostKind K) {
  std::vector<SeriesPoint> Series;
  for (const CombinedInvocation &Inv : Invocations) {
    int64_t BestSize = -1;
    int64_t Cost = 0;
    for (int32_t Id : InputIds) {
      auto It = Inv.Inputs.find(Id);
      if (It == Inv.Inputs.end())
        continue;
      BestSize = std::max(BestSize, It->second.MaxSize);
      if (K != CostKind::Step)
        Cost += Inv.Costs.total(K, Id);
    }
    if (BestSize < 0)
      continue;
    SeriesPoint Pt;
    Pt.X = static_cast<double>(BestSize);
    Pt.Y = static_cast<double>(K == CostKind::Step ? Inv.Costs.steps()
                                                   : Cost);
    Series.push_back(Pt);
  }
  return Series;
}

bool algoprof::prof::isInterestingSeries(
    const std::vector<SeriesPoint> &Series) {
  if (Series.size() < 3)
    return false;
  double MinX = Series.front().X, MaxX = Series.front().X;
  double MinY = Series.front().Y, MaxY = Series.front().Y;
  for (const SeriesPoint &Pt : Series) {
    MinX = std::min(MinX, Pt.X);
    MaxX = std::max(MaxX, Pt.X);
    MinY = std::min(MinY, Pt.Y);
    MaxY = std::max(MaxY, Pt.Y);
  }
  return MaxX > MinX && MaxY > MinY;
}

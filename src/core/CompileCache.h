//===- core/CompileCache.h - Shared compilation cache -----------*- C++-*-===//
///
/// \file
/// A source-keyed, thread-safe memoizer over prof::compileMiniJ for
/// corpus-scale batch profiling: when many sweep jobs profile the same
/// program over different seeds, the program is compiled exactly once
/// and every other request blocks until (or arrives after) that one
/// compilation finishes, then shares the immutable CompiledProgram.
/// Compile *errors* are cached too — a corpus with a broken program
/// reports the same rendered diagnostics for every job that wanted it,
/// without recompiling.
///
/// Obs: corpus_compiles counts actual compilations, corpus_compile_hits
/// counts requests served from the cache (including ones that waited on
/// an in-flight compile).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_COMPILECACHE_H
#define ALGOPROF_CORE_COMPILECACHE_H

#include "core/Session.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace algoprof {
namespace prof {

class CompileCache {
public:
  /// One resolved cache entry: the compiled program, or the rendered
  /// diagnostics of the failed compilation (Program null, Error set).
  struct Result {
    std::shared_ptr<const CompiledProgram> Program;
    std::string Error;
    bool ok() const { return Program != nullptr; }
  };

  struct Stats {
    uint64_t Compiles = 0;
    uint64_t Hits = 0;
  };

  /// Returns the compiled form of \p Source, compiling it on the
  /// calling thread if this is the first request. Concurrent requests
  /// for the same source block until the first one resolves. Safe to
  /// call from pool workers.
  Result get(const std::string &Source);

  Stats stats() const;

private:
  struct Entry {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false; ///< Under M.
    Result R;          ///< Immutable once Done.
  };

  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<Entry>> Entries;
  Stats S; ///< Under M.
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_COMPILECACHE_H

//===- core/CompileCache.h - Shared compilation cache -----------*- C++-*-===//
///
/// \file
/// A content-keyed, thread-safe memoizer over prof::compileMiniJ for
/// corpus-scale batch profiling and the profiling daemon: when many
/// sweep jobs profile the same program over different seeds, the
/// program is compiled exactly once and every other request blocks
/// until (or arrives after) that one compilation finishes, then shares
/// the immutable CompiledProgram.
///
/// Keying is by the source *content* (a 64-bit FNV-1a hash with exact
/// collision chains), never by a name or path: two requests share an
/// entry iff their bytes are identical, so an edited program can never
/// be served a stale compilation — or a stale error — from before the
/// edit. Compile errors are cached too (same content, same rendered
/// diagnostics, no recompile), but a long-lived daemon accumulates one
/// error entry per broken submission; invalidateErrors() purges the
/// resolved failures so the map does not grow without bound.
///
/// Obs: corpus_compiles counts actual compilations, corpus_compile_hits
/// counts requests served from the cache (including ones that waited on
/// an in-flight compile).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_COMPILECACHE_H
#define ALGOPROF_CORE_COMPILECACHE_H

#include "core/Session.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace algoprof {
namespace prof {

class CompileCache {
public:
  /// One resolved cache entry: the compiled program, or the rendered
  /// diagnostics of the failed compilation (Program null, Error set).
  struct Result {
    std::shared_ptr<const CompiledProgram> Program;
    std::string Error;
    bool ok() const { return Program != nullptr; }
  };

  struct Stats {
    uint64_t Compiles = 0;
    uint64_t Hits = 0;
    uint64_t ErrorsInvalidated = 0; ///< Entries purged by invalidateErrors.
  };

  /// Returns the compiled form of \p Source, compiling it on the
  /// calling thread if this is the first request for this content.
  /// Concurrent requests for identical source block until the first
  /// one resolves. Safe to call from pool workers.
  Result get(const std::string &Source);

  /// Drops every *resolved* error entry, so the next request for that
  /// content compiles afresh. In-flight compilations are left alone
  /// (their waiters hold the entry by shared_ptr). Returns the number
  /// of entries purged. The daemon calls this between sessions to keep
  /// a stream of broken submissions from pinning memory forever.
  size_t invalidateErrors();

  Stats stats() const;

private:
  struct Entry {
    std::string Source; ///< Exact content (hash-collision tiebreak).
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false; ///< Under M.
    Result R;          ///< Immutable once Done.
  };

  mutable std::mutex M;
  /// FNV-1a(content) -> all entries with that hash. Chains are almost
  /// always length 1; the exact Source comparison makes collisions a
  /// performance wrinkle, never a correctness hazard.
  std::map<uint64_t, std::vector<std::shared_ptr<Entry>>> Entries;
  Stats S; ///< Under M.
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_COMPILECACHE_H

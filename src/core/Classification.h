//===- core/Classification.h - Algorithm classification ---------*- C++-*-===//
///
/// \file
/// The paper's algorithm taxonomy (Sec. 2.8): per accessed input an
/// algorithm is a Construction, Modification, or Traversal (mutually
/// exclusive, in that precedence order); independently it may be an
/// Input and/or Output algorithm; with no inputs at all it is
/// data-structure-less.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_CLASSIFICATION_H
#define ALGOPROF_CORE_CLASSIFICATION_H

#include "core/AlgorithmSummary.h"

#include <string>
#include <vector>

namespace algoprof {
namespace prof {

/// Per-input classification outcomes.
enum class AlgorithmClass {
  Construction,
  Modification,
  Traversal,
  Untouched, ///< Input known but no operation counted (degenerate).
};

const char *algorithmClassName(AlgorithmClass C);

/// Classification of one algorithm.
struct Classification {
  struct PerInput {
    int32_t InputId = -1;
    AlgorithmClass Class = AlgorithmClass::Untouched;
  };
  std::vector<PerInput> Inputs;
  bool DoesInput = false;
  bool DoesOutput = false;

  bool dataStructureless() const { return Inputs.empty(); }

  /// "Modification of a Node-based recursive structure" /
  /// "Data-structure-less algorithm" / ... (labels need the input table
  /// for input type names).
  std::string label(const InputTable &T) const;
};

/// Classifies an algorithm from its combined invocations.
Classification classifyAlgorithm(
    const Algorithm &A, const std::vector<CombinedInvocation> &Invocations,
    const InputTable &T, const bc::Module &M);

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_CLASSIFICATION_H

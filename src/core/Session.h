//===- core/Session.h - High-level AlgoProf API -----------------*- C++-*-===//
///
/// \file
/// The library's front door: compile MiniJ source, run it (plain or
/// profiled, repeatedly, over representative inputs — the paper's "set
/// of program runs"), and extract algorithm profiles: the repetition
/// tree, the grouped algorithms, their classifications, their
/// <size, cost> series, and fitted cost functions.
///
/// The one true path: build a SessionOptions (every knob of a
/// profiling session — profiler options, instrumentation plan choice,
/// VM limits, run count, jobs, seeds, input channel — lives there and
/// nowhere else), hand it to a ProfileDriver, and read the profiles
/// back. The driver picks the serial ProfileSession (Jobs == 1) or the
/// sharded parallel::SweepEngine (any other Jobs) behind one API; the
/// output is byte-identical either way:
///
/// \code
///   DiagnosticEngine Diags;
///   auto CP = compileMiniJ(Source, Diags);
///   SessionOptions SO;
///   SO.Runs = 16;
///   SO.Jobs = 4;
///   ProfileDriver D(*CP, SO);
///   D.runAll("Main", "main");
///   for (const AlgorithmProfile &AP : D.buildProfiles())
///     ... AP.Label, AP.Series[i].Fit.formula() ...
/// \endcode
///
/// ProfileSession remains available for callers that drive runs one at
/// a time (interleaving their own I/O between runs); it consumes the
/// same SessionOptions.
///
/// Observability is ambient rather than an options knob: every session
/// (serial or sharded) reports into the process-wide obs registry
/// (obs/Obs.h) — phase timers, volume counters, and, when
/// obs::enableTracing is on, per-shard trace tracks. Read it with
/// obs::snapshot(); docs/observability.md covers the exporters.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_SESSION_H
#define ALGOPROF_CORE_SESSION_H

#include "analysis/IndexDataflow.h"
#include "core/AlgoProfiler.h"
#include "core/Classification.h"
#include "core/Grouping.h"
#include "fitting/CurveFit.h"
#include "frontend/Ast.h"
#include "resilience/Resilience.h"

#include <memory>
#include <string>

namespace algoprof {
namespace prof {

/// A fully compiled and analyzed MiniJ program.
struct CompiledProgram {
  std::unique_ptr<Program> Ast;
  std::unique_ptr<bc::Module> Mod;
  vm::PreparedProgram Prep; ///< Points into *Mod.
  analysis::IndexDataflow Dataflow;

  /// Method id of static no-arg "Cls.Method", or -1.
  int32_t entryMethod(const std::string &Cls,
                      const std::string &Method) const;
};

/// Lex + parse + sema + compile + static analyses. Returns null and
/// reports via \p Diags on any front-end error.
std::unique_ptr<CompiledProgram> compileMiniJ(const std::string &Source,
                                              DiagnosticEngine &Diags);

/// Runs \p CP unprofiled (no listener). \p Io may be null.
vm::RunResult runPlain(const CompiledProgram &CP, const std::string &Cls,
                       const std::string &Method,
                       vm::IoChannels *Io = nullptr,
                       const vm::RunOptions &Opts = vm::RunOptions());

/// The instrumentation plan a profiling session uses for \p CP (shared
/// by ProfileSession and parallel::SweepEngine workers; plans are
/// immutable during runs and therefore safe to share across threads).
vm::InstrumentationPlan makeInstrumentationPlan(const CompiledProgram &CP,
                                                bool AllMethods);

/// Everything known about one algorithm after profiling.
struct AlgorithmProfile {
  Algorithm Algo;
  std::vector<CombinedInvocation> Invocations;
  Classification Class;
  std::string Label;

  /// A <size, steps> series pooled over all inputs of one kind. A sweep
  /// harness creates one structure instance per run (each its own input
  /// id); the paper's Figure 1 plots pool them: every root invocation
  /// contributes one point <size of its instance, its cost>.
  struct InputSeries {
    std::string Kind;              ///< Input label ("Node-based ...").
    std::vector<int32_t> InputIds; ///< Canonical ids pooled here.
    std::vector<SeriesPoint> Series;
    fit::FitResult Fit;
    bool Interesting = false;

    /// The paper's "multiple plots ... based on the combinations of
    /// their inputs and cost measures" (Sec. 3.5): fits for the
    /// non-step cost measures on this input, present only when the
    /// measure's series is itself interesting (the paper's heuristic
    /// excludes constant-cost measures).
    std::map<CostKind, fit::FitResult> MeasureFits;
  };
  std::vector<InputSeries> Series;

  /// The first interesting series, or null.
  const InputSeries *primarySeries() const;
};

/// Every knob of a profiling session, serial or sharded. This is the
/// single options struct consumed by ProfileSession, ProfileDriver,
/// and parallel::SweepEngine — there is no separate sweep-options
/// type, so serial and sharded sessions cannot drift apart in what
/// they configure (ParallelSweepTest asserts the parity).
struct SessionOptions {
  /// Profiler knobs: equivalence strategy, snapshot mode, sampling.
  ProfileOptions Profile;
  /// Use the all-methods plan (dynamic recursion folding without the
  /// static header analysis); creates a recursion node for every method.
  bool AllMethodsPlan = false;
  /// VM limits (fuel, frame depth, array length) for every run.
  vm::RunOptions Run;
  /// How many profiled runs a driver/sweep executes. Ignored when
  /// Seeds is non-empty (then it is Seeds.size() runs).
  int Runs = 1;
  /// Worker threads. 1 is the serial accumulating session; 0 picks
  /// std::thread::hardware_concurrency(); any other value shards the
  /// runs over that many workers. The profile is byte-identical for
  /// every value.
  int Jobs = 1;
  /// One profiled run per seed, merged in this order. Each run's input
  /// channel is pre-loaded with just its seed value, so MiniJ programs
  /// size their workload with In.read(). Takes precedence over
  /// Runs/Input when non-empty.
  std::vector<int64_t> Seeds;
  /// External input-channel values handed to every run (the CLI's
  /// --input). Unused for seeded runs.
  std::vector<int64_t> Input;
  /// What a sweep does with a run whose final attempt failed. Fail
  /// (default) preserves the legacy all-or-nothing behavior: failed
  /// runs still merge and the caller decides. Skip/Retry quarantine
  /// failed runs so the merged profile covers exactly the survivors —
  /// see docs/resilience.md.
  resilience::FailurePolicy Policy = resilience::FailurePolicy::Fail;
  /// Executions per run under Retry (first attempt included, >= 1).
  /// Retries use a fresh interpreter with the same inputs.
  int MaxAttempts = 3;
  /// Armed deterministic faults, all session-scoped. Run-scoped sites
  /// (heap-oom, run-start-fail) fire inside the sweep engine;
  /// io-write-fail is consulted by whoever writes this session's
  /// report/trace/metrics output (Faults.firesIoWrite). Nothing is
  /// process-global, so a daemon can arm faults per session.
  resilience::FaultPlan Faults;
};

/// Groups \p Tree into algorithms and runs the full profile pipeline
/// (combine, classify, extract series, fit) against \p Inputs. This is
/// the common back half of ProfileSession::buildProfiles and
/// parallel::SweepEngine: both produce a (tree, inputs) pair — one by
/// accumulation, one by merging shards — and the profiles come out of
/// this single code path, which is what makes the differential tests
/// meaningful.
std::vector<AlgorithmProfile>
buildProfilesFrom(const RepetitionTree &Tree, const InputTable &Inputs,
                  const CompiledProgram &CP,
                  GroupingStrategy Strategy = GroupingStrategy::CommonInput);

/// A profiling session: one interpreter + one AlgoProfiler accumulating
/// any number of runs into one repetition tree. Between runs the heap's
/// memory is recycled (vm::Heap::recycle) without reusing object ids, so
/// run-scoped heap state cannot leak into — or alias inside — the
/// profiler's id-keyed input maps.
class ProfileSession {
public:
  explicit ProfileSession(const CompiledProgram &CP,
                          SessionOptions Opts = SessionOptions());

  /// Runs static no-arg "Cls.Method" under the profiler.
  vm::RunResult run(const std::string &Cls, const std::string &Method);
  vm::RunResult run(const std::string &Cls, const std::string &Method,
                    vm::IoChannels &Io);

  AlgoProfiler &profiler() { return Prof; }
  vm::Interpreter &interpreter() { return Interp; }
  const RepetitionTree &tree() const { return Prof.tree(); }
  InputTable &inputs() { return Prof.inputs(); }
  const CompiledProgram &compiled() const { return CP; }
  const SessionOptions &options() const { return Opts; }

  /// Groups the accumulated tree into algorithms.
  std::vector<Algorithm>
  algorithms(GroupingStrategy Strategy = GroupingStrategy::CommonInput)
      const;

  /// Full pipeline: group, combine, classify, extract series, fit.
  std::vector<AlgorithmProfile> buildProfiles(
      GroupingStrategy Strategy = GroupingStrategy::CommonInput) const;

private:
  const CompiledProgram &CP;
  SessionOptions Opts;
  vm::InstrumentationPlan Plan;
  vm::Interpreter Interp;
  AlgoProfiler Prof;
};

} // namespace prof

namespace parallel {
class SweepEngine;
} // namespace parallel

namespace prof {

/// The one-true-path front end over serial and sharded profiling: runs
/// every configured run (SessionOptions::Runs or ::Seeds) of one entry
/// point and exposes the accumulated tree/inputs/profiles. Jobs == 1
/// owns a ProfileSession; anything else owns a parallel::SweepEngine.
/// Callers that don't care about the execution strategy (the CLI, the
/// examples) should use this instead of picking an engine by hand.
class ProfileDriver {
public:
  explicit ProfileDriver(const CompiledProgram &CP,
                         SessionOptions Opts = SessionOptions());
  ~ProfileDriver();

  /// Executes all configured runs of static no-arg "Cls.Method". Seeded
  /// sessions (Opts.Seeds non-empty) run once per seed with the seed as
  /// the sole input value; otherwise Opts.Runs runs each receive
  /// Opts.Input. Returns one RunResult per run, in run order.
  std::vector<vm::RunResult> runAll(const std::string &Cls,
                                    const std::string &Method);

  const RepetitionTree &tree() const;
  const InputTable &inputs() const;
  const SessionOptions &options() const { return Opts; }

  /// Degraded-run records accumulated across runAll calls, in run
  /// order: every run whose final attempt failed (serial failures are
  /// never quarantined; sweep failures follow SessionOptions::Policy).
  const std::vector<resilience::FailureInfo> &failures() const {
    return Failures;
  }

  /// True when the accumulated profile is well-defined: at least one
  /// run merged and every failure was quarantined out. The degraded
  /// analogue of "all runs ok" (see SweepResult::usable()).
  bool usable() const;

  /// Full pipeline over the accumulated state (same code path for both
  /// strategies: buildProfilesFrom).
  std::vector<AlgorithmProfile> buildProfiles(
      GroupingStrategy Strategy = GroupingStrategy::CommonInput) const;

private:
  SessionOptions Opts;
  std::unique_ptr<ProfileSession> Serial;       ///< Fail-policy Jobs == 1.
  std::unique_ptr<parallel::SweepEngine> Engine; ///< Otherwise.
  std::vector<resilience::FailureInfo> Failures;
  bool MergedAny = false;
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_SESSION_H

//===- core/Session.h - High-level AlgoProf API -----------------*- C++-*-===//
///
/// \file
/// The library's front door: compile MiniJ source, run it (plain or
/// profiled, repeatedly, over representative inputs — the paper's "set
/// of program runs"), and extract algorithm profiles: the repetition
/// tree, the grouped algorithms, their classifications, their
/// <size, cost> series, and fitted cost functions.
///
/// \code
///   DiagnosticEngine Diags;
///   auto CP = compileMiniJ(Source, Diags);
///   ProfileSession S(*CP);
///   S.run("Main", "main");
///   for (const AlgorithmProfile &AP : S.buildProfiles())
///     ... AP.Label, AP.Series[i].Fit.formula() ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_SESSION_H
#define ALGOPROF_CORE_SESSION_H

#include "analysis/IndexDataflow.h"
#include "core/AlgoProfiler.h"
#include "core/Classification.h"
#include "core/Grouping.h"
#include "fitting/CurveFit.h"
#include "frontend/Ast.h"

#include <memory>
#include <string>

namespace algoprof {
namespace prof {

/// A fully compiled and analyzed MiniJ program.
struct CompiledProgram {
  std::unique_ptr<Program> Ast;
  std::unique_ptr<bc::Module> Mod;
  vm::PreparedProgram Prep; ///< Points into *Mod.
  analysis::IndexDataflow Dataflow;

  /// Method id of static no-arg "Cls.Method", or -1.
  int32_t entryMethod(const std::string &Cls,
                      const std::string &Method) const;
};

/// Lex + parse + sema + compile + static analyses. Returns null and
/// reports via \p Diags on any front-end error.
std::unique_ptr<CompiledProgram> compileMiniJ(const std::string &Source,
                                              DiagnosticEngine &Diags);

/// Runs \p CP unprofiled (no listener). \p Io may be null.
vm::RunResult runPlain(const CompiledProgram &CP, const std::string &Cls,
                       const std::string &Method,
                       vm::IoChannels *Io = nullptr,
                       const vm::RunOptions &Opts = vm::RunOptions());

/// The instrumentation plan a profiling session uses for \p CP (shared
/// by ProfileSession and parallel::SweepEngine workers; plans are
/// immutable during runs and therefore safe to share across threads).
vm::InstrumentationPlan makeInstrumentationPlan(const CompiledProgram &CP,
                                                bool AllMethods);

/// Everything known about one algorithm after profiling.
struct AlgorithmProfile {
  Algorithm Algo;
  std::vector<CombinedInvocation> Invocations;
  Classification Class;
  std::string Label;

  /// A <size, steps> series pooled over all inputs of one kind. A sweep
  /// harness creates one structure instance per run (each its own input
  /// id); the paper's Figure 1 plots pool them: every root invocation
  /// contributes one point <size of its instance, its cost>.
  struct InputSeries {
    std::string Kind;              ///< Input label ("Node-based ...").
    std::vector<int32_t> InputIds; ///< Canonical ids pooled here.
    std::vector<SeriesPoint> Series;
    fit::FitResult Fit;
    bool Interesting = false;

    /// The paper's "multiple plots ... based on the combinations of
    /// their inputs and cost measures" (Sec. 3.5): fits for the
    /// non-step cost measures on this input, present only when the
    /// measure's series is itself interesting (the paper's heuristic
    /// excludes constant-cost measures).
    std::map<CostKind, fit::FitResult> MeasureFits;
  };
  std::vector<InputSeries> Series;

  /// The first interesting series, or null.
  const InputSeries *primarySeries() const;
};

/// Session options.
struct SessionOptions {
  ProfileOptions Profile;
  /// Use the all-methods plan (dynamic recursion folding without the
  /// static header analysis); creates a recursion node for every method.
  bool AllMethodsPlan = false;
  vm::RunOptions Run;
};

/// Options for a multi-run profiling sweep (see parallel::SweepEngine).
struct SweepOptions {
  /// Worker threads. 0 picks std::thread::hardware_concurrency(); 1
  /// still goes through the shard-and-merge path (useful for
  /// differential testing against ProfileSession).
  int Threads = 1;
  /// One profiled run per seed, merged in this order. Each run's input
  /// channel is pre-loaded with its seed value, so MiniJ programs size
  /// their workload with In.read(). An empty list means one unseeded
  /// run.
  std::vector<int64_t> Seeds;
};

/// Groups \p Tree into algorithms and runs the full profile pipeline
/// (combine, classify, extract series, fit) against \p Inputs. This is
/// the common back half of ProfileSession::buildProfiles and
/// parallel::SweepEngine: both produce a (tree, inputs) pair — one by
/// accumulation, one by merging shards — and the profiles come out of
/// this single code path, which is what makes the differential tests
/// meaningful.
std::vector<AlgorithmProfile>
buildProfilesFrom(const RepetitionTree &Tree, const InputTable &Inputs,
                  const CompiledProgram &CP,
                  GroupingStrategy Strategy = GroupingStrategy::CommonInput);

/// A profiling session: one interpreter + one AlgoProfiler accumulating
/// any number of runs into one repetition tree. Between runs the heap's
/// memory is recycled (vm::Heap::recycle) without reusing object ids, so
/// run-scoped heap state cannot leak into — or alias inside — the
/// profiler's id-keyed input maps.
class ProfileSession {
public:
  explicit ProfileSession(const CompiledProgram &CP,
                          SessionOptions Opts = SessionOptions());

  /// Runs static no-arg "Cls.Method" under the profiler.
  vm::RunResult run(const std::string &Cls, const std::string &Method);
  vm::RunResult run(const std::string &Cls, const std::string &Method,
                    vm::IoChannels &Io);

  AlgoProfiler &profiler() { return Prof; }
  vm::Interpreter &interpreter() { return Interp; }
  const RepetitionTree &tree() const { return Prof.tree(); }
  InputTable &inputs() { return Prof.inputs(); }
  const CompiledProgram &compiled() const { return CP; }

  /// Groups the accumulated tree into algorithms.
  std::vector<Algorithm>
  algorithms(GroupingStrategy Strategy = GroupingStrategy::CommonInput)
      const;

  /// Full pipeline: group, combine, classify, extract series, fit.
  std::vector<AlgorithmProfile> buildProfiles(
      GroupingStrategy Strategy = GroupingStrategy::CommonInput) const;

private:
  const CompiledProgram &CP;
  SessionOptions Opts;
  vm::InstrumentationPlan Plan;
  vm::Interpreter Interp;
  AlgoProfiler Prof;
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_SESSION_H

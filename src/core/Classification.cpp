//===- core/Classification.cpp --------------------------------------------===//

#include "core/Classification.h"

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::bc;

const char *algoprof::prof::algorithmClassName(AlgorithmClass C) {
  switch (C) {
  case AlgorithmClass::Construction:
    return "Construction";
  case AlgorithmClass::Modification:
    return "Modification";
  case AlgorithmClass::Traversal:
    return "Traversal";
  case AlgorithmClass::Untouched:
    return "Untouched";
  }
  return "<bad-class>";
}

Classification algoprof::prof::classifyAlgorithm(
    const Algorithm &A, const std::vector<CombinedInvocation> &Invocations,
    const InputTable &T, const Module &M) {
  Classification Result;

  // Aggregate all root invocations.
  CostMap Total;
  for (const CombinedInvocation &Inv : Invocations)
    Total.merge(Inv.Costs);

  Result.DoesInput = Total.total(CostKind::InputRead) > 0;
  Result.DoesOutput = Total.total(CostKind::OutputWrite) > 0;

  for (int32_t InputId : A.InputIds) {
    const InputInfo &Info = T.info(InputId);
    // Streams classify at the algorithm level (Input/Output flags), not
    // in the per-structure taxonomy.
    if (Info.IsStream)
      continue;
    Classification::PerInput P;
    P.InputId = InputId;

    // Construction: allocations of element types belonging to the input.
    int64_t NewCount = 0;
    if (Info.IsArray) {
      for (const auto &[Key, N] : Total.entries()) {
        if (Key.Kind != CostKind::ArrayNew || Key.TypeId < 0)
          continue;
        // Key.TypeId is the allocated array type; compare element types.
        TypeId Elem = M.Types[static_cast<size_t>(Key.TypeId)].Elem;
        if (Elem == Info.TypeKey)
          NewCount += N;
      }
    } else {
      for (const auto &[ClassId, Members] : Info.MemberClassCounts) {
        (void)Members;
        NewCount += Total.get({CostKind::New, -1, ClassId});
      }
    }

    // Inputs can be touched both as structures (link fields) and as
    // arrays (naked or embedded); count both access families.
    int64_t Writes = Total.total(CostKind::ArrayStore, InputId) +
                     Total.total(CostKind::StructPut, InputId);
    int64_t Reads = Total.total(CostKind::ArrayLoad, InputId) +
                    Total.total(CostKind::StructGet, InputId);

    // Mutual exclusion with precedence (Sec. 2.8).
    if (NewCount > 0)
      P.Class = AlgorithmClass::Construction;
    else if (Writes > 0)
      P.Class = AlgorithmClass::Modification;
    else if (Reads > 0)
      P.Class = AlgorithmClass::Traversal;
    else
      P.Class = AlgorithmClass::Untouched;
    Result.Inputs.push_back(P);
  }
  return Result;
}

std::string Classification::label(const InputTable &T) const {
  // Aggregate same-kind inputs: a sweep harness produces one structure
  // instance per run, all with the same classification and type.
  std::map<std::pair<std::string, std::string>, int64_t> Grouped;
  for (const PerInput &P : Inputs)
    ++Grouped[{algorithmClassName(P.Class), T.info(P.InputId).Label}];

  std::string Out;
  for (const auto &[Key, Count] : Grouped) {
    if (!Out.empty())
      Out += "; ";
    Out += Key.first + " of a " + Key.second;
    if (Count > 1)
      Out += " (" + std::to_string(Count) + " instances)";
  }
  if (DoesInput)
    Out += Out.empty() ? "Input algorithm" : "; Input algorithm";
  if (DoesOutput)
    Out += Out.empty() ? "Output algorithm" : "; Output algorithm";
  if (Out.empty())
    Out = "Data-structure-less algorithm";
  return Out;
}

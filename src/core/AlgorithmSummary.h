//===- core/AlgorithmSummary.h - Combined costs and series ------*- C++-*-===//
///
/// \file
/// Cost combination (paper Sec. 2.6: a parent invocation's overall cost
/// is its own plus the summed costs of grouped child invocations inside
/// it) and the extraction of <input size, cost> series that cost
/// functions are fitted to (Sec. 2.7).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_ALGORITHMSUMMARY_H
#define ALGOPROF_CORE_ALGORITHMSUMMARY_H

#include "core/Grouping.h"

#include <vector>

namespace algoprof {
namespace prof {

/// One root-level invocation of an algorithm with the group-internal
/// child costs folded in.
struct CombinedInvocation {
  CostMap Costs;
  std::map<int32_t, InputUse> Inputs;
  bool Finalized = false;
};

/// Combines the invocation histories of \p A's nodes bottom-up into its
/// root's invocations.
std::vector<CombinedInvocation>
combineInvocations(const Algorithm &A, const InputTable &T);

/// One data point of a cost function plot.
struct SeriesPoint {
  double X = 0; ///< Input size.
  double Y = 0; ///< Cost.
};

/// Extracts the <size of input \p InputId, cost of kind \p K> series,
/// one point per finalized root invocation. For CostKind::Step, Y is the
/// invocation's total algorithmic steps; for access kinds, Y counts only
/// operations on \p InputId.
std::vector<SeriesPoint>
extractSeries(const std::vector<CombinedInvocation> &Invocations,
              int32_t InputId, CostKind K = CostKind::Step);

/// Like extractSeries, but pools a set of same-kind inputs: each
/// invocation contributes one point whose X is the largest size among
/// the pooled inputs it touched (one run usually touches exactly one).
std::vector<SeriesPoint>
extractPooledSeries(const std::vector<CombinedInvocation> &Invocations,
                    const std::vector<int32_t> &InputIds,
                    CostKind K = CostKind::Step);

/// The paper's report heuristic (Sec. 3.5): an input is interesting when
/// its size actually varies across invocations and the step cost varies
/// with it (constant-cost inputs are excluded).
bool isInterestingSeries(const std::vector<SeriesPoint> &Series);

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_ALGORITHMSUMMARY_H

//===- core/Grouping.cpp --------------------------------------------------===//

#include "core/Grouping.h"

#include <algorithm>
#include <set>

using namespace algoprof;
using namespace algoprof::prof;

const char *algoprof::prof::groupingStrategyName(GroupingStrategy S) {
  switch (S) {
  case GroupingStrategy::CommonInput:
    return "CommonInput";
  case GroupingStrategy::SameMethod:
    return "SameMethod";
  case GroupingStrategy::CommonInputPlusDataflow:
    return "CommonInput+IndexDataflow";
  }
  return "<bad-strategy>";
}

namespace {

/// Canonical ids of the inputs a node *algorithmically* accesses.
///
/// Refinement over the paper's "access at least one common input" rule:
/// a repetition counts as accessing an input only when its access count
/// on that input exceeds twice the number of invocations that touched
/// it. A harness loop calling sort(list) performs a constant number of
/// prologue link reads per call (List.sort's null checks and the
/// firstUnsorted initialization — two reads) and would otherwise be
/// grouped into every algorithm it drives; with the
/// constant-accesses-per-invocation cutoff the measure loops stay
/// data-structure-less exactly as in the paper's Figure 3, while any
/// repetition whose accesses scale with the input stays grouped.
std::set<int32_t> canonicalInputs(const RepetitionNode &N,
                                  const InputTable &T) {
  std::map<int32_t, int64_t> Accesses;
  std::map<int32_t, int64_t> Touched; // Invocations touching the input.
  for (const InvocationRecord &R : N.History) {
    if (!R.Finalized)
      continue;
    for (const auto &[Id, Use] : R.Inputs) {
      (void)Use;
      ++Touched[T.canonical(Id)];
    }
    for (const auto &[Key, Count] : R.Costs.entries()) {
      if (Key.InputId < 0 || Key.TypeId >= 0)
        continue;
      if (Key.Kind == CostKind::StructGet ||
          Key.Kind == CostKind::StructPut ||
          Key.Kind == CostKind::ArrayLoad ||
          Key.Kind == CostKind::ArrayStore ||
          Key.Kind == CostKind::InputRead ||
          Key.Kind == CostKind::OutputWrite)
        Accesses[T.canonical(Key.InputId)] += Count;
    }
  }
  std::set<int32_t> Ids;
  for (const auto &[Id, Count] : Accesses)
    if (Count > 2 * Touched[Id])
      Ids.insert(Id);
  return Ids;
}

/// The AST loop id of a loop repetition node, or -1.
int astLoopIdOf(const RepetitionNode &N, const vm::PreparedProgram &P) {
  if (N.Key.Kind != RepKind::Loop)
    return -1;
  const analysis::LoopInfo &LI =
      P.Methods[static_cast<size_t>(N.Key.MethodId)].Loops;
  if (N.Key.LoopId < 0 || N.Key.LoopId >= LI.numLoops())
    return -1;
  return LI.Loops[static_cast<size_t>(N.Key.LoopId)].AstLoopId;
}

} // namespace

std::vector<Algorithm>
algoprof::prof::groupAlgorithms(const RepetitionTree &Tree,
                                const InputTable &Inputs,
                                const vm::PreparedProgram &P,
                                GroupingStrategy Strategy,
                                const analysis::IndexDataflow *Dataflow) {
  std::vector<Algorithm> Result;

  // Recursive walk carrying (group id of parent node, parent's inputs).
  struct Walker {
    const InputTable &Inputs;
    const vm::PreparedProgram &P;
    GroupingStrategy Strategy;
    const analysis::IndexDataflow *Dataflow;
    std::vector<Algorithm> &Result;

    bool joins(const RepetitionNode &Child, const RepetitionNode &Parent,
               const std::set<int32_t> &ChildIn,
               const std::set<int32_t> &ParentIn) const {
      switch (Strategy) {
      case GroupingStrategy::SameMethod:
        return Child.Key.Kind == RepKind::Loop &&
               Parent.Key.Kind == RepKind::Loop &&
               Child.Key.MethodId == Parent.Key.MethodId;
      case GroupingStrategy::CommonInput:
      case GroupingStrategy::CommonInputPlusDataflow: {
        for (int32_t Id : ChildIn)
          if (ParentIn.count(Id))
            return true;
        if (Strategy != GroupingStrategy::CommonInputPlusDataflow ||
            !Dataflow)
          return false;
        if (Child.Key.Kind != RepKind::Loop ||
            Parent.Key.Kind != RepKind::Loop ||
            Child.Key.MethodId != Parent.Key.MethodId)
          return false;
        int OuterAst = astLoopIdOf(Parent, P);
        int InnerAst = astLoopIdOf(Child, P);
        if (OuterAst < 0 || InnerAst < 0)
          return false;
        const std::string &Qualified =
            P.M->Methods[static_cast<size_t>(Parent.Key.MethodId)]
                .QualifiedName;
        return Dataflow->linked(Qualified, OuterAst, InnerAst);
      }
      }
      return false;
    }

    void walk(const RepetitionNode &N, const RepetitionNode *Parent,
              int32_t ParentGroup, const std::set<int32_t> &ParentIn) {
      std::set<int32_t> MyIn = canonicalInputs(N, Inputs);
      int32_t Group;
      if (Parent && ParentGroup >= 0 &&
          joins(N, *Parent, MyIn, ParentIn)) {
        Group = ParentGroup;
      } else {
        Group = static_cast<int32_t>(Result.size());
        Algorithm A;
        A.Id = Group;
        A.Root = &N;
        Result.push_back(std::move(A));
      }
      Algorithm &G = Result[static_cast<size_t>(Group)];
      G.Nodes.push_back(&N);
      for (int32_t Id : MyIn)
        if (std::find(G.InputIds.begin(), G.InputIds.end(), Id) ==
            G.InputIds.end())
          G.InputIds.push_back(Id);
      for (const auto &C : N.Children)
        walk(*C, &N, Group, MyIn);
    }
  } W{Inputs, P, Strategy, Dataflow, Result};

  for (const auto &TopLevel : Tree.root().Children)
    W.walk(*TopLevel, nullptr, -1, {});

  for (Algorithm &A : Result)
    std::sort(A.InputIds.begin(), A.InputIds.end());
  return Result;
}

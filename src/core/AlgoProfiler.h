//===- core/AlgoProfiler.h - The algorithmic profiler -----------*- C++-*-===//
///
/// \file
/// The ExecutionListener implementing the paper's dynamic analysis
/// (Sec. 3.2): it maintains the shadow stack and the repetition tree,
/// folds recursive call chains onto their header node
/// (findOnPathToRoot), counts algorithmic steps on loop back edges and
/// recursive calls, attributes structure/array access costs to inputs,
/// and snapshots input sizes at first access and at repetition exit
/// (remeasureInputs / finalizeRepetition).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_CORE_ALGOPROFILER_H
#define ALGOPROF_CORE_ALGOPROFILER_H

#include "core/InputTable.h"
#include "core/RepetitionTree.h"
#include "vm/Interpreter.h"

#include <memory>

namespace algoprof {
namespace prof {

/// When input sizes are measured.
enum class SnapshotMode {
  /// Paper-faithful: traverse the structure at the repetition's first
  /// access and again at its exit (Sec. 3.4). Cost: O(|structure|) per
  /// repetition invocation.
  Eager,
  /// Fast approximation: read the incrementally tracked membership
  /// counts instead of traversing. Exact for grow-only structures (the
  /// tracked count *is* the paper's max-size rule); may overestimate for
  /// structures that shrink and regrow. The counts are run-scoped: they
  /// reset at every program start, so an input shared across runs (e.g.
  /// under SameType) is still sized from the current run's heap. Used
  /// for large sweeps and as an overhead ablation.
  Tracked,
};

const char *snapshotModeName(SnapshotMode Mode);

/// Profiler configuration.
struct ProfileOptions {
  EquivalenceStrategy Equivalence = EquivalenceStrategy::SomeElements;
  SnapshotMode Snapshots = SnapshotMode::Eager;
  ArraySizeMeasure ArrayMeasure = ArraySizeMeasure::UniqueElements;

  /// Invocation sampling for frequently invoked repetitions — the
  /// memory optimization the paper sketches in Sec. 3.3 ("sample a
  /// subset of invocations for frequently invoked repetitions"). 0
  /// records every invocation. A value T records the first T
  /// invocations of each repetition densely, then decimates: the
  /// recording stride doubles each time another T records accumulate,
  /// so a node with N invocations stores O(T * log(N/T)) records.
  /// Unrecorded invocations still count steps into TotalInvocations and
  /// their children's records are kept but not attributable (their
  /// ParentInvocation is -1, so cost combination skips them).
  int64_t SampleThreshold = 0;
};

/// The algorithmic profiler. Attach to an Interpreter run via the
/// ExecutionListener interface; repeated runs accumulate into the same
/// repetition tree (the paper profiles *sets* of executions).
class AlgoProfiler : public vm::ExecutionListener {
public:
  AlgoProfiler(const vm::PreparedProgram &P, ProfileOptions Opts);
  ~AlgoProfiler() override;

  RepetitionTree &tree() { return Tree; }
  const RepetitionTree &tree() const { return Tree; }
  InputTable &inputs() { return Inputs; }
  const InputTable &inputs() const { return Inputs; }
  const ProfileOptions &options() const { return Opts; }

  // ExecutionListener implementation.
  void onProgramStart(const vm::ExecContext &Ctx) override;
  void onProgramEnd() override;
  void onMethodEnter(int32_t MethodId) override;
  void onMethodExit(int32_t MethodId) override;
  void onLoopEnter(int32_t MethodId, int32_t LoopId) override;
  void onLoopBackEdge(int32_t MethodId, int32_t LoopId) override;
  void onLoopExit(int32_t MethodId, int32_t LoopId) override;
  void onGetField(vm::ObjId Obj, int32_t FieldId, vm::Value V) override;
  void onPutField(vm::ObjId Obj, int32_t FieldId, vm::Value New) override;
  void onArrayLoad(vm::ObjId Arr, int64_t Index, vm::Value V) override;
  void onArrayStore(vm::ObjId Arr, int64_t Index, vm::Value New) override;
  void onNewObject(vm::ObjId Obj, int32_t ClassId) override;
  void onNewArray(vm::ObjId Arr, bc::TypeId ArrayType,
                  int64_t Len) override;
  void onInputRead() override;
  void onOutputWrite() override;

private:
  struct LiveUse {
    vm::ObjId LastRef = vm::NullObj;
    InputUse Use;
  };

  /// One live invocation of a repetition. Folded recursive re-entries
  /// share the activation of the recursion header.
  struct Activation {
    RepetitionNode *Node = nullptr;
    int32_t InvocationIndex = -1; ///< -1 when sampled out.
    CostMap Costs;
    /// Costs inherited from sampled-out child invocations.
    CostMap FoldedCosts;
    std::map<int32_t, LiveUse> Inputs;
    int RecursionDepth = 0;
  };

  struct StackEntry {
    Activation *A = nullptr;
    bool Owner = false;
  };

  Activation &top();
  Activation &pushOwnedActivation(RepetitionNode &Node);
  void finalizeTop();
  void touchInput(Activation &A, int32_t Input, vm::ObjId Ref);
  /// Touch for stream pseudo-inputs: size comes from the I/O channels,
  /// not from heap traversal.
  void touchStream(Activation &A, int32_t Input, int64_t Size);
  SizeMeasures measureInput(int32_t Input, vm::ObjId Ref);
  void recordStructureAccess(vm::ObjId Obj, vm::Value Other,
                             CostKind Kind);
  void recordArrayAccess(vm::ObjId Arr, CostKind Kind, vm::Value Elem);
  std::string loopName(int32_t MethodId, int32_t LoopId) const;

  const vm::PreparedProgram &P;
  ProfileOptions Opts;
  RepetitionTree Tree;
  InputTable Inputs;
  const vm::IoChannels *Io = nullptr;

  std::vector<StackEntry> Stack;
  std::vector<std::unique_ptr<Activation>> OwnerPool;
};

} // namespace prof
} // namespace algoprof

#endif // ALGOPROF_CORE_ALGOPROFILER_H

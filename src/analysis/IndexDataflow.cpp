//===- analysis/IndexDataflow.cpp -----------------------------------------===//

#include "analysis/IndexDataflow.h"

#include <unordered_set>

using namespace algoprof;
using namespace algoprof::analysis;

namespace {

/// Per-method walker maintaining the active loop stack with the set of
/// local slots each loop assigns directly (not inside nested loops).
class MethodWalker {
public:
  MethodWalker(const std::string &QualifiedMethod, IndexDataflow &Out)
      : QualifiedMethod(QualifiedMethod), Out(Out) {}

  void walkStmt(const Stmt *S);
  void walkExpr(const Expr *E);

private:
  struct ActiveLoop {
    int AstLoopId;
    std::unordered_set<int> AssignedSlots;
  };

  void noteAssignedSlot(int Slot) {
    if (!LoopStack.empty())
      LoopStack.back().AssignedSlots.insert(Slot);
  }
  void noteAssignTarget(const Expr *Target);
  void collectIndexSlots(const Expr *E, std::unordered_set<int> &Slots);
  void noteArrayAccess(const IndexExpr &E);
  void enterLoop(int AstLoopId) { LoopStack.push_back({AstLoopId, {}}); }
  void exitLoop() { LoopStack.pop_back(); }

  const std::string &QualifiedMethod;
  IndexDataflow &Out;
  std::vector<ActiveLoop> LoopStack;
};

void MethodWalker::noteAssignTarget(const Expr *Target) {
  if (!Target || Target->kind() != ExprKind::Name)
    return;
  const auto *N = static_cast<const NameExpr *>(Target);
  if (N->Resolution == NameResolution::Local)
    noteAssignedSlot(N->Slot);
}

void MethodWalker::collectIndexSlots(const Expr *E,
                                     std::unordered_set<int> &Slots) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::Name: {
    const auto *N = static_cast<const NameExpr *>(E);
    if (N->Resolution == NameResolution::Local)
      Slots.insert(N->Slot);
    return;
  }
  case ExprKind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    collectIndexSlots(B->Lhs.get(), Slots);
    collectIndexSlots(B->Rhs.get(), Slots);
    return;
  }
  case ExprKind::Unary:
    collectIndexSlots(static_cast<const UnaryExpr *>(E)->Operand.get(),
                      Slots);
    return;
  case ExprKind::IncDec: {
    const auto *I = static_cast<const IncDecExpr *>(E);
    collectIndexSlots(I->Target.get(), Slots);
    return;
  }
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    collectIndexSlots(I->Index.get(), Slots);
    return;
  }
  case ExprKind::FieldAccess:
    collectIndexSlots(
        static_cast<const FieldAccessExpr *>(E)->Base.get(), Slots);
    return;
  default:
    return;
  }
}

void MethodWalker::noteArrayAccess(const IndexExpr &E) {
  if (LoopStack.size() < 2)
    return; // Grouping needs an outer loop to link to.
  std::unordered_set<int> Slots;
  collectIndexSlots(E.Index.get(), Slots);
  if (Slots.empty())
    return;
  // Link every outer loop that assigns one of the index slots down the
  // nest, pairwise, so the grouped region is connected.
  for (size_t J = 0; J + 1 < LoopStack.size(); ++J) {
    bool Intersects = false;
    for (int Slot : Slots)
      if (LoopStack[J].AssignedSlots.count(Slot)) {
        Intersects = true;
        break;
      }
    if (!Intersects)
      continue;
    for (size_t K = J; K + 1 < LoopStack.size(); ++K)
      Out.Links.insert({QualifiedMethod, LoopStack[K].AstLoopId,
                        LoopStack[K + 1].AstLoopId});
  }
}

void MethodWalker::walkExpr(const Expr *E) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NullLit:
  case ExprKind::This:
  case ExprKind::Name:
    return;
  case ExprKind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    walkExpr(B->Lhs.get());
    walkExpr(B->Rhs.get());
    return;
  }
  case ExprKind::Unary:
    walkExpr(static_cast<const UnaryExpr *>(E)->Operand.get());
    return;
  case ExprKind::Assign: {
    const auto *A = static_cast<const AssignExpr *>(E);
    noteAssignTarget(A->Target.get());
    walkExpr(A->Target.get());
    walkExpr(A->Value.get());
    return;
  }
  case ExprKind::IncDec: {
    const auto *I = static_cast<const IncDecExpr *>(E);
    noteAssignTarget(I->Target.get());
    walkExpr(I->Target.get());
    return;
  }
  case ExprKind::FieldAccess:
    walkExpr(static_cast<const FieldAccessExpr *>(E)->Base.get());
    return;
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    noteArrayAccess(*I);
    walkExpr(I->Base.get());
    walkExpr(I->Index.get());
    return;
  }
  case ExprKind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    if (C->Receiver && C->Resolution == CallResolution::Virtual)
      walkExpr(C->Receiver.get());
    for (const ExprPtr &A : C->Args)
      walkExpr(A.get());
    return;
  }
  case ExprKind::NewObject: {
    const auto *N = static_cast<const NewObjectExpr *>(E);
    for (const ExprPtr &A : N->Args)
      walkExpr(A.get());
    return;
  }
  case ExprKind::NewArray: {
    const auto *N = static_cast<const NewArrayExpr *>(E);
    for (const ExprPtr &D : N->Dims)
      walkExpr(D.get());
    return;
  }
  }
}

void MethodWalker::walkStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Stmts)
      walkStmt(Child.get());
    return;
  case StmtKind::VarDecl: {
    const auto *D = static_cast<const VarDeclStmt *>(S);
    if (D->Init) {
      noteAssignedSlot(D->Slot);
      walkExpr(D->Init.get());
    }
    return;
  }
  case StmtKind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    walkExpr(I->Cond.get());
    walkStmt(I->Then.get());
    walkStmt(I->Else.get());
    return;
  }
  case StmtKind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    enterLoop(W->LoopId);
    walkExpr(W->Cond.get());
    walkStmt(W->Body.get());
    exitLoop();
    return;
  }
  case StmtKind::For: {
    const auto *F = static_cast<const ForStmt *>(S);
    // The init runs before the loop; the update runs inside it. Index
    // variables are almost always initialized just outside and stepped
    // inside, so attribute the init's assignment to the loop as well —
    // that is where the paper's "the outer loop increments variable i"
    // intuition points.
    enterLoop(F->LoopId);
    walkStmt(F->Init.get());
    if (F->Cond)
      walkExpr(F->Cond.get());
    if (F->Update)
      walkExpr(F->Update.get());
    walkStmt(F->Body.get());
    exitLoop();
    return;
  }
  case StmtKind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    walkExpr(R->Value.get());
    return;
  }
  case StmtKind::ExprStmt:
    walkExpr(static_cast<const ExprStmt *>(S)->E.get());
    return;
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

} // namespace

IndexDataflow algoprof::analysis::computeIndexDataflow(const Program &P) {
  IndexDataflow Result;
  for (const auto &C : P.Classes) {
    for (const auto &M : C->Methods) {
      if (!M->Body)
        continue;
      std::string Qualified =
          C->Name + "." + (M->IsCtor ? "<init>" : M->Name);
      MethodWalker W(Qualified, Result);
      W.walkStmt(M->Body.get());
    }
  }
  return Result;
}

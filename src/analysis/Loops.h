//===- analysis/Loops.h - Natural loop detection ----------------*- C++-*-===//
///
/// \file
/// Natural loops recovered from back edges of the bytecode CFG, plus the
/// loop nesting forest. This is the static half of the paper's loop
/// instrumentation: the VM's LoopEventMap is derived from this structure
/// and fires loop entry / back edge / exit events at run time.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_LOOPS_H
#define ALGOPROF_ANALYSIS_LOOPS_H

#include "analysis/Cfg.h"
#include "analysis/Dominators.h"

#include <vector>

namespace algoprof {
namespace analysis {

/// One natural loop. Loops sharing a header block are merged, so headers
/// identify loops uniquely within a method.
struct Loop {
  int Id = -1;
  int HeaderBlock = -1;
  int HeaderPc = -1;        ///< First pc of the header block.
  int Parent = -1;          ///< Enclosing loop id, or -1.
  int Depth = 0;            ///< Nesting depth; outermost loops have 0.
  std::vector<char> InLoop; ///< Per-block membership bitmap.
  int AstLoopId = -1;       ///< Source loop id (via bc::LoopMeta), or -1.

  bool contains(int Block) const {
    return InLoop[static_cast<size_t>(Block)] != 0;
  }
};

/// All loops of one method.
class LoopInfo {
public:
  std::vector<Loop> Loops;

  /// Innermost loop id containing each block (-1 when outside all loops).
  std::vector<int> InnermostAtBlock;

  int numLoops() const { return static_cast<int>(Loops.size()); }

  /// Innermost loop containing \p Block, or -1.
  int innermostAt(int Block) const {
    return InnermostAtBlock[static_cast<size_t>(Block)];
  }

  /// Loop ids containing \p Block, innermost first.
  std::vector<int> loopChainAt(int Block) const;
};

/// Detects the natural loops of \p G and matches them against the
/// compiler's source-loop metadata in \p Method (by header pc).
LoopInfo computeLoops(const bc::MethodInfo &Method, const Cfg &G,
                      const DominatorTree &DT);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_LOOPS_H

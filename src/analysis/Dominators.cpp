//===- analysis/Dominators.cpp --------------------------------------------===//

#include "analysis/Dominators.h"

#include <cassert>

using namespace algoprof;
using namespace algoprof::analysis;

bool DominatorTree::dominates(int A, int B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  int Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    int Next = Idom[static_cast<size_t>(Cur)];
    if (Next == Cur)
      return false; // Reached the entry without meeting A.
    Cur = Next;
  }
}

DominatorTree algoprof::analysis::computeDominators(const Cfg &G) {
  DominatorTree DT;
  size_t N = static_cast<size_t>(G.numBlocks());
  DT.Idom.assign(N, -1);

  std::vector<int> Rpo = G.reversePostOrder();
  std::vector<int> RpoIndex(N, -1);
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[static_cast<size_t>(Rpo[I])] = static_cast<int>(I);

  int Entry = G.entry();
  DT.Idom[static_cast<size_t>(Entry)] = Entry;

  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoIndex[static_cast<size_t>(A)] >
             RpoIndex[static_cast<size_t>(B)])
        A = DT.Idom[static_cast<size_t>(A)];
      while (RpoIndex[static_cast<size_t>(B)] >
             RpoIndex[static_cast<size_t>(A)])
        B = DT.Idom[static_cast<size_t>(B)];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B : Rpo) {
      if (B == Entry)
        continue;
      int NewIdom = -1;
      for (int P : G.Blocks[static_cast<size_t>(B)].Preds) {
        if (DT.Idom[static_cast<size_t>(P)] < 0)
          continue; // Unprocessed or unreachable predecessor.
        NewIdom = NewIdom < 0 ? P : Intersect(NewIdom, P);
      }
      assert(NewIdom >= 0 && "reachable block without processed preds");
      if (DT.Idom[static_cast<size_t>(B)] != NewIdom) {
        DT.Idom[static_cast<size_t>(B)] = NewIdom;
        Changed = true;
      }
    }
  }
  return DT;
}

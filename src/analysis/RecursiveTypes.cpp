//===- analysis/RecursiveTypes.cpp ----------------------------------------===//

#include "analysis/RecursiveTypes.h"

#include "analysis/Scc.h"

#include <algorithm>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::bc;

/// Strips array dimensions; returns the class id or -1 for scalar types.
static int32_t strippedClassId(const Module &M, TypeId T) {
  while (T >= 0 && M.Types[static_cast<size_t>(T)].Kind == RtTypeKind::Array)
    T = M.Types[static_cast<size_t>(T)].Elem;
  if (T < 0)
    return -1;
  const RuntimeType &RT = M.Types[static_cast<size_t>(T)];
  return RT.Kind == RtTypeKind::Class ? RT.ClassId : -1;
}

RecursiveTypes
algoprof::analysis::computeRecursiveTypes(const Module &M) {
  size_t NumClasses = M.Classes.size();
  int32_t ObjectId = M.findClassId("Object");

  // Subclass closure per class (including self); Object expands to itself
  // only (see the header comment).
  std::vector<std::vector<int32_t>> SubsOrSelf(NumClasses);
  for (size_t C = 0; C < NumClasses; ++C)
    SubsOrSelf[C].push_back(static_cast<int32_t>(C));
  for (const ClassInfo &C : M.Classes)
    for (int32_t A = C.SuperId; A >= 0;
         A = M.Classes[static_cast<size_t>(A)].SuperId)
      if (A != ObjectId)
        SubsOrSelf[static_cast<size_t>(A)].push_back(C.Id);

  auto Expand = [&](int32_t ClassId) -> const std::vector<int32_t> & {
    return SubsOrSelf[static_cast<size_t>(ClassId)];
  };

  // Type-reference graph with subtyping folded in.
  std::vector<std::vector<int32_t>> Adj(NumClasses);
  for (const FieldInfo &F : M.Fields) {
    int32_t Target = strippedClassId(M, F.Type);
    if (Target < 0)
      continue;
    for (int32_t Src : Expand(F.ClassId))
      for (int32_t Dst : Expand(Target))
        Adj[static_cast<size_t>(Src)].push_back(Dst);
  }
  for (auto &Out : Adj) {
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }

  int32_t NumSccs = 0;
  RecursiveTypes RT;
  RT.ClassScc = computeSccs(Adj, NumSccs);

  std::vector<int32_t> SccSize(static_cast<size_t>(NumSccs), 0);
  for (size_t C = 0; C < NumClasses; ++C)
    ++SccSize[static_cast<size_t>(RT.ClassScc[C])];

  RT.ClassIsRecursive.assign(NumClasses, 0);
  for (size_t C = 0; C < NumClasses; ++C) {
    bool SelfLoop = std::binary_search(Adj[C].begin(), Adj[C].end(),
                                       static_cast<int32_t>(C));
    if (SccSize[static_cast<size_t>(RT.ClassScc[C])] > 1 || SelfLoop)
      RT.ClassIsRecursive[C] = 1;
  }

  // A field is a recursive link when some (declaring-or-sub, target-or-sub)
  // pair shares a cyclic SCC.
  RT.FieldIsLink.assign(M.Fields.size(), 0);
  for (const FieldInfo &F : M.Fields) {
    int32_t Target = strippedClassId(M, F.Type);
    if (Target < 0)
      continue;
    for (int32_t Src : Expand(F.ClassId)) {
      if (RT.FieldIsLink[static_cast<size_t>(F.Id)])
        break;
      for (int32_t Dst : Expand(Target)) {
        if (RT.ClassScc[static_cast<size_t>(Src)] ==
                RT.ClassScc[static_cast<size_t>(Dst)] &&
            RT.ClassIsRecursive[static_cast<size_t>(Src)]) {
          RT.FieldIsLink[static_cast<size_t>(F.Id)] = 1;
          break;
        }
      }
    }
  }
  return RT;
}

//===- analysis/Dominators.h - Dominator tree -------------------*- C++-*-===//
///
/// \file
/// Iterative dominator computation (Cooper–Harvey–Kennedy, "A Simple,
/// Fast Dominance Algorithm") over the bytecode CFG. Natural-loop
/// detection builds on this.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_DOMINATORS_H
#define ALGOPROF_ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

namespace algoprof {
namespace analysis {

/// Immediate-dominator table for one CFG.
class DominatorTree {
public:
  /// Idom[B] is the immediate dominator of block B; the entry block is its
  /// own idom, and unreachable blocks have -1.
  std::vector<int> Idom;

  /// True when \p A dominates \p B (reflexive). Unreachable blocks
  /// dominate nothing and are dominated by nothing.
  bool dominates(int A, int B) const;

  bool isReachable(int B) const { return Idom[static_cast<size_t>(B)] >= 0; }
};

/// Computes the dominator tree of \p G.
DominatorTree computeDominators(const Cfg &G);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_DOMINATORS_H

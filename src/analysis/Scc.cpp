//===- analysis/Scc.cpp ---------------------------------------------------===//

#include "analysis/Scc.h"

#include <algorithm>

using namespace algoprof;
using namespace algoprof::analysis;

std::vector<int32_t>
algoprof::analysis::computeSccs(const std::vector<std::vector<int32_t>> &Adj,
                                int32_t &NumSccs) {
  size_t N = Adj.size();
  std::vector<int32_t> Index(N, -1), LowLink(N, 0), SccOf(N, -1), Stack;
  std::vector<char> OnStack(N, 0);
  int32_t NextIndex = 0;
  NumSccs = 0;

  struct Frame {
    int32_t V;
    size_t NextEdge;
  };

  auto NewNode = [&](int32_t V) {
    Index[static_cast<size_t>(V)] = NextIndex;
    LowLink[static_cast<size_t>(V)] = NextIndex;
    ++NextIndex;
    Stack.push_back(V);
    OnStack[static_cast<size_t>(V)] = 1;
  };

  for (size_t Root = 0; Root < N; ++Root) {
    if (Index[Root] >= 0)
      continue;
    std::vector<Frame> CallStack;
    CallStack.push_back({static_cast<int32_t>(Root), 0});
    NewNode(static_cast<int32_t>(Root));
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      const auto &Edges = Adj[static_cast<size_t>(F.V)];
      if (F.NextEdge < Edges.size()) {
        int32_t W = Edges[F.NextEdge++];
        if (Index[static_cast<size_t>(W)] < 0) {
          NewNode(W);
          CallStack.push_back({W, 0});
        } else if (OnStack[static_cast<size_t>(W)]) {
          LowLink[static_cast<size_t>(F.V)] =
              std::min(LowLink[static_cast<size_t>(F.V)],
                       Index[static_cast<size_t>(W)]);
        }
        continue;
      }
      int32_t V = F.V;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        int32_t Parent = CallStack.back().V;
        LowLink[static_cast<size_t>(Parent)] =
            std::min(LowLink[static_cast<size_t>(Parent)],
                     LowLink[static_cast<size_t>(V)]);
      }
      if (LowLink[static_cast<size_t>(V)] == Index[static_cast<size_t>(V)]) {
        for (;;) {
          int32_t W = Stack.back();
          Stack.pop_back();
          OnStack[static_cast<size_t>(W)] = 0;
          SccOf[static_cast<size_t>(W)] = NumSccs;
          if (W == V)
            break;
        }
        ++NumSccs;
      }
    }
  }
  return SccOf;
}

//===- analysis/Scc.h - Strongly connected components -----------*- C++-*-===//
///
/// \file
/// Iterative Tarjan SCC over adjacency lists, shared by the call-graph
/// recursion analysis and the recursive-type analysis.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_SCC_H
#define ALGOPROF_ANALYSIS_SCC_H

#include <cstdint>
#include <vector>

namespace algoprof {
namespace analysis {

/// Computes strongly connected components of the graph given by \p Adj.
/// \param [out] NumSccs receives the component count.
/// \returns the component id of each node (components are numbered in
/// reverse topological completion order).
std::vector<int32_t> computeSccs(const std::vector<std::vector<int32_t>> &Adj,
                                 int32_t &NumSccs);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_SCC_H

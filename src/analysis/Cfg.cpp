//===- analysis/Cfg.cpp ---------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <cassert>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::bc;

std::vector<int> Cfg::reversePostOrder() const {
  std::vector<int> Order;
  std::vector<char> State(Blocks.size(), 0); // 0=new, 1=open, 2=done
  std::vector<std::pair<int, size_t>> Stack;  // (block, next succ index)
  Stack.emplace_back(entry(), 0);
  State[static_cast<size_t>(entry())] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const BasicBlock &Block = Blocks[static_cast<size_t>(B)];
    if (NextSucc < Block.Succs.size()) {
      int S = Block.Succs[NextSucc++];
      if (State[static_cast<size_t>(S)] == 0) {
        State[static_cast<size_t>(S)] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[static_cast<size_t>(B)] = 2;
    Order.push_back(B);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

Cfg algoprof::analysis::buildCfg(const MethodInfo &Method) {
  const std::vector<Instr> &Code = Method.Code;
  int N = static_cast<int>(Code.size());
  assert(N > 0 && "compiled methods always end in a terminator");

  // Find leaders.
  std::vector<char> Leader(static_cast<size_t>(N), 0);
  Leader[0] = 1;
  for (int Pc = 0; Pc < N; ++Pc) {
    const Instr &I = Code[static_cast<size_t>(Pc)];
    if (isBranch(I.Op)) {
      assert(I.A >= 0 && I.A < N && "branch target out of range");
      Leader[static_cast<size_t>(I.A)] = 1;
      if (Pc + 1 < N)
        Leader[static_cast<size_t>(Pc + 1)] = 1;
      // Fused branches fall through past their shadow pcs; the real
      // fall-through successor must head its own block.
      if (Pc + instrWidth(I.Op) < N)
        Leader[static_cast<size_t>(Pc + instrWidth(I.Op))] = 1;
    } else if (isTerminator(I.Op) && Pc + 1 < N) {
      Leader[static_cast<size_t>(Pc + 1)] = 1;
    }
  }

  Cfg G;
  G.BlockAtPc.assign(static_cast<size_t>(N), -1);
  for (int Pc = 0; Pc < N; ++Pc) {
    if (Leader[static_cast<size_t>(Pc)]) {
      BasicBlock B;
      B.Id = G.numBlocks();
      B.Begin = Pc;
      G.Blocks.push_back(std::move(B));
    }
    G.BlockAtPc[static_cast<size_t>(Pc)] = G.numBlocks() - 1;
  }
  for (BasicBlock &B : G.Blocks)
    B.End = (B.Id + 1 < G.numBlocks()) ? G.Blocks[static_cast<size_t>(B.Id + 1)].Begin
                                       : N;

  // Edges.
  for (BasicBlock &B : G.Blocks) {
    const Instr &Last = Code[static_cast<size_t>(B.End - 1)];
    auto AddEdge = [&](int TargetPc) {
      int T = G.blockAt(TargetPc);
      B.Succs.push_back(T);
    };
    // Fall-through steps by instrWidth so a fused cluster's shadow pcs
    // are not successors of the head (only fuzz mutants put fused
    // opcodes in Method.Code; compiled modules fuse after CFG build).
    int FallPc = (B.End - 1) + instrWidth(Last.Op);
    if (Last.Op == Opcode::Goto) {
      AddEdge(Last.A);
    } else if (Last.Op == Opcode::IfTrue || Last.Op == Opcode::IfFalse ||
               Last.Op == Opcode::FusedCmpBr ||
               Last.Op == Opcode::FusedLoadLoadCmpBr) {
      AddEdge(Last.A);
      if (FallPc < N)
        AddEdge(FallPc);
    } else if (!isTerminator(Last.Op)) {
      if (FallPc < N)
        AddEdge(FallPc);
    }
  }
  for (const BasicBlock &B : G.Blocks)
    for (int S : B.Succs)
      G.Blocks[static_cast<size_t>(S)].Preds.push_back(B.Id);
  return G;
}

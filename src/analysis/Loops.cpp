//===- analysis/Loops.cpp -------------------------------------------------===//

#include "analysis/Loops.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace algoprof;
using namespace algoprof::analysis;

std::vector<int> LoopInfo::loopChainAt(int Block) const {
  std::vector<int> Chain;
  int L = innermostAt(Block);
  while (L >= 0) {
    Chain.push_back(L);
    L = Loops[static_cast<size_t>(L)].Parent;
  }
  return Chain;
}

LoopInfo algoprof::analysis::computeLoops(const bc::MethodInfo &Method,
                                          const Cfg &G,
                                          const DominatorTree &DT) {
  LoopInfo LI;
  size_t N = static_cast<size_t>(G.numBlocks());

  // Collect back edges grouped by header (loops with a shared header are
  // one natural loop).
  std::map<int, std::vector<int>> LatchesByHeader;
  for (const BasicBlock &B : G.Blocks) {
    if (!DT.isReachable(B.Id))
      continue;
    for (int S : B.Succs)
      if (DT.dominates(S, B.Id))
        LatchesByHeader[S].push_back(B.Id);
  }

  // Build each loop body: header plus all blocks that reach a latch
  // without passing through the header.
  for (auto &[Header, Latches] : LatchesByHeader) {
    Loop L;
    L.Id = LI.numLoops();
    L.HeaderBlock = Header;
    L.HeaderPc = G.Blocks[static_cast<size_t>(Header)].Begin;
    L.InLoop.assign(N, 0);
    L.InLoop[static_cast<size_t>(Header)] = 1;
    std::vector<int> Work;
    for (int Latch : Latches) {
      if (!L.InLoop[static_cast<size_t>(Latch)]) {
        L.InLoop[static_cast<size_t>(Latch)] = 1;
        Work.push_back(Latch);
      }
    }
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      for (int P : G.Blocks[static_cast<size_t>(B)].Preds) {
        if (!DT.isReachable(P) || L.InLoop[static_cast<size_t>(P)])
          continue;
        L.InLoop[static_cast<size_t>(P)] = 1;
        Work.push_back(P);
      }
    }
    LI.Loops.push_back(std::move(L));
  }

  // Nesting: parent is the smallest strictly-containing loop.
  auto BlockCount = [](const Loop &L) {
    return std::count(L.InLoop.begin(), L.InLoop.end(), 1);
  };
  for (Loop &L : LI.Loops) {
    int Best = -1;
    long BestSize = -1;
    for (const Loop &Candidate : LI.Loops) {
      if (Candidate.Id == L.Id || !Candidate.contains(L.HeaderBlock))
        continue;
      // A distinct loop containing our header contains the whole loop
      // (natural loops are either disjoint or nested once headers merge).
      long Size = BlockCount(Candidate);
      if (Best < 0 || Size < BestSize) {
        Best = Candidate.Id;
        BestSize = Size;
      }
    }
    L.Parent = Best;
  }
  for (Loop &L : LI.Loops) {
    int Depth = 0;
    for (int P = L.Parent; P >= 0; P = LI.Loops[static_cast<size_t>(P)].Parent)
      ++Depth;
    L.Depth = Depth;
  }

  // Innermost loop per block: the deepest loop containing it.
  LI.InnermostAtBlock.assign(N, -1);
  for (size_t B = 0; B < N; ++B) {
    int Best = -1;
    int BestDepth = -1;
    for (const Loop &L : LI.Loops)
      if (L.contains(static_cast<int>(B)) && L.Depth > BestDepth) {
        Best = L.Id;
        BestDepth = L.Depth;
      }
    LI.InnermostAtBlock[B] = Best;
  }

  // Match against the compiler's source-loop metadata.
  for (Loop &L : LI.Loops)
    for (const bc::LoopMeta &Meta : Method.Loops)
      if (Meta.HeaderPc == L.HeaderPc) {
        L.AstLoopId = Meta.AstLoopId;
        break;
      }
  return LI;
}

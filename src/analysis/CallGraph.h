//===- analysis/CallGraph.h - Call graph and recursion headers --*- C++-*-===//
///
/// \file
/// Conservative static call graph (virtual calls resolve to every
/// override) plus recursion-cycle detection. A *recursion header* is the
/// canonical method chosen per cyclic strongly connected component; the
/// paper (citing ECOOP'11 [21]) uses headers to limit method-entry
/// instrumentation to methods that can actually recurse.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_CALLGRAPH_H
#define ALGOPROF_ANALYSIS_CALLGRAPH_H

#include "bytecode/Module.h"

#include <vector>

namespace algoprof {
namespace analysis {

/// Static call graph over method ids.
class CallGraph {
public:
  /// Callees[M] lists the methods M may invoke (deduplicated, sorted).
  std::vector<std::vector<int32_t>> Callees;

  /// SccId[M] identifies the strongly connected component of M.
  std::vector<int32_t> SccId;

  /// True when M belongs to a recursive cycle (SCC of size > 1, or a
  /// self-loop).
  std::vector<char> IsRecursive;

  /// True when M is the canonical header of its recursive cycle. Headers
  /// are chosen deterministically (smallest method id in the SCC).
  std::vector<char> IsRecursionHeader;

  bool isRecursive(int32_t M) const {
    return IsRecursive[static_cast<size_t>(M)] != 0;
  }
  bool isHeader(int32_t M) const {
    return IsRecursionHeader[static_cast<size_t>(M)] != 0;
  }
};

/// Builds the call graph of \p M and computes recursion headers.
CallGraph buildCallGraph(const bc::Module &M);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_CALLGRAPH_H

//===- analysis/IndexDataflow.h - Array index dataflow ----------*- C++-*-===//
///
/// \file
/// The Section 5 "future work" analysis of the paper: for loop nests like
///
///   for (int i=0; i<a.length; i++)
///     for (int j=0; j<a[i].length; j++)
///       a[i][j] = ...;
///
/// the outer loop performs no array access itself, so the common-input
/// grouping strategy fails to merge the nest into one algorithm (the "-"
/// and "*" rows of Table 1). This analysis links an outer loop to inner
/// loops whose array accesses use index variables the outer loop assigns,
/// giving the grouping pass the missing edges.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_INDEXDATAFLOW_H
#define ALGOPROF_ANALYSIS_INDEXDATAFLOW_H

#include "frontend/Ast.h"

#include <set>
#include <string>
#include <tuple>

namespace algoprof {
namespace analysis {

/// Loop-to-loop grouping edges derived from index dataflow. Loops are
/// identified by (qualified method name, AST loop id), the ids shared
/// with bc::LoopMeta and analysis::Loop::AstLoopId.
class IndexDataflow {
public:
  /// (method, outer ast loop id, inner ast loop id) triples; inner is a
  /// direct or transitive child — consecutive pairs along the nest are
  /// all present, so grouping only needs parent/child queries.
  std::set<std::tuple<std::string, int, int>> Links;

  /// True when the outer loop should be grouped with the inner loop.
  bool linked(const std::string &QualifiedMethod, int OuterAstLoopId,
              int InnerAstLoopId) const {
    return Links.count({QualifiedMethod, OuterAstLoopId, InnerAstLoopId}) >
           0;
  }

  bool empty() const { return Links.empty(); }
};

/// Runs the analysis over all method bodies of \p P (which must have
/// passed sema, so loop ids and local slots are assigned).
IndexDataflow computeIndexDataflow(const Program &P);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_INDEXDATAFLOW_H

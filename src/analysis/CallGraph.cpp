//===- analysis/CallGraph.cpp ---------------------------------------------===//

#include "analysis/CallGraph.h"

#include "analysis/Scc.h"

#include <algorithm>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::bc;

CallGraph algoprof::analysis::buildCallGraph(const Module &M) {
  CallGraph CG;
  size_t N = M.Methods.size();
  CG.Callees.resize(N);

  for (const MethodInfo &Caller : M.Methods) {
    std::vector<int32_t> &Out = CG.Callees[static_cast<size_t>(Caller.Id)];
    for (const Instr &I : Caller.Code) {
      switch (I.Op) {
      case Opcode::InvokeStatic:
      case Opcode::InvokeCtor:
        // Operand validity is only verified for *reachable* code; an
        // invalid callee in dead code must not poison the graph.
        if (I.A >= 0 && I.A < static_cast<int32_t>(N))
          Out.push_back(I.A);
        break;
      case Opcode::InvokeVirtual:
        // Conservative: any class whose vtable covers this slot.
        if (I.A < 0)
          break;
        for (const ClassInfo &C : M.Classes)
          if (I.A < static_cast<int32_t>(C.Vtable.size()))
            Out.push_back(C.Vtable[static_cast<size_t>(I.A)]);
        break;
      default:
        break;
      }
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }

  int32_t NumSccs = 0;
  CG.SccId = computeSccs(CG.Callees, NumSccs);
  CG.IsRecursive.assign(N, 0);
  CG.IsRecursionHeader.assign(N, 0);

  // SCC sizes and self-loops decide recursiveness.
  std::vector<int32_t> SccSize(static_cast<size_t>(NumSccs), 0);
  for (size_t V = 0; V < N; ++V)
    ++SccSize[static_cast<size_t>(CG.SccId[V])];
  for (size_t V = 0; V < N; ++V) {
    bool SelfLoop =
        std::binary_search(CG.Callees[V].begin(), CG.Callees[V].end(),
                           static_cast<int32_t>(V));
    if (SccSize[static_cast<size_t>(CG.SccId[V])] > 1 || SelfLoop)
      CG.IsRecursive[V] = 1;
  }

  // Header: smallest method id among the recursive members of each SCC.
  std::vector<int32_t> HeaderOfScc(static_cast<size_t>(NumSccs), -1);
  for (size_t V = 0; V < N; ++V) {
    if (!CG.IsRecursive[V])
      continue;
    int32_t &H = HeaderOfScc[static_cast<size_t>(CG.SccId[V])];
    if (H < 0 || static_cast<int32_t>(V) < H)
      H = static_cast<int32_t>(V);
  }
  for (int32_t H : HeaderOfScc)
    if (H >= 0)
      CG.IsRecursionHeader[static_cast<size_t>(H)] = 1;
  return CG;
}

//===- analysis/RecursiveTypes.h - Recursive data type detection *- C++-*-===//
///
/// \file
/// Static detection of recursive data types (paper Sec. 3.1, citing the
/// MODELS'11 structural-models analysis [22]). A class participates in a
/// recursive type when it lies on a cycle of the type-reference graph;
/// the fields realizing such cycles are the *recursive links* that the
/// profiler instruments (Node.next, Node.prev — but not payload fields).
///
/// Subtyping is folded in: a field of declared type D may reference any
/// subclass of D, and subclasses inherit their ancestors' fields. Fields
/// of declared type Object are treated as pointing to Object only — this
/// keeps erased-generic payload fields out of the link set, matching the
/// intent of the Java original where payloads are type variables.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_RECURSIVETYPES_H
#define ALGOPROF_ANALYSIS_RECURSIVETYPES_H

#include "bytecode/Module.h"

#include <vector>

namespace algoprof {
namespace analysis {

/// Result of the recursive-type analysis over a module.
class RecursiveTypes {
public:
  /// Per class id: the class is part of a recursive data type.
  std::vector<char> ClassIsRecursive;

  /// Per field id: the field is a recursive link (participates in a type
  /// cycle). Only accesses to these fields are profiled as structure
  /// operations.
  std::vector<char> FieldIsLink;

  /// Per class id: the type-graph SCC, usable as a coarse "structure
  /// type" identity (the SameType snapshot-equivalence criterion keys on
  /// this).
  std::vector<int32_t> ClassScc;

  bool isRecursiveClass(int32_t ClassId) const {
    return ClassId >= 0 &&
           ClassIsRecursive[static_cast<size_t>(ClassId)] != 0;
  }
  bool isLinkField(int32_t FieldId) const {
    return FieldIsLink[static_cast<size_t>(FieldId)] != 0;
  }
};

/// Runs the analysis over \p M.
RecursiveTypes computeRecursiveTypes(const bc::Module &M);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_RECURSIVETYPES_H

//===- analysis/Cfg.h - Control-flow graph over bytecode --------*- C++-*-===//
///
/// \file
/// Basic-block CFG recovered from a compiled method's bytecode. Loop
/// structure is *not* trusted from the front end: like the paper's binary
/// instrumentation, all loop information is recomputed from branches
/// (see analysis/Loops.h).
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_ANALYSIS_CFG_H
#define ALGOPROF_ANALYSIS_CFG_H

#include "bytecode/Module.h"

#include <vector>

namespace algoprof {
namespace analysis {

/// A basic block: the half-open pc range [Begin, End).
struct BasicBlock {
  int Id = -1;
  int Begin = 0;
  int End = 0;
  std::vector<int> Succs;
  std::vector<int> Preds;
};

/// The CFG of one method. Block 0 is the entry block (pc 0).
class Cfg {
public:
  std::vector<BasicBlock> Blocks;

  /// Maps every pc to its containing block id.
  std::vector<int> BlockAtPc;

  int entry() const { return 0; }
  int numBlocks() const { return static_cast<int>(Blocks.size()); }
  int blockAt(int Pc) const { return BlockAtPc[static_cast<size_t>(Pc)]; }

  /// Blocks in reverse postorder from the entry; unreachable blocks are
  /// absent.
  std::vector<int> reversePostOrder() const;
};

/// Builds the CFG of \p Method.
Cfg buildCfg(const bc::MethodInfo &Method);

} // namespace analysis
} // namespace algoprof

#endif // ALGOPROF_ANALYSIS_CFG_H

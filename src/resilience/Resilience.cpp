//===- resilience/Resilience.cpp ------------------------------------------===//

#include "resilience/Resilience.h"

#include <cerrno>
#include <cstdlib>

using namespace algoprof;
using namespace algoprof::resilience;

const char *resilience::failurePolicyName(FailurePolicy P) {
  switch (P) {
  case FailurePolicy::Fail:
    return "fail";
  case FailurePolicy::Skip:
    return "skip";
  case FailurePolicy::Retry:
    return "retry";
  }
  return "?";
}

bool resilience::parseFailurePolicy(const std::string &Name,
                                    FailurePolicy &Out) {
  if (Name == "fail")
    Out = FailurePolicy::Fail;
  else if (Name == "skip")
    Out = FailurePolicy::Skip;
  else if (Name == "retry")
    Out = FailurePolicy::Retry;
  else
    return false;
  return true;
}

const char *resilience::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::HeapOom:
    return "heap-oom";
  case FaultSite::RunStart:
    return "run-start-fail";
  case FaultSite::IoWrite:
    return "io-write-fail";
  }
  return "?";
}

namespace {

bool parseRunTarget(const std::string &Target, int64_t &Run) {
  if (Target.rfind("run", 0) != 0 || Target.size() <= 3)
    return false;
  const std::string Digits = Target.substr(3);
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Digits.c_str(), &End, 10);
  if (End == Digits.c_str() || *End != '\0' || errno == ERANGE || V < 0)
    return false;
  Run = V;
  return true;
}

bool validStream(const std::string &S) {
  return S == "report" || S == "trace" || S == "metrics";
}

/// Parses one "site@target[:once]" fault.
bool parseFault(const std::string &Item, Fault &Out, std::string &Err) {
  size_t At = Item.find('@');
  if (At == std::string::npos) {
    Err = "fault '" + Item + "' lacks an @target";
    return false;
  }
  std::string Site = Item.substr(0, At);
  std::string Target = Item.substr(At + 1);
  Out = Fault();
  size_t Colon = Target.find(':');
  if (Colon != std::string::npos) {
    std::string Suffix = Target.substr(Colon + 1);
    Target = Target.substr(0, Colon);
    if (Suffix != "once") {
      Err = "unknown fault suffix ':" + Suffix + "' in '" + Item + "'";
      return false;
    }
    Out.Once = true;
  }
  if (Site == "heap-oom" || Site == "run-start-fail") {
    Out.Site = Site == "heap-oom" ? FaultSite::HeapOom : FaultSite::RunStart;
    if (!parseRunTarget(Target, Out.Run)) {
      Err = "fault '" + Item + "' needs a runN target (e.g. " + Site +
            "@run3)";
      return false;
    }
    return true;
  }
  if (Site == "io-write-fail") {
    Out.Site = FaultSite::IoWrite;
    if (Out.Once) {
      Err = "io-write-fail does not support :once ('" + Item + "')";
      return false;
    }
    if (!validStream(Target)) {
      Err = "fault '" + Item +
            "' needs a stream target: report | trace | metrics";
      return false;
    }
    Out.Stream = Target;
    return true;
  }
  Err = "unknown fault site '" + Site +
        "' (expected heap-oom | run-start-fail | io-write-fail)";
  return false;
}

} // namespace

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out,
                      std::string &Err) {
  Out.Faults.clear();
  Err.clear();
  size_t Pos = 0;
  while (Pos <= Spec.size() && !Spec.empty()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Item.empty()) {
      Err = "empty fault in spec '" + Spec + "'";
      return false;
    }
    Fault F;
    if (!parseFault(Item, F, Err))
      return false;
    Out.Faults.push_back(std::move(F));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

bool FaultPlan::hasRunFaults() const {
  for (const Fault &F : Faults)
    if (F.Site == FaultSite::HeapOom || F.Site == FaultSite::RunStart)
      return true;
  return false;
}

bool FaultPlan::fires(FaultSite Site, int64_t Run, int Attempt) const {
  for (const Fault &F : Faults) {
    if (F.Site != Site || F.Run != Run)
      continue;
    if (F.Once && Attempt > 0)
      continue;
    return true;
  }
  return false;
}

bool FaultPlan::firesIoWrite(const std::string &Stream) const {
  for (const Fault &F : Faults)
    if (F.Site == FaultSite::IoWrite && F.Stream == Stream)
      return true;
  return false;
}

std::string FaultPlan::str() const {
  std::string Out;
  for (const Fault &F : Faults) {
    if (!Out.empty())
      Out += ",";
    Out += faultSiteName(F.Site);
    Out += "@";
    if (F.Site == FaultSite::IoWrite)
      Out += F.Stream;
    else
      Out += "run" + std::to_string(F.Run);
    if (F.Once)
      Out += ":once";
  }
  return Out;
}

//===- resilience/Resilience.h - Fault tolerance for sweeps -----*- C++-*-===//
///
/// \file
/// The resilience layer: everything a profiling service needs to survive
/// a hostile run instead of dying with it. Three pieces, threaded
/// through vm -> core -> parallel -> report -> CLI:
///
///  - FailurePolicy: what a multi-run sweep does when one run fails.
///    `Fail` is the classic all-or-nothing behavior (every run's partial
///    state still merges, the caller decides); `Skip` quarantines failed
///    runs so the merged profile covers exactly the surviving runs;
///    `Retry` re-executes a failed run on a fresh interpreter (same
///    seed, bounded attempts) before quarantining it.
///
///  - FailureInfo: the per-run failure record a degraded sweep reports —
///    status, attempts, the budget that tripped, quarantine/injection
///    markers. Surfaced in parallel::SweepResult, the CLI diagnostics,
///    and the `degraded_runs` array of the algoprof-profile/2 JSON.
///
///  - FaultPlan: seeded, deterministic fault injection. A spec like
///    `heap-oom@run3,io-write-fail@metrics` arms named failure sites
///    (heap allocation, worker run startup, report/trace/metrics file
///    writes) so every failure path above is exercised by ordinary
///    tests (`ctest -L resilience`) instead of waiting for production
///    to find them. An `:once` suffix makes a fault transient — it
///    fires on the first attempt only, which is what lets the Retry
///    policy demonstrate recovery.
///
/// See docs/resilience.md for the full model and the site list.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_RESILIENCE_RESILIENCE_H
#define ALGOPROF_RESILIENCE_RESILIENCE_H

#include "vm/Interpreter.h"

#include <cstdint>
#include <string>
#include <vector>

namespace algoprof {
namespace resilience {

/// What a sweep does with a run whose final attempt failed.
enum class FailurePolicy : uint8_t {
  Fail, ///< Report the failure; merge whatever the run recorded
        ///< (legacy behavior — callers treat any failure as fatal).
  Skip, ///< Quarantine the run: exclude it from the merge entirely, so
        ///< the profile equals a serial session over the survivors.
  Retry ///< Re-run on a fresh interpreter (same inputs) up to the
        ///< bounded attempt count, then quarantine like Skip.
};

/// Stable lowercase name ("fail" | "skip" | "retry").
const char *failurePolicyName(FailurePolicy P);

/// Parses a policy name; returns false on anything unknown.
bool parseFailurePolicy(const std::string &Name, FailurePolicy &Out);

/// Named fault-injection sites.
enum class FaultSite : uint8_t {
  HeapOom,  ///< "heap-oom": a run's first heap allocation trips the
            ///< heap-byte budget machinery (RunStatus::BudgetExceeded).
  RunStart, ///< "run-start-fail": worker run startup aborts before the
            ///< interpreter executes anything.
  IoWrite,  ///< "io-write-fail": a named output stream (report | trace
            ///< | metrics) fails to write.
};

/// Stable site name as written in a spec.
const char *faultSiteName(FaultSite S);

/// One armed fault. Run-scoped sites target a global run index; the io
/// site targets a stream name.
struct Fault {
  FaultSite Site = FaultSite::HeapOom;
  int64_t Run = -1;   ///< Global run index (HeapOom / RunStart).
  std::string Stream; ///< "report" | "trace" | "metrics" (IoWrite).
  bool Once = false;  ///< Fires on attempt 0 only (":once" suffix).
};

/// A deterministic set of armed faults, parsed from a spec string:
///
///   spec   := fault ("," fault)*
///   fault  := "heap-oom@runN" [":once"]
///           | "run-start-fail@runN" [":once"]
///           | "io-write-fail@" ("report" | "trace" | "metrics")
///
/// The plan is pure data: the same spec arms the same faults in every
/// process, which is what makes injected failures reproducible.
class FaultPlan {
public:
  /// Parses \p Spec; on failure returns false and describes the problem
  /// in \p Err. An empty spec parses to an empty (disarmed) plan.
  static bool parse(const std::string &Spec, FaultPlan &Out,
                    std::string &Err);

  bool empty() const { return Faults.empty(); }

  /// True when any run-scoped fault (HeapOom / RunStart) is armed;
  /// such plans only fire inside a sweep engine.
  bool hasRunFaults() const;

  /// Should \p Site fire for global run \p Run on \p Attempt (0-based)?
  bool fires(FaultSite Site, int64_t Run, int Attempt) const;

  /// Should the io-write fault fire for \p Stream?
  bool firesIoWrite(const std::string &Stream) const;

  /// Re-renders the canonical spec ("heap-oom@run3:once,...") — used by
  /// option-parity signatures and diagnostics. Empty for an empty plan.
  std::string str() const;

  std::vector<Fault> Faults;
};

/// One failed run of a sweep, in its final state.
struct FailureInfo {
  int64_t Run = -1;          ///< Global run index (across sweep() calls).
  vm::RunStatus Status = vm::RunStatus::Trapped;
  int Attempts = 1;          ///< Executions of this run, retries included.
  std::string Budget;        ///< Tripped budget ("heap_bytes", "deadline",
                             ///< "fuel", ...), empty for plain traps.
  std::string Message;       ///< The final attempt's trap message.
  bool Quarantined = false;  ///< Excluded from the merged profile.
  bool Injected = false;     ///< Caused by an armed FaultPlan site.
};

// Io-write faults are session-scoped, not process-global: every fault —
// run-scoped and io-scoped alike — travels in SessionOptions::Faults,
// and writers consult `Plan.firesIoWrite(Stream)` for the session whose
// output they are producing. A daemon hosting many concurrent sessions
// can therefore inject an io failure into one session without another
// session's report writer seeing it.

} // namespace resilience
} // namespace algoprof

#endif // ALGOPROF_RESILIENCE_RESILIENCE_H

//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace algoprof;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::str() const {
  const char *Prefix = "error";
  if (Kind == DiagKind::Warning)
    Prefix = "warning";
  else if (Kind == DiagKind::Note)
    Prefix = "note";
  return Loc.str() + ": " + Prefix + ": " + Message;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

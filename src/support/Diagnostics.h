//===- support/Diagnostics.h - Source locations and diagnostics -*- C++-*-===//
///
/// \file
/// Source locations and a diagnostic sink shared by the MiniJ front end and
/// the bytecode compiler. The library does not use exceptions; fallible
/// phases report through a DiagnosticEngine and return null/false.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_SUPPORT_DIAGNOSTICS_H
#define ALGOPROF_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace algoprof {

/// A 1-based line/column position in a MiniJ source buffer.
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced by the front end and compiler.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line, for test assertions and tools.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace algoprof

#endif // ALGOPROF_SUPPORT_DIAGNOSTICS_H

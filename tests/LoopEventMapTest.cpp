//===- tests/LoopEventMapTest.cpp - Loop-event table construction ---------===//
//
// Direct unit tests of the control-transfer tables the interpreter
// consults (vm/LoopEventMap.h), independent of event delivery.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vm/LoopEventMap.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::vm;
using namespace algoprof::testutil;

namespace {

struct Tables {
  std::unique_ptr<prof::CompiledProgram> CP;
  const PreparedMethod *PM = nullptr;
  const bc::MethodInfo *M = nullptr;
};

Tables tablesOf(const std::string &Src, const std::string &Method) {
  Tables T;
  T.CP = compile(Src);
  if (!T.CP)
    return T;
  int32_t Id = T.CP->Mod->findMethodId("Main", Method);
  EXPECT_GE(Id, 0);
  T.PM = &T.CP->Prep.Methods[static_cast<size_t>(Id)];
  T.M = &T.CP->Mod->Methods[static_cast<size_t>(Id)];
  return T;
}

TEST(LoopEventMap, SingleLoopHasEntryBackEdgeAndExit) {
  Tables T = tablesOf(R"(
    class Main {
      static int m(int n) {
        int s = 0;
        while (n > 0) { s = s + n; n--; }
        return s;
      }
      static void main() { print(m(3)); }
    }
  )",
                      "m");
  ASSERT_NE(T.PM, nullptr);
  const LoopEventMap &LEM = T.PM->Events;

  int Entries = 0, BackEdges = 0, Exits = 0;
  for (const auto &[Key, Tr] : LEM.Transitions) {
    (void)Key;
    Entries += static_cast<int>(Tr.Entries.size());
    BackEdges += Tr.BackEdge >= 0 ? 1 : 0;
    Exits += static_cast<int>(Tr.Exits.size());
  }
  EXPECT_EQ(Entries, 1);   // One edge enters the loop.
  EXPECT_EQ(BackEdges, 1); // One latch.
  EXPECT_EQ(Exits, 1);     // One exit edge (the IfFalse).
}

TEST(LoopEventMap, InterestingTargetsCoverAllTransitionTargets) {
  Tables T = tablesOf(R"(
    class Main {
      static int m(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
          for (int j = 0; j < i; j++) {
            s = s + 1;
          }
        }
        return s;
      }
      static void main() { print(m(4)); }
    }
  )",
                      "m");
  ASSERT_NE(T.PM, nullptr);
  const LoopEventMap &LEM = T.PM->Events;
  for (const auto &[Key, Tr] : LEM.Transitions) {
    (void)Tr;
    int ToPc = static_cast<int>(Key & 0xffffffff);
    EXPECT_TRUE(LEM.InterestingTarget[static_cast<size_t>(ToPc)]);
  }
  // lookup() agrees with the raw map.
  for (const auto &[Key, Tr] : LEM.Transitions) {
    int FromPc = static_cast<int>(Key >> 32);
    int ToPc = static_cast<int>(Key & 0xffffffff);
    const LoopTransition *Found = LEM.lookup(FromPc, ToPc);
    ASSERT_NE(Found, nullptr);
    EXPECT_EQ(Found->Exits.size(), Tr.Exits.size());
    EXPECT_EQ(Found->BackEdge, Tr.BackEdge);
    EXPECT_EQ(Found->Entries.size(), Tr.Entries.size());
  }
}

TEST(LoopEventMap, BreakFromNestedLoopsExitsBothOnOneEdge) {
  Tables T = tablesOf(R"(
    class Main {
      static int m(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
          for (int j = 0; j < n; j++) {
            if (i * j == 6) {
              return s; // Leaves both loops via the return path.
            }
            s = s + 1;
          }
        }
        return s;
      }
      static void main() { print(m(5)); }
    }
  )",
                      "m");
  ASSERT_NE(T.PM, nullptr);
  const LoopEventMap &LEM = T.PM->Events;
  // The return pc sits inside both loops: its chain has two entries,
  // innermost first (greater depth first).
  bool SawDepthTwoChain = false;
  for (const auto &Chain : LEM.LoopChainAtPc)
    if (Chain.size() == 2)
      SawDepthTwoChain = true;
  EXPECT_TRUE(SawDepthTwoChain);
}

TEST(LoopEventMap, ChainsOrderedInnermostFirst) {
  Tables T = tablesOf(R"(
    class Main {
      static int m(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
          for (int j = 0; j < n; j++) {
            for (int k = 0; k < n; k++) {
              s = s + 1;
            }
          }
        }
        return s;
      }
      static void main() { print(m(2)); }
    }
  )",
                      "m");
  ASSERT_NE(T.PM, nullptr);
  const analysis::LoopInfo &LI = T.PM->Loops;
  for (const auto &Chain : T.PM->Events.LoopChainAtPc) {
    for (size_t I = 1; I < Chain.size(); ++I) {
      EXPECT_GT(LI.Loops[static_cast<size_t>(Chain[I - 1])].Depth,
                LI.Loops[static_cast<size_t>(Chain[I])].Depth);
    }
  }
}

TEST(LoopEventMap, StraightLineMethodHasNoTransitions) {
  Tables T = tablesOf(R"(
    class Main {
      static int m(int a, int b) { return a * b + 1; }
      static void main() { print(m(2, 3)); }
    }
  )",
                      "m");
  ASSERT_NE(T.PM, nullptr);
  EXPECT_TRUE(T.PM->Events.Transitions.empty());
  for (const auto &Chain : T.PM->Events.LoopChainAtPc)
    EXPECT_TRUE(Chain.empty());
}

} // namespace

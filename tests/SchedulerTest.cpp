//===- tests/SchedulerTest.cpp - Work-stealing pool + schedules -----------===//
///
/// \file
/// Two layers of scheduler coverage. First, unit tests of
/// parallel::JobSystem itself: every submitted job executes exactly
/// once, nested submissions are covered by wait(), a single worker
/// preserves submission order, and stealing actually moves work off a
/// busy worker's deque. Second, the schedule-perturbation property:
/// a sweep's merged profile must be byte-identical to a serial session
/// across 100+ seeded randomized schedules (per-job start delays +
/// shuffled steal-victim orders), including degraded sweeps that
/// quarantine runs mid-schedule. This is the load-bearing form of the
/// determinism argument in docs/parallel_sweeps.md: the *execution*
/// schedule is adversarial, the *merge* order never is.
///
//===----------------------------------------------------------------------===//

#include "SweepTestUtil.h"
#include "TestUtil.h"
#include "obs/Obs.h"
#include "parallel/JobSystem.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace algoprof;
using namespace algoprof::parallel;
using namespace algoprof::prof;
using namespace algoprof::programs;

namespace {

TEST(JobSystemTest, ExecutesEveryJobExactlyOnce) {
  JobSystem Pool(4);
  constexpr size_t N = 200;
  std::vector<std::atomic<int>> Hits(N);
  for (size_t I = 0; I < N; ++I)
    Pool.submit([&Hits, I] { Hits[I].fetch_add(1); });
  Pool.wait();
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "job " << I;
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.Submitted, N);
  EXPECT_EQ(S.totalExecuted(), N);
  EXPECT_EQ(S.Executed.size(), 4u);
}

TEST(JobSystemTest, WaitCoversNestedSubmissions) {
  // The corpus runner's shape: jobs submit further jobs; one wait()
  // must cover the whole transitive graph.
  JobSystem Pool(3);
  std::atomic<int> Leaves{0};
  for (int I = 0; I < 5; ++I)
    Pool.submit([&] {
      for (int J = 0; J < 4; ++J)
        Pool.submit([&] {
          for (int K = 0; K < 2; ++K)
            Pool.submit([&] { Leaves.fetch_add(1); });
        });
    });
  Pool.wait();
  EXPECT_EQ(Leaves.load(), 5 * 4 * 2);
  EXPECT_EQ(Pool.stats().totalExecuted(), 5u + 5 * 4 + 5 * 4 * 2);
}

#if ALGOPROF_OBS_ENABLED
TEST(JobSystemTest, WorkerCountersVisibleMidPoolLifetime) {
  // Pool workers never retire while their pool is alive, so the old
  // exit-time-only TLS folding reported zero jobs_executed to any
  // scrape taken mid-lifetime — exactly when a daemon's /metrics is
  // read. Workers now flush after every job: a snapshot between
  // wait() and pool destruction must already see all of them.
  obs::Snapshot Before = obs::snapshot();
  JobSystem Pool(3);
  constexpr uint64_t N = 64;
  std::atomic<uint64_t> Ran{0};
  for (uint64_t I = 0; I < N; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), N);

  obs::Snapshot After = obs::snapshot();
  obs::Snapshot Mid = After.deltaFrom(Before);
  constexpr size_t JobsExecuted =
      static_cast<size_t>(obs::Counter::JobsExecuted);
  EXPECT_EQ(Mid.Counters[JobsExecuted], N)
      << "mid-lifetime snapshot undercounts pool work (workers only "
         "folded their TLS counters at thread exit)";
  // The workers are parked, not retired: flushThisThread must publish
  // counts without inflating the retired-thread gauge.
  constexpr size_t RetiredThreads =
      static_cast<size_t>(obs::Gauge::RetiredThreads);
  EXPECT_EQ(After.Gauges[RetiredThreads], Before.Gauges[RetiredThreads]);
}
#endif // ALGOPROF_OBS_ENABLED

TEST(JobSystemTest, SingleWorkerPreservesSubmissionOrder) {
  // With one worker the pool degenerates to a FIFO queue — the property
  // that makes Jobs=1 sweeps trivially deterministic.
  JobSystem Pool(1);
  std::vector<int> Order;
  for (int I = 0; I < 50; ++I)
    Pool.submit([&Order, I] { Order.push_back(I); });
  Pool.wait();
  ASSERT_EQ(Order.size(), 50u);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(JobSystemTest, IdleWorkerStealsFromBusyWorker) {
  // Round-robin submission parks half the jobs behind a long job on
  // worker 0's deque; worker 1 must steal them instead of idling. The
  // long job sleeps (not spins), so this holds on a single-core box.
  JobSystem Pool(2);
  std::atomic<int> Done{0};
  Pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    Done.fetch_add(1);
  });
  for (int I = 0; I < 20; ++I)
    Pool.submit([&] { Done.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Done.load(), 21);
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.totalExecuted(), 21u);
  EXPECT_GT(S.totalStolen(), 0u);
  ASSERT_EQ(S.PeakQueueDepth.size(), 2u);
  EXPECT_GT(S.PeakQueueDepth[0], 0u);
}

TEST(JobSystemTest, PerturbedPoolStillExecutesEverything) {
  SchedulePerturbation P;
  P.Seed = 0x5eed;
  P.MaxDelayMicros = 100;
  JobSystem Pool(4, P);
  std::atomic<int> Done{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] { Done.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Done.load(), 64);
  EXPECT_EQ(Pool.stats().totalExecuted(), 64u);
}

//===----------------------------------------------------------------------===//
// Schedule-perturbation property: byte-identical profiles under 100+
// adversarial schedules
//===----------------------------------------------------------------------===//

struct Sigs {
  std::string Profiles;
  std::string Tree;
  std::string Inputs;
  bool operator==(const Sigs &O) const {
    return Profiles == O.Profiles && Tree == O.Tree && Inputs == O.Inputs;
  }
};

Sigs engineSigs(const parallel::SweepEngine &E) {
  return {testutil::profileSignature(E.buildProfiles(), E.inputs()),
          testutil::treeSignature(E.tree()),
          testutil::inputsSignature(E.inputs())};
}

TEST(SchedulePerturbationTest, MergedProfileIsScheduleInvariant) {
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);

  // Serial oracle over the same seeds, computed once.
  SessionOptions Base;
  std::vector<int64_t> Seeds = {0, 3, 5, 8, 11, 14};
  ProfileSession Serial(*CP, Base);
  for (int64_t Seed : Seeds) {
    vm::IoChannels Io;
    Io.Input = {Seed};
    ASSERT_TRUE(Serial.run("Main", "main", Io).ok());
  }
  Sigs Want = {
      testutil::profileSignature(Serial.buildProfiles(), Serial.inputs()),
      testutil::treeSignature(Serial.tree()),
      testutil::inputsSignature(Serial.inputs())};
  ASSERT_FALSE(Want.Tree.empty());

  // 100+ seeded schedules: per-job start delays up to 200us and
  // randomized steal-victim orders, at a worker count that guarantees
  // contention over 6 runs. Any schedule-dependent merge would diverge
  // in some iteration; the seed in the failure message reproduces it.
  SessionOptions SO = Base;
  SO.Jobs = 4;
  for (uint64_t Schedule = 1; Schedule <= 104; ++Schedule) {
    SchedulePerturbation P;
    P.Seed = 0x9e3779b9u * Schedule;
    P.MaxDelayMicros = 200;
    parallel::SweepEngine E(*CP, SO);
    E.setPerturbationForTest(P);
    std::vector<vm::IoChannels> Ios(Seeds.size());
    for (size_t I = 0; I < Seeds.size(); ++I)
      Ios[I].Input = {Seeds[I]};
    parallel::SweepResult SR = E.sweepWithInputs("Main", "main", Ios);
    ASSERT_TRUE(SR.allOk()) << "schedule seed " << P.Seed;
    Sigs Got = engineSigs(E);
    ASSERT_EQ(Want.Profiles, Got.Profiles) << "schedule seed " << P.Seed;
    ASSERT_EQ(Want.Tree, Got.Tree) << "schedule seed " << P.Seed;
    ASSERT_EQ(Want.Inputs, Got.Inputs) << "schedule seed " << P.Seed;
  }
}

TEST(SchedulePerturbationTest, DegradedMergeIsScheduleInvariant) {
  // The quarantine path under adversarial schedules: runs 1 and 4 are
  // killed by injected faults in whatever order the schedule lands
  // them; the degraded profile must still equal serial-over-survivors.
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);

  SessionOptions Oracle;
  ProfileSession Serial(*CP, Oracle);
  for (int64_t Seed : {0, 5, 8, 14}) { // Runs 1 (seed 3), 4 (seed 11) die.
    vm::IoChannels Io;
    Io.Input = {Seed};
    ASSERT_TRUE(Serial.run("Main", "main", Io).ok());
  }
  Sigs Want = {
      testutil::profileSignature(Serial.buildProfiles(), Serial.inputs()),
      testutil::treeSignature(Serial.tree()),
      testutil::inputsSignature(Serial.inputs())};

  SessionOptions SO;
  SO.Jobs = 4;
  SO.Seeds = {0, 3, 5, 8, 11, 14};
  SO.Policy = resilience::FailurePolicy::Skip;
  std::string Err;
  ASSERT_TRUE(resilience::FaultPlan::parse(
      "run-start-fail@run1,heap-oom@run4", SO.Faults, Err))
      << Err;
  for (uint64_t Schedule = 1; Schedule <= 25; ++Schedule) {
    SchedulePerturbation P;
    P.Seed = 0xc0ffee + Schedule;
    P.MaxDelayMicros = 200;
    parallel::SweepEngine E(*CP, SO);
    E.setPerturbationForTest(P);
    parallel::SweepResult SR = E.sweep("Main", "main");
    ASSERT_FALSE(SR.allOk());
    ASSERT_TRUE(SR.usable()) << "schedule seed " << P.Seed;
    ASSERT_EQ(SR.MergedRuns, 4) << "schedule seed " << P.Seed;
    ASSERT_EQ(SR.Failures.size(), 2u);
    EXPECT_EQ(SR.Failures[0].Run, 1);
    EXPECT_EQ(SR.Failures[1].Run, 4);
    Sigs Got = engineSigs(E);
    ASSERT_EQ(Want.Profiles, Got.Profiles) << "schedule seed " << P.Seed;
    ASSERT_EQ(Want.Tree, Got.Tree) << "schedule seed " << P.Seed;
    ASSERT_EQ(Want.Inputs, Got.Inputs) << "schedule seed " << P.Seed;
  }
}

} // namespace

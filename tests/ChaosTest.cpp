//===- tests/ChaosTest.cpp - Seeded fault schedules for the daemon --------===//
//
// The stage-3 self-healing guarantees under deterministic chaos: a
// byte-cutting proxy injects seeded connection resets, partial frame
// writes, and slow-client stalls between a retrying typed client and
// the daemon, across 50+ schedules — after every recovery the profile
// must be byte-identical to the serial CLI, every delta observed
// exactly once, and the journal bounded by compaction. Alongside the
// proxy schedules: journal fuzzing (bit flips, duplicate C records,
// oversized lengths), crash-state restarts with delta cursors,
// retained-result eviction (byte budget and TTL on an injected
// clock), graceful drain, and the /healthz + /readyz endpoints.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/Reporter.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Journal.h"
#include "support/Diagnostics.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

std::string chaosSocketPath() {
  static std::atomic<int> Counter{0};
  return "/tmp/algoprof-chaos-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

std::string chaosScratchPath(const char *Tag) {
  static std::atomic<int> Counter{0};
  return std::string("/tmp/algoprof-chaos-") + Tag + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1));
}

/// Deterministic per-schedule randomness (xorshift64): the whole fault
/// schedule derives from one seed, so a failing schedule replays.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b9) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  uint64_t range(uint64_t N) { return N ? next() % N : 0; }
};

const std::string &corpusSource(const std::string &Name) {
  for (const programs::CorpusProgram &P : programs::corpusPrograms())
    if (P.Name == Name)
      return P.Source;
  ADD_FAILURE() << "no corpus program " << Name;
  static std::string Empty;
  return Empty;
}

/// The serial CLI's bytes for the same program + options; the daemon
/// must reproduce them through any number of recoveries.
std::string serialReferenceJson(const std::string &Source,
                                prof::SessionOptions SO) {
  DiagnosticEngine Diags;
  std::unique_ptr<prof::CompiledProgram> CP =
      prof::compileMiniJ(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  SO.Jobs = 1;
  prof::ProfileDriver Driver(*CP, SO);
  Driver.runAll("Main", "main");
  std::vector<prof::AlgorithmProfile> Profiles = Driver.buildProfiles();
  report::ReportInput RI{&Driver.tree(), &Driver.inputs(), &Profiles,
                         &Driver.failures()};
  return report::Registry::builtin().find("json")->render(RI);
}

std::string httpGet(int Port, const std::string &Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL);
  std::string Resp;
  char Buf[4096];
  ssize_t R;
  while ((R = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, static_cast<size_t>(R));
  ::close(Fd);
  return Resp;
}

bool writeAll(int Fd, const char *P, size_t N) {
  while (N > 0) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The chaos proxy
//===----------------------------------------------------------------------===//

/// One connection's fault schedule. Byte counts are measured at the
/// proxy, so cuts land at arbitrary offsets — including inside the
/// 5-byte frame header (a short write the reader must treat as a
/// truncated frame, not garbage).
struct ConnPlan {
  size_t CutDownAfter = SIZE_MAX; ///< daemon->client bytes, then reset.
  size_t CutUpAfter = SIZE_MAX;   ///< client->daemon bytes, then reset.
  unsigned StallMs = 0;           ///< One mid-stream delivery stall.
};

/// A Unix-socket proxy that forwards client<->daemon traffic and
/// executes one ConnPlan per accepted connection (in accept order);
/// connections beyond the plan list pass through untouched — so every
/// schedule eventually lets the client through and the test asserts on
/// the recovered result, not on luck.
class ChaosProxy {
public:
  ChaosProxy(std::string BackendPath, std::vector<ConnPlan> Plans)
      : Backend(std::move(BackendPath)), Plans(std::move(Plans)),
        Path(chaosSocketPath()) {}

  ~ChaosProxy() { stop(); }

  bool start() {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return false;
    ::unlink(Path.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0 ||
        ::listen(ListenFd, 16) < 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    Acceptor = std::thread([this] { acceptLoop(); });
    return true;
  }

  void stop() {
    // Wake the blocked accept with shutdown, but only close the fd
    // AFTER the acceptor joined: closing first would race the
    // acceptor's re-read of ListenFd (and a recycled fd number could
    // even be accept()ed on).
    if (ListenFd >= 0) {
      Stopping.store(true);
      ::shutdown(ListenFd, SHUT_RDWR);
    }
    if (Acceptor.joinable())
      Acceptor.join();
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    for (std::thread &T : Pumps)
      if (T.joinable())
        T.join();
    Pumps.clear();
    ::unlink(Path.c_str());
  }

  const std::string &path() const { return Path; }

private:
  void acceptLoop() {
    size_t ConnIdx = 0;
    for (;;) {
      int C = ::accept(ListenFd, nullptr, nullptr);
      if (C < 0) {
        if (errno == EINTR && !Stopping.load())
          continue;
        return; // Listener shut down: proxy is stopping.
      }
      if (Stopping.load()) {
        ::close(C);
        return;
      }
      ConnPlan Plan =
          ConnIdx < Plans.size() ? Plans[ConnIdx] : ConnPlan();
      ++ConnIdx;
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::memcpy(Addr.sun_path, Backend.c_str(), Backend.size() + 1);
      int B = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (B < 0 || ::connect(B, reinterpret_cast<sockaddr *>(&Addr),
                             sizeof(Addr)) < 0) {
        if (B >= 0)
          ::close(B);
        ::close(C);
        continue; // The client sees a reset: also a fault to survive.
      }
      Pumps.emplace_back([this, C, B, Plan] { pump(C, B, Plan); });
    }
  }

  /// Forwards both directions until a side closes or the plan cuts the
  /// connection. A cut closes BOTH sockets at once — exactly what a
  /// dropped TCP connection or a killed peer looks like.
  void pump(int C, int B, ConnPlan Plan) {
    size_t Down = 0, Up = 0;
    bool Stalled = false;
    char Buf[4096];
    for (;;) {
      pollfd Fds[2] = {{C, POLLIN, 0}, {B, POLLIN, 0}};
      int PR = ::poll(Fds, 2, 30000);
      if (PR <= 0)
        break;
      if (Fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
        ssize_t R = ::recv(C, Buf, sizeof(Buf), 0);
        if (R <= 0)
          break;
        size_t N = static_cast<size_t>(R);
        if (Up + N > Plan.CutUpAfter) {
          // Forward only part of the client's frame, then drop the
          // link: the daemon sees a short write / truncated job.
          size_t Keep = Plan.CutUpAfter - Up;
          if (Keep)
            writeAll(B, Buf, Keep);
          break;
        }
        Up += N;
        if (!writeAll(B, Buf, N))
          break;
      }
      if (Fds[1].revents & (POLLIN | POLLHUP | POLLERR)) {
        ssize_t R = ::recv(B, Buf, sizeof(Buf), 0);
        if (R <= 0)
          break;
        size_t N = static_cast<size_t>(R);
        if (!Stalled && Plan.StallMs != 0 && Down >= Plan.CutDownAfter / 2) {
          // A one-off slow-client stall mid-delivery.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Plan.StallMs));
          Stalled = true;
        }
        if (Down + N > Plan.CutDownAfter) {
          size_t Keep = Plan.CutDownAfter - Down;
          if (Keep)
            writeAll(C, Buf, Keep); // Short write mid-frame, then cut.
          break;
        }
        Down += N;
        if (!writeAll(C, Buf, N))
          break;
      }
    }
    ::close(C);
    ::close(B);
  }

  std::string Backend;
  std::vector<ConnPlan> Plans;
  std::string Path;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::vector<std::thread> Pumps;
};

struct DaemonFixture {
  DaemonOptions Opts;
  std::unique_ptr<Daemon> D;

  explicit DaemonFixture(DaemonOptions O = DaemonOptions()) {
    Opts = std::move(O);
    if (Opts.SocketPath.empty())
      Opts.SocketPath = chaosSocketPath();
    if (Opts.Workers == 0)
      Opts.Workers = 2;
    D = std::make_unique<Daemon>(Opts);
    std::string Err;
    EXPECT_TRUE(D->start(Err)) << Err;
  }
};

/// A retry policy tuned for tests: plenty of reconnects, real socket
/// deadlines, but no wall-clock backoff (the schedules are already
/// deterministic; sleeping would only slow the suite).
RetryPolicy testRetryPolicy(uint64_t Seed) {
  RetryPolicy P;
  P.ConnectRetries = 8;
  P.TimeoutMs = 20000;
  P.BackoffInitialMs = 1;
  P.BackoffMaxMs = 2;
  P.JitterSeed = Seed;
  P.SleepMs = [](uint64_t) {};
  return P;
}

/// Asserts the merged delta stream is exactly runs 0..N-1, once each,
/// in order — the no-delta-twice, no-delta-lost invariant.
void expectExactDeltaStream(const TypedResult &R, size_t N) {
  ASSERT_EQ(N, R.Deltas.size());
  for (size_t I = 0; I < N; ++I) {
    EXPECT_EQ(static_cast<int64_t>(I), R.Deltas[I].Run);
    EXPECT_TRUE(R.Deltas[I].V2);
  }
}

uint64_t fileSize(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return 0;
  std::fseek(F, 0, SEEK_END);
  long Sz = std::ftell(F);
  std::fclose(F);
  return Sz < 0 ? 0 : static_cast<uint64_t>(Sz);
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeded chaos schedules through the cutting proxy
//===----------------------------------------------------------------------===//

TEST(ChaosService, FiftySeededFaultSchedulesRecoverByteIdentical) {
  std::string JournalPath = chaosScratchPath("journal");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  O.CompactBytes = 2048; // Aggressive: every few sessions rotate the WAL.
  DaemonFixture F(std::move(O));

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12, 16};
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  const std::string Reference =
      serialReferenceJson(corpusSource(Job.Corpus), SO);

  constexpr int NumSchedules = 50;
  uint64_t TotalRetries = 0;
  for (int Schedule = 0; Schedule < NumSchedules; ++Schedule) {
    SCOPED_TRACE("schedule " + std::to_string(Schedule));
    Rng R(0xC4A05u * 2654435761u + static_cast<uint64_t>(Schedule));

    // 1-3 faulty connections, then clean pass-through. Cut offsets
    // cover the whole reply shape: inside the Accepted frame's header,
    // between deltas, inside the Profile frame. Upstream cuts land
    // inside the Job frame. A third of the schedules add a stall.
    std::vector<ConnPlan> Plans;
    size_t Faulty = 1 + R.range(3);
    for (size_t I = 0; I < Faulty; ++I) {
      ConnPlan P;
      if (R.range(4) == 0) {
        P.CutUpAfter = R.range(60); // The Job frame is ~100 bytes.
      } else {
        P.CutDownAfter = 1 + R.range(2000);
        if (R.range(3) == 0)
          P.StallMs = 10 + static_cast<unsigned>(R.range(40));
      }
      Plans.push_back(P);
    }

    ChaosProxy Proxy(F.Opts.SocketPath, std::move(Plans));
    ASSERT_TRUE(Proxy.start());

    size_t LiveDeltas = 0;
    TypedResult Result =
        Client::unixSocket(Proxy.path())
            .run(Job, testRetryPolicy(static_cast<uint64_t>(Schedule) + 1),
                 [&](const RunDeltaMsg &) { ++LiveDeltas; });
    ASSERT_TRUE(Result.Ok)
        << Result.Error.Code << ": " << Result.Error.Message
        << " after " << Result.TransportRetries << " retries";
    expectExactDeltaStream(Result, 4);
    EXPECT_EQ(4u, LiveDeltas); // The callback saw each delta once too.
    EXPECT_EQ(Reference, Result.ProfileJson);
    TotalRetries += Result.TransportRetries;

    Proxy.stop();
  }

  // The harness must have actually hurt: every schedule forces at
  // least one cut (upstream cuts land inside the ~100-byte Job frame,
  // downstream cuts inside a multi-KB reply), so recoveries — not
  // first-try luck — produced the byte-identical results above.
  EXPECT_GE(TotalRetries, static_cast<uint64_t>(NumSchedules));

  // Compaction kept the WAL bounded across ~50-150 sessions: at most
  // the threshold plus one session's churn, nowhere near the
  // uncompacted growth (every session appends its whole Job payload).
  EXPECT_GT(F.D->stats().Compactions, 0u);
  EXPECT_LT(fileSize(JournalPath), 4096u);
  std::remove(JournalPath.c_str());
}

//===----------------------------------------------------------------------===//
// Crash-state restarts with delta cursors
//===----------------------------------------------------------------------===//

TEST(ChaosService, SeededCrashRestartsResumeFromCursor) {
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {3, 5, 7, 9};
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  const std::string Reference =
      serialReferenceJson(corpusSource(Job.Corpus), SO);

  for (int Round = 0; Round < 8; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round));
    Rng R(0xD15EA5Eu + static_cast<uint64_t>(Round) * 7919u);
    std::string JournalPath = chaosScratchPath("crash");

    // The crash state: a job accepted (A record, no C) by a daemon
    // that died at the journal checkpoint.
    uint64_t Id = 100 + static_cast<uint64_t>(Round);
    {
      Journal J;
      std::string Err;
      ASSERT_TRUE(J.open(JournalPath, Err)) << Err;
      ASSERT_TRUE(J.appendAccepted(Id, encodeJobRequest(Job)));
    }

    DaemonOptions O;
    O.JournalPath = JournalPath;
    DaemonFixture F(std::move(O));

    // Resume at a seeded cursor: the daemon owes exactly n-k deltas,
    // the tail of the stream, then the byte-identical document.
    uint64_t K = R.range(5); // 0..4 of 4 runs.
    JobSpec Rs;
    Rs.Resume = Id;
    Rs.FromDelta = K;
    TypedResult Res =
        Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
    ASSERT_TRUE(Res.Ok) << Res.Error.Code << ": " << Res.Error.Message;
    EXPECT_TRUE(Res.Acceptance.Resumed);
    EXPECT_EQ(K, Res.Acceptance.ResumedFrom);
    EXPECT_EQ(4u, Res.Acceptance.Runs);
    ASSERT_EQ(4 - K, Res.Deltas.size());
    for (size_t I = 0; I < Res.Deltas.size(); ++I)
      EXPECT_EQ(static_cast<int64_t>(K + I), Res.Deltas[I].Run);
    EXPECT_EQ(Reference, Res.ProfileJson);

    std::remove(JournalPath.c_str());
  }
}

TEST(ChaosService, CursorPastTheRetainedCountIsRejected) {
  std::string JournalPath = chaosScratchPath("cursor");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  DaemonFixture F(std::move(O));

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8};
  TypedResult First =
      Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
  ASSERT_TRUE(First.Ok) << First.Error.Code << ": " << First.Error.Message;

  JobSpec Rs;
  Rs.Resume = First.Acceptance.Session;
  Rs.FromDelta = 3; // Only 2 deltas retained.
  TypedResult R = Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(errc::BadRequest, R.Error.Code);

  // from-delta == retained count is valid: an empty tail, then the
  // document — the degenerate "I saw everything, give me the profile".
  Rs.FromDelta = 2;
  TypedResult Tail =
      Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
  ASSERT_TRUE(Tail.Ok) << Tail.Error.Code << ": " << Tail.Error.Message;
  EXPECT_EQ(0u, Tail.Deltas.size());
  EXPECT_EQ(2u, Tail.Acceptance.ResumedFrom);
  EXPECT_EQ(First.ProfileJson, Tail.ProfileJson);
  std::remove(JournalPath.c_str());
}

//===----------------------------------------------------------------------===//
// Journal fuzz: corruption never crashes the loader
//===----------------------------------------------------------------------===//

TEST(ChaosJournal, FuzzedLogsNeverCrashAndSalvageTheValidPrefix) {
  std::string Base = "algoprof-journal/1\n";
  Base += "A 1 5\nhello\n";
  Base += "A 2 7\npayload\n";
  Base += "C 1\n";
  Base += "A 3 3\nabc\n";

  std::string Path = chaosScratchPath("fuzz");
  auto WriteAndLoad = [&](const std::string &Data, Journal::LoadResult &LR) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(nullptr, F);
    std::fwrite(Data.data(), 1, Data.size(), F);
    std::fclose(F);
    std::string Err;
    Journal::load(Path, LR, Err); // Must return, never crash.
  };

  // The intact log: sessions 2 and 3 pending, 1 completed.
  {
    Journal::LoadResult LR;
    WriteAndLoad(Base, LR);
    ASSERT_EQ(2u, LR.Pending.size());
    EXPECT_EQ(2u, LR.Pending[0].Id);
    EXPECT_EQ(3u, LR.Pending[1].Id);
    EXPECT_EQ(3u, LR.MaxId);
  }

  // A duplicate C with no matching A is inert (compaction emits these
  // on purpose to preserve the id high-water mark).
  {
    Journal::LoadResult LR;
    WriteAndLoad(Base + "C 9\nC 9\n", LR);
    EXPECT_EQ(2u, LR.Pending.size());
    EXPECT_EQ(9u, LR.MaxId);
  }

  // An oversized length field cannot wrap the bounds check: the record
  // is dropped, everything before it salvaged.
  {
    Journal::LoadResult LR;
    WriteAndLoad(Base + "A 4 18446744073709551615\nx\n", LR);
    EXPECT_EQ(2u, LR.Pending.size());
    EXPECT_EQ(3u, LR.MaxId);
  }
  {
    Journal::LoadResult LR;
    WriteAndLoad(Base + "A 4 99999999999999999999999\nx\n", LR);
    EXPECT_EQ(2u, LR.Pending.size());
  }

  // 300 seeded single-bit flips, truncations, and garbage splices over
  // the whole log: load() must always return (never crash, never read
  // out of bounds — ASan/UBSan runs watch this), and whatever pending
  // jobs it salvages can only be the three that were ever written —
  // corruption may hide records but can never invent a session id the
  // log did not contain with an intact record.
  Rng R(0xF1A5Eu);
  for (int I = 0; I < 300; ++I) {
    std::string Mutated = Base;
    size_t FlipAt = Mutated.size();
    switch (R.range(3)) {
    case 0: // bit flip
      FlipAt = R.range(Mutated.size());
      Mutated[FlipAt] ^= static_cast<char>(1u << R.range(8));
      break;
    case 1: // truncate
      FlipAt = R.range(Mutated.size());
      Mutated.resize(FlipAt);
      break;
    default: // garbage splice
      FlipAt = R.range(Mutated.size());
      Mutated.insert(FlipAt, std::string(1 + R.range(9),
                                         static_cast<char>(R.range(256))));
      break;
    }
    Journal::LoadResult LR;
    WriteAndLoad(Mutated, LR);
    // Records before the first corrupted byte survive verbatim.
    if (FlipAt >= Base.size() - 8) {
      ASSERT_GE(LR.Pending.size(), 1u);
      EXPECT_EQ(2u, LR.Pending[0].Id);
      EXPECT_EQ("payload", LR.Pending[0].Payload);
    }
  }
  std::remove(Path.c_str());
}

TEST(ChaosJournal, CompactionKeepsPendingDropsCompletedPreservesMaxId) {
  std::string Path = chaosScratchPath("compact");
  Journal J;
  std::string Err;
  ASSERT_TRUE(J.open(Path, Err)) << Err;
  std::string Big(512, 'x');
  for (uint64_t Id = 1; Id <= 8; ++Id)
    ASSERT_TRUE(J.appendAccepted(Id, Big + std::to_string(Id)));
  for (uint64_t Id = 1; Id <= 7; ++Id)
    ASSERT_TRUE(J.appendCompleted(Id));
  uint64_t Before = J.sizeBytes();
  EXPECT_EQ(Before, fileSize(Path));

  ASSERT_TRUE(J.compact(Err)) << Err;
  EXPECT_LT(J.sizeBytes(), Before / 4);
  EXPECT_EQ(J.sizeBytes(), fileSize(Path));
  EXPECT_FALSE(J.failed());

  // Still a valid algoprof-journal/1 holding exactly the pending job —
  // and the id high-water mark survived the dropped records.
  Journal::LoadResult LR;
  ASSERT_TRUE(Journal::load(Path, LR, Err)) << Err;
  ASSERT_EQ(1u, LR.Pending.size());
  EXPECT_EQ(8u, LR.Pending[0].Id);
  EXPECT_EQ(Big + "8", LR.Pending[0].Payload);
  EXPECT_EQ(8u, LR.MaxId);

  // Appends keep working on the rotated fd; a second compaction of an
  // already-minimal log is a no-op in content.
  ASSERT_TRUE(J.appendCompleted(8));
  ASSERT_TRUE(J.appendAccepted(9, "tail"));
  ASSERT_TRUE(J.compact(Err)) << Err;
  ASSERT_TRUE(Journal::load(Path, LR, Err)) << Err;
  ASSERT_EQ(1u, LR.Pending.size());
  EXPECT_EQ(9u, LR.Pending[0].Id);
  EXPECT_EQ(9u, LR.MaxId);
  J.close();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Retained-result eviction
//===----------------------------------------------------------------------===//

TEST(ChaosEviction, ByteBudgetEvictsOldestCompletedFirst) {
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8};

  // Measure one session's retained footprint on a throwaway daemon
  // (identical job => identical footprint), then budget for exactly
  // one session: storing the second must evict the first.
  uint64_t EntryBytes = 0;
  {
    std::string JP = chaosScratchPath("measure");
    DaemonOptions O;
    O.JournalPath = JP;
    DaemonFixture F(std::move(O));
    TypedResult R =
        Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
    ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
    EntryBytes = R.ProfileJson.size() + encodeDone(R.Summary).size();
    for (const RunDeltaMsg &D : R.Deltas)
      EntryBytes += encodeRunDelta(D).size();
    std::remove(JP.c_str());
  }
  ASSERT_GT(EntryBytes, 0u);

  std::string JournalPath = chaosScratchPath("evict");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  O.RetainBytes = EntryBytes; // Room for one completed session.
  DaemonFixture F(std::move(O));

  TypedResult A = Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
  ASSERT_TRUE(A.Ok) << A.Error.Code << ": " << A.Error.Message;
  TypedResult B = Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
  ASSERT_TRUE(B.Ok) << B.Error.Code << ": " << B.Error.Message;

  // The oldest (A) was evicted to admit B; its tombstone answers
  // resume with the dedicated code, not unknown-session, not a hang.
  JobSpec Rs;
  Rs.Resume = A.Acceptance.Session;
  TypedResult RA = Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
  EXPECT_FALSE(RA.Ok);
  EXPECT_EQ(errc::ResultEvicted, RA.Error.Code);
  EXPECT_FALSE(RA.Error.Transport);

  Rs.Resume = B.Acceptance.Session;
  TypedResult RB = Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
  ASSERT_TRUE(RB.Ok) << RB.Error.Code << ": " << RB.Error.Message;
  EXPECT_EQ(B.ProfileJson, RB.ProfileJson);

  EXPECT_EQ(1u, F.D->stats().ResultsEvicted);
  std::remove(JournalPath.c_str());
}

TEST(ChaosEviction, TtlEvictsOnTheInjectedClock) {
  std::shared_ptr<std::atomic<uint64_t>> Clock =
      std::make_shared<std::atomic<uint64_t>>(1000);
  std::string JournalPath = chaosScratchPath("ttl");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  O.RetainSecs = 10;
  O.NowMs = [Clock] { return Clock->load(); };
  DaemonFixture F(std::move(O));

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8};
  TypedResult R = Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;

  // Inside the TTL the session resumes normally.
  JobSpec Rs;
  Rs.Resume = R.Acceptance.Session;
  TypedResult Fresh =
      Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
  ASSERT_TRUE(Fresh.Ok) << Fresh.Error.Code << ": " << Fresh.Error.Message;
  EXPECT_EQ(R.ProfileJson, Fresh.ProfileJson);

  // Advance the clock past the TTL: the next resume finds a tombstone
  // (eviction happens on access or on the maintenance tick, whichever
  // comes first — both are exercised across test runs).
  Clock->fetch_add(11'000);
  TypedResult Stale =
      Client::unixSocket(F.Opts.SocketPath).submit(Rs).wait();
  EXPECT_FALSE(Stale.Ok);
  EXPECT_EQ(errc::ResultEvicted, Stale.Error.Code);
  EXPECT_GE(F.D->stats().ResultsEvicted, 1u);
  std::remove(JournalPath.c_str());
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST(ChaosDrain, FinishesInFlightSessionsThenRefusesNewOnes) {
  std::string JournalPath = chaosScratchPath("drain");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  DaemonFixture F(std::move(O));

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {2, 4, 6, 8, 10, 12, 14, 16};
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  const std::string Reference =
      serialReferenceJson(corpusSource(Job.Corpus), SO);

  // A session in flight while drain() runs: it must complete its full
  // stream — deltas, byte-identical profile, Done — not be cut off.
  TypedResult R;
  std::thread ClientT([&] {
    R = Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
  });
  for (int Waited = 0; Waited < 20000; Waited += 5) {
    if (F.D->stats().Accepted >= 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(F.D->drain(20000));
  ClientT.join();
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  expectExactDeltaStream(R, 8);
  EXPECT_EQ(Reference, R.ProfileJson);
  EXPECT_EQ(1u, F.D->stats().Completed);

  // Drained means no longer accepting: a new connection cannot reach
  // the daemon.
  TypedResult After =
      Client::unixSocket(F.Opts.SocketPath).submit(Job).wait();
  EXPECT_FALSE(After.Ok);
  EXPECT_TRUE(After.Error.Transport);

  F.D->stop(); // Idempotent after a full drain; nothing left to force.
  std::remove(JournalPath.c_str());
}

//===----------------------------------------------------------------------===//
// Liveness and readiness endpoints
//===----------------------------------------------------------------------===//

TEST(ChaosHealth, HealthzAndReadyzTrackDaemonState) {
  std::string JournalPath = chaosScratchPath("health");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  O.MetricsPort = 0;
  DaemonFixture F(std::move(O));
  int Port = F.D->metricsPort();
  ASSERT_GT(Port, 0);

  std::string Health = httpGet(Port, "/healthz");
  EXPECT_NE(std::string::npos, Health.find("200 OK")) << Health;
  EXPECT_NE(std::string::npos, Health.find("ok")) << Health;

  std::string Ready = httpGet(Port, "/readyz");
  EXPECT_NE(std::string::npos, Ready.find("200 OK")) << Ready;

  // /metrics still serves next to them, and the probes were counted.
  std::string Metrics = httpGet(Port, "/metrics");
  EXPECT_NE(std::string::npos,
            Metrics.find("algoprof_counter_total{counter=\"health_checks\"}"))
      << Metrics.substr(0, 400);
  EXPECT_EQ(2u, F.D->stats().HealthChecks);

  // Unknown paths are 404, not a crash, not a health answer.
  std::string Missing = httpGet(Port, "/nope");
  EXPECT_NE(std::string::npos, Missing.find("404")) << Missing;

  // A draining daemon is alive but not ready — load balancers stop
  // routing to it while in-flight work finishes.
  EXPECT_TRUE(F.D->drain(5000));
  std::string Draining = httpGet(Port, "/healthz");
  EXPECT_NE(std::string::npos, Draining.find("200 OK")) << Draining;
  std::string NotReady = httpGet(Port, "/readyz");
  EXPECT_NE(std::string::npos, NotReady.find("503")) << NotReady;
  EXPECT_EQ(4u, F.D->stats().HealthChecks);
  std::remove(JournalPath.c_str());
}

//===- tests/CostMapTest.cpp - Cost map unit tests ------------------------===//

#include "core/CostMap.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

TEST(CostMap, AddAndGet) {
  CostMap C;
  C.add({CostKind::Step, -1, -1});
  C.add({CostKind::Step, -1, -1}, 4);
  EXPECT_EQ(C.steps(), 5);
  EXPECT_EQ(C.get({CostKind::StructGet, 0, -1}), 0);
}

TEST(CostMap, KeysAreIndependent) {
  CostMap C;
  C.add({CostKind::StructGet, 1, -1}, 10);
  C.add({CostKind::StructGet, 2, -1}, 20);
  C.add({CostKind::StructPut, 1, -1}, 30);
  C.add({CostKind::StructGet, 1, 7}, 10); // Per-type refinement.
  EXPECT_EQ(C.get({CostKind::StructGet, 1, -1}), 10);
  EXPECT_EQ(C.get({CostKind::StructGet, 2, -1}), 20);
  EXPECT_EQ(C.get({CostKind::StructPut, 1, -1}), 30);
  EXPECT_EQ(C.get({CostKind::StructGet, 1, 7}), 10);
}

TEST(CostMap, TotalSkipsPerTypeEntries) {
  CostMap C;
  C.add({CostKind::StructGet, 1, -1}, 10);
  C.add({CostKind::StructGet, 1, 7}, 10); // Refinement of the same ops.
  C.add({CostKind::StructGet, 2, -1}, 5);
  EXPECT_EQ(C.total(CostKind::StructGet), 15);
  EXPECT_EQ(C.total(CostKind::StructGet, 1), 10);
  EXPECT_EQ(C.total(CostKind::StructGet, 2), 5);
}

TEST(CostMap, Merge) {
  CostMap A, B;
  A.add({CostKind::Step, -1, -1}, 3);
  A.add({CostKind::StructGet, 1, -1}, 1);
  B.add({CostKind::Step, -1, -1}, 4);
  B.add({CostKind::StructPut, 1, -1}, 2);
  A.merge(B);
  EXPECT_EQ(A.steps(), 7);
  EXPECT_EQ(A.get({CostKind::StructGet, 1, -1}), 1);
  EXPECT_EQ(A.get({CostKind::StructPut, 1, -1}), 2);
}

TEST(CostMap, CanonicalizeInputsMergesCollidingKeys) {
  CostMap C;
  C.add({CostKind::StructGet, 3, -1}, 10);
  C.add({CostKind::StructGet, 5, -1}, 7);
  // 5 was merged into 3 by the input table.
  C.canonicalizeInputs([](int32_t Id) { return Id == 5 ? 3 : Id; });
  EXPECT_EQ(C.get({CostKind::StructGet, 3, -1}), 17);
  EXPECT_EQ(C.get({CostKind::StructGet, 5, -1}), 0);
}

TEST(CostMap, StrRendersPaperNotation) {
  CostMap C;
  C.add({CostKind::Step, -1, -1}, 15);
  std::string S = C.str();
  EXPECT_NE(S.find("cost{STEP} -> 15"), std::string::npos);
  C.add({CostKind::StructPut, 3, -1}, 99);
  S = C.str();
  EXPECT_NE(S.find("cost{input#3, PUT} -> 99"), std::string::npos);
}

TEST(CostMap, KeyOrderingIsStrictWeak) {
  CostKey A{CostKind::Step, -1, -1};
  CostKey B{CostKind::StructGet, 0, -1};
  CostKey C{CostKind::StructGet, 0, 5};
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(B < C);
  EXPECT_FALSE(B < A);
  EXPECT_FALSE(A < A);
}

} // namespace
